//go:build !race

package peering

// raceEnabled reports whether the race detector is compiled in; race
// instrumentation slows the pipeline by an order of magnitude, so load
// tests shrink their workload under it.
const raceEnabled = false
