package peering

// Full-table ingestion: the Internet-scale load test the sharded RIB
// and fan-out pipeline are sized for. A synthetic global table
// (internal/internet) is serialized as an MRT update trace and replayed
// at max speed through a real upstream BGP session into one mux, with a
// fleet of count-only clients attached — the standard workload for
// "does the table survive 1M prefixes × 64 clients".
//
// Three sizes of the same scenario:
//
//   - default `go test`: a ~25K-prefix smoke that checks the plumbing
//     (every client converges to the exact table) in seconds;
//   - under -race: smaller still, same assertions;
//   - BENCH_FULLTABLE_JSON=<path> (as `make bench-fulltable` arranges):
//     the full internet.FullTableSpec table — ≥1M prefixes, 64 clients
//     — with ingestion rate, convergence time, and steady-state heap
//     written to the named JSON file.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"peering/internal/bufconn"
	"peering/internal/internet"
	"peering/internal/mrt"
	"peering/internal/muxproto"
	"peering/internal/rib"
	"peering/internal/server"

	clientpkg "peering/internal/client"
)

// fullTableReport is the JSON shape of BENCH_fulltable.json.
type fullTableReport struct {
	Prefixes      int     `json:"prefixes"`
	Clients       int     `json:"clients"`
	Shards        int     `json:"shards"`
	TraceRecords  int     `json:"trace_records"`
	TraceBytes    uint64  `json:"trace_bytes"`
	IngestSecs    float64 `json:"ingest_seconds"`
	RoutesPerSec  float64 `json:"routes_per_sec_ingested"`
	ConvergeSecs  float64 `json:"convergence_seconds"`
	HeapBytes     uint64  `json:"steady_state_heap_bytes"`
	HeapMB        float64 `json:"steady_state_heap_mb"`
	RelayedNLRIs  uint64  `json:"nlris_relayed_to_clients"`
	FanoutUpdates uint64  `json:"updates_to_clients"`
}

func TestFullTableIngestion(t *testing.T) {
	out := os.Getenv("BENCH_FULLTABLE_JSON")
	spec := internet.Spec{Seed: 2014, ASes: 2000, Tier1s: 8, Transits: 150, CDNs: 10, Contents: 30, Prefixes: 25000}
	nClients, deadline := 8, 2*time.Minute
	switch {
	case out != "":
		spec = internet.FullTableSpec()
		nClients, deadline = 64, 25*time.Minute
	case raceEnabled:
		spec = internet.Spec{Seed: 2014, ASes: 600, Tier1s: 6, Transits: 60, CDNs: 6, Contents: 15, Prefixes: 5000}
		nClients = 4
	}

	// Synthesize the table and serialize it to disk, then drop the graph
	// before measuring anything: the steady-state heap should reflect the
	// mux's tables, not the generator's scaffolding.
	g := internet.Generate(spec)
	total := g.TotalPrefixes()
	if out != "" && total < 1000000 {
		t.Fatalf("full-table spec generated %d prefixes, want ≥1M", total)
	}
	tracePath := filepath.Join(t.TempDir(), "fulltable.mrt")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	ts, err := internet.WriteTrace(bw, g, internet.TraceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if ts.Routes != total {
		t.Fatalf("trace carries %d routes, graph originates %d", ts.Routes, total)
	}
	g = nil
	runtime.GC()
	t.Logf("trace: %d prefixes from %d origins in %d records (%.1f MB)",
		ts.Routes, ts.Origins, ts.Records, float64(ts.Bytes)/(1<<20))

	// One mux in BIRD mode (single ADD-PATH session per client), one
	// upstream, nClients count-only clients. The fan-out queue cap is
	// disabled: the whole point is to carry a full table through the
	// queue, not to shed it.
	srv := server.New(server.Config{
		Site: "fulltable", ASN: 47065,
		RouterID: netip.MustParseAddr("184.164.224.1"),
		Mode:     muxproto.ModeBIRD,
		Quota:    server.QuotaConfig{MaxQueueOps: -1},
	})
	defer srv.Close()
	up, err := srv.AddUpstream(server.UpstreamConfig{
		ID: 1, Name: "transit", ASN: 1, // WriteTrace announces from the first tier-1 (AS 1)
		PeerAddr:  netip.MustParseAddr("10.0.0.1"),
		LocalAddr: netip.MustParseAddr("10.0.0.2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*clientpkg.Client, nClients)
	for i := range clients {
		id := fmt.Sprintf("c%02d", i)
		if err := srv.RegisterClient(server.ClientAccount{
			ID:         id,
			Allocation: []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{172, 16, byte(i), 0}), 24)},
			TunnelAddr: netip.AddrFrom4([4]byte{10, 250, 0, byte(i + 1)}),
		}); err != nil {
			t.Fatal(err)
		}
		ca, cb := bufconn.Pipe()
		if err := srv.AcceptClient(id, ca); err != nil {
			t.Fatal(err)
		}
		cl, err := clientpkg.Connect(clientpkg.Config{
			Name:      id,
			RouterID:  netip.AddrFrom4([4]byte{172, 16, byte(i), 1}),
			CountOnly: true,
		}, cb)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.WaitEstablished(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
	}

	// Replay at max speed and wait for the table to land — first in the
	// upstream's Adj-RIB-In (ingestion), then at every client (fan-out
	// convergence).
	start := time.Now()
	stats, sess, err := srv.ReplayUpstream(up, mrt.NewReader(mustOpen(t, tracePath)), mrt.ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if stats.Routes != total {
		t.Fatalf("replay delivered %d routes, want %d", stats.Routes, total)
	}
	ingestSecs := waitCount(t, deadline, start, "upstream Adj-RIB-In", func() int { return up.RoutesIn() }, total)
	var convergeSecs float64
	for i, cl := range clients {
		convergeSecs = waitCount(t, deadline, start, fmt.Sprintf("client %d view", i),
			cl.TotalRouteCount, total)
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := srv.Stats()
	rep := fullTableReport{
		Prefixes:      total,
		Clients:       nClients,
		Shards:        rib.ShardCount(0),
		TraceRecords:  ts.Records,
		TraceBytes:    ts.Bytes,
		IngestSecs:    ingestSecs,
		RoutesPerSec:  float64(total) / ingestSecs,
		ConvergeSecs:  convergeSecs,
		HeapBytes:     ms.HeapAlloc,
		HeapMB:        float64(ms.HeapAlloc) / (1 << 20),
		RelayedNLRIs:  st.RoutesRelayedToClients,
		FanoutUpdates: st.UpdatesToClients,
	}
	t.Logf("%d prefixes × %d clients: ingested in %.2fs (%.0f routes/s), converged in %.2fs, heap %.1f MB",
		rep.Prefixes, rep.Clients, rep.IngestSecs, rep.RoutesPerSec, rep.ConvergeSecs, rep.HeapMB)
	if want := uint64(total) * uint64(nClients); st.RoutesRelayedToClients < want {
		t.Fatalf("fan-out relayed %d NLRIs, want ≥ %d (%d clients × %d prefixes)",
			st.RoutesRelayedToClients, want, nClients, total)
	}

	if out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// waitCount polls n() until it reaches want, returning the seconds
// elapsed since start. A count that overshoots want is a bug (routes
// duplicated somewhere in the pipeline), not a convergence signal.
func waitCount(t *testing.T, deadline time.Duration, start time.Time, what string, n func() int, want int) float64 {
	t.Helper()
	for limit := time.Now().Add(deadline); ; {
		got := n()
		if got == want {
			return time.Since(start).Seconds()
		}
		if got > want {
			t.Fatalf("%s holds %d routes, want exactly %d", what, got, want)
		}
		if time.Now().After(limit) {
			t.Fatalf("timeout: %s at %d/%d routes after %v", what, got, want, deadline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func mustOpen(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}
