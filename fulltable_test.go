package peering

// Full-table ingestion: the Internet-scale load test the sharded RIB
// and fan-out pipeline are sized for. A synthetic global table
// (internal/internet) is serialized as an MRT update trace and replayed
// at max speed through a real upstream BGP session into one mux, with a
// fleet of count-only clients attached — the standard workload for
// "does the table survive 1M prefixes × 64 clients".
//
// Three sizes of the same scenario:
//
//   - default `go test`: a ~25K-prefix smoke that checks the plumbing
//     (every client converges to the exact table) in seconds, and
//     ratchets the ingest rate against the committed full-scale report;
//   - under -race: smaller still, same assertions, no ratchet;
//   - BENCH_FULLTABLE_JSON=<path> (as `make bench-fulltable` arranges):
//     the full internet.FullTableSpec table — ≥1M prefixes, 64 clients
//     — with ingestion rate, convergence time, and steady-state heap
//     written to the named JSON file.
//
// TestFullTableScaling reruns the same rig at GOMAXPROCS 1, 4, and the
// machine default so the throughput numbers carry a parallelism curve,
// not a single opaque figure.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"peering/internal/benchenv"
	"peering/internal/bufconn"
	"peering/internal/internet"
	"peering/internal/mrt"
	"peering/internal/muxproto"
	"peering/internal/rib"
	"peering/internal/server"

	clientpkg "peering/internal/client"
)

// fullTableReport is the JSON shape of BENCH_fulltable.json.
type fullTableReport struct {
	Prefixes      int          `json:"prefixes"`
	Clients       int          `json:"clients"`
	Shards        int          `json:"shards"`
	TraceRecords  int          `json:"trace_records"`
	TraceBytes    uint64       `json:"trace_bytes"`
	IngestSecs    float64      `json:"ingest_seconds"`
	RoutesPerSec  float64      `json:"routes_per_sec_ingested"`
	ConvergeSecs  float64      `json:"convergence_seconds"`
	HeapBytes     uint64       `json:"steady_state_heap_bytes"`
	HeapMB        float64      `json:"steady_state_heap_mb"`
	RelayedNLRIs  uint64       `json:"nlris_relayed_to_clients"`
	FanoutUpdates uint64       `json:"updates_to_clients"`
	Env           benchenv.Env `json:"env"`
}

// buildTrace synthesizes the table for spec, serializes it as an MRT
// trace under t.TempDir, and drops the graph before returning: the
// steady-state heap measured later should reflect the mux's tables,
// not the generator's scaffolding.
func buildTrace(t *testing.T, spec internet.Spec) (path string, total int, ts internet.TraceStats) {
	t.Helper()
	g := internet.Generate(spec)
	total = g.TotalPrefixes()
	path = filepath.Join(t.TempDir(), "fulltable.mrt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	ts, err = internet.WriteTrace(bw, g, internet.TraceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if ts.Routes != total {
		t.Fatalf("trace carries %d routes, graph originates %d", ts.Routes, total)
	}
	g = nil
	runtime.GC()
	t.Logf("trace: %d prefixes from %d origins in %d records (%.1f MB)",
		ts.Routes, ts.Origins, ts.Records, float64(ts.Bytes)/(1<<20))
	return path, total, ts
}

// fullTableRun is one measured replay of a trace through a fresh mux.
type fullTableRun struct {
	IngestSecs    float64
	ConvergeSecs  float64
	HeapBytes     uint64
	RelayedNLRIs  uint64
	FanoutUpdates uint64
}

// runFullTable stands up one mux in BIRD mode (single ADD-PATH session
// per client) with nClients count-only clients attached, replays the
// trace at max speed, and waits for the table to land — first in the
// upstream's Adj-RIB-In (ingestion), then at every client (fan-out
// convergence). The fan-out queue cap is disabled: the whole point is
// to carry a full table through the queue, not to shed it. The rig is
// torn down before returning so back-to-back runs don't share state.
func runFullTable(t *testing.T, tracePath string, total, nClients int, deadline time.Duration) fullTableRun {
	t.Helper()
	srv := server.New(server.Config{
		Site: "fulltable", ASN: 47065,
		RouterID: netip.MustParseAddr("184.164.224.1"),
		Mode:     muxproto.ModeBIRD,
		Quota:    server.QuotaConfig{MaxQueueOps: -1},
	})
	defer srv.Close()
	up, err := srv.AddUpstream(server.UpstreamConfig{
		ID: 1, Name: "transit", ASN: 1, // WriteTrace announces from the first tier-1 (AS 1)
		PeerAddr:  netip.MustParseAddr("10.0.0.1"),
		LocalAddr: netip.MustParseAddr("10.0.0.2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*clientpkg.Client, nClients)
	for i := range clients {
		id := fmt.Sprintf("c%02d", i)
		if err := srv.RegisterClient(server.ClientAccount{
			ID:         id,
			Allocation: []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{172, 16, byte(i), 0}), 24)},
			TunnelAddr: netip.AddrFrom4([4]byte{10, 250, 0, byte(i + 1)}),
		}); err != nil {
			t.Fatal(err)
		}
		ca, cb := bufconn.Pipe()
		if err := srv.AcceptClient(id, ca); err != nil {
			t.Fatal(err)
		}
		cl, err := clientpkg.Connect(clientpkg.Config{
			Name:      id,
			RouterID:  netip.AddrFrom4([4]byte{172, 16, byte(i), 1}),
			CountOnly: true,
		}, cb)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.WaitEstablished(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
	}

	start := time.Now()
	stats, sess, err := srv.ReplayUpstream(up, mrt.NewReader(mustOpen(t, tracePath)), mrt.ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if stats.Routes != total {
		t.Fatalf("replay delivered %d routes, want %d", stats.Routes, total)
	}
	run := fullTableRun{}
	run.IngestSecs = waitCount(t, deadline, start, "upstream Adj-RIB-In", func() int { return up.RoutesIn() }, total)
	for i, cl := range clients {
		run.ConvergeSecs = waitCount(t, deadline, start, fmt.Sprintf("client %d view", i),
			cl.TotalRouteCount, total)
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := srv.Stats()
	var mbuf strings.Builder
	srv.Telemetry().WriteTo(&mbuf)
	for _, line := range strings.Split(mbuf.String(), "\n") {
		if strings.Contains(line, "ingest_batch") || strings.Contains(line, "fanout_frames") || strings.Contains(line, "update_nlris") {
			t.Log(line)
		}
	}
	run.HeapBytes = ms.HeapAlloc
	run.RelayedNLRIs = st.RoutesRelayedToClients
	run.FanoutUpdates = st.UpdatesToClients
	if want := uint64(total) * uint64(nClients); st.RoutesRelayedToClients < want {
		t.Fatalf("fan-out relayed %d NLRIs, want ≥ %d (%d clients × %d prefixes)",
			st.RoutesRelayedToClients, want, nClients, total)
	}
	return run
}

func TestFullTableIngestion(t *testing.T) {
	testStart := time.Now()
	out := os.Getenv("BENCH_FULLTABLE_JSON")
	spec := internet.Spec{Seed: 2014, ASes: 2000, Tier1s: 8, Transits: 150, CDNs: 10, Contents: 30, Prefixes: 25000}
	nClients, deadline := 8, 2*time.Minute
	switch {
	case out != "":
		spec = internet.FullTableSpec()
		nClients, deadline = 64, 25*time.Minute
	case raceEnabled:
		spec = internet.Spec{Seed: 2014, ASes: 600, Tier1s: 6, Transits: 60, CDNs: 6, Contents: 15, Prefixes: 5000}
		nClients = 4
	}

	tracePath, total, ts := buildTrace(t, spec)
	if out != "" && total < 1000000 {
		t.Fatalf("full-table spec generated %d prefixes, want ≥1M", total)
	}
	run := runFullTable(t, tracePath, total, nClients, deadline)

	rep := fullTableReport{
		Prefixes:      total,
		Clients:       nClients,
		Shards:        rib.ShardCount(0),
		TraceRecords:  ts.Records,
		TraceBytes:    ts.Bytes,
		IngestSecs:    run.IngestSecs,
		RoutesPerSec:  float64(total) / run.IngestSecs,
		ConvergeSecs:  run.ConvergeSecs,
		HeapBytes:     run.HeapBytes,
		HeapMB:        float64(run.HeapBytes) / (1 << 20),
		RelayedNLRIs:  run.RelayedNLRIs,
		FanoutUpdates: run.FanoutUpdates,
		Env:           benchenv.Capture(testStart),
	}
	t.Logf("%d prefixes × %d clients: ingested in %.2fs (%.0f routes/s), converged in %.2fs, heap %.1f MB",
		rep.Prefixes, rep.Clients, rep.IngestSecs, rep.RoutesPerSec, rep.ConvergeSecs, rep.HeapMB)

	// Throughput ratchet: in the smoke sizing (the `make check` gate),
	// the measured ingest rate may not fall below half the committed
	// full-scale rate in BENCH_fulltable.json. The two scenarios differ
	// (25K×8 vs 1M×64), so this is deliberately loose — it exists to
	// catch an ingest-path regression of the "accidentally serialized
	// the shards again" magnitude long before anyone reruns the 25-minute
	// bench. Skipped under -race (instrumentation tax) and when the
	// committed report is absent.
	if out == "" && !raceEnabled {
		if b, err := os.ReadFile("BENCH_fulltable.json"); err == nil {
			var committed fullTableReport
			if err := json.Unmarshal(b, &committed); err != nil {
				t.Fatalf("committed BENCH_fulltable.json is unreadable: %v", err)
			}
			if floor := committed.RoutesPerSec / 2; committed.RoutesPerSec > 0 && rep.RoutesPerSec < floor {
				t.Errorf("smoke ingest rate regressed: %.0f routes/s < %.0f (half the committed full-scale rate %.0f in BENCH_fulltable.json)",
					rep.RoutesPerSec, floor, committed.RoutesPerSec)
			}
		}
	}

	if out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// fullTableScalingRow is one GOMAXPROCS setting's measurement in
// BENCH_fulltable_scaling.json.
type fullTableScalingRow struct {
	GOMAXPROCS   int     `json:"gomaxprocs"`
	IngestSecs   float64 `json:"ingest_seconds"`
	RoutesPerSec float64 `json:"routes_per_sec_ingested"`
	ConvergeSecs float64 `json:"convergence_seconds"`
}

// TestFullTableScaling replays one trace through fresh muxes at
// GOMAXPROCS 1, 4, and the machine default, so the ingest-rate figure
// always comes with its parallelism curve. Plain `go test` runs a
// small sizing as a plumbing check; BENCH_FULLTABLE_SCALING_JSON (set
// by `make bench-fulltable`) switches to a mid-scale table and writes
// the rows as JSON. Skipped under -race: GOMAXPROCS=1 with the race
// detector's overhead measures the instrumentation, not the pipeline.
func TestFullTableScaling(t *testing.T) {
	if raceEnabled {
		t.Skip("scaling curve is meaningless under the race detector")
	}
	testStart := time.Now()
	out := os.Getenv("BENCH_FULLTABLE_SCALING_JSON")
	spec := internet.Spec{Seed: 2014, ASes: 1200, Tier1s: 8, Transits: 100, CDNs: 8, Contents: 20, Prefixes: 12000}
	nClients, deadline := 4, 2*time.Minute
	if out != "" {
		spec = internet.Spec{Seed: 2014, ASes: 4000, Tier1s: 8, Transits: 300, CDNs: 15, Contents: 60, Prefixes: 150000}
		nClients, deadline = 16, 10*time.Minute
	}
	tracePath, total, _ := buildTrace(t, spec)

	defaultProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(defaultProcs)
	procSettings := []int{1, 4, defaultProcs}
	var rows []fullTableScalingRow
	seen := map[int]bool{}
	for _, procs := range procSettings {
		if seen[procs] {
			continue
		}
		seen[procs] = true
		runtime.GOMAXPROCS(procs)
		run := runFullTable(t, tracePath, total, nClients, deadline)
		runtime.GOMAXPROCS(defaultProcs)
		row := fullTableScalingRow{
			GOMAXPROCS:   procs,
			IngestSecs:   run.IngestSecs,
			RoutesPerSec: float64(total) / run.IngestSecs,
			ConvergeSecs: run.ConvergeSecs,
		}
		rows = append(rows, row)
		t.Logf("GOMAXPROCS=%d: ingested %d prefixes in %.2fs (%.0f routes/s), converged in %.2fs",
			procs, total, row.IngestSecs, row.RoutesPerSec, row.ConvergeSecs)
	}

	if out != "" {
		b, err := json.MarshalIndent(map[string]any{
			"prefixes": total,
			"clients":  nClients,
			"shards":   rib.ShardCount(0),
			"rows":     rows,
			"env":      benchenv.Capture(testStart),
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// waitCount polls n() until it reaches want, returning the seconds
// elapsed since start. A count that overshoots want is a bug (routes
// duplicated somewhere in the pipeline), not a convergence signal.
func waitCount(t *testing.T, deadline time.Duration, start time.Time, what string, n func() int, want int) float64 {
	t.Helper()
	for limit := time.Now().Add(deadline); ; {
		got := n()
		if got == want {
			return time.Since(start).Seconds()
		}
		if got > want {
			t.Fatalf("%s holds %d routes, want exactly %d", what, got, want)
		}
		if time.Now().After(limit) {
			t.Fatalf("timeout: %s at %d/%d routes after %v", what, got, want, deadline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func mustOpen(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}
