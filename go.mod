module peering

go 1.24
