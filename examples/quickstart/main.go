// Quickstart: bring up a PEERING testbed, provision an experiment,
// connect a client, announce a prefix to the live Internet, watch it
// arrive at a route collector, and exchange traffic with a CDN — the
// §3 architecture end to end.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"peering"
	"peering/internal/internet"
)

func main() {
	fmt.Println("== PEERING quickstart ==")

	// 1. Assemble the testbed: a live mini-Internet, an emulated
	// AMS-IX with a route server, one PEERING server, a collector.
	tb, err := peering.NewTestbed(peering.Config{})
	if err != nil {
		log.Fatalf("testbed: %v", err)
	}
	defer tb.Close()
	if err := tb.WaitReady(30 * time.Second); err != nil {
		log.Fatalf("not ready: %v", err)
	}
	fmt.Printf("testbed up: AS%d, %d live ASes, %d IXP members, %d upstream sessions\n",
		tb.ASN, tb.Internet.Len(), len(tb.Fabric.Members()), len(tb.Server.Upstreams()))

	// 2. Provision an experiment through the portal (account →
	// proposal → advisory-board approval → /24 allocation).
	exp, err := tb.NewExperiment("quick", "quickstart", "hello interdomain world", false)
	if err != nil {
		log.Fatalf("experiment: %v", err)
	}
	prefix := exp.Allocation[0]
	fmt.Printf("experiment approved, allocated %v\n", prefix)

	// 3. Connect the client: one transport, one BGP session per
	// upstream peer, full per-peer route views.
	cl, err := tb.ConnectClient("quickstart")
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	for _, u := range cl.Upstreams() {
		waitRoutes(cl.RouteCount, u.ID)
		fmt.Printf("upstream %d (%s, AS%d): %d routes received\n",
			u.ID, u.Name, u.ASN, cl.RouteCount(u.ID))
	}

	// 4. Announce the prefix everywhere and observe propagation at the
	// collector — a tier-1 vantage on the far side of the Internet.
	if err := cl.Announce(prefix, peering.AnnounceOptions{}); err != nil {
		log.Fatalf("announce: %v", err)
	}
	path := awaitCollector(tb, prefix)
	fmt.Printf("collector sees %v via AS path [%s]\n", prefix, path)

	// 5. Traffic: ping a CDN host on the live Internet from the
	// experiment's address space.
	var cdnASN uint32
	for _, asn := range tb.Internet.ASNs() {
		if tb.Internet.AS(asn).Kind == internet.KindCDN {
			cdnASN = asn
			break
		}
	}
	dst := tb.InternetHost(cdnASN)
	replies := make(chan *peering.Packet, 1)
	cl.OnPacket(func(p *peering.Packet) { replies <- p })
	// The CDN needs the return route before replying.
	awaitReturnRoute(tb, cdnASN, prefix)
	pkt := &peering.Packet{Src: prefix.Addr().Next(), Dst: dst, TTL: 64, Proto: 1, ICMP: 8, ID: 1, Seq: 1}
	if err := cl.SendPacket(pkt); err != nil {
		log.Fatalf("send: %v", err)
	}
	select {
	case r := <-replies:
		fmt.Printf("echo reply from %v (%s, AS%d)\n", r.Src, tb.Internet.AS(cdnASN).Name, cdnASN)
	case <-time.After(10 * time.Second):
		log.Fatal("no reply from the live Internet")
	}

	// 6. Withdraw and confirm the Internet forgets us.
	cl.Withdraw(prefix, nil)
	for i := 0; i < 1000; i++ {
		if _, ok := tb.RouteAtCollector(prefix); !ok {
			fmt.Println("withdrawn: collector no longer sees the prefix")
			fmt.Println("quickstart complete")
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("withdraw never propagated")
}

func waitRoutes(count func(uint32) int, id uint32) {
	for i := 0; i < 1000 && count(id) == 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}
}

func awaitCollector(tb *peering.Testbed, p netip.Prefix) string {
	for i := 0; i < 2000; i++ {
		if path, ok := tb.RouteAtCollector(p); ok {
			return path
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("announcement never reached the collector")
	return ""
}

func awaitReturnRoute(tb *peering.Testbed, asn uint32, p netip.Prefix) {
	c := tb.Live.Container(asn)
	for i := 0; i < 2000; i++ {
		if c.BGP.LocRIB().Best(p) != nil && c.DP.LookupRoute(p.Addr()) != nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("CDN never learned the return route")
}
