// LIFEGUARD: route around a failing AS with BGP poisoning.
//
// The §2 example research: "LIFEGUARD used route injection to route
// around failures" [29]. An experiment announces its prefix, observes
// the AS path the Internet chose toward it, declares one transit AS on
// that path faulty, and re-announces with that AS "poisoned" —
// inserted into the path so its loop detection rejects the route —
// forcing the Internet onto an alternate path that avoids it.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"slices"
	"time"

	"peering"
)

func main() {
	fmt.Println("== LIFEGUARD: practical repair of persistent route failures ==")

	tb, err := peering.NewTestbed(peering.Config{})
	if err != nil {
		log.Fatalf("testbed: %v", err)
	}
	defer tb.Close()
	if err := tb.WaitReady(30 * time.Second); err != nil {
		log.Fatalf("not ready: %v", err)
	}

	exp, err := tb.NewExperiment("lifeguard", "lifeguard", "route around failure", false)
	if err != nil {
		log.Fatalf("experiment: %v", err)
	}
	prefix := exp.Allocation[0]
	cl, err := tb.ConnectClient("lifeguard")
	if err != nil {
		log.Fatalf("client: %v", err)
	}

	// Baseline announcement.
	if err := cl.Announce(prefix, peering.AnnounceOptions{}); err != nil {
		log.Fatalf("announce: %v", err)
	}
	before := awaitPath(tb, prefix, nil)
	fmt.Printf("baseline: vantage AS%d reaches %v via %v\n", tb.CollectorVantage, prefix, before)

	// "Failure": declare the first intermediate AS on the path faulty
	// (in LIFEGUARD this is the AS the outage-localization step
	// blamed). The path reads [vantage-side ... our ASN]; pick the hop
	// adjacent to the vantage.
	if len(before) < 3 {
		log.Fatalf("path %v too short to poison anything", before)
	}
	faulty := before[1]
	fmt.Printf("declaring AS%d faulty; re-announcing with it poisoned\n", faulty)

	// Poisoned re-announcement: path becomes [us, faulty, us]; AS
	// `faulty` sees itself in the path and drops the route, so routes
	// through it vanish while everyone else reroutes.
	if err := cl.Announce(prefix, peering.AnnounceOptions{Poison: []uint32{faulty}}); err != nil {
		log.Fatalf("poisoned announce: %v", err)
	}
	after := awaitPath(tb, prefix, func(path []uint32) bool {
		return !slices.Contains(path[:len(path)-2], faulty) && !slices.Equal(path, before)
	})
	fmt.Printf("repaired: vantage now reaches %v via %v (avoids AS%d)\n", prefix, after, faulty)

	// The poisoned AS itself must have dropped the route entirely.
	faultyRIB := tb.Live.Container(faulty).BGP.LocRIB()
	deadline := time.Now().Add(5 * time.Second)
	for faultyRIB.Best(prefix) != nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if faultyRIB.Best(prefix) != nil {
		log.Fatalf("poisoned AS%d still holds a route", faulty)
	}
	fmt.Printf("AS%d 's loop detection rejected the poisoned route — traffic no longer crosses it\n", faulty)
	fmt.Println("lifeguard complete")
}

// awaitPath polls the collector for a path to p satisfying ok (nil =
// any path).
func awaitPath(tb *peering.Testbed, p netip.Prefix, ok func([]uint32) bool) []uint32 {
	for i := 0; i < 3000; i++ {
		if rt := tb.Collector.Route(p); rt != nil {
			path := rt.Attrs.ASList()
			if ok == nil || ok(path) {
				return path
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatalf("no acceptable path for %v at the collector", p)
	return nil
}
