// Hurricane Electric backbone emulation — the §4.2 experiment: "We
// emulated the PoP-level global backbone of Hurricane Electric (HE),
// using data from Topology Zoo. We set up a Quagga routing engine for
// each of the 24 PoPs, configured each PoP to originate a prefix, and
// configured sessions between adjacent PoPs. We then connected the
// emulated Amsterdam PoP to peer at AMS-IX via PEERING."
//
// This example builds the backbone in MinineXt, converges it, connects
// its Amsterdam PoP to the testbed through a PEERING client, announces
// every PoP prefix (private PoP ASNs stripped at the border), and
// routes traffic from the live Internet through the emulated backbone
// to the Tokyo PoP.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"peering"
	"peering/internal/mininext"
	"peering/internal/router"
	"peering/internal/topozoo"
)

func main() {
	fmt.Println("== Hurricane Electric backbone emulation (§4.2) ==")

	// 1. The backbone: 24 PoPs from Topology Zoo, eBGP between
	// adjacent PoPs under private ASNs 65100+.
	he := topozoo.HurricaneElectric()
	fmt.Printf("topology: %s — %d PoPs, %d links\n", he.Name, len(he.Nodes), len(he.Edges))

	tb, err := peering.NewTestbed(peering.Config{})
	if err != nil {
		log.Fatalf("testbed: %v", err)
	}
	defer tb.Close()
	if err := tb.WaitReady(30 * time.Second); err != nil {
		log.Fatalf("not ready: %v", err)
	}
	exp, err := tb.NewExperiment("he", "hebackbone", "HE backbone behind PEERING", false)
	if err != nil {
		log.Fatalf("experiment: %v", err)
	}
	alloc := exp.Allocation[0] // one /24 — sliced into /29s per PoP

	// Build with per-PoP /29s carved from the experiment allocation, so
	// every PoP address is globally announced testbed space.
	res, err := buildHE(he, alloc)
	if err != nil {
		log.Fatalf("emulation: %v", err)
	}
	start := time.Now()
	for !res.Converged() {
		if time.Since(start) > 30*time.Second {
			log.Fatal("backbone never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("backbone converged in %v; every PoP holds %d PoP prefixes\n",
		time.Since(start).Round(time.Millisecond), len(he.Nodes))

	ams := res.ByLabel["Amsterdam"]
	tokyo := res.ByLabel["Tokyo"]

	// 2. Intradomain check: ping Tokyo from Amsterdam across the
	// emulated backbone.
	tokyoHost := res.PrefixOf["Tokyo"].Addr().Next()
	pkt := &peering.Packet{Src: res.PrefixOf["Amsterdam"].Addr().Next(), Dst: tokyoHost, TTL: 64, Proto: 1, ICMP: 8}
	before := tokyo.DP.Stats().DeliveredLocal
	ams.DP.Originate(pkt)
	if tokyo.DP.Stats().DeliveredLocal == before {
		log.Fatal("Amsterdam→Tokyo ping failed inside the backbone")
	}
	rt := ams.BGP.LocRIB().Best(res.PrefixOf["Tokyo"])
	fmt.Printf("Amsterdam→Tokyo inside the backbone: AS path [%s], ping OK\n", rt.Attrs.PathString())

	// 3. Interdomain: the Amsterdam PoP connects to PEERING; announce
	// the whole allocation with the Amsterdam PoP's private ASN as the
	// emulated origin.
	cl, err := tb.ConnectClient("hebackbone")
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	amsASN := ams.ASN
	if err := cl.Announce(alloc, peering.AnnounceOptions{OriginASNs: []uint32{amsASN}}); err != nil {
		log.Fatalf("announce: %v", err)
	}
	var path string
	for i := 0; i < 3000; i++ {
		var ok bool
		if path, ok = tb.RouteAtCollector(alloc); ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if path == "" {
		log.Fatal("backbone prefix never reached the collector")
	}
	fmt.Printf("collector sees %v via [%s] — PoP ASN %d stripped at the border (§3)\n", alloc, path, amsASN)

	// 4. Traffic from the live Internet into the emulated backbone:
	// tunnel → Amsterdam PoP → across PoPs → Tokyo.
	cl.OnPacket(func(p *peering.Packet) { ams.DP.Receive(p, nil) })
	var srcASN uint32
	for _, asn := range tb.Internet.ASNs() {
		if tb.InternetHost(asn).IsValid() {
			srcASN = asn
			break
		}
	}
	src := tb.Live.Container(srcASN)
	for i := 0; i < 2000 && src.DP.LookupRoute(tokyoHost) == nil; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	before = tokyo.DP.Stats().DeliveredLocal
	inet := &peering.Packet{Src: tb.InternetHost(srcASN), Dst: tokyoHost, TTL: 64, Proto: 6, Payload: []byte("hello tokyo")}
	src.DP.Originate(inet)
	deadline := time.Now().Add(10 * time.Second)
	for tokyo.DP.Stats().DeliveredLocal == before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if tokyo.DP.Stats().DeliveredLocal == before {
		log.Fatal("Internet traffic never crossed the emulated backbone to Tokyo")
	}
	fmt.Printf("traffic from AS%d crossed the real Internet, entered at Amsterdam, and reached Tokyo\n", srcASN)
	fmt.Println("hebackbone complete")
}

// buildHE is BuildFromTopology with /29-per-PoP carving (24 PoPs fit
// in one /24 with room to spare: 32 × /29).
func buildHE(topo *topozoo.Topology, alloc netip.Prefix) (*mininext.BuildResult, error) {
	n := mininext.NewNetwork(topo.Name)
	res := &mininext.BuildResult{
		Network:  n,
		ByLabel:  map[string]*mininext.Container{},
		PrefixOf: map[string]netip.Prefix{},
	}
	base := alloc.Masked().Addr().As4()
	byID := map[string]*mininext.Container{}
	for i, node := range topo.Nodes {
		lo := netip.AddrFrom4([4]byte{10, 10, byte(i), 1})
		c, err := n.AddContainer(node.Label, 65100+uint32(i), lo)
		if err != nil {
			return nil, err
		}
		byID[node.ID] = c
		res.ByLabel[node.Label] = c
		v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
		v += uint32(i) << 3
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}), 29)
		res.PrefixOf[node.Label] = p
	}
	for _, e := range topo.Edges {
		if _, err := n.Link(byID[e.Source], byID[e.Target]); err != nil {
			return nil, err
		}
	}
	for _, node := range topo.Nodes {
		c := byID[node.ID]
		p := res.PrefixOf[node.Label]
		c.DP.AddLocal(p.Addr().Next())
		c.BGP.Announce(p, router.AnnounceSpec{})
	}
	return res, nil
}
