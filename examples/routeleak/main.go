// Route leak, blocked at the mux: the compiled safety filter
// (Peerlock-lite) stops a client from leaking one provider's route to
// the other.
//
// The classic leak: a multihomed stub learns a route from provider A
// and re-announces it to provider B, silently offering transit between
// two networks that never asked for it. On the real Internet this shape
// has rerouted continental traffic through a basement. A PEERING mux
// interposes on every client announcement, so it is the natural — and,
// with the filter compiled into the hot path, cheap — place to stop
// the leak before it reaches any BGP neighbor.
//
// The scenario: load a Peerlock-lite rule listing the testbed's transit
// providers (they never appear in a path learned from a stub), have the
// experiment announce its prefix cleanly (accepted), then replay the
// leak shape (rejected). The verdict counters on the server's telemetry
// are the operator-visible trace of the block — the same counters
// `peeringctl metrics` renders.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"strings"
	"time"

	"peering"
	"peering/internal/policy/compiled"
)

func main() {
	fmt.Println("== Route leak vs the compiled safety filter ==")

	tb, err := peering.NewTestbed(peering.Config{})
	if err != nil {
		log.Fatalf("testbed: %v", err)
	}
	defer tb.Close()
	if err := tb.WaitReady(30 * time.Second); err != nil {
		log.Fatalf("not ready: %v", err)
	}

	// The testbed's transit providers, discovered from the mux's own
	// upstream table. A path learned from a stub client must never
	// carry either: stubs do not provide transit to transit providers.
	var providers []uint32
	var leakTarget uint32 // upstream ID the leak will be aimed at
	for _, u := range tb.Server.Upstreams() {
		if cfg := u.Config(); cfg.Transit {
			providers = append(providers, cfg.ASN)
			leakTarget = cfg.ID
		}
	}
	if len(providers) < 2 {
		log.Fatalf("testbed has %d transit providers, want 2", len(providers))
	}

	// The rule file an operator would keep on disk and ship with
	// `peeringctl policy reload rules.txt`; here it is composed and
	// loaded in-process. Same text format either way.
	rules := fmt.Sprintf("# PEERING mux safety rules\npeerlock-lite %d %d\n", providers[0], providers[1])
	fmt.Printf("loading rules:\n%s", rules)
	rs, err := compiled.ParseRules(strings.NewReader(rules))
	if err != nil {
		log.Fatalf("parse rules: %v", err)
	}
	tb.Server.LoadPolicy(rs)
	st := tb.Server.PolicyStatus()
	fmt.Printf("filter live: generation %d, %d no-transit ASes\n\n", st.Generation, st.NoTransitASes)

	exp, err := tb.NewExperiment("leaky", "leaky", "route leak containment", false)
	if err != nil {
		log.Fatalf("experiment: %v", err)
	}
	prefix := exp.Allocation[0]
	cl, err := tb.ConnectClient("leaky")
	if err != nil {
		log.Fatalf("client: %v", err)
	}

	// Clean announcement: the client's own allocation on its own path.
	// The filter sees nothing wrong and the route reaches the world.
	if err := cl.Announce(prefix, peering.AnnounceOptions{}); err != nil {
		log.Fatalf("announce: %v", err)
	}
	awaitRoute(tb, providers[1], prefix, true)
	fmt.Printf("clean announce: %v accepted — provider AS%d holds the route\n", prefix, providers[1])

	// The leak: re-announce the prefix toward provider B with the path
	// claiming it came through provider A — exactly what a stub that
	// wired provider A's RIB into its provider-B session would emit.
	if err := cl.Withdraw(prefix, nil); err != nil {
		log.Fatalf("withdraw: %v", err)
	}
	awaitRoute(tb, providers[1], prefix, false)
	// Let the withdraw's ripple through the live Internet quiesce, then
	// snapshot the counters: the delta below is the leak and only the
	// leak.
	base := settledStats(tb)
	if err := cl.Announce(prefix, peering.AnnounceOptions{
		Poison:    []uint32{providers[0]},
		Upstreams: []uint32{leakTarget},
	}); err != nil {
		log.Fatalf("leak announce: %v", err)
	}

	// The mux blocks it before any BGP neighbor hears it: the provider
	// table stays clean and the rejection lands on the verdict counter.
	deadline := time.Now().Add(5 * time.Second)
	for tb.Server.Stats().PolicyRejected == base.PolicyRejected && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stats := tb.Server.Stats()
	if got := stats.PolicyRejected - base.PolicyRejected; got != 1 {
		log.Fatalf("leak rejections = %d, want 1", got)
	}
	if rib := tb.Live.Container(providers[1]).BGP.LocRIB(); rib.Best(prefix) != nil {
		log.Fatalf("leaked route escaped to provider AS%d", providers[1])
	}
	fmt.Printf("leak announce: path [AS%d %v AS%d] REJECTED (peerlock_lite) — never left the mux\n",
		tb.ASN, providers[0], tb.ASN)

	// The operator's view: the same counters peeringctl metrics renders.
	fmt.Println("\nverdict counters (peering_policy_verdicts_total):")
	fmt.Printf("  rule=none          outcome=accept  %d\n", stats.PolicyAccepted)
	fmt.Printf("  rule=peerlock_lite outcome=reject  %d\n", stats.PolicyRejected)
	if base.PolicyRejected > 0 {
		// The same rule fires on the ingest side too: routes echoing back
		// through the route server with a provider's ASN mid-path are the
		// identical leak shape, heard instead of spoken, and the filter
		// rejected each one pre-RIB.
		fmt.Printf("  (%d of those were provider-path echoes caught on upstream ingest)\n", base.PolicyRejected)
	}
	fmt.Println("\nroute leak contained: the filter is in the ingest path, not in a pipeline behind it")
}

// settledStats polls the server's counters until the policy verdicts
// hold still for 300ms — the live Internet's churn has drained.
func settledStats(tb *peering.Testbed) (st struct{ PolicyAccepted, PolicyRejected uint64 }) {
	last := tb.Server.Stats()
	stable := time.Now()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		cur := tb.Server.Stats()
		if cur.PolicyAccepted != last.PolicyAccepted || cur.PolicyRejected != last.PolicyRejected {
			last, stable = cur, time.Now()
		} else if time.Since(stable) > 300*time.Millisecond {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	st.PolicyAccepted, st.PolicyRejected = last.PolicyAccepted, last.PolicyRejected
	return st
}

// awaitRoute polls provider asn's Loc-RIB until p's presence matches
// want, or dies after 10 seconds.
func awaitRoute(tb *peering.Testbed, asn uint32, p netip.Prefix, want bool) {
	rib := tb.Live.Container(asn).BGP.LocRIB()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if (rib.Best(p) != nil) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatalf("provider AS%d never reached route-present=%v for %v", asn, want, p)
}
