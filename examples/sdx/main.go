// SDX-style server-side packet processing — §3 "Deploying real
// services": "we plan to expose a lightweight packet processing API
// (e.g., running an OpenFlow software switch or extending Linux's
// iptables) to provide common packet processing capabilities to
// clients at lower overhead." SDX [19] itself prototyped a
// software-defined IXP on early PEERING.
//
// This example installs match-action rules on the PEERING server's
// data plane for one experiment's prefix:
//
//   - application-specific steering: web traffic (dst port 80) to the
//     experiment is redirected to a scrubbing/cache address;
//   - a drop rule for a blocked port (the DDoS-defense primitive ARROW
//     [42] built on);
//   - everything else flows untouched.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"sync/atomic"
	"time"

	"peering"
	"peering/internal/dataplane"
	"peering/internal/internet"
)

func main() {
	fmt.Println("== SDX: match-action processing at the PEERING server ==")

	tb, err := peering.NewTestbed(peering.Config{})
	if err != nil {
		log.Fatalf("testbed: %v", err)
	}
	defer tb.Close()
	if err := tb.WaitReady(30 * time.Second); err != nil {
		log.Fatalf("not ready: %v", err)
	}
	exp, err := tb.NewExperiment("sdx", "sdx", "software-defined exchange rules", false)
	if err != nil {
		log.Fatalf("experiment: %v", err)
	}
	alloc := exp.Allocation[0]
	cl, err := tb.ConnectClient("sdx")
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	cl.Announce(alloc, peering.AnnounceOptions{})

	webServer := alloc.Addr().Next()            // .1 — the "origin"
	cache := netip.AddrFrom4(addr4(alloc, 200)) // .200 — the cache VM

	// The experiment's match-action table, installed on the server —
	// code runs at the exchange, not at the client (§3: "researchers
	// can also run lightweight code in VMs on PEERING servers").
	var redirected, dropped, passed atomic.Int64
	tb.Server.DP().AddProcessor(func(pkt *dataplane.Packet, in *dataplane.Iface) dataplane.Verdict {
		if !alloc.Contains(pkt.Dst) {
			return dataplane.VerdictContinue // not our experiment's traffic
		}
		switch {
		case pkt.Proto == dataplane.ProtoTCP && pkt.DstPort == 80 && pkt.Dst == webServer:
			// Application-specific steering: serve web from the cache.
			pkt.Dst = cache
			redirected.Add(1)
			return dataplane.VerdictContinue
		case pkt.DstPort == 1900:
			// Blocked amplification port.
			dropped.Add(1)
			return dataplane.VerdictDrop
		default:
			passed.Add(1)
			return dataplane.VerdictContinue
		}
	})

	// Traffic sink at the client: count what arrives where.
	byDst := map[netip.Addr]*atomic.Int64{webServer: {}, cache: {}}
	other := &atomic.Int64{}
	cl.OnPacket(func(p *peering.Packet) {
		if c, ok := byDst[p.Dst]; ok {
			c.Add(1)
		} else {
			other.Add(1)
		}
	})

	// A traffic source on the live Internet.
	var srcASN uint32
	for _, asn := range tb.Internet.ASNs() {
		if tb.Internet.AS(asn).Kind == internet.KindEyeball && tb.InternetHost(asn).IsValid() {
			srcASN = asn
			break
		}
	}
	if srcASN == 0 {
		for _, asn := range tb.Internet.ASNs() {
			if tb.InternetHost(asn).IsValid() {
				srcASN = asn
				break
			}
		}
	}
	src := tb.Live.Container(srcASN)
	for i := 0; i < 2000 && src.DP.LookupRoute(webServer) == nil; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	sendFrom := func(port uint16, proto dataplane.Proto) {
		pkt := &peering.Packet{
			Src: tb.InternetHost(srcASN), Dst: webServer, TTL: 64,
			Proto: proto, DstPort: port,
		}
		src.DP.Originate(pkt)
	}

	fmt.Printf("sending from AS%d: 3× web (tcp/80), 2× SSDP (udp/1900), 1× ssh (tcp/22)\n", srcASN)
	for i := 0; i < 3; i++ {
		sendFrom(80, dataplane.ProtoTCP)
	}
	for i := 0; i < 2; i++ {
		sendFrom(1900, dataplane.ProtoUDP)
	}
	sendFrom(22, dataplane.ProtoTCP)

	deadline := time.Now().Add(10 * time.Second)
	for byDst[cache].Load() < 3 || byDst[webServer].Load() < 1 {
		if !time.Now().Before(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	fmt.Printf("server rules:   redirected=%d dropped=%d passed=%d\n",
		redirected.Load(), dropped.Load(), passed.Load())
	fmt.Printf("client arrival: cache=%d origin=%d other=%d\n",
		byDst[cache].Load(), byDst[webServer].Load(), other.Load())

	if redirected.Load() != 3 || dropped.Load() != 2 || passed.Load() != 1 {
		log.Fatalf("rule counters wrong")
	}
	if byDst[cache].Load() != 3 || byDst[webServer].Load() != 1 || other.Load() != 0 {
		log.Fatalf("arrival counters wrong")
	}
	fmt.Println("web traffic served from the cache, amplification port dropped at the exchange, ssh untouched")
	fmt.Println("sdx complete")
}

// addr4 computes alloc.base + host.
func addr4(p netip.Prefix, host byte) [4]byte {
	b := p.Masked().Addr().As4()
	b[3] += host
	return b
}
