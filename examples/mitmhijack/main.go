// MITM hijack study: emulate a man-in-the-middle attacker that uses
// BGP to intercept traffic, inspect it, and forward it on to the real
// destination — the §2 example that needs BOTH rich interdomain
// connectivity (to divert traffic with a more-specific announcement)
// AND intradomain control (to return it to the destination), after
// Pilosov & Kapela's "Stealing The Internet" (DEFCON 16).
//
// The experiment runs two emulated domains behind one PEERING client:
// a victim service and an attacker. The attacker announces a
// more-specific of the victim's prefix, attracts the victim's inbound
// traffic, inspects it, and tunnels it onward — the victim keeps
// receiving every byte, unaware.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"peering"
	"peering/internal/dataplane"
	"peering/internal/internet"
	"peering/internal/mininext"
)

func main() {
	fmt.Println("== MITM interception study ==")

	tb, err := peering.NewTestbed(peering.Config{})
	if err != nil {
		log.Fatalf("testbed: %v", err)
	}
	defer tb.Close()
	if err := tb.WaitReady(30 * time.Second); err != nil {
		log.Fatalf("not ready: %v", err)
	}
	exp, err := tb.NewExperiment("mitm", "mitm", "interception study", false)
	if err != nil {
		log.Fatalf("experiment: %v", err)
	}
	alloc := exp.Allocation[0] // a /24
	cl, err := tb.ConnectClient("mitm")
	if err != nil {
		log.Fatalf("client: %v", err)
	}

	// Intradomain (MinineXt): border ─ victim, border ─ attacker.
	const victimASN, attackerASN = 65010, 65066
	emu := mininext.NewNetwork("mitm-domains")
	border, _ := emu.AddContainer("border", victimASN, netip.MustParseAddr("10.10.0.1"))
	victim, _ := emu.AddContainer("victim", victimASN, netip.MustParseAddr("10.10.1.1"))
	attacker, _ := emu.AddContainer("attacker", attackerASN, netip.MustParseAddr("10.10.2.1"))
	emu.Link(border, victim)
	emu.Link(border, attacker)

	victimAddr := alloc.Addr().Next().Next() // x.x.x.2 — the service
	victim.DP.AddLocal(victimAddr)
	var victimIface, attackerIface *dataplane.Iface
	for _, i := range border.DP.Ifaces() {
		switch i.Label {
		case "to-victim":
			victimIface = i
		case "to-attacker":
			attackerIface = i
		}
	}
	// Normal operation: the whole /24 lives at the victim.
	border.DP.SetRoute(alloc, netip.Addr{}, victimIface)

	// Tunnel bridging: packets from the Internet enter the border.
	cl.OnPacket(func(p *peering.Packet) { border.DP.Receive(p, nil) })

	// The attacker's inspection point: count and measure, then tunnel
	// onward to the victim (out of band, as the DEFCON attack did with
	// a pre-arranged path).
	intercepted := 0
	attacker.DP.AddProcessor(func(pkt *dataplane.Packet, _ *dataplane.Iface) dataplane.Verdict {
		if pkt.Dst == victimAddr {
			intercepted++
			fmt.Printf("  [attacker] inspected packet %d: %s→%s %q\n",
				intercepted, pkt.Src, pkt.Dst, pkt.Payload)
			victim.DP.Receive(pkt, nil) // the onward tunnel
			return dataplane.VerdictHandled
		}
		return dataplane.VerdictContinue
	})

	// Phase 1 — legitimate service: announce the /24 (victim origin).
	if err := cl.Announce(alloc, peering.AnnounceOptions{OriginASNs: []uint32{victimASN}}); err != nil {
		log.Fatalf("announce: %v", err)
	}
	waitRoute(tb, alloc)
	src := pickSource(tb)
	send(tb, src, victimAddr, "GET /account")
	waitDelivered(victim, 1, "baseline traffic never reached the victim")
	fmt.Printf("baseline: traffic from AS%d reaches the victim directly (attacker saw %d packets)\n", src, intercepted)
	if intercepted != 0 {
		log.Fatal("attacker saw baseline traffic")
	}

	// Phase 2 — the attack: announce a more-specific /25 covering the
	// victim, originated by the attacker's domain, and divert the
	// border's intradomain route to the attacker.
	half := netip.PrefixFrom(alloc.Addr(), 25)
	if err := cl.Announce(half, peering.AnnounceOptions{OriginASNs: []uint32{attackerASN}}); err != nil {
		log.Fatalf("hijack announce: %v", err)
	}
	waitRoute(tb, half)
	border.DP.SetRoute(half, netip.Addr{}, attackerIface)
	fmt.Printf("attack: announced more-specific %v; longest-prefix match now diverts to the attacker\n", half)

	before := intercepted
	send(tb, src, victimAddr, "GET /account?token=secret")
	waitDelivered(victim, 2, "intercepted traffic never reached the victim — attack was visible!")
	if intercepted != before+1 {
		log.Fatalf("attacker intercepted %d packets, want %d", intercepted, before+1)
	}
	fmt.Println("the victim received every byte — interception is invisible end to end")

	// Interdomain hygiene check: the hijacking announcement leaves the
	// testbed with private ASNs stripped — the Internet sees only the
	// testbed ASN, exactly like the real attack.
	if path, ok := tb.RouteAtCollector(half); ok {
		fmt.Printf("collector sees the more-specific via [%s] — emulated domains invisible\n", path)
	}
	fmt.Println("mitm study complete")
}

// pickSource returns a stub AS with a routable host to send from.
func pickSource(tb *peering.Testbed) uint32 {
	for _, asn := range tb.Internet.ASNs() {
		if tb.InternetHost(asn).IsValid() && tb.Internet.AS(asn).Kind == internet.KindStub {
			return asn
		}
	}
	log.Fatal("no source AS")
	return 0
}

// send originates one packet from src's network toward dst (delivery
// through the live Internet and the tunnel is synchronous).
func send(tb *peering.Testbed, src uint32, dst netip.Addr, payload string) {
	c := tb.Live.Container(src)
	// Wait for the source to have a forwarding entry.
	for i := 0; i < 2000 && c.DP.LookupRoute(dst) == nil; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	pkt := &peering.Packet{
		Src: tb.InternetHost(src), Dst: dst, TTL: 64, Proto: 6, /* TCP */
		Payload: []byte(payload),
	}
	c.DP.Originate(pkt)
}

// waitDelivered polls the victim's delivery counter (tunnel delivery
// is asynchronous).
func waitDelivered(victim *mininext.Container, want uint64, msg string) {
	for i := 0; i < 2000; i++ {
		if victim.DP.Stats().DeliveredLocal >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal(msg)
}

func waitRoute(tb *peering.Testbed, p netip.Prefix) {
	for i := 0; i < 3000; i++ {
		if _, ok := tb.RouteAtCollector(p); ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatalf("route %v never propagated", p)
}
