// Anycast: announce one prefix through multiple providers and measure
// the catchment — which ASes enter through which provider — then shift
// it with selective prepending.
//
// §3 "Deploying real services": "researchers can advertise services on
// real IP addresses and potentially attract traffic to them, e.g., by
// anycasting a prefix from all PEERING providers and peers."
package main

import (
	"fmt"
	"log"
	"net/netip"
	"sort"
	"time"

	"peering"
)

func main() {
	fmt.Println("== Anycast catchment measurement ==")

	tb, err := peering.NewTestbed(peering.Config{})
	if err != nil {
		log.Fatalf("testbed: %v", err)
	}
	defer tb.Close()
	if err := tb.WaitReady(30 * time.Second); err != nil {
		log.Fatalf("not ready: %v", err)
	}

	exp, err := tb.NewExperiment("anycast", "anycast", "catchment study", false)
	if err != nil {
		log.Fatalf("experiment: %v", err)
	}
	prefix := exp.Allocation[0]
	cl, err := tb.ConnectClient("anycast")
	if err != nil {
		log.Fatalf("client: %v", err)
	}

	// The anycast "sites": the transit providers behind upstreams 2
	// and 3 (plus the IXP route server as a third entry).
	entries := map[uint32]string{} // entry ASN → upstream name
	for _, u := range cl.Upstreams() {
		entries[u.ASN] = u.Name
	}

	// Act 1: announce everywhere.
	if err := cl.Announce(prefix, peering.AnnounceOptions{}); err != nil {
		log.Fatalf("announce: %v", err)
	}
	waitSettled(tb, prefix)
	base := catchment(tb, prefix)
	fmt.Println("catchment with equal announcements:")
	printCatchment(base, entries)

	// Act 2: shift traffic away from one provider by prepending
	// through it (announce unchanged elsewhere).
	var shiftASN uint32
	var shiftID uint32
	for _, u := range cl.Upstreams() {
		if u.Transit {
			shiftASN, shiftID = u.ASN, u.ID
			break
		}
	}
	fmt.Printf("\nprepending x4 toward AS%d to shift its catchment…\n", shiftASN)
	// Re-announce: heavy prepend via the shifted provider, clean
	// announcement via the others.
	var otherIDs []uint32
	for _, u := range cl.Upstreams() {
		if u.ID != shiftID {
			otherIDs = append(otherIDs, u.ID)
		}
	}
	if err := cl.Announce(prefix, peering.AnnounceOptions{Upstreams: []uint32{shiftID}, Prepend: 4}); err != nil {
		log.Fatalf("prepend announce: %v", err)
	}
	if err := cl.Announce(prefix, peering.AnnounceOptions{Upstreams: otherIDs}); err != nil {
		log.Fatalf("clean announce: %v", err)
	}
	waitSettled(tb, prefix)
	time.Sleep(200 * time.Millisecond) // let churn settle
	shifted := catchment(tb, prefix)
	fmt.Println("catchment after prepending:")
	printCatchment(shifted, entries)

	if shifted[shiftASN] >= base[shiftASN] {
		log.Fatalf("prepending did not shrink AS%d's catchment (%d → %d)",
			shiftASN, base[shiftASN], shifted[shiftASN])
	}
	fmt.Printf("\nAS%d's catchment shrank from %d to %d ASes — traffic engineering works\n",
		shiftASN, base[shiftASN], shifted[shiftASN])
	fmt.Println("anycast complete")
}

// catchment maps entry ASN → number of live ASes whose best path to
// the prefix enters the testbed through it (the AS adjacent to our
// ASN on their chosen path).
func catchment(tb *peering.Testbed, p netip.Prefix) map[uint32]int {
	out := map[uint32]int{}
	for _, asn := range tb.Internet.ASNs() {
		rt := tb.Live.Container(asn).BGP.LocRIB().Best(p)
		if rt == nil {
			continue
		}
		path := rt.Attrs.ASList()
		entry := uint32(0)
		for i, hop := range path {
			if hop == tb.ASN && i > 0 {
				entry = path[i-1]
				break
			}
			if hop == tb.ASN && i == 0 {
				entry = asn // directly adjacent
			}
		}
		if entry != 0 {
			out[entry]++
		}
	}
	return out
}

func printCatchment(c map[uint32]int, entries map[uint32]string) {
	asns := make([]uint32, 0, len(c))
	for asn := range c {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return c[asns[i]] > c[asns[j]] })
	for _, asn := range asns {
		label := entries[asn]
		if label == "" {
			label = "(via IXP peer)"
		}
		fmt.Printf("  entry AS%-5d %-22s %3d ASes\n", asn, label, c[asn])
	}
}

// waitSettled waits until most of the live Internet has a route.
func waitSettled(tb *peering.Testbed, p netip.Prefix) {
	want := tb.Internet.Len() * 8 / 10
	for i := 0; i < 3000; i++ {
		n := 0
		for _, asn := range tb.Internet.ASNs() {
			if tb.Live.Container(asn).BGP.LocRIB().Best(p) != nil {
				n++
			}
		}
		if n >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("announcement never settled across the live Internet")
}
