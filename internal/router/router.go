// Package router implements the testbed's software BGP router — the
// role Quagga plays in the paper. A Router owns a Loc-RIB, per-peer
// Adj-RIBs, import/export policy hooks, origination with per-peer
// steering (selective announce, prepending, poisoning, communities),
// private-ASN stripping, and iBGP/eBGP propagation rules.
//
// The same Router type is used everywhere a BGP speaker appears in the
// testbed: inside MinineXt emulations (one per PoP), as the client's
// announcement engine, as the AS model behind IXP members, and as the
// building block of PEERING servers.
package router

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"peering/internal/bgp"
	"peering/internal/clock"
	"peering/internal/policy"
	"peering/internal/rib"
	"peering/internal/wire"
)

// Config parameterizes a Router.
type Config struct {
	// AS is the router's autonomous system number.
	AS uint32
	// RouterID is the BGP identifier.
	RouterID netip.Addr
	// Clock drives session timers (nil = system clock).
	Clock clock.Clock
	// StripPrivateASNs removes private ASNs from AS paths on eBGP
	// export — how PEERING hides emulated domains' private ASNs from
	// the real Internet (§3).
	StripPrivateASNs bool
	// RouteServer makes the router transparent, like an IXP route
	// server: it does not prepend its own ASN and does not rewrite
	// NEXT_HOP, so members appear directly connected to each other.
	RouteServer bool
}

// PeerConfig describes one neighbor.
type PeerConfig struct {
	// Addr is the neighbor's address — the peer's identity in RIBs.
	Addr netip.Addr
	// LocalAddr is our address facing this peer (NEXT_HOP on export).
	LocalAddr netip.Addr
	// AS is the neighbor's expected ASN (0 = learn from OPEN).
	AS uint32
	// Internal marks an iBGP session.
	Internal bool
	// Relationship drives Gao–Rexford export filtering and default
	// LOCAL_PREF on import; RelNone disables both (explicit policy
	// only).
	Relationship policy.Relationship
	// Import/Export policies run on every route in/out.
	Import *policy.Policy
	Export *policy.Policy
	// AddPath offers ADD-PATH on the session.
	AddPath bool
	// HoldTime overrides the default session hold time.
	HoldTime time.Duration
	// Describe labels the peer.
	Describe string
}

// Peer is a configured neighbor and (when attached) its live session.
type Peer struct {
	cfg    PeerConfig
	r      *Router
	mu     sync.Mutex
	sess   *bgp.Session
	adjIn  *rib.AdjRIB
	adjOut *rib.AdjRIB
}

// Config returns the peer's configuration.
func (p *Peer) Config() PeerConfig { return p.cfg }

// Session returns the live session (nil when detached).
func (p *Peer) Session() *bgp.Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sess
}

// Established reports whether the peer's session is up.
func (p *Peer) Established() bool {
	s := p.Session()
	return s != nil && s.State() == bgp.StateEstablished
}

// RoutesIn returns the number of routes received from this peer.
func (p *Peer) RoutesIn() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.adjIn.Len()
}

// RoutesOut returns the number of routes advertised to this peer.
func (p *Peer) RoutesOut() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.adjOut.Len()
}

// WalkIn visits the Adj-RIB-In.
func (p *Peer) WalkIn(fn func(*rib.Route) bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.adjIn.Walk(fn)
}

// AnnounceSpec controls how one originated prefix is exported — the
// interdomain-control knobs of §2 ("what announcements to make").
type AnnounceSpec struct {
	// Peers restricts export to these neighbor addresses (nil = all).
	Peers []netip.Addr
	// Prepend prepends our own ASN this many extra times.
	Prepend int
	// Poison inserts these ASNs into the path (after our own), causing
	// those ASes to loop-reject the route — LIFEGUARD's mechanism.
	Poison []uint32
	// Communities to attach.
	Communities []wire.Community
	// OriginASNs, when set, seeds the path as if these ASes (e.g. an
	// emulated domain's private ASN chain) originated the prefix.
	OriginASNs []uint32
	// MED to attach (pointer-free: MEDSet gates it).
	MED    uint32
	MEDSet bool
}

// Router is a BGP speaker.
type Router struct {
	cfg Config

	mu         sync.Mutex
	peers      map[netip.Addr]*Peer
	loc        *rib.LocRIB
	originated map[netip.Prefix]AnnounceSpec
	onBest     func(rib.Change)
}

// New returns a Router with cfg.
func New(cfg Config) *Router {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	return &Router{
		cfg:        cfg,
		peers:      make(map[netip.Addr]*Peer),
		loc:        rib.NewLocRIB(),
		originated: make(map[netip.Prefix]AnnounceSpec),
	}
}

// AS returns the router's ASN.
func (r *Router) AS() uint32 { return r.cfg.AS }

// RouterID returns the BGP identifier.
func (r *Router) RouterID() netip.Addr { return r.cfg.RouterID }

// LocRIB exposes the router's Loc-RIB (read-mostly; callers must not
// mutate routes).
func (r *Router) LocRIB() *rib.LocRIB { return r.loc }

// OnBestChange registers a callback fired after each best-route change
// (the FIB download hook). Must be set before sessions attach.
func (r *Router) OnBestChange(fn func(rib.Change)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onBest = fn
}

// AddPeer registers a neighbor. The session starts when Attach is
// called with a transport.
func (r *Router) AddPeer(cfg PeerConfig) *Peer {
	p := &Peer{cfg: cfg, r: r, adjIn: rib.NewAdjRIB(), adjOut: rib.NewAdjRIB()}
	r.mu.Lock()
	r.peers[cfg.Addr] = p
	r.mu.Unlock()
	return p
}

// Peer returns the neighbor configured at addr.
func (r *Router) Peer(addr netip.Addr) *Peer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.peers[addr]
}

// Peers returns all configured neighbors.
func (r *Router) Peers() []*Peer {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Peer, 0, len(r.peers))
	for _, p := range r.peers {
		out = append(out, p)
	}
	return out
}

// Attach binds a transport to peer p and runs the session
// asynchronously. The returned session can be awaited via Done().
func (r *Router) Attach(p *Peer, conn net.Conn) *bgp.Session {
	holdTime := bgp.DefaultHoldTime
	if p.cfg.HoldTime != 0 {
		holdTime = p.cfg.HoldTime
	}
	sess := bgp.New(conn, bgp.Config{
		LocalAS:  r.cfg.AS,
		LocalID:  r.cfg.RouterID,
		PeerAS:   p.cfg.AS,
		HoldTime: holdTime,
		AddPath:  p.cfg.AddPath,
		Clock:    r.cfg.Clock,
		Describe: fmt.Sprintf("AS%d->%s", r.cfg.AS, p.cfg.Describe),
	}, &peerHandler{p: p})
	p.mu.Lock()
	p.sess = sess
	p.mu.Unlock()
	go sess.Run()
	return sess
}

// peerHandler adapts bgp.Handler events onto the router.
type peerHandler struct{ p *Peer }

func (h *peerHandler) Established(s *bgp.Session) { h.p.r.peerUp(h.p) }

func (h *peerHandler) UpdateReceived(s *bgp.Session, u *wire.Update) {
	h.p.r.handleUpdate(h.p, s, u)
}

func (h *peerHandler) Closed(s *bgp.Session, err error) { h.p.r.peerDown(h.p) }

// peerUp sends the full table to a newly established peer, closed by an
// end-of-RIB marker so graceful-restart peers can flush stale routes.
func (r *Router) peerUp(p *Peer) {
	var routes []*rib.Route
	r.loc.WalkBest(func(rt *rib.Route) bool {
		routes = append(routes, rt)
		return true
	})
	for _, rt := range routes {
		r.exportRoute(p, rt)
	}
	if sess := p.Session(); sess != nil {
		sess.Send(&wire.Update{})
	}
}

// peerDown withdraws everything learned from p and notifies others.
func (r *Router) peerDown(p *Peer) {
	p.mu.Lock()
	p.adjIn.Clear()
	p.adjOut.Clear()
	p.sess = nil
	p.mu.Unlock()
	changes := r.loc.WithdrawPeer(p.cfg.Addr)
	for _, ch := range changes {
		r.propagate(ch)
	}
}

// handleUpdate processes one inbound UPDATE from p.
func (r *Router) handleUpdate(p *Peer, s *bgp.Session, u *wire.Update) {
	// Withdrawals first (RFC 4271 §9).
	for _, n := range u.Withdrawn {
		src := rib.PeerKey{Addr: p.cfg.Addr, PathID: n.ID}
		p.mu.Lock()
		p.adjIn.Remove(n.Prefix, n.ID)
		p.mu.Unlock()
		if ch, changed := r.loc.Withdraw(n.Prefix, src); changed {
			r.propagate(ch)
		}
	}
	if u.Attrs == nil || len(u.Reach) == 0 {
		return
	}
	// Loop detection: our ASN in the path makes the route ineligible —
	// but the advertisement still implicitly withdraws any previous
	// route for the same NLRI from this peer (RFC 4271 §9; this is
	// what makes BGP poisoning work as a steering mechanism).
	if u.Attrs.ContainsAS(r.cfg.AS) {
		for _, n := range u.Reach {
			src := rib.PeerKey{Addr: p.cfg.Addr, PathID: n.ID}
			p.mu.Lock()
			p.adjIn.Remove(n.Prefix, n.ID)
			p.mu.Unlock()
			if ch, changed := r.loc.Withdraw(n.Prefix, src); changed {
				r.propagate(ch)
			}
		}
		return
	}
	for _, n := range u.Reach {
		rt := &rib.Route{
			Prefix:  n.Prefix,
			Attrs:   u.Attrs.Clone(),
			Src:     rib.PeerKey{Addr: p.cfg.Addr, PathID: n.ID},
			PeerAS:  s.PeerAS(),
			PeerID:  s.PeerID(),
			EBGP:    !p.cfg.Internal,
			Learned: r.cfg.Clock.Now(),
		}
		// eBGP: LOCAL_PREF is not accepted from outside; relationship
		// (when configured) assigns it.
		if rt.EBGP {
			rt.Attrs.HasLocalPref = false
			if p.cfg.Relationship != policy.RelNone {
				rt.Attrs.LocalPref = policy.LocalPrefFor(p.cfg.Relationship)
				rt.Attrs.HasLocalPref = true
			}
		}
		out, ok := p.cfg.Import.Apply(rt)
		if !ok {
			// Rejected by import policy: ensure no stale state.
			p.mu.Lock()
			p.adjIn.Remove(n.Prefix, n.ID)
			p.mu.Unlock()
			if ch, changed := r.loc.Withdraw(n.Prefix, rt.Src); changed {
				r.propagate(ch)
			}
			continue
		}
		p.mu.Lock()
		p.adjIn.Set(out)
		p.mu.Unlock()
		if ch, changed := r.loc.Update(out); changed {
			r.propagate(ch)
		}
	}
}

// propagate fans a best-route change out to every peer and the FIB hook.
func (r *Router) propagate(ch rib.Change) {
	r.mu.Lock()
	onBest := r.onBest
	peers := make([]*Peer, 0, len(r.peers))
	for _, p := range r.peers {
		peers = append(peers, p)
	}
	r.mu.Unlock()
	if onBest != nil {
		onBest(ch)
	}
	for _, p := range peers {
		if !p.Established() {
			continue
		}
		if ch.New != nil {
			r.exportRoute(p, ch.New)
		} else {
			r.withdrawFrom(p, ch.Prefix)
		}
	}
}

// Announce originates prefix with spec and exports it.
func (r *Router) Announce(prefix netip.Prefix, spec AnnounceSpec) {
	r.mu.Lock()
	r.originated[prefix] = spec
	r.mu.Unlock()

	attrs := &wire.Attrs{Origin: wire.OriginIGP, NextHop: r.cfg.RouterID}
	for i := len(spec.OriginASNs) - 1; i >= 0; i-- {
		attrs.PrependAS(spec.OriginASNs[i], 1)
	}
	rt := &rib.Route{
		Prefix:  prefix,
		Attrs:   attrs,
		Src:     rib.PeerKey{}, // invalid addr = locally originated
		Learned: r.cfg.Clock.Now(),
	}
	if ch, changed := r.loc.Update(rt); changed {
		r.propagate(ch)
	} else {
		// Re-announcement with a new spec: force re-export.
		r.propagate(rib.Change{Prefix: prefix, New: r.loc.Best(prefix)})
	}
}

// Withdraw retracts a locally originated prefix.
func (r *Router) Withdraw(prefix netip.Prefix) {
	r.mu.Lock()
	delete(r.originated, prefix)
	r.mu.Unlock()
	if ch, changed := r.loc.Withdraw(prefix, rib.PeerKey{}); changed {
		r.propagate(ch)
	}
}

// Originated returns the announce spec for prefix, if we originate it.
func (r *Router) Originated(prefix netip.Prefix) (AnnounceSpec, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.originated[prefix]
	return s, ok
}

// specFor returns the announce spec if rt is locally originated.
func (r *Router) specFor(rt *rib.Route) (AnnounceSpec, bool) {
	if rt.Src.Addr.IsValid() {
		return AnnounceSpec{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.originated[rt.Prefix]
	return s, ok
}

// exportRoute applies export rules for rt toward p and sends the
// resulting UPDATE (or a withdraw when rules now reject a previously
// advertised prefix).
func (r *Router) exportRoute(p *Peer, rt *rib.Route) {
	out := r.exportTransform(p, rt)
	if out == nil {
		r.withdrawFrom(p, rt.Prefix)
		return
	}
	p.mu.Lock()
	sess := p.sess
	p.adjOut.Set(out)
	p.mu.Unlock()
	if sess == nil {
		return
	}
	u := &wire.Update{
		Attrs: out.Attrs,
		Reach: []wire.NLRI{{Prefix: out.Prefix}},
	}
	sess.Send(u)
}

// withdrawFrom retracts prefix from p if previously advertised.
func (r *Router) withdrawFrom(p *Peer, prefix netip.Prefix) {
	p.mu.Lock()
	had := p.adjOut.Remove(prefix, 0) != nil
	sess := p.sess
	p.mu.Unlock()
	if !had || sess == nil {
		return
	}
	sess.Send(&wire.Update{Withdrawn: []wire.NLRI{{Prefix: prefix}}})
}

// exportTransform computes the attributes rt would be announced to p
// with, or nil when export is denied.
func (r *Router) exportTransform(p *Peer, rt *rib.Route) *rib.Route {
	// Never echo a route back to the peer that sent it.
	if rt.Src.Addr == p.cfg.Addr {
		return nil
	}
	// iBGP full-mesh rule: routes learned from an internal peer are
	// not re-exported to internal peers.
	if !rt.EBGP && rt.Src.Addr.IsValid() && p.cfg.Internal {
		return nil
	}
	// Well-known communities.
	if rt.Attrs.HasCommunity(wire.CommNoAdvertise) {
		return nil
	}
	if rt.Attrs.HasCommunity(wire.CommNoExport) && !p.cfg.Internal {
		return nil
	}
	// Gao–Rexford: relationship of the peer the route was learned from
	// vs. the peer we export to.
	fromRel := policy.RelNone
	if rt.Src.Addr.IsValid() {
		if fromPeer := r.Peer(rt.Src.Addr); fromPeer != nil {
			fromRel = fromPeer.cfg.Relationship
		}
	}
	if (fromRel != policy.RelNone || p.cfg.Relationship != policy.RelNone) &&
		!policy.ShouldExport(fromRel, p.cfg.Relationship) {
		return nil
	}

	spec, isLocal := r.specFor(rt)
	if isLocal && spec.Peers != nil {
		allowed := false
		for _, a := range spec.Peers {
			if a == p.cfg.Addr {
				allowed = true
				break
			}
		}
		if !allowed {
			return nil
		}
	}

	out := *rt
	out.Attrs = rt.Attrs.Clone()
	out.Src = rib.PeerKey{} // attrs now ours

	if isLocal {
		for _, c := range spec.Communities {
			out.Attrs.AddCommunity(c)
		}
		if spec.MEDSet {
			out.Attrs.MED, out.Attrs.HasMED = spec.MED, true
		}
	}

	if !p.cfg.Internal && !r.cfg.RouteServer {
		// eBGP: prepend our ASN (plus any steering prepends/poison),
		// clear LOCAL_PREF, clear MED unless we originated it.
		if isLocal {
			for i := len(spec.Poison) - 1; i >= 0; i-- {
				out.Attrs.PrependAS(spec.Poison[i], 1)
			}
			out.Attrs.PrependAS(r.cfg.AS, 1+spec.Prepend)
		} else {
			out.Attrs.PrependAS(r.cfg.AS, 1)
			out.Attrs.HasMED = false
		}
		out.Attrs.HasLocalPref = false
		if r.cfg.StripPrivateASNs {
			stripPrivateASNs(out.Attrs, r.cfg.AS)
		}
	}
	if r.cfg.RouteServer && !p.cfg.Internal {
		// Transparent multilateral peering: attributes pass through
		// untouched except LOCAL_PREF, which never crosses eBGP.
		out.Attrs.HasLocalPref = false
		res, ok := p.cfg.Export.Apply(&out)
		if !ok {
			return nil
		}
		return res
	}
	// NEXT_HOP self (standard for eBGP; we also apply it on iBGP —
	// next-hop-self is the common border-router configuration).
	nh := p.cfg.LocalAddr
	if !nh.IsValid() {
		nh = r.cfg.RouterID
	}
	out.Attrs.NextHop = nh

	res, ok := p.cfg.Export.Apply(&out)
	if !ok {
		return nil
	}
	return res
}

// IsPrivateASN reports whether asn is in the RFC 6996 private ranges.
func IsPrivateASN(asn uint32) bool {
	return (asn >= 64512 && asn <= 65534) || (asn >= 4200000000 && asn <= 4294967294)
}

// stripPrivateASNs removes private ASNs from the AS path, except
// ownAS (which is preserved even if private, as the testbed AS itself
// must appear).
func stripPrivateASNs(a *wire.Attrs, ownAS uint32) {
	var segs []wire.Segment
	for _, s := range a.ASPath {
		kept := make([]uint32, 0, len(s.ASNs))
		for _, asn := range s.ASNs {
			if asn != ownAS && IsPrivateASN(asn) {
				continue
			}
			kept = append(kept, asn)
		}
		if len(kept) > 0 {
			segs = append(segs, wire.Segment{Type: s.Type, ASNs: kept})
		}
	}
	a.ASPath = segs
}
