package router

import (
	"net/netip"
	"testing"
	"time"

	"peering/internal/bufconn"
	"peering/internal/policy"
	"peering/internal/rib"
	"peering/internal/wire"
)

func addr(s string) netip.Addr     { return netip.MustParseAddr(s) }
func prefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// connect wires two routers together with the given configs and waits
// for establishment.
func connect(t *testing.T, a, b *Router, pa, pb PeerConfig) (*Peer, *Peer) {
	t.Helper()
	peerA := a.AddPeer(pa)
	peerB := b.AddPeer(pb)
	ca, cb := bufconn.Pipe()
	sa := a.Attach(peerA, ca)
	sb := b.Attach(peerB, cb)
	waitFor(t, func() bool { return peerA.Established() && peerB.Established() })
	_ = sa
	_ = sb
	return peerA, peerB
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}

// newPair builds two eBGP routers A(AS 100, 10.0.0.1) and B(AS 200,
// 10.0.0.2) and connects them.
func newPair(t *testing.T, mod func(pa, pb *PeerConfig)) (*Router, *Router) {
	t.Helper()
	a := New(Config{AS: 100, RouterID: addr("10.0.0.1")})
	b := New(Config{AS: 200, RouterID: addr("10.0.0.2")})
	pa := PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.1"), AS: 200, Describe: "B"}
	pb := PeerConfig{Addr: addr("10.0.0.1"), LocalAddr: addr("10.0.0.2"), AS: 100, Describe: "A"}
	if mod != nil {
		mod(&pa, &pb)
	}
	connect(t, a, b, pa, pb)
	return a, b
}

func TestAnnouncePropagates(t *testing.T) {
	a, b := newPair(t, nil)
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{})
	waitFor(t, func() bool { return b.LocRIB().Best(prefix("100.64.0.0/24")) != nil })
	rt := b.LocRIB().Best(prefix("100.64.0.0/24"))
	if rt.Attrs.PathString() != "100" {
		t.Fatalf("path = %q, want \"100\"", rt.Attrs.PathString())
	}
	if rt.Attrs.NextHop != addr("10.0.0.1") {
		t.Fatalf("next hop = %v", rt.Attrs.NextHop)
	}
	if rt.PeerAS != 100 || !rt.EBGP {
		t.Fatalf("route meta = %+v", rt)
	}
	if pb := a.Peer(addr("10.0.0.2")); pb.RoutesOut() != 1 {
		t.Fatalf("A adj-out = %d", pb.RoutesOut())
	}
}

func TestWithdrawPropagates(t *testing.T) {
	a, b := newPair(t, nil)
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{})
	waitFor(t, func() bool { return b.LocRIB().Best(prefix("100.64.0.0/24")) != nil })
	a.Withdraw(prefix("100.64.0.0/24"))
	waitFor(t, func() bool { return b.LocRIB().Best(prefix("100.64.0.0/24")) == nil })
	if b.LocRIB().Prefixes() != 0 {
		t.Fatalf("B still has %d prefixes", b.LocRIB().Prefixes())
	}
}

func TestFullTableOnSessionUp(t *testing.T) {
	// Announce before the session exists; peer must receive the table
	// when it comes up.
	a := New(Config{AS: 100, RouterID: addr("10.0.0.1")})
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{})
	a.Announce(prefix("100.64.1.0/24"), AnnounceSpec{})
	b := New(Config{AS: 200, RouterID: addr("10.0.0.2")})
	connect(t, a, b,
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.1"), AS: 200},
		PeerConfig{Addr: addr("10.0.0.1"), LocalAddr: addr("10.0.0.2"), AS: 100})
	waitFor(t, func() bool { return b.LocRIB().Prefixes() == 2 })
}

func TestTransitPropagation(t *testing.T) {
	// A(100) — B(200) — C(300): C learns A's prefix through B with
	// path "200 100".
	a := New(Config{AS: 100, RouterID: addr("10.0.0.1")})
	b := New(Config{AS: 200, RouterID: addr("10.0.0.2")})
	c := New(Config{AS: 300, RouterID: addr("10.0.0.3")})
	connect(t, a, b,
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.1"), AS: 200},
		PeerConfig{Addr: addr("10.0.0.1"), LocalAddr: addr("10.0.0.2"), AS: 100})
	connect(t, b, c,
		PeerConfig{Addr: addr("10.0.0.3"), LocalAddr: addr("10.0.0.2"), AS: 300},
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.3"), AS: 200})
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{})
	waitFor(t, func() bool { return c.LocRIB().Best(prefix("100.64.0.0/24")) != nil })
	rt := c.LocRIB().Best(prefix("100.64.0.0/24"))
	if rt.Attrs.PathString() != "200 100" {
		t.Fatalf("path = %q", rt.Attrs.PathString())
	}
	// Next hop rewritten at each eBGP hop: C sees B's address.
	if rt.Attrs.NextHop != addr("10.0.0.2") {
		t.Fatalf("next hop = %v", rt.Attrs.NextHop)
	}
}

func TestLoopPreventionDropsOwnAS(t *testing.T) {
	// A ring A—B, B—C, C—A: A's announcement must not loop back into
	// A's RIB from C.
	a := New(Config{AS: 100, RouterID: addr("10.0.0.1")})
	b := New(Config{AS: 200, RouterID: addr("10.0.0.2")})
	c := New(Config{AS: 300, RouterID: addr("10.0.0.3")})
	connect(t, a, b,
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.1"), AS: 200},
		PeerConfig{Addr: addr("10.0.0.1"), LocalAddr: addr("10.0.0.2"), AS: 100})
	connect(t, b, c,
		PeerConfig{Addr: addr("10.0.0.3"), LocalAddr: addr("10.0.0.2"), AS: 300},
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.3"), AS: 200})
	connect(t, c, a,
		PeerConfig{Addr: addr("10.0.0.1"), LocalAddr: addr("10.0.0.3"), AS: 100},
		PeerConfig{Addr: addr("10.0.0.3"), LocalAddr: addr("10.0.0.1"), AS: 300})
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{})
	waitFor(t, func() bool { return c.LocRIB().Best(prefix("100.64.0.0/24")) != nil })
	time.Sleep(50 * time.Millisecond) // let any loop propagate
	// A's RIB contains only its own route (locally originated).
	cands := a.LocRIB().Candidates(prefix("100.64.0.0/24"))
	for _, r := range cands {
		if r.Src.Addr.IsValid() {
			t.Fatalf("A learned its own prefix from %v: loop", r.Src)
		}
	}
}

func TestSelectiveAnnouncement(t *testing.T) {
	// A peers with B and C; announces a prefix to B only.
	a := New(Config{AS: 100, RouterID: addr("10.0.0.1")})
	b := New(Config{AS: 200, RouterID: addr("10.0.0.2")})
	c := New(Config{AS: 300, RouterID: addr("10.0.0.3")})
	connect(t, a, b,
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.1"), AS: 200},
		PeerConfig{Addr: addr("10.0.0.1"), LocalAddr: addr("10.0.0.2"), AS: 100})
	connect(t, a, c,
		PeerConfig{Addr: addr("10.0.0.3"), LocalAddr: addr("10.0.0.1"), AS: 300},
		PeerConfig{Addr: addr("10.0.0.1"), LocalAddr: addr("10.0.0.3"), AS: 100})
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{Peers: []netip.Addr{addr("10.0.0.2")}})
	waitFor(t, func() bool { return b.LocRIB().Best(prefix("100.64.0.0/24")) != nil })
	time.Sleep(50 * time.Millisecond)
	if c.LocRIB().Best(prefix("100.64.0.0/24")) != nil {
		t.Fatal("C received announcement steered to B only")
	}
	// Re-announce to all: C gets it too.
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{})
	waitFor(t, func() bool { return c.LocRIB().Best(prefix("100.64.0.0/24")) != nil })
}

func TestPrependAndPoison(t *testing.T) {
	a, b := newPair(t, nil)
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{Prepend: 2, Poison: []uint32{3356}})
	waitFor(t, func() bool { return b.LocRIB().Best(prefix("100.64.0.0/24")) != nil })
	rt := b.LocRIB().Best(prefix("100.64.0.0/24"))
	if got := rt.Attrs.PathString(); got != "100 100 100 3356" {
		t.Fatalf("path = %q, want \"100 100 100 3356\"", got)
	}
}

func TestCommunityAttachedAndMED(t *testing.T) {
	a, b := newPair(t, nil)
	comm := wire.MakeCommunity(47065, 2914)
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{Communities: []wire.Community{comm}, MED: 77, MEDSet: true})
	waitFor(t, func() bool { return b.LocRIB().Best(prefix("100.64.0.0/24")) != nil })
	rt := b.LocRIB().Best(prefix("100.64.0.0/24"))
	if !rt.Attrs.HasCommunity(comm) {
		t.Fatal("community lost")
	}
	if !rt.Attrs.HasMED || rt.Attrs.MED != 77 {
		t.Fatalf("MED = %+v", rt.Attrs)
	}
}

func TestNoExportCommunityHonored(t *testing.T) {
	// A —eBGP— B —eBGP— C with NO_EXPORT: B keeps it, C never sees it.
	a := New(Config{AS: 100, RouterID: addr("10.0.0.1")})
	b := New(Config{AS: 200, RouterID: addr("10.0.0.2")})
	c := New(Config{AS: 300, RouterID: addr("10.0.0.3")})
	connect(t, a, b,
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.1"), AS: 200},
		PeerConfig{Addr: addr("10.0.0.1"), LocalAddr: addr("10.0.0.2"), AS: 100})
	connect(t, b, c,
		PeerConfig{Addr: addr("10.0.0.3"), LocalAddr: addr("10.0.0.2"), AS: 300},
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.3"), AS: 200})
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{Communities: []wire.Community{wire.CommNoExport}})
	waitFor(t, func() bool { return b.LocRIB().Best(prefix("100.64.0.0/24")) != nil })
	time.Sleep(50 * time.Millisecond)
	if c.LocRIB().Best(prefix("100.64.0.0/24")) != nil {
		t.Fatal("NO_EXPORT route leaked to C")
	}
}

func TestGaoRexfordNoTransitBetweenPeers(t *testing.T) {
	// B peers (settlement-free) with both A and C. A's routes must not
	// transit B to C.
	a := New(Config{AS: 100, RouterID: addr("10.0.0.1")})
	b := New(Config{AS: 200, RouterID: addr("10.0.0.2")})
	c := New(Config{AS: 300, RouterID: addr("10.0.0.3")})
	connect(t, a, b,
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.1"), AS: 200, Relationship: policy.RelPeer},
		PeerConfig{Addr: addr("10.0.0.1"), LocalAddr: addr("10.0.0.2"), AS: 100, Relationship: policy.RelPeer})
	connect(t, b, c,
		PeerConfig{Addr: addr("10.0.0.3"), LocalAddr: addr("10.0.0.2"), AS: 300, Relationship: policy.RelPeer},
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.3"), AS: 200, Relationship: policy.RelPeer})
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{})
	waitFor(t, func() bool { return b.LocRIB().Best(prefix("100.64.0.0/24")) != nil })
	time.Sleep(50 * time.Millisecond)
	if c.LocRIB().Best(prefix("100.64.0.0/24")) != nil {
		t.Fatal("peer route transited B — valley-free violated")
	}
}

func TestGaoRexfordCustomerRoutesExported(t *testing.T) {
	// A is B's customer; C is B's peer. A's routes DO reach C.
	a := New(Config{AS: 100, RouterID: addr("10.0.0.1")})
	b := New(Config{AS: 200, RouterID: addr("10.0.0.2")})
	c := New(Config{AS: 300, RouterID: addr("10.0.0.3")})
	connect(t, a, b,
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.1"), AS: 200, Relationship: policy.RelProvider},
		PeerConfig{Addr: addr("10.0.0.1"), LocalAddr: addr("10.0.0.2"), AS: 100, Relationship: policy.RelCustomer})
	connect(t, b, c,
		PeerConfig{Addr: addr("10.0.0.3"), LocalAddr: addr("10.0.0.2"), AS: 300, Relationship: policy.RelPeer},
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.3"), AS: 200, Relationship: policy.RelPeer})
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{})
	waitFor(t, func() bool { return c.LocRIB().Best(prefix("100.64.0.0/24")) != nil })
	// And the customer-learned route carries customer LOCAL_PREF in B.
	rt := b.LocRIB().Best(prefix("100.64.0.0/24"))
	if rt.LocalPref() != policy.LocalPrefFor(policy.RelCustomer) {
		t.Fatalf("B's local pref = %d", rt.LocalPref())
	}
}

func TestImportPolicyRejection(t *testing.T) {
	deny := (&policy.Policy{Name: "deny-66"}).Then(policy.Statement{
		Cond: policy.MatchOriginAS(66), Accept: false,
	})
	deny.AcceptDefault = true
	a, b := newPair(t, func(pa, pb *PeerConfig) { pb.Import = deny })
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{OriginASNs: []uint32{66}})
	a.Announce(prefix("100.64.1.0/24"), AnnounceSpec{})
	waitFor(t, func() bool { return b.LocRIB().Best(prefix("100.64.1.0/24")) != nil })
	time.Sleep(50 * time.Millisecond)
	if b.LocRIB().Best(prefix("100.64.0.0/24")) != nil {
		t.Fatal("import policy did not reject origin-66 route")
	}
}

func TestPrivateASNStripping(t *testing.T) {
	a := New(Config{AS: 100, RouterID: addr("10.0.0.1"), StripPrivateASNs: true})
	b := New(Config{AS: 200, RouterID: addr("10.0.0.2")})
	connect(t, a, b,
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.1"), AS: 200},
		PeerConfig{Addr: addr("10.0.0.1"), LocalAddr: addr("10.0.0.2"), AS: 100})
	// Emulated domain behind A uses private ASNs 65010, 65011.
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{OriginASNs: []uint32{65010, 65011}})
	waitFor(t, func() bool { return b.LocRIB().Best(prefix("100.64.0.0/24")) != nil })
	rt := b.LocRIB().Best(prefix("100.64.0.0/24"))
	if got := rt.Attrs.PathString(); got != "100" {
		t.Fatalf("path = %q — private ASNs leaked", got)
	}
}

func TestIBGPNoReexportToIBGP(t *testing.T) {
	// Three iBGP routers in AS 100: r1 — r2 — r3 chain (NOT full mesh).
	// r1's external route reaches r2 but must not be re-exported to r3.
	r1 := New(Config{AS: 100, RouterID: addr("10.0.0.1")})
	r2 := New(Config{AS: 100, RouterID: addr("10.0.0.2")})
	r3 := New(Config{AS: 100, RouterID: addr("10.0.0.3")})
	connect(t, r1, r2,
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.1"), AS: 100, Internal: true},
		PeerConfig{Addr: addr("10.0.0.1"), LocalAddr: addr("10.0.0.2"), AS: 100, Internal: true})
	connect(t, r2, r3,
		PeerConfig{Addr: addr("10.0.0.3"), LocalAddr: addr("10.0.0.2"), AS: 100, Internal: true},
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.3"), AS: 100, Internal: true})
	// External route injected at r1 (simulate: r1 originates).
	// Locally originated routes ARE exported to iBGP peers.
	r1.Announce(prefix("100.64.0.0/24"), AnnounceSpec{})
	waitFor(t, func() bool { return r2.LocRIB().Best(prefix("100.64.0.0/24")) != nil })
	rt := r2.LocRIB().Best(prefix("100.64.0.0/24"))
	if rt.Attrs.PathString() != "" {
		t.Fatalf("iBGP path = %q, want empty (no prepend)", rt.Attrs.PathString())
	}
	if rt.EBGP {
		t.Fatal("iBGP route marked eBGP")
	}
	time.Sleep(50 * time.Millisecond)
	if r3.LocRIB().Best(prefix("100.64.0.0/24")) != nil {
		t.Fatal("iBGP-learned route re-exported to iBGP peer")
	}
}

func TestIBGPPreservesLocalPref(t *testing.T) {
	r1 := New(Config{AS: 100, RouterID: addr("10.0.0.1")})
	r2 := New(Config{AS: 100, RouterID: addr("10.0.0.2")})
	lpSet := (&policy.Policy{Name: "lp", AcceptDefault: true}).Then(policy.Statement{
		Cond: policy.MatchAny(), Accept: true, Actions: []policy.Action{policy.SetLocalPref(250)},
	})
	p1 := PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.1"), AS: 100, Internal: true, Export: lpSet}
	p2 := PeerConfig{Addr: addr("10.0.0.1"), LocalAddr: addr("10.0.0.2"), AS: 100, Internal: true}
	connect(t, r1, r2, p1, p2)
	r1.Announce(prefix("100.64.0.0/24"), AnnounceSpec{})
	waitFor(t, func() bool { return r2.LocRIB().Best(prefix("100.64.0.0/24")) != nil })
	rt := r2.LocRIB().Best(prefix("100.64.0.0/24"))
	if !rt.Attrs.HasLocalPref || rt.Attrs.LocalPref != 250 {
		t.Fatalf("LOCAL_PREF across iBGP = %+v", rt.Attrs)
	}
}

func TestBestPathSwitchesOnBetterRoute(t *testing.T) {
	// C hears the same prefix from A (long path) and B (short path).
	a := New(Config{AS: 100, RouterID: addr("10.0.0.1")})
	b := New(Config{AS: 200, RouterID: addr("10.0.0.2")})
	c := New(Config{AS: 300, RouterID: addr("10.0.0.3")})
	connect(t, a, c,
		PeerConfig{Addr: addr("10.0.0.3"), LocalAddr: addr("10.0.0.1"), AS: 300},
		PeerConfig{Addr: addr("10.0.0.1"), LocalAddr: addr("10.0.0.3"), AS: 100})
	connect(t, b, c,
		PeerConfig{Addr: addr("10.0.0.3"), LocalAddr: addr("10.0.0.2"), AS: 300},
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.3"), AS: 200})
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{Prepend: 3})
	waitFor(t, func() bool { return c.LocRIB().Best(prefix("100.64.0.0/24")) != nil })
	if got := c.LocRIB().Best(prefix("100.64.0.0/24")).PeerAS; got != 100 {
		t.Fatalf("initial best from AS %d", got)
	}
	b.Announce(prefix("100.64.0.0/24"), AnnounceSpec{})
	waitFor(t, func() bool {
		rt := c.LocRIB().Best(prefix("100.64.0.0/24"))
		return rt != nil && rt.PeerAS == 200
	})
	// Withdraw the better route: falls back to A.
	b.Withdraw(prefix("100.64.0.0/24"))
	waitFor(t, func() bool {
		rt := c.LocRIB().Best(prefix("100.64.0.0/24"))
		return rt != nil && rt.PeerAS == 100
	})
}

func TestOnBestChangeFires(t *testing.T) {
	a := New(Config{AS: 100, RouterID: addr("10.0.0.1")})
	b := New(Config{AS: 200, RouterID: addr("10.0.0.2")})
	changes := make(chan rib.Change, 16)
	b.OnBestChange(func(ch rib.Change) { changes <- ch })
	connect(t, a, b,
		PeerConfig{Addr: addr("10.0.0.2"), LocalAddr: addr("10.0.0.1"), AS: 200},
		PeerConfig{Addr: addr("10.0.0.1"), LocalAddr: addr("10.0.0.2"), AS: 100})
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{})
	select {
	case ch := <-changes:
		if ch.New == nil || ch.New.Prefix != prefix("100.64.0.0/24") {
			t.Fatalf("change = %+v", ch)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnBestChange never fired")
	}
}

func TestSessionTeardownWithdrawsRoutes(t *testing.T) {
	a, b := newPair(t, nil)
	a.Announce(prefix("100.64.0.0/24"), AnnounceSpec{})
	waitFor(t, func() bool { return b.LocRIB().Best(prefix("100.64.0.0/24")) != nil })
	// Kill the session from A's side.
	a.Peer(addr("10.0.0.2")).Session().Close()
	waitFor(t, func() bool { return b.LocRIB().Best(prefix("100.64.0.0/24")) == nil })
}

func TestIsPrivateASN(t *testing.T) {
	cases := map[uint32]bool{
		64511: false, 64512: true, 65534: true, 65535: false,
		4199999999: false, 4200000000: true, 4294967294: true, 4294967295: false,
		3356: false,
	}
	for asn, want := range cases {
		if got := IsPrivateASN(asn); got != want {
			t.Errorf("IsPrivateASN(%d) = %v", asn, got)
		}
	}
}
