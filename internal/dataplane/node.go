package dataplane

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"
)

// Node is anything that can receive packets from a link.
type Node interface {
	// Receive handles pkt arriving on iface. Implementations must not
	// retain pkt beyond the call unless they Clone it.
	Receive(pkt *Packet, iface *Iface)
	// Name labels the node for diagnostics.
	Name() string
}

// Iface is one attachment point of a node to a link.
type Iface struct {
	// Addr is the interface's address (may be invalid for unnumbered).
	Addr netip.Addr
	// Label names the interface ("eth0", "ams-ix").
	Label string

	node Node
	link *Link
}

// Node returns the owning node.
func (i *Iface) Node() Node { return i.node }

// Link returns the attached link (nil if detached).
func (i *Iface) Link() *Link { return i.link }

// Send transmits pkt out this interface.
func (i *Iface) Send(pkt *Packet) {
	if i.link != nil {
		i.link.transmit(pkt, i)
	}
}

func (i *Iface) String() string {
	return fmt.Sprintf("%s/%s(%s)", i.node.Name(), i.Label, i.Addr)
}

// Link is a point-to-point connection between two interfaces with
// optional latency (recorded, not slept), loss, and MTU. Delivery is
// synchronous: the receiving node's Receive runs on the sender's
// goroutine, which keeps million-packet simulations fast and
// deterministic.
type Link struct {
	a, b *Iface
	// Latency is the one-way propagation delay credited to packets
	// crossing this link (accumulated in Network.PathLatency
	// bookkeeping, not slept).
	Latency time.Duration
	// LossProb in [0,1] drops packets at random.
	LossProb float64
	// MTU drops packets with larger payloads (0 = unlimited).
	MTU int
	// Down severs the link without detaching it — the failure switch
	// used by LIFEGUARD-style experiments.
	Down bool

	mu    sync.Mutex
	rng   *rand.Rand
	stats LinkStats
}

// LinkStats counts link activity.
type LinkStats struct {
	Forwarded uint64
	Dropped   uint64
}

// Connect attaches two (node, addr, label) endpoints with a new link.
func Connect(an Node, aAddr netip.Addr, aLabel string, bn Node, bAddr netip.Addr, bLabel string) (*Link, *Iface, *Iface) {
	l := &Link{rng: rand.New(rand.NewSource(int64(packetSeq.Add(1))))}
	ia := &Iface{Addr: aAddr, Label: aLabel, node: an, link: l}
	ib := &Iface{Addr: bAddr, Label: bLabel, node: bn, link: l}
	l.a, l.b = ia, ib
	return l, ia, ib
}

// Stats returns a snapshot of link counters.
func (l *Link) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// SetDown marks the link failed (or restored).
func (l *Link) SetDown(down bool) {
	l.mu.Lock()
	l.Down = down
	l.mu.Unlock()
}

// Peer returns the interface opposite from.
func (l *Link) Peer(from *Iface) *Iface {
	if from == l.a {
		return l.b
	}
	return l.a
}

// transmit carries pkt from the sending interface to the other side.
func (l *Link) transmit(pkt *Packet, from *Iface) {
	l.mu.Lock()
	if l.Down ||
		(l.MTU > 0 && len(pkt.Payload) > l.MTU) ||
		(l.LossProb > 0 && l.rng.Float64() < l.LossProb) {
		l.stats.Dropped++
		l.mu.Unlock()
		return
	}
	l.stats.Forwarded++
	l.mu.Unlock()
	to := l.Peer(from)
	if to.Addr.IsValid() {
		pkt.Trace = append(pkt.Trace, to.Addr)
	}
	to.node.Receive(pkt, to)
}
