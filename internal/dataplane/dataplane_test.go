package dataplane

import (
	"net/netip"
	"testing"
)

func addr(s string) netip.Addr     { return netip.MustParseAddr(s) }
func prefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// lineTopo builds hostA — r1 — r2 — hostB with full routing.
//
//	A(10.0.1.10) — (10.0.1.1)r1(10.0.12.1) — (10.0.12.2)r2(10.0.2.1) — B(10.0.2.10)
func lineTopo() (*Host, *Router, *Router, *Host, *Link) {
	hA := NewHost("A", addr("10.0.1.10"))
	hB := NewHost("B", addr("10.0.2.10"))
	r1 := NewRouter("r1")
	r2 := NewRouter("r2")

	_, iA, iR1a := Connect(hA, addr("10.0.1.10"), "eth0", r1, addr("10.0.1.1"), "lan")
	hA.SetIface(iA)
	r1.AddIface(iR1a)

	mid, iR1b, iR2a := Connect(r1, addr("10.0.12.1"), "wan", r2, addr("10.0.12.2"), "wan")
	r1.AddIface(iR1b)
	r2.AddIface(iR2a)

	_, iR2b, iB := Connect(r2, addr("10.0.2.1"), "lan", hB, addr("10.0.2.10"), "eth0")
	r2.AddIface(iR2b)
	hB.SetIface(iB)

	// r1 routes.
	r1.SetRoute(prefix("10.0.1.0/24"), netip.Addr{}, iR1a)
	r1.SetRoute(prefix("10.0.2.0/24"), addr("10.0.12.2"), iR1b)
	r1.SetRoute(prefix("10.0.12.0/24"), netip.Addr{}, iR1b)
	// r2 routes.
	r2.SetRoute(prefix("10.0.2.0/24"), netip.Addr{}, iR2b)
	r2.SetRoute(prefix("10.0.1.0/24"), addr("10.0.12.1"), iR2a)
	r2.SetRoute(prefix("10.0.12.0/24"), netip.Addr{}, iR2a)

	return hA, r1, r2, hB, mid
}

func TestEndToEndDelivery(t *testing.T) {
	hA, r1, r2, hB, _ := lineTopo()
	pkt := hA.SendTo(hB.Addr(), ProtoUDP, []byte("payload"))
	got := hB.Inbox()
	if len(got) != 1 {
		t.Fatalf("inbox = %d packets, want 1", len(got))
	}
	if string(got[0].Payload) != "payload" || got[0].ID != pkt.ID {
		t.Fatalf("got %+v", got[0])
	}
	if got[0].TTL != DefaultTTL-2 {
		t.Fatalf("TTL = %d, want %d (two router hops)", got[0].TTL, DefaultTTL-2)
	}
	if r1.Stats().Forwarded != 1 || r2.Stats().Forwarded != 1 {
		t.Fatalf("router fwd counts = %d/%d", r1.Stats().Forwarded, r2.Stats().Forwarded)
	}
}

func TestPing(t *testing.T) {
	hA, _, _, hB, _ := lineTopo()
	ok, reply := hA.Ping(hB.Addr())
	if !ok {
		t.Fatal("ping failed on connected topology")
	}
	if reply.Src != hB.Addr() {
		t.Fatalf("reply from %v", reply.Src)
	}
	// Ping an address with no route: unreachable, not a reply.
	ok, reply = hA.Ping(addr("192.168.99.99"))
	if ok {
		t.Fatal("ping to unrouted address succeeded")
	}
	if reply == nil || reply.ICMP != ICMPUnreachable {
		t.Fatalf("want unreachable, got %+v", reply)
	}
}

func TestTraceroute(t *testing.T) {
	hA, _, _, hB, _ := lineTopo()
	hops := hA.Traceroute(hB.Addr(), 10)
	if len(hops) != 3 {
		t.Fatalf("hops = %v, want 3", hops)
	}
	// Hop 1: r1's ingress (10.0.1.1); hop 2: r2's ingress (10.0.12.2);
	// hop 3: destination echo reply.
	if hops[0].Addr != addr("10.0.1.1") || hops[0].Type != ICMPTimeExceeded {
		t.Fatalf("hop1 = %+v", hops[0])
	}
	if hops[1].Addr != addr("10.0.12.2") || hops[1].Type != ICMPTimeExceeded {
		t.Fatalf("hop2 = %+v", hops[1])
	}
	if hops[2].Addr != hB.Addr() || hops[2].Type != ICMPEchoReply {
		t.Fatalf("hop3 = %+v", hops[2])
	}
}

func TestLinkDownDropsAndTracerouteShowsStar(t *testing.T) {
	hA, _, _, hB, mid := lineTopo()
	mid.SetDown(true)
	if ok, _ := hA.Ping(hB.Addr()); ok {
		t.Fatal("ping succeeded over downed link")
	}
	hops := hA.Traceroute(hB.Addr(), 3)
	if len(hops) != 3 {
		t.Fatalf("hops = %v", hops)
	}
	if hops[1].Addr.IsValid() || hops[2].Addr.IsValid() {
		t.Fatalf("hops past failure should be stars: %v", hops)
	}
	if mid.Stats().Dropped == 0 {
		t.Fatal("link did not count drops")
	}
	mid.SetDown(false)
	if ok, _ := hA.Ping(hB.Addr()); !ok {
		t.Fatal("ping failed after link restore")
	}
}

func TestTTLExpiry(t *testing.T) {
	hA, r1, _, hB, _ := lineTopo()
	pkt := NewPacket(hA.Addr(), hB.Addr(), ProtoUDP)
	pkt.TTL = 1
	pkt.Seq = 999
	hA.Send(pkt)
	if len(hB.Inbox()) != 0 {
		t.Fatal("expired packet delivered")
	}
	if r1.Stats().TTLExpired != 1 {
		t.Fatalf("TTLExpired = %d", r1.Stats().TTLExpired)
	}
}

func TestNoRouteICMPUnreachable(t *testing.T) {
	hA, r1, _, _, _ := lineTopo()
	hA.SendTo(addr("203.0.113.5"), ProtoUDP, nil)
	if r1.Stats().NoRoute != 1 {
		t.Fatalf("NoRoute = %d", r1.Stats().NoRoute)
	}
}

func TestURPFBlocksSpoofing(t *testing.T) {
	hA, r1, _, hB, _ := lineTopo()
	// Enable strict uRPF on r1's LAN interface.
	var lan *Iface
	for _, i := range r1.Ifaces() {
		if i.Label == "lan" {
			lan = i
		}
	}
	r1.SetURPF(lan, true)

	// Legitimate traffic passes.
	hA.SendTo(hB.Addr(), ProtoUDP, []byte("legit"))
	if len(hB.Inbox()) != 1 {
		t.Fatal("legitimate packet dropped by uRPF")
	}

	// Spoofed source (not in 10.0.1.0/24) is dropped.
	spoof := NewPacket(addr("8.8.8.8"), hB.Addr(), ProtoUDP)
	hA.Send(spoof)
	if len(hB.Inbox()) != 0 {
		t.Fatal("spoofed packet delivered despite uRPF")
	}
	if r1.Stats().URPFDropped != 1 {
		t.Fatalf("URPFDropped = %d", r1.Stats().URPFDropped)
	}
}

func TestProcessorPipeline(t *testing.T) {
	hA, r1, _, hB, _ := lineTopo()
	var seen int
	r1.AddProcessor(func(pkt *Packet, _ *Iface) Verdict {
		seen++
		if pkt.DstPort == 9999 {
			return VerdictDrop
		}
		return VerdictContinue
	})
	pkt := NewPacket(hA.Addr(), hB.Addr(), ProtoUDP)
	pkt.DstPort = 9999
	hA.Send(pkt)
	if len(hB.Inbox()) != 0 {
		t.Fatal("processor drop ignored")
	}
	pkt2 := NewPacket(hA.Addr(), hB.Addr(), ProtoUDP)
	pkt2.DstPort = 80
	hA.Send(pkt2)
	if len(hB.Inbox()) != 1 {
		t.Fatal("allowed packet dropped")
	}
	if seen != 2 || r1.Stats().ProcDropped != 1 {
		t.Fatalf("seen=%d procDropped=%d", seen, r1.Stats().ProcDropped)
	}
}

func TestProcessorRewrite(t *testing.T) {
	// A decoy-routing-style processor: rewrite destination and let the
	// router forward to the new target.
	hA, r1, _, hB, _ := lineTopo()
	decoy := addr("198.51.100.1")
	r1.AddProcessor(func(pkt *Packet, _ *Iface) Verdict {
		if pkt.Dst == decoy {
			pkt.Dst = hB.Addr()
		}
		return VerdictContinue
	})
	hA.SendTo(decoy, ProtoTCP, []byte("covert"))
	got := hB.Inbox()
	if len(got) != 1 || string(got[0].Payload) != "covert" {
		t.Fatalf("rewritten packet not delivered: %v", got)
	}
}

func TestLinkMTU(t *testing.T) {
	hA, _, _, hB, mid := lineTopo()
	mid.MTU = 100
	hA.SendTo(hB.Addr(), ProtoUDP, make([]byte, 200))
	if len(hB.Inbox()) != 0 {
		t.Fatal("oversized packet crossed MTU-limited link")
	}
	hA.SendTo(hB.Addr(), ProtoUDP, make([]byte, 50))
	if len(hB.Inbox()) != 1 {
		t.Fatal("small packet dropped")
	}
}

func TestLinkLoss(t *testing.T) {
	hA, _, _, hB, mid := lineTopo()
	mid.LossProb = 1.0
	hA.SendTo(hB.Addr(), ProtoUDP, nil)
	if len(hB.Inbox()) != 0 {
		t.Fatal("packet survived 100% loss")
	}
	mid.LossProb = 0
	hA.SendTo(hB.Addr(), ProtoUDP, nil)
	if len(hB.Inbox()) != 1 {
		t.Fatal("packet lost at 0% loss")
	}
}

func TestRouterEchoResponds(t *testing.T) {
	hA, _, _, _, _ := lineTopo()
	ok, reply := hA.Ping(addr("10.0.12.2")) // r2's wan iface
	if !ok || reply.Src != addr("10.0.12.2") {
		t.Fatalf("router ping: ok=%v reply=%+v", ok, reply)
	}
}

func TestHostIgnoresForeignPackets(t *testing.T) {
	hB := NewHost("B", addr("10.0.2.10"))
	pkt := NewPacket(addr("1.1.1.1"), addr("9.9.9.9"), ProtoUDP)
	hB.Receive(pkt, nil)
	if len(hB.Inbox()) != 0 {
		t.Fatal("host accepted packet not addressed to it")
	}
}

func TestPacketClone(t *testing.T) {
	p := NewPacket(addr("1.1.1.1"), addr("2.2.2.2"), ProtoUDP)
	p.Payload = []byte{1, 2}
	p.Trace = []netip.Addr{addr("3.3.3.3")}
	c := p.Clone()
	c.Payload[0] = 9
	c.Trace[0] = addr("4.4.4.4")
	if p.Payload[0] != 1 || p.Trace[0] != addr("3.3.3.3") {
		t.Fatal("Clone aliases original")
	}
}

func TestTraceRecordsPath(t *testing.T) {
	hA, _, _, hB, _ := lineTopo()
	hA.SendTo(hB.Addr(), ProtoUDP, nil)
	got := hB.Inbox()
	if len(got) != 1 {
		t.Fatal("no delivery")
	}
	// Trace records receiving ifaces: r1 lan, r2 wan, B eth0.
	want := []netip.Addr{addr("10.0.1.1"), addr("10.0.12.2"), addr("10.0.2.10")}
	if len(got[0].Trace) != len(want) {
		t.Fatalf("trace = %v", got[0].Trace)
	}
	for i, a := range want {
		if got[0].Trace[i] != a {
			t.Fatalf("trace[%d] = %v, want %v", i, got[0].Trace[i], a)
		}
	}
}

func BenchmarkForwarding(b *testing.B) {
	hA, _, _, hB, _ := lineTopo()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hA.SendTo(hB.Addr(), ProtoUDP, nil)
	}
	b.StopTimer()
	hB.Inbox()
}
