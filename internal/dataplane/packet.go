// Package dataplane implements the emulated forwarding plane: IPv4-like
// packets, point-to-point links with latency and loss, longest-prefix
// FIB forwarding with TTL handling and ICMP errors, unicast reverse-path
// (anti-spoofing) checks, and the ping/traceroute measurement primitives
// the testbed's data-plane experiments are built from.
package dataplane

import (
	"fmt"
	"net/netip"
	"sync/atomic"
)

// Proto identifies the payload protocol of a packet.
type Proto uint8

// Protocol numbers (a subset; values match IANA where applicable).
const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
)

func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// ICMPType is the subset of ICMP semantics the emulation needs.
type ICMPType uint8

// ICMP types.
const (
	ICMPNone         ICMPType = 0
	ICMPEchoRequest  ICMPType = 8
	ICMPEchoReply    ICMPType = 1 // deliberate: 0 is taken by ICMPNone
	ICMPTimeExceeded ICMPType = 11
	ICMPUnreachable  ICMPType = 3
)

// DefaultTTL is the initial TTL of locally originated packets.
const DefaultTTL = 64

var packetSeq atomic.Uint64

// Packet is one emulated datagram.
type Packet struct {
	ID      uint64
	Src     netip.Addr
	Dst     netip.Addr
	TTL     uint8
	Proto   Proto
	ICMP    ICMPType
	SrcPort uint16
	DstPort uint16
	// Seq correlates echo requests/replies and traceroute probes.
	Seq int
	// Payload is opaque application data.
	Payload []byte
	// Trace accumulates the interface addresses the packet traversed —
	// the emulation's record-route, used by tests and measurements.
	Trace []netip.Addr
	// Orig carries the triggering packet's ID inside ICMP errors.
	Orig uint64
}

// NewPacket builds a packet with a fresh ID and default TTL.
func NewPacket(src, dst netip.Addr, proto Proto) *Packet {
	return &Packet{
		ID:    packetSeq.Add(1),
		Src:   src,
		Dst:   dst,
		TTL:   DefaultTTL,
		Proto: proto,
	}
}

// Clone deep-copies the packet (links fork on delivery to taps).
func (p *Packet) Clone() *Packet {
	c := *p
	c.Payload = append([]byte(nil), p.Payload...)
	c.Trace = append([]netip.Addr(nil), p.Trace...)
	return &c
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt %d %s→%s %s ttl=%d", p.ID, p.Src, p.Dst, p.Proto, p.TTL)
}
