package dataplane

import (
	"net/netip"
	"sync"

	"peering/internal/trie"
)

// FIBEntry is one forwarding-table row.
type FIBEntry struct {
	Prefix netip.Prefix
	// NextHop is the gateway address (invalid for directly connected
	// prefixes; informational — forwarding uses Out).
	NextHop netip.Addr
	// Out is the egress interface.
	Out *Iface
}

// Verdict is a packet processor's decision.
type Verdict int

// Verdicts for packet processors.
const (
	// VerdictContinue lets the packet proceed through the pipeline.
	VerdictContinue Verdict = iota
	// VerdictDrop discards the packet.
	VerdictDrop
	// VerdictHandled means the processor consumed (e.g. rewrote and
	// re-sent) the packet; forwarding stops without counting a drop.
	VerdictHandled
)

// Processor is a match-action hook invoked on every packet entering a
// router, before forwarding — the "lightweight packet processing API"
// of §3 (Deploying real services). Processors may mutate the packet.
type Processor func(pkt *Packet, ingress *Iface) Verdict

// RouterStats counts router activity.
type RouterStats struct {
	Forwarded      uint64
	DeliveredLocal uint64
	TTLExpired     uint64
	NoRoute        uint64
	URPFDropped    uint64
	ProcDropped    uint64
}

// Router is an IP forwarding node: FIB longest-prefix matching, TTL and
// ICMP handling, optional strict uRPF per interface, and a processor
// pipeline.
type Router struct {
	name string

	mu         sync.RWMutex
	fib        *trie.Trie[*FIBEntry]
	ifaces     []*Iface
	local      map[netip.Addr]bool
	urpf       map[*Iface]bool
	processors []Processor
	localSink  func(*Packet, *Iface)
	stats      RouterStats
}

// NewRouter returns an empty router named name.
func NewRouter(name string) *Router {
	return &Router{
		name:  name,
		fib:   trie.New[*FIBEntry](),
		local: make(map[netip.Addr]bool),
		urpf:  make(map[*Iface]bool),
	}
}

// Name implements Node.
func (r *Router) Name() string { return r.name }

// AddIface registers an interface created by Connect as belonging to
// this router, making its address local.
func (r *Router) AddIface(i *Iface) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ifaces = append(r.ifaces, i)
	if i.Addr.IsValid() {
		r.local[i.Addr] = true
	}
}

// Ifaces returns the registered interfaces.
func (r *Router) Ifaces() []*Iface {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Iface, len(r.ifaces))
	copy(out, r.ifaces)
	return out
}

// AddLocal marks addr as locally delivered (loopbacks, service VIPs).
func (r *Router) AddLocal(addr netip.Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.local[addr] = true
}

// SetURPF enables strict unicast reverse-path filtering on iface:
// packets whose source would not be routed back out the same interface
// are dropped. This is how PEERING servers stop clients from spoofing.
func (r *Router) SetURPF(iface *Iface, on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.urpf[iface] = on
}

// AddProcessor appends p to the packet pipeline.
func (r *Router) AddProcessor(p Processor) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.processors = append(r.processors, p)
}

// SetLocalSink registers the handler for packets addressed to this
// router (beyond the automatic ICMP echo handling).
func (r *Router) SetLocalSink(fn func(*Packet, *Iface)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.localSink = fn
}

// SetRoute installs (or replaces) a FIB entry.
func (r *Router) SetRoute(p netip.Prefix, nh netip.Addr, out *Iface) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fib.Insert(p, &FIBEntry{Prefix: p, NextHop: nh, Out: out})
}

// DelRoute removes the FIB entry for p.
func (r *Router) DelRoute(p netip.Prefix) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fib.Delete(p)
}

// LookupRoute returns the FIB entry that would forward traffic to addr.
func (r *Router) LookupRoute(addr netip.Addr) *FIBEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, e, ok := r.fib.Lookup(addr)
	if !ok {
		return nil
	}
	return e
}

// FIBLen reports the number of FIB entries.
func (r *Router) FIBLen() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.fib.Len()
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() RouterStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.stats
}

// Receive implements Node.
func (r *Router) Receive(pkt *Packet, ingress *Iface) {
	r.mu.RLock()
	procs := r.processors
	urpf := ingress != nil && r.urpf[ingress]
	r.mu.RUnlock()

	for _, p := range procs {
		switch p(pkt, ingress) {
		case VerdictDrop:
			r.bump(func(s *RouterStats) { s.ProcDropped++ })
			return
		case VerdictHandled:
			return
		}
	}

	if urpf && !r.urpfPass(pkt.Src, ingress) {
		r.bump(func(s *RouterStats) { s.URPFDropped++ })
		return
	}

	r.mu.RLock()
	isLocal := r.local[pkt.Dst]
	r.mu.RUnlock()
	if isLocal {
		r.deliverLocal(pkt, ingress)
		return
	}

	r.Forward(pkt, ingress)
}

// urpfPass applies strict uRPF: the route back to src must leave via
// ingress.
func (r *Router) urpfPass(src netip.Addr, ingress *Iface) bool {
	e := r.LookupRoute(src)
	return e != nil && e.Out == ingress
}

// Forward routes pkt out of the router, handling TTL and ICMP errors.
// ingress may be nil for locally originated packets.
func (r *Router) Forward(pkt *Packet, ingress *Iface) {
	if pkt.TTL <= 1 {
		r.bump(func(s *RouterStats) { s.TTLExpired++ })
		r.sendICMP(pkt, ingress, ICMPTimeExceeded)
		return
	}
	pkt.TTL--
	e := r.LookupRoute(pkt.Dst)
	if e == nil {
		r.bump(func(s *RouterStats) { s.NoRoute++ })
		r.sendICMP(pkt, ingress, ICMPUnreachable)
		return
	}
	r.bump(func(s *RouterStats) { s.Forwarded++ })
	e.Out.Send(pkt)
}

// Originate sends a locally generated packet through the FIB.
func (r *Router) Originate(pkt *Packet) {
	e := r.LookupRoute(pkt.Dst)
	if e == nil {
		r.bump(func(s *RouterStats) { s.NoRoute++ })
		return
	}
	r.bump(func(s *RouterStats) { s.Forwarded++ })
	e.Out.Send(pkt)
}

// deliverLocal handles packets addressed to the router itself.
func (r *Router) deliverLocal(pkt *Packet, ingress *Iface) {
	r.bump(func(s *RouterStats) { s.DeliveredLocal++ })
	if pkt.Proto == ProtoICMP && pkt.ICMP == ICMPEchoRequest {
		reply := &Packet{
			ID:    packetSeq.Add(1),
			Src:   pkt.Dst,
			Dst:   pkt.Src,
			TTL:   DefaultTTL,
			Proto: ProtoICMP,
			ICMP:  ICMPEchoReply,
			Seq:   pkt.Seq,
			Orig:  pkt.ID,
		}
		r.Originate(reply)
		return
	}
	r.mu.RLock()
	sink := r.localSink
	r.mu.RUnlock()
	if sink != nil {
		sink(pkt, ingress)
	}
}

// sendICMP emits an ICMP error back toward pkt.Src, sourced from the
// ingress interface address (traceroute reads this as the hop address).
func (r *Router) sendICMP(pkt *Packet, ingress *Iface, typ ICMPType) {
	if pkt.Proto == ProtoICMP && pkt.ICMP != ICMPEchoRequest && pkt.ICMP != ICMPNone {
		return // never ICMP about ICMP errors
	}
	src := netip.Addr{}
	if ingress != nil && ingress.Addr.IsValid() {
		src = ingress.Addr
	} else {
		r.mu.RLock()
		for _, i := range r.ifaces {
			if i.Addr.IsValid() {
				src = i.Addr
				break
			}
		}
		r.mu.RUnlock()
	}
	if !src.IsValid() {
		return
	}
	icmp := &Packet{
		ID:    packetSeq.Add(1),
		Src:   src,
		Dst:   pkt.Src,
		TTL:   DefaultTTL,
		Proto: ProtoICMP,
		ICMP:  typ,
		Seq:   pkt.Seq,
		Orig:  pkt.ID,
	}
	r.Originate(icmp)
}

func (r *Router) bump(f func(*RouterStats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}
