package dataplane

import (
	"fmt"
	"net/netip"
	"sync"
)

// Host is an end system: one address, a default gateway, an inbox, and
// the ping/traceroute measurement primitives. Because link delivery is
// synchronous, a Ping's reply (when the network can route it) has
// already been processed by the time Send returns — measurements are
// deterministic with no sleeps.
type Host struct {
	name string
	addr netip.Addr

	mu      sync.Mutex
	iface   *Iface
	inbox   []*Packet
	replies map[int]*Packet // Seq → ICMP echo reply / error
	seq     int
}

// NewHost returns a host with address addr.
func NewHost(name string, addr netip.Addr) *Host {
	return &Host{name: name, addr: addr, replies: make(map[int]*Packet)}
}

// Name implements Node.
func (h *Host) Name() string { return h.name }

// Addr returns the host's address.
func (h *Host) Addr() netip.Addr { return h.addr }

// SetIface attaches the host's single interface (from Connect).
func (h *Host) SetIface(i *Iface) {
	h.mu.Lock()
	h.iface = i
	h.mu.Unlock()
}

// Receive implements Node.
func (h *Host) Receive(pkt *Packet, _ *Iface) {
	if pkt.Dst != h.addr {
		return // not ours; hosts don't forward
	}
	if pkt.Proto == ProtoICMP && pkt.ICMP == ICMPEchoRequest {
		reply := &Packet{
			ID:    packetSeq.Add(1),
			Src:   h.addr,
			Dst:   pkt.Src,
			TTL:   DefaultTTL,
			Proto: ProtoICMP,
			ICMP:  ICMPEchoReply,
			Seq:   pkt.Seq,
			Orig:  pkt.ID,
		}
		h.send(reply)
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if pkt.Proto == ProtoICMP && pkt.ICMP != ICMPNone {
		h.replies[pkt.Seq] = pkt.Clone()
		return
	}
	h.inbox = append(h.inbox, pkt.Clone())
}

// send transmits via the attached interface.
func (h *Host) send(pkt *Packet) {
	h.mu.Lock()
	i := h.iface
	h.mu.Unlock()
	if i != nil {
		i.Send(pkt)
	}
}

// Send transmits an application packet from this host.
func (h *Host) Send(pkt *Packet) { h.send(pkt) }

// SendTo builds and sends a payload to dst.
func (h *Host) SendTo(dst netip.Addr, proto Proto, payload []byte) *Packet {
	pkt := NewPacket(h.addr, dst, proto)
	pkt.Payload = payload
	h.send(pkt)
	return pkt
}

// Inbox returns (and clears) received application packets.
func (h *Host) Inbox() []*Packet {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := h.inbox
	h.inbox = nil
	return out
}

// nextSeq allocates a measurement sequence number.
func (h *Host) nextSeq() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq++
	return h.seq
}

// takeReply removes and returns the reply for seq, if any.
func (h *Host) takeReply(seq int) *Packet {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.replies[seq]
	delete(h.replies, seq)
	return p
}

// Ping sends one echo request to dst and reports whether a reply
// arrived (synchronously) and the hop count the request traversed.
func (h *Host) Ping(dst netip.Addr) (ok bool, reply *Packet) {
	seq := h.nextSeq()
	pkt := NewPacket(h.addr, dst, ProtoICMP)
	pkt.ICMP = ICMPEchoRequest
	pkt.Seq = seq
	h.send(pkt)
	r := h.takeReply(seq)
	return r != nil && r.ICMP == ICMPEchoReply, r
}

// Hop is one traceroute result row.
type Hop struct {
	TTL  int
	Addr netip.Addr // invalid when no response
	Type ICMPType
}

func (hp Hop) String() string {
	if !hp.Addr.IsValid() {
		return fmt.Sprintf("%2d  *", hp.TTL)
	}
	return fmt.Sprintf("%2d  %s", hp.TTL, hp.Addr)
}

// Traceroute probes dst with increasing TTLs (up to maxTTL), returning
// one hop per TTL until the destination answers.
func (h *Host) Traceroute(dst netip.Addr, maxTTL int) []Hop {
	var hops []Hop
	for ttl := 1; ttl <= maxTTL; ttl++ {
		seq := h.nextSeq()
		pkt := NewPacket(h.addr, dst, ProtoICMP)
		pkt.ICMP = ICMPEchoRequest
		pkt.Seq = seq
		pkt.TTL = uint8(ttl)
		h.send(pkt)
		r := h.takeReply(seq)
		if r == nil {
			hops = append(hops, Hop{TTL: ttl})
			continue
		}
		hops = append(hops, Hop{TTL: ttl, Addr: r.Src, Type: r.ICMP})
		if r.ICMP == ICMPEchoReply || r.ICMP == ICMPUnreachable {
			break
		}
	}
	return hops
}
