package bgp

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"peering/internal/bufconn"
	"peering/internal/clock"
	"peering/internal/faultconn"
)

// waitFor polls cond in real time; virtual-clock tests use it only to
// let goroutine scheduling catch up, never to pass protocol time.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if !time.Now().Before(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBackoffDeterministicSchedule(t *testing.T) {
	b := Backoff{Initial: time.Second, Max: 8 * time.Second, Factor: 2}
	want := []time.Duration{
		time.Second, 2 * time.Second, 4 * time.Second,
		8 * time.Second, 8 * time.Second, 8 * time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i+1, nil); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Out-of-range attempts clamp rather than misbehave.
	if got := b.Delay(0, nil); got != time.Second {
		t.Fatalf("Delay(0) = %v", got)
	}
	if got := b.Delay(100, nil); got != 8*time.Second {
		t.Fatalf("Delay(100) = %v", got)
	}
}

func TestBackoffJitterSeededAndBounded(t *testing.T) {
	b := Backoff{Initial: time.Second, Max: time.Minute, Factor: 2, Jitter: 0.5, Seed: 42}
	r1 := rand.New(rand.NewSource(b.Seed))
	r2 := rand.New(rand.NewSource(b.Seed))
	for i := 1; i <= 8; i++ {
		d1, d2 := b.Delay(i, r1), b.Delay(i, r2)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed gave %v and %v", i, d1, d2)
		}
		base := b.Delay(i, nil)
		lo := time.Duration(float64(base) * 0.5)
		hi := time.Duration(float64(base) * 1.5)
		if hi > b.Max {
			hi = b.Max
		}
		if d1 < lo || d1 > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, d1, lo, hi)
		}
	}
}

// flakyDialer hands out bufconn pairs, running a responder session on
// the far end of each, and can be switched to fail dials.
type flakyDialer struct {
	clk clock.Clock

	mu    sync.Mutex
	fail  bool
	dials int
	peers []*Session
}

func (d *flakyDialer) setFail(fail bool) {
	d.mu.Lock()
	d.fail = fail
	d.mu.Unlock()
}

func (d *flakyDialer) dialCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials
}

func (d *flakyDialer) lastPeer() *Session {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.peers) == 0 {
		return nil
	}
	return d.peers[len(d.peers)-1]
}

func (d *flakyDialer) dial() (net.Conn, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dials++
	if d.fail {
		return nil, errors.New("dial refused")
	}
	ours, theirs := bufconn.Pipe()
	peer := New(theirs, Config{
		LocalAS: 65001, LocalID: addr("2.2.2.2"), Clock: d.clk, Describe: "responder",
	}, HandlerFuncs{})
	d.peers = append(d.peers, peer)
	go peer.Run()
	return ours, nil
}

func TestSupervisorRedialsAfterTransportLoss(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	d := &flakyDialer{clk: clk}
	var attempts, recovered []int
	var mu sync.Mutex
	sv := NewSupervisor(SupervisorConfig{
		Session: Config{LocalAS: 47065, LocalID: addr("1.1.1.1"), Clock: clk, Describe: "supervised"},
		Dial:    d.dial,
		Backoff: Backoff{Initial: time.Second, Max: 8 * time.Second, Factor: 2},
		OnAttempt: func(n int) {
			mu.Lock()
			attempts = append(attempts, n)
			mu.Unlock()
		},
		OnRecover: func(n int) {
			mu.Lock()
			recovered = append(recovered, n)
			mu.Unlock()
		},
	}, HandlerFuncs{})
	sv.Start()
	t.Cleanup(sv.Stop)

	waitFor(t, "initial establishment", func() bool {
		s := sv.Session()
		return s != nil && s.State() == StateEstablished
	})

	// Kill the transport abruptly (no Cease): the supervisor must treat
	// it as a blip and schedule a redial.
	d.lastPeer().conn.Close()
	waitFor(t, "failure recorded", func() bool {
		return sv.Stats().ConsecutiveFailures == 1
	})

	// The redial is due exactly one backoff step later — virtual time
	// only; nothing fires before the deadline.
	clk.Advance(999 * time.Millisecond)
	if got := d.dialCount(); got != 1 {
		t.Fatalf("redialed early: %d dials", got)
	}
	clk.Advance(time.Millisecond)
	waitFor(t, "re-establishment", func() bool {
		s := sv.Session()
		return s != nil && s.State() == StateEstablished && sv.Stats().Recoveries == 1
	})

	mu.Lock()
	defer mu.Unlock()
	if len(attempts) != 1 || attempts[0] != 1 {
		t.Fatalf("attempts = %v", attempts)
	}
	if len(recovered) != 1 || recovered[0] != 1 {
		t.Fatalf("recovered = %v", recovered)
	}
	if st := sv.Stats(); st.Attempts != 1 || st.ConsecutiveFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSupervisorBackoffGrowsAcrossFailedDials(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	d := &flakyDialer{clk: clk}
	sv := NewSupervisor(SupervisorConfig{
		Session: Config{LocalAS: 47065, LocalID: addr("1.1.1.1"), Clock: clk},
		Dial:    d.dial,
		Backoff: Backoff{Initial: time.Second, Max: 8 * time.Second, Factor: 2},
	}, HandlerFuncs{})

	d.setFail(true)
	sv.Start() // initial dial fails synchronously → failure 1, redial in 1s
	t.Cleanup(sv.Stop)
	if got := sv.Stats().ConsecutiveFailures; got != 1 {
		t.Fatalf("failures after Start = %d", got)
	}

	// Each Advance fires exactly one redial; the failed dial re-arms the
	// next inside the same callback, outside the advance window.
	for i, step := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second} {
		clk.Advance(step - time.Millisecond)
		if got := d.dialCount(); got != 1+i {
			t.Fatalf("step %d: %d dials before deadline", i, got)
		}
		clk.Advance(time.Millisecond)
		if got := d.dialCount(); got != 2+i {
			t.Fatalf("step %d: %d dials after deadline", i, got)
		}
	}

	// Recovery resets the schedule to Initial.
	d.setFail(false)
	clk.Advance(8 * time.Second)
	waitFor(t, "recovery", func() bool { return sv.Stats().Recoveries == 1 })
	d.lastPeer().conn.Close()
	waitFor(t, "fresh failure", func() bool {
		return sv.Stats().ConsecutiveFailures == 1
	})
	before := d.dialCount()
	clk.Advance(time.Second)
	waitFor(t, "redial at initial backoff", func() bool {
		return d.dialCount() == before+1
	})
}

func TestSupervisorRedialsAfterHoldExpiry(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	var mu sync.Mutex
	var live [][2]*faultconn.Conn
	dial := func() (net.Conn, error) {
		ours, theirs := faultconn.Pipe(clk)
		mu.Lock()
		live = append(live, [2]*faultconn.Conn{ours, theirs})
		mu.Unlock()
		peer := New(theirs, Config{
			LocalAS: 65001, LocalID: addr("2.2.2.2"), Clock: clk, Describe: "responder",
		}, HandlerFuncs{})
		go peer.Run()
		return ours, nil
	}
	sv := NewSupervisor(SupervisorConfig{
		Session: Config{LocalAS: 47065, LocalID: addr("1.1.1.1"), Clock: clk, Describe: "supervised"},
		Dial:    dial,
		Backoff: Backoff{Initial: time.Second, Max: 8 * time.Second, Factor: 2},
	}, HandlerFuncs{})
	sv.Start()
	t.Cleanup(sv.Stop)
	waitFor(t, "establishment", func() bool {
		s := sv.Session()
		return s != nil && s.State() == StateEstablished
	})

	// Cut the wire silently: keepalives vanish into the partition and
	// the hold timer (90s) expires on both ends.
	mu.Lock()
	first := live[0]
	mu.Unlock()
	faultconn.PartitionBoth(first[0], first[1])
	clk.Advance(DefaultHoldTime + 50*time.Millisecond)
	waitFor(t, "hold expiry recorded", func() bool {
		return sv.Stats().ConsecutiveFailures == 1
	})

	// Heal, fire the redial, and the session must come back.
	faultconn.HealBoth(first[0], first[1])
	clk.Advance(time.Second + time.Millisecond)
	waitFor(t, "re-establishment after hold expiry", func() bool {
		s := sv.Session()
		return s != nil && s.State() == StateEstablished && sv.Stats().Recoveries == 1
	})
}

func TestSupervisorStopsOnPeerCease(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	d := &flakyDialer{clk: clk}
	sv := NewSupervisor(SupervisorConfig{
		Session: Config{LocalAS: 47065, LocalID: addr("1.1.1.1"), Clock: clk},
		Dial:    d.dial,
	}, HandlerFuncs{})
	sv.Start()
	waitFor(t, "establishment", func() bool {
		s := sv.Session()
		return s != nil && s.State() == StateEstablished
	})

	// An administrative Cease from the peer is a goodbye, not a blip:
	// the supervisor must terminate without redialing.
	d.lastPeer().Close()
	select {
	case <-sv.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("supervisor did not terminate on peer Cease")
	}
	if got := d.dialCount(); got != 1 {
		t.Fatalf("dials = %d, want 1", got)
	}
}

func TestSupervisorGivesUpAfterMaxAttempts(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	d := &flakyDialer{clk: clk}
	d.setFail(true)
	sv := NewSupervisor(SupervisorConfig{
		Session:     Config{LocalAS: 47065, LocalID: addr("1.1.1.1"), Clock: clk},
		Dial:        d.dial,
		Backoff:     Backoff{Initial: time.Second, Max: 8 * time.Second, Factor: 2},
		MaxAttempts: 3,
	}, HandlerFuncs{})
	sv.Start()

	// Failures cascade deterministically: redials at +1s, +2s, +4s, then
	// the fourth consecutive failure exceeds MaxAttempts.
	clk.Advance(7 * time.Second)
	select {
	case <-sv.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("supervisor did not give up")
	}
	if got := d.dialCount(); got != 4 { // initial + 3 retries
		t.Fatalf("dials = %d, want 4", got)
	}
	if st := sv.Stats(); st.Attempts != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSupervisorStopBeforeRedial(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	d := &flakyDialer{clk: clk}
	d.setFail(true)
	sv := NewSupervisor(SupervisorConfig{
		Session: Config{LocalAS: 47065, LocalID: addr("1.1.1.1"), Clock: clk},
		Dial:    d.dial,
		Backoff: Backoff{Initial: time.Second},
	}, HandlerFuncs{})
	sv.Start()
	sv.Stop() // while backing off
	clk.Advance(time.Minute)
	if got := d.dialCount(); got != 1 {
		t.Fatalf("dials after Stop = %d, want 1", got)
	}
	select {
	case <-sv.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("supervisor did not finish after Stop")
	}
}
