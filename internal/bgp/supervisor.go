package bgp

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"peering/internal/clock"
	"peering/internal/telemetry"
	"peering/internal/wire"
)

// Backoff parameterizes the supervisor's redial schedule: exponential
// growth from Initial by Factor per consecutive failure, capped at Max,
// with optional multiplicative jitter drawn from a seeded PRNG so the
// schedule is reproducible under a virtual clock.
type Backoff struct {
	// Initial is the delay before the first redial. Zero means 1s.
	Initial time.Duration
	// Max caps the delay. Zero means 2m.
	Max time.Duration
	// Factor is the per-failure growth multiplier. Zero means 2.
	Factor float64
	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter].
	// Zero disables jitter entirely.
	Jitter float64
	// Seed seeds the jitter PRNG; a fixed seed yields a deterministic
	// schedule. Only consulted when Jitter > 0.
	Seed int64
}

func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = time.Second
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Minute
	}
	if b.Factor <= 1 {
		b.Factor = 2
	}
	return b
}

// Delay returns the redial delay after the attempt-th consecutive
// failure (attempt >= 1). rng supplies jitter and may be nil.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	b = b.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(b.Initial) * math.Pow(b.Factor, float64(attempt-1))
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 && rng != nil {
		d *= 1 + b.Jitter*(2*rng.Float64()-1)
		if d < 0 {
			d = 0
		}
		if d > float64(b.Max) {
			d = float64(b.Max)
		}
	}
	return time.Duration(d)
}

// SupervisorConfig parameterizes a Supervisor.
type SupervisorConfig struct {
	// Session configures each session the supervisor creates. Its Clock
	// also drives the backoff timers.
	Session Config
	// Dial produces a fresh transport for each (re)connection attempt.
	Dial func() (net.Conn, error)
	// Backoff shapes the redial schedule.
	Backoff Backoff
	// MaxAttempts bounds consecutive redials before the supervisor gives
	// up. Zero means retry forever.
	MaxAttempts int
	// OnAttempt fires before redial n (n >= 1 counts consecutive
	// failures; the initial dial is not reported).
	OnAttempt func(n int)
	// OnRecover fires when a session re-establishes after n failures.
	OnRecover func(n int)
}

// SupervisorStats is a snapshot of supervisor counters.
type SupervisorStats struct {
	// Attempts counts redials (not the initial dial).
	Attempts uint64
	// Recoveries counts sessions re-established after at least one
	// failure.
	Recoveries uint64
	// ConsecutiveFailures counts failures since the last establishment.
	ConsecutiveFailures int
}

// Supervisor owns a session's lifecycle: it dials, runs the session, and
// on failure redials with exponential backoff until stopped, the peer
// ceases administratively, or MaxAttempts is exhausted. All waiting goes
// through the injected clock — a supervisor never sleeps wall-clock time.
type Supervisor struct {
	cfg SupervisorConfig
	h   Handler
	clk clock.Clock
	rng *rand.Rand

	mu          sync.Mutex
	sess        *Session
	timer       clock.Timer
	started     bool
	stopped     bool
	consecutive int

	// attempts/recoveries are standalone telemetry counters: readable
	// lock-free by Stats, mirrored onto the shared Metrics (if any) so
	// the aggregate surfaces on /metrics.
	attempts   telemetry.Counter
	recoveries telemetry.Counter

	doneOnce sync.Once
	done     chan struct{}
}

// NewSupervisor builds a supervisor; call Start to begin dialing. h
// receives the events of every session the supervisor creates.
func NewSupervisor(cfg SupervisorConfig, h Handler) *Supervisor {
	if cfg.Dial == nil {
		panic("bgp: SupervisorConfig.Dial is required")
	}
	cfg.Backoff = cfg.Backoff.withDefaults()
	clk := cfg.Session.Clock
	if clk == nil {
		clk = clock.System
	}
	if h == nil {
		h = HandlerFuncs{}
	}
	sv := &Supervisor{cfg: cfg, h: h, clk: clk, done: make(chan struct{})}
	if cfg.Backoff.Jitter > 0 {
		sv.rng = rand.New(rand.NewSource(cfg.Backoff.Seed))
	}
	return sv
}

// Start begins the first connection attempt. It is idempotent.
func (sv *Supervisor) Start() {
	sv.mu.Lock()
	if sv.started || sv.stopped {
		sv.mu.Unlock()
		return
	}
	sv.started = true
	sv.mu.Unlock()
	sv.dial()
}

// Stop administratively shuts the supervisor down: the current session
// (if any) is closed with Cease and no redial is scheduled.
func (sv *Supervisor) Stop() {
	sv.mu.Lock()
	if sv.stopped {
		sv.mu.Unlock()
		return
	}
	sv.stopped = true
	t := sv.timer
	sv.timer = nil
	sess := sv.sess
	sv.mu.Unlock()
	if t != nil {
		t.Stop()
	}
	if sess != nil {
		sess.Close() // Closed → sessionEnded → finish
	} else {
		sv.finish()
	}
}

// Drain stops the redial machinery without touching a live session.
// For callers that know the transport underneath has already died: the
// session's reader must be left to empty its receive buffer — a goodbye
// (Cease) the peer sent just before the transport went down is then
// still honored — after which the session ends on the transport error
// by itself and the supervisor finishes.
func (sv *Supervisor) Drain() {
	sv.mu.Lock()
	if sv.stopped {
		sv.mu.Unlock()
		return
	}
	sv.stopped = true
	t := sv.timer
	sv.timer = nil
	sess := sv.sess
	sv.mu.Unlock()
	if t != nil {
		t.Stop()
	}
	if sess == nil {
		sv.finish()
	}
}

// Session returns the current session, which may still be handshaking.
// Nil while disconnected or backing off.
func (sv *Supervisor) Session() *Session {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.sess
}

// Done is closed when the supervisor has terminated for good.
func (sv *Supervisor) Done() <-chan struct{} { return sv.done }

// Stats snapshots the supervisor's counters.
func (sv *Supervisor) Stats() SupervisorStats {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return SupervisorStats{
		Attempts:            sv.attempts.Value(),
		Recoveries:          sv.recoveries.Value(),
		ConsecutiveFailures: sv.consecutive,
	}
}

func (sv *Supervisor) dial() {
	sv.mu.Lock()
	if sv.stopped {
		sv.mu.Unlock()
		return
	}
	dialFn := sv.cfg.Dial
	sv.mu.Unlock()

	conn, err := dialFn()
	if err != nil {
		sv.sessionEnded(fmt.Errorf("bgp: supervisor dial: %w", err))
		return
	}
	sv.mu.Lock()
	if sv.stopped {
		sv.mu.Unlock()
		conn.Close()
		sv.finish()
		return
	}
	sess := New(conn, sv.cfg.Session, supHandler{sv})
	sv.sess = sess
	sv.mu.Unlock()
	go sess.Run()
}

// sessionEnded decides what follows a failure or shutdown: finish, or
// schedule a redial on the clock.
func (sv *Supervisor) sessionEnded(err error) {
	sv.mu.Lock()
	sv.sess = nil
	if sv.stopped {
		sv.mu.Unlock()
		sv.finish()
		return
	}
	if err == nil || IsPeerCease(err) {
		// Clean shutdown on either end: supervision is over.
		sv.stopped = true
		sv.mu.Unlock()
		sv.finish()
		return
	}
	sv.consecutive++
	n := sv.consecutive
	if sv.cfg.MaxAttempts > 0 && n > sv.cfg.MaxAttempts {
		sv.stopped = true
		sv.mu.Unlock()
		sv.finish()
		return
	}
	d := sv.cfg.Backoff.Delay(n, sv.rng)
	onAttempt := sv.cfg.OnAttempt
	sv.timer = sv.clk.AfterFunc(d, func() {
		sv.mu.Lock()
		if sv.stopped {
			sv.mu.Unlock()
			return
		}
		sv.mu.Unlock()
		sv.attempts.Inc()
		sv.cfg.Session.Metrics.reconnect()
		if onAttempt != nil {
			onAttempt(n)
		}
		sv.dial()
	})
	sv.mu.Unlock()
}

func (sv *Supervisor) finish() {
	sv.doneOnce.Do(func() { close(sv.done) })
}

// supHandler interposes the supervisor between the session and the
// user's handler so lifecycle transitions are observed first-hand.
type supHandler struct{ sv *Supervisor }

func (w supHandler) Established(s *Session) {
	sv := w.sv
	sv.mu.Lock()
	failures := sv.consecutive
	sv.consecutive = 0
	onRecover := sv.cfg.OnRecover
	sv.mu.Unlock()
	if failures > 0 {
		sv.recoveries.Inc()
		sv.cfg.Session.Metrics.recovery()
		if onRecover != nil {
			onRecover(failures)
		}
	}
	sv.h.Established(s)
}

func (w supHandler) UpdateReceived(s *Session, u *wire.Update) {
	w.sv.h.UpdateReceived(s, u)
}

func (w supHandler) Closed(s *Session, err error) {
	w.sv.h.Closed(s, err)
	w.sv.sessionEnded(err)
}
