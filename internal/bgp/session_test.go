package bgp

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"peering/internal/bufconn"
	"peering/internal/wire"
)

func addr(s string) netip.Addr     { return netip.MustParseAddr(s) }
func prefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// collector accumulates handler events for assertions.
type collector struct {
	mu      sync.Mutex
	est     bool
	updates []*wire.Update
	closed  bool
	err     error
	estCh   chan struct{}
	updCh   chan *wire.Update
	closeCh chan struct{}
}

func newCollector() *collector {
	return &collector{
		estCh:   make(chan struct{}, 1),
		updCh:   make(chan *wire.Update, 64),
		closeCh: make(chan struct{}),
	}
}

func (c *collector) Established(*Session) {
	c.mu.Lock()
	c.est = true
	c.mu.Unlock()
	select {
	case c.estCh <- struct{}{}:
	default:
	}
}

func (c *collector) UpdateReceived(_ *Session, u *wire.Update) {
	c.mu.Lock()
	c.updates = append(c.updates, u)
	c.mu.Unlock()
	c.updCh <- u
}

func (c *collector) Closed(_ *Session, err error) {
	c.mu.Lock()
	c.closed, c.err = true, err
	c.mu.Unlock()
	close(c.closeCh)
}

// pair creates two connected sessions and runs them.
func pair(t *testing.T, ca, cb Config) (*Session, *Session, *collector, *collector) {
	t.Helper()
	connA, connB := bufconn.Pipe()
	ha, hb := newCollector(), newCollector()
	sa, sb := New(connA, ca, ha), New(connB, cb, hb)
	go sa.Run()
	go sb.Run()
	t.Cleanup(func() { sa.Close(); sb.Close() })
	return sa, sb, ha, hb
}

func waitEstablished(t *testing.T, cs ...*collector) {
	t.Helper()
	for _, c := range cs {
		select {
		case <-c.estCh:
		case <-time.After(5 * time.Second):
			t.Fatal("session did not establish")
		}
	}
}

func baseConfigs() (Config, Config) {
	return Config{LocalAS: 47065, LocalID: addr("1.1.1.1"), Describe: "A"},
		Config{LocalAS: 65001, LocalID: addr("2.2.2.2"), Describe: "B"}
}

func TestEstablish(t *testing.T) {
	ca, cb := baseConfigs()
	sa, sb, ha, hb := pair(t, ca, cb)
	waitEstablished(t, ha, hb)
	if sa.State() != StateEstablished || sb.State() != StateEstablished {
		t.Fatalf("states = %v / %v", sa.State(), sb.State())
	}
	if sa.PeerAS() != 65001 || sb.PeerAS() != 47065 {
		t.Fatalf("peer AS = %d / %d", sa.PeerAS(), sb.PeerAS())
	}
	if sa.PeerID() != addr("2.2.2.2") || sb.PeerID() != addr("1.1.1.1") {
		t.Fatalf("peer IDs = %v / %v", sa.PeerID(), sb.PeerID())
	}
}

func TestEstablishWith4ByteASN(t *testing.T) {
	ca, cb := baseConfigs()
	ca.LocalAS = 4200000123
	_, sb, ha, hb := pair(t, ca, cb)
	waitEstablished(t, ha, hb)
	if got := sb.PeerAS(); got != 4200000123 {
		t.Fatalf("peer AS seen = %d, want 4200000123", got)
	}
}

func TestPeerASMismatchRejected(t *testing.T) {
	ca, cb := baseConfigs()
	ca.PeerAS = 99999 // B is 65001
	_, _, ha, hb := pair(t, ca, cb)
	select {
	case <-ha.closeCh:
	case <-time.After(5 * time.Second):
		t.Fatal("mismatched session did not close")
	}
	<-hb.closeCh
	ha.mu.Lock()
	defer ha.mu.Unlock()
	if ha.err == nil {
		t.Fatal("no error on AS mismatch")
	}
	if ha.est {
		t.Fatal("session established despite AS mismatch")
	}
}

func TestAddPathNegotiation(t *testing.T) {
	ca, cb := baseConfigs()
	ca.AddPath, cb.AddPath = true, true
	sa, sb, ha, hb := pair(t, ca, cb)
	waitEstablished(t, ha, hb)
	if !sa.Options().AddPath || !sb.Options().AddPath {
		t.Fatal("ADD-PATH not negotiated when both offered")
	}

	// Only one side offers: not negotiated.
	ca2, cb2 := baseConfigs()
	ca2.AddPath = true
	sa2, sb2, ha2, hb2 := pair(t, ca2, cb2)
	waitEstablished(t, ha2, hb2)
	if sa2.Options().AddPath || sb2.Options().AddPath {
		t.Fatal("ADD-PATH negotiated unilaterally")
	}
}

func sampleUpdate() *wire.Update {
	return &wire.Update{
		Attrs: &wire.Attrs{
			Origin:  wire.OriginIGP,
			ASPath:  []wire.Segment{{Type: wire.SegSequence, ASNs: []uint32{47065}}},
			NextHop: addr("192.0.2.1"),
		},
		Reach: []wire.NLRI{{Prefix: prefix("100.64.0.0/24")}},
	}
}

func TestUpdateExchange(t *testing.T) {
	ca, cb := baseConfigs()
	sa, _, ha, hb := pair(t, ca, cb)
	waitEstablished(t, ha, hb)
	if err := sa.Send(sampleUpdate()); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-hb.updCh:
		if len(u.Reach) != 1 || u.Reach[0].Prefix != prefix("100.64.0.0/24") {
			t.Fatalf("update = %+v", u)
		}
		if u.Attrs.FirstAS() != 47065 {
			t.Fatalf("path = %s", u.Attrs.PathString())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("update not delivered")
	}
}

func TestUpdateWithAddPathIDs(t *testing.T) {
	ca, cb := baseConfigs()
	ca.AddPath, cb.AddPath = true, true
	sa, _, ha, hb := pair(t, ca, cb)
	waitEstablished(t, ha, hb)
	u := sampleUpdate()
	u.Reach = []wire.NLRI{
		{Prefix: prefix("100.64.0.0/24"), ID: 11},
		{Prefix: prefix("100.64.0.0/24"), ID: 22},
	}
	if err := sa.Send(u); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-hb.updCh:
		if len(got.Reach) != 2 || got.Reach[0].ID != 11 || got.Reach[1].ID != 22 {
			t.Fatalf("reach = %+v", got.Reach)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("add-path update not delivered")
	}
}

func TestSendBeforeEstablishedFails(t *testing.T) {
	connA, _ := bufconn.Pipe()
	s := New(connA, Config{LocalAS: 1, LocalID: addr("1.1.1.1")}, nil)
	if err := s.Send(sampleUpdate()); err == nil {
		t.Fatal("Send on un-established session succeeded")
	}
}

func TestCleanClose(t *testing.T) {
	ca, cb := baseConfigs()
	sa, _, ha, hb := pair(t, ca, cb)
	waitEstablished(t, ha, hb)
	sa.Close()
	select {
	case <-hb.closeCh:
	case <-time.After(5 * time.Second):
		t.Fatal("peer did not observe close")
	}
	<-ha.closeCh
	if sa.State() != StateClosed {
		t.Fatalf("state = %v", sa.State())
	}
	// Idempotent.
	if err := sa.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHoldTimerExpiry(t *testing.T) {
	// A proposes 3s hold; B proposes 3s. Stop B's keepalives by closing
	// abruptly under A... Instead: use a one-sided silent peer — a raw
	// conn that completes the handshake then goes quiet.
	connA, connB := bufconn.Pipe()
	ha := newCollector()
	sa := New(connA, Config{LocalAS: 1, LocalID: addr("1.1.1.1"), HoldTime: 3 * time.Second, Describe: "A"}, ha)
	go sa.Run()
	defer sa.Close()

	// Silent peer: handshake manually, then never send again.
	if _, err := wire.ReadMessage(connB, wire.DefaultOptions); err != nil { // A's OPEN
		t.Fatal(err)
	}
	open := &wire.Open{AS: 65001, HoldTime: 60, BGPID: addr("2.2.2.2"), Caps: wire.StandardCaps(65001, false)}
	b, _ := wire.Marshal(open, wire.DefaultOptions)
	connB.Write(b)
	kb, _ := wire.Marshal(&wire.Keepalive{}, wire.DefaultOptions)
	connB.Write(kb)
	if _, err := wire.ReadMessage(connB, wire.DefaultOptions); err != nil { // A's KEEPALIVE
		t.Fatal(err)
	}

	select {
	case <-ha.estCh:
	case <-time.After(5 * time.Second):
		t.Fatal("not established")
	}
	select {
	case <-ha.closeCh:
		ha.mu.Lock()
		defer ha.mu.Unlock()
		if ha.err == nil {
			t.Fatal("hold expiry produced no error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hold timer never expired")
	}
}

func TestKeepalivesSustainSession(t *testing.T) {
	ca, cb := baseConfigs()
	ca.HoldTime, cb.HoldTime = 3*time.Second, 3*time.Second
	sa, sb, ha, hb := pair(t, ca, cb)
	waitEstablished(t, ha, hb)
	// Far longer than the hold time; keepalives must keep it alive.
	time.Sleep(4 * time.Second)
	if sa.State() != StateEstablished || sb.State() != StateEstablished {
		t.Fatalf("session died despite keepalives: %v / %v", sa.State(), sb.State())
	}
}

func TestNegotiatedHoldIsMin(t *testing.T) {
	ca, cb := baseConfigs()
	ca.HoldTime, cb.HoldTime = 30*time.Second, 90*time.Second
	sa, sb, ha, hb := pair(t, ca, cb)
	waitEstablished(t, ha, hb)
	sa.mu.Lock()
	haHold := sa.holdTime
	sa.mu.Unlock()
	sb.mu.Lock()
	hbHold := sb.holdTime
	sb.mu.Unlock()
	if haHold != 30*time.Second || hbHold != 30*time.Second {
		t.Fatalf("negotiated hold = %v / %v, want 30s", haHold, hbHold)
	}
}

func TestManyConcurrentSessions(t *testing.T) {
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			connA, connB := bufconn.Pipe()
			ha, hb := newCollector(), newCollector()
			sa := New(connA, Config{LocalAS: uint32(1000 + i), LocalID: addr("1.1.1.1")}, ha)
			sb := New(connB, Config{LocalAS: uint32(2000 + i), LocalID: addr("2.2.2.2")}, hb)
			go sa.Run()
			go sb.Run()
			<-ha.estCh
			<-hb.estCh
			sa.Send(sampleUpdate())
			<-hb.updCh
			sa.Close()
			sb.Close()
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent sessions deadlocked")
	}
}
