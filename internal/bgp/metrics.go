package bgp

import (
	"strings"

	"peering/internal/telemetry"
	"peering/internal/wire"
)

// Metrics is the session layer's instrument set, shared by every
// session and supervisor created with the same Config.Metrics. One
// instance per registry: construct with NewMetrics and hand the same
// pointer to all session configs. A nil *Metrics disables session
// instrumentation (each method guards itself), so tests and embedded
// uses pay nothing.
type Metrics struct {
	// MsgsIn / MsgsOut count BGP messages by type ("open", "update",
	// "keepalive", "notification", "refresh") crossing any session.
	MsgsIn  *telemetry.CounterVec
	MsgsOut *telemetry.CounterVec
	// Sessions gauges how many sessions currently sit in each FSM
	// state; a session leaves the gauge entirely when it closes.
	Sessions *telemetry.GaugeVec
	// SessionsClosed counts session terminations over all time.
	SessionsClosed *telemetry.Counter
	// Reconnects counts supervisor redial attempts (not initial dials);
	// Recoveries counts sessions re-established after ≥1 failure.
	Reconnects *telemetry.Counter
	Recoveries *telemetry.Counter
	// Errors counts RFC 7606 containment actions taken on inbound
	// UPDATEs, by action ("treat_as_withdraw", "attribute_discard",
	// "session_reset"). Counted at ingress on every session — client
	// and upstream alike — so the server inherits coverage for free.
	Errors *telemetry.CounterVec
}

// NewMetrics registers the session layer's metrics on r.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		MsgsIn: r.CounterVec("peering_bgp_messages_in_total",
			"BGP messages received, by message type.", "type"),
		MsgsOut: r.CounterVec("peering_bgp_messages_out_total",
			"BGP messages sent, by message type.", "type"),
		Sessions: r.GaugeVec("peering_bgp_sessions",
			"Live BGP sessions by FSM state.", "state"),
		SessionsClosed: r.Counter("peering_bgp_sessions_closed_total",
			"BGP sessions terminated (any reason)."),
		Reconnects: r.Counter("peering_bgp_reconnect_attempts_total",
			"Supervised session redial attempts."),
		Recoveries: r.Counter("peering_bgp_session_recoveries_total",
			"Sessions re-established after at least one failure."),
		Errors: r.CounterVec("peering_errors_total",
			"RFC 7606 UPDATE error-handling actions taken, by action.", "action"),
	}
}

// msgIn / msgOut / sessionState / sessionClosed are the nil-safe hooks
// sessions call; keeping them here keeps session.go free of guards.

func (m *Metrics) msgIn(msg wire.Message) {
	if m != nil {
		m.MsgsIn.With(msgTypeLabel(msg.Type())).Inc()
	}
}

func (m *Metrics) msgOut(msg wire.Message) {
	if m != nil {
		m.MsgsOut.With(msgTypeLabel(msg.Type())).Inc()
	}
}

// msgOutUpdates counts n UPDATEs written at once (a pre-encoded frame).
func (m *Metrics) msgOutUpdates(n int) {
	if m != nil && n > 0 {
		m.MsgsOut.With("update").Add(uint64(n))
	}
}

// sessionState moves a session from FSM state old to new on the state
// gauge; old < 0 means the session is new (nothing to decrement).
func (m *Metrics) sessionState(old, new State) {
	if m == nil {
		return
	}
	if old >= 0 {
		m.Sessions.With(stateLabel(old)).Dec()
	}
	m.Sessions.With(stateLabel(new)).Inc()
}

// sessionClosed removes a closing session from the state gauge and
// counts the termination.
func (m *Metrics) sessionClosed(last State) {
	if m == nil {
		return
	}
	m.Sessions.With(stateLabel(last)).Dec()
	m.SessionsClosed.Inc()
}

// errorAction counts one RFC 7606 containment action.
func (m *Metrics) errorAction(action string) {
	if m != nil {
		m.Errors.With(action).Inc()
	}
}

func (m *Metrics) reconnect() {
	if m != nil {
		m.Reconnects.Inc()
	}
}

func (m *Metrics) recovery() {
	if m != nil {
		m.Recoveries.Inc()
	}
}

// msgTypeLabel maps a wire message type to its metric label.
func msgTypeLabel(t wire.MsgType) string {
	switch t {
	case wire.MsgOpen:
		return "open"
	case wire.MsgUpdate:
		return "update"
	case wire.MsgNotification:
		return "notification"
	case wire.MsgKeepalive:
		return "keepalive"
	case wire.MsgRouteRefresh:
		return "refresh"
	default:
		return "unknown"
	}
}

// stateLabel is the lowercase FSM state name used as the state gauge's
// label value.
func stateLabel(s State) string { return strings.ToLower(s.String()) }
