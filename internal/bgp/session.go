// Package bgp implements the BGP-4 session layer: the RFC 4271 §8
// finite state machine, OPEN negotiation (hold time, 4-octet AS,
// ADD-PATH), keepalive/hold timers, and message exchange over any
// net.Conn.
//
// Sessions are transport-agnostic: PEERING servers run them over real
// TCP to upstream peers, over tunnel streams to clients, and over
// in-memory pipes inside emulations — identical code on every path,
// which is exactly the property the testbed relies on ("from each
// client's perspective, it essentially has direct connections to the
// upstream and peer ASes").
//
// Sessions and supervisors are instrumented through a shared, optional
// Metrics instance (Config.Metrics): message counts by type, a live
// per-FSM-state session gauge, and redial/recovery counters, all on
// the unified telemetry registry. A nil Metrics disables recording, so
// the package stays usable standalone.
package bgp

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"peering/internal/bufpool"
	"peering/internal/clock"
	"peering/internal/telemetry"
	"peering/internal/wire"
)

// State is an FSM state (RFC 4271 §8.2.2). Connect/Active live in the
// dialer; a Session starts at OpenSent once a transport exists.
type State int32

// FSM states.
const (
	StateIdle State = iota
	StateConnect
	StateActive
	StateOpenSent
	StateOpenConfirm
	StateEstablished
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateConnect:
		return "Connect"
	case StateActive:
		return "Active"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	case StateClosed:
		return "Closed"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// DefaultHoldTime is used when the config leaves HoldTime zero.
const DefaultHoldTime = 90 * time.Second

// PeerClosedError is the terminal error of a session whose neighbor sent
// a NOTIFICATION. Supervisors use it to tell an administrative shutdown
// (Cease — do not redial) from a protocol failure (redial).
type PeerClosedError struct {
	Notif *wire.Notification
}

// Error implements error.
func (e *PeerClosedError) Error() string {
	return fmt.Sprintf("bgp: peer sent %v", e.Notif)
}

// IsPeerCease reports whether err means the peer administratively closed
// the session with a Cease NOTIFICATION.
func IsPeerCease(err error) bool {
	var pc *PeerClosedError
	return errors.As(err, &pc) && pc.Notif.Code == wire.CodeCease
}

// Config parameterizes one session endpoint.
type Config struct {
	// LocalAS is our autonomous system number.
	LocalAS uint32
	// LocalID is our BGP identifier (an IPv4 address).
	LocalID netip.Addr
	// PeerAS, when nonzero, is enforced against the neighbor's OPEN.
	PeerAS uint32
	// HoldTime is our proposed hold time; the session uses
	// min(ours, theirs). Zero means DefaultHoldTime.
	HoldTime time.Duration
	// AddPath offers the ADD-PATH capability (both directions) for
	// IPv4 unicast. It takes effect only if the peer offers it too.
	AddPath bool
	// Clock drives keepalive and hold timers; nil means the system
	// clock.
	Clock clock.Clock
	// Describe labels the session in errors and logs.
	Describe string
	// Metrics, when non-nil, receives message counts and FSM state
	// transitions for this session (shared across all sessions built
	// with the same instance; see NewMetrics).
	Metrics *Metrics
}

// Handler receives session events. Calls are serialized per session.
type Handler interface {
	// Established fires when the session reaches Established.
	Established(*Session)
	// UpdateReceived fires for each inbound UPDATE.
	UpdateReceived(*Session, *wire.Update)
	// Closed fires exactly once when the session ends; err is nil on
	// clean shutdown.
	Closed(*Session, error)
}

// BatchHandler is an optional Handler extension: when the handler
// implements it and the transport reports readable bytes (a Buffered()
// int method, e.g. bufconn), the reader collects consecutive UPDATEs
// that are already in flight and delivers them as one slice instead of
// one call per message — the entry point of the batched ingest path.
// Per-message accounting (metrics, hold-timer resets, RFC 7606 error
// actions) is unchanged. The slice is reused by the reader after the
// call returns; implementations must not retain it (the *Updates
// inside are fresh per decode and may be kept).
type BatchHandler interface {
	UpdateBatchReceived(*Session, []*wire.Update)
}

// maxReadBatch bounds one batched delivery. At the 4096-byte message
// cap this also bounds the bytes a batch can pin at ~512KB, under any
// transport frame limit in the tree.
const maxReadBatch = 128

// HandlerFuncs adapts plain functions to Handler; nil fields are no-ops.
type HandlerFuncs struct {
	OnEstablished func(*Session)
	OnUpdate      func(*Session, *wire.Update)
	OnClosed      func(*Session, error)
}

// Established implements Handler.
func (h HandlerFuncs) Established(s *Session) {
	if h.OnEstablished != nil {
		h.OnEstablished(s)
	}
}

// UpdateReceived implements Handler.
func (h HandlerFuncs) UpdateReceived(s *Session, u *wire.Update) {
	if h.OnUpdate != nil {
		h.OnUpdate(s, u)
	}
}

// Closed implements Handler.
func (h HandlerFuncs) Closed(s *Session, err error) {
	if h.OnClosed != nil {
		h.OnClosed(s, err)
	}
}

// Session is one BGP session over an established transport.
type Session struct {
	cfg     Config
	conn    net.Conn
	handler Handler
	clk     clock.Clock

	mu        sync.Mutex
	state     State
	peerAS    uint32
	peerID    netip.Addr
	holdTime  time.Duration
	opts      wire.Options
	closeErr  error
	closed    bool
	sendQ     chan sendItem
	done      chan struct{}
	holdTimer clock.Timer
	kaTimer   clock.Timer
	// sent counts UPDATEs accepted by Send — the batching pipeline's
	// measure of how many messages actually hit the wire. A standalone
	// telemetry counter: lock-free, readable without s.mu.
	sent telemetry.Counter
}

// New wraps conn in a session. Call Run (usually in a goroutine) to
// drive the handshake and message loop.
func New(conn net.Conn, cfg Config, h Handler) *Session {
	if cfg.HoldTime == 0 {
		cfg.HoldTime = DefaultHoldTime
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	if h == nil {
		h = HandlerFuncs{}
	}
	cfg.Metrics.sessionState(-1, StateOpenSent)
	return &Session{
		cfg:     cfg,
		conn:    conn,
		handler: h,
		clk:     clk,
		state:   StateOpenSent,
		sendQ:   make(chan sendItem, 256),
		done:    make(chan struct{}),
	}
}

// State returns the current FSM state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Established reports whether the session is currently Established.
func (s *Session) Established() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == StateEstablished && !s.closed
}

// SentUpdates reports how many UPDATE messages Send has accepted over
// the session's lifetime.
func (s *Session) SentUpdates() uint64 { return s.sent.Value() }

// PeerAS returns the neighbor's (4-octet) ASN once OPEN has been
// received, else 0.
func (s *Session) PeerAS() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peerAS
}

// PeerID returns the neighbor's BGP identifier.
func (s *Session) PeerID() netip.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peerID
}

// Options returns the negotiated codec options (valid once Established).
func (s *Session) Options() wire.Options {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opts
}

// LocalAS returns our configured ASN.
func (s *Session) LocalAS() uint32 { return s.cfg.LocalAS }

// Describe returns the configured session label.
func (s *Session) Describe() string { return s.cfg.Describe }

// Done is closed when the session has fully terminated.
func (s *Session) Done() <-chan struct{} { return s.done }

// Err returns the terminal error (nil before close or on clean close).
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeErr
}

// Run drives the session to completion: handshake, then the message
// loop until error or Close. It returns the terminal error.
func (s *Session) Run() error {
	// The handshake reads have no deadline of their own, so a silent peer
	// (or a partitioned transport) would otherwise pin this goroutine
	// forever and stall any supervisor redialing through it.
	hsTimer := s.clk.AfterFunc(s.cfg.HoldTime, func() {
		s.mu.Lock()
		pending := s.state != StateEstablished && !s.closed
		s.mu.Unlock()
		if pending {
			s.abort(errors.New("bgp: handshake timed out"))
		}
	})
	err := s.handshake()
	hsTimer.Stop()
	if err != nil {
		s.shutdown(err)
		return err
	}
	go s.writer()
	s.handler.Established(s)
	err = s.reader()
	s.shutdown(err)
	return s.Err()
}

// open builds our OPEN message.
func (s *Session) open() *wire.Open {
	as2 := uint16(s.cfg.LocalAS)
	if s.cfg.LocalAS > 0xffff {
		as2 = wire.ASTrans
	}
	return &wire.Open{
		AS:       as2,
		HoldTime: uint16(s.cfg.HoldTime / time.Second),
		BGPID:    s.cfg.LocalID,
		Caps:     wire.StandardCaps(s.cfg.LocalAS, s.cfg.AddPath),
	}
}

func (s *Session) handshake() error {
	// OpenSent: send our OPEN, await theirs.
	if err := s.writeMsg(s.open(), wire.DefaultOptions); err != nil {
		return fmt.Errorf("bgp: send OPEN: %w", err)
	}
	msg, err := wire.ReadMessage(s.conn, wire.DefaultOptions)
	if err != nil {
		s.sendNotifForErr(err)
		return fmt.Errorf("bgp: await OPEN: %w", err)
	}
	s.cfg.Metrics.msgIn(msg)
	po, ok := msg.(*wire.Open)
	if !ok {
		notif := wire.NotifError(wire.CodeFSMError, 0, nil)
		s.writeMsg(notif.Notification(), wire.DefaultOptions)
		return fmt.Errorf("bgp: expected OPEN, got %v", msg.Type())
	}
	peerAS := po.FourOctetAS()
	if s.cfg.PeerAS != 0 && peerAS != s.cfg.PeerAS {
		notif := wire.NotifError(wire.CodeOpenMessageError, wire.SubBadPeerAS, nil)
		s.writeMsg(notif.Notification(), wire.DefaultOptions)
		return fmt.Errorf("bgp: peer AS %d, want %d", peerAS, s.cfg.PeerAS)
	}
	hold := s.cfg.HoldTime
	if ph := time.Duration(po.HoldTime) * time.Second; ph < hold {
		hold = ph
	}
	addPath := s.cfg.AddPath && po.HasAddPath()

	s.mu.Lock()
	s.state = StateOpenConfirm
	s.peerAS = peerAS
	s.peerID = po.BGPID
	s.holdTime = hold
	s.opts = wire.Options{AddPath: addPath, AS4: true}
	s.mu.Unlock()
	s.cfg.Metrics.sessionState(StateOpenSent, StateOpenConfirm)

	// OpenConfirm: send KEEPALIVE, await theirs.
	if err := s.writeMsg(&wire.Keepalive{}, wire.DefaultOptions); err != nil {
		return fmt.Errorf("bgp: send KEEPALIVE: %w", err)
	}
	msg, err = wire.ReadMessage(s.conn, wire.DefaultOptions)
	if err != nil {
		return fmt.Errorf("bgp: await KEEPALIVE: %w", err)
	}
	s.cfg.Metrics.msgIn(msg)
	switch m := msg.(type) {
	case *wire.Keepalive:
	case *wire.Notification:
		return &PeerClosedError{Notif: m}
	default:
		return fmt.Errorf("bgp: expected KEEPALIVE, got %v", msg.Type())
	}

	s.mu.Lock()
	s.state = StateEstablished
	s.mu.Unlock()
	s.cfg.Metrics.sessionState(StateOpenConfirm, StateEstablished)
	s.startTimers()
	return nil
}

// startTimers arms the hold timer and keepalive generator.
func (s *Session) startTimers() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.holdTime <= 0 {
		return // hold time 0: no keepalives (RFC 4271 §4.2)
	}
	s.holdTimer = s.clk.AfterFunc(s.holdTime, func() {
		ne := wire.NotifError(wire.CodeHoldTimerExpired, 0, nil)
		s.enqueue(ne.Notification())
		s.abort(errors.New("bgp: hold timer expired"))
	})
	ka := s.holdTime / 3
	var tick func()
	tick = func() {
		s.enqueue(&wire.Keepalive{})
		s.mu.Lock()
		if !s.closed {
			s.kaTimer = s.clk.AfterFunc(ka, tick)
		}
		s.mu.Unlock()
	}
	s.kaTimer = s.clk.AfterFunc(ka, tick)
}

// resetHold re-arms the hold timer after any inbound message.
func (s *Session) resetHold() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.holdTimer != nil && !s.closed {
		s.holdTimer.Reset(s.holdTime)
	}
}

// sendItem is one entry on the send queue: either a message to encode,
// or a pre-encoded frame of `updates` UPDATE messages to write as-is.
type sendItem struct {
	m       wire.Message
	frame   *bufpool.Frame
	updates int
}

// Send queues an UPDATE for transmission. It returns an error if the
// session is not Established.
func (s *Session) Send(u *wire.Update) error {
	s.mu.Lock()
	if s.state != StateEstablished || s.closed {
		st := s.state
		s.mu.Unlock()
		return fmt.Errorf("bgp: session %s not established (state %v)", s.cfg.Describe, st)
	}
	s.mu.Unlock()
	s.sent.Inc()
	s.enqueue(u)
	return nil
}

// SendEncoded queues a pre-encoded run of UPDATE messages — the shared
// fan-out frames every in-sync client references — for transmission in
// one write. The frame must already be encoded under this session's
// negotiated Options (the caller checks; see Options) and must carry a
// reference for this session: the session releases it after the write,
// or immediately if the session is not Established or is shutting
// down. updates is the UPDATE count inside the frame, counted on the
// same instruments per-message sends use.
func (s *Session) SendEncoded(f *bufpool.Frame, updates int) error {
	s.mu.Lock()
	if s.state != StateEstablished || s.closed {
		st := s.state
		s.mu.Unlock()
		f.Release()
		return fmt.Errorf("bgp: session %s not established (state %v)", s.cfg.Describe, st)
	}
	s.mu.Unlock()
	s.sent.Add(uint64(updates))
	select {
	case s.sendQ <- sendItem{frame: f, updates: updates}:
	case <-s.done:
		f.Release()
	}
	return nil
}

// enqueue places a message on the send queue, dropping it if the session
// is closing (the writer drains until close).
func (s *Session) enqueue(m wire.Message) {
	select {
	case s.sendQ <- sendItem{m: m}:
	case <-s.done:
	}
}

func (s *Session) writer() {
	for {
		select {
		case it := <-s.sendQ:
			if it.frame != nil {
				if err := s.writeFrame(it); err != nil {
					s.abort(fmt.Errorf("bgp: write: %w", err))
					s.releaseQueuedFrames()
					return
				}
				continue
			}
			s.mu.Lock()
			opts := s.opts
			s.mu.Unlock()
			if err := s.writeMsg(it.m, opts); err != nil {
				s.abort(fmt.Errorf("bgp: write: %w", err))
				s.releaseQueuedFrames()
				return
			}
			if n, ok := it.m.(*wire.Notification); ok {
				s.abort(fmt.Errorf("bgp: sent %v", n))
				s.releaseQueuedFrames()
				return
			}
		case <-s.done:
			s.releaseQueuedFrames()
			return
		}
	}
}

// writeFrame writes one pre-encoded frame and releases the session's
// reference to it.
func (s *Session) writeFrame(it sendItem) error {
	_, err := s.conn.Write(it.frame.Bytes())
	if err == nil {
		s.cfg.Metrics.msgOutUpdates(it.updates)
	}
	it.frame.Release()
	return err
}

// releaseQueuedFrames drops the references held by frames still queued
// when the writer exits, so their buffers can be recycled. Best
// effort: a frame enqueued after this drain is simply left to the GC.
func (s *Session) releaseQueuedFrames() {
	for {
		select {
		case it := <-s.sendQ:
			if it.frame != nil {
				it.frame.Release()
			}
		default:
			return
		}
	}
}

func (s *Session) writeMsg(m wire.Message, opts wire.Options) error {
	// Encode into a pooled buffer: every transport below (bufconn,
	// tunnel streams, faultconn) either copies the bytes or completes the
	// write before returning, so the buffer is reusable as soon as
	// conn.Write returns.
	buf := bufpool.Get(0)
	b, err := wire.AppendMessage(buf[:0], m, opts)
	if err != nil {
		bufpool.Put(buf)
		return err
	}
	if _, err = s.conn.Write(b); err == nil {
		s.cfg.Metrics.msgOut(m)
	}
	bufpool.Put(b)
	return err
}

func (s *Session) reader() error {
	// Batched delivery engages when both ends support it: the handler
	// accepts slices and the transport can say whether more bytes are
	// already readable, so collecting never blocks waiting for traffic
	// that may not come. batch is reused across deliveries.
	bh, _ := s.handler.(BatchHandler)
	bc, _ := s.conn.(interface{ Buffered() int })
	batching := bh != nil && bc != nil
	var batch []*wire.Update
	flush := func() {
		if len(batch) > 0 {
			// One hold-timer reset covers the whole batch: its messages
			// all arrived before this delivery, and collection never
			// blocks (it only continues while bytes are already
			// buffered), so the reset is at most a drain-loop late.
			s.resetHold()
			bh.UpdateBatchReceived(s, batch)
			batch = batch[:0]
		}
	}
	for {
		s.mu.Lock()
		opts := s.opts
		closed := s.closed
		s.mu.Unlock()
		if closed {
			flush()
			return nil
		}
		msg, err := wire.ReadMessage(s.conn, opts)
		if err != nil {
			flush()
			if s.isClosed() {
				return nil
			}
			// Only session-reset errors reach this point: the codec
			// absorbs treat-as-withdraw and attribute-discard into the
			// decoded Update (RFC 7606).
			var we *wire.Error
			if errors.As(err, &we) {
				s.cfg.Metrics.errorAction("session_reset")
			}
			s.sendNotifForErr(err)
			return fmt.Errorf("bgp: read: %w", err)
		}
		s.cfg.Metrics.msgIn(msg)
		switch m := msg.(type) {
		case *wire.Update:
			if m.Malformed != nil {
				s.cfg.Metrics.errorAction("treat_as_withdraw")
			}
			if len(m.Discarded) > 0 {
				s.cfg.Metrics.errorAction("attribute_discard")
			}
			if !batching {
				s.resetHold()
				s.handler.UpdateReceived(s, m)
				continue
			}
			batch = append(batch, m)
			if len(batch) < maxReadBatch && bc.Buffered() > 0 {
				continue // more already in flight: keep collecting
			}
			flush()
		case *wire.Keepalive:
			// Flush so a keepalive landing mid-collection never strands
			// the batch behind the next blocking read.
			s.resetHold()
			flush()
		case *wire.Notification:
			flush()
			return &PeerClosedError{Notif: m}
		case *wire.RouteRefresh:
			// Surfaced as a zero-route update so owners can re-export.
			// Refresh distinguishes this from an End-of-RIB marker, which
			// is also an empty UPDATE. Flushed behind any collected batch
			// to keep arrival order.
			s.resetHold()
			flush()
			if batching {
				bh.UpdateBatchReceived(s, []*wire.Update{{Refresh: true}})
			} else {
				s.handler.UpdateReceived(s, &wire.Update{Refresh: true})
			}
		case *wire.Open:
			flush()
			ne := wire.NotifError(wire.CodeFSMError, 0, nil)
			s.writeMsg(ne.Notification(), opts)
			return errors.New("bgp: OPEN received in Established")
		}
	}
}

// sendNotifForErr transmits the NOTIFICATION matching a codec error.
func (s *Session) sendNotifForErr(err error) {
	var ne *wire.Error
	if errors.As(err, &ne) {
		s.writeMsg(ne.Notification(), wire.DefaultOptions)
	}
}

// Close performs an administrative shutdown (Cease) and tears down.
func (s *Session) Close() error {
	return s.CloseCease(wire.SubAdminShutdown)
}

// CloseCease performs an administrative shutdown with a specific Cease
// subcode (RFC 4486) — e.g. max-prefixes-reached when tearing down a
// peer that breached its quota — and tears the session down cleanly.
func (s *Session) CloseCease(subcode uint8) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	est := s.state == StateEstablished
	s.mu.Unlock()
	if est {
		ne := wire.NotifError(wire.CodeCease, subcode, nil)
		s.writeMsg(ne.Notification(), wire.DefaultOptions)
	}
	s.shutdown(nil)
	return nil
}

func (s *Session) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// abort terminates with err from a helper goroutine.
func (s *Session) abort(err error) { s.shutdown(err) }

// shutdown closes the session exactly once.
func (s *Session) shutdown(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	last := s.state
	s.state = StateClosed
	s.closeErr = err
	if s.holdTimer != nil {
		s.holdTimer.Stop()
	}
	if s.kaTimer != nil {
		s.kaTimer.Stop()
	}
	close(s.done)
	s.mu.Unlock()
	s.cfg.Metrics.sessionClosed(last)
	s.conn.Close()
	s.handler.Closed(s, err)
}
