package internet

import (
	"container/heap"

	"peering/internal/policy"
)

// RouteClass orders routes by the economics of how they were learned:
// own < customer < peer < provider (an AS always prefers routes it is
// paid to carry).
type RouteClass uint8

// Route classes in preference order.
const (
	ClassOwn RouteClass = iota
	ClassCustomer
	ClassPeer
	ClassProvider
	ClassNone RouteClass = 255
)

func (c RouteClass) String() string {
	switch c {
	case ClassOwn:
		return "own"
	case ClassCustomer:
		return "customer"
	case ClassPeer:
		return "peer"
	case ClassProvider:
		return "provider"
	default:
		return "none"
	}
}

// PathInfo describes the best route an AS holds toward the origin of a
// propagation.
type PathInfo struct {
	Class RouteClass
	// Len is the AS-path length (origin = 0).
	Len int
	// Via is the neighbor the route was learned from (0 at the origin).
	Via uint32
}

// Propagation is the result of one Gao–Rexford computation: for every
// AS that learned the route, its best path info.
type Propagation struct {
	Origin uint32
	Info   map[uint32]PathInfo
}

// Reached reports whether asn learned the route.
func (p *Propagation) Reached(asn uint32) bool {
	_, ok := p.Info[asn]
	return ok
}

// Path reconstructs the AS path from asn back to the origin
// (inclusive), or nil if unreachable.
func (p *Propagation) Path(asn uint32) []uint32 {
	if !p.Reached(asn) {
		return nil
	}
	var path []uint32
	cur := asn
	for {
		path = append(path, cur)
		if cur == p.Origin {
			return path
		}
		info := p.Info[cur]
		cur = info.Via
		if len(path) > len(p.Info)+1 {
			return nil // cycle guard; must not happen
		}
	}
}

// better reports whether (ca,la,va) beats (cb,lb,vb) under Gao–Rexford
// preference: class, then length, then lowest via-ASN for determinism.
func better(ca RouteClass, la int, va uint32, cb RouteClass, lb int, vb uint32) bool {
	if ca != cb {
		return ca < cb
	}
	if la != lb {
		return la < lb
	}
	return va < vb
}

// pqItem is a priority-queue entry for the propagation.
type pqItem struct {
	asn   uint32
	class RouteClass
	len   int
	via   uint32
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	return better(q[i].class, q[i].len, q[i].via, q[j].class, q[j].len, q[j].via)
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Propagate computes how a route originated by origin spreads through
// the Internet under Gao–Rexford export rules and
// customer>peer>provider selection. It is a Dijkstra-like relaxation
// over (class, length): an AS's best route determines what it exports —
// customer routes go to everyone; peer/provider routes go only to
// customers.
func (g *Graph) Propagate(origin uint32) *Propagation {
	res := &Propagation{Origin: origin, Info: make(map[uint32]PathInfo, len(g.byASN))}
	if g.byASN[origin] == nil {
		return res
	}
	q := &pq{{asn: origin, class: ClassOwn, len: 0, via: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if cur, ok := res.Info[it.asn]; ok {
			// Already settled with a route at least as good.
			_ = cur
			continue
		}
		res.Info[it.asn] = PathInfo{Class: it.class, Len: it.len, Via: it.via}
		a := g.byASN[it.asn]
		// Export rules (receiver-side classes):
		//  - to providers: only own/customer routes; provider sees a
		//    customer route.
		//  - to peers: only own/customer routes; peer sees a peer route.
		//  - to customers: any route; customer sees a provider route.
		if it.class <= ClassCustomer {
			for _, prov := range a.Providers {
				if _, ok := res.Info[prov]; !ok {
					heap.Push(q, pqItem{asn: prov, class: ClassCustomer, len: it.len + 1, via: it.asn})
				}
			}
			for _, peer := range a.Peers {
				if _, ok := res.Info[peer]; !ok {
					heap.Push(q, pqItem{asn: peer, class: ClassPeer, len: it.len + 1, via: it.asn})
				}
			}
		}
		for _, cust := range a.Customers {
			if _, ok := res.Info[cust]; !ok {
				heap.Push(q, pqItem{asn: cust, class: ClassProvider, len: it.len + 1, via: it.asn})
			}
		}
	}
	return res
}

// RelationshipBetween returns how a sees b.
func (g *Graph) RelationshipBetween(a, b uint32) policy.Relationship {
	as := g.byASN[a]
	if as == nil {
		return policy.RelNone
	}
	for _, x := range as.Customers {
		if x == b {
			return policy.RelCustomer
		}
	}
	for _, x := range as.Peers {
		if x == b {
			return policy.RelPeer
		}
	}
	for _, x := range as.Providers {
		if x == b {
			return policy.RelProvider
		}
	}
	return policy.RelNone
}
