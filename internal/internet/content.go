package internet

import (
	"fmt"
	"math/rand"
	"net/netip"
)

// ContentSpec parameterizes the popular-content model (the Alexa
// Top-500 analog of §4.1). Default counts are the paper's exact
// workload: 500 sites whose pages referenced 49,776 resources from
// 4,182 distinct FQDNs resolving to 2,757 distinct IP addresses.
type ContentSpec struct {
	Seed      int64
	Sites     int
	Resources int
	FQDNs     int
	IPs       int
}

// DefaultContentSpec mirrors the paper's measured workload.
func DefaultContentSpec() ContentSpec {
	return ContentSpec{Seed: 500, Sites: 500, Resources: 49776, FQDNs: 4182, IPs: 2757}
}

// Site is one popular website.
type Site struct {
	Rank   int
	Domain string
	// Resources are the FQDNs referenced by the site's page.
	Resources []string
}

// Content is the generated web: sites, the FQDN→IP resolution map, and
// the IP→origin-AS assignment.
type Content struct {
	Sites []Site
	// DNS maps every FQDN to its resolved addresses.
	DNS map[string][]netip.Addr
	// OriginAS maps every content IP to the ASN originating its
	// covering prefix.
	OriginAS map[netip.Addr]uint32
}

// AllFQDNs returns the distinct FQDNs across all sites and resources.
func (c *Content) AllFQDNs() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(f string) {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for _, s := range c.Sites {
		add(s.Domain)
		for _, r := range s.Resources {
			add(r)
		}
	}
	return out
}

// AllIPs returns the distinct resolved addresses.
func (c *Content) AllIPs() []netip.Addr {
	seen := make(map[netip.Addr]bool)
	var out []netip.Addr
	for _, addrs := range c.DNS {
		for _, a := range addrs {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// TotalResourceRefs counts resource references across all sites
// (with multiplicity) — the paper's 49,776.
func (c *Content) TotalResourceRefs() int {
	n := 0
	for _, s := range c.Sites {
		n += len(s.Resources)
	}
	return n
}

// GenerateContent builds the content model over graph g. Hosting skews
// heavily toward CDN and content ASes — the flattening trend the paper
// leans on ("YouTube and Netflix alone account for 47% of North
// American traffic").
func GenerateContent(g *Graph, spec ContentSpec) *Content {
	if spec.Sites == 0 {
		spec = DefaultContentSpec()
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// Two hosting pools: page *resources* (trackers, CDN assets) skew
	// heavily toward CDNs; the sites' own apex domains are hosted all
	// over the world (a popular site in a non-peered region resolves
	// to its home AS) — which is why the paper finds peer routes to
	// only 157/500 sites but 38% of resource IPs.
	type hostAS struct {
		as *AS
		w  int
	}
	buildPool := func(weight func(Kind) int) (pool []hostAS, total int) {
		for _, asn := range g.ASNs() {
			a := g.AS(asn)
			if len(a.Prefixes) == 0 {
				continue
			}
			w := weight(a.Kind)
			pool = append(pool, hostAS{a, w})
			total += w
		}
		return pool, total
	}
	resourcePool, resourceW := buildPool(func(k Kind) int {
		switch k {
		case KindCDN:
			return 150
		case KindContent:
			return 40
		case KindTransit:
			return 4
		case KindEyeball:
			return 2
		default:
			return 3
		}
	})
	apexPool, apexW := buildPool(func(k Kind) int {
		switch k {
		case KindCDN:
			return 15
		case KindContent:
			return 25
		case KindTransit:
			return 4
		case KindEyeball:
			return 6
		default:
			return 8
		}
	})
	pick := func(pool []hostAS, total int) *AS {
		r := rng.Intn(total)
		for _, h := range pool {
			if r < h.w {
				return h.as
			}
			r -= h.w
		}
		return pool[len(pool)-1].as
	}

	// IP pools: ~one quarter for site apexes, the rest for resources.
	origin := make(map[netip.Addr]uint32, spec.IPs)
	draw := func(pool []hostAS, total, n int) []netip.Addr {
		out := make([]netip.Addr, 0, n)
		for len(out) < n {
			h := pick(pool, total)
			p := h.Prefixes[rng.Intn(len(h.Prefixes))]
			addr := randomAddrIn(p, rng)
			if _, dup := origin[addr]; dup {
				continue
			}
			origin[addr] = h.ASN
			out = append(out, addr)
		}
		return out
	}
	nApex := spec.IPs / 4
	apexIPs := draw(apexPool, apexW, nApex)
	resourceIPs := draw(resourcePool, resourceW, spec.IPs-nApex)
	ips := append(append([]netip.Addr{}, apexIPs...), resourceIPs...)

	// FQDN pool: spec.FQDNs names, each resolving to 1–3 pooled IPs
	// (shared IPs model CDN front ends serving many names). Site apex
	// domains resolve within the apex pool; resource FQDNs within the
	// resource pool.
	fqdns := make([]string, spec.FQDNs)
	dns := make(map[string][]netip.Addr, spec.FQDNs)
	for i := range fqdns {
		if i < spec.Sites {
			// A site's apex resolves to addresses of ONE origin AS
			// (its home network): start from a random apex IP and add
			// same-origin neighbors.
			name := fmt.Sprintf("www.site-%03d.com", i)
			fqdns[i] = name
			first := apexIPs[rng.Intn(len(apexIPs))]
			addrs := []netip.Addr{first}
			for j := 0; j < rng.Intn(2); j++ {
				cand := apexIPs[rng.Intn(len(apexIPs))]
				if origin[cand] == origin[first] {
					addrs = append(addrs, cand)
				}
			}
			dns[name] = addrs
			continue
		}
		name := fmt.Sprintf("cdn%d.example-%d.net", i%97, i)
		fqdns[i] = name
		n := 1 + rng.Intn(3)
		addrs := make([]netip.Addr, 0, n)
		for j := 0; j < n; j++ {
			addrs = append(addrs, resourceIPs[rng.Intn(len(resourceIPs))])
		}
		dns[name] = addrs
	}
	// Guarantee every pooled IP is referenced by some FQDN so the
	// distinct-IP count matches spec exactly (the paper reports 2,757
	// resolved addresses).
	used := make(map[netip.Addr]bool, len(ips))
	for _, addrs := range dns {
		for _, a := range addrs {
			used[a] = true
		}
	}
	for _, ip := range ips {
		if !used[ip] {
			name := fqdns[rng.Intn(len(fqdns))]
			dns[name] = append(dns[name], ip)
		}
	}

	// Sites: site i's domain is fqdns[i]; its page references
	// ~Resources/Sites resource FQDNs drawn Zipf-ishly from the pool
	// (popular resources recur across sites, like real trackers/CDNs).
	perSite := spec.Resources / spec.Sites
	sites := make([]Site, spec.Sites)
	for i := range sites {
		nRes := perSite + rng.Intn(perSite/2+1) - perSite/4
		res := make([]string, 0, nRes)
		for j := 0; j < nRes; j++ {
			// Zipf-like: favor low indexes.
			idx := int(float64(spec.FQDNs) * rng.Float64() * rng.Float64())
			if idx >= spec.FQDNs {
				idx = spec.FQDNs - 1
			}
			res = append(res, fqdns[idx])
		}
		sites[i] = Site{Rank: i + 1, Domain: fqdns[i], Resources: res}
	}

	return &Content{Sites: sites, DNS: dns, OriginAS: origin}
}

// randomAddrIn returns a uniformly random address inside p.
func randomAddrIn(p netip.Prefix, rng *rand.Rand) netip.Addr {
	base := p.Masked().Addr().As4()
	host := uint32(0)
	if bits := 32 - p.Bits(); bits > 0 {
		host = uint32(rng.Int63()) & ((1 << uint(bits)) - 1)
	}
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	v |= host
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}
