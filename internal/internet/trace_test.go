package internet

import (
	"bytes"
	"io"
	"testing"
	"time"

	"peering/internal/mrt"
)

// TestWriteTrace round-trips a small generated Internet through the
// trace writer and the MRT reader: every originated prefix appears
// exactly once, AS paths start at the announcing peer and end at the
// originating AS, and record timestamps are monotonic.
func TestWriteTrace(t *testing.T) {
	spec := Spec{Seed: 7, ASes: 300, Tier1s: 4, Transits: 30, CDNs: 4, Contents: 8, Prefixes: 4000}
	g := Generate(spec)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	st, err := WriteTrace(&buf, g, TraceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Routes != g.TotalPrefixes() {
		t.Fatalf("trace carries %d routes, graph originates %d", st.Routes, g.TotalPrefixes())
	}
	if st.Origins == 0 || st.Records == 0 || st.Bytes != uint64(buf.Len()) {
		t.Fatalf("implausible stats: %+v (buffer %d bytes)", st, buf.Len())
	}

	// The configured viewpoint defaulted to the first tier-1.
	var peerAS uint32
	for _, asn := range g.ASNs() {
		if g.AS(asn).Kind == KindTier1 {
			peerAS = asn
			break
		}
	}

	originOf := make(map[string]uint32) // prefix → expected origin ASN
	for _, asn := range g.ASNs() {
		for _, p := range g.AS(asn).Prefixes {
			originOf[p.String()] = asn
		}
	}

	r := mrt.NewReader(&buf)
	seen := make(map[string]bool)
	var last time.Time
	records := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if records > 0 && rec.Time.Before(last) {
			t.Fatalf("record %d timestamp %v precedes %v", records, rec.Time, last)
		}
		last = rec.Time
		records++
		m, err := mrt.ParseBGP4MP(rec)
		if err != nil {
			t.Fatal(err)
		}
		if m.PeerAS != peerAS {
			t.Fatalf("record from AS%d, want AS%d", m.PeerAS, peerAS)
		}
		upd, err := m.Update()
		if err != nil {
			t.Fatal(err)
		}
		path := upd.Attrs.ASList()
		if len(path) == 0 || path[0] != peerAS {
			t.Fatalf("path %v does not start at the announcing peer AS%d", path, peerAS)
		}
		origin := path[len(path)-1]
		for i := 1; i < len(path); i++ {
			if path[i] == path[i-1] {
				t.Fatalf("path %v repeats AS%d", path, path[i])
			}
		}
		for _, n := range upd.Reach {
			key := n.Prefix.String()
			if seen[key] {
				t.Fatalf("prefix %s announced twice", key)
			}
			seen[key] = true
			if want, ok := originOf[key]; !ok || want != origin {
				t.Fatalf("prefix %s announced with origin AS%d, originated by AS%d", key, origin, want)
			}
		}
	}
	if records != st.Records || len(seen) != st.Routes {
		t.Fatalf("read back %d records / %d prefixes, stats said %d / %d",
			records, len(seen), st.Records, st.Routes)
	}
}

// TestFullTableSpecShape pins the Internet-scale spec's contract — ≥1M
// prefixes from tens of thousands of ASes — without generating it
// (that costs seconds and is the benchmark's job).
func TestFullTableSpecShape(t *testing.T) {
	spec := FullTableSpec()
	if spec.Prefixes < 1000000 {
		t.Fatalf("FullTableSpec originates %d prefixes, want ≥1M", spec.Prefixes)
	}
	if spec.ASes < 10000 {
		t.Fatalf("FullTableSpec has %d ASes, want tens of thousands", spec.ASes)
	}
	if spec.Tier1s+spec.Transits+spec.CDNs+spec.Contents >= spec.ASes {
		t.Fatalf("spec leaves no room for stub networks: %+v", spec)
	}
}

// TestPathFrom checks the provider-chain path construction directly: a
// stub's prefixes are heard with a path that climbs its first provider
// chain and never repeats an AS.
func TestPathFrom(t *testing.T) {
	g := NewGraph()
	g.AddAS(&AS{ASN: 1, Kind: KindTier1})
	g.AddAS(&AS{ASN: 10, Kind: KindTransit})
	g.AddAS(&AS{ASN: 100, Kind: KindStub})
	g.AddProviderCustomer(1, 10)
	g.AddProviderCustomer(10, 100)

	got := g.pathFrom(1, g.AS(100))
	want := []uint32{1, 10, 100}
	if len(got) != len(want) {
		t.Fatalf("pathFrom = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pathFrom = %v, want %v", got, want)
		}
	}
	// Origin == viewpoint collapses to a single hop, not [1, 1].
	if p := g.pathFrom(1, g.AS(1)); len(p) != 1 || p[0] != 1 {
		t.Fatalf("pathFrom(self) = %v, want [1]", p)
	}
}
