package internet

// Full-table trace synthesis: serializing a generated Internet as the
// MRT update stream a transit provider would announce on session
// establishment. The output is a BGP4MP_ET trace the mrt replay engine
// can feed into a live server session (server.ReplayUpstream), which
// makes "ingest the 2014 global table" a reproducible benchmark input
// instead of a 25 MB binary fixture.

import (
	"fmt"
	"io"
	"net/netip"
	"time"

	"peering/internal/mrt"
	"peering/internal/wire"
)

// TraceConfig shapes WriteTrace. The zero value announces from the
// graph's first tier-1 toward the PEERING mux ASN.
type TraceConfig struct {
	// PeerAS is the upstream whose view the trace captures: every AS
	// path starts at it. Zero picks the graph's first tier-1, whose
	// Gao–Rexford view spans the whole table.
	PeerAS uint32
	// LocalAS is the collector/receiver AS stamped on records (zero =
	// 47065, the PEERING testbed ASN).
	LocalAS uint32
	// PeerIP and LocalIP are the session endpoints stamped on records
	// and used as NEXT_HOP. Both must be the same address family;
	// invalid values default to 10.0.0.1 / 10.0.0.2.
	PeerIP  netip.Addr
	LocalIP netip.Addr
	// Start stamps the first record (zero = 2014-10-27T00:00:00Z, the
	// paper's era); Gap spaces successive records so timed replay has a
	// schedule to pace against (zero = 1ms).
	Start time.Time
	Gap   time.Duration
}

// TraceStats summarizes one written trace.
type TraceStats struct {
	// Records is the number of MRT records (= UPDATE messages) written;
	// Routes the NLRIs inside them; Origins the distinct originating
	// ASes (= distinct attribute sets).
	Records int
	Routes  int
	Origins int
	// Bytes is the encoded trace size.
	Bytes uint64
}

// WriteTrace serializes every prefix originated anywhere in g as one
// continuous announcement stream heard from cfg.PeerAS, packing
// same-origin prefixes into as few UPDATEs as MaxMsgLen allows. AS
// paths follow each origin's first-provider chain up to the transit-
// free core and over to the announcing peer — the structural shape of
// a real full-table dump (path length distributed by topology depth,
// one attribute set per origin) without running full route propagation
// over a 76K-AS graph.
func WriteTrace(w io.Writer, g *Graph, cfg TraceConfig) (TraceStats, error) {
	if cfg.PeerAS == 0 {
		for _, asn := range g.order {
			if g.byASN[asn].Kind == KindTier1 {
				cfg.PeerAS = asn
				break
			}
		}
		if cfg.PeerAS == 0 {
			return TraceStats{}, fmt.Errorf("internet: no tier-1 in graph and no PeerAS configured")
		}
	}
	if cfg.LocalAS == 0 {
		cfg.LocalAS = 47065
	}
	if !cfg.PeerIP.IsValid() || !cfg.LocalIP.IsValid() || cfg.PeerIP.Is4() != cfg.LocalIP.Is4() {
		cfg.PeerIP = netip.AddrFrom4([4]byte{10, 0, 0, 1})
		cfg.LocalIP = netip.AddrFrom4([4]byte{10, 0, 0, 2})
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2014, 10, 27, 0, 0, 0, 0, time.UTC)
	}
	if cfg.Gap <= 0 {
		cfg.Gap = time.Millisecond
	}

	opts := wire.Options{AS4: true}
	mw := mrt.NewWriter(w, nil)
	var st TraceStats
	ts := cfg.Start
	for _, asn := range g.order {
		a := g.byASN[asn]
		if len(a.Prefixes) == 0 {
			continue
		}
		attrs := &wire.Attrs{
			Origin:  wire.OriginIGP,
			ASPath:  []wire.Segment{{Type: wire.SegSequence, ASNs: g.pathFrom(cfg.PeerAS, a)}},
			NextHop: cfg.PeerIP,
		}
		nlris := make([]wire.NLRI, len(a.Prefixes))
		for i, p := range a.Prefixes {
			nlris[i] = wire.NLRI{Prefix: p}
		}
		st.Origins++
		for _, upd := range wire.PackGrouped(nil, []wire.AttrGroup{{Attrs: attrs, NLRIs: nlris}}, opts) {
			msg, err := wire.Marshal(upd, opts)
			if err != nil {
				return st, fmt.Errorf("internet: trace update for AS%d: %w", asn, err)
			}
			rec, err := (&mrt.BGP4MP{
				PeerAS:  cfg.PeerAS,
				LocalAS: cfg.LocalAS,
				PeerIP:  cfg.PeerIP,
				LocalIP: cfg.LocalIP,
				Message: msg,
				AS4:     true,
			}).Record(ts, true)
			if err != nil {
				return st, err
			}
			if _, err := mw.WriteRecord(rec); err != nil {
				return st, err
			}
			ts = ts.Add(cfg.Gap)
			st.Records++
			st.Routes += len(upd.Reach)
		}
	}
	st.Bytes = mw.Bytes()
	return st, nil
}

// pathFrom builds the AS path for origin's prefixes as heard at peer:
// peer first, then the origin's first-provider chain from the core
// downward, ending at the origin. Provider edges always point at an
// earlier-generated AS, so the climb terminates; the depth guard caps
// pathological graphs rather than looping.
func (g *Graph) pathFrom(peer uint32, origin *AS) []uint32 {
	chain := []uint32{origin.ASN}
	for cur := origin; len(cur.Providers) > 0 && len(chain) < 32; {
		next := g.byASN[cur.Providers[0]]
		if next == nil {
			break
		}
		chain = append(chain, next.ASN)
		cur = next
	}
	path := make([]uint32, 0, len(chain)+1)
	path = append(path, peer)
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i] != path[len(path)-1] {
			path = append(path, chain[i])
		}
	}
	return path
}
