// Package internet models a synthetic AS-level Internet: a tiered
// topology with customer/provider/peer relationships, per-AS prefix
// origination, CAIDA-style customer-cone ranking, Gao–Rexford route
// propagation, and a popular-content (Alexa-analog) hosting model.
//
// This is the substitute for the live Internet that the real PEERING
// testbed peers with (repro constraint: the paper's evaluation needs
// AMS-IX's 669 members and the global routing system; we generate an
// Internet whose structural distributions are calibrated to the
// figures the paper reports and run the same experiments against it).
package internet

import (
	"fmt"
	"net/netip"
	"sort"

	"peering/internal/policy"
)

// Kind classifies an AS's role in the topology.
type Kind int

// AS kinds.
const (
	KindStub Kind = iota
	KindTransit
	KindTier1
	KindCDN
	KindContent
	KindEyeball
	KindIXPRouteServer
)

func (k Kind) String() string {
	switch k {
	case KindStub:
		return "stub"
	case KindTransit:
		return "transit"
	case KindTier1:
		return "tier1"
	case KindCDN:
		return "cdn"
	case KindContent:
		return "content"
	case KindEyeball:
		return "eyeball"
	case KindIXPRouteServer:
		return "route-server"
	default:
		return "unknown"
	}
}

// AS is one autonomous system in the synthetic Internet.
type AS struct {
	ASN     uint32
	Name    string
	Country string
	Kind    Kind
	// Providers, Customers, Peers hold neighbor ASNs.
	Providers []uint32
	Customers []uint32
	Peers     []uint32
	// Prefixes originated by this AS.
	Prefixes []netip.Prefix
	// PeeringPolicy is the AS's published willingness to peer
	// bilaterally (§4.1).
	PeeringPolicy policy.PeeringKind
}

// Degree returns the total number of neighbors.
func (a *AS) Degree() int {
	return len(a.Providers) + len(a.Customers) + len(a.Peers)
}

// Graph is the synthetic Internet.
type Graph struct {
	byASN map[uint32]*AS
	order []uint32 // insertion order for deterministic iteration
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{byASN: make(map[uint32]*AS)}
}

// AddAS inserts a new AS; it panics on duplicate ASNs (generator bug).
func (g *Graph) AddAS(a *AS) *AS {
	if _, dup := g.byASN[a.ASN]; dup {
		panic(fmt.Sprintf("internet: duplicate ASN %d", a.ASN))
	}
	g.byASN[a.ASN] = a
	g.order = append(g.order, a.ASN)
	return a
}

// AS returns the AS with the given number (nil if absent).
func (g *Graph) AS(asn uint32) *AS { return g.byASN[asn] }

// Len returns the number of ASes.
func (g *Graph) Len() int { return len(g.order) }

// ASNs returns all AS numbers in insertion order.
func (g *Graph) ASNs() []uint32 {
	out := make([]uint32, len(g.order))
	copy(out, g.order)
	return out
}

// AddProviderCustomer records a provider→customer relationship.
func (g *Graph) AddProviderCustomer(provider, customer uint32) {
	p, c := g.byASN[provider], g.byASN[customer]
	if p == nil || c == nil {
		panic(fmt.Sprintf("internet: edge %d→%d references unknown AS", provider, customer))
	}
	p.Customers = append(p.Customers, customer)
	c.Providers = append(c.Providers, provider)
}

// AddPeering records a settlement-free peering between a and b.
func (g *Graph) AddPeering(a, b uint32) {
	pa, pb := g.byASN[a], g.byASN[b]
	if pa == nil || pb == nil {
		panic(fmt.Sprintf("internet: peering %d—%d references unknown AS", a, b))
	}
	// Idempotent: skip if already peers.
	for _, x := range pa.Peers {
		if x == b {
			return
		}
	}
	pa.Peers = append(pa.Peers, b)
	pb.Peers = append(pb.Peers, a)
}

// TotalPrefixes counts all originated prefixes.
func (g *Graph) TotalPrefixes() int {
	n := 0
	for _, asn := range g.order {
		n += len(g.byASN[asn].Prefixes)
	}
	return n
}

// CustomerCone returns the set of ASNs in asn's customer cone: the AS
// itself plus everything reachable by repeatedly following customer
// edges (CAIDA's AS-rank metric).
func (g *Graph) CustomerCone(asn uint32) map[uint32]bool {
	cone := make(map[uint32]bool)
	var dfs func(uint32)
	dfs = func(n uint32) {
		if cone[n] {
			return
		}
		cone[n] = true
		a := g.byASN[n]
		if a == nil {
			return
		}
		for _, c := range a.Customers {
			dfs(c)
		}
	}
	dfs(asn)
	return cone
}

// ConeSize returns |CustomerCone(asn)|.
func (g *Graph) ConeSize(asn uint32) int { return len(g.CustomerCone(asn)) }

// ConePrefixes returns every prefix originated inside asn's customer
// cone — exactly the routes asn exports to its peers and providers
// under Gao–Rexford.
func (g *Graph) ConePrefixes(asn uint32) []netip.Prefix {
	var out []netip.Prefix
	for member := range g.CustomerCone(asn) {
		out = append(out, g.byASN[member].Prefixes...)
	}
	return out
}

// RankByCone returns all ASes sorted by descending customer-cone size
// (ties by ascending ASN) — the CAIDA AS-rank analog used for the
// "13 of the top 50, 27 of the top 100" evaluation.
func (g *Graph) RankByCone() []*AS {
	type ranked struct {
		as   *AS
		cone int
	}
	rs := make([]ranked, 0, len(g.order))
	for _, asn := range g.order {
		rs = append(rs, ranked{g.byASN[asn], g.ConeSize(asn)})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].cone != rs[j].cone {
			return rs[i].cone > rs[j].cone
		}
		return rs[i].as.ASN < rs[j].as.ASN
	})
	out := make([]*AS, len(rs))
	for i, r := range rs {
		out[i] = r.as
	}
	return out
}

// Validate checks structural invariants: symmetric relationships, no
// self-loops, and no AS that is both customer and peer of the same
// neighbor. Returns the first violation found.
func (g *Graph) Validate() error {
	for _, asn := range g.order {
		a := g.byASN[asn]
		seen := map[uint32]string{}
		check := func(list []uint32, rel string, reverse func(*AS) []uint32) error {
			for _, n := range list {
				if n == asn {
					return fmt.Errorf("AS%d: self-%s", asn, rel)
				}
				if prev, dup := seen[n]; dup {
					return fmt.Errorf("AS%d: neighbor %d is both %s and %s", asn, n, prev, rel)
				}
				seen[n] = rel
				b := g.byASN[n]
				if b == nil {
					return fmt.Errorf("AS%d: %s %d does not exist", asn, rel, n)
				}
				found := false
				for _, x := range reverse(b) {
					if x == asn {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("AS%d: %s %d lacks reverse edge", asn, rel, n)
				}
			}
			return nil
		}
		if err := check(a.Providers, "provider", func(b *AS) []uint32 { return b.Customers }); err != nil {
			return err
		}
		if err := check(a.Customers, "customer", func(b *AS) []uint32 { return b.Providers }); err != nil {
			return err
		}
		if err := check(a.Peers, "peer", func(b *AS) []uint32 { return b.Peers }); err != nil {
			return err
		}
	}
	return nil
}
