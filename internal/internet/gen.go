package internet

import (
	"fmt"
	"math/rand"
	"net/netip"

	"peering/internal/policy"
)

// Spec parameterizes the synthetic Internet generator. The zero value
// is upgraded to DefaultSpec.
type Spec struct {
	// Seed makes generation deterministic.
	Seed int64
	// ASes is the total number of autonomous systems.
	ASes int
	// Tier1s is the number of transit-free backbone networks (full
	// mesh peering among themselves).
	Tier1s int
	// Transits is the number of mid-tier transit providers.
	Transits int
	// CDNs and Contents are large content-serving networks with open
	// peering (the ASes the paper highlights: Akamai, Google, Netflix,
	// Microsoft, …).
	CDNs     int
	Contents int
	// Prefixes is the total number of originated prefixes across the
	// Internet (the paper's full table is ~525K; scale down for fast
	// tests).
	Prefixes int
}

// DefaultSpec mirrors a small-but-structured Internet: enough ASes for
// the AMS-IX membership experiment at full scale.
func DefaultSpec() Spec {
	return Spec{
		Seed:     2014,
		ASes:     3000,
		Tier1s:   12,
		Transits: 220,
		CDNs:     16,
		Contents: 40,
		Prefixes: 525000,
	}
}

// FullTableSpec scales the same structural distributions to the size of
// the 2014 global routing system: roughly a million prefixes originated
// by tens of thousands of ASes (the ~525K IPv4 table the paper cites,
// doubled to leave the generated table a comfortable margin past 1M so
// load tests exercise Internet-scale state, not a toy). Generation and
// propagation at this size are meant for benchmarks, not unit tests —
// use DefaultSpec there.
func FullTableSpec() Spec {
	return Spec{
		Seed:     2014,
		ASes:     76000,
		Tier1s:   15,
		Transits: 2500,
		CDNs:     50,
		Contents: 400,
		Prefixes: 1050000,
	}
}

// Countries is the country pool: the Netherlands and its neighbors
// first (AMS-IX members cluster there, §4.1), then the rest of a
// 70-country list so that the peer set spans ≥59 countries.
var Countries = []string{
	"NL", "DE", "BE", "GB", "FR", "LU", "DK", "SE", "NO", "FI",
	"PL", "CZ", "AT", "CH", "IT", "ES", "PT", "IE", "IS", "EE",
	"LV", "LT", "UA", "RO", "BG", "GR", "HU", "SK", "SI", "HR",
	"RS", "TR", "RU", "US", "CA", "MX", "BR", "AR", "CL", "CO",
	"ZA", "EG", "NG", "KE", "MA", "IL", "SA", "AE", "IN", "PK",
	"BD", "LK", "SG", "MY", "TH", "VN", "ID", "PH", "HK", "TW",
	"JP", "KR", "CN", "AU", "NZ", "FJ", "QA", "KW", "JO", "GE",
}

// cdnNames are the content networks the paper names as PEERING peers.
var cdnNames = []string{
	"Akamai", "Google", "Netflix", "Microsoft", "Hurricane Electric",
	"GoDaddy", "Airtel", "Pacnet", "RETN", "Terremark", "TransTeleCom",
	"CloudCo", "StreamCo", "EdgeCo", "CacheCo", "VideoCo",
}

// prefixAllocator hands out non-overlapping IPv4 blocks.
type prefixAllocator struct{ next uint32 }

// alloc returns the next /bits block, aligned to its own size. Without
// the alignment a shorter prefix allocated after longer ones starts
// mid-block: the stored prefix has host bits set, and once it crosses
// the wire (which masks them) it collapses onto — and overlaps — an
// earlier allocation.
func (p *prefixAllocator) alloc(bits int) netip.Prefix {
	size := uint32(1) << (32 - bits)
	base := (p.next + size - 1) &^ (size - 1)
	p.next = base + size
	b := [4]byte{byte(base >> 24), byte(base >> 16), byte(base >> 8), byte(base)}
	return netip.PrefixFrom(netip.AddrFrom4(b), bits)
}

// Generate builds a synthetic Internet from spec.
func Generate(spec Spec) *Graph {
	if spec.ASes == 0 {
		spec = DefaultSpec()
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	g := NewGraph()
	alloc := &prefixAllocator{next: 0x0B000000} // start at 11.0.0.0

	nextASN := uint32(1)
	newAS := func(kind Kind, name string) *AS {
		a := &AS{
			ASN:     nextASN,
			Name:    name,
			Kind:    kind,
			Country: Countries[rng.Intn(len(Countries))],
		}
		nextASN++
		g.AddAS(a)
		return a
	}

	// Tier-1 backbone: full mesh peering, US/EU heavy.
	tier1s := make([]*AS, spec.Tier1s)
	for i := range tier1s {
		tier1s[i] = newAS(KindTier1, fmt.Sprintf("Tier1-%d", i+1))
		tier1s[i].PeeringPolicy = policy.PeeringSelective
	}
	for i := range tier1s {
		for j := i + 1; j < len(tier1s); j++ {
			g.AddPeering(tier1s[i].ASN, tier1s[j].ASN)
		}
	}

	// Transit providers: customers of 1–3 tier-1s (or of earlier,
	// larger transits), peering with a few same-tier transits.
	transits := make([]*AS, spec.Transits)
	for i := range transits {
		t := newAS(KindTransit, fmt.Sprintf("Transit-%d", i+1))
		// Open policies dominate among mid-size networks at IXPs.
		t.PeeringPolicy = pickPolicy(rng)
		transits[i] = t
		nProv := 1 + rng.Intn(3)
		for k := 0; k < nProv; k++ {
			var prov *AS
			if i > 10 && rng.Intn(3) == 0 {
				prov = transits[rng.Intn(i)]
			} else {
				prov = tier1s[rng.Intn(len(tier1s))]
			}
			if prov.ASN != t.ASN && g.RelationshipBetween(t.ASN, prov.ASN) == policy.RelNone {
				g.AddProviderCustomer(prov.ASN, t.ASN)
			}
		}
		for k := 0; k < rng.Intn(4) && i > 0; k++ {
			other := transits[rng.Intn(i)]
			if g.RelationshipBetween(t.ASN, other.ASN) == policy.RelNone {
				g.AddPeering(t.ASN, other.ASN)
			}
		}
	}

	// CDNs: multihomed to several transits/tier-1s, open peering, and
	// peer directly with many transits (flattened Internet).
	cdns := make([]*AS, spec.CDNs)
	for i := range cdns {
		name := fmt.Sprintf("CDN-%d", i+1)
		if i < len(cdnNames) {
			name = cdnNames[i]
		}
		c := newAS(KindCDN, name)
		c.PeeringPolicy = policy.PeeringOpen
		cdns[i] = c
		for k := 0; k < 2+rng.Intn(3); k++ {
			prov := tier1s[rng.Intn(len(tier1s))]
			if g.RelationshipBetween(c.ASN, prov.ASN) == policy.RelNone {
				g.AddProviderCustomer(prov.ASN, c.ASN)
			}
		}
		for k := 0; k < 8+rng.Intn(12); k++ {
			other := transits[rng.Intn(len(transits))]
			if g.RelationshipBetween(c.ASN, other.ASN) == policy.RelNone {
				g.AddPeering(c.ASN, other.ASN)
			}
		}
	}

	// Content providers: like CDNs but smaller.
	contents := make([]*AS, spec.Contents)
	for i := range contents {
		c := newAS(KindContent, fmt.Sprintf("Content-%d", i+1))
		c.PeeringPolicy = policy.PeeringOpen
		contents[i] = c
		for k := 0; k < 1+rng.Intn(2); k++ {
			prov := transits[rng.Intn(len(transits))]
			if g.RelationshipBetween(c.ASN, prov.ASN) == policy.RelNone {
				g.AddProviderCustomer(prov.ASN, c.ASN)
			}
		}
	}

	// Stubs and eyeballs fill out the population: customers of 1–3
	// transit providers, preferring providers in their own country —
	// the geographic locality that keeps most of the world's edge
	// networks out of any single IXP's reach.
	byCountry := map[string][]*AS{}
	for _, t := range transits {
		byCountry[t.Country] = append(byCountry[t.Country], t)
	}
	nStubs := spec.ASes - spec.Tier1s - spec.Transits - spec.CDNs - spec.Contents
	for i := 0; i < nStubs; i++ {
		kind := KindStub
		if rng.Intn(4) == 0 {
			kind = KindEyeball
		}
		s := newAS(kind, fmt.Sprintf("Stub-%d", i+1))
		// Edge-network population skews away from Europe (most of the
		// world's ASes are in the Americas and Asia), matching why a
		// single European IXP reaches only a quarter of the Internet.
		if rng.Intn(2) == 0 {
			s.Country = Countries[30+rng.Intn(len(Countries)-30)]
		}
		s.PeeringPolicy = pickPolicy(rng)
		local := byCountry[s.Country]
		for k := 0; k < 1+rng.Intn(3); k++ {
			var prov *AS
			if len(local) > 0 && rng.Intn(5) != 0 {
				prov = local[rng.Intn(len(local))]
			} else {
				prov = transits[rng.Intn(len(transits))]
			}
			if prov.ASN != s.ASN && g.RelationshipBetween(s.ASN, prov.ASN) == policy.RelNone {
				g.AddProviderCustomer(prov.ASN, s.ASN)
			}
		}
	}

	distributePrefixes(g, spec, rng, alloc)
	return g
}

// pickPolicy draws a bilateral peering policy with the §4.1 AMS-IX
// shares: of the 115 non-route-server members, 48 open / 12 closed /
// 40 case-by-case / 15 unlisted.
func pickPolicy(rng *rand.Rand) policy.PeeringKind {
	r := rng.Intn(115)
	switch {
	case r < 48:
		return policy.PeeringOpen
	case r < 60:
		return policy.PeeringClosed
	case r < 100:
		return policy.PeeringCaseByCase
	default:
		return policy.PeeringUnlisted
	}
}

// distributePrefixes assigns originated prefixes so that the table
// shape matches the Internet's: a heavy tail of small originators and a
// few very large ones.
func distributePrefixes(g *Graph, spec Spec, rng *rand.Rand, alloc *prefixAllocator) {
	weights := make([]int, 0, g.Len())
	asns := g.ASNs()
	total := 0
	for _, asn := range asns {
		a := g.AS(asn)
		// Origination mass sits at the edge: most prefixes are
		// originated by stub/eyeball/content networks, not by the
		// transit core (which mostly carries other ASes' prefixes).
		var w int
		switch a.Kind {
		case KindTier1:
			w = 30 + rng.Intn(40)
		case KindTransit:
			w = 10 + rng.Intn(30)
		case KindCDN:
			w = 60 + rng.Intn(120)
		case KindContent:
			w = 20 + rng.Intn(40)
		case KindEyeball:
			w = 10 + rng.Intn(50)
		default:
			w = 2 + rng.Intn(10)
		}
		weights = append(weights, w)
		total += w
	}
	if spec.Prefixes == 0 || total == 0 {
		return
	}
	// Cumulative rounding: per-AS truncation (Prefixes*w/total each)
	// loses a prefix per AS on average — ~5% of the table at 76K ASes —
	// so round against the running weight sum instead, which pins the
	// grand total to spec.Prefixes.
	assigned, weightSum := 0, 0
	for i, asn := range asns {
		a := g.AS(asn)
		weightSum += weights[i]
		// Every AS originates at least one prefix; the floor can push
		// `assigned` past the cumulative target on tiny tables, so clamp
		// rather than letting n go negative.
		n := spec.Prefixes*weightSum/total - assigned
		if n < 1 {
			n = 1
		}
		assigned += n
		a.Prefixes = make([]netip.Prefix, 0, n)
		for j := 0; j < n; j++ {
			bits := 24
			if rng.Intn(8) == 0 {
				bits = 20 + rng.Intn(4)
			}
			a.Prefixes = append(a.Prefixes, alloc.alloc(bits))
		}
	}
}
