package internet

import (
	"testing"
	"testing/quick"

	"peering/internal/policy"
)

// smallSpec keeps unit tests fast.
func smallSpec() Spec {
	return Spec{Seed: 7, ASes: 400, Tier1s: 8, Transits: 60, CDNs: 6, Contents: 10, Prefixes: 5000}
}

func TestGenerateStructure(t *testing.T) {
	g := Generate(smallSpec())
	if g.Len() != 400 {
		t.Fatalf("ASes = %d", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
	kinds := map[Kind]int{}
	for _, asn := range g.ASNs() {
		kinds[g.AS(asn).Kind]++
	}
	if kinds[KindTier1] != 8 || kinds[KindTransit] != 60 || kinds[KindCDN] != 6 || kinds[KindContent] != 10 {
		t.Fatalf("kind distribution = %v", kinds)
	}
	// Tier-1s are transit-free (no providers) and fully meshed.
	for _, asn := range g.ASNs() {
		a := g.AS(asn)
		if a.Kind == KindTier1 {
			if len(a.Providers) != 0 {
				t.Fatalf("tier1 AS%d has providers", asn)
			}
			if len(a.Peers) < 7 {
				t.Fatalf("tier1 AS%d peers = %d, want full mesh", asn, len(a.Peers))
			}
		} else if len(a.Providers) == 0 {
			t.Fatalf("non-tier1 AS%d (%v) has no providers — disconnected", asn, a.Kind)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, g2 := Generate(smallSpec()), Generate(smallSpec())
	if g1.Len() != g2.Len() || g1.TotalPrefixes() != g2.TotalPrefixes() {
		t.Fatal("same seed produced different graphs")
	}
	for _, asn := range g1.ASNs() {
		a, b := g1.AS(asn), g2.AS(asn)
		if a.Name != b.Name || a.Country != b.Country || len(a.Peers) != len(b.Peers) {
			t.Fatalf("AS%d differs between runs", asn)
		}
	}
}

func TestPrefixTotalsAndDisjoint(t *testing.T) {
	g := Generate(smallSpec())
	total := g.TotalPrefixes()
	if total < 4500 || total > 6000 {
		t.Fatalf("total prefixes = %d, want ≈5000", total)
	}
	seen := map[string]bool{}
	for _, asn := range g.ASNs() {
		for _, p := range g.AS(asn).Prefixes {
			if seen[p.String()] {
				t.Fatalf("prefix %s originated twice", p)
			}
			seen[p.String()] = true
		}
	}
}

func TestCustomerCone(t *testing.T) {
	g := NewGraph()
	for asn := uint32(1); asn <= 5; asn++ {
		g.AddAS(&AS{ASN: asn})
	}
	// 1 ← 2 ← 3 (provider chain), 2 ← 4, 5 isolated-ish.
	g.AddProviderCustomer(1, 2)
	g.AddProviderCustomer(2, 3)
	g.AddProviderCustomer(2, 4)
	cone := g.CustomerCone(1)
	if len(cone) != 4 || !cone[1] || !cone[2] || !cone[3] || !cone[4] {
		t.Fatalf("cone(1) = %v", cone)
	}
	if g.ConeSize(5) != 1 {
		t.Fatalf("cone(5) = %d", g.ConeSize(5))
	}
	if g.ConeSize(3) != 1 {
		t.Fatalf("cone(3) = %d, leaf must be self-only", g.ConeSize(3))
	}
}

func TestRankByConeOrdersTier1sFirst(t *testing.T) {
	g := Generate(smallSpec())
	ranked := g.RankByCone()
	// Every tier-1 should rank above every stub.
	lastTier1, firstStub := -1, -1
	for i, a := range ranked {
		if a.Kind == KindTier1 && i > lastTier1 {
			lastTier1 = i
		}
		if a.Kind == KindStub && firstStub == -1 {
			firstStub = i
		}
	}
	if firstStub != -1 && lastTier1 > 0 && firstStub < 8-1 {
		t.Fatalf("a stub ranked %d, above some tier1 (last at %d)", firstStub, lastTier1)
	}
	// Rank order is by non-increasing cone size.
	for i := 1; i < len(ranked); i++ {
		if g.ConeSize(ranked[i].ASN) > g.ConeSize(ranked[i-1].ASN) {
			t.Fatal("rank not sorted by cone size")
		}
	}
}

func TestPropagateReachesEveryoneFromStub(t *testing.T) {
	g := Generate(smallSpec())
	// Pick a stub.
	var stub uint32
	for _, asn := range g.ASNs() {
		if g.AS(asn).Kind == KindStub {
			stub = asn
			break
		}
	}
	prop := g.Propagate(stub)
	// Everyone should learn the route (providers give transit).
	if len(prop.Info) != g.Len() {
		t.Fatalf("route reached %d of %d ASes", len(prop.Info), g.Len())
	}
	if prop.Info[stub].Class != ClassOwn || prop.Info[stub].Len != 0 {
		t.Fatalf("origin info = %+v", prop.Info[stub])
	}
}

func TestPropagatePathsAreValleyFree(t *testing.T) {
	g := Generate(smallSpec())
	origin := g.ASNs()[g.Len()-1] // a stub
	prop := g.Propagate(origin)
	for _, asn := range g.ASNs() {
		path := prop.Path(asn)
		if path == nil {
			continue
		}
		if path[len(path)-1] != origin {
			t.Fatalf("path for %d does not end at origin: %v", asn, path)
		}
		// Classify each hop walking from origin outward: once the route
		// crosses a peer or provider→customer edge, it may only
		// continue toward customers (downhill).
		descending := false
		for i := len(path) - 1; i > 0; i-- {
			from, to := path[i], path[i-1]         // route flows from→to
			rel := g.RelationshipBetween(to, from) // how receiver sees sender
			switch rel {
			case policy.RelCustomer:
				// receiver is provider of sender: uphill
				if descending {
					t.Fatalf("valley in path %v at %d→%d", path, from, to)
				}
			case policy.RelPeer, policy.RelProvider:
				descending = true
			default:
				t.Fatalf("path %v uses nonexistent edge %d→%d", path, from, to)
			}
		}
	}
}

func TestPropagateClassPreference(t *testing.T) {
	// Diamond: 1 is customer of both 2 and 3; 4 is provider of 3 and
	// peer of 2. AS4 hears 1's route via 2 (peer route, len 2) and via
	// 3 (customer route, len 2). The customer route must win even at
	// equal length.
	g := NewGraph()
	for asn := uint32(1); asn <= 4; asn++ {
		g.AddAS(&AS{ASN: asn})
	}
	g.AddProviderCustomer(2, 1)
	g.AddProviderCustomer(3, 1)
	g.AddProviderCustomer(4, 3)
	g.AddPeering(2, 4)
	prop := g.Propagate(1)
	info, ok := prop.Info[4]
	if !ok {
		t.Fatal("AS4 did not learn the route")
	}
	if info.Class != ClassCustomer || info.Via != 3 {
		t.Fatalf("AS4 info = %+v, want customer route via 3", info)
	}
}

func TestPropagatePeerRouteNotExportedToProvider(t *testing.T) {
	// 1 peers 3; 3 is customer of 4. 3's peer route must not reach its
	// provider 4 (that would be free transit).
	g := NewGraph()
	for asn := uint32(1); asn <= 4; asn++ {
		g.AddAS(&AS{ASN: asn})
	}
	g.AddPeering(1, 3)
	g.AddProviderCustomer(4, 3)
	prop := g.Propagate(1)
	if prop.Reached(4) {
		t.Fatal("peer route exported to provider")
	}
}

func TestPropagatePeerRouteStopsAtPeer(t *testing.T) {
	// 1 peers 2; 2 peers 3. Peer routes do not transit: 3 must NOT
	// learn 1's route.
	g := NewGraph()
	for asn := uint32(1); asn <= 3; asn++ {
		g.AddAS(&AS{ASN: asn})
	}
	g.AddPeering(1, 2)
	g.AddPeering(2, 3)
	prop := g.Propagate(1)
	if prop.Reached(3) {
		t.Fatal("peer route leaked across second peering — not valley-free")
	}
	if !prop.Reached(2) || prop.Info[2].Class != ClassPeer {
		t.Fatalf("AS2 info = %+v", prop.Info[2])
	}
}

func TestPropagatePeerRouteExportsToCustomers(t *testing.T) {
	// 1 peers 2; 3 is customer of 2. 3 must learn the route (provider
	// route via 2).
	g := NewGraph()
	for asn := uint32(1); asn <= 3; asn++ {
		g.AddAS(&AS{ASN: asn})
	}
	g.AddPeering(1, 2)
	g.AddProviderCustomer(2, 3)
	prop := g.Propagate(1)
	if !prop.Reached(3) || prop.Info[3].Class != ClassProvider {
		t.Fatalf("AS3 info = %+v", prop.Info[3])
	}
	if got := prop.Path(3); len(got) != 3 || got[0] != 3 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("path = %v", got)
	}
}

// Property: propagation never produces a path longer than the AS count,
// always reaches the origin's providers, and path reconstruction is
// consistent with Info.Len.
func TestQuickPropagationConsistency(t *testing.T) {
	f := func(seed int64) bool {
		g := Generate(Spec{Seed: seed, ASes: 120, Tier1s: 4, Transits: 20, CDNs: 2, Contents: 4, Prefixes: 200})
		origin := g.ASNs()[100]
		prop := g.Propagate(origin)
		for asn, info := range prop.Info {
			path := prop.Path(asn)
			if path == nil || len(path)-1 != info.Len {
				return false
			}
			if len(path) > g.Len() {
				return false
			}
		}
		for _, prov := range g.AS(origin).Providers {
			if !prop.Reached(prov) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConePrefixesMatchConeMembership(t *testing.T) {
	g := Generate(smallSpec())
	var tr uint32
	for _, asn := range g.ASNs() {
		if g.AS(asn).Kind == KindTransit {
			tr = asn
			break
		}
	}
	cone := g.CustomerCone(tr)
	want := 0
	for m := range cone {
		want += len(g.AS(m).Prefixes)
	}
	if got := len(g.ConePrefixes(tr)); got != want {
		t.Fatalf("ConePrefixes = %d, want %d", got, want)
	}
}

func TestGenerateContentCounts(t *testing.T) {
	g := Generate(smallSpec())
	spec := ContentSpec{Seed: 1, Sites: 100, Resources: 5000, FQDNs: 800, IPs: 500}
	c := GenerateContent(g, spec)
	if len(c.Sites) != 100 {
		t.Fatalf("sites = %d", len(c.Sites))
	}
	if got := len(c.AllIPs()); got != 500 {
		t.Fatalf("distinct IPs = %d, want 500", got)
	}
	refs := c.TotalResourceRefs()
	if refs < 4000 || refs > 6500 {
		t.Fatalf("resource refs = %d, want ≈5000", refs)
	}
	fq := len(c.AllFQDNs())
	if fq > 800 || fq < 400 {
		t.Fatalf("distinct FQDNs = %d, want ≤800 and substantial", fq)
	}
	// Every IP's origin AS exists and originates a covering prefix.
	for ip, asn := range c.OriginAS {
		a := g.AS(asn)
		if a == nil {
			t.Fatalf("IP %v mapped to unknown AS %d", ip, asn)
		}
		covered := false
		for _, p := range a.Prefixes {
			if p.Contains(ip) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("IP %v not covered by AS%d's prefixes", ip, asn)
		}
	}
}

func TestContentHostingSkewsToCDNs(t *testing.T) {
	g := Generate(smallSpec())
	c := GenerateContent(g, ContentSpec{Seed: 2, Sites: 100, Resources: 5000, FQDNs: 800, IPs: 600})
	byKind := map[Kind]int{}
	asesOfKind := map[Kind]int{}
	for _, asn := range g.ASNs() {
		asesOfKind[g.AS(asn).Kind]++
	}
	for _, asn := range c.OriginAS {
		byKind[g.AS(asn).Kind]++
	}
	// Per-AS hosting density: each CDN hosts far more content than
	// each stub (the flattened-Internet skew).
	cdnPer := float64(byKind[KindCDN]) / float64(asesOfKind[KindCDN])
	stubPer := float64(byKind[KindStub]) / float64(asesOfKind[KindStub])
	if cdnPer < 10*stubPer {
		t.Fatalf("hosting not CDN-skewed per AS: cdn=%.1f stub=%.2f (%v)", cdnPer, stubPer, byKind)
	}
}

func TestRelationshipBetween(t *testing.T) {
	g := NewGraph()
	g.AddAS(&AS{ASN: 1})
	g.AddAS(&AS{ASN: 2})
	g.AddAS(&AS{ASN: 3})
	g.AddProviderCustomer(1, 2)
	g.AddPeering(1, 3)
	if g.RelationshipBetween(1, 2) != policy.RelCustomer {
		t.Fatal("1 should see 2 as customer")
	}
	if g.RelationshipBetween(2, 1) != policy.RelProvider {
		t.Fatal("2 should see 1 as provider")
	}
	if g.RelationshipBetween(1, 3) != policy.RelPeer || g.RelationshipBetween(3, 1) != policy.RelPeer {
		t.Fatal("peering not symmetric")
	}
	if g.RelationshipBetween(2, 3) != policy.RelNone {
		t.Fatal("unrelated ASes should be RelNone")
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := NewGraph()
	a := g.AddAS(&AS{ASN: 1})
	g.AddAS(&AS{ASN: 2})
	a.Peers = append(a.Peers, 2) // one-sided edge
	if g.Validate() == nil {
		t.Fatal("Validate missed asymmetric peering")
	}
}

func BenchmarkPropagate(b *testing.B) {
	g := Generate(Spec{Seed: 1, ASes: 3000, Tier1s: 12, Transits: 220, CDNs: 16, Contents: 40, Prefixes: 3000})
	asns := g.ASNs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Propagate(asns[i%len(asns)])
	}
}

func BenchmarkCustomerCone(b *testing.B) {
	g := Generate(Spec{Seed: 1, ASes: 3000, Tier1s: 12, Transits: 220, CDNs: 16, Contents: 40, Prefixes: 3000})
	tier1 := g.ASNs()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CustomerCone(tier1)
	}
}
