// Package bufconn provides an in-memory, buffered, bidirectional
// net.Conn pair. Unlike net.Pipe (which is fully synchronous and
// deadlocks two endpoints that both write before reading — exactly what
// two BGP speakers do with their OPENs), bufconn decouples writer and
// reader with a per-direction byte buffer.
//
// The testbed uses bufconn wherever two in-process components hold a
// "TCP" connection: BGP sessions inside emulations, client-server
// control channels, and tunnel transports — thousands of sessions with
// no file descriptors or ports consumed.
package bufconn

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// ErrTimeout is returned when a deadline expires.
var ErrTimeout = errors.New("bufconn: deadline exceeded")

// defaultLimit bounds each direction's buffer; writers block when full,
// providing TCP-like backpressure.
const defaultLimit = 1 << 20

// Pipe returns two connected endpoints. Data written to one is readable
// from the other.
func Pipe() (*Conn, *Conn) {
	ab := newBuffer(defaultLimit)
	ba := newBuffer(defaultLimit)
	a := &Conn{r: ba, w: ab, local: pipeAddr("bufconn-a"), remote: pipeAddr("bufconn-b")}
	b := &Conn{r: ab, w: ba, local: pipeAddr("bufconn-b"), remote: pipeAddr("bufconn-a")}
	return a, b
}

type pipeAddr string

func (a pipeAddr) Network() string { return "bufconn" }
func (a pipeAddr) String() string  { return string(a) }

// buffer is one direction's byte queue. Unread bytes live in
// data[off:]; reads advance off and writes compact the consumed head
// back to the front before growing, so a long-lived connection settles
// into one reused backing array instead of reallocating per window.
type buffer struct {
	mu       sync.Mutex
	cond     *sync.Cond
	data     []byte
	off      int
	limit    int
	closed   bool
	deadline time.Time // read deadline on this direction
}

func newBuffer(limit int) *buffer {
	b := &buffer{limit: limit}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *buffer) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := 0
	for len(p) > 0 {
		if b.closed {
			return total, io.ErrClosedPipe
		}
		space := b.limit - (len(b.data) - b.off)
		if space == 0 {
			b.cond.Wait()
			continue
		}
		n := min(space, len(p))
		if b.off > 0 && len(b.data)+n > cap(b.data) {
			// Reclaim the consumed head instead of growing.
			b.data = b.data[:copy(b.data, b.data[b.off:])]
			b.off = 0
		}
		b.data = append(b.data, p[:n]...)
		p = p[n:]
		total += n
		b.cond.Broadcast()
	}
	return total, nil
}

func (b *buffer) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if len(b.data) > b.off {
			n := copy(p, b.data[b.off:])
			b.off += n
			if b.off == len(b.data) {
				b.data, b.off = b.data[:0], 0
			}
			b.cond.Broadcast()
			return n, nil
		}
		if b.closed {
			return 0, io.EOF
		}
		if !b.deadline.IsZero() && !time.Now().Before(b.deadline) {
			return 0, ErrTimeout
		}
		b.cond.Wait()
	}
}

func (b *buffer) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *buffer) setDeadline(t time.Time) {
	b.mu.Lock()
	b.deadline = t
	b.mu.Unlock()
	if !t.IsZero() {
		// Wake sleepers when the deadline passes.
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		time.AfterFunc(d, func() { b.cond.Broadcast() })
	}
}

// Conn is one endpoint of a Pipe.
type Conn struct {
	r, w          *buffer
	local, remote net.Addr

	closeOnce sync.Once
}

var _ net.Conn = (*Conn)(nil)

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) { return c.r.read(p) }

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) { return c.w.write(p) }

// Buffered reports how many bytes are queued for Read. Batch-aware
// readers (the BGP session layer) use it to drain a burst of messages
// into one delivery without ever blocking for more.
func (c *Conn) Buffered() int {
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	return len(c.r.data) - c.r.off
}

// Close implements net.Conn. Closing an endpoint fails further writes on
// both endpoints and drains pending reads to EOF.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.w.close()
		c.r.close()
	})
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn (read side only; writes block on
// buffer space, which close releases).
func (c *Conn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.r.setDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn (no-op; writes are bounded by
// the peer draining or Close).
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
