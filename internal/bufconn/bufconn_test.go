package bufconn

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	msg := []byte("hello interdomain world")
	go func() { a.Write(msg) }()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q", buf)
	}
}

func TestBothDirections(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	// Simultaneous writes both ways — the net.Pipe deadlock case.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); a.Write([]byte("from-a")) }()
	go func() { defer wg.Done(); b.Write([]byte("from-b")) }()
	bufA, bufB := make([]byte, 6), make([]byte, 6)
	io.ReadFull(a, bufA)
	io.ReadFull(b, bufB)
	wg.Wait()
	if string(bufA) != "from-b" || string(bufB) != "from-a" {
		t.Fatalf("got %q / %q", bufA, bufB)
	}
}

func TestCloseUnblocksReader(t *testing.T) {
	a, b := Pipe()
	errCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := b.Read(buf)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-errCh:
		if err != io.EOF {
			t.Fatalf("err = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader not unblocked by close")
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	a, b := Pipe()
	b.Close()
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("write after peer close succeeded")
	}
}

func TestBackpressure(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	big := make([]byte, defaultLimit+1024)
	done := make(chan struct{})
	go func() {
		a.Write(big)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("oversized write completed without reader")
	case <-time.After(50 * time.Millisecond):
	}
	// Drain; the writer must now finish.
	go io.Copy(io.Discard, b)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("writer never unblocked")
	}
}

func TestReadDeadline(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 1)
	_, err := b.Read(buf)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// Clearing the deadline makes reads block again (until data).
	b.SetReadDeadline(time.Time{})
	go a.Write([]byte("y"))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
}

func TestAddrs(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if a.LocalAddr().String() != b.RemoteAddr().String() {
		t.Fatal("addr mismatch")
	}
	if a.LocalAddr().Network() != "bufconn" {
		t.Fatalf("network = %q", a.LocalAddr().Network())
	}
}

func TestManyMessagesOrdered(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	const n = 1000
	go func() {
		for i := 0; i < n; i++ {
			a.Write([]byte{byte(i)})
		}
	}()
	buf := make([]byte, n)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if buf[i] != byte(i) {
			t.Fatalf("byte %d = %d", i, buf[i])
		}
	}
}
