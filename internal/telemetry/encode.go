package telemetry

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the MIME type of the Prometheus text exposition
// format this package emits.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteTo encodes every registered family in Prometheus text format,
// families sorted by metric name, series within a family sorted by
// label values. It implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	entries := make([]entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].d.name < entries[j].d.name })

	enc := &encoder{}
	for _, e := range entries {
		e.encode(enc)
	}
	n, err := w.Write(enc.buf.Bytes())
	return int64(n), err
}

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WriteTo(w)
	})
}

// encoder accumulates text-format output.
type encoder struct {
	buf bytes.Buffer
}

// header writes the # HELP and # TYPE lines for a family.
func (e *encoder) header(d desc) {
	e.buf.WriteString("# HELP ")
	e.buf.WriteString(d.name)
	e.buf.WriteByte(' ')
	e.buf.WriteString(escapeHelp(d.help))
	e.buf.WriteString("\n# TYPE ")
	e.buf.WriteString(d.name)
	e.buf.WriteByte(' ')
	e.buf.WriteString(d.typ)
	e.buf.WriteByte('\n')
}

// sample writes one series line: name{labels} value.
func (e *encoder) sample(name string, labels, values []string, value string) {
	e.buf.WriteString(name)
	e.labelSet(labels, values, "", "")
	e.buf.WriteByte(' ')
	e.buf.WriteString(value)
	e.buf.WriteByte('\n')
}

// labelSet writes {a="x",b="y"} (nothing if empty). extraName/extraVal
// append one more pair (the histogram `le` label) after the vec labels.
func (e *encoder) labelSet(labels, values []string, extraName, extraVal string) {
	if len(labels) == 0 && extraName == "" {
		return
	}
	e.buf.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			e.buf.WriteByte(',')
		}
		e.buf.WriteString(l)
		e.buf.WriteString(`="`)
		e.buf.WriteString(escapeLabel(values[i]))
		e.buf.WriteByte('"')
	}
	if extraName != "" {
		if len(labels) > 0 {
			e.buf.WriteByte(',')
		}
		e.buf.WriteString(extraName)
		e.buf.WriteString(`="`)
		e.buf.WriteString(escapeLabel(extraVal))
		e.buf.WriteByte('"')
	}
	e.buf.WriteByte('}')
}

// histogram writes the _bucket/_sum/_count series of one histogram
// child. The +Inf bucket and _count are taken from the same cumulative
// snapshot so the exposition is always internally consistent.
func (e *encoder) histogram(name string, labels, values []string, h *Histogram) {
	bounds, cumulative := h.Buckets()
	for i, b := range bounds {
		e.buf.WriteString(name)
		e.buf.WriteString("_bucket")
		e.labelSet(labels, values, "le", formatLe(b))
		e.buf.WriteByte(' ')
		e.buf.WriteString(formatUint(cumulative[i]))
		e.buf.WriteByte('\n')
	}
	total := cumulative[len(cumulative)-1]
	e.sample(name+"_sum", labels, values, formatFloat(h.Sum()))
	e.sample(name+"_count", labels, values, formatUint(total))
}

// escapeLabel escapes a label value per the text format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// formatLe renders a bucket bound for the `le` label; +Inf is spelled
// the way Prometheus expects.
func formatLe(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return formatFloat(v)
}
