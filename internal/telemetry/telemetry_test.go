package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func encode(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestEncodeExactOutput locks down the Prometheus text exposition byte
// for byte: HELP/TYPE headers, family ordering by name, series ordering
// by label values, and integer vs float rendering.
func TestEncodeExactOutput(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("peering_test_events_total", "Events seen.")
	c.Add(42)
	g := r.Gauge("peering_test_depth", "Current depth.")
	g.Set(1.5)
	v := r.CounterVec("peering_test_msgs_total", "Messages by type.", "type")
	v.With("update").Add(7)
	v.With("keepalive").Inc()

	want := strings.Join([]string{
		`# HELP peering_test_depth Current depth.`,
		`# TYPE peering_test_depth gauge`,
		`peering_test_depth 1.5`,
		`# HELP peering_test_events_total Events seen.`,
		`# TYPE peering_test_events_total counter`,
		`peering_test_events_total 42`,
		`# HELP peering_test_msgs_total Messages by type.`,
		`# TYPE peering_test_msgs_total counter`,
		`peering_test_msgs_total{type="keepalive"} 1`,
		`peering_test_msgs_total{type="update"} 7`,
	}, "\n") + "\n"
	if got := encode(t, r); got != want {
		t.Fatalf("encoding mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestEncodeLabelEscaping covers the three escapes the text format
// requires in label values (backslash, quote, newline) and the
// backslash/newline escapes in HELP text.
func TestEncodeLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("peering_test_sessions", "State per session\nsecond line \\ here.", "session")
	v.With(`up1 "primary" \ams` + "\n").Set(3)

	want := strings.Join([]string{
		`# HELP peering_test_sessions State per session\nsecond line \\ here.`,
		`# TYPE peering_test_sessions gauge`,
		`peering_test_sessions{session="up1 \"primary\" \\ams\n"} 3`,
	}, "\n") + "\n"
	if got := encode(t, r); got != want {
		t.Fatalf("escaping mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestHistogramCumulativeBuckets checks le-bucket assignment (upper
// bounds are inclusive), cumulative encoding, the implicit +Inf bucket,
// and _sum/_count agreement.
func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("peering_test_latency_seconds", "Latency.", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.1, 0.3, 0.7, 2.5} {
		h.Observe(v)
	}

	want := strings.Join([]string{
		`# HELP peering_test_latency_seconds Latency.`,
		`# TYPE peering_test_latency_seconds histogram`,
		`peering_test_latency_seconds_bucket{le="0.1"} 2`,
		`peering_test_latency_seconds_bucket{le="0.5"} 3`,
		`peering_test_latency_seconds_bucket{le="1"} 4`,
		`peering_test_latency_seconds_bucket{le="+Inf"} 5`,
		`peering_test_latency_seconds_sum 3.65`,
		`peering_test_latency_seconds_count 5`,
	}, "\n") + "\n"
	if got := encode(t, r); got != want {
		t.Fatalf("histogram mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	bounds, cum := h.Buckets()
	if len(bounds) != 4 || !math.IsInf(bounds[3], +1) {
		t.Fatalf("bounds = %v, want 3 finite + +Inf", bounds)
	}
	if cum[3] != 5 || h.Count() != 5 {
		t.Fatalf("cumulative = %v count = %d, want 5", cum, h.Count())
	}
}

// TestHistogramVecSharedLayout: children share buckets; the le label
// comes after the vec labels.
func TestHistogramVecSharedLayout(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("peering_test_sizes", "Sizes.", []float64{1, 8}, "client")
	v.With("exp1").Observe(1)
	v.With("exp1").Observe(100)
	got := encode(t, r)
	for _, line := range []string{
		`peering_test_sizes_bucket{client="exp1",le="1"} 1`,
		`peering_test_sizes_bucket{client="exp1",le="8"} 1`,
		`peering_test_sizes_bucket{client="exp1",le="+Inf"} 2`,
		`peering_test_sizes_sum{client="exp1"} 101`,
		`peering_test_sizes_count{client="exp1"} 2`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("output missing %q:\n%s", line, got)
		}
	}
}

// TestGaugeFuncAndVecFunc: scrape-time metrics are sampled per encode
// and sorted by label values regardless of emit order.
func TestGaugeFuncAndVecFunc(t *testing.T) {
	r := NewRegistry()
	n := 1.0
	r.GaugeFunc("peering_test_pool", "Pool size.", func() float64 { return n })
	r.GaugeVecFunc("peering_test_routes", "Routes per peer.", []string{"peer"},
		func(emit func(v float64, labelValues ...string)) {
			emit(10, "zebra")
			emit(20, "alpha")
		})

	got := encode(t, r)
	wantOrder := strings.Join([]string{
		`peering_test_routes{peer="alpha"} 20`,
		`peering_test_routes{peer="zebra"} 10`,
	}, "\n")
	if !strings.Contains(got, wantOrder) {
		t.Fatalf("vec func samples missing or unsorted:\n%s", got)
	}
	if !strings.Contains(got, "peering_test_pool 1\n") {
		t.Fatalf("gauge func sample missing:\n%s", got)
	}
	n = 2
	if got := encode(t, r); !strings.Contains(got, "peering_test_pool 2\n") {
		t.Fatalf("gauge func not re-sampled:\n%s", got)
	}
}

// TestGaugeMax: the high-water helper only moves up.
func TestGaugeMax(t *testing.T) {
	var g Gauge
	g.Max(5)
	g.Max(3)
	if g.Value() != 5 {
		t.Fatalf("Max regressed the gauge: %v", g.Value())
	}
	g.Max(9)
	if g.Value() != 9 {
		t.Fatalf("Max did not raise: %v", g.Value())
	}
}

// TestRegistryPanics: duplicate and malformed names are programming
// errors caught at registration.
func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("peering_dup_total", "x")
	mustPanic("duplicate", func() { r.Gauge("peering_dup_total", "x") })
	mustPanic("bad name", func() { r.Counter("9starts-with-digit", "x") })
	mustPanic("bad label", func() { r.CounterVec("peering_ok_total", "x", "bad-label") })
	mustPanic("descending buckets", func() { r.Histogram("peering_h", "x", []float64{2, 1}) })
	mustPanic("label arity", func() {
		v := r.CounterVec("peering_arity_total", "x", "a", "b")
		v.With("only-one")
	})
}

// TestConcurrentRegistryAccess hammers every instrument kind from many
// goroutines while scraping concurrently; run under -race this is the
// registry's thread-safety proof.
func TestConcurrentRegistryAccess(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("peering_conc_events_total", "x")
	g := r.Gauge("peering_conc_depth", "x")
	cv := r.CounterVec("peering_conc_msgs_total", "x", "type")
	h := r.Histogram("peering_conc_lat_seconds", "x", []float64{0.01, 0.1, 1})
	hv := r.HistogramVec("peering_conc_sizes", "x", []float64{1, 10}, "client")
	r.GaugeVecFunc("peering_conc_routes", "x", []string{"peer"},
		func(emit func(v float64, labelValues ...string)) {
			emit(float64(c.Value()), "p1")
		})

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	types := []string{"update", "keepalive", "open", "notification"}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				g.Max(float64(i))
				cv.With(types[i%len(types)]).Inc()
				h.Observe(float64(i%100) / 50)
				hv.With(types[w%len(types)]).Observe(float64(i % 20))
			}
		}(w)
	}
	// Scrape concurrently with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if _, err := r.WriteTo(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	var total uint64
	for _, ty := range types {
		total += cv.With(ty).Value()
	}
	if total != workers*iters {
		t.Fatalf("vec total = %d, want %d", total, workers*iters)
	}
}

// TestHandler: the HTTP endpoint sets the exposition content type and
// serves the encoded registry.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("peering_http_hits_total", "x").Add(3)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q, want %q", ct, ContentType)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "peering_http_hits_total 3") {
		t.Fatalf("body = %q", buf[:n])
	}
}
