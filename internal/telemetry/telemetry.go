// Package telemetry is the testbed's metrics layer: a dependency-free
// registry of atomic counters, gauges, fixed-bucket histograms, and
// labeled vectors of each, with a Prometheus text-format (0.0.4)
// encoder behind GET /metrics.
//
// PEERING staff operate muxes holding hundreds of live BGP sessions;
// they must notice flaps, leaks, and slow clients before real peers do.
// Every subsystem therefore instruments itself against one shared
// Registry — bgp sessions, the server fan-out pipeline, route-flap
// dampening, RIB sizes, and the end-to-end convergence histogram — so
// a single scrape answers "is this mux healthy".
//
// Two instrument styles coexist:
//
//   - registered instruments (Counter, Gauge, Histogram, and their
//     *Vec forms) are updated at event time with atomic operations and
//     never take the registry lock on the hot path;
//   - func metrics (GaugeFunc, GaugeVecFunc) are sampled at scrape
//     time from a callback, which suits "current size" values (routes
//     per peer, queue depth per client) whose label sets churn with
//     client connections — a snapshot can never leak stale labels.
//
// The zero Counter/Gauge/Histogram values are also usable unregistered
// as plain thread-safe counters, which lets per-object state (a
// session's own UPDATE count) share the one instrumented idiom without
// polluting the scrape namespace.
//
// Naming follows the convention documented in DESIGN.md §10:
// peering_<subsystem>_<name>_<unit>, with _total on counters.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ---------------------------------------------------------------------
// Scalar instruments

// Counter is a monotonically increasing counter. The zero value is
// ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Max raises the gauge to v if v exceeds the current value (a
// high-water mark).
func (g *Gauge) Max(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// ---------------------------------------------------------------------
// Vectors

// vec is the generic labeled-children machinery shared by CounterVec,
// GaugeVec, and HistogramVec. Children are created on first use and
// live for the registry's lifetime.
type vec[M any] struct {
	labels []string
	newM   func() *M

	mu   sync.RWMutex
	kids map[string]*vecChild[M]
}

type vecChild[M any] struct {
	values []string
	m      *M
}

// vecKey joins label values unambiguously (label values may contain
// any byte except the separator's job is done by length-prefixing via
// %q quoting).
func vecKey(values []string) string {
	var b strings.Builder
	for _, v := range values {
		fmt.Fprintf(&b, "%q,", v)
	}
	return b.String()
}

func (v *vec[M]) with(values []string) *M {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: got %d label values for labels %v", len(values), v.labels))
	}
	k := vecKey(values)
	v.mu.RLock()
	c := v.kids[k]
	v.mu.RUnlock()
	if c != nil {
		return c.m
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.kids[k]; c != nil {
		return c.m
	}
	c = &vecChild[M]{values: append([]string(nil), values...), m: v.newM()}
	v.kids[k] = c
	return c.m
}

// snapshot returns the children sorted by label values, for stable
// encoding.
func (v *vec[M]) snapshot() []*vecChild[M] {
	v.mu.RLock()
	out := make([]*vecChild[M], 0, len(v.kids))
	for _, c := range v.kids {
		out = append(out, c)
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return sliceLess(out[i].values, out[j].values)
	})
	return out
}

func sliceLess(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// CounterVec is a family of Counters keyed by label values.
type CounterVec struct {
	desc
	vec[Counter]
}

// With returns the child for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return v.with(values) }

// GaugeVec is a family of Gauges keyed by label values.
type GaugeVec struct {
	desc
	vec[Gauge]
}

// With returns the child for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge { return v.with(values) }

// HistogramVec is a family of Histograms sharing one bucket layout,
// keyed by label values.
type HistogramVec struct {
	desc
	vec[Histogram]
}

// With returns the child for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram { return v.with(values) }

// ---------------------------------------------------------------------
// Func metrics (sampled at scrape time)

// GaugeFunc reports fn() at each scrape.
type GaugeFunc struct {
	desc
	fn func() float64
}

// GaugeVecFunc reports a labeled sample set at each scrape: collect is
// called with an emit callback and produces the entire family. Because
// the sample set is rebuilt per scrape, label churn (clients connecting
// and leaving) can never leave stale series behind.
type GaugeVecFunc struct {
	desc
	labels  []string
	collect func(emit func(value float64, labelValues ...string))
}

// ---------------------------------------------------------------------
// Registry

// desc is the name/help/type triple every registered family carries.
type desc struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"
}

// Name returns the family's metric name.
func (d desc) Name() string { return d.name }

// entry is one registered metric family.
type entry struct {
	d      desc
	encode func(*encoder)
}

// Registry holds metric families and encodes them in Prometheus text
// format. All registration methods panic on invalid or duplicate names
// — registration happens once at startup, and a misnamed metric is a
// programming error, not a runtime condition.
type Registry struct {
	mu      sync.Mutex
	entries map[string]entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]entry)}
}

func (r *Registry) register(d desc, encode func(*encoder)) {
	mustValidName(d.name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[d.name]; dup {
		panic("telemetry: duplicate metric " + d.name)
	}
	r.entries[d.name] = entry{d: d, encode: encode}
}

func mustValidName(name string) {
	if !validName(name, false) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
}

func mustValidLabels(labels []string) {
	for _, l := range labels {
		if !validName(l, true) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("telemetry: invalid label name %q", l))
		}
	}
}

// validName checks the Prometheus grammar: metric names allow
// [a-zA-Z_:][a-zA-Z0-9_:]*, label names the same minus ':'.
func validName(s string, label bool) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c == ':' && !label:
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	d := desc{name: name, help: help, typ: "counter"}
	r.register(d, func(e *encoder) {
		e.header(d)
		e.sample(d.name, nil, nil, formatUint(c.Value()))
	})
	return c
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	mustValidLabels(labels)
	v := &CounterVec{
		desc: desc{name: name, help: help, typ: "counter"},
		vec: vec[Counter]{
			labels: labels,
			newM:   func() *Counter { return &Counter{} },
			kids:   make(map[string]*vecChild[Counter]),
		},
	}
	r.register(v.desc, func(e *encoder) {
		e.header(v.desc)
		for _, c := range v.snapshot() {
			e.sample(v.desc.name, labels, c.values, formatUint(c.m.Value()))
		}
	})
	return v
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	d := desc{name: name, help: help, typ: "gauge"}
	r.register(d, func(e *encoder) {
		e.header(d)
		e.sample(d.name, nil, nil, formatFloat(g.Value()))
	})
	return g
}

// GaugeVec registers and returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	mustValidLabels(labels)
	v := &GaugeVec{
		desc: desc{name: name, help: help, typ: "gauge"},
		vec: vec[Gauge]{
			labels: labels,
			newM:   func() *Gauge { return &Gauge{} },
			kids:   make(map[string]*vecChild[Gauge]),
		},
	}
	r.register(v.desc, func(e *encoder) {
		e.header(v.desc)
		for _, c := range v.snapshot() {
			e.sample(v.desc.name, labels, c.values, formatFloat(c.m.Value()))
		}
	})
	return v
}

// GaugeFunc registers a gauge whose value is fn() at scrape time. fn
// must be safe for concurrent use and must not call back into the
// registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{desc: desc{name: name, help: help, typ: "gauge"}, fn: fn}
	r.register(g.desc, func(e *encoder) {
		e.header(g.desc)
		e.sample(g.desc.name, nil, nil, formatFloat(fn()))
	})
	return g
}

// GaugeVecFunc registers a labeled gauge family collected at scrape
// time: collect receives an emit callback and produces every sample of
// the family. Samples are sorted by label values before encoding, so
// collect order does not matter. collect must be safe for concurrent
// use and must not call back into the registry.
func (r *Registry) GaugeVecFunc(name, help string, labels []string, collect func(emit func(value float64, labelValues ...string))) *GaugeVecFunc {
	mustValidLabels(labels)
	g := &GaugeVecFunc{
		desc:    desc{name: name, help: help, typ: "gauge"},
		labels:  labels,
		collect: collect,
	}
	r.register(g.desc, func(e *encoder) {
		e.header(g.desc)
		type sample struct {
			values []string
			v      float64
		}
		var samples []sample
		collect(func(v float64, labelValues ...string) {
			if len(labelValues) != len(labels) {
				panic(fmt.Sprintf("telemetry: %s emitted %d label values for labels %v", name, len(labelValues), labels))
			}
			samples = append(samples, sample{values: append([]string(nil), labelValues...), v: v})
		})
		sort.Slice(samples, func(i, j int) bool { return sliceLess(samples[i].values, samples[j].values) })
		for _, s := range samples {
			e.sample(g.desc.name, labels, s.values, formatFloat(s.v))
		}
	})
	return g
}

// Histogram registers and returns a histogram with the given bucket
// upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := NewHistogram(buckets)
	d := desc{name: name, help: help, typ: "histogram"}
	r.register(d, func(e *encoder) {
		e.header(d)
		e.histogram(d.name, nil, nil, h)
	})
	return h
}

// HistogramVec registers and returns a labeled histogram family, every
// child sharing the same bucket layout.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	mustValidLabels(labels)
	bounds := checkBuckets(buckets)
	v := &HistogramVec{
		desc: desc{name: name, help: help, typ: "histogram"},
		vec: vec[Histogram]{
			labels: labels,
			newM:   func() *Histogram { return NewHistogram(bounds) },
			kids:   make(map[string]*vecChild[Histogram]),
		},
	}
	r.register(v.desc, func(e *encoder) {
		e.header(v.desc)
		for _, c := range v.snapshot() {
			e.histogram(v.desc.name, labels, c.values, c.m)
		}
	})
	return v
}
