package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds (inclusive, Prometheus `le` semantics); an implicit +Inf
// bucket catches everything else. Observe is lock-free; a scrape reads
// the buckets without stopping writers, so a snapshot may be slightly
// torn between buckets — the standard Prometheus trade for a hot path
// that never blocks.
type Histogram struct {
	bounds []float64       // ascending upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    Gauge           // running sum of observed values
	count  atomic.Uint64
}

// NewHistogram returns an unregistered histogram with the given bucket
// upper bounds (ascending; +Inf implicit). Use Registry.Histogram to
// expose one on /metrics.
func NewHistogram(buckets []float64) *Histogram {
	bounds := checkBuckets(buckets)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// checkBuckets validates and copies a bucket layout.
func checkBuckets(buckets []float64) []float64 {
	bounds := append([]float64(nil), buckets...)
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram buckets must be ascending")
	}
	for _, b := range bounds {
		if math.IsNaN(b) {
			panic("telemetry: NaN histogram bucket")
		}
	}
	// A trailing +Inf is implicit; drop an explicit one.
	if n := len(bounds); n > 0 && math.IsInf(bounds[n-1], +1) {
		bounds = bounds[:n-1]
	}
	return bounds
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Buckets returns the bucket upper bounds and the cumulative count at
// each (Prometheus `le` semantics), ending with the +Inf bucket equal
// to Count.
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = append(append([]float64(nil), h.bounds...), math.Inf(+1))
	cumulative = make([]uint64, len(h.counts))
	var c uint64
	for i := range h.counts {
		c += h.counts[i].Load()
		cumulative[i] = c
	}
	return bounds, cumulative
}
