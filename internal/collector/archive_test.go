package collector

import (
	"fmt"
	"io"
	"net/netip"
	"os"
	"testing"

	"peering/internal/mrt"
	"peering/internal/router"
	"peering/internal/telemetry"
)

// TestLogRingBuffer: the in-memory update log is bounded; eviction is
// FIFO and counted, and Log() stays in arrival order across the wrap.
func TestLogRingBuffer(t *testing.T) {
	c := New("rv1", 6447, addr("128.223.51.102"), nil)
	c.SetLogCap(4)
	reg := telemetry.NewRegistry()
	c.Instrument(reg)
	r := router.New(router.Config{AS: 3356, RouterID: addr("4.69.0.1")})
	peerUp(t, c, r, "4.69.0.1")

	var prefixes []netip.Prefix
	for i := 0; i < 12; i++ {
		p := prefix(fmt.Sprintf("100.64.%d.0/24", i))
		prefixes = append(prefixes, p)
		r.Announce(p, router.AnnounceSpec{})
		waitFor(t, "route archived", func() bool { return c.HasRoute(p) })
	}

	log := c.Log()
	if len(log) != 4 {
		t.Fatalf("log holds %d records, want cap 4", len(log))
	}
	if got := c.Dropped(); got != 8 {
		t.Fatalf("dropped = %d, want 8", got)
	}
	// Arrival order survives the wrap: the last record is the newest.
	last := log[len(log)-1]
	if len(last.Reach) != 1 || last.Reach[0] != prefixes[11] {
		t.Fatalf("newest record = %+v, want %v", last, prefixes[11])
	}
	for i := 1; i < len(log); i++ {
		if log[i].Time.Before(log[i-1].Time) {
			t.Fatalf("log out of order at %d: %v < %v", i, log[i].Time, log[i-1].Time)
		}
	}
	// UpdatesFor only sees what the ring still holds.
	if got := c.UpdatesFor(prefixes[0]); len(got) != 0 {
		t.Fatalf("evicted prefix still visible: %+v", got)
	}
	if got := c.UpdatesFor(prefixes[11]); len(got) != 1 {
		t.Fatalf("retained prefix not visible: %+v", got)
	}

	// Shrinking the cap evicts the oldest records immediately.
	c.SetLogCap(2)
	if got := len(c.Log()); got != 2 {
		t.Fatalf("log holds %d records after shrink, want 2", got)
	}
	if got := c.Dropped(); got != 10 {
		t.Fatalf("dropped after shrink = %d, want 10", got)
	}
}

// TestCollectorMRTArchive wires a collector to a rotating archive:
// updates land as BGP4MP_ET records, and a manual rotation seals the
// segment and dumps a RIB snapshot that matches the collector's table.
func TestCollectorMRTArchive(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	arch, err := mrt.NewArchive(mrt.ArchiveConfig{Dir: dir, Metrics: mrt.NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	c := New("rv1", 6447, addr("128.223.51.102"), nil)
	c.Instrument(reg)
	c.AttachArchive(arch)
	r := router.New(router.Config{AS: 3356, RouterID: addr("4.69.0.1")})
	peerUp(t, c, r, "4.69.0.1")

	for i := 0; i < 5; i++ {
		p := prefix(fmt.Sprintf("100.64.%d.0/24", i))
		r.Announce(p, router.AnnounceSpec{})
		waitFor(t, "route archived", func() bool { return c.HasRoute(p) })
	}
	r.Withdraw(prefix("100.64.4.0/24"))
	waitFor(t, "withdraw archived", func() bool { return !c.HasRoute(prefix("100.64.4.0/24")) })

	sealed, snapshot, err := c.RotateArchive()
	if err != nil {
		t.Fatal(err)
	}
	if sealed == "" || snapshot == "" {
		t.Fatalf("rotate returned sealed=%q snapshot=%q", sealed, snapshot)
	}

	// The sealed segment replays the session: every record is a
	// BGP4MP_ET from AS3356 whose embedded message decodes.
	f, err := os.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd := mrt.NewReader(f)
	announced, withdrawn := 0, 0
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Type != mrt.TypeBGP4MPET {
			t.Fatalf("record type %v, want BGP4MP_ET", rec.Type)
		}
		m, err := mrt.ParseBGP4MP(rec)
		if err != nil {
			t.Fatal(err)
		}
		if m.PeerAS != 3356 || m.LocalAS != 6447 {
			t.Fatalf("identity AS%d→AS%d, want AS3356→AS6447", m.PeerAS, m.LocalAS)
		}
		upd, err := m.Update()
		if err != nil {
			t.Fatal(err)
		}
		if upd == nil {
			continue
		}
		announced += len(upd.Reach)
		withdrawn += len(upd.Withdrawn)
	}
	if announced < 5 || withdrawn < 1 {
		t.Fatalf("trace carries %d announcements, %d withdrawals; want ≥5 and ≥1", announced, withdrawn)
	}

	// The snapshot is a valid TABLE_DUMP_V2 dump of the live table: 4
	// prefixes remain after the withdrawal.
	sf, err := os.Open(snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	srd := mrt.NewReader(sf)
	head, err := srd.Next()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := mrt.ParsePeerIndex(head)
	if err != nil {
		t.Fatal(err)
	}
	if len(pi.Peers) != 1 || pi.Peers[0].AS != 3356 || pi.ViewName != "rv1" {
		t.Fatalf("peer index: %+v", pi)
	}
	var ribs int
	for {
		rec, err := srd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rr, err := mrt.ParseRIB(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !c.HasRoute(rr.Prefix) {
			t.Fatalf("snapshot has %v, collector does not", rr.Prefix)
		}
		if len(rr.Entries) == 0 || rr.Entries[0].Attrs.ASList()[0] != 3356 {
			t.Fatalf("RIB entries for %v: %+v", rr.Prefix, rr.Entries)
		}
		ribs++
	}
	if ribs != c.Prefixes() {
		t.Fatalf("snapshot has %d RIB records, collector holds %d prefixes", ribs, c.Prefixes())
	}

	st, snaps, ok := c.ArchiveStatus()
	if !ok || st.Rotations != 1 || len(snaps) != 1 || snaps[0] != snapshot {
		t.Fatalf("archive status: %+v snaps %v ok=%v", st, snaps, ok)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMemoryWatermarkShedding: above the watermark the collector halves
// its ring, stops buffering records and MRT writes, and keeps the
// merged RIB live; dropping back under the line restores everything.
func TestMemoryWatermarkShedding(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	arch, err := mrt.NewArchive(mrt.ArchiveConfig{Dir: dir, Metrics: mrt.NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	c := New("rv1", 6447, addr("128.223.51.102"), nil)
	c.Instrument(reg)
	c.AttachArchive(arch)
	var heap uint64 = 100 << 20
	c.memUsage = func() uint64 { return heap }
	c.SetMemoryWatermark(200 << 20)
	r := router.New(router.Config{AS: 3356, RouterID: addr("4.69.0.1")})
	peerUp(t, c, r, "4.69.0.1")

	// Below the watermark: records and archive bytes accumulate.
	for i := 0; i < 8; i++ {
		p := prefix(fmt.Sprintf("100.64.%d.0/24", i))
		r.Announce(p, router.AnnounceSpec{})
		waitFor(t, "route archived", func() bool { return c.HasRoute(p) })
	}
	if got := len(c.Log()); got != 8 {
		t.Fatalf("log holds %d records below watermark, want 8", got)
	}
	if c.Shedding() {
		t.Fatal("shedding below the watermark")
	}
	archived := arch.Status().Records

	// Cross the watermark: the next archived update samples the heap,
	// halves the ring, and sheds.
	heap = 300 << 20
	c.SetMemoryWatermark(200 << 20) // re-arm so the next update samples now
	for i := 8; i < 12; i++ {
		p := prefix(fmt.Sprintf("100.64.%d.0/24", i))
		r.Announce(p, router.AnnounceSpec{})
		waitFor(t, "route merged", func() bool { return c.HasRoute(p) })
	}
	if !c.Shedding() {
		t.Fatal("not shedding above the watermark")
	}
	if got := len(c.Log()); got != 4 {
		t.Fatalf("log holds %d records while shedding, want halved 4", got)
	}
	if got := arch.Status().Records; got != archived {
		t.Fatalf("archive grew from %d to %d records while shedding", archived, got)
	}
	if got := c.MemorySheds(); got != 4 {
		t.Fatalf("memory sheds = %d, want 4", got)
	}
	// The RIB stayed live: shed updates still merged.
	if !c.HasRoute(prefix("100.64.11.0/24")) {
		t.Fatal("RIB lost a shed update")
	}

	// Fall back under the line: normal service resumes.
	heap = 100 << 20
	c.SetMemoryWatermark(200 << 20)
	r.Announce(prefix("100.64.12.0/24"), router.AnnounceSpec{})
	waitFor(t, "post-recovery record", func() bool { return len(c.Log()) == 5 })
	if c.Shedding() {
		t.Fatal("still shedding after recovery")
	}
	if got := arch.Status().Records; got <= archived {
		t.Fatalf("archive did not resume after recovery (still %d records)", got)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
}
