package collector

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"peering/internal/bufconn"
	"peering/internal/clock"
	"peering/internal/router"
)

var epoch = time.Date(2014, 10, 27, 0, 0, 0, 0, time.UTC)

func addr(s string) netip.Addr     { return netip.MustParseAddr(s) }
func prefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// peerUp connects a router to the collector.
func peerUp(t *testing.T, c *Collector, r *router.Router, peerAddr string) {
	t.Helper()
	p := r.AddPeer(router.PeerConfig{
		Addr: c.RouterID(), LocalAddr: addr(peerAddr), AS: c.ASN(), Describe: "collector",
	})
	ca, cb := bufconn.Pipe()
	c.AddPeer(ca, r.AS())
	r.Attach(p, cb)
	waitFor(t, "collector session", func() bool { return p.Established() })
}

func TestCollectorArchivesUpdates(t *testing.T) {
	c := New("rv1", 6447, addr("128.223.51.102"), nil) // RouteViews ASN
	r := router.New(router.Config{AS: 3356, RouterID: addr("4.69.0.1")})
	peerUp(t, c, r, "4.69.0.1")

	p := prefix("100.64.0.0/24")
	r.Announce(p, router.AnnounceSpec{})
	waitFor(t, "route archived", func() bool { return c.HasRoute(p) })
	recs := c.UpdatesFor(p)
	if len(recs) == 0 || recs[0].PeerAS != 3356 {
		t.Fatalf("records = %+v", recs)
	}
	if len(recs[0].Path) != 1 || recs[0].Path[0] != 3356 {
		t.Fatalf("path = %v", recs[0].Path)
	}
	// Withdrawal archived too.
	r.Withdraw(p)
	waitFor(t, "withdraw archived", func() bool { return !c.HasRoute(p) })
	recs = c.UpdatesFor(p)
	last := recs[len(recs)-1]
	if len(last.Withdrawn) != 1 {
		t.Fatalf("last record = %+v", last)
	}
}

func TestWaitForPrefix(t *testing.T) {
	c := New("rv1", 6447, addr("128.223.51.102"), nil)
	r := router.New(router.Config{AS: 2914, RouterID: addr("129.250.0.1")})
	peerUp(t, c, r, "129.250.0.1")

	done := make(chan UpdateRecord, 1)
	go func() {
		rec, err := c.WaitForPrefix(prefix("100.64.9.0/24"), false, 10*time.Second)
		if err == nil {
			done <- rec
		}
	}()
	time.Sleep(20 * time.Millisecond)
	r.Announce(prefix("100.64.9.0/24"), router.AnnounceSpec{})
	select {
	case rec := <-done:
		if rec.PeerAS != 2914 {
			t.Fatalf("rec = %+v", rec)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("WaitForPrefix never fired")
	}
	// Timeout path.
	if _, err := c.WaitForPrefix(prefix("1.2.3.0/24"), false, 50*time.Millisecond); err == nil {
		t.Fatal("timeout did not error")
	}
}

func TestConvergenceStats(t *testing.T) {
	c := New("rv1", 6447, addr("128.223.51.102"), nil)
	r := router.New(router.Config{AS: 3356, RouterID: addr("4.69.0.1")})
	peerUp(t, c, r, "4.69.0.1")
	p := prefix("100.64.0.0/24")
	r.Announce(p, router.AnnounceSpec{})
	waitFor(t, "first", func() bool { return len(c.UpdatesFor(p)) >= 1 })
	r.Announce(p, router.AnnounceSpec{Prepend: 2}) // path change
	waitFor(t, "second", func() bool { return len(c.UpdatesFor(p)) >= 2 })
	r.Withdraw(p)
	waitFor(t, "third", func() bool { return len(c.UpdatesFor(p)) >= 3 })

	st := c.Convergence(p, time.Time{})
	if st.Updates != 3 || st.Withdrawals != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DistinctPaths != 2 {
		t.Fatalf("distinct paths = %d, want 2", st.DistinctPaths)
	}
}

func TestMultiPeerView(t *testing.T) {
	c := New("rv1", 6447, addr("128.223.51.102"), nil)
	r1 := router.New(router.Config{AS: 3356, RouterID: addr("4.69.0.1")})
	r2 := router.New(router.Config{AS: 2914, RouterID: addr("129.250.0.1")})
	peerUp(t, c, r1, "4.69.0.1")
	peerUp(t, c, r2, "129.250.0.1")
	p := prefix("100.64.0.0/24")
	r1.Announce(p, router.AnnounceSpec{})
	r2.Announce(p, router.AnnounceSpec{})
	waitFor(t, "both views", func() bool {
		n := 0
		for _, rec := range c.UpdatesFor(p) {
			if len(rec.Reach) > 0 {
				n++
			}
		}
		return n >= 2
	})
	if c.Prefixes() != 1 {
		t.Fatalf("prefixes = %d", c.Prefixes())
	}
}

// beaconTarget counts beacon actions.
type beaconTarget struct {
	mu        sync.Mutex
	announces int
	withdraws int
}

func (b *beaconTarget) BeaconAnnounce(netip.Prefix) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.announces++
	return nil
}

func (b *beaconTarget) BeaconWithdraw(netip.Prefix) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.withdraws++
	return nil
}

func (b *beaconTarget) counts() (int, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.announces, b.withdraws
}

func TestBeaconSchedule(t *testing.T) {
	v := clock.NewVirtual(epoch)
	tgt := &beaconTarget{}
	b := NewBeacon(prefix("100.64.1.0/24"), 4*time.Hour, tgt, v)
	if b.Up() {
		t.Fatal("beacon started up")
	}
	v.Advance(2 * time.Hour) // first announce
	if a, w := tgt.counts(); a != 1 || w != 0 {
		t.Fatalf("after 2h: a=%d w=%d", a, w)
	}
	if !b.Up() {
		t.Fatal("not up after first fire")
	}
	v.Advance(2 * time.Hour) // withdraw
	if a, w := tgt.counts(); a != 1 || w != 1 {
		t.Fatalf("after 4h: a=%d w=%d", a, w)
	}
	v.Advance(24 * time.Hour)
	a, w := tgt.counts()
	if a+w != b.Fires() || a < 6 {
		t.Fatalf("after a day: a=%d w=%d fires=%d", a, w, b.Fires())
	}
	// Alternation: announces and withdraws differ by at most one.
	if d := a - w; d < -1 || d > 1 {
		t.Fatalf("lost alternation: a=%d w=%d", a, w)
	}
	b.Stop()
	before := b.Fires()
	v.Advance(24 * time.Hour)
	if b.Fires() != before {
		t.Fatal("beacon fired after Stop")
	}
}
