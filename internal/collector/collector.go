// Package collector implements passive control-plane observation: a
// route collector in the style of RouteViews/RIPE RIS (the paper's
// Table 1 "RC" column) that archives every BGP update its peers send,
// and BGP beacons (Table 1 "BC") — prefixes announced and withdrawn on
// a fixed schedule to provide ground truth for convergence studies.
//
// The testbed uses collectors both as experiment instrumentation (did
// my announcement propagate? how long did convergence take?) and to
// reproduce the §2 example research that needs them (route-injection
// convergence measurements à la Labovitz).
package collector

import (
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"peering/internal/bgp"
	"peering/internal/clock"
	"peering/internal/rib"
	"peering/internal/telemetry"
	"peering/internal/wire"
)

// UpdateRecord is one archived BGP message.
type UpdateRecord struct {
	Time   time.Time
	PeerAS uint32
	// Withdrawn and Reach list the affected prefixes.
	Withdrawn []netip.Prefix
	Reach     []netip.Prefix
	// Path is the AS path of the announcement (nil for withdrawals).
	Path []uint32
}

// DefaultLogCap bounds the in-memory update log. At ~100 bytes per
// record this caps the log near 6 MiB; older records are evicted in
// FIFO order (they have already reached the MRT archive, if one is
// attached).
const DefaultLogCap = 65536

// memSampleInterval is how many archived updates pass between process
// heap samples when a memory watermark is armed: runtime.ReadMemStats
// briefly stops the world, so it must stay off the per-update path.
const memSampleInterval = 256

// Collector is a passive BGP archive.
type Collector struct {
	name string
	asn  uint32
	id   netip.Addr
	clk  clock.Clock

	mu      sync.Mutex
	log     []UpdateRecord
	logCap  int
	logHead int // index of the oldest record once log is full
	dropped uint64
	rib     *rib.LocRIB
	peers   int
	watches []*watch

	arch         *archiveSink
	mDropped     *telemetry.Counter
	mArchiveErrs *telemetry.Counter
	mMemSheds    *telemetry.Counter

	// Memory-watermark shedding: above memWatermark bytes of heap, the
	// collector sheds its optional work — the update ring is halved and
	// new records plus MRT buffering are skipped — until usage drops back
	// under the line. The merged RIB and pending watches keep running;
	// they are what experiments depend on.
	memWatermark uint64
	memUsage     func() uint64 // heap sampler; replaceable in tests
	memCountdown int           // archived updates until the next sample
	shedding     bool
	memSheds     uint64

	// intern canonicalizes attribute sets across the ring buffer and the
	// merged RIB; pathCache memoizes the flattened AS path per canonical
	// set, since every archived record of a stable route repeats it.
	intern    *wire.InternTable
	pathCache map[*wire.Attrs][]uint32
}

// watch is a pending WaitForPrefix.
type watch struct {
	prefix   netip.Prefix
	withdraw bool
	ch       chan UpdateRecord
}

// New creates a collector with its own (unannounced) ASN.
func New(name string, asn uint32, id netip.Addr, clk clock.Clock) *Collector {
	if clk == nil {
		clk = clock.System
	}
	return &Collector{
		name: name, asn: asn, id: id, clk: clk, logCap: DefaultLogCap, rib: rib.NewLocRIB(),
		intern:    wire.NewInternTable(),
		pathCache: make(map[*wire.Attrs][]uint32),
		memUsage:  heapInUse,
	}
}

// SetLogCap bounds the in-memory update log to n records (n <= 0 means
// unbounded). Shrinking below the current size evicts the oldest
// records.
func (c *Collector) SetLogCap(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	all := c.copyLogLocked(make([]UpdateRecord, 0, len(c.log)))
	if n > 0 && len(all) > n {
		evicted := len(all) - n
		all = all[evicted:]
		c.dropped += uint64(evicted)
		if c.mDropped != nil {
			c.mDropped.Add(uint64(evicted))
		}
	}
	c.log = all
	c.logHead = 0
	c.logCap = n
}

// Dropped reports how many log records have been evicted by the cap.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// SetMemoryWatermark arms process-level memory shedding: once heap
// usage reaches bytes, the collector halves its update ring and stops
// buffering new records or MRT archive writes until usage falls back
// under the watermark. Zero disarms it (the default).
func (c *Collector) SetMemoryWatermark(bytes uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memWatermark = bytes
	c.memCountdown = 0 // sample on the very next archived update
	if bytes == 0 {
		c.shedding = false
	}
}

// Shedding reports whether the collector is currently above its memory
// watermark and shedding optional work.
func (c *Collector) Shedding() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shedding
}

// MemorySheds reports how many updates have been dropped from the ring
// and archive by watermark shedding.
func (c *Collector) MemorySheds() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memSheds
}

// heapInUse is the default memory sampler.
func heapInUse() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// memPressure re-samples heap usage every memSampleInterval archived
// updates and reports whether this update's optional work (ring record,
// MRT buffering) must be shed. Entering the shedding state halves the
// ring immediately — holding memory is the problem, so eviction cannot
// wait for organic churn.
func (c *Collector) memPressure() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.memWatermark == 0 {
		return false
	}
	c.memCountdown--
	if c.memCountdown < 0 {
		c.memCountdown = memSampleInterval - 1
		if c.memUsage() >= c.memWatermark {
			if !c.shedding {
				c.shedding = true
				c.halveLogLocked()
			}
		} else {
			c.shedding = false
		}
	}
	if c.shedding {
		c.memSheds++
		if c.mMemSheds != nil {
			c.mMemSheds.Inc()
		}
	}
	return c.shedding
}

// halveLogLocked evicts the oldest half of the update ring. Caller
// holds c.mu.
func (c *Collector) halveLogLocked() {
	n := len(c.log)
	if n < 2 {
		return
	}
	all := c.copyLogLocked(make([]UpdateRecord, 0, n))
	evicted := n - n/2
	c.log = append(c.log[:0], all[evicted:]...)
	c.logHead = 0
	c.dropped += uint64(evicted)
	if c.mDropped != nil {
		c.mDropped.Add(uint64(evicted))
	}
}

// Instrument registers the collector's instrument set on reg: log size
// and evictions, plus MRT archival errors.
func (c *Collector) Instrument(reg *telemetry.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mDropped = reg.Counter("peering_collector_log_dropped_total",
		"Update-log records evicted by the ring-buffer cap.")
	c.mArchiveErrs = reg.Counter("peering_collector_archive_errors_total",
		"Updates or snapshots the collector failed to archive as MRT.")
	c.mMemSheds = reg.Counter("peering_collector_memory_sheds_total",
		"Updates whose ring record and MRT buffering were shed above the memory watermark.")
	c.mDropped.Add(c.dropped)
	c.mMemSheds.Add(c.memSheds)
	reg.GaugeFunc("peering_collector_shedding",
		"1 while the collector is above its memory watermark and shedding optional work.",
		func() float64 {
			if c.Shedding() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("peering_collector_log_records",
		"Update records currently held in the collector's in-memory log.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.log))
		})
}

// appendLogLocked adds rec to the log, evicting the oldest record when
// the cap is reached. Caller holds c.mu.
func (c *Collector) appendLogLocked(rec UpdateRecord) {
	if c.logCap > 0 && len(c.log) >= c.logCap {
		c.log[c.logHead] = rec
		c.logHead = (c.logHead + 1) % len(c.log)
		c.dropped++
		if c.mDropped != nil {
			c.mDropped.Inc()
		}
		return
	}
	c.log = append(c.log, rec)
}

// copyLogLocked appends the log's records to out in arrival order.
// Caller holds c.mu.
func (c *Collector) copyLogLocked(out []UpdateRecord) []UpdateRecord {
	out = append(out, c.log[c.logHead:]...)
	return append(out, c.log[:c.logHead]...)
}

// ASN returns the collector's AS number.
func (c *Collector) ASN() uint32 { return c.asn }

// RouterID returns the collector's BGP identifier.
func (c *Collector) RouterID() netip.Addr { return c.id }

// AddPeer runs a collecting session over conn; the remote side is a
// full BGP speaker that exports its table to us.
func (c *Collector) AddPeer(conn net.Conn, peerASN uint32) *bgp.Session {
	c.mu.Lock()
	c.peers++
	c.mu.Unlock()
	sess := bgp.New(conn, bgp.Config{
		LocalAS:  c.asn,
		LocalID:  c.id,
		PeerAS:   peerASN,
		Clock:    c.clk,
		Describe: fmt.Sprintf("%s-peer-as%d", c.name, peerASN),
	}, &peerHandler{c: c})
	go sess.Run()
	return sess
}

type peerHandler struct{ c *Collector }

func (h *peerHandler) Established(*bgp.Session) {}

func (h *peerHandler) UpdateReceived(sess *bgp.Session, upd *wire.Update) {
	h.c.archive(sess, upd)
}

func (h *peerHandler) Closed(*bgp.Session, error) {
	h.c.mu.Lock()
	h.c.peers--
	h.c.mu.Unlock()
}

// flatPath returns the memoized flattened AS path of a canonical
// (interned) attribute set. Records share the returned slice and treat
// it as read-only.
func (c *Collector) flatPath(a *wire.Attrs) []uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.pathCache[a]; ok {
		return p
	}
	p := a.ASList()
	c.pathCache[a] = p
	return p
}

// archive records an update and fires watches. Under memory-watermark
// pressure the optional work — the ring record and MRT buffering — is
// shed; the merged RIB and watches always run.
func (c *Collector) archive(sess *bgp.Session, upd *wire.Update) {
	shed := c.memPressure()
	if !shed {
		c.archiveMRT(sess, upd)
	}
	// Canonicalize once: the decoded attrs of a stable route resolve to
	// the pointer already held by the RIB, the log, and the path cache.
	upd.Attrs = c.intern.Intern(upd.Attrs)
	rec := UpdateRecord{Time: c.clk.Now(), PeerAS: sess.PeerAS()}
	for _, n := range upd.Withdrawn {
		rec.Withdrawn = append(rec.Withdrawn, n.Prefix)
	}
	if upd.Attrs != nil {
		rec.Path = c.flatPath(upd.Attrs)
		for _, n := range upd.Reach {
			rec.Reach = append(rec.Reach, n.Prefix)
		}
	}
	if len(rec.Withdrawn) == 0 && len(rec.Reach) == 0 {
		return
	}

	c.mu.Lock()
	if !shed {
		c.appendLogLocked(rec)
	}
	// Maintain the collector's merged RIB view.
	src := rib.PeerKey{Addr: c.peerKeyAddr(sess)}
	for _, p := range rec.Withdrawn {
		c.rib.Withdraw(p, src)
	}
	if upd.Attrs != nil {
		for _, p := range rec.Reach {
			c.rib.Update(&rib.Route{
				Prefix: p, Attrs: upd.Attrs, Src: src,
				PeerAS: sess.PeerAS(), PeerID: sess.PeerID(), EBGP: true,
				Learned: rec.Time,
			})
		}
	}
	fired := c.watches[:0]
	var toFire []*watch
	for _, w := range c.watches {
		hit := false
		list := rec.Reach
		if w.withdraw {
			list = rec.Withdrawn
		}
		for _, p := range list {
			if p == w.prefix {
				hit = true
				break
			}
		}
		if hit {
			toFire = append(toFire, w)
		} else {
			fired = append(fired, w)
		}
	}
	c.watches = fired
	c.mu.Unlock()
	for _, w := range toFire {
		w.ch <- rec
	}
}

// peerKeyAddr derives a stable RIB key for a session.
func (c *Collector) peerKeyAddr(sess *bgp.Session) netip.Addr {
	if id := sess.PeerID(); id.IsValid() {
		return id
	}
	return netip.AddrFrom4([4]byte{0, 0, 0, 1})
}

// Log returns a copy of the archived updates (oldest first; records
// beyond the log cap have been evicted).
func (c *Collector) Log() []UpdateRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.copyLogLocked(make([]UpdateRecord, 0, len(c.log)))
}

// UpdatesFor returns archived updates mentioning prefix p, oldest
// first.
func (c *Collector) UpdatesFor(p netip.Prefix) []UpdateRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []UpdateRecord
	scan := func(r UpdateRecord) {
		for _, x := range r.Reach {
			if x == p {
				out = append(out, r)
				return
			}
		}
		for _, x := range r.Withdrawn {
			if x == p {
				out = append(out, r)
				return
			}
		}
	}
	for _, r := range c.log[c.logHead:] {
		scan(r)
	}
	for _, r := range c.log[:c.logHead] {
		scan(r)
	}
	return out
}

// HasRoute reports whether the collector currently holds a route for p.
func (c *Collector) HasRoute(p netip.Prefix) bool {
	return c.rib.Best(p) != nil
}

// Route returns the collector's current best route for p.
func (c *Collector) Route(p netip.Prefix) *rib.Route {
	return c.rib.Best(p)
}

// Prefixes reports how many prefixes the collector sees.
func (c *Collector) Prefixes() int { return c.rib.Prefixes() }

// WaitForPrefix blocks until an update for p arrives (announcement, or
// withdrawal if withdraw is set), returning the record. Use for
// convergence measurements. The deadline runs on the collector's
// injected clock, so virtual-clock tests never sleep real time.
func (c *Collector) WaitForPrefix(p netip.Prefix, withdraw bool, timeout time.Duration) (UpdateRecord, error) {
	w := &watch{prefix: p, withdraw: withdraw, ch: make(chan UpdateRecord, 1)}
	c.mu.Lock()
	c.watches = append(c.watches, w)
	c.mu.Unlock()
	select {
	case rec := <-w.ch:
		return rec, nil
	case <-c.clk.After(timeout):
		return UpdateRecord{}, fmt.Errorf("collector: no update for %v within %v", p, timeout)
	}
}

// ConvergenceStats summarizes update churn for one prefix — the
// Labovitz-style metric (§2: "route injection was the basis for
// influential work on BGP convergence").
type ConvergenceStats struct {
	Prefix      netip.Prefix
	Updates     int
	Withdrawals int
	First, Last time.Time
	// Duration is Last − First: how long the event's churn lasted.
	Duration time.Duration
	// DistinctPaths counts distinct AS paths observed.
	DistinctPaths int
}

// Convergence computes churn statistics for p over the archive since t.
func (c *Collector) Convergence(p netip.Prefix, since time.Time) ConvergenceStats {
	st := ConvergenceStats{Prefix: p}
	paths := map[string]bool{}
	for _, r := range c.UpdatesFor(p) {
		if r.Time.Before(since) {
			continue
		}
		if st.Updates == 0 {
			st.First = r.Time
		}
		st.Last = r.Time
		st.Updates++
		for _, x := range r.Withdrawn {
			if x == p {
				st.Withdrawals++
			}
		}
		if r.Path != nil {
			paths[fmt.Sprint(r.Path)] = true
		}
	}
	st.DistinctPaths = len(paths)
	if st.Updates > 0 {
		st.Duration = st.Last.Sub(st.First)
	}
	return st
}

// ---------------------------------------------------------------------
// Beacons

// Announcer is anything that can announce and withdraw a prefix — a
// router.Router, a client.Client, or a test double.
type Announcer interface {
	BeaconAnnounce(p netip.Prefix) error
	BeaconWithdraw(p netip.Prefix) error
}

// Beacon announces a prefix for half its period and withdraws it for
// the other half, forever — the Mao et al. BGP beacon schedule.
type Beacon struct {
	Prefix netip.Prefix
	Period time.Duration

	ann   Announcer
	clk   clock.Clock
	mu    sync.Mutex
	up    bool
	fires int
	timer clock.Timer
	stop  bool
}

// NewBeacon starts a beacon on ann with the given period (the classic
// schedule uses 4h: 2h up, 2h down). The first announcement fires
// after period/2.
func NewBeacon(prefix netip.Prefix, period time.Duration, ann Announcer, clk clock.Clock) *Beacon {
	if clk == nil {
		clk = clock.System
	}
	b := &Beacon{Prefix: prefix, Period: period, ann: ann, clk: clk}
	b.timer = clk.AfterFunc(period/2, b.tick)
	return b
}

func (b *Beacon) tick() {
	b.mu.Lock()
	if b.stop {
		b.mu.Unlock()
		return
	}
	b.up = !b.up
	up := b.up
	b.fires++
	b.timer = b.clk.AfterFunc(b.Period/2, b.tick)
	b.mu.Unlock()
	if up {
		b.ann.BeaconAnnounce(b.Prefix)
	} else {
		b.ann.BeaconWithdraw(b.Prefix)
	}
}

// Up reports whether the beacon is currently announced.
func (b *Beacon) Up() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.up
}

// Fires reports how many transitions have occurred.
func (b *Beacon) Fires() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fires
}

// Stop halts the beacon (leaving its last state in place).
func (b *Beacon) Stop() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stop = true
	if b.timer != nil {
		b.timer.Stop()
	}
}
