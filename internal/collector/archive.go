// MRT sink: the collector's bridge to the internal/mrt archive. Every
// update a peer sends is re-encoded on the session's negotiated codec
// options and appended to the archive as a BGP4MP_ET record; each time
// the archive seals a segment, the collector dumps its merged RIB as a
// TABLE_DUMP_V2 snapshot file beside it.

package collector

import (
	"fmt"
	"net/netip"
	"path/filepath"
	"sort"

	"peering/internal/bgp"
	"peering/internal/mrt"
	"peering/internal/rib"
	"peering/internal/wire"
)

// archiveSink tracks the attached archive and its snapshot history.
// Fields are guarded by Collector.mu.
type archiveSink struct {
	a            *mrt.Archive
	snapSeq      int
	snapshots    []string
	lastSnapshot string
}

// AttachArchive routes every subsequent update into a and hooks its
// rotations to dump RIB snapshots. Attach before peers connect to
// capture a complete trace.
func (c *Collector) AttachArchive(a *mrt.Archive) {
	c.mu.Lock()
	c.arch = &archiveSink{a: a}
	c.mu.Unlock()
	a.SetOnRotate(func(string, uint64) { c.dumpSnapshot() })
}

// ArchiveStatus returns the attached archive's status, or ok=false when
// none is attached.
func (c *Collector) ArchiveStatus() (st mrt.ArchiveStatus, snapshots []string, ok bool) {
	c.mu.Lock()
	sink := c.arch
	if sink != nil {
		snapshots = append([]string(nil), sink.snapshots...)
	}
	c.mu.Unlock()
	if sink == nil {
		return mrt.ArchiveStatus{}, nil, false
	}
	return sink.a.Status(), snapshots, true
}

// RotateArchive seals the current archive segment and dumps a RIB
// snapshot, returning both paths. An empty segment yields ("", "", nil)
// — there was nothing to seal.
func (c *Collector) RotateArchive() (sealed, snapshot string, err error) {
	c.mu.Lock()
	sink := c.arch
	c.mu.Unlock()
	if sink == nil {
		return "", "", fmt.Errorf("collector %s: no archive attached", c.name)
	}
	sealed, err = sink.a.Rotate()
	if err != nil || sealed == "" {
		return "", "", err
	}
	// The rotation hook (dumpSnapshot) ran synchronously inside Rotate.
	c.mu.Lock()
	snapshot = sink.lastSnapshot
	c.mu.Unlock()
	return sealed, snapshot, nil
}

// archiveMRT appends one received update to the attached archive (a
// no-op without one). The message is re-encoded on the session's
// negotiated options, so the archived bytes match what the peer put on
// the wire.
func (c *Collector) archiveMRT(sess *bgp.Session, upd *wire.Update) {
	c.mu.Lock()
	sink := c.arch
	c.mu.Unlock()
	if sink == nil {
		return
	}
	opts := sess.Options()
	msg, err := wire.Marshal(upd, opts)
	if err != nil {
		c.archiveError()
		return
	}
	m := &mrt.BGP4MP{
		PeerAS:  sess.PeerAS(),
		LocalAS: c.asn,
		PeerIP:  c.peerKeyAddr(sess),
		LocalIP: c.id,
		Message: msg,
		AS4:     opts.AS4,
		AddPath: opts.AddPath,
	}
	rec, err := m.Record(c.clk.Now(), true)
	if err != nil {
		c.archiveError()
		return
	}
	if err := sink.a.WriteRecord(rec); err != nil {
		c.archiveError()
	}
}

// dumpSnapshot writes the collector's merged RIB beside the archive's
// segments as rib-<time>-<seq>.mrt; it runs on every segment seal.
func (c *Collector) dumpSnapshot() {
	c.mu.Lock()
	sink := c.arch
	if sink == nil {
		c.mu.Unlock()
		return
	}
	sink.snapSeq++
	name := fmt.Sprintf("rib-%s-%04d.mrt", c.clk.Now().UTC().Format("20060102T150405Z"), sink.snapSeq)
	path := filepath.Join(sink.a.Dir(), name)
	c.mu.Unlock()

	if err := c.DumpRIB(path); err != nil {
		c.archiveError()
		c.mu.Lock()
		sink.lastSnapshot = ""
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	sink.snapshots = append(sink.snapshots, path)
	sink.lastSnapshot = path
	c.mu.Unlock()
}

// DumpRIB writes the collector's current merged RIB to path as a
// TABLE_DUMP_V2 snapshot: one PEER_INDEX_TABLE record followed by one
// RIB record per prefix, in address order.
func (c *Collector) DumpRIB(path string) error {
	records, err := c.snapshotRecords()
	if err != nil {
		return err
	}
	var m *mrt.Metrics
	c.mu.Lock()
	if c.arch != nil {
		m = c.arch.a.Metrics()
	}
	c.mu.Unlock()
	return mrt.WriteFile(path, records, m)
}

// snapshotRecords builds the TABLE_DUMP_V2 record sequence for the
// current RIB.
func (c *Collector) snapshotRecords() ([]*mrt.Record, error) {
	now := c.clk.Now()

	// One walk collects every candidate path grouped by prefix and the
	// deduplicated peer set that advertised them.
	byPrefix := map[netip.Prefix][]*rib.Route{}
	type peerID struct {
		addr netip.Addr
		id   netip.Addr
		as   uint32
	}
	peerSet := map[peerID]bool{}
	c.rib.WalkAll(func(r *rib.Route) bool {
		byPrefix[r.Prefix] = append(byPrefix[r.Prefix], r)
		peerSet[peerID{addr: r.Src.Addr, id: r.PeerID, as: r.PeerAS}] = true
		return true
	})

	peers := make([]peerID, 0, len(peerSet))
	for p := range peerSet {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool {
		if peers[i].as != peers[j].as {
			return peers[i].as < peers[j].as
		}
		return peers[i].addr.Less(peers[j].addr)
	})
	index := map[peerID]uint16{}
	pi := &mrt.PeerIndex{CollectorID: c.id, ViewName: c.name}
	for i, p := range peers {
		index[p] = uint16(i)
		bgpID := p.id
		if !bgpID.Is4() {
			bgpID = netip.AddrFrom4([4]byte{0, 0, 0, 1})
		}
		pi.Peers = append(pi.Peers, mrt.Peer{BGPID: bgpID, Addr: p.addr, AS: p.as})
	}
	head, err := pi.Record(now)
	if err != nil {
		return nil, fmt.Errorf("collector %s: peer index: %w", c.name, err)
	}
	records := []*mrt.Record{head}

	prefixes := make([]netip.Prefix, 0, len(byPrefix))
	for p := range byPrefix {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		if prefixes[i].Addr() != prefixes[j].Addr() {
			return prefixes[i].Addr().Less(prefixes[j].Addr())
		}
		return prefixes[i].Bits() < prefixes[j].Bits()
	})
	for seq, p := range prefixes {
		routes := byPrefix[p]
		r := &mrt.RIB{Sequence: uint32(seq), Prefix: p}
		for _, rt := range routes {
			if rt.Src.PathID != 0 {
				r.AddPath = true
			}
		}
		for _, rt := range routes {
			r.Entries = append(r.Entries, mrt.RIBEntry{
				PeerIndex:  index[peerID{addr: rt.Src.Addr, id: rt.PeerID, as: rt.PeerAS}],
				Originated: rt.Learned,
				PathID:     rt.Src.PathID,
				Attrs:      rt.Attrs,
			})
		}
		rec, err := r.Record(now)
		if err != nil {
			return nil, fmt.Errorf("collector %s: RIB record for %v: %w", c.name, p, err)
		}
		records = append(records, rec)
	}
	return records, nil
}

// archiveError counts one failed archival operation.
func (c *Collector) archiveError() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mArchiveErrs != nil {
		c.mArchiveErrs.Inc()
	}
}
