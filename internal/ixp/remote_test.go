package ixp

import (
	"testing"
)

// buildDeployment models the paper's footprint: a physical AMS-IX
// server, a physical Phoenix-IX server (added September 2014), transit
// sites at universities, and remote peering to smaller IXPs via a
// Hibernia-style provider.
func buildDeployment(t *testing.T) *Deployment {
	t.Helper()
	g := testGraph()
	d := &Deployment{}

	ams := BuildAMSIX(g, DefaultAMSIXSpec())
	d.AddPhysical("amsterdam01", ams.Join(7, true))

	phx := BuildIXP(g, "Phoenix-IX", AMSIXSpec{
		Seed: 77, Members: 120, OnRouteServer: 90, Open: 15, Closed: 3, CaseByCase: 8, Unlisted: 4,
	})
	d.AddPhysical("phoenix01", phx.Join(8, true))

	for i, name := range []string{"LINX", "DE-CIX", "France-IX"} {
		x := BuildIXP(g, name, AMSIXSpec{
			Seed: int64(100 + i), Members: 200, OnRouteServer: 150, Open: 20, Closed: 5, CaseByCase: 15, Unlisted: 10,
		})
		// Remote peering: route-server only (no bilateral campaign —
		// there is no one on site to chase sessions).
		d.AddRemote(name, "hibernia", x.Join(int64(200+i), false))
	}

	for _, u := range []string{"gatech01", "usc01", "ufmg01", "wisc01"} {
		d.AddTransit(u)
	}
	return d
}

func TestDeploymentComposition(t *testing.T) {
	d := buildDeployment(t)
	counts := d.SiteCount()
	if counts[SitePhysical] != 2 || counts[SiteRemote] != 3 || counts[SiteTransit] != 4 {
		t.Fatalf("site counts = %v", counts)
	}
	if got := len(d.Sites); got != 9 {
		t.Fatalf("sites = %d, want 9 (the paper's server count)", got)
	}
}

func TestDeploymentExpandsFootprint(t *testing.T) {
	g := testGraph()
	amsOnly := &Deployment{}
	amsOnly.AddPhysical("amsterdam01", BuildAMSIX(g, DefaultAMSIXSpec()).Join(7, true))

	full := buildDeployment(t)

	if len(full.PeerASNs()) <= len(amsOnly.PeerASNs()) {
		t.Fatalf("expansion did not add peers: %d vs %d", len(full.PeerASNs()), len(amsOnly.PeerASNs()))
	}
	if full.ReachablePrefixCount() < amsOnly.ReachablePrefixCount() {
		t.Fatalf("expansion shrank reach: %d vs %d",
			full.ReachablePrefixCount(), amsOnly.ReachablePrefixCount())
	}
	if len(full.Countries()) < len(amsOnly.Countries()) {
		t.Fatal("expansion shrank country coverage")
	}
}

func TestDeploymentPeersAreUnion(t *testing.T) {
	d := buildDeployment(t)
	union := d.PeerASNs()
	// Every site's peers are contained in the union.
	for _, s := range d.Sites {
		if s.Presence == nil {
			continue
		}
		for _, asn := range s.Presence.AllPeers() {
			if !union[asn] {
				t.Fatalf("site %s peer %d missing from union", s.Name, asn)
			}
		}
	}
}

func TestEmptyDeployment(t *testing.T) {
	d := &Deployment{}
	d.AddTransit("lonely-university")
	if d.ReachablePrefixCount() != 0 || len(d.PeerASNs()) != 0 || len(d.Countries()) != 0 {
		t.Fatal("transit-only deployment should have no peer footprint")
	}
}

func TestBuildIXPNamed(t *testing.T) {
	g := testGraph()
	x := BuildIXP(g, "Phoenix-IX", AMSIXSpec{
		Seed: 1, Members: 50, OnRouteServer: 40, Open: 5, Closed: 1, CaseByCase: 2, Unlisted: 2,
	})
	if x.Name != "Phoenix-IX" {
		t.Fatalf("name = %q", x.Name)
	}
	if len(x.MemberASNs()) != 50 || len(x.RouteServerMembers()) != 40 {
		t.Fatalf("membership = %d/%d", len(x.MemberASNs()), len(x.RouteServerMembers()))
	}
}
