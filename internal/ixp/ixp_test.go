package ixp

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"peering/internal/dataplane"
	"peering/internal/internet"
	"peering/internal/policy"
	"peering/internal/router"
)

func testGraph() *internet.Graph {
	return internet.Generate(internet.Spec{
		Seed: 42, ASes: 8000, Tier1s: 12, Transits: 700, CDNs: 16, Contents: 40, Prefixes: 60000,
	})
}

func TestBuildAMSIXComposition(t *testing.T) {
	g := testGraph()
	x := BuildAMSIX(g, DefaultAMSIXSpec())
	if got := len(x.MemberASNs()); got != 669 {
		t.Fatalf("members = %d, want 669", got)
	}
	if got := len(x.RouteServerMembers()); got != 554 {
		t.Fatalf("route-server members = %d, want 554", got)
	}
	if got := len(x.NonRouteServerMembers()); got != 115 {
		t.Fatalf("non-RS members = %d, want 115", got)
	}
	pc := x.PolicyCounts()
	if pc[policy.PeeringOpen] != 48 || pc[policy.PeeringClosed] != 12 ||
		pc[policy.PeeringCaseByCase] != 40 || pc[policy.PeeringUnlisted] != 15 {
		t.Fatalf("policy split = %v, want 48/12/40/15", pc)
	}
}

func TestBuildAMSIXDeterministic(t *testing.T) {
	g := testGraph()
	x1 := BuildAMSIX(g, DefaultAMSIXSpec())
	x2 := BuildAMSIX(g, DefaultAMSIXSpec())
	m1, m2 := x1.MemberASNs(), x2.MemberASNs()
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("same seed gave different membership")
		}
	}
}

func TestJoinRouteServerInstantPeers(t *testing.T) {
	g := testGraph()
	x := BuildAMSIX(g, DefaultAMSIXSpec())
	pr := x.Join(1, false)
	if len(pr.RSPeers) != 554 {
		t.Fatalf("RS peers = %d", len(pr.RSPeers))
	}
	if len(pr.BilateralPeers) != 0 {
		t.Fatal("bilateral peers without requests")
	}
}

func TestBilateralCampaignOutcomes(t *testing.T) {
	g := testGraph()
	x := BuildAMSIX(g, DefaultAMSIXSpec())
	pr := x.Join(7, true)
	if len(pr.Outcomes) != 115 {
		t.Fatalf("outcomes = %d, want 115 requests", len(pr.Outcomes))
	}
	// All 12 closed members decline; most of the 48 open accept.
	declined, acceptedOpen := 0, 0
	for asn, o := range pr.Outcomes {
		m := x.Members[asn]
		if m.Policy == policy.PeeringClosed && o != OutcomeDeclined {
			t.Fatalf("closed member %d returned %v", asn, o)
		}
		if o == OutcomeDeclined {
			declined++
		}
		if m.Policy == policy.PeeringOpen && o.Accepted() {
			acceptedOpen++
		}
	}
	if acceptedOpen < 40 { // "vast majority" of 48
		t.Fatalf("open accepts = %d of 48, want vast majority", acceptedOpen)
	}
	if len(pr.BilateralPeers) == 0 {
		t.Fatal("no bilateral peers at all")
	}
}

func TestPresenceStatistics(t *testing.T) {
	g := testGraph()
	x := BuildAMSIX(g, DefaultAMSIXSpec())
	pr := x.Join(7, true)

	countries := pr.Countries()
	if len(countries) < 40 {
		t.Fatalf("peer countries = %d, want broad coverage", len(countries))
	}
	ranked := g.RankByCone()
	top50 := pr.TopRankedPeerCount(ranked, 50)
	top100 := pr.TopRankedPeerCount(ranked, 100)
	if top50 < 5 {
		t.Fatalf("top-50 peers = %d, want several", top50)
	}
	if top100 < top50 {
		t.Fatal("top-100 count below top-50 count")
	}
	reach := pr.ReachablePrefixCount()
	total := g.TotalPrefixes()
	frac := float64(reach) / float64(total)
	if frac < 0.10 || frac > 0.60 {
		t.Fatalf("peer-reachable fraction = %.2f (reach %d of %d), want ≈¼", frac, reach, total)
	}
}

func TestPeerRouteCountsHeavyTail(t *testing.T) {
	g := testGraph()
	x := BuildAMSIX(g, DefaultAMSIXSpec())
	pr := x.Join(7, true)
	counts := pr.PeerRouteCounts()
	big, small := 0, 0
	for _, n := range counts {
		if n > 1000 {
			big++
		}
		if n < 100 {
			small++
		}
	}
	// Heavy tail: few big exporters, many small ones (paper: 5 peers
	// >10K routes, 307 peers <100, at full scale).
	if big == 0 || small == 0 || small < big {
		t.Fatalf("route count distribution not heavy-tailed: %d big, %d small of %d", big, small, len(counts))
	}
}

func TestRequestPeeringDistribution(t *testing.T) {
	g := testGraph()
	x := BuildAMSIX(g, DefaultAMSIXSpec())
	rng := rand.New(rand.NewSource(9))
	// Find an open member and hammer it: accepts should dominate.
	var open uint32
	for _, asn := range x.NonRouteServerMembers() {
		if x.Members[asn].Policy == policy.PeeringOpen {
			open = asn
			break
		}
	}
	acc := 0
	for i := 0; i < 200; i++ {
		if x.RequestPeering(open, rng).Accepted() {
			acc++
		}
	}
	if acc < 160 {
		t.Fatalf("open member accepted only %d/200", acc)
	}
	if x.RequestPeering(99999999, rng) != OutcomeNoResponse {
		t.Fatal("unknown member should not respond")
	}
}

// --------------------------------------------------------------------
// Protocol-level fabric

func lanPrefix() netip.Prefix { return netip.MustParsePrefix("80.249.208.0/21") }

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestFabricRouteServerMultilateral(t *testing.T) {
	f := NewFabric("ams-ix", lanPrefix(), 6777) // AMS-IX RS ASN
	a := router.New(router.Config{AS: 100, RouterID: netip.MustParseAddr("10.0.0.1")})
	b := router.New(router.Config{AS: 200, RouterID: netip.MustParseAddr("10.0.0.2")})
	c := router.New(router.Config{AS: 300, RouterID: netip.MustParseAddr("10.0.0.3")})
	ma := f.Join(a, nil)
	f.Join(b, nil)
	f.Join(c, nil)

	a.Announce(netip.MustParsePrefix("100.64.0.0/24"), router.AnnounceSpec{})
	waitFor(t, func() bool {
		return b.LocRIB().Best(netip.MustParsePrefix("100.64.0.0/24")) != nil &&
			c.LocRIB().Best(netip.MustParsePrefix("100.64.0.0/24")) != nil
	})
	rt := b.LocRIB().Best(netip.MustParsePrefix("100.64.0.0/24"))
	// Transparent RS: path contains only the member AS, not the RS ASN.
	if got := rt.Attrs.PathString(); got != "100" {
		t.Fatalf("path through route server = %q, want \"100\"", got)
	}
	// Next hop is the announcing member's LAN address, untouched.
	if rt.Attrs.NextHop != ma.LANAddr {
		t.Fatalf("next hop = %v, want member LAN %v", rt.Attrs.NextHop, ma.LANAddr)
	}
}

func TestFabricBilateral(t *testing.T) {
	f := NewFabric("phoenix-ix", lanPrefix(), 0) // no route server
	a := router.New(router.Config{AS: 100, RouterID: netip.MustParseAddr("10.0.0.1")})
	b := router.New(router.Config{AS: 200, RouterID: netip.MustParseAddr("10.0.0.2")})
	ma := f.Join(a, nil)
	mb := f.Join(b, nil)
	f.ConnectBilateral(ma, mb)
	a.Announce(netip.MustParsePrefix("100.64.0.0/24"), router.AnnounceSpec{})
	waitFor(t, func() bool { return b.LocRIB().Best(netip.MustParsePrefix("100.64.0.0/24")) != nil })
	rt := b.LocRIB().Best(netip.MustParsePrefix("100.64.0.0/24"))
	if rt.Attrs.PathString() != "100" {
		t.Fatalf("bilateral path = %q", rt.Attrs.PathString())
	}
}

func TestFabricDataplaneFollowsRouteServer(t *testing.T) {
	f := NewFabric("ams-ix", lanPrefix(), 6777)
	// Two members with dataplane routers.
	import1 := netip.MustParsePrefix("100.64.0.0/24")

	a := router.New(router.Config{AS: 100, RouterID: netip.MustParseAddr("10.0.0.1")})
	dpA := dataplane.NewRouter("as100")
	b := router.New(router.Config{AS: 200, RouterID: netip.MustParseAddr("10.0.0.2")})
	dpB := dataplane.NewRouter("as200")
	ma := f.Join(a, dpA)
	mb := f.Join(b, dpB)

	// A originates the prefix; its dataplane claims an address in it.
	dpA.AddLocal(netip.MustParseAddr("100.64.0.7"))
	a.Announce(import1, router.AnnounceSpec{})
	waitFor(t, func() bool { return b.LocRIB().Best(import1) != nil })
	// The switch learned the route from the RS (async via OnBestChange).
	waitFor(t, func() bool { return f.Switch.LookupRoute(netip.MustParseAddr("100.64.0.7")) != nil })

	// B's dataplane routes via the switch; switch follows the RS view.
	dpB.SetRoute(import1, ma.LANAddr, mb.MemberIface)
	pkt := dataplane.NewPacket(mb.LANAddr, netip.MustParseAddr("100.64.0.7"), dataplane.ProtoICMP)
	pkt.ICMP = dataplane.ICMPEchoRequest
	dpB.Originate(pkt)
	// Delivery is synchronous once routes exist: A's dataplane has
	// processed the echo request by now.
	if dpA.Stats().DeliveredLocal != 1 {
		t.Fatalf("A delivered = %d, want 1", dpA.Stats().DeliveredLocal)
	}
}

func TestFabricMemberLookup(t *testing.T) {
	f := NewFabric("ix", lanPrefix(), 0)
	a := router.New(router.Config{AS: 100, RouterID: netip.MustParseAddr("10.0.0.1")})
	m := f.Join(a, nil)
	if f.Member(100) != m {
		t.Fatal("Member lookup failed")
	}
	if f.Member(999) != nil {
		t.Fatal("unknown member should be nil")
	}
	if len(f.Members()) != 1 {
		t.Fatal("Members() wrong")
	}
	if !lanPrefix().Contains(m.LANAddr) {
		t.Fatalf("LAN addr %v outside LAN prefix", m.LANAddr)
	}
}
