package ixp

import (
	"hash/fnv"
	"time"
)

// This file turns SiteKind from a descriptive label into a live
// attachment model: every site derives a BackhaulProfile — the latency,
// capacity, and reliability of the path between the mux serving the
// site and the exchange itself. Physical sites sit on the exchange LAN;
// remote sites ride a provider's virtual layer 2 anchored at AMS-IX
// ("O Peer, Where Art Thou?" measures exactly this inflation); transit
// sites reach the Internet through a university upstream. The
// federation layer (internal/federation) uses these profiles to shape
// its backhaul links: a SiteRemote mux gets a latency-inflating,
// occasionally-flapping link driven by internal/clock.

// BackhaulProfile is the derived attachment quality of a site.
type BackhaulProfile struct {
	// RTT is the round-trip time between the mux and the exchange
	// fabric. ~1ms for a colocated server, tens to low hundreds of ms
	// for remote peering (the virtual L2 detours through the provider's
	// anchor point), ~15ms for university transit.
	RTT time.Duration
	// CapacityMbps is the attachment bandwidth: a colocated port runs
	// at exchange-LAN speed, a virtual L2 is capped by the provider's
	// tunnel, a university uplink sits in between.
	CapacityMbps int
	// FlapMTBF is the mean time between link flaps. Zero means the
	// attachment is not expected to flap (colocated ports); remote
	// virtual L2s flap when the provider re-routes its tunnel.
	FlapMTBF time.Duration
}

// Remote-peering RTT band: the virtual L2 detour adds 30–120ms
// depending on how far the exchange is from the provider's anchor.
const (
	remoteRTTFloor = 30 * time.Millisecond
	remoteRTTBand  = 90 * time.Millisecond
)

// Backhaul derives the site's attachment profile from its kind. The
// derivation is deterministic — remote-site RTT is hashed from the
// site and provider names, not drawn randomly — so chaos tests and
// benchmarks see identical topologies run over run.
func (s Site) Backhaul() BackhaulProfile {
	switch s.Kind {
	case SitePhysical:
		// Colocated on the exchange LAN: port-speed capacity,
		// sub-millisecond-class RTT, no flapping expected.
		return BackhaulProfile{RTT: time.Millisecond, CapacityMbps: 10_000}
	case SiteRemote:
		// Virtual L2 through the provider's anchor: RTT lands
		// deterministically in the remote band, capacity is the
		// provider tunnel's, and the tunnel re-routes (flaps) on the
		// order of hours.
		h := fnv.New32a()
		h.Write([]byte(s.Name))
		h.Write([]byte{0})
		h.Write([]byte(s.Provider))
		spread := time.Duration(h.Sum32()) % remoteRTTBand
		return BackhaulProfile{
			RTT:          remoteRTTFloor + spread,
			CapacityMbps: 1_000,
			FlapMTBF:     6 * time.Hour,
		}
	default:
		// University transit: metro-scale RTT to the upstream, a
		// typical campus uplink, stable.
		return BackhaulProfile{RTT: 15 * time.Millisecond, CapacityMbps: 2_000}
	}
}
