package ixp

import (
	"testing"
	"time"
)

func TestBackhaulPhysical(t *testing.T) {
	p := Site{Name: "amsterdam01", Kind: SitePhysical}.Backhaul()
	if p.RTT != time.Millisecond {
		t.Fatalf("physical RTT = %v, want 1ms", p.RTT)
	}
	if p.CapacityMbps != 10_000 {
		t.Fatalf("physical capacity = %d, want 10000", p.CapacityMbps)
	}
	if p.FlapMTBF != 0 {
		t.Fatalf("physical FlapMTBF = %v, want 0 (no flapping)", p.FlapMTBF)
	}
}

func TestBackhaulRemoteInflatedAndDeterministic(t *testing.T) {
	s := Site{Name: "seattle01", Kind: SiteRemote, Provider: "hibernia"}
	p := s.Backhaul()
	if p.RTT < remoteRTTFloor || p.RTT >= remoteRTTFloor+remoteRTTBand {
		t.Fatalf("remote RTT = %v, want in [%v, %v)", p.RTT, remoteRTTFloor, remoteRTTFloor+remoteRTTBand)
	}
	phys := Site{Name: "seattle01", Kind: SitePhysical}.Backhaul()
	if p.RTT <= phys.RTT {
		t.Fatalf("remote RTT %v not inflated over physical %v", p.RTT, phys.RTT)
	}
	if p.FlapMTBF == 0 {
		t.Fatal("remote attachment should flap")
	}
	if p.CapacityMbps >= phys.CapacityMbps {
		t.Fatalf("remote capacity %d should be below a colocated port's %d", p.CapacityMbps, phys.CapacityMbps)
	}
	// Deterministic: same site+provider → same profile, every run.
	if again := s.Backhaul(); again != p {
		t.Fatalf("profile not deterministic: %+v vs %+v", again, p)
	}
}

func TestBackhaulRemoteSpread(t *testing.T) {
	// Different sites (or providers) should not all collapse onto one
	// RTT — the hash spreads them across the band.
	a := Site{Name: "seattle01", Kind: SiteRemote, Provider: "hibernia"}.Backhaul()
	b := Site{Name: "vienna01", Kind: SiteRemote, Provider: "hibernia"}.Backhaul()
	c := Site{Name: "seattle01", Kind: SiteRemote, Provider: "atrato"}.Backhaul()
	if a.RTT == b.RTT && b.RTT == c.RTT {
		t.Fatalf("no RTT spread: all %v", a.RTT)
	}
}

func TestBackhaulTransit(t *testing.T) {
	p := Site{Name: "gatech01", Kind: SiteTransit}.Backhaul()
	if p.RTT <= time.Millisecond || p.RTT >= remoteRTTFloor {
		t.Fatalf("transit RTT = %v, want between physical and remote floor", p.RTT)
	}
	if p.FlapMTBF != 0 {
		t.Fatalf("transit FlapMTBF = %v, want 0", p.FlapMTBF)
	}
}
