// Package ixp models Internet exchange points at two levels:
//
//   - a statistical membership model (BuildAMSIX) calibrated to §4.1 of
//     the paper — 669 member ASes, 554 on the route servers, and the
//     48/12/40/15 open/closed/case-by-case/unlisted policy split among
//     the rest — used for the connectivity evaluation; and
//   - a protocol-level Fabric with a live, transparent route server and
//     an emulated switching fabric, used when experiments need real BGP
//     sessions and real traffic across the IXP.
package ixp

import (
	"math/rand"
	"sort"

	"peering/internal/internet"
	"peering/internal/policy"
)

// MemberInfo is one IXP member in the statistical model.
type MemberInfo struct {
	ASN uint32
	// OnRouteServer marks multilateral peers.
	OnRouteServer bool
	// Policy is the member's bilateral peering policy (only meaningful
	// for members not on the route server, matching how §4.1 reports
	// it).
	Policy policy.PeeringKind
}

// IXP is the statistical model of one exchange.
type IXP struct {
	Name    string
	Graph   *internet.Graph
	Members map[uint32]*MemberInfo
	order   []uint32
}

// MemberASNs returns member ASNs in deterministic order.
func (x *IXP) MemberASNs() []uint32 {
	out := make([]uint32, len(x.order))
	copy(out, x.order)
	return out
}

// RouteServerMembers returns the ASNs peering via the route server.
func (x *IXP) RouteServerMembers() []uint32 {
	var out []uint32
	for _, asn := range x.order {
		if x.Members[asn].OnRouteServer {
			out = append(out, asn)
		}
	}
	return out
}

// NonRouteServerMembers returns members reachable only bilaterally.
func (x *IXP) NonRouteServerMembers() []uint32 {
	var out []uint32
	for _, asn := range x.order {
		if !x.Members[asn].OnRouteServer {
			out = append(out, asn)
		}
	}
	return out
}

// PolicyCounts tallies bilateral policies among non-route-server
// members — the 48/12/40/15 table of §4.1.
func (x *IXP) PolicyCounts() map[policy.PeeringKind]int {
	out := map[policy.PeeringKind]int{}
	for _, asn := range x.NonRouteServerMembers() {
		out[x.Members[asn].Policy]++
	}
	return out
}

// AMSIXSpec parameterizes BuildAMSIX; zero fields take §4.1 values.
type AMSIXSpec struct {
	Seed          int64
	Members       int // 669
	OnRouteServer int // 554
	Open          int // 48
	Closed        int // 12
	CaseByCase    int // 40
	Unlisted      int // 15
}

// DefaultAMSIXSpec returns the §4.1 membership numbers.
func DefaultAMSIXSpec() AMSIXSpec {
	return AMSIXSpec{Seed: 2014, Members: 669, OnRouteServer: 554, Open: 48, Closed: 12, CaseByCase: 40, Unlisted: 15}
}

// europeanWeight biases member selection toward the Netherlands and
// nearby countries, as §4.1 observes of AMS-IX's membership.
func europeanWeight(country string) int {
	switch country {
	case "NL":
		return 12
	case "DE", "BE", "GB", "FR", "LU":
		return 6
	case "DK", "SE", "NO", "FI", "PL", "CZ", "AT", "CH", "IT", "ES", "PT", "IE":
		return 3
	default:
		return 1
	}
}

// BuildAMSIX selects spec.Members ASes from g as the exchange's
// membership: every CDN and content network (open peering at IXPs is
// their business), then transit and eyeball networks weighted toward
// Europe. Policy assignments for the non-route-server members follow
// the spec counts exactly.
func BuildAMSIX(g *internet.Graph, spec AMSIXSpec) *IXP {
	return BuildIXP(g, "AMS-IX", spec)
}

// BuildIXP is BuildAMSIX for an arbitrarily named exchange — used to
// model the other European IXPs with route servers and the smaller
// exchanges PEERING reaches via remote peering (§3).
func BuildIXP(g *internet.Graph, name string, spec AMSIXSpec) *IXP {
	if spec.Members == 0 {
		spec = DefaultAMSIXSpec()
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	x := &IXP{Name: name, Graph: g, Members: make(map[uint32]*MemberInfo)}

	// The large carriers (by customer count) that do show up at big
	// European IXPs: the paper's peer list names HE, RETN,
	// TransTeleCom and other majors. We boost the top ~60 transits and
	// damp the long tail of regional providers.
	var transitCones []int
	coneOf := map[uint32]int{}
	for _, asn := range g.ASNs() {
		if a := g.AS(asn); a.Kind == internet.KindTransit {
			c := g.ConeSize(asn)
			coneOf[asn] = c
			transitCones = append(transitCones, c)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(transitCones)))
	cutAt := func(idx int) int {
		if len(transitCones) == 0 {
			return 1 << 30
		}
		if idx >= len(transitCones) {
			idx = len(transitCones) - 1
		}
		return transitCones[idx]
	}
	bigTransitCut, midTransitCut := cutAt(45), cutAt(110)

	// Candidate pool with weights.
	type cand struct {
		asn uint32
		w   int
	}
	var pool []cand
	for _, asn := range g.ASNs() {
		a := g.AS(asn)
		w := europeanWeight(a.Country)
		switch a.Kind {
		case internet.KindCDN:
			w *= 200 // content networks flock to IXPs (§3)
		case internet.KindContent:
			w *= 50
		case internet.KindTransit:
			switch {
			case coneOf[a.ASN] >= bigTransitCut && w >= 3:
				// Major European carriers near-certainly join.
				w *= 150
			case coneOf[a.ASN] >= bigTransitCut:
				// Major carriers elsewhere only occasionally show up
				// in Amsterdam (they are at their home IXPs).
				w *= 4
			case coneOf[a.ASN] >= midTransitCut && w >= 3:
				// Mid-size European carriers often join too.
				w *= 18
			default:
				w /= 6 // small regional transits rarely bother
			}
		case internet.KindEyeball:
			w *= 1
		case internet.KindTier1:
			w = 0 // tier-1s sell transit; they avoid open IXP peering
		}
		if w > 0 {
			pool = append(pool, cand{asn, w})
		}
	}
	// Weighted sample without replacement.
	selected := make([]uint32, 0, spec.Members)
	for len(selected) < spec.Members && len(pool) > 0 {
		total := 0
		for _, c := range pool {
			total += c.w
		}
		r := rng.Intn(total)
		for i, c := range pool {
			if r < c.w {
				selected = append(selected, c.asn)
				pool = append(pool[:i], pool[i+1:]...)
				break
			}
			r -= c.w
		}
	}
	sort.Slice(selected, func(i, j int) bool { return selected[i] < selected[j] })

	// Assign route-server membership and bilateral policies.
	perm := rng.Perm(len(selected))
	for i, pi := range perm {
		asn := selected[pi]
		m := &MemberInfo{ASN: asn, OnRouteServer: i < spec.OnRouteServer}
		x.Members[asn] = m
	}
	// The non-RS members get policies with exact spec counts.
	var nonRS []uint32
	for _, asn := range selected {
		if !x.Members[asn].OnRouteServer {
			nonRS = append(nonRS, asn)
		}
	}
	rng.Shuffle(len(nonRS), func(i, j int) { nonRS[i], nonRS[j] = nonRS[j], nonRS[i] })
	idx := 0
	assign := func(kind policy.PeeringKind, n int) {
		for i := 0; i < n && idx < len(nonRS); i++ {
			x.Members[nonRS[idx]].Policy = kind
			idx++
		}
	}
	assign(policy.PeeringOpen, spec.Open)
	assign(policy.PeeringClosed, spec.Closed)
	assign(policy.PeeringCaseByCase, spec.CaseByCase)
	assign(policy.PeeringUnlisted, len(nonRS)-idx)

	x.order = selected
	return x
}

// RequestOutcome is the result of a bilateral peering request.
type RequestOutcome int

// Peering request outcomes observed in §4.1.
const (
	// OutcomeAccepted: the member configured a session.
	OutcomeAccepted RequestOutcome = iota
	// OutcomeAcceptedAfterQuestions: accepted after asking why a
	// no-traffic research AS wants to peer (one AS in the paper).
	OutcomeAcceptedAfterQuestions
	// OutcomeNoResponse: the request went unanswered ("a handful").
	OutcomeNoResponse
	// OutcomeDeclined: refused.
	OutcomeDeclined
)

func (o RequestOutcome) String() string {
	switch o {
	case OutcomeAccepted:
		return "accepted"
	case OutcomeAcceptedAfterQuestions:
		return "accepted-after-questions"
	case OutcomeNoResponse:
		return "no-response"
	default:
		return "declined"
	}
}

// Accepted reports whether the outcome yields a session.
func (o RequestOutcome) Accepted() bool {
	return o == OutcomeAccepted || o == OutcomeAcceptedAfterQuestions
}

// RequestPeering simulates sending a bilateral peering request to
// member asn. Outcome probabilities reflect §4.1: open-policy members
// accept nearly always (even with no traffic and no web presence),
// case-by-case members usually accept, closed decline, unlisted mostly
// ignore.
func (x *IXP) RequestPeering(asn uint32, rng *rand.Rand) RequestOutcome {
	m := x.Members[asn]
	if m == nil {
		return OutcomeNoResponse
	}
	switch m.Policy {
	case policy.PeeringOpen:
		r := rng.Intn(100)
		switch {
		case r < 88:
			return OutcomeAccepted
		case r < 92:
			return OutcomeAcceptedAfterQuestions
		default:
			return OutcomeNoResponse
		}
	case policy.PeeringCaseByCase:
		r := rng.Intn(100)
		switch {
		case r < 55:
			return OutcomeAccepted
		case r < 85:
			return OutcomeNoResponse
		default:
			return OutcomeDeclined
		}
	case policy.PeeringClosed:
		return OutcomeDeclined
	default: // unlisted
		if rng.Intn(100) < 75 {
			return OutcomeNoResponse
		}
		return OutcomeDeclined
	}
}

// Presence is PEERING's peering footprint at one IXP after joining the
// route server and (optionally) running the bilateral request campaign.
type Presence struct {
	IXP *IXP
	// RSPeers are the multilateral peers obtained instantly via the
	// route server.
	RSPeers []uint32
	// BilateralPeers accepted our request.
	BilateralPeers []uint32
	// Outcomes records every bilateral request result.
	Outcomes map[uint32]RequestOutcome
}

// Join connects PEERING to the exchange: one BGP session to the route
// server yields peering with every RS member; if requestBilateral, a
// request is sent to every non-RS member.
func (x *IXP) Join(seed int64, requestBilateral bool) *Presence {
	rng := rand.New(rand.NewSource(seed))
	pr := &Presence{IXP: x, RSPeers: x.RouteServerMembers(), Outcomes: map[uint32]RequestOutcome{}}
	if !requestBilateral {
		return pr
	}
	for _, asn := range x.NonRouteServerMembers() {
		o := x.RequestPeering(asn, rng)
		pr.Outcomes[asn] = o
		if o.Accepted() {
			pr.BilateralPeers = append(pr.BilateralPeers, asn)
		}
	}
	return pr
}

// AllPeers returns every AS PEERING peers with at this IXP.
func (pr *Presence) AllPeers() []uint32 {
	out := make([]uint32, 0, len(pr.RSPeers)+len(pr.BilateralPeers))
	out = append(out, pr.RSPeers...)
	out = append(out, pr.BilateralPeers...)
	return out
}

// Countries returns the distinct countries of all peers.
func (pr *Presence) Countries() []string {
	seen := map[string]bool{}
	var out []string
	for _, asn := range pr.AllPeers() {
		c := pr.IXP.Graph.AS(asn).Country
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// TopRankedPeerCount reports how many of the top-n ASes (by customer
// cone) are among our peers — the "13 of the top 50, 27 of the top
// 100" metric.
func (pr *Presence) TopRankedPeerCount(ranked []*internet.AS, n int) int {
	peers := map[uint32]bool{}
	for _, asn := range pr.AllPeers() {
		peers[asn] = true
	}
	count := 0
	for i := 0; i < n && i < len(ranked); i++ {
		if peers[ranked[i].ASN] {
			count++
		}
	}
	return count
}

// ReachableASNs returns the union of all peers' customer cones — the
// ASes whose prefixes we reach without transit.
func (pr *Presence) ReachableASNs() map[uint32]bool {
	union := map[uint32]bool{}
	for _, peer := range pr.AllPeers() {
		for asn := range pr.IXP.Graph.CustomerCone(peer) {
			union[asn] = true
		}
	}
	return union
}

// ReachablePrefixCount counts prefixes reachable via peer routes.
func (pr *Presence) ReachablePrefixCount() int {
	n := 0
	for asn := range pr.ReachableASNs() {
		n += len(pr.IXP.Graph.AS(asn).Prefixes)
	}
	return n
}

// PeerRouteCounts returns, per peer, how many routes that peer exports
// to us (its customer cone's prefixes) — the §4.2 observation that only
// the 5 largest peers send >10K routes while 307 send <100.
func (pr *Presence) PeerRouteCounts() map[uint32]int {
	out := make(map[uint32]int, len(pr.RSPeers)+len(pr.BilateralPeers))
	for _, peer := range pr.AllPeers() {
		n := 0
		for asn := range pr.IXP.Graph.CustomerCone(peer) {
			n += len(pr.IXP.Graph.AS(asn).Prefixes)
		}
		out[peer] = n
	}
	return out
}
