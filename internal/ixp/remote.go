package ixp

import (
	"sort"

	"peering/internal/internet"
)

// This file models PEERING's expansion strategy (§3, "Achieving rich
// connectivity"): servers at major IXPs, remote peering at smaller
// ones ("Hibernia Networks offered us virtualized layer 2 connectivity
// from our AMS-IX server to tens of IXPs around the world"), and
// indirect transit through universities — aggregated into one
// deployment footprint ("nine servers on three continents …").

// SiteKind classifies how PEERING is present at a location.
type SiteKind int

// Site kinds.
const (
	// SitePhysical is a server colocated at the exchange (AMS-IX,
	// Phoenix-IX).
	SitePhysical SiteKind = iota
	// SiteRemote reaches the exchange over a remote-peering provider's
	// virtual layer 2 — no hardware deployed.
	SiteRemote
	// SiteTransit is a university host with upstream transit only (the
	// original Transit Portal-style sites).
	SiteTransit
)

func (k SiteKind) String() string {
	switch k {
	case SitePhysical:
		return "physical"
	case SiteRemote:
		return "remote"
	default:
		return "transit"
	}
}

// Site is one location in the deployment.
type Site struct {
	Name string
	Kind SiteKind
	// Presence is the peering footprint at this site (nil for
	// transit-only sites).
	Presence *Presence
	// Provider names the remote-peering provider for SiteRemote.
	Provider string
}

// Deployment is PEERING's aggregate footprint across sites.
type Deployment struct {
	Sites []Site
}

// AddPhysical registers a colocated server's presence.
func (d *Deployment) AddPhysical(name string, pr *Presence) {
	d.Sites = append(d.Sites, Site{Name: name, Kind: SitePhysical, Presence: pr})
}

// AddRemote registers presence at an exchange reached through a
// remote-peering provider.
func (d *Deployment) AddRemote(name, provider string, pr *Presence) {
	d.Sites = append(d.Sites, Site{Name: name, Kind: SiteRemote, Presence: pr, Provider: provider})
}

// AddTransit registers a transit-only university site.
func (d *Deployment) AddTransit(name string) {
	d.Sites = append(d.Sites, Site{Name: name, Kind: SiteTransit})
}

// PeerASNs returns the union of peers across all sites.
func (d *Deployment) PeerASNs() map[uint32]bool {
	out := map[uint32]bool{}
	for _, s := range d.Sites {
		if s.Presence == nil {
			continue
		}
		for _, asn := range s.Presence.AllPeers() {
			out[asn] = true
		}
	}
	return out
}

// Countries returns the distinct countries across all sites' peers.
func (d *Deployment) Countries() []string {
	seen := map[string]bool{}
	for _, s := range d.Sites {
		if s.Presence == nil {
			continue
		}
		for _, c := range s.Presence.Countries() {
			seen[c] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ReachablePrefixCount counts prefixes reachable via any site's peer
// routes (union of customer cones across every peer everywhere). All
// sites must model IXPs over the same underlying Internet graph.
func (d *Deployment) ReachablePrefixCount() int {
	union := map[uint32]bool{}
	var g *internet.Graph
	for _, s := range d.Sites {
		if s.Presence == nil {
			continue
		}
		g = s.Presence.IXP.Graph
		for _, peer := range s.Presence.AllPeers() {
			for asn := range g.CustomerCone(peer) {
				union[asn] = true
			}
		}
	}
	if g == nil {
		return 0
	}
	n := 0
	for asn := range union {
		n += len(g.AS(asn).Prefixes)
	}
	return n
}

// SiteCount tallies sites by kind.
func (d *Deployment) SiteCount() map[SiteKind]int {
	out := map[SiteKind]int{}
	for _, s := range d.Sites {
		out[s.Kind]++
	}
	return out
}
