package ixp

import (
	"fmt"
	"net"
	"net/netip"
	"sync"

	"peering/internal/bufconn"
	"peering/internal/dataplane"
	"peering/internal/policy"
	"peering/internal/rib"
	"peering/internal/router"
)

// Fabric is a protocol-level IXP: a shared LAN (emulated as an L3
// switch whose forwarding follows the route server's view), a
// transparent route server, and join/bilateral session plumbing.
//
// Emulation note: a real IXP switches layer-2 frames toward the member
// chosen by the *sender's* next-hop lookup. Our switch forwards by
// destination prefix using the route server's best paths (plus
// member-registered prefixes), which preserves behavior for every
// experiment in this repository; sender-side next-hop steering across
// the fabric would require L2 addressing the dataplane deliberately
// omits.
type Fabric struct {
	Name string
	// RS is the transparent route server (nil if the IXP offers none).
	RS *router.Router
	// Switch is the emulated fabric.
	Switch *dataplane.Router

	lanPrefix netip.Prefix
	mu        sync.Mutex
	nextHost  uint32
	members   map[uint32]*Member
	byLAN     map[netip.Addr]*Member
	rsID      netip.Addr
}

// Member is one AS connected to the fabric.
type Member struct {
	ASN uint32
	// LANAddr is the member's address on the exchange LAN.
	LANAddr netip.Addr
	// Router is the member's BGP speaker.
	Router *router.Router
	// DP is the member's dataplane router (may be nil for
	// control-plane-only members).
	DP *dataplane.Router
	// SwitchIface is the switch-side interface toward this member.
	SwitchIface *dataplane.Iface
	// MemberIface is the member-side interface toward the switch.
	MemberIface *dataplane.Iface
}

// NewFabric creates an exchange with LAN lanPrefix. rsASN, when
// nonzero, starts a route server with that ASN (route servers have
// their own ASN but stay out of the AS path).
func NewFabric(name string, lanPrefix netip.Prefix, rsASN uint32) *Fabric {
	f := &Fabric{
		Name:      name,
		Switch:    dataplane.NewRouter(name + "-switch"),
		lanPrefix: lanPrefix,
		nextHost:  1,
		members:   make(map[uint32]*Member),
		byLAN:     make(map[netip.Addr]*Member),
	}
	if rsASN != 0 {
		f.rsID = f.allocLAN()
		f.RS = router.New(router.Config{AS: rsASN, RouterID: f.rsID, RouteServer: true})
		// Feed the switch's FIB from the route server's view.
		f.RS.OnBestChange(func(ch rib.Change) {
			if ch.New == nil {
				f.Switch.DelRoute(ch.Prefix)
				return
			}
			f.routeViaLAN(ch.Prefix, ch.New.Attrs.NextHop)
		})
	}
	return f
}

// allocLAN hands out the next LAN address.
func (f *Fabric) allocLAN() netip.Addr {
	base := f.lanPrefix.Masked().Addr().As4()
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	v += f.nextHost
	f.nextHost++
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// routeViaLAN points the switch's route for p at the member holding
// LAN address nh.
func (f *Fabric) routeViaLAN(p netip.Prefix, nh netip.Addr) {
	f.mu.Lock()
	m := f.byLAN[nh]
	f.mu.Unlock()
	if m == nil || m.SwitchIface == nil {
		return
	}
	f.Switch.SetRoute(p, nh, m.SwitchIface)
}

// Join connects r (and optionally its dataplane router dp) to the
// exchange, returning the member handle. If the fabric runs a route
// server, a BGP session to it is established automatically.
func (f *Fabric) Join(r *router.Router, dp *dataplane.Router) *Member {
	f.mu.Lock()
	lan := f.allocLAN()
	m := &Member{ASN: r.AS(), LANAddr: lan, Router: r, DP: dp}
	f.members[r.AS()] = m
	f.byLAN[lan] = m
	f.mu.Unlock()

	if dp != nil {
		_, swIf, memIf := dataplane.Connect(f.Switch, netip.Addr{}, fmt.Sprintf("to-as%d", r.AS()), dp, lan, f.Name)
		f.Switch.AddIface(swIf)
		dp.AddIface(memIf)
		m.SwitchIface, m.MemberIface = swIf, memIf
		// Member reaches the whole LAN through the switch.
		dp.SetRoute(f.lanPrefix, netip.Addr{}, memIf)
	}

	if f.RS != nil {
		rsPeer := f.RS.AddPeer(router.PeerConfig{
			Addr:      lan,
			LocalAddr: f.rsID,
			Describe:  fmt.Sprintf("member-as%d", r.AS()),
		})
		memPeer := r.AddPeer(router.PeerConfig{
			Addr:      f.rsID,
			LocalAddr: lan,
			AS:        f.RS.AS(),
			// Routes via the route server are settlement-free peer
			// routes: members export only their customer cone to the
			// RS and never give RS-learned routes to their providers.
			Relationship: policy.RelPeer,
			Describe:     f.Name + "-rs",
		})
		ca, cb := bufconn.Pipe()
		f.RS.Attach(rsPeer, ca)
		r.Attach(memPeer, cb)
	}
	return m
}

// JoinExternal adds a member whose BGP stack lives outside the fabric's
// control — a PEERING server. It allocates a LAN address, attaches dp
// (if non-nil) to the switch, and, when a route server exists, returns
// a net.Conn whose far end is the route server; the caller runs its own
// session over it. The returned member has no Router.
func (f *Fabric) JoinExternal(asn uint32, dp *dataplane.Router) (*Member, net.Conn) {
	f.mu.Lock()
	lan := f.allocLAN()
	m := &Member{ASN: asn, LANAddr: lan, DP: dp}
	f.members[asn] = m
	f.byLAN[lan] = m
	f.mu.Unlock()

	if dp != nil {
		_, swIf, memIf := dataplane.Connect(f.Switch, netip.Addr{}, fmt.Sprintf("to-as%d", asn), dp, lan, f.Name)
		f.Switch.AddIface(swIf)
		dp.AddIface(memIf)
		m.SwitchIface, m.MemberIface = swIf, memIf
		dp.SetRoute(f.lanPrefix, netip.Addr{}, memIf)
	}

	if f.RS == nil {
		return m, nil
	}
	rsPeer := f.RS.AddPeer(router.PeerConfig{
		Addr:      lan,
		LocalAddr: f.rsID,
		Describe:  fmt.Sprintf("ext-member-as%d", asn),
	})
	ca, cb := bufconn.Pipe()
	f.RS.Attach(rsPeer, ca)
	return m, cb
}

// RouteServerAddr returns the route server's LAN address (invalid when
// the fabric runs no RS).
func (f *Fabric) RouteServerAddr() netip.Addr { return f.rsID }

// BilateralConn prepares a direct session between member m and an
// external speaker at extLAN with AS extASN: m's router gets a peer
// config and the returned conn's far end is m. The external side runs
// its own session over the conn.
func (f *Fabric) BilateralConn(m *Member, extASN uint32, extLAN netip.Addr) net.Conn {
	p := m.Router.AddPeer(router.PeerConfig{
		Addr:         extLAN,
		LocalAddr:    m.LANAddr,
		AS:           extASN,
		Relationship: policy.RelPeer,
		Describe:     fmt.Sprintf("bilateral-ext-as%d", extASN),
	})
	ca, cb := bufconn.Pipe()
	m.Router.Attach(p, ca)
	return cb
}

// Member returns the member with the given ASN.
func (f *Fabric) Member(asn uint32) *Member {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.members[asn]
}

// Members returns all connected members.
func (f *Fabric) Members() []*Member {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Member, 0, len(f.members))
	for _, m := range f.members {
		out = append(out, m)
	}
	return out
}

// ConnectBilateral establishes a direct BGP session between members a
// and b across the fabric (no route server involvement).
func (f *Fabric) ConnectBilateral(a, b *Member) {
	pa := a.Router.AddPeer(router.PeerConfig{
		Addr:      b.LANAddr,
		LocalAddr: a.LANAddr,
		AS:        b.ASN,
		Describe:  fmt.Sprintf("bilateral-as%d", b.ASN),
	})
	pb := b.Router.AddPeer(router.PeerConfig{
		Addr:      a.LANAddr,
		LocalAddr: b.LANAddr,
		AS:        a.ASN,
		Describe:  fmt.Sprintf("bilateral-as%d", a.ASN),
	})
	ca, cb := bufconn.Pipe()
	a.Router.Attach(pa, ca)
	b.Router.Attach(pb, cb)
}

// RegisterPrefix points the switch at member m for prefix p — used for
// bilateral-only routes the route server never sees.
func (f *Fabric) RegisterPrefix(p netip.Prefix, m *Member) {
	if m.SwitchIface != nil {
		f.Switch.SetRoute(p, m.LANAddr, m.SwitchIface)
	}
}
