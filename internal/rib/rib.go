// Package rib implements BGP routing tables: per-peer Adj-RIB-In and
// Adj-RIB-Out views, the Loc-RIB with the RFC 4271 §9.1 decision
// process, and change notifications that drive route export.
package rib

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"peering/internal/trie"
	"peering/internal/wire"
)

// DefaultLocalPref is assumed when a route carries no LOCAL_PREF
// attribute (RFC 4271 §9.1.1 leaves this to configuration; 100 is the
// universal default).
const DefaultLocalPref = 100

// PeerKey identifies the source of a route inside a table: the peer's
// address plus the ADD-PATH identifier (zero without ADD-PATH).
type PeerKey struct {
	Addr   netip.Addr
	PathID wire.PathID
}

func (k PeerKey) String() string {
	if k.PathID == 0 {
		return k.Addr.String()
	}
	return fmt.Sprintf("%s#%d", k.Addr, k.PathID)
}

// Route is one path to one prefix, as stored in a RIB.
type Route struct {
	Prefix netip.Prefix
	Attrs  *wire.Attrs
	// Src identifies the peer (and ADD-PATH id) the route came from.
	Src PeerKey
	// PeerAS is the ASN of the advertising peer.
	PeerAS uint32
	// PeerID is the advertising peer's BGP identifier, used as a
	// decision tie-breaker.
	PeerID netip.Addr
	// EBGP marks routes learned over an external session.
	EBGP bool
	// IGPCost is the interior cost to reach Attrs.NextHop.
	IGPCost uint32
	// Learned is when the route entered the table.
	Learned time.Time
	// Stale marks a route retained across a session loss under
	// graceful-restart semantics (RFC 4724): it stays usable until the
	// peer re-announces it or the restart window closes.
	Stale bool
}

// LocalPref returns the route's LOCAL_PREF, applying the default.
func (r *Route) LocalPref() uint32 {
	if r.Attrs != nil && r.Attrs.HasLocalPref {
		return r.Attrs.LocalPref
	}
	return DefaultLocalPref
}

// MED returns the route's MULTI_EXIT_DISC, with absence as zero
// (deterministic-med, Cisco default behavior).
func (r *Route) MED() uint32 {
	if r.Attrs != nil && r.Attrs.HasMED {
		return r.Attrs.MED
	}
	return 0
}

func (r *Route) String() string {
	// An attribute-less route (withdrawn placeholder, or a test fixture)
	// must format, not panic.
	path := ""
	if r.Attrs != nil {
		path = r.Attrs.PathString()
	}
	return fmt.Sprintf("%s via %s path [%s]", r.Prefix, r.Src, path)
}

// pathLen, originOf, and firstAS read attribute fields tolerating a
// route with no attributes at all: such a route compares as an empty
// path with default origin, the same defaults LocalPref and MED apply,
// instead of panicking the decision process.
func pathLen(r *Route) int {
	if r.Attrs == nil {
		return 0
	}
	return r.Attrs.PathLen()
}

func originOf(r *Route) wire.Origin {
	if r.Attrs == nil {
		return wire.OriginIGP
	}
	return r.Attrs.Origin
}

func firstAS(r *Route) uint32 {
	if r.Attrs == nil {
		return 0
	}
	return r.Attrs.FirstAS()
}

// Better reports whether a is preferred over b under the RFC 4271 §9.1.2
// decision process (with the standard vendor extensions for the final
// tie-breaks). Routes must be for the same prefix. Routes with nil
// Attrs are legal: every attribute-derived step reads its default.
func Better(a, b *Route) bool {
	// 1. Highest LOCAL_PREF.
	if la, lb := a.LocalPref(), b.LocalPref(); la != lb {
		return la > lb
	}
	// 2. Shortest AS_PATH.
	if pa, pb := pathLen(a), pathLen(b); pa != pb {
		return pa < pb
	}
	// 3. Lowest ORIGIN (IGP < EGP < incomplete).
	if oa, ob := originOf(a), originOf(b); oa != ob {
		return oa < ob
	}
	// 4. Lowest MED among routes from the same neighbor AS.
	if firstAS(a) == firstAS(b) {
		if ma, mb := a.MED(), b.MED(); ma != mb {
			return ma < mb
		}
	}
	// 5. eBGP over iBGP.
	if a.EBGP != b.EBGP {
		return a.EBGP
	}
	// 6. Lowest IGP cost to next hop.
	if a.IGPCost != b.IGPCost {
		return a.IGPCost < b.IGPCost
	}
	// 7. Lowest peer BGP identifier.
	if a.PeerID != b.PeerID {
		return a.PeerID.Less(b.PeerID)
	}
	// 8. Lowest peer address (and path id) — total order for determinism.
	if a.Src.Addr != b.Src.Addr {
		return a.Src.Addr.Less(b.Src.Addr)
	}
	return a.Src.PathID < b.Src.PathID
}

// ---------------------------------------------------------------------
// Adj-RIB (per-peer view)

// AdjRIB is the set of routes received from (Adj-RIB-In) or sent to
// (Adj-RIB-Out) a single peer. It is not safe for concurrent use.
type AdjRIB struct {
	t      *trie.Trie[map[wire.PathID]*Route]
	n      int
	intern *wire.InternTable
}

// NewAdjRIB returns an empty per-peer table.
func NewAdjRIB() *AdjRIB {
	return &AdjRIB{t: trie.New[map[wire.PathID]*Route]()}
}

// SetInterner makes the table canonicalize stored attribute pointers
// through t, so routes sharing an attribute set share one *wire.Attrs.
// Attrs stored in an interning table are frozen per the wire package's
// interning contract.
func (a *AdjRIB) SetInterner(t *wire.InternTable) {
	a.intern = t
}

// Set stores a copy of *r, reporting whether it replaced a previous
// route with the same prefix and path ID. r itself is never retained,
// so callers can pass a stack-allocated Route. A replacement installs a
// freshly allocated Route rather than overwriting the old one in place:
// the displaced *Route stays valid as an immutable snapshot, so a
// pointer previously handed to another table (e.g. LocRIB.Update) or a
// queue cannot be silently mutated out from under it. With an interner
// configured, the stored Attrs is the canonical pointer.
func (a *AdjRIB) Set(r *Route) bool {
	if a.intern != nil {
		r.Attrs = a.intern.Intern(r.Attrs)
	}
	m, ok := a.t.Get(r.Prefix)
	if !ok {
		m = make(map[wire.PathID]*Route, 1)
		a.t.Insert(r.Prefix, m)
	}
	nr := new(Route)
	*nr = *r
	replaced := m[r.Src.PathID] != nil
	m[r.Src.PathID] = nr
	if !replaced {
		a.n++
	}
	return replaced
}

// Remove deletes the route for (prefix, id), returning it if present.
func (a *AdjRIB) Remove(p netip.Prefix, id wire.PathID) *Route {
	m, ok := a.t.Get(p)
	if !ok {
		return nil
	}
	r := m[id]
	if r == nil {
		return nil
	}
	delete(m, id)
	a.n--
	if len(m) == 0 {
		a.t.Delete(p)
	}
	return r
}

// Get returns the route for (prefix, id).
func (a *AdjRIB) Get(p netip.Prefix, id wire.PathID) *Route {
	m, ok := a.t.Get(p)
	if !ok {
		return nil
	}
	return m[id]
}

// Len reports the number of stored routes (not prefixes).
func (a *AdjRIB) Len() int { return a.n }

// Walk visits every stored route.
func (a *AdjRIB) Walk(fn func(*Route) bool) {
	a.t.Walk(func(_ netip.Prefix, m map[wire.PathID]*Route) bool {
		for _, r := range m {
			if !fn(r) {
				return false
			}
		}
		return true
	})
}

// WalkGrouped visits every stored route grouped by shared attribute
// set — the shape batch packing wants. With an interner configured the
// grouping key is pointer identity, so a full table resolves to
// O(distinct policies) groups. The prefix slices are freshly built per
// call and may be retained by the caller; group order is unspecified.
func (a *AdjRIB) WalkGrouped(fn func(attrs *wire.Attrs, nlris []wire.NLRI)) {
	groups := make(map[*wire.Attrs][]wire.NLRI)
	a.Walk(func(r *Route) bool {
		groups[r.Attrs] = append(groups[r.Attrs], wire.NLRI{Prefix: r.Prefix, ID: r.Src.PathID})
		return true
	})
	for attrs, ns := range groups {
		fn(attrs, ns)
	}
}

// MarkAllStale flags every stored route stale (graceful restart entry),
// returning how many were newly marked.
func (a *AdjRIB) MarkAllStale() int {
	n := 0
	a.Walk(func(r *Route) bool {
		if !r.Stale {
			r.Stale = true
			n++
		}
		return true
	})
	return n
}

// SweepStale removes and returns every route still marked stale
// (graceful restart exit: flush what the peer did not re-announce).
func (a *AdjRIB) SweepStale() []*Route {
	var stale []*Route
	a.Walk(func(r *Route) bool {
		if r.Stale {
			stale = append(stale, r)
		}
		return true
	})
	for _, r := range stale {
		a.Remove(r.Prefix, r.Src.PathID)
	}
	return stale
}

// StaleCount reports how many routes are currently marked stale.
func (a *AdjRIB) StaleCount() int {
	n := 0
	a.Walk(func(r *Route) bool {
		if r.Stale {
			n++
		}
		return true
	})
	return n
}

// Clear drops all routes, returning how many were removed.
func (a *AdjRIB) Clear() int {
	n := a.n
	a.t = trie.New[map[wire.PathID]*Route]()
	a.n = 0
	return n
}

// ---------------------------------------------------------------------
// Loc-RIB

// Change describes a best-route transition for one prefix, emitted by
// LocRIB mutations so the owner can export.
type Change struct {
	Prefix netip.Prefix
	Old    *Route // nil if the prefix was previously unreachable
	New    *Route // nil if the prefix became unreachable
}

// LocRIB holds all candidate routes and the current best per prefix.
// It is safe for concurrent use.
//
// Internally the table is split into prefix-hash shards, each with its
// own lock and trie (see shard.go for the hash and the default shard
// count): Update/Withdraw/Best run entirely inside one shard, so
// concurrent mutators on different prefixes do not serialize on a
// single table lock. The decision process is per prefix, and a prefix
// lives in exactly one shard, so the shard count never changes which
// route wins — only which lock guards it.
type LocRIB struct {
	shards []locShard
	mask   uint32
	routes atomic.Int64
}

type locShard struct {
	mu sync.RWMutex
	t  *trie.Trie[*entry]
}

type entry struct {
	// candidates, unordered; best is computed on change.
	candidates []*Route
	best       *Route
}

// NewLocRIB returns an empty Loc-RIB with the default shard count.
func NewLocRIB() *LocRIB { return NewLocRIBShards(0) }

// NewLocRIBShards returns an empty Loc-RIB with n prefix-hash shards
// (rounded up to a power of two; n <= 0 means DefaultShards).
func NewLocRIBShards(n int) *LocRIB {
	n = shardCount(n)
	l := &LocRIB{shards: make([]locShard, n), mask: uint32(n - 1)}
	for i := range l.shards {
		l.shards[i].t = trie.New[*entry]()
	}
	return l
}

// Shards reports the table's shard count.
func (l *LocRIB) Shards() int { return len(l.shards) }

func (l *LocRIB) shard(p netip.Prefix) *locShard {
	return &l.shards[prefixShard(p)&l.mask]
}

// Update inserts or replaces the candidate from r.Src for r.Prefix and
// recomputes the best route. The returned Change has Old == New == best
// when the best route did not move (callers test Changed).
func (l *LocRIB) Update(r *Route) (Change, bool) {
	sh := l.shard(r.Prefix)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.t.Get(r.Prefix)
	if !ok {
		e = &entry{}
		sh.t.Insert(r.Prefix, e)
	}
	replaced := false
	for i, c := range e.candidates {
		if c.Src == r.Src {
			e.candidates[i] = r
			replaced = true
			break
		}
	}
	if !replaced {
		e.candidates = append(e.candidates, r)
		l.routes.Add(1)
	}
	return recompute(r.Prefix, e)
}

// Withdraw removes the candidate from src for p and recomputes.
func (l *LocRIB) Withdraw(p netip.Prefix, src PeerKey) (Change, bool) {
	sh := l.shard(p)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.t.Get(p)
	if !ok {
		return Change{Prefix: p}, false
	}
	found := false
	for i, c := range e.candidates {
		if c.Src == src {
			last := len(e.candidates) - 1
			copy(e.candidates[i:], e.candidates[i+1:])
			// Nil the vacated tail slot: the backing array must not pin
			// the withdrawn route (and its attrs) until the next append
			// overwrites it.
			e.candidates[last] = nil
			e.candidates = e.candidates[:last]
			l.routes.Add(-1)
			found = true
			break
		}
	}
	if !found {
		return Change{Prefix: p}, false
	}
	ch, changed := recompute(p, e)
	if len(e.candidates) == 0 {
		sh.t.Delete(p)
	}
	return ch, changed
}

// WithdrawPeer removes every candidate learned from peer address addr
// (session teardown), returning the resulting best-route changes.
func (l *LocRIB) WithdrawPeer(addr netip.Addr) []Change {
	var changes []Change
	for si := range l.shards {
		sh := &l.shards[si]
		sh.mu.Lock()
		var prefixes []netip.Prefix
		sh.t.Walk(func(p netip.Prefix, e *entry) bool {
			for _, c := range e.candidates {
				if c.Src.Addr == addr {
					prefixes = append(prefixes, p)
					break
				}
			}
			return true
		})
		for _, p := range prefixes {
			e, _ := sh.t.Get(p)
			old := e.candidates
			kept := old[:0]
			for _, c := range old {
				if c.Src.Addr == addr {
					l.routes.Add(-1)
					continue
				}
				kept = append(kept, c)
			}
			// The compaction wrote the survivors over the front of the
			// backing array; nil out the tail so the dropped *Routes (at
			// full-table scale, an entire peer's worth) are collectable
			// instead of staying pinned behind the shortened slice.
			for j := len(kept); j < len(old); j++ {
				old[j] = nil
			}
			e.candidates = kept
			if ch, changed := recompute(p, e); changed {
				changes = append(changes, ch)
			}
			if len(e.candidates) == 0 {
				sh.t.Delete(p)
			}
		}
		sh.mu.Unlock()
	}
	return changes
}

// recompute re-runs the decision process for p. Caller holds the
// prefix's shard lock.
func recompute(p netip.Prefix, e *entry) (Change, bool) {
	old := e.best
	var best *Route
	for _, c := range e.candidates {
		if best == nil || Better(c, best) {
			best = c
		}
	}
	e.best = best
	if old == best {
		return Change{Prefix: p, Old: old, New: best}, false
	}
	return Change{Prefix: p, Old: old, New: best}, true
}

// Best returns the selected route for exactly prefix p.
func (l *LocRIB) Best(p netip.Prefix) *Route {
	sh := l.shard(p)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.t.Get(p)
	if !ok {
		return nil
	}
	return e.best
}

// Candidates returns all candidate routes for p (copy).
func (l *LocRIB) Candidates(p netip.Prefix) []*Route {
	sh := l.shard(p)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.t.Get(p)
	if !ok {
		return nil
	}
	out := make([]*Route, len(e.candidates))
	copy(out, e.candidates)
	return out
}

// Lookup performs a longest-prefix match over best routes. Covering
// prefixes hash to different shards than their more-specifics, so every
// shard's match is consulted and the longest wins.
func (l *LocRIB) Lookup(addr netip.Addr) *Route {
	var best *Route
	bestBits := -1
	for si := range l.shards {
		sh := &l.shards[si]
		sh.mu.RLock()
		// Empty entries are pruned on withdraw, so every stored entry has
		// a best route and a plain LPM per shard suffices.
		if p, e, ok := sh.t.Lookup(addr); ok && p.Bits() > bestBits {
			bestBits = p.Bits()
			best = e.best
		}
		sh.mu.RUnlock()
	}
	return best
}

// Prefixes reports the number of distinct prefixes present.
func (l *LocRIB) Prefixes() int {
	n := 0
	for si := range l.shards {
		sh := &l.shards[si]
		sh.mu.RLock()
		n += sh.t.Len()
		sh.mu.RUnlock()
	}
	return n
}

// Routes reports the total number of candidate routes.
func (l *LocRIB) Routes() int {
	return int(l.routes.Load())
}

// WalkBest visits the best route of every prefix. The walk locks one
// shard at a time: it is consistent per shard, not a point-in-time
// snapshot of the whole table, and visits prefixes in per-shard (not
// global lexicographic) order.
func (l *LocRIB) WalkBest(fn func(*Route) bool) {
	for si := range l.shards {
		sh := &l.shards[si]
		sh.mu.RLock()
		done := false
		sh.t.Walk(func(_ netip.Prefix, e *entry) bool {
			if e.best == nil {
				return true
			}
			if !fn(e.best) {
				done = true
				return false
			}
			return true
		})
		sh.mu.RUnlock()
		if done {
			return
		}
	}
}

// WalkAll visits every candidate route of every prefix, with the same
// per-shard consistency and ordering caveats as WalkBest.
func (l *LocRIB) WalkAll(fn func(*Route) bool) {
	for si := range l.shards {
		sh := &l.shards[si]
		sh.mu.RLock()
		done := false
		sh.t.Walk(func(_ netip.Prefix, e *entry) bool {
			for _, r := range e.candidates {
				if !fn(r) {
					done = true
					return false
				}
			}
			return true
		})
		sh.mu.RUnlock()
		if done {
			return
		}
	}
}
