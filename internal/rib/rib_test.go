package rib

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"peering/internal/wire"
)

func addr(s string) netip.Addr     { return netip.MustParseAddr(s) }
func prefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// mkRoute builds a route with sensible defaults that tests override.
func mkRoute(p string, peer string, mod func(*Route)) *Route {
	r := &Route{
		Prefix: prefix(p),
		Attrs: &wire.Attrs{
			Origin:  wire.OriginIGP,
			ASPath:  []wire.Segment{{Type: wire.SegSequence, ASNs: []uint32{65001, 65002}}},
			NextHop: addr(peer),
		},
		Src:    PeerKey{Addr: addr(peer)},
		PeerAS: 65001,
		PeerID: addr(peer),
		EBGP:   true,
	}
	if mod != nil {
		mod(r)
	}
	return r
}

func TestBetterLocalPref(t *testing.T) {
	a := mkRoute("10.0.0.0/8", "192.0.2.1", func(r *Route) {
		r.Attrs.LocalPref, r.Attrs.HasLocalPref = 200, true
		// Worse on every later criterion.
		r.Attrs.ASPath = []wire.Segment{{Type: wire.SegSequence, ASNs: []uint32{1, 2, 3, 4, 5}}}
		r.Attrs.Origin = wire.OriginIncomplete
	})
	b := mkRoute("10.0.0.0/8", "192.0.2.2", nil) // default 100
	if !Better(a, b) || Better(b, a) {
		t.Fatal("higher LOCAL_PREF must win")
	}
}

func TestBetterASPathLen(t *testing.T) {
	short := mkRoute("10.0.0.0/8", "192.0.2.1", func(r *Route) {
		r.Attrs.ASPath = []wire.Segment{{Type: wire.SegSequence, ASNs: []uint32{1}}}
	})
	long := mkRoute("10.0.0.0/8", "192.0.2.2", func(r *Route) {
		r.Attrs.ASPath = []wire.Segment{{Type: wire.SegSequence, ASNs: []uint32{1, 2}}}
	})
	if !Better(short, long) {
		t.Fatal("shorter AS path must win")
	}
	// AS_SET counts one regardless of members.
	set := mkRoute("10.0.0.0/8", "192.0.2.3", func(r *Route) {
		r.Attrs.ASPath = []wire.Segment{{Type: wire.SegSet, ASNs: []uint32{1, 2, 3}}}
	})
	if Better(long, set) {
		t.Fatal("AS_SET should count as length 1, beating length 2")
	}
}

func TestBetterOrigin(t *testing.T) {
	igp := mkRoute("10.0.0.0/8", "192.0.2.1", func(r *Route) { r.Attrs.Origin = wire.OriginIGP })
	egp := mkRoute("10.0.0.0/8", "192.0.2.2", func(r *Route) { r.Attrs.Origin = wire.OriginEGP })
	inc := mkRoute("10.0.0.0/8", "192.0.2.3", func(r *Route) { r.Attrs.Origin = wire.OriginIncomplete })
	if !Better(igp, egp) || !Better(egp, inc) || !Better(igp, inc) {
		t.Fatal("origin order IGP < EGP < incomplete violated")
	}
}

func TestBetterMEDSameNeighborOnly(t *testing.T) {
	lo := mkRoute("10.0.0.0/8", "192.0.2.1", func(r *Route) { r.Attrs.MED, r.Attrs.HasMED = 10, true })
	hi := mkRoute("10.0.0.0/8", "192.0.2.2", func(r *Route) { r.Attrs.MED, r.Attrs.HasMED = 500, true })
	if !Better(lo, hi) {
		t.Fatal("lower MED from same neighbor AS must win")
	}
	// Different neighbor AS: MED not compared; falls through to
	// router-ID tie-break (192.0.2.1 < 192.0.2.2).
	hi2 := mkRoute("10.0.0.0/8", "192.0.2.2", func(r *Route) {
		r.Attrs.MED, r.Attrs.HasMED = 500, true
		r.Attrs.ASPath = []wire.Segment{{Type: wire.SegSequence, ASNs: []uint32{65099, 65002}}}
	})
	if !Better(lo, hi2) {
		t.Fatal("tie-break should still pick lower router ID")
	}
	// Verify MED was genuinely skipped: reverse IDs and the high-MED
	// route from a different AS should win.
	hi3 := mkRoute("10.0.0.0/8", "192.0.2.0", func(r *Route) {
		r.Attrs.MED, r.Attrs.HasMED = 500, true
		r.Attrs.ASPath = []wire.Segment{{Type: wire.SegSequence, ASNs: []uint32{65099, 65002}}}
		r.PeerID = addr("192.0.2.0")
	})
	if !Better(hi3, lo) {
		t.Fatal("MED must not be compared across neighbor ASes")
	}
}

func TestBetterEBGPOverIBGP(t *testing.T) {
	e := mkRoute("10.0.0.0/8", "192.0.2.9", func(r *Route) { r.EBGP = true })
	i := mkRoute("10.0.0.0/8", "192.0.2.1", func(r *Route) { r.EBGP = false })
	if !Better(e, i) {
		t.Fatal("eBGP must beat iBGP")
	}
}

func TestBetterIGPCostAndTieBreaks(t *testing.T) {
	near := mkRoute("10.0.0.0/8", "192.0.2.9", func(r *Route) { r.IGPCost = 5 })
	far := mkRoute("10.0.0.0/8", "192.0.2.1", func(r *Route) { r.IGPCost = 50 })
	if !Better(near, far) {
		t.Fatal("lower IGP cost must win")
	}
	a := mkRoute("10.0.0.0/8", "192.0.2.1", nil)
	b := mkRoute("10.0.0.0/8", "192.0.2.2", nil)
	if !Better(a, b) || Better(b, a) {
		t.Fatal("lower router ID must win tie")
	}
	// Same peer, different path IDs: total order.
	p1 := mkRoute("10.0.0.0/8", "192.0.2.1", func(r *Route) { r.Src.PathID = 1 })
	p2 := mkRoute("10.0.0.0/8", "192.0.2.1", func(r *Route) { r.Src.PathID = 2 })
	if !Better(p1, p2) || Better(p2, p1) {
		t.Fatal("path ID tie-break not a total order")
	}
}

// Property: Better is a strict total order on routes with distinct keys.
func TestQuickBetterTotalOrder(t *testing.T) {
	gen := func(r *rand.Rand, i int) *Route {
		return mkRoute("10.0.0.0/8", "192.0.2.1", func(rt *Route) {
			rt.Src = PeerKey{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i)}), PathID: wire.PathID(r.Intn(3))}
			rt.PeerID = rt.Src.Addr
			rt.EBGP = r.Intn(2) == 0
			rt.IGPCost = uint32(r.Intn(4))
			if r.Intn(2) == 0 {
				rt.Attrs.LocalPref, rt.Attrs.HasLocalPref = uint32(100+r.Intn(3)), true
			}
			if r.Intn(2) == 0 {
				rt.Attrs.MED, rt.Attrs.HasMED = uint32(r.Intn(3)), true
			}
			n := r.Intn(3) + 1
			asns := make([]uint32, n)
			for j := range asns {
				asns[j] = uint32(65000 + r.Intn(4))
			}
			rt.Attrs.ASPath = []wire.Segment{{Type: wire.SegSequence, ASNs: asns}}
			rt.Attrs.Origin = wire.Origin(r.Intn(3))
		})
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		routes := make([]*Route, 8)
		for i := range routes {
			routes[i] = gen(r, i)
		}
		for _, a := range routes {
			if Better(a, a) {
				return false // irreflexive
			}
			for _, b := range routes {
				if a == b {
					continue
				}
				ab, ba := Better(a, b), Better(b, a)
				if ab == ba && a.Src != b.Src {
					return false // antisymmetric + total on distinct keys
				}
				for _, c := range routes {
					// Transitivity holds except across the MED
					// comparison, which only applies between routes
					// from the same neighbor AS — the well-known
					// intransitivity of BGP preference (it is why
					// deterministic-MED exists and why MED can cause
					// oscillation [17,54]). Assert transitivity for
					// MED-free triples.
					if a.Attrs.HasMED || b.Attrs.HasMED || c.Attrs.HasMED {
						continue
					}
					if Better(a, b) && Better(b, c) && !Better(a, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestMEDIntransitivityExists documents that the full decision process
// is NOT transitive once MED is involved — the property behind BGP's
// persistent oscillations [17, 54] and the reason the Loc-RIB always
// recomputes the maximum over all candidates instead of sorting.
func TestMEDIntransitivityExists(t *testing.T) {
	// a, b from neighbor AS 65001 with MEDs 10 < 20; c from AS 65002
	// with a shorter path than b but longer... construct the classic
	// cycle: a beats b (MED), b beats c (router ID), c beats a
	// (router ID)… we only need existence of SOME intransitive triple.
	mk := func(peer string, firstAS uint32, med uint32, hasMED bool) *Route {
		return mkRoute("10.0.0.0/8", peer, func(r *Route) {
			r.Attrs.ASPath = []wire.Segment{{Type: wire.SegSequence, ASNs: []uint32{firstAS, 65002}}}
			r.Attrs.MED, r.Attrs.HasMED = med, hasMED
		})
	}
	a := mk("192.0.2.3", 65001, 10, true)
	b := mk("192.0.2.1", 65001, 20, true)
	c := mk("192.0.2.2", 65099, 0, false)
	// a > b by MED (same neighbor); b vs c and a vs c fall through to
	// router-ID: c(.2) > a(.3)? lower wins: b(.1) beats c(.2), and
	// c(.2) beats a(.3).
	if !Better(a, b) || !Better(b, c) || Better(a, c) {
		t.Skip("this particular triple is not cyclic under the implementation's tie-breaks")
	}
	// Reaching here means a>b, b>c, yet c≥a: intransitivity witnessed.
}

func TestAdjRIBSetRemove(t *testing.T) {
	a := NewAdjRIB()
	r1 := mkRoute("10.0.0.0/8", "192.0.2.1", nil)
	if a.Set(r1) {
		t.Fatal("first Set reported a replacement")
	}
	stored := a.Get(prefix("10.0.0.0/8"), 0)
	if stored == nil || stored == r1 {
		t.Fatal("Set must store a copy, not retain the caller's Route")
	}
	r2 := mkRoute("10.0.0.0/8", "192.0.2.1", func(r *Route) { r.Attrs.Origin = wire.OriginEGP })
	if !a.Set(r2) {
		t.Fatal("replace not reported")
	}
	if a.Len() != 1 {
		t.Fatalf("Len = %d, want 1", a.Len())
	}
	got := a.Get(prefix("10.0.0.0/8"), 0)
	if got == stored {
		t.Fatal("replacement must install a fresh Route, not mutate the stored one in place")
	}
	if stored.Attrs.Origin != wire.OriginIGP {
		t.Fatal("displaced route snapshot was mutated by the replacement")
	}
	if got.Attrs.Origin != wire.OriginEGP {
		t.Fatal("replacement did not update stored route contents")
	}
	if rm := a.Remove(prefix("10.0.0.0/8"), 0); rm != got {
		t.Fatal("Remove returned wrong route")
	}
	if a.Len() != 0 || a.Remove(prefix("10.0.0.0/8"), 0) != nil {
		t.Fatal("Remove of absent route should return nil")
	}
}

func TestAdjRIBAddPathCoexist(t *testing.T) {
	a := NewAdjRIB()
	r1 := mkRoute("10.0.0.0/8", "192.0.2.1", func(r *Route) { r.Src.PathID = 1 })
	r2 := mkRoute("10.0.0.0/8", "192.0.2.1", func(r *Route) { r.Src.PathID = 2 })
	a.Set(r1)
	a.Set(r2)
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2 distinct path IDs", a.Len())
	}
	count := 0
	a.Walk(func(*Route) bool { count++; return true })
	if count != 2 {
		t.Fatalf("walk count = %d", count)
	}
	if n := a.Clear(); n != 2 || a.Len() != 0 {
		t.Fatalf("Clear = %d len=%d", n, a.Len())
	}
}

func TestLocRIBUpdateWithdraw(t *testing.T) {
	l := NewLocRIB()
	r1 := mkRoute("10.0.0.0/8", "192.0.2.2", nil)
	ch, changed := l.Update(r1)
	if !changed || ch.Old != nil || ch.New != r1 {
		t.Fatalf("first update: ch=%+v changed=%v", ch, changed)
	}
	// Better route arrives.
	r2 := mkRoute("10.0.0.0/8", "192.0.2.1", func(r *Route) {
		r.Attrs.LocalPref, r.Attrs.HasLocalPref = 200, true
	})
	ch, changed = l.Update(r2)
	if !changed || ch.Old != r1 || ch.New != r2 {
		t.Fatalf("better update: ch=%+v changed=%v", ch, changed)
	}
	// Worse route arrives: best unchanged.
	r3 := mkRoute("10.0.0.0/8", "192.0.2.3", nil)
	_, changed = l.Update(r3)
	if changed {
		t.Fatal("worse route changed best")
	}
	if l.Prefixes() != 1 || l.Routes() != 3 {
		t.Fatalf("prefixes=%d routes=%d", l.Prefixes(), l.Routes())
	}
	// Withdraw the best: falls back to r1 (lower ID than r3... both
	// default; 192.0.2.2 < 192.0.2.3).
	ch, changed = l.Withdraw(prefix("10.0.0.0/8"), r2.Src)
	if !changed || ch.New != r1 {
		t.Fatalf("withdraw best: ch.New=%v", ch.New)
	}
	// Withdraw remaining.
	l.Withdraw(prefix("10.0.0.0/8"), r1.Src)
	ch, changed = l.Withdraw(prefix("10.0.0.0/8"), r3.Src)
	if !changed || ch.New != nil {
		t.Fatal("final withdraw should empty the prefix")
	}
	if l.Prefixes() != 0 || l.Routes() != 0 {
		t.Fatalf("not empty: prefixes=%d routes=%d", l.Prefixes(), l.Routes())
	}
}

func TestLocRIBWithdrawAbsent(t *testing.T) {
	l := NewLocRIB()
	if _, changed := l.Withdraw(prefix("10.0.0.0/8"), PeerKey{Addr: addr("1.2.3.4")}); changed {
		t.Fatal("withdraw from empty RIB reported change")
	}
	l.Update(mkRoute("10.0.0.0/8", "192.0.2.1", nil))
	if _, changed := l.Withdraw(prefix("10.0.0.0/8"), PeerKey{Addr: addr("9.9.9.9")}); changed {
		t.Fatal("withdraw of absent source reported change")
	}
}

func TestLocRIBImplicitReplace(t *testing.T) {
	l := NewLocRIB()
	r1 := mkRoute("10.0.0.0/8", "192.0.2.1", nil)
	l.Update(r1)
	// Same source announces new attrs: implicit withdraw + replace.
	r2 := mkRoute("10.0.0.0/8", "192.0.2.1", func(r *Route) {
		r.Attrs.ASPath = []wire.Segment{{Type: wire.SegSequence, ASNs: []uint32{1, 2, 3}}}
	})
	ch, changed := l.Update(r2)
	if !changed || ch.New != r2 {
		t.Fatal("implicit replace did not change best")
	}
	if l.Routes() != 1 {
		t.Fatalf("Routes = %d after implicit replace, want 1", l.Routes())
	}
}

func TestLocRIBWithdrawPeer(t *testing.T) {
	l := NewLocRIB()
	for i := 0; i < 10; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16)
		l.Update(mkRoute(p.String(), "192.0.2.1", nil))
		if i%2 == 0 {
			l.Update(mkRoute(p.String(), "192.0.2.2", nil))
		}
	}
	changes := l.WithdrawPeer(addr("192.0.2.1"))
	// All 10 prefixes change best: 5 fall back to peer .2, 5 vanish.
	if len(changes) != 10 {
		t.Fatalf("changes = %d, want 10", len(changes))
	}
	vanished := 0
	for _, ch := range changes {
		if ch.New == nil {
			vanished++
		} else if ch.New.Src.Addr != addr("192.0.2.2") {
			t.Fatalf("fallback best from wrong peer: %v", ch.New)
		}
	}
	if vanished != 5 {
		t.Fatalf("vanished = %d, want 5", vanished)
	}
	if l.Prefixes() != 5 || l.Routes() != 5 {
		t.Fatalf("after teardown: prefixes=%d routes=%d", l.Prefixes(), l.Routes())
	}
}

func TestLocRIBLookupLPM(t *testing.T) {
	l := NewLocRIB()
	l.Update(mkRoute("10.0.0.0/8", "192.0.2.1", nil))
	l.Update(mkRoute("10.1.0.0/16", "192.0.2.2", nil))
	r := l.Lookup(addr("10.1.2.3"))
	if r == nil || r.Prefix != prefix("10.1.0.0/16") {
		t.Fatalf("Lookup = %v, want /16", r)
	}
	r = l.Lookup(addr("10.2.0.1"))
	if r == nil || r.Prefix != prefix("10.0.0.0/8") {
		t.Fatalf("Lookup = %v, want /8", r)
	}
	if l.Lookup(addr("11.0.0.1")) != nil {
		t.Fatal("Lookup outside table should be nil")
	}
}

// Property: LocRIB best is always the Better-maximum of candidates.
func TestQuickLocRIBBestIsMax(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := NewLocRIB()
		p := "10.0.0.0/8"
		var alive []*Route
		for step := 0; step < 60; step++ {
			if len(alive) > 0 && r.Intn(3) == 0 {
				i := r.Intn(len(alive))
				l.Withdraw(prefix(p), alive[i].Src)
				alive = append(alive[:i], alive[i+1:]...)
			} else {
				rt := mkRoute(p, "192.0.2.1", func(rt *Route) {
					rt.Src = PeerKey{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(r.Intn(20))})}
					rt.PeerID = rt.Src.Addr
					rt.IGPCost = uint32(r.Intn(5))
					if r.Intn(2) == 0 {
						rt.Attrs.LocalPref, rt.Attrs.HasLocalPref = uint32(100+r.Intn(5)), true
					}
				})
				for i, a := range alive {
					if a.Src == rt.Src {
						alive = append(alive[:i], alive[i+1:]...)
						break
					}
				}
				alive = append(alive, rt)
				l.Update(rt)
			}
			best := l.Best(prefix(p))
			if len(alive) == 0 {
				if best != nil {
					return false
				}
				continue
			}
			want := alive[0]
			for _, a := range alive[1:] {
				if Better(a, want) {
					want = a
				}
			}
			if best == nil || best.Src != want.Src {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLocRIBUpdate(b *testing.B) {
	b.ReportAllocs()
	l := NewLocRIB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(10 + i%90), byte(i / 90 % 256), byte(i / 23040 % 256), 0}), 24)
		l.Update(&Route{
			Prefix: p,
			Attrs:  &wire.Attrs{Origin: wire.OriginIGP, ASPath: []wire.Segment{{Type: wire.SegSequence, ASNs: []uint32{65001}}}, NextHop: addr("192.0.2.1")},
			Src:    PeerKey{Addr: addr("192.0.2.1")},
			PeerID: addr("192.0.2.1"),
			EBGP:   true,
		})
	}
}
