package rib

// Prefix-hash sharding shared by LocRIB and ShardedAdj. A full
// Internet table (~1M prefixes) under one RWMutex serializes every
// mutator and makes per-client fan-out gathers linear scans under that
// same lock; splitting the table by prefix hash gives each shard its
// own lock and trie so table operations on different prefixes proceed
// independently. The shard of a prefix is a pure function of the
// prefix, so a given (prefix, path) always lands in the same shard and
// per-prefix orderings are preserved no matter how many shards exist.

import (
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"

	"peering/internal/wire"
)

// DefaultShards is the shard count used when a table is created without
// an explicit one: enough shards that workers on every core can run
// without contending (4× GOMAXPROCS), capped to bound per-table fixed
// cost. The count is deliberately small when there is little
// parallelism to gain: every shard splits an upstream batch's
// attrs-groups across that many fan-out frames — one UPDATE per
// (attrs-group, shard) — so each extra shard multiplies the UPDATE
// count every client must parse. On a one-core box that cost buys
// nothing, and two shards suffice to keep the sharded structures and
// their invariants exercised.
func DefaultShards() int {
	g := runtime.GOMAXPROCS(0)
	if g == 1 {
		return 2
	}
	n := 4 * g
	if n > 64 {
		n = 64
	}
	return shardCount(n)
}

// ShardCount normalizes a requested shard count: <= 0 means the
// default, anything else is rounded up to a power of two so the shard
// index is a mask instead of a modulo. Exported so owners of parallel
// per-shard structures (the server's ingest pool and fan-out queues)
// resolve the same count the tables do.
func ShardCount(n int) int { return shardCount(n) }

func shardCount(n int) int {
	if n <= 0 {
		return DefaultShards()
	}
	p := 1
	for p < n && p < 1<<16 {
		p <<= 1
	}
	return p
}

// PrefixShard hashes a prefix to a shard selector; masking with a
// power-of-two shard count picks the shard. Exported so the server can
// partition ingest work and queue slots on the same function the
// tables use, keeping one prefix on one worker end to end.
func PrefixShard(p netip.Prefix) uint32 { return prefixShard(p) }

// prefixShard hashes a prefix to a shard selector (FNV-1a over the
// 16-byte address plus the prefix length, with the high half folded in
// so small masks still see the whole hash).
func prefixShard(p netip.Prefix) uint32 {
	b := p.Addr().As16()
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	h = (h ^ uint32(uint8(p.Bits()))) * 16777619
	return h ^ h>>16
}

// ShardedAdj is a prefix-hash-sharded Adj-RIB, safe for concurrent
// use: each shard is a plain AdjRIB under its own RWMutex. It backs
// the server's per-upstream Adj-RIB-In, where ingest workers mutate
// disjoint shards concurrently while replays and snapshots walk them.
//
// Routes handed out by Get and the walk methods are owned by the
// table and must be treated as read-only snapshots; AdjRIB.Set's
// copy-on-replace contract guarantees a later Set never mutates them.
type ShardedAdj struct {
	shards []adjShard
	mask   uint32
	n      atomic.Int64
}

type adjShard struct {
	mu  sync.RWMutex
	rib *AdjRIB
	// gen counts mutations of this shard (bumped under mu). Snapshot
	// consumers (the server's bulk initial sync) use it to tell whether
	// a cached per-shard view is still current.
	gen uint64
}

// NewShardedAdj returns an empty table with n shards (rounded up to a
// power of two; n <= 0 means DefaultShards).
func NewShardedAdj(n int) *ShardedAdj {
	n = shardCount(n)
	s := &ShardedAdj{shards: make([]adjShard, n), mask: uint32(n - 1)}
	for i := range s.shards {
		s.shards[i].rib = NewAdjRIB()
	}
	return s
}

// Shards reports the shard count.
func (s *ShardedAdj) Shards() int { return len(s.shards) }

// ShardOf returns the index of the shard holding prefix p. Callers
// that partition work per shard (the server's ingest pool) use it to
// route operations to the worker owning the shard.
func (s *ShardedAdj) ShardOf(p netip.Prefix) int {
	return int(prefixShard(p) & s.mask)
}

// SetInterner configures attribute canonicalization on every shard.
// Call before concurrent use.
func (s *ShardedAdj) SetInterner(t *wire.InternTable) {
	for i := range s.shards {
		s.shards[i].rib.SetInterner(t)
	}
}

// Set stores a copy of *r (see AdjRIB.Set), reporting whether it
// replaced an existing route.
func (s *ShardedAdj) Set(r *Route) bool {
	sh := &s.shards[prefixShard(r.Prefix)&s.mask]
	sh.mu.Lock()
	replaced := sh.rib.Set(r)
	sh.gen++
	sh.mu.Unlock()
	if !replaced {
		s.n.Add(1)
	}
	return replaced
}

// Remove deletes the route for (prefix, id), returning it if present.
func (s *ShardedAdj) Remove(p netip.Prefix, id wire.PathID) *Route {
	sh := &s.shards[prefixShard(p)&s.mask]
	sh.mu.Lock()
	r := sh.rib.Remove(p, id)
	sh.gen++
	sh.mu.Unlock()
	if r != nil {
		s.n.Add(-1)
	}
	return r
}

// Update runs fn on shard i's table under its write lock: one lock
// round-trip (and one generation bump) covers an entire batch of Sets
// and Removes, which is what makes batched ingest one shard-writer
// pass instead of a lock acquisition per route. The route-count delta
// is folded into Len from the table's own before/after lengths. fn
// must only mutate routes whose prefixes hash to shard i — everything
// the batching dispatcher sends a worker already does.
func (s *ShardedAdj) Update(i int, fn func(*AdjRIB)) {
	sh := &s.shards[i]
	sh.mu.Lock()
	before := sh.rib.Len()
	fn(sh.rib)
	d := sh.rib.Len() - before
	sh.gen++
	sh.mu.Unlock()
	if d != 0 {
		s.n.Add(int64(d))
	}
}

// ReadShard runs fn on shard i's table under its read lock, passing
// the shard's current generation. Mutators are excluded while fn runs,
// so anything fn enqueues is ordered before any route that later
// supersedes it — the same ordering guarantee Walk gives the replay
// path, but scoped to one shard so bulk initial sync can build (and
// cache, keyed by gen) one snapshot frame per shard.
func (s *ShardedAdj) ReadShard(i int, fn func(gen uint64, t *AdjRIB)) {
	sh := &s.shards[i]
	sh.mu.RLock()
	fn(sh.gen, sh.rib)
	sh.mu.RUnlock()
}

// Get returns the route for (prefix, id); treat it as read-only.
func (s *ShardedAdj) Get(p netip.Prefix, id wire.PathID) *Route {
	sh := &s.shards[prefixShard(p)&s.mask]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.rib.Get(p, id)
}

// Len reports the number of stored routes (not prefixes).
func (s *ShardedAdj) Len() int { return int(s.n.Load()) }

// Walk visits every stored route, holding each shard's read lock for
// the duration of that shard's callbacks. Mutators of a shard are
// therefore excluded while it is being walked — the property the
// server's replay path relies on to never enqueue a route that a
// concurrent ingest has already superseded — but the walk is not a
// point-in-time snapshot across shards.
func (s *ShardedAdj) Walk(fn func(*Route) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		done := false
		sh.rib.Walk(func(r *Route) bool {
			if !fn(r) {
				done = true
				return false
			}
			return true
		})
		sh.mu.RUnlock()
		if done {
			return
		}
	}
}

// WalkGrouped visits every stored route grouped by shared attribute
// set, accumulated across all shards (shard read locks are released
// before fn runs, so fn may send on slow transports freely). The NLRI
// slices are freshly built per call and may be retained.
func (s *ShardedAdj) WalkGrouped(fn func(attrs *wire.Attrs, nlris []wire.NLRI)) {
	groups := make(map[*wire.Attrs][]wire.NLRI)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		sh.rib.Walk(func(r *Route) bool {
			groups[r.Attrs] = append(groups[r.Attrs], wire.NLRI{Prefix: r.Prefix, ID: r.Src.PathID})
			return true
		})
		sh.mu.RUnlock()
	}
	for attrs, ns := range groups {
		fn(attrs, ns)
	}
}

// MarkAllStale flags every stored route stale (graceful restart
// entry), returning how many were newly marked.
func (s *ShardedAdj) MarkAllStale() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.rib.MarkAllStale()
		sh.gen++
		sh.mu.Unlock()
	}
	return n
}

// SweepStale removes and returns every route still marked stale.
func (s *ShardedAdj) SweepStale() []*Route {
	var stale []*Route
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		swept := sh.rib.SweepStale()
		sh.gen++
		sh.mu.Unlock()
		s.n.Add(int64(-len(swept)))
		stale = append(stale, swept...)
	}
	return stale
}

// StaleCount reports how many routes are currently marked stale.
func (s *ShardedAdj) StaleCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.rib.StaleCount()
		sh.mu.RUnlock()
	}
	return n
}

// Clear drops all routes, returning how many were removed.
func (s *ShardedAdj) Clear() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.rib.Clear()
		sh.gen++
		sh.mu.Unlock()
	}
	s.n.Add(int64(-n))
	return n
}
