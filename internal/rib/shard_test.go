package rib

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"

	"peering/internal/wire"
)

// ---------------------------------------------------------------------
// Bugfix regressions

// TestNilAttrsRoutes is the attribute-less table test: String, Better,
// and the Loc-RIB decision process must all tolerate routes carrying no
// attributes (pre-fix, Better and String dereferenced r.Attrs
// unconditionally and panicked).
func TestNilAttrsRoutes(t *testing.T) {
	bare := func(p, peer string) *Route {
		return mkRoute(p, peer, func(r *Route) { r.Attrs = nil })
	}
	cases := []struct {
		name string
		a, b *Route
	}{
		{"both nil", bare("10.0.0.0/24", "192.0.2.1"), bare("10.0.0.0/24", "192.0.2.2")},
		{"a nil", bare("10.0.0.0/24", "192.0.2.1"), mkRoute("10.0.0.0/24", "192.0.2.2", nil)},
		{"b nil", mkRoute("10.0.0.0/24", "192.0.2.1", nil), bare("10.0.0.0/24", "192.0.2.2")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// String must render, not panic.
			_ = tc.a.String()
			_ = tc.b.String()
			// Better must stay a strict weak order: not both directions.
			ab, ba := Better(tc.a, tc.b), Better(tc.b, tc.a)
			if ab && ba {
				t.Fatalf("Better claims both %v > %v and the reverse", tc.a, tc.b)
			}
			// An attribute-less route has path length 0: it must win step 2
			// against any route with a non-empty path (equal LOCAL_PREF).
			l := NewLocRIB()
			l.Update(tc.a)
			l.Update(tc.b)
			if best := l.Best(prefix("10.0.0.0/24")); best == nil {
				t.Fatal("no best route selected")
			}
		})
	}
}

// TestWithdrawReleasesBackingArray is the WithdrawPeer lifetime-leak
// regression: compacting candidates with kept := e.candidates[:0] used
// to leave the dropped *Route pointers alive in the backing array tail.
func TestWithdrawPeerReleasesBackingArray(t *testing.T) {
	l := NewLocRIB()
	p := "10.1.0.0/24"
	l.Update(mkRoute(p, "192.0.2.1", nil))
	l.Update(mkRoute(p, "192.0.2.2", nil))
	l.Update(mkRoute(p, "192.0.2.3", nil))

	// Drop the two peers that sort last so survivors compact to the front.
	l.WithdrawPeer(addr("192.0.2.2"))
	l.WithdrawPeer(addr("192.0.2.3"))

	e := locEntry(t, l, prefix(p))
	if len(e.candidates) != 1 {
		t.Fatalf("candidates = %d, want 1", len(e.candidates))
	}
	for i, c := range e.candidates[:cap(e.candidates)] {
		if i >= len(e.candidates) && c != nil {
			t.Fatalf("backing array slot %d still pins %v after WithdrawPeer", i, c)
		}
	}
}

// TestWithdrawReleasesSlot covers the same leak class on single-route
// Withdraw: the vacated last slot must not pin the removed route.
func TestWithdrawReleasesSlot(t *testing.T) {
	l := NewLocRIB()
	p := "10.2.0.0/24"
	l.Update(mkRoute(p, "192.0.2.1", nil))
	l.Update(mkRoute(p, "192.0.2.2", nil))
	l.Withdraw(prefix(p), PeerKey{Addr: addr("192.0.2.1")})

	e := locEntry(t, l, prefix(p))
	if len(e.candidates) != 1 {
		t.Fatalf("candidates = %d, want 1", len(e.candidates))
	}
	for i, c := range e.candidates[:cap(e.candidates)] {
		if i >= len(e.candidates) && c != nil {
			t.Fatalf("backing array slot %d still pins %v after Withdraw", i, c)
		}
	}
}

// locEntry digs the internal entry for p out of l (test-only).
func locEntry(t *testing.T, l *LocRIB, p netip.Prefix) *entry {
	t.Helper()
	sh := l.shard(p)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.t.Get(p)
	if !ok {
		t.Fatalf("prefix %v not present", p)
	}
	return e
}

// TestAdjRIBSetAliasing is the AdjRIB.Set / LocRIB.Update aliasing
// regression: Set used to overwrite the stored Route in place, so a
// pointer previously passed to LocRIB.Update was silently mutated
// without a recompute. Now a replacement must leave the old snapshot
// intact until the caller re-runs the decision process.
func TestAdjRIBSetAliasing(t *testing.T) {
	intern := wire.NewInternTable()
	adj := NewAdjRIB()
	adj.SetInterner(intern)
	loc := NewLocRIB()
	p := prefix("10.3.0.0/24")

	adj.Set(mkRoute("10.3.0.0/24", "192.0.2.1", nil))
	stored := adj.Get(p, 0)
	loc.Update(stored)
	oldAttrs := stored.Attrs

	// Replace the route with a longer path. Pre-fix this overwrote
	// *stored, mutating the Loc-RIB's candidate behind its back.
	adj.Set(mkRoute("10.3.0.0/24", "192.0.2.1", func(r *Route) {
		r.Attrs = &wire.Attrs{
			Origin:  wire.OriginIGP,
			ASPath:  []wire.Segment{{Type: wire.SegSequence, ASNs: []uint32{65001, 65002, 65003, 65004}}},
			NextHop: addr("192.0.2.1"),
		}
	}))

	best := loc.Best(p)
	if best == nil {
		t.Fatal("no best route")
	}
	if best.Attrs != oldAttrs {
		t.Fatalf("Loc-RIB best attrs mutated by AdjRIB.Set without a recompute: got %v, want the original snapshot", best.Attrs.PathString())
	}

	// The boundary protocol: feed the freshly stored route back through
	// Update, and the best must be re-decided on the new attrs.
	loc.Update(adj.Get(p, 0))
	if got := loc.Best(p).Attrs; got == oldAttrs || got.PathLen() != 4 {
		t.Fatalf("best not re-decided after Update: path %v", got.PathString())
	}
}

// ---------------------------------------------------------------------
// Sharding invariance and concurrency

// TestShardingInvariance drives the same announce/withdraw sequence
// into 1-, 4-, and 16-shard tables and requires identical best routes:
// the shard count must never change a decision.
func TestShardingInvariance(t *testing.T) {
	tables := []*LocRIB{NewLocRIBShards(1), NewLocRIBShards(4), NewLocRIBShards(16)}
	rng := rand.New(rand.NewSource(7))
	peers := []string{"192.0.2.1", "192.0.2.2", "192.0.2.3", "192.0.2.4"}
	prefixes := make([]netip.Prefix, 200)
	for i := range prefixes {
		prefixes[i] = prefix(fmt.Sprintf("10.%d.%d.0/24", i/250, i%250))
	}
	for step := 0; step < 4000; step++ {
		pi, peer := rng.Intn(len(prefixes)), peers[rng.Intn(len(peers))]
		if rng.Intn(3) == 0 {
			for _, l := range tables {
				l.Withdraw(prefixes[pi], PeerKey{Addr: addr(peer)})
			}
			continue
		}
		aslen := 1 + rng.Intn(4)
		for _, l := range tables {
			l.Update(mkRoute(prefixes[pi].String(), peer, func(r *Route) {
				path := make([]uint32, aslen)
				for j := range path {
					path[j] = 65000 + uint32(j)
				}
				r.Attrs = &wire.Attrs{Origin: wire.OriginIGP, ASPath: []wire.Segment{{Type: wire.SegSequence, ASNs: path}}, NextHop: addr(peer)}
			}))
		}
	}
	ref := tables[0]
	for _, l := range tables[1:] {
		if ref.Prefixes() != l.Prefixes() || ref.Routes() != l.Routes() {
			t.Fatalf("size mismatch: %d shards has %d/%d, 1 shard has %d/%d",
				l.Shards(), l.Prefixes(), l.Routes(), ref.Prefixes(), ref.Routes())
		}
	}
	for _, p := range prefixes {
		want := ref.Best(p)
		for _, l := range tables[1:] {
			got := l.Best(p)
			switch {
			case (want == nil) != (got == nil):
				t.Fatalf("%v: best presence differs between 1 and %d shards", p, l.Shards())
			case want != nil && (want.Src != got.Src || !want.Attrs.Equal(got.Attrs)):
				t.Fatalf("%v: best differs between 1 and %d shards: %v vs %v", p, l.Shards(), want, got)
			}
		}
		// LPM must agree with exact-match presence regardless of shard
		// placement of covering prefixes.
		if want != nil {
			for _, l := range tables {
				if lk := l.Lookup(p.Addr()); lk == nil || lk.Prefix != want.Prefix {
					t.Fatalf("%v: Lookup(%v) = %v on %d shards", p, p.Addr(), lk, l.Shards())
				}
			}
		}
	}
}

// TestLocRIBConcurrentShardOps exercises concurrent shard-local
// Update/Withdraw/Lookup/WalkBest under the race detector.
func TestLocRIBConcurrentShardOps(t *testing.T) {
	l := NewLocRIBShards(8)
	const writers, iters = 4, 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			peer := fmt.Sprintf("192.0.2.%d", w+1)
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				p := fmt.Sprintf("10.%d.%d.0/24", w, rng.Intn(64))
				if rng.Intn(4) == 0 {
					l.Withdraw(prefix(p), PeerKey{Addr: addr(peer)})
				} else {
					l.Update(mkRoute(p, peer, nil))
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lookup(addr(fmt.Sprintf("10.%d.%d.1", i%writers, i%64)))
				n := 0
				l.WalkBest(func(*Route) bool { n++; return n < 50 })
				_ = l.Routes()
			}
		}(r)
	}
	wg.Wait()
	if l.Prefixes() == 0 {
		t.Fatal("table empty after concurrent load")
	}
}

// TestShardedAdjConcurrent exercises ShardedAdj under concurrent
// Set/Remove/Walk/stale cycling (race-detector coverage for the
// server's ingest-worker access pattern).
func TestShardedAdjConcurrent(t *testing.T) {
	s := NewShardedAdj(8)
	s.SetInterner(wire.NewInternTable())
	var wg sync.WaitGroup
	const writers, iters = 4, 300
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				p := fmt.Sprintf("10.%d.%d.0/24", w, rng.Intn(64))
				if rng.Intn(4) == 0 {
					s.Remove(prefix(p), 0)
				} else {
					s.Set(mkRoute(p, "192.0.2.9", nil))
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			n := 0
			s.Walk(func(*Route) bool { n++; return true })
			s.WalkGrouped(func(*wire.Attrs, []wire.NLRI) {})
			_ = s.Len()
			_ = s.StaleCount()
		}
	}()
	wg.Wait()

	// Stale round-trip: everything marked must sweep, leaving zero.
	n := s.MarkAllStale()
	if n != s.Len() {
		t.Fatalf("marked %d of %d", n, s.Len())
	}
	if got := len(s.SweepStale()); got != n {
		t.Fatalf("swept %d, want %d", got, n)
	}
	if s.Len() != 0 || s.StaleCount() != 0 {
		t.Fatalf("table not empty after sweep: len=%d stale=%d", s.Len(), s.StaleCount())
	}
}

// TestShardedAdjParity checks ShardedAdj against a plain AdjRIB over a
// deterministic op sequence: same membership, same Len, same groups.
func TestShardedAdjParity(t *testing.T) {
	ref := NewAdjRIB()
	s := NewShardedAdj(16)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		p := fmt.Sprintf("10.%d.%d.0/24", rng.Intn(8), rng.Intn(200))
		if rng.Intn(3) == 0 {
			ref.Remove(prefix(p), 0)
			s.Remove(prefix(p), 0)
		} else {
			ref.Set(mkRoute(p, "192.0.2.1", nil))
			s.Set(mkRoute(p, "192.0.2.1", nil))
		}
	}
	if ref.Len() != s.Len() {
		t.Fatalf("Len: sharded %d, ref %d", s.Len(), ref.Len())
	}
	ref.Walk(func(r *Route) bool {
		if s.Get(r.Prefix, r.Src.PathID) == nil {
			t.Fatalf("sharded table missing %v", r.Prefix)
		}
		return true
	})
	if n := s.Clear(); n != ref.Len() {
		t.Fatalf("Clear removed %d, want %d", n, ref.Len())
	}
	if s.Len() != 0 {
		t.Fatalf("Len after Clear = %d", s.Len())
	}
}
