package portal

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"sync"
	"testing"
	"time"

	"peering/internal/clock"
	"peering/internal/telemetry"
)

var epoch = time.Date(2014, 10, 27, 0, 0, 0, 0, time.UTC)

func prefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func newPortal(t *testing.T) (*Portal, *clock.Virtual, *execLog) {
	t.Helper()
	v := clock.NewVirtual(epoch)
	ex := &execLog{}
	var notes []string
	p, err := New(prefix("184.164.224.0/19"), v, ex, func(user string, a Announcement) {
		notes = append(notes, user)
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, v, ex
}

type execLog struct {
	mu   sync.Mutex
	runs []Announcement
}

func (e *execLog) Execute(a Announcement) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.runs = append(e.runs, a)
	return nil
}

func (e *execLog) count() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.runs)
}

func TestPoolCarving(t *testing.T) {
	p, _, _ := newPortal(t)
	// A /19 holds 32 /24s — the paper's client-per-/24 budget.
	if got := p.PoolSize(); got != 32 {
		t.Fatalf("pool = %d /24s, want 32", got)
	}
	if _, err := New(prefix("10.0.0.0/25"), nil, nil, nil); err == nil {
		t.Fatal("sub-/24 supernet accepted")
	}
}

func TestExperimentLifecycle(t *testing.T) {
	p, _, _ := newPortal(t)
	if _, err := p.CreateAccount("brandon", "b@usc.edu"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateAccount("brandon", "dup@usc.edu"); err == nil {
		t.Fatal("duplicate account accepted")
	}
	if _, err := p.Propose("ghost", "e1", "x"); err == nil {
		t.Fatal("proposal from unknown account accepted")
	}
	e, err := p.Propose("brandon", "e1", "BGP convergence study")
	if err != nil || e.Status != StatusPending {
		t.Fatalf("propose: %v %+v", err, e)
	}
	ap, err := p.Approve("e1", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ap.Allocation) != 1 || ap.Allocation[0].Bits() != 24 {
		t.Fatalf("allocation = %v", ap.Allocation)
	}
	if p.PoolSize() != 31 {
		t.Fatalf("pool = %d after approval", p.PoolSize())
	}
	if _, err := p.Approve("e1", false); err == nil {
		t.Fatal("double approval accepted")
	}
	if err := p.Retire("e1"); err != nil {
		t.Fatal(err)
	}
	if p.PoolSize() != 32 {
		t.Fatalf("pool = %d after retire, want 32 (prefix returned)", p.PoolSize())
	}
	got, _ := p.Experiment("e1")
	if got.Status != StatusRetired || got.Allocation != nil {
		t.Fatalf("retired experiment = %+v", got)
	}
}

func TestRejectPath(t *testing.T) {
	p, _, _ := newPortal(t)
	p.CreateAccount("u", "u@x")
	p.Propose("u", "bad", "prefix hijack for profit")
	if err := p.Reject("bad"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Approve("bad", false); err == nil {
		t.Fatal("rejected experiment approved")
	}
	if p.PoolSize() != 32 {
		t.Fatal("rejection consumed a prefix")
	}
}

func TestPoolExhaustion(t *testing.T) {
	p, _, _ := newPortal(t)
	p.CreateAccount("u", "u@x")
	for i := 0; i < 32; i++ {
		id := string(rune('a'+i%26)) + string(rune('0'+i/26))
		p.Propose("u", id, "exp")
		if _, err := p.Approve(id, false); err != nil {
			t.Fatalf("approval %d failed: %v", i, err)
		}
	}
	p.Propose("u", "extra", "exp")
	if _, err := p.Approve("extra", false); err == nil {
		t.Fatal("approval beyond pool capacity succeeded")
	}
	// Donated prefixes extend capacity (§3).
	p.DonatePrefix(prefix("192.0.2.0/24"))
	if _, err := p.Approve("extra", false); err != nil {
		t.Fatalf("approval after donation failed: %v", err)
	}
}

func TestScheduleExecutesAndNotifies(t *testing.T) {
	v := clock.NewVirtual(epoch)
	ex := &execLog{}
	var mu sync.Mutex
	var notified []string
	p, _ := New(prefix("184.164.224.0/19"), v, ex, func(user string, a Announcement) {
		mu.Lock()
		notified = append(notified, user)
		mu.Unlock()
	})
	p.CreateAccount("u", "u@x")
	p.Propose("u", "e1", "t")
	e, _ := p.Approve("e1", false)

	a, err := p.Schedule(Announcement{
		Experiment: "e1",
		Prefix:     e.Allocation[0],
		At:         epoch.Add(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == 0 {
		t.Fatal("no announcement ID assigned")
	}
	if ex.count() != 0 {
		t.Fatal("executed before scheduled time")
	}
	v.Advance(2 * time.Hour)
	if ex.count() != 1 {
		t.Fatalf("executed %d times, want 1", ex.count())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(notified) != 1 || notified[0] != "u" {
		t.Fatalf("notified = %v", notified)
	}
	anns := p.Announcements("e1")
	if len(anns) != 1 || !anns[0].Executed {
		t.Fatalf("announcements = %+v", anns)
	}
}

func TestScheduleValidatesPrefixOwnership(t *testing.T) {
	p, _, _ := newPortal(t)
	p.CreateAccount("u", "u@x")
	p.Propose("u", "e1", "t")
	p.Approve("e1", false)
	_, err := p.Schedule(Announcement{Experiment: "e1", Prefix: prefix("8.8.8.0/24"), At: epoch})
	if err == nil {
		t.Fatal("announcement outside allocation scheduled")
	}
	// Unapproved experiment cannot schedule.
	p.Propose("u", "e2", "t")
	_, err = p.Schedule(Announcement{Experiment: "e2", Prefix: prefix("184.164.225.0/24"), At: epoch})
	if err == nil {
		t.Fatal("unapproved experiment scheduled")
	}
}

func TestMeasurements(t *testing.T) {
	p, v, _ := newPortal(t)
	p.Record(Measurement{Experiment: "e1", Kind: "ping", Detail: "rtt=12ms"})
	v.Advance(time.Minute)
	p.Record(Measurement{Experiment: "e1", Kind: "bgp-update", Detail: "announce seen at collector"})
	p.Record(Measurement{Experiment: "other", Kind: "ping", Detail: "x"})
	ms := p.Measurements("e1")
	if len(ms) != 2 || ms[0].Kind != "ping" || ms[1].Kind != "bgp-update" {
		t.Fatalf("measurements = %+v", ms)
	}
}

// ---------------------------------------------------------------------
// HTTP API

func post(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPEndToEnd(t *testing.T) {
	v := clock.NewVirtual(epoch)
	ex := &execLog{}
	p, _ := New(prefix("184.164.224.0/19"), v, ex, nil)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	if resp := post(t, srv, "/accounts", map[string]string{"user": "kyriakos", "email": "k@usc.edu"}); resp.StatusCode != 200 {
		t.Fatalf("create account: %d", resp.StatusCode)
	}
	if resp := post(t, srv, "/experiments", map[string]string{"user": "kyriakos", "id": "poiroot", "title": "root cause analysis"}); resp.StatusCode != 200 {
		t.Fatalf("propose: %d", resp.StatusCode)
	}
	resp := post(t, srv, "/experiments/approve", map[string]any{"id": "poiroot"})
	if resp.StatusCode != 200 {
		t.Fatalf("approve: %d", resp.StatusCode)
	}
	var exp Experiment
	json.NewDecoder(resp.Body).Decode(&exp)
	if len(exp.Allocation) != 1 {
		t.Fatalf("approved = %+v", exp)
	}

	// Schedule through the API.
	resp = post(t, srv, "/announcements", map[string]any{
		"experiment": "poiroot",
		"prefix":     exp.Allocation[0].String(),
		"at":         epoch.Add(time.Minute),
	})
	if resp.StatusCode != 200 {
		t.Fatalf("schedule: %d", resp.StatusCode)
	}
	v.Advance(2 * time.Minute)
	if ex.count() != 1 {
		t.Fatal("scheduled announcement not executed")
	}

	// Reads.
	get, err := http.Get(srv.URL + "/experiments?id=poiroot")
	if err != nil || get.StatusCode != 200 {
		t.Fatalf("get experiment: %v %d", err, get.StatusCode)
	}
	get, _ = http.Get(srv.URL + "/announcements?experiment=poiroot")
	var anns []Announcement
	json.NewDecoder(get.Body).Decode(&anns)
	if len(anns) != 1 {
		t.Fatalf("announcements = %+v", anns)
	}
	get, _ = http.Get(srv.URL + "/pool")
	var pool map[string]int
	json.NewDecoder(get.Body).Decode(&pool)
	if pool["available"] != 31 {
		t.Fatalf("pool = %v", pool)
	}
}

func TestHTTPErrors(t *testing.T) {
	p, _, _ := newPortal(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	// Malformed JSON.
	resp, _ := http.Post(srv.URL+"/accounts", "application/json", bytes.NewReader([]byte("{")))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed: %d", resp.StatusCode)
	}
	// Unknown experiment.
	resp = post(t, srv, "/experiments/approve", map[string]string{"id": "nope"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unknown approve: %d", resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL + "/experiments?id=nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get unknown: %d", resp.StatusCode)
	}
}

// TestMetricsAndPprofEndpoints: GET /metrics proxies the registered
// handler (404 before registration), and /debug/pprof/* answers 404
// until EnablePprof flips the gate — even on an already-built Handler.
func TestMetricsAndPprofEndpoints(t *testing.T) {
	p, _, _ := newPortal(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, _ := http.Get(srv.URL + "/metrics")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unregistered /metrics: %d, want 404", resp.StatusCode)
	}
	reg := telemetry.NewRegistry()
	reg.Counter("peering_portal_test_total", "x").Add(7)
	p.SetMetricsHandler(reg.Handler())
	resp, _ = http.Get(srv.URL + "/metrics")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("peering_portal_test_total 7")) {
		t.Fatalf("/metrics = %d %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("content type = %q", ct)
	}

	resp, _ = http.Get(srv.URL + "/debug/pprof/")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof before enable: %d, want 404", resp.StatusCode)
	}
	p.EnablePprof()
	resp, _ = http.Get(srv.URL + "/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof after enable: %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestArchiveEndpoints: GET /archive and POST /archive/rotate proxy the
// registered archive source — status 404s before registration, rotate
// answers 409 with a JSON error body both when archiving is disabled
// and when rotation itself fails — and a nil source unregisters.
func TestArchiveEndpoints(t *testing.T) {
	p, _, _ := newPortal(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, _ := http.Get(srv.URL + "/archive")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unregistered /archive: %d, want 404", resp.StatusCode)
	}
	// Rotation with archiving disabled is a config conflict, not a
	// missing route: 409, and the body must be machine-readable JSON.
	resp = post(t, srv, "/archive/rotate", struct{}{})
	var disabled map[string]string
	json.NewDecoder(resp.Body).Decode(&disabled)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || disabled["error"] == "" {
		t.Fatalf("disabled rotate = %d %v, want 409 with JSON error body", resp.StatusCode, disabled)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("disabled rotate content type = %q", ct)
	}

	rotateErr := error(nil)
	p.SetArchiveSource(
		func() any { return map[string]any{"segment": "updates-0001.mrt", "records": 42} },
		func() (any, error) { return map[string]string{"sealed": "updates-0001.mrt"}, rotateErr },
	)
	resp, _ = http.Get(srv.URL + "/archive")
	var st map[string]any
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st["records"] != float64(42) {
		t.Fatalf("/archive = %d %v", resp.StatusCode, st)
	}

	resp = post(t, srv, "/archive/rotate", struct{}{})
	var out map[string]string
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out["sealed"] != "updates-0001.mrt" {
		t.Fatalf("rotate = %d %v", resp.StatusCode, out)
	}

	rotateErr = errors.New("archive empty")
	resp = post(t, srv, "/archive/rotate", struct{}{})
	var failed map[string]string
	json.NewDecoder(resp.Body).Decode(&failed)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || failed["error"] != "archive empty" {
		t.Fatalf("failed rotate = %d %v, want 409 {error: archive empty}", resp.StatusCode, failed)
	}

	p.SetArchiveSource(nil, nil)
	resp, _ = http.Get(srv.URL + "/archive")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unregistered again /archive: %d, want 404", resp.StatusCode)
	}
	resp = post(t, srv, "/archive/rotate", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rotate after unregister = %d, want 409", resp.StatusCode)
	}
}

// TestPolicyEndpoints: GET /policy and POST /policy/reload proxy the
// registered policy source. Status 404s before registration, reload
// answers 409 when no engine is attached, the reload body passes
// through verbatim as rule text, and reload errors (bad rule files)
// come back as 409 JSON without dropping the previous registration.
func TestPolicyEndpoints(t *testing.T) {
	p, _, _ := newPortal(t)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, _ := http.Get(srv.URL + "/policy")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unregistered /policy: %d, want 404", resp.StatusCode)
	}
	resp, _ = http.Post(srv.URL+"/policy/reload", "text/plain", bytes.NewReader([]byte("default deny\n")))
	var unattached map[string]string
	json.NewDecoder(resp.Body).Decode(&unattached)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || unattached["error"] == "" {
		t.Fatalf("unattached reload = %d %v, want 409 with JSON error body", resp.StatusCode, unattached)
	}

	var gotText string
	reloadErr := error(nil)
	p.SetPolicySource(
		func() any { return map[string]any{"generation": 3, "prefix_rules": 7} },
		func(text string) (any, error) {
			gotText = text
			return map[string]any{"generation": 4}, reloadErr
		},
	)
	resp, _ = http.Get(srv.URL + "/policy")
	var st map[string]any
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st["prefix_rules"] != float64(7) {
		t.Fatalf("/policy = %d %v", resp.StatusCode, st)
	}

	ruleText := "default permit\nprefix deny 184.164.224.0/19 le 32\n"
	resp, _ = http.Post(srv.URL+"/policy/reload", "text/plain", bytes.NewReader([]byte(ruleText)))
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out["generation"] != float64(4) {
		t.Fatalf("reload = %d %v", resp.StatusCode, out)
	}
	if gotText != ruleText {
		t.Fatalf("reload body = %q, want %q", gotText, ruleText)
	}

	reloadErr = errors.New("line 2: bad prefix")
	resp, _ = http.Post(srv.URL+"/policy/reload", "text/plain", bytes.NewReader([]byte("junk\n")))
	var failed map[string]string
	json.NewDecoder(resp.Body).Decode(&failed)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || failed["error"] != "line 2: bad prefix" {
		t.Fatalf("failed reload = %d %v, want 409 {error: line 2: bad prefix}", resp.StatusCode, failed)
	}

	p.SetPolicySource(nil, nil)
	resp, _ = http.Get(srv.URL + "/policy")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unregistered again /policy: %d, want 404", resp.StatusCode)
	}
}
