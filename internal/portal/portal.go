// Package portal implements the testbed's management web service (§3,
// "Easing management and experiment deployment"): researcher accounts,
// experiment proposals vetted by an advisory board, automated prefix
// provisioning (a /24 per client out of the testbed's /19), scheduled
// announcements with researcher notification, and a record of
// control-plane measurements.
//
// The portal is an ordinary net/http JSON API backed by an in-memory
// store with optional JSON snapshot persistence — the "database
// tracking all the relevant data" the paper describes.
//
// It is also the operator surface: GET /stats serves the JSON counter
// snapshot (SetStatsSource), GET /metrics the Prometheus exposition of
// the same instruments (SetMetricsHandler), and /debug/pprof/* serves
// runtime profiles once EnablePprof has been called.
package portal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"net/netip"
	"sort"
	"sync"
	"time"

	"peering/internal/clock"
)

// ExperimentStatus is the lifecycle of a proposal.
type ExperimentStatus string

// Experiment lifecycle states.
const (
	StatusPending  ExperimentStatus = "pending"  // awaiting advisory board
	StatusApproved ExperimentStatus = "approved" // provisioned
	StatusRejected ExperimentStatus = "rejected"
	StatusRetired  ExperimentStatus = "retired"
)

// Account is a researcher account.
type Account struct {
	User    string    `json:"user"`
	Email   string    `json:"email"`
	Created time.Time `json:"created"`
}

// Experiment is a vetted (or pending) experiment with its resources.
type Experiment struct {
	ID     string           `json:"id"`
	User   string           `json:"user"`
	Title  string           `json:"title"`
	Status ExperimentStatus `json:"status"`
	// Allocation is the prefix set provisioned on approval.
	Allocation []netip.Prefix `json:"allocation,omitempty"`
	// SpoofGrant marks approval for controlled spoofing experiments.
	SpoofGrant bool      `json:"spoof_grant,omitempty"`
	Created    time.Time `json:"created"`
}

// Announcement is a scheduled routing action.
type Announcement struct {
	ID         int          `json:"id"`
	Experiment string       `json:"experiment"`
	Prefix     netip.Prefix `json:"prefix"`
	// Withdraw retracts instead of announcing.
	Withdraw bool `json:"withdraw,omitempty"`
	// Upstreams restricts the action (empty = all).
	Upstreams []uint32  `json:"upstreams,omitempty"`
	At        time.Time `json:"at"`
	Executed  bool      `json:"executed"`
}

// Measurement is one recorded control/data-plane observation.
type Measurement struct {
	Time       time.Time `json:"time"`
	Experiment string    `json:"experiment"`
	Kind       string    `json:"kind"` // "bgp-update", "ping", "traceroute"
	Detail     string    `json:"detail"`
}

// Executor applies approved routing actions to the testbed. The portal
// calls it when a scheduled announcement comes due.
type Executor interface {
	Execute(a Announcement) error
}

// ExecutorFunc adapts a function to Executor.
type ExecutorFunc func(Announcement) error

// Execute implements Executor.
func (f ExecutorFunc) Execute(a Announcement) error { return f(a) }

// Notifier tells a researcher their announcement has run so they can
// start measurements (§3). Nil notifiers are skipped.
type Notifier func(user string, a Announcement)

// maxPolicyBody caps a POST /policy/reload body. A full operator rule
// file for the testbed is a few kilobytes; 4 MiB leaves room for dense
// ROA tables without letting a stray upload balloon memory.
const maxPolicyBody = 4 << 20

// Portal is the management service.
type Portal struct {
	clk      clock.Clock
	executor Executor
	notify   Notifier

	mu             sync.Mutex
	onApprove      func(Experiment)
	statsSource    func() any
	archiveStatus  func() any
	archiveRotate  func() (any, error)
	policyStatus   func() any
	policyReload   func(text string) (any, error)
	federation     func() any
	metricsHandler http.Handler
	pprofEnabled   bool
	pool           []netip.Prefix // unallocated /24s
	accounts       map[string]*Account
	experiments    map[string]*Experiment
	announcements  []*Announcement
	measurements   []Measurement
	nextAnnID      int
}

// SetApproveHook registers a callback fired after each approval — the
// automated provisioning step (§3: "at which point the provisioning
// will be automated, configuring servers and giving researchers the
// configuration they need").
func (p *Portal) SetApproveHook(fn func(Experiment)) {
	p.mu.Lock()
	p.onApprove = fn
	p.mu.Unlock()
}

// SetStatsSource registers a callback supplying live testbed counters
// (session recoveries, stale-route retention, dampening activity, and
// the fan-out pipeline's batching/backpressure gauges — coalesced
// operations, soft-limit crossings, queue high-water mark, per-client
// queue depths) for the GET /stats endpoint. The returned value is
// JSON-encoded verbatim.
//
// Each call replaces the previous source: the portal holds exactly one,
// and the newest registration wins for all subsequent GET /stats
// requests (in-flight requests keep the source they already read).
// Passing nil unregisters the source, returning GET /stats to 404.
func (p *Portal) SetStatsSource(fn func() any) {
	p.mu.Lock()
	p.statsSource = fn
	p.mu.Unlock()
}

// SetArchiveSource registers the callbacks behind the MRT archive
// endpoints: status supplies GET /archive (JSON-encoded verbatim) and
// rotate implements POST /archive/rotate, returning the rotation result
// or an error (reported as 409 with a JSON error body). Like
// SetStatsSource, the newest registration wins and nil unregisters:
// GET /archive then 404s, while POST /archive/rotate answers 409 —
// rotation conflicts with the server's configuration (archiving
// disabled) rather than hitting a route that does not exist.
func (p *Portal) SetArchiveSource(status func() any, rotate func() (any, error)) {
	p.mu.Lock()
	p.archiveStatus = status
	p.archiveRotate = rotate
	p.mu.Unlock()
}

// SetPolicySource registers the callbacks behind the safety-filter
// endpoints: status supplies GET /policy (JSON-encoded verbatim, the
// compiled filter's generation and rule counts) and reload implements
// POST /policy/reload, compiling the rule text in the request body and
// atomically swapping it into the ingest path. A parse or compile error
// is reported as 409 with a JSON error body and leaves the previously
// installed filter untouched. Like SetStatsSource, the newest
// registration wins and nil unregisters: GET /policy then 404s, while
// POST /policy/reload answers 409 — reload conflicts with the server's
// configuration (no policy engine attached) rather than hitting a route
// that does not exist.
func (p *Portal) SetPolicySource(status func() any, reload func(text string) (any, error)) {
	p.mu.Lock()
	p.policyStatus = status
	p.policyReload = reload
	p.mu.Unlock()
}

// SetFederationSource registers the callback behind GET /federation:
// the multi-mux mesh snapshot (member attachments, mirrored upstream
// sessions, backhaul link health) rendered by `peeringctl federation`
// and `peeringctl sites`. Like SetStatsSource, the newest registration
// wins and nil unregisters the source (GET /federation then 404s — the
// server runs standalone).
func (p *Portal) SetFederationSource(fn func() any) {
	p.mu.Lock()
	p.federation = fn
	p.mu.Unlock()
}

// SetMetricsHandler registers the handler behind GET /metrics — in
// production the server telemetry registry's Handler, serving the
// Prometheus text format. Like SetStatsSource, each call replaces the
// previous handler and nil unregisters it (GET /metrics then 404s).
func (p *Portal) SetMetricsHandler(h http.Handler) {
	p.mu.Lock()
	p.metricsHandler = h
	p.mu.Unlock()
}

// EnablePprof turns on the /debug/pprof/* endpoints. They are always
// routed but answer 404 until enabled: profiling a production mux is
// an explicit operator decision (-pprof on peering-server), not a
// default attack surface.
func (p *Portal) EnablePprof() {
	p.mu.Lock()
	p.pprofEnabled = true
	p.mu.Unlock()
}

// New creates a portal managing the given supernet (the testbed /19);
// it is carved into /24 allocations, one per experiment (§3).
func New(supernet netip.Prefix, clk clock.Clock, ex Executor, notify Notifier) (*Portal, error) {
	if supernet.Bits() > 24 {
		return nil, fmt.Errorf("portal: supernet %v smaller than one /24", supernet)
	}
	if clk == nil {
		clk = clock.System
	}
	p := &Portal{
		clk:         clk,
		executor:    ex,
		notify:      notify,
		accounts:    make(map[string]*Account),
		experiments: make(map[string]*Experiment),
	}
	// Carve the pool.
	base := supernet.Masked().Addr().As4()
	n := 1 << (24 - supernet.Bits())
	for i := 0; i < n; i++ {
		v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
		v += uint32(i) << 8
		p.pool = append(p.pool, netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}), 24))
	}
	return p, nil
}

// DonatePrefix adds an external prefix to the allocation pool
// ("Some researchers have offered to donate IPv4 prefixes", §3).
func (p *Portal) DonatePrefix(pfx netip.Prefix) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pool = append(p.pool, pfx)
}

// PoolSize reports remaining unallocated /24s — the scalability limit
// §3 names ("PEERING scalability depends on the number of available
// prefixes").
func (p *Portal) PoolSize() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pool)
}

// CreateAccount registers a researcher.
func (p *Portal) CreateAccount(user, email string) (*Account, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.accounts[user]; dup {
		return nil, fmt.Errorf("portal: account %q exists", user)
	}
	a := &Account{User: user, Email: email, Created: p.clk.Now()}
	p.accounts[user] = a
	return a, nil
}

// Propose submits an experiment for vetting.
func (p *Portal) Propose(user, id, title string) (*Experiment, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.accounts[user]; !ok {
		return nil, fmt.Errorf("portal: unknown account %q", user)
	}
	if _, dup := p.experiments[id]; dup {
		return nil, fmt.Errorf("portal: experiment %q exists", id)
	}
	e := &Experiment{ID: id, User: user, Title: title, Status: StatusPending, Created: p.clk.Now()}
	p.experiments[id] = e
	cp := *e
	return &cp, nil
}

// Approve vets an experiment (the advisory board action) and
// provisions one /24 from the pool. spoofGrant approves controlled
// spoofing.
func (p *Portal) Approve(id string, spoofGrant bool) (*Experiment, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.experiments[id]
	if e == nil {
		return nil, fmt.Errorf("portal: unknown experiment %q", id)
	}
	if e.Status != StatusPending {
		return nil, fmt.Errorf("portal: experiment %q is %s", id, e.Status)
	}
	if len(p.pool) == 0 {
		return nil, errors.New("portal: prefix pool exhausted")
	}
	e.Allocation = []netip.Prefix{p.pool[0]}
	p.pool = p.pool[1:]
	e.SpoofGrant = spoofGrant
	e.Status = StatusApproved
	// Return a copy: later lifecycle transitions (Retire) mutate the
	// stored record and must not reach into callers' hands.
	cp := *e
	if p.onApprove != nil {
		// Runs while the portal lock is held (defers are LIFO, so this
		// fires before the unlock): hooks provision server-side state
		// and must not call back into the portal.
		hook := p.onApprove
		snapshot := cp
		defer hook(snapshot)
	}
	return &cp, nil
}

// Reject declines a pending experiment.
func (p *Portal) Reject(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.experiments[id]
	if e == nil {
		return fmt.Errorf("portal: unknown experiment %q", id)
	}
	if e.Status != StatusPending {
		return fmt.Errorf("portal: experiment %q is %s", id, e.Status)
	}
	e.Status = StatusRejected
	return nil
}

// Retire ends an experiment and returns its prefixes to the pool.
func (p *Portal) Retire(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.experiments[id]
	if e == nil {
		return fmt.Errorf("portal: unknown experiment %q", id)
	}
	if e.Status != StatusApproved {
		return fmt.Errorf("portal: experiment %q is %s", id, e.Status)
	}
	p.pool = append(p.pool, e.Allocation...)
	e.Allocation = nil
	e.Status = StatusRetired
	return nil
}

// Experiment returns the experiment record.
func (p *Portal) Experiment(id string) (*Experiment, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.experiments[id]
	if !ok {
		return nil, false
	}
	cp := *e
	return &cp, true
}

// Schedule queues an announcement for execution at a.At; a timer fires
// it through the Executor and then notifies the researcher.
func (p *Portal) Schedule(a Announcement) (*Announcement, error) {
	p.mu.Lock()
	e := p.experiments[a.Experiment]
	if e == nil || e.Status != StatusApproved {
		p.mu.Unlock()
		return nil, fmt.Errorf("portal: experiment %q not approved", a.Experiment)
	}
	allocated := false
	for _, alloc := range e.Allocation {
		if alloc.Contains(a.Prefix.Addr()) && alloc.Bits() <= a.Prefix.Bits() {
			allocated = true
			break
		}
	}
	if !allocated {
		p.mu.Unlock()
		return nil, fmt.Errorf("portal: prefix %v outside experiment allocation", a.Prefix)
	}
	p.nextAnnID++
	a.ID = p.nextAnnID
	stored := a
	p.announcements = append(p.announcements, &stored)
	user := e.User
	p.mu.Unlock()

	delay := a.At.Sub(p.clk.Now())
	p.clk.AfterFunc(delay, func() {
		if p.executor != nil {
			if err := p.executor.Execute(a); err != nil {
				return
			}
		}
		p.mu.Lock()
		stored.Executed = true
		p.mu.Unlock()
		if p.notify != nil {
			p.notify(user, a)
		}
	})
	return &stored, nil
}

// Announcements lists scheduled actions for an experiment.
func (p *Portal) Announcements(experiment string) []Announcement {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Announcement
	for _, a := range p.announcements {
		if a.Experiment == experiment {
			out = append(out, *a)
		}
	}
	return out
}

// Record stores a measurement ("we also automatically collect regular
// control and data plane measurements", §3).
func (p *Portal) Record(m Measurement) {
	if m.Time.IsZero() {
		m.Time = p.clk.Now()
	}
	p.mu.Lock()
	p.measurements = append(p.measurements, m)
	p.mu.Unlock()
}

// Measurements returns recorded measurements for an experiment, oldest
// first.
func (p *Portal) Measurements(experiment string) []Measurement {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Measurement
	for _, m := range p.measurements {
		if m.Experiment == experiment {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// ---------------------------------------------------------------------
// HTTP API

// Handler returns the portal's JSON HTTP API:
//
//	POST /accounts              {user, email}
//	POST /experiments           {user, id, title}
//	POST /experiments/approve   {id, spoof_grant}
//	POST /experiments/reject    {id}
//	POST /experiments/retire    {id}
//	GET  /experiments?id=X
//	POST /announcements         {experiment, prefix, withdraw, upstreams, at}
//	GET  /announcements?experiment=X
//	GET  /measurements?experiment=X
//	GET  /pool
//	GET  /stats                 JSON counters (see SetStatsSource)
//	GET  /archive               MRT archive status (see SetArchiveSource)
//	POST /archive/rotate        seal the current MRT segment + dump a RIB snapshot
//	GET  /policy                compiled safety-filter status (see SetPolicySource)
//	POST /policy/reload         compile the rule text in the body and swap it live
//	GET  /federation            multi-mux mesh snapshot (see SetFederationSource)
//	GET  /metrics               Prometheus text format (see SetMetricsHandler)
//	GET  /debug/pprof/*         profiling, 404 unless EnablePprof was called
func (p *Portal) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /accounts", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ User, Email string }
		if !decode(w, r, &req) {
			return
		}
		a, err := p.CreateAccount(req.User, req.Email)
		reply(w, a, err)
	})
	mux.HandleFunc("POST /experiments", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ User, ID, Title string }
		if !decode(w, r, &req) {
			return
		}
		e, err := p.Propose(req.User, req.ID, req.Title)
		reply(w, e, err)
	})
	mux.HandleFunc("POST /experiments/approve", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ID         string `json:"id"`
			SpoofGrant bool   `json:"spoof_grant"`
		}
		if !decode(w, r, &req) {
			return
		}
		e, err := p.Approve(req.ID, req.SpoofGrant)
		reply(w, e, err)
	})
	mux.HandleFunc("POST /experiments/reject", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ ID string }
		if !decode(w, r, &req) {
			return
		}
		reply(w, map[string]string{"status": "rejected"}, p.Reject(req.ID))
	})
	mux.HandleFunc("POST /experiments/retire", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ ID string }
		if !decode(w, r, &req) {
			return
		}
		reply(w, map[string]string{"status": "retired"}, p.Retire(req.ID))
	})
	mux.HandleFunc("GET /experiments", func(w http.ResponseWriter, r *http.Request) {
		e, ok := p.Experiment(r.URL.Query().Get("id"))
		if !ok {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		reply(w, e, nil)
	})
	mux.HandleFunc("POST /announcements", func(w http.ResponseWriter, r *http.Request) {
		var a Announcement
		if !decode(w, r, &a) {
			return
		}
		out, err := p.Schedule(a)
		reply(w, out, err)
	})
	mux.HandleFunc("GET /announcements", func(w http.ResponseWriter, r *http.Request) {
		reply(w, p.Announcements(r.URL.Query().Get("experiment")), nil)
	})
	mux.HandleFunc("GET /measurements", func(w http.ResponseWriter, r *http.Request) {
		reply(w, p.Measurements(r.URL.Query().Get("experiment")), nil)
	})
	mux.HandleFunc("GET /pool", func(w http.ResponseWriter, r *http.Request) {
		reply(w, map[string]int{"available": p.PoolSize()}, nil)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		fn := p.statsSource
		p.mu.Unlock()
		if fn == nil {
			http.Error(w, "stats unavailable", http.StatusNotFound)
			return
		}
		reply(w, fn(), nil)
	})
	mux.HandleFunc("GET /federation", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		fn := p.federation
		p.mu.Unlock()
		if fn == nil {
			http.Error(w, "federation unavailable: this server runs standalone", http.StatusNotFound)
			return
		}
		reply(w, fn(), nil)
	})
	mux.HandleFunc("GET /archive", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		fn := p.archiveStatus
		p.mu.Unlock()
		if fn == nil {
			http.Error(w, "archive unavailable", http.StatusNotFound)
			return
		}
		reply(w, fn(), nil)
	})
	mux.HandleFunc("POST /archive/rotate", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		fn := p.archiveRotate
		p.mu.Unlock()
		if fn == nil {
			// Rotation is an operator action that conflicts with how the
			// server was started (archiving disabled), not a missing
			// route — so 409, with a machine-readable body.
			replyError(w, http.StatusConflict, "archiving disabled: start the server with -archive or -server-archive")
			return
		}
		out, err := fn()
		reply(w, out, err)
	})
	mux.HandleFunc("GET /policy", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		fn := p.policyStatus
		p.mu.Unlock()
		if fn == nil {
			http.Error(w, "policy unavailable", http.StatusNotFound)
			return
		}
		reply(w, fn(), nil)
	})
	mux.HandleFunc("POST /policy/reload", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		fn := p.policyReload
		p.mu.Unlock()
		if fn == nil {
			// Like /archive/rotate: the route exists, the server just was
			// not started with a policy engine to reload into.
			replyError(w, http.StatusConflict, "policy engine unavailable: server has no compiled-filter support attached")
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxPolicyBody))
		if err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		out, err := fn(string(body))
		reply(w, out, err)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		h := p.metricsHandler
		p.mu.Unlock()
		if h == nil {
			http.Error(w, "metrics unavailable", http.StatusNotFound)
			return
		}
		h.ServeHTTP(w, r)
	})
	// pprof endpoints: routed unconditionally, gated at request time so
	// EnablePprof works whenever it is called relative to Handler.
	gated := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			p.mu.Lock()
			on := p.pprofEnabled
			p.mu.Unlock()
			if !on {
				http.Error(w, "pprof disabled", http.StatusNotFound)
				return
			}
			h(w, r)
		}
	}
	mux.HandleFunc("GET /debug/pprof/", gated(pprof.Index))
	mux.HandleFunc("GET /debug/pprof/cmdline", gated(pprof.Cmdline))
	mux.HandleFunc("GET /debug/pprof/profile", gated(pprof.Profile))
	mux.HandleFunc("GET /debug/pprof/symbol", gated(pprof.Symbol))
	mux.HandleFunc("GET /debug/pprof/trace", gated(pprof.Trace))
	return mux
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, v any, err error) {
	if err != nil {
		replyError(w, http.StatusConflict, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// replyError writes a JSON error body ({"error": "..."}) so API clients
// never have to parse free-form text out of a failure response.
func replyError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
