package mrt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzMRTRecord throws arbitrary bytes at the record decoder and, when
// they parse, checks the encoder is its exact inverse — the property
// the golden-file tests assert for well-formed archives must hold for
// anything the decoder accepts. The typed record views (BGP4MP,
// PEER_INDEX_TABLE, RIB) must never panic on a decoded record.
func FuzzMRTRecord(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "*.mrt"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no seed corpus in testdata: %v", err)
	}
	for _, path := range seeds {
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := rec.Marshal()
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		if !bytes.Equal(out, data[:n]) {
			t.Fatalf("re-encode differs from input:\n in  %x\n out %x", data[:n], out)
		}
		switch rec.Type {
		case TypeBGP4MP, TypeBGP4MPET:
			m, err := ParseBGP4MP(rec)
			if err != nil {
				return
			}
			m.Update() // must not panic
			rec2, err := m.Record(rec.Time, rec.Type == TypeBGP4MPET)
			if err != nil {
				t.Fatalf("parsed BGP4MP does not re-encode: %v", err)
			}
			b2, err := rec2.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b2, data[:n]) {
				t.Fatalf("BGP4MP typed round trip differs:\n in  %x\n out %x", data[:n], b2)
			}
		case TypeTableDumpV2:
			// Attribute blocks are re-encoded through the wire codec, which
			// normalizes representation, so only decode → re-decode
			// stability is asserted here.
			if pi, err := ParsePeerIndex(rec); err == nil {
				if rec2, err := pi.Record(rec.Time); err == nil {
					if _, err := ParsePeerIndex(rec2); err != nil {
						t.Fatalf("re-encoded peer index does not parse: %v", err)
					}
				}
			}
			if rib, err := ParseRIB(rec); err == nil {
				if rec2, err := rib.Record(rec.Time); err == nil {
					if _, err := ParseRIB(rec2); err != nil {
						t.Fatalf("re-encoded RIB record does not parse: %v", err)
					}
				}
			}
		}
	})
}
