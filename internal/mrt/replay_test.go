package mrt

import (
	"bytes"
	"net/netip"
	"sync"
	"testing"
	"time"

	"peering/internal/clock"
	"peering/internal/telemetry"
	"peering/internal/wire"
)

// replayTrace builds an in-memory trace with updates at the given
// offsets from fixTime, plus one TABLE_DUMP_V2 record that replay must
// skip.
func replayTrace(t *testing.T, offsets []time.Duration) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, nil)
	pi := &PeerIndex{CollectorID: netip.MustParseAddr("128.223.51.102")}
	head, err := pi.Record(fixTime)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteRecord(head); err != nil {
		t.Fatal(err)
	}
	for i, off := range offsets {
		m := &BGP4MP{
			PeerAS: fixPeerAS, LocalAS: fixLocalAS, PeerIP: fixPeerIP, LocalIP: fixLocalIP,
			Message: mustMarshal(t, &wire.Update{
				Attrs: fixAttrs("80.249.208.10", fixPeerAS, 3356),
				Reach: []wire.NLRI{{Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, byte(i), 0}), 24)}},
			}, wire.Options{AS4: true}),
			AS4: true,
		}
		rec, err := m.Record(fixTime.Add(off), true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestReplayTimedPacing drives a timestamp-faithful replay on a virtual
// clock and checks each record is delivered exactly on its compressed
// schedule. The driver advances the clock to the replayer's next
// deadline (clock.Virtual.NextDeadline), so the test is deterministic
// and never sleeps real time.
func TestReplayTimedPacing(t *testing.T) {
	trace := replayTrace(t, []time.Duration{0, time.Second, 3 * time.Second})
	clk := clock.NewVirtual(fixTime)
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)

	var mu sync.Mutex
	var deliveredAt []time.Duration
	done := make(chan struct{})
	var stats ReplayStats
	var rerr error
	go func() {
		defer close(done)
		r := NewReader(bytes.NewReader(trace))
		stats, rerr = Replay(r, ReplayConfig{Clock: clk, Timed: true, Speed: 2, Metrics: m},
			func(_ *BGP4MP, _ *wire.Update) error {
				mu.Lock()
				deliveredAt = append(deliveredAt, clk.Now().Sub(fixTime))
				mu.Unlock()
				return nil
			})
	}()
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
			if when, ok := clk.NextDeadline(); ok {
				clk.Advance(when.Sub(clk.Now()))
			} else {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
	if rerr != nil {
		t.Fatal(rerr)
	}
	// Speed 2 halves the 0s/1s/3s schedule.
	want := []time.Duration{0, 500 * time.Millisecond, 1500 * time.Millisecond}
	if len(deliveredAt) != len(want) {
		t.Fatalf("delivered %d records, want %d", len(deliveredAt), len(want))
	}
	for i, at := range deliveredAt {
		if at != want[i] {
			t.Errorf("record %d delivered at +%v, want +%v", i, at, want[i])
		}
	}
	if stats.Records != 3 || stats.Routes != 3 || stats.Skipped != 1 {
		t.Fatalf("stats: %+v (want 3 records, 3 routes, 1 skipped TDv2)", stats)
	}
	if stats.TraceSpan != 3*time.Second {
		t.Fatalf("trace span %v, want 3s", stats.TraceSpan)
	}
	if stats.Elapsed != 1500*time.Millisecond {
		t.Fatalf("elapsed %v on the virtual clock, want 1.5s", stats.Elapsed)
	}
	if stats.MaxLag != 0 {
		t.Fatalf("max lag %v on a virtual clock, want 0", stats.MaxLag)
	}
	if got := m.ReplayRecords.Value(); got != 3 {
		t.Fatalf("replay records metric = %d, want 3", got)
	}
}

// TestReplayMaxSpeed: with Timed off, nothing sleeps — on a virtual
// clock the whole trace delivers at a single instant.
func TestReplayMaxSpeed(t *testing.T) {
	trace := replayTrace(t, []time.Duration{0, time.Minute, time.Hour})
	clk := clock.NewVirtual(fixTime)
	r := NewReader(bytes.NewReader(trace))
	n := 0
	stats, err := Replay(r, ReplayConfig{Clock: clk}, func(_ *BGP4MP, upd *wire.Update) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || stats.Records != 3 {
		t.Fatalf("delivered %d/%d records, want 3", n, stats.Records)
	}
	if stats.Elapsed != 0 {
		t.Fatalf("max-speed replay took %v virtual time, want 0", stats.Elapsed)
	}
	if stats.TraceSpan != time.Hour {
		t.Fatalf("trace span %v, want 1h", stats.TraceSpan)
	}
}

// TestReplaySkipsMalformedRecords: a corrupt record body inside an
// otherwise healthy trace costs exactly that record. The header's
// length field keeps the stream aligned, the reader counts the decode
// error, and replay delivers everything on either side of the damage.
func TestReplaySkipsMalformedRecords(t *testing.T) {
	trace := replayTrace(t, []time.Duration{0, time.Second})

	// Splice in a framed-but-rotten record between the two updates: a
	// BGP4MP_ET whose extended timestamp is out of range. Its length
	// field is intact, so the reader can step over the body.
	m := &BGP4MP{
		PeerAS: fixPeerAS, LocalAS: fixLocalAS, PeerIP: fixPeerIP, LocalIP: fixLocalIP,
		Message: mustMarshal(t, &wire.Update{
			Attrs: fixAttrs("80.249.208.10", fixPeerAS, 3356),
			Reach: []wire.NLRI{{Prefix: netip.MustParsePrefix("10.66.0.0/24")}},
		}, wire.Options{AS4: true}),
		AS4: true,
	}
	rec, err := m.Record(fixTime, true)
	if err != nil {
		t.Fatal(err)
	}
	rotten, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rotten[12], rotten[13], rotten[14], rotten[15] = 0xff, 0xff, 0xff, 0xff // µs > 999999

	var spliced bytes.Buffer
	r := NewReader(bytes.NewReader(trace))
	for i := 0; ; i++ {
		rec, err := r.Next()
		if err != nil {
			break
		}
		b, err := rec.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		spliced.Write(b)
		if i == 1 { // after the peer index and the first update
			spliced.Write(rotten)
		}
	}

	reg := telemetry.NewRegistry()
	met := NewMetrics(reg)
	var delivered int
	stats, err := Replay(NewReader(bytes.NewReader(spliced.Bytes())), ReplayConfig{Metrics: met},
		func(_ *BGP4MP, _ *wire.Update) error { delivered++; return nil })
	if err != nil {
		t.Fatalf("replay aborted on a skippable record: %v", err)
	}
	if delivered != 2 || stats.Updates != 2 {
		t.Fatalf("delivered %d updates (stats %d), want 2", delivered, stats.Updates)
	}
	// Skipped covers the peer-index record and the rotten one.
	if stats.Skipped != 2 {
		t.Fatalf("skipped = %d, want 2", stats.Skipped)
	}
	if got := met.DecodeErrors.Value(); got != 1 {
		t.Fatalf("decode errors = %d, want 1", got)
	}
}
