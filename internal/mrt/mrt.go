// Package mrt implements the MRT export format (RFC 6396) that the
// measurement community's BGP archives — RouteViews, RIPE RIS — are
// built on: BGP4MP/BGP4MP_ET update records and TABLE_DUMP_V2 RIB
// snapshots, including the 4-octet-AS and ADD-PATH (RFC 8050) record
// variants the testbed's BIRD mode produces.
//
// The package provides a streaming encoder/decoder (Writer, Reader), a
// size/age-rotating archive writer (Archive) the collector feeds, and a
// replay engine (Replay, ReplaySession) that plays an archived trace
// back through a live BGP session — timestamp-faithfully on an injected
// clock, or as fast as the receiver can drain for benchmarking. A trace
// on disk turns a one-off testbed run into a reproducible corpus: the
// same workload can be replayed against both mux modes and against
// future versions of the server.
package mrt

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Type is an MRT record type (RFC 6396 §4).
type Type uint16

// Record types the testbed produces and consumes.
const (
	// TypeTableDumpV2 carries RIB snapshots (RFC 6396 §4.3).
	TypeTableDumpV2 Type = 13
	// TypeBGP4MP carries BGP messages with one-second timestamps
	// (RFC 6396 §4.4).
	TypeBGP4MP Type = 16
	// TypeBGP4MPET is BGP4MP with an extended microsecond timestamp
	// (RFC 6396 §3).
	TypeBGP4MPET Type = 17
)

func (t Type) String() string {
	switch t {
	case TypeTableDumpV2:
		return "TABLE_DUMP_V2"
	case TypeBGP4MP:
		return "BGP4MP"
	case TypeBGP4MPET:
		return "BGP4MP_ET"
	default:
		return fmt.Sprintf("TYPE(%d)", uint16(t))
	}
}

// BGP4MP subtypes (RFC 6396 §4.4, RFC 8050 §3).
const (
	SubtypeBGP4MPMessage        uint16 = 1 // 2-octet peer ASes
	SubtypeBGP4MPMessageAS4     uint16 = 4 // 4-octet peer ASes
	SubtypeBGP4MPMessageAddPath uint16 = 8 // RFC 8050: NLRI carry path IDs
	SubtypeBGP4MPMessageAS4AddPath uint16 = 9
)

// TABLE_DUMP_V2 subtypes (RFC 6396 §4.3, RFC 8050 §2).
const (
	SubtypePeerIndexTable        uint16 = 1
	SubtypeRIBIPv4Unicast        uint16 = 2
	SubtypeRIBIPv4UnicastAddPath uint16 = 8 // RFC 8050
)

// SubtypeString names a (type, subtype) pair for human-readable output.
func SubtypeString(t Type, sub uint16) string {
	switch t {
	case TypeBGP4MP, TypeBGP4MPET:
		switch sub {
		case SubtypeBGP4MPMessage:
			return "MESSAGE"
		case SubtypeBGP4MPMessageAS4:
			return "MESSAGE_AS4"
		case SubtypeBGP4MPMessageAddPath:
			return "MESSAGE_ADDPATH"
		case SubtypeBGP4MPMessageAS4AddPath:
			return "MESSAGE_AS4_ADDPATH"
		}
	case TypeTableDumpV2:
		switch sub {
		case SubtypePeerIndexTable:
			return "PEER_INDEX_TABLE"
		case SubtypeRIBIPv4Unicast:
			return "RIB_IPV4_UNICAST"
		case SubtypeRIBIPv4UnicastAddPath:
			return "RIB_IPV4_UNICAST_ADDPATH"
		}
	}
	return fmt.Sprintf("SUBTYPE(%d)", sub)
}

// headerLen is the RFC 6396 §2 common header: timestamp(4), type(2),
// subtype(2), length(4).
const headerLen = 12

// MaxBodyLen bounds a record body on decode. The RFC does not bound
// records; this guard keeps a corrupt length field from allocating
// gigabytes. A BGP message is at most 4 KiB and our RIB records pack a
// bounded entry set, so 16 MiB is far above anything legitimate.
const MaxBodyLen = 16 << 20

// Record is one MRT record: the common-header fields plus the body.
//
// For BGP4MP_ET records the RFC's extended timestamp (a 4-byte
// microseconds field that the wire format counts as part of the body)
// is folded into Time on decode and regenerated from Time on encode;
// Body always excludes it. Encoding is canonical, so decoding a record
// and re-encoding it reproduces the input bytes exactly.
type Record struct {
	// Time is the record timestamp. BGP4MP and TABLE_DUMP_V2 keep
	// one-second precision on the wire; BGP4MPET keeps microseconds.
	Time    time.Time
	Type    Type
	Subtype uint16
	Body    []byte
}

// extendedTime reports whether the record carries the RFC 6396 §3
// microsecond timestamp extension.
func (r *Record) extendedTime() bool { return r.Type == TypeBGP4MPET }

// AppendTo appends the record's wire encoding to b.
func (r *Record) AppendTo(b []byte) ([]byte, error) {
	bodyLen := len(r.Body)
	if r.extendedTime() {
		bodyLen += 4
	}
	if bodyLen > MaxBodyLen {
		return nil, fmt.Errorf("mrt: record body %d bytes exceeds %d", bodyLen, MaxBodyLen)
	}
	sec := r.Time.Unix()
	if sec < 0 || sec > math.MaxUint32 {
		return nil, fmt.Errorf("mrt: timestamp %v outside the 32-bit epoch", r.Time)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(sec))
	b = binary.BigEndian.AppendUint16(b, uint16(r.Type))
	b = binary.BigEndian.AppendUint16(b, r.Subtype)
	b = binary.BigEndian.AppendUint32(b, uint32(bodyLen))
	if r.extendedTime() {
		b = binary.BigEndian.AppendUint32(b, uint32(r.Time.Nanosecond()/1000))
	}
	return append(b, r.Body...), nil
}

// Marshal returns the record's wire encoding.
func (r *Record) Marshal() ([]byte, error) { return r.AppendTo(nil) }

// Unmarshal decodes one record from the front of b, returning the
// number of bytes consumed.
func Unmarshal(b []byte) (*Record, int, error) {
	if len(b) < headerLen {
		return nil, 0, fmt.Errorf("mrt: truncated header (%d bytes)", len(b))
	}
	r := &Record{
		Type:    Type(binary.BigEndian.Uint16(b[4:6])),
		Subtype: binary.BigEndian.Uint16(b[6:8]),
	}
	sec := binary.BigEndian.Uint32(b[0:4])
	length := int(binary.BigEndian.Uint32(b[8:12]))
	if length > MaxBodyLen {
		return nil, 0, fmt.Errorf("mrt: record length %d exceeds %d", length, MaxBodyLen)
	}
	if len(b) < headerLen+length {
		return nil, 0, fmt.Errorf("mrt: truncated record (want %d body bytes, have %d)", length, len(b)-headerLen)
	}
	body := b[headerLen : headerLen+length]
	micro := uint32(0)
	if r.extendedTime() {
		if length < 4 {
			return nil, 0, fmt.Errorf("mrt: BGP4MP_ET record too short for extended timestamp")
		}
		micro = binary.BigEndian.Uint32(body[0:4])
		if micro > 999_999 {
			return nil, 0, fmt.Errorf("mrt: extended timestamp %dµs out of range", micro)
		}
		body = body[4:]
	}
	r.Time = time.Unix(int64(sec), int64(micro)*1000).UTC()
	r.Body = append([]byte(nil), body...)
	return r, headerLen + length, nil
}
