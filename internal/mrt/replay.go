// Replay: feeding an archived trace back through live machinery. The
// core loop (Replay) paces records against a clock and hands decoded
// UPDATEs to a delivery function; ReplaySession wraps it in a real BGP
// session so the receiving side cannot tell a replay from the original
// peer.

package mrt

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"time"

	"peering/internal/bgp"
	"peering/internal/clock"
	"peering/internal/wire"
)

// ReplayConfig shapes one replay run.
type ReplayConfig struct {
	// Clock paces a timed replay and stamps stats (nil = system).
	Clock clock.Clock
	// Timed honors the trace's inter-record gaps: record i is delivered
	// when (its timestamp − the first timestamp)/Speed has elapsed on
	// Clock. False replays as fast as the receiver drains.
	Timed bool
	// Speed compresses the schedule when Timed (2 = twice as fast);
	// 0 means 1.
	Speed float64
	// Metrics receives replay counts and lag observations (nil
	// disables).
	Metrics *Metrics
	// Intern, when set, canonicalizes each decoded update's attribute
	// set before delivery, so a long churny trace resolves repeated
	// attribute sets to shared pointers instead of allocating per record.
	Intern *wire.InternTable
}

// ReplayStats summarizes a replay run.
type ReplayStats struct {
	// Records counts BGP4MP records delivered; Skipped counts records
	// passed over (other types, non-UPDATE messages, undecodable
	// bodies).
	Records int `json:"records"`
	Skipped int `json:"skipped"`
	// Updates counts UPDATE messages delivered; Routes and Withdrawals
	// count the NLRIs inside them.
	Updates     int `json:"updates"`
	Routes      int `json:"routes"`
	Withdrawals int `json:"withdrawals"`
	// TraceSpan is last−first record timestamp; Elapsed is how long the
	// delivery loop ran on the replay clock.
	TraceSpan time.Duration `json:"trace_span"`
	Elapsed   time.Duration `json:"elapsed"`
	// MaxLag is the worst behind-schedule delivery of a timed replay.
	MaxLag time.Duration `json:"max_lag"`
}

// DefaultReplayBatch is the batch cap ReplayBatched uses when the
// caller passes batch <= 0: large enough to amortize per-delivery
// costs (channel sends, table locks) across a full run of decodes,
// small enough that a batch of worst-case UPDATEs stays cheap to hold.
const DefaultReplayBatch = 256

// Replay streams BGP4MP records from r, delivering each decoded UPDATE
// in order. Records that are not BGP4MP UPDATEs are counted as skipped.
// A record whose body fails to decode is skipped too — the header's
// length field keeps the stream aligned (see ErrBadRecord), and the
// reader counts it on peering_mrt_decode_errors_total — so one corrupt
// record costs one record, not the rest of the trace. Only truncation
// aborts the run: there is nothing to resynchronize onto.
func Replay(r *Reader, cfg ReplayConfig, deliver func(*BGP4MP, *wire.Update) error) (ReplayStats, error) {
	return ReplayBatched(r, cfg, 1, func(ms []*BGP4MP, upds []*wire.Update) error {
		for i, upd := range upds {
			if err := deliver(ms[i], upd); err != nil {
				return err
			}
		}
		return nil
	})
}

// ReplayBatched is Replay with slice delivery: decoded UPDATEs
// accumulate and are handed to deliver in arrival order, up to batch
// per call (batch <= 0 means DefaultReplayBatch), so a consumer can
// amortize its per-delivery costs — one channel send, one table-lock
// pass — across hundreds of routes. A timed replay flushes before
// every pacing sleep, so batching never holds a record past its
// schedule. The slices are reused between deliveries and must not be
// retained; the *BGP4MP and *Update values they hold may be.
func ReplayBatched(r *Reader, cfg ReplayConfig, batch int, deliver func([]*BGP4MP, []*wire.Update) error) (ReplayStats, error) {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	speed := cfg.Speed
	if speed <= 0 {
		speed = 1
	}
	if batch <= 0 {
		batch = DefaultReplayBatch
	}
	r.Instrument(cfg.Metrics)

	var st ReplayStats
	var t0, start time.Time
	first := true
	var (
		ms   []*BGP4MP
		upds []*wire.Update
		lags []time.Duration
	)
	// flush hands the pending run to the consumer; stats and the replay
	// metrics count a record only once its batch is delivered, matching
	// the per-record loop's delivery-then-count order.
	flush := func() error {
		if len(upds) == 0 {
			return nil
		}
		if err := deliver(ms, upds); err != nil {
			return fmt.Errorf("mrt: replay delivery: %w", err)
		}
		for i, upd := range upds {
			cfg.Metrics.replayed(lags[i], cfg.Timed)
			st.Records++
			st.Updates++
			st.Routes += len(upd.Reach)
			st.Withdrawals += len(upd.Withdrawn)
		}
		ms, upds, lags = ms[:0], upds[:0], lags[:0]
		return nil
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, ErrBadRecord) {
			st.Skipped++
			continue
		}
		if err != nil {
			if ferr := flush(); ferr != nil {
				return st, ferr
			}
			return st, err
		}
		if rec.Type != TypeBGP4MP && rec.Type != TypeBGP4MPET {
			st.Skipped++
			continue
		}
		m, err := ParseBGP4MP(rec)
		if err != nil {
			cfg.Metrics.decodeError()
			st.Skipped++
			continue
		}
		upd, err := m.Update()
		if err != nil {
			cfg.Metrics.decodeError()
			st.Skipped++
			continue
		}
		if upd == nil {
			st.Skipped++ // OPEN/NOTIFICATION/KEEPALIVE in the trace
			continue
		}
		upd.Attrs = cfg.Intern.Intern(upd.Attrs)
		if first {
			first = false
			t0 = rec.Time
			start = clk.Now()
		}
		st.TraceSpan = rec.Time.Sub(t0)
		var lag time.Duration
		if cfg.Timed {
			target := start.Add(time.Duration(float64(rec.Time.Sub(t0)) / speed))
			if d := target.Sub(clk.Now()); d > 0 {
				if err := flush(); err != nil {
					return st, err
				}
				clk.Sleep(d)
			} else if -d > st.MaxLag {
				st.MaxLag = -d
			}
			lag = clk.Now().Sub(target)
		}
		ms = append(ms, m)
		upds = append(upds, upd)
		lags = append(lags, lag)
		if len(upds) >= batch {
			if err := flush(); err != nil {
				return st, err
			}
		}
	}
	if err := flush(); err != nil {
		return st, err
	}
	if !first {
		st.Elapsed = clk.Now().Sub(start)
	}
	return st, nil
}

// SessionReplayConfig shapes ReplaySession. The zero value impersonates
// the trace's original peer: LocalAS and LocalID default to the first
// record's PeerAS and PeerIP, and ADD-PATH is offered when the trace
// carries path IDs.
type SessionReplayConfig struct {
	// LocalAS and LocalID override the replayer's BGP identity.
	LocalAS uint32
	LocalID netip.Addr
	// PeerAS, when nonzero, is enforced against the receiver's OPEN.
	PeerAS uint32
	// EstablishTimeout bounds the handshake (default 30s on the wall
	// clock, regardless of Replay.Clock).
	EstablishTimeout time.Duration
	// Metrics instruments the replayer's BGP session (nil disables).
	Metrics *bgp.Metrics
	// Replay is the pacing configuration.
	Replay ReplayConfig
}

// ReplaySession speaks BGP over conn as the trace's original peer and
// replays every archived UPDATE through it, re-encoded on the live
// session's negotiated options. The session is left established so the
// receiver's tables can be inspected; the caller closes it (which also
// closes conn) when done.
func ReplaySession(conn net.Conn, r *Reader, cfg SessionReplayConfig) (ReplayStats, *bgp.Session, error) {
	// The trace's first record supplies the identity the receiver
	// expects to hear from.
	localAS, localID, addPath := cfg.LocalAS, cfg.LocalID, false
	if first, err := r.Peek(); err == nil && (first.Type == TypeBGP4MP || first.Type == TypeBGP4MPET) {
		if m, err := ParseBGP4MP(first); err == nil {
			if localAS == 0 {
				localAS = m.PeerAS
			}
			if !localID.IsValid() {
				localID = m.PeerIP
			}
			addPath = m.AddPath
		}
	}
	if localAS == 0 {
		localAS = 64512 // private ASN fallback for a trace with no usable head
	}
	if !localID.Is4() {
		localID = netip.AddrFrom4([4]byte{10, 99, 99, 1})
	}

	established := make(chan *bgp.Session, 1)
	sess := bgp.New(conn, bgp.Config{
		LocalAS:  localAS,
		LocalID:  localID,
		PeerAS:   cfg.PeerAS,
		AddPath:  addPath,
		Clock:    cfg.Replay.Clock,
		Metrics:  cfg.Metrics,
		Describe: "mrt-replay",
	}, bgp.HandlerFuncs{
		OnEstablished: func(s *bgp.Session) {
			select {
			case established <- s:
			default:
			}
		},
	})
	go sess.Run()

	timeout := cfg.EstablishTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	select {
	case <-established:
	case <-sess.Done():
		return ReplayStats{}, nil, fmt.Errorf("mrt: replay session closed during handshake: %w", sess.Err())
	case <-time.After(timeout):
		sess.Close()
		return ReplayStats{}, nil, fmt.Errorf("mrt: replay session not established within %v", timeout)
	}

	st, err := Replay(r, cfg.Replay, func(_ *BGP4MP, upd *wire.Update) error {
		return sess.Send(upd)
	})
	if err != nil {
		sess.Close()
		return st, nil, err
	}
	return st, sess, nil
}
