package mrt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Reader streams MRT records from an archive.
type Reader struct {
	r       *bufio.Reader
	metrics *Metrics
	peeked  *Record
	hdr     [headerLen]byte
}

// NewReader wraps r for streaming decode.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Instrument routes decode-error counts to m (nil disables).
func (d *Reader) Instrument(m *Metrics) { d.metrics = m }

// Next returns the next record, or io.EOF at a clean end of stream. A
// decode error is counted on the instrument set and returned; the
// stream cannot be resynchronized past it (MRT has no framing marker).
func (d *Reader) Next() (*Record, error) {
	if rec := d.peeked; rec != nil {
		d.peeked = nil
		return rec, nil
	}
	rec, err := d.read()
	if err != nil && err != io.EOF {
		d.metrics.decodeError()
	}
	return rec, err
}

// Peek returns the next record without consuming it.
func (d *Reader) Peek() (*Record, error) {
	if d.peeked == nil {
		rec, err := d.Next()
		if err != nil {
			return nil, err
		}
		d.peeked = rec
	}
	return d.peeked, nil
}

func (d *Reader) read() (*Record, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("mrt: truncated record header: %w", err)
	}
	length := int(binary.BigEndian.Uint32(d.hdr[8:12]))
	if length > MaxBodyLen {
		return nil, fmt.Errorf("mrt: record length %d exceeds %d", length, MaxBodyLen)
	}
	buf := make([]byte, headerLen+length)
	copy(buf, d.hdr[:])
	if _, err := io.ReadFull(d.r, buf[headerLen:]); err != nil {
		return nil, fmt.Errorf("mrt: truncated record body: %w", err)
	}
	rec, _, err := Unmarshal(buf)
	return rec, err
}
