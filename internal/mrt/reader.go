package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrBadRecord wraps decode failures inside a fully framed record: the
// header's length field was honored, the body was consumed, and the
// stream is still aligned on the next record — callers may skip and
// continue. Truncation and oversize-length errors are NOT wrapped; the
// stream cannot be resynchronized past those (MRT has no framing
// marker).
var ErrBadRecord = errors.New("mrt: malformed record")

// Reader streams MRT records from an archive.
type Reader struct {
	r       *bufio.Reader
	metrics *Metrics
	peeked  *Record
	hdr     [headerLen]byte
}

// NewReader wraps r for streaming decode.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Instrument routes decode-error counts to m (nil disables).
func (d *Reader) Instrument(m *Metrics) { d.metrics = m }

// Next returns the next record, or io.EOF at a clean end of stream.
// Decode errors are counted on the instrument set and returned; an
// error matching ErrBadRecord left the stream aligned on the following
// record, so the caller may skip it and call Next again.
func (d *Reader) Next() (*Record, error) {
	if rec := d.peeked; rec != nil {
		d.peeked = nil
		return rec, nil
	}
	rec, err := d.read()
	if err != nil && err != io.EOF {
		d.metrics.decodeError()
	}
	return rec, err
}

// Peek returns the next record without consuming it.
func (d *Reader) Peek() (*Record, error) {
	if d.peeked == nil {
		rec, err := d.Next()
		if err != nil {
			return nil, err
		}
		d.peeked = rec
	}
	return d.peeked, nil
}

func (d *Reader) read() (*Record, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("mrt: truncated record header: %w", err)
	}
	length := int(binary.BigEndian.Uint32(d.hdr[8:12]))
	if length > MaxBodyLen {
		return nil, fmt.Errorf("mrt: record length %d exceeds %d", length, MaxBodyLen)
	}
	buf := make([]byte, headerLen+length)
	copy(buf, d.hdr[:])
	if _, err := io.ReadFull(d.r, buf[headerLen:]); err != nil {
		return nil, fmt.Errorf("mrt: truncated record body: %w", err)
	}
	rec, _, err := Unmarshal(buf)
	if err != nil {
		// The full body was consumed above, so the stream is aligned on
		// the next header regardless of what was wrong inside this one.
		return nil, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	return rec, nil
}
