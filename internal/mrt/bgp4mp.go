// BGP4MP record bodies (RFC 6396 §4.4): one BGP message as heard on a
// session, framed with the peer identity the collector saw it from.

package mrt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"peering/internal/wire"
)

// BGP4MP is the decoded body of a BGP4MP/BGP4MP_ET message record: the
// identity of the session it was captured on plus the verbatim BGP
// message (19-byte header included).
type BGP4MP struct {
	// PeerAS is the AS of the speaker whose message this is; LocalAS is
	// the collector's AS.
	PeerAS  uint32
	LocalAS uint32
	// IfIndex is the RFC's interface index; the testbed has no
	// interfaces, so it archives zero.
	IfIndex uint16
	// PeerIP and LocalIP are the session endpoints. Both must be the
	// same address family.
	PeerIP  netip.Addr
	LocalIP netip.Addr
	// Message is the full BGP message as captured.
	Message []byte
	// AS4 selects the _AS4 subtypes (4-octet AS fields, and 4-octet
	// AS_PATH encoding inside Message); AddPath the RFC 8050 _ADDPATH
	// subtypes (NLRI in Message carry path IDs).
	AS4     bool
	AddPath bool
	// Time is the containing record's timestamp, stamped by ParseBGP4MP
	// so consumers of decoded messages (batched replay delivery) keep
	// the capture time without carrying the Record alongside. Record()
	// ignores it — the record is stamped explicitly.
	Time time.Time
}

// Options returns the wire codec options the embedded message was
// encoded with, as implied by the record subtype.
func (m *BGP4MP) Options() wire.Options {
	return wire.Options{AddPath: m.AddPath, AS4: m.AS4}
}

// Subtype returns the record subtype encoding m's AS4/AddPath flags.
func (m *BGP4MP) Subtype() uint16 {
	switch {
	case m.AS4 && m.AddPath:
		return SubtypeBGP4MPMessageAS4AddPath
	case m.AS4:
		return SubtypeBGP4MPMessageAS4
	case m.AddPath:
		return SubtypeBGP4MPMessageAddPath
	default:
		return SubtypeBGP4MPMessage
	}
}

// Record encodes m as a BGP4MP record stamped t; extended selects
// BGP4MP_ET (microsecond timestamps).
func (m *BGP4MP) Record(t time.Time, extended bool) (*Record, error) {
	if !m.PeerIP.IsValid() || !m.LocalIP.IsValid() {
		return nil, fmt.Errorf("mrt: BGP4MP needs peer and local addresses")
	}
	if m.PeerIP.Is4() != m.LocalIP.Is4() {
		return nil, fmt.Errorf("mrt: BGP4MP peer %v and local %v differ in address family", m.PeerIP, m.LocalIP)
	}
	var b []byte
	if m.AS4 {
		b = binary.BigEndian.AppendUint32(b, m.PeerAS)
		b = binary.BigEndian.AppendUint32(b, m.LocalAS)
	} else {
		if m.PeerAS > 0xffff || m.LocalAS > 0xffff {
			return nil, fmt.Errorf("mrt: AS %d/%d needs the AS4 subtype", m.PeerAS, m.LocalAS)
		}
		b = binary.BigEndian.AppendUint16(b, uint16(m.PeerAS))
		b = binary.BigEndian.AppendUint16(b, uint16(m.LocalAS))
	}
	b = binary.BigEndian.AppendUint16(b, m.IfIndex)
	if m.PeerIP.Is4() {
		b = binary.BigEndian.AppendUint16(b, wire.AFIIPv4)
		p, l := m.PeerIP.As4(), m.LocalIP.As4()
		b = append(b, p[:]...)
		b = append(b, l[:]...)
	} else {
		b = binary.BigEndian.AppendUint16(b, wire.AFIIPv6)
		p, l := m.PeerIP.As16(), m.LocalIP.As16()
		b = append(b, p[:]...)
		b = append(b, l[:]...)
	}
	b = append(b, m.Message...)
	typ := TypeBGP4MP
	if extended {
		typ = TypeBGP4MPET
	}
	return &Record{Time: t, Type: typ, Subtype: m.Subtype(), Body: b}, nil
}

// ParseBGP4MP decodes a BGP4MP or BGP4MP_ET message record body.
func ParseBGP4MP(rec *Record) (*BGP4MP, error) {
	if rec.Type != TypeBGP4MP && rec.Type != TypeBGP4MPET {
		return nil, fmt.Errorf("mrt: %v is not a BGP4MP record", rec.Type)
	}
	m := &BGP4MP{Time: rec.Time}
	switch rec.Subtype {
	case SubtypeBGP4MPMessage:
	case SubtypeBGP4MPMessageAS4:
		m.AS4 = true
	case SubtypeBGP4MPMessageAddPath:
		m.AddPath = true
	case SubtypeBGP4MPMessageAS4AddPath:
		m.AS4, m.AddPath = true, true
	default:
		return nil, fmt.Errorf("mrt: unsupported BGP4MP subtype %d", rec.Subtype)
	}
	b := rec.Body
	asLen := 2
	if m.AS4 {
		asLen = 4
	}
	if len(b) < 2*asLen+4 {
		return nil, fmt.Errorf("mrt: BGP4MP body truncated (%d bytes)", len(b))
	}
	if m.AS4 {
		m.PeerAS = binary.BigEndian.Uint32(b[0:4])
		m.LocalAS = binary.BigEndian.Uint32(b[4:8])
	} else {
		m.PeerAS = uint32(binary.BigEndian.Uint16(b[0:2]))
		m.LocalAS = uint32(binary.BigEndian.Uint16(b[2:4]))
	}
	b = b[2*asLen:]
	m.IfIndex = binary.BigEndian.Uint16(b[0:2])
	afi := binary.BigEndian.Uint16(b[2:4])
	b = b[4:]
	switch afi {
	case wire.AFIIPv4:
		if len(b) < 8 {
			return nil, fmt.Errorf("mrt: BGP4MP body truncated in addresses")
		}
		m.PeerIP = netip.AddrFrom4([4]byte(b[0:4]))
		m.LocalIP = netip.AddrFrom4([4]byte(b[4:8]))
		b = b[8:]
	case wire.AFIIPv6:
		if len(b) < 32 {
			return nil, fmt.Errorf("mrt: BGP4MP body truncated in addresses")
		}
		m.PeerIP = netip.AddrFrom16([16]byte(b[0:16]))
		m.LocalIP = netip.AddrFrom16([16]byte(b[16:32]))
		b = b[32:]
	default:
		return nil, fmt.Errorf("mrt: BGP4MP AFI %d unsupported", afi)
	}
	if len(b) < wire.HeaderLen {
		return nil, fmt.Errorf("mrt: BGP4MP message shorter than a BGP header")
	}
	m.Message = append([]byte(nil), b...)
	return m, nil
}

// Update decodes the embedded BGP message. Non-UPDATE messages (a
// collector may archive OPENs or NOTIFICATIONs) return (nil, nil).
func (m *BGP4MP) Update() (*wire.Update, error) {
	msg, err := wire.Decode(m.Message, m.Options())
	if err != nil {
		return nil, err
	}
	upd, ok := msg.(*wire.Update)
	if !ok {
		return nil, nil
	}
	return upd, nil
}
