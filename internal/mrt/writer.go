package mrt

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"peering/internal/clock"
)

// Writer streams MRT records to one destination.
type Writer struct {
	w       io.Writer
	metrics *Metrics
	buf     []byte
	records uint64
	bytes   uint64
}

// NewWriter wraps w for streaming encode; m may be nil.
func NewWriter(w io.Writer, m *Metrics) *Writer {
	return &Writer{w: w, metrics: m}
}

// WriteRecord encodes and writes one record, returning its encoded
// size.
func (w *Writer) WriteRecord(rec *Record) (int, error) {
	b, err := rec.AppendTo(w.buf[:0])
	if err != nil {
		return 0, err
	}
	w.buf = b[:0]
	if _, err := w.w.Write(b); err != nil {
		return 0, err
	}
	w.records++
	w.bytes += uint64(len(b))
	w.metrics.recordWritten(rec.Type, len(b))
	return len(b), nil
}

// Records reports how many records this writer has written.
func (w *Writer) Records() uint64 { return w.records }

// Bytes reports how many bytes this writer has written.
func (w *Writer) Bytes() uint64 { return w.bytes }

// WriteFile writes records as a standalone MRT file (used for RIB
// snapshots, which live in their own files beside the update archive).
func WriteFile(path string, records []*Record, m *Metrics) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := NewWriter(f, m)
	for _, rec := range records {
		if _, err := w.WriteRecord(rec); err != nil {
			f.Close()
			os.Remove(path)
			return err
		}
	}
	return f.Close()
}

// ---------------------------------------------------------------------
// Rotating archive

// Archive defaults.
const (
	DefaultMaxBytes = 16 << 20
	DefaultMaxAge   = time.Hour
	DefaultPrefix   = "updates"
)

// ArchiveConfig parameterizes an Archive.
type ArchiveConfig struct {
	// Dir is the directory segments are written into (created if
	// needed).
	Dir string
	// Prefix names segment files: <Prefix>-<opened>-<seq>.mrt
	// (default DefaultPrefix).
	Prefix string
	// MaxBytes rotates a segment before it would exceed this size
	// (default DefaultMaxBytes).
	MaxBytes int64
	// MaxAge rotates a non-empty segment this long after it was opened
	// (default DefaultMaxAge).
	MaxAge time.Duration
	// Clock drives age rotation and file naming (nil = system).
	Clock clock.Clock
	// Metrics receives write/rotation counts (nil disables).
	Metrics *Metrics
	// OnRotate, if set, runs synchronously after each segment is sealed
	// — the collector hooks its RIB snapshot dump here. The callback
	// must not call back into the Archive.
	OnRotate func(sealed string, records uint64)
}

// Archive is a size/age-rotating MRT writer: a continuous record
// stream lands in bounded segment files, each sealed segment triggering
// the OnRotate hook (dump-on-rotate snapshots).
type Archive struct {
	cfg ArchiveConfig
	clk clock.Clock

	mu         sync.Mutex
	f          *os.File
	w          *Writer
	cur        string
	opened     time.Time
	seq        int
	ageTimer   clock.Timer
	sealed     []string
	totalRecs  uint64
	totalBytes uint64
	rotations  uint64
	closed     bool
}

// ArchiveStatus is a point-in-time view of an Archive, JSON-shaped for
// the portal's GET /archive endpoint.
type ArchiveStatus struct {
	Dir            string    `json:"dir"`
	CurrentFile    string    `json:"current_file"`
	CurrentRecords uint64    `json:"current_records"`
	CurrentBytes   uint64    `json:"current_bytes"`
	OpenedAt       time.Time `json:"opened_at"`
	SealedSegments []string  `json:"sealed_segments,omitempty"`
	Records        uint64    `json:"records_total"`
	Bytes          uint64    `json:"bytes_total"`
	Rotations      uint64    `json:"rotations"`
}

// NewArchive opens an archive in cfg.Dir and starts its first segment.
func NewArchive(cfg ArchiveConfig) (*Archive, error) {
	if cfg.Prefix == "" {
		cfg.Prefix = DefaultPrefix
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.MaxAge <= 0 {
		cfg.MaxAge = DefaultMaxAge
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("mrt: archive dir: %w", err)
	}
	a := &Archive{cfg: cfg, clk: clk}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.openSegment(); err != nil {
		return nil, err
	}
	return a, nil
}

// Dir returns the archive directory.
func (a *Archive) Dir() string { return a.cfg.Dir }

// Metrics returns the instrument set the archive was built with (may be
// nil).
func (a *Archive) Metrics() *Metrics { return a.cfg.Metrics }

// SetOnRotate replaces the seal hook (see ArchiveConfig.OnRotate).
func (a *Archive) SetOnRotate(fn func(sealed string, records uint64)) {
	a.mu.Lock()
	a.cfg.OnRotate = fn
	a.mu.Unlock()
}

// openSegment starts a new segment file. Caller holds a.mu.
func (a *Archive) openSegment() error {
	a.seq++
	a.opened = a.clk.Now()
	name := fmt.Sprintf("%s-%s-%04d.mrt", a.cfg.Prefix, a.opened.UTC().Format("20060102T150405Z"), a.seq)
	path := filepath.Join(a.cfg.Dir, name)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mrt: open segment: %w", err)
	}
	a.f = f
	a.w = NewWriter(f, a.cfg.Metrics)
	a.cur = path
	if a.ageTimer != nil {
		a.ageTimer.Stop()
	}
	a.ageTimer = a.clk.AfterFunc(a.cfg.MaxAge, func() { a.Rotate() })
	return nil
}

// WriteRecord archives one record, rotating first if the current
// segment would exceed MaxBytes.
func (a *Archive) WriteRecord(rec *Record) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return fmt.Errorf("mrt: archive closed")
	}
	var hook func()
	if a.w.Records() > 0 && int64(a.w.Bytes())+int64(headerLen+len(rec.Body)+4) > a.cfg.MaxBytes {
		h, err := a.sealLocked()
		if err != nil {
			a.mu.Unlock()
			return err
		}
		hook = h
		if err := a.openSegment(); err != nil {
			a.mu.Unlock()
			return err
		}
	}
	n, err := a.w.WriteRecord(rec)
	if err == nil {
		a.totalRecs++
		a.totalBytes += uint64(n)
	}
	a.mu.Unlock()
	if hook != nil {
		hook()
	}
	return err
}

// sealLocked closes the current segment and returns the deferred
// OnRotate invocation (run it after releasing a.mu). Caller holds a.mu.
func (a *Archive) sealLocked() (func(), error) {
	if err := a.f.Close(); err != nil {
		return nil, fmt.Errorf("mrt: seal segment: %w", err)
	}
	sealed, records := a.cur, a.w.Records()
	a.sealed = append(a.sealed, sealed)
	a.rotations++
	a.cfg.Metrics.rotation()
	fn := a.cfg.OnRotate
	if fn == nil {
		return func() {}, nil
	}
	return func() { fn(sealed, records) }, nil
}

// Rotate seals the current segment (firing OnRotate) and starts a new
// one. An empty segment is left in place — there is nothing to seal —
// and "" is returned.
func (a *Archive) Rotate() (sealed string, err error) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return "", fmt.Errorf("mrt: archive closed")
	}
	if a.w.Records() == 0 {
		// Nothing archived since the segment opened; re-arm the age timer
		// instead of sealing an empty file.
		a.ageTimer.Reset(a.cfg.MaxAge)
		a.mu.Unlock()
		return "", nil
	}
	hook, err := a.sealLocked()
	if err != nil {
		a.mu.Unlock()
		return "", err
	}
	sealed = a.sealed[len(a.sealed)-1]
	if err := a.openSegment(); err != nil {
		a.closed = true
		a.mu.Unlock()
		return sealed, err
	}
	a.mu.Unlock()
	hook()
	return sealed, nil
}

// Close seals the current segment (firing OnRotate if it holds
// records) and stops the archive.
func (a *Archive) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	if a.ageTimer != nil {
		a.ageTimer.Stop()
	}
	hook := func() {}
	var err error
	if a.w.Records() == 0 {
		// Remove the empty trailing segment rather than archiving a
		// zero-record file.
		err = a.f.Close()
		os.Remove(a.cur)
		a.cur = ""
	} else {
		hook, err = a.sealLocked()
		a.cur = ""
	}
	a.mu.Unlock()
	hook()
	return err
}

// Status reports the archive's current state.
func (a *Archive) Status() ArchiveStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := ArchiveStatus{
		Dir:            a.cfg.Dir,
		SealedSegments: append([]string(nil), a.sealed...),
		Records:        a.totalRecs,
		Bytes:          a.totalBytes,
		Rotations:      a.rotations,
	}
	if !a.closed {
		st.CurrentFile = a.cur
		st.CurrentRecords = a.w.Records()
		st.CurrentBytes = a.w.Bytes()
		st.OpenedAt = a.opened
	}
	return st
}
