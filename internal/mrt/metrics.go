package mrt

import (
	"time"

	"peering/internal/telemetry"
)

// replayLagBuckets span the scheduling error of a timestamp-faithful
// replay: sub-millisecond (keeping up), the milliseconds regime of a
// loaded receiver, and the multi-second regime that means the trace is
// being delivered slower than it was recorded.
var replayLagBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 0.5, 1, 5, 30}

// Metrics is the archival/replay instrument set. One instance per
// registry, shared by every Writer, Archive, Reader, and replay built
// with it; a nil *Metrics disables instrumentation (each hook guards
// itself).
type Metrics struct {
	// RecordsWritten / BytesWritten count archived output by MRT record
	// type ("bgp4mp", "bgp4mp_et", "table_dump_v2").
	RecordsWritten *telemetry.CounterVec
	BytesWritten   *telemetry.CounterVec
	// Rotations counts archive segments sealed (size, age, or manual).
	Rotations *telemetry.Counter
	// DecodeErrors counts records a Reader could not decode.
	DecodeErrors *telemetry.Counter
	// ReplayRecords counts records delivered by replay runs.
	ReplayRecords *telemetry.Counter
	// ReplayLag observes how far behind schedule each record of a
	// timestamp-faithful replay was delivered.
	ReplayLag *telemetry.Histogram
}

// NewMetrics registers the MRT instrument set on r.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		RecordsWritten: r.CounterVec("peering_mrt_records_written_total",
			"MRT records archived, by record type.", "type"),
		BytesWritten: r.CounterVec("peering_mrt_bytes_written_total",
			"MRT bytes archived (headers included), by record type.", "type"),
		Rotations: r.Counter("peering_mrt_rotations_total",
			"Archive segments sealed (size limit, age limit, or manual rotation)."),
		DecodeErrors: r.Counter("peering_mrt_decode_errors_total",
			"MRT records that failed to decode."),
		ReplayRecords: r.Counter("peering_mrt_replay_records_total",
			"MRT records delivered by replay runs."),
		ReplayLag: r.Histogram("peering_mrt_replay_lag_seconds",
			"How far behind its recorded schedule each replayed record was delivered (timed replay only).",
			replayLagBuckets),
	}
}

// typeLabel maps a record type to its metric label value.
func typeLabel(t Type) string {
	switch t {
	case TypeBGP4MP:
		return "bgp4mp"
	case TypeBGP4MPET:
		return "bgp4mp_et"
	case TypeTableDumpV2:
		return "table_dump_v2"
	default:
		return "other"
	}
}

func (m *Metrics) recordWritten(t Type, bytes int) {
	if m != nil {
		m.RecordsWritten.With(typeLabel(t)).Inc()
		m.BytesWritten.With(typeLabel(t)).Add(uint64(bytes))
	}
}

func (m *Metrics) rotation() {
	if m != nil {
		m.Rotations.Inc()
	}
}

func (m *Metrics) decodeError() {
	if m != nil {
		m.DecodeErrors.Inc()
	}
}

func (m *Metrics) replayed(lag time.Duration, timed bool) {
	if m == nil {
		return
	}
	m.ReplayRecords.Inc()
	if timed {
		if lag < 0 {
			lag = 0
		}
		m.ReplayLag.Observe(lag.Seconds())
	}
}
