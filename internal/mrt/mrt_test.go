package mrt

import (
	"bytes"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"peering/internal/clock"
	"peering/internal/telemetry"
	"peering/internal/wire"
)

// Fixture identities: a 4-octet ASN (196615 > 65535 forces true AS4
// encoding) peering with the testbed.
const (
	fixPeerAS  = 196615
	fixLocalAS = 47065
)

var (
	fixTime    = time.Unix(1404000000, 0).UTC() // June 2014, the paper era
	fixPeerIP  = netip.MustParseAddr("80.249.208.10")
	fixLocalIP = netip.MustParseAddr("80.249.208.1")
)

func mustMarshal(t *testing.T, m wire.Message, opt wire.Options) []byte {
	t.Helper()
	b, err := wire.Marshal(m, opt)
	if err != nil {
		t.Fatalf("marshal message: %v", err)
	}
	return b
}

func fixAttrs(nextHop string, path ...uint32) *wire.Attrs {
	return &wire.Attrs{
		Origin:  wire.OriginIGP,
		ASPath:  []wire.Segment{{Type: wire.SegSequence, ASNs: path}},
		NextHop: netip.MustParseAddr(nextHop),
	}
}

// goldenBGP4MPAS4 is the bgp4mp_as4.mrt fixture: a plain-timestamp
// MESSAGE_AS4 announcement with a 4-octet ASN in the path, followed by
// a withdrawal.
func goldenBGP4MPAS4(t *testing.T) []*Record {
	t.Helper()
	opts := wire.Options{AS4: true}
	ann := &BGP4MP{
		PeerAS: fixPeerAS, LocalAS: fixLocalAS, PeerIP: fixPeerIP, LocalIP: fixLocalIP,
		Message: mustMarshal(t, &wire.Update{
			Attrs: fixAttrs("80.249.208.10", fixPeerAS, 3356),
			Reach: []wire.NLRI{{Prefix: netip.MustParsePrefix("184.164.224.0/24")}},
		}, opts),
		AS4: true,
	}
	wd := &BGP4MP{
		PeerAS: fixPeerAS, LocalAS: fixLocalAS, PeerIP: fixPeerIP, LocalIP: fixLocalIP,
		Message: mustMarshal(t, &wire.Update{
			Withdrawn: []wire.NLRI{{Prefix: netip.MustParsePrefix("184.164.224.0/24")}},
		}, opts),
		AS4: true,
	}
	r1, err := ann.Record(fixTime, false)
	if err != nil {
		t.Fatalf("announce record: %v", err)
	}
	r2, err := wd.Record(fixTime.Add(3*time.Second), false)
	if err != nil {
		t.Fatalf("withdraw record: %v", err)
	}
	return []*Record{r1, r2}
}

// goldenBGP4MPETAddPath is the bgp4mp_et_addpath.mrt fixture:
// microsecond-stamped MESSAGE_AS4_ADDPATH records whose NLRI carry
// path IDs — the BIRD-mode trace shape.
func goldenBGP4MPETAddPath(t *testing.T) []*Record {
	t.Helper()
	opts := wire.Options{AS4: true, AddPath: true}
	var recs []*Record
	for i, pathID := range []wire.PathID{1, 2} {
		m := &BGP4MP{
			PeerAS: fixPeerAS, LocalAS: fixLocalAS, PeerIP: fixPeerIP, LocalIP: fixLocalIP,
			Message: mustMarshal(t, &wire.Update{
				Attrs: fixAttrs("80.249.208.10", fixPeerAS, 64512+uint32(i), 3356),
				Reach: []wire.NLRI{{Prefix: netip.MustParsePrefix("10.0.0.0/8"), ID: pathID}},
			}, opts),
			AS4: true, AddPath: true,
		}
		rec, err := m.Record(fixTime.Add(time.Duration(i)*time.Second+123456*time.Microsecond), true)
		if err != nil {
			t.Fatalf("addpath record %d: %v", i, err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// goldenTableDumpV2 is the table_dump_v2.mrt fixture: a PEER_INDEX_TABLE
// (including an IPv6 peer address), a plain RIB record with two
// entries, and an ADD-PATH RIB record.
func goldenTableDumpV2(t *testing.T) []*Record {
	t.Helper()
	pi := &PeerIndex{
		CollectorID: netip.MustParseAddr("128.223.51.102"),
		ViewName:    "route-views",
		Peers: []Peer{
			{BGPID: netip.MustParseAddr("4.69.0.1"), Addr: fixPeerIP, AS: fixPeerAS},
			{BGPID: netip.MustParseAddr("4.69.0.2"), Addr: netip.MustParseAddr("2001:7f8:1::1"), AS: 3356},
		},
	}
	head, err := pi.Record(fixTime)
	if err != nil {
		t.Fatalf("peer index record: %v", err)
	}
	plain := &RIB{
		Sequence: 0,
		Prefix:   netip.MustParsePrefix("184.164.224.0/24"),
		Entries: []RIBEntry{
			{PeerIndex: 0, Originated: fixTime.Add(-time.Hour), Attrs: fixAttrs("80.249.208.10", fixPeerAS, 3356)},
			{PeerIndex: 1, Originated: fixTime.Add(-2 * time.Hour), Attrs: fixAttrs("80.249.208.11", 3356)},
		},
	}
	r1, err := plain.Record(fixTime)
	if err != nil {
		t.Fatalf("plain RIB record: %v", err)
	}
	addpath := &RIB{
		Sequence: 1,
		Prefix:   netip.MustParsePrefix("10.0.0.0/8"),
		AddPath:  true,
		Entries: []RIBEntry{
			{PeerIndex: 0, Originated: fixTime.Add(-time.Minute), PathID: 7, Attrs: fixAttrs("80.249.208.10", fixPeerAS, 64512, 3356)},
			{PeerIndex: 0, Originated: fixTime.Add(-time.Minute), PathID: 8, Attrs: fixAttrs("80.249.208.10", fixPeerAS, 64513, 3356)},
		},
	}
	r2, err := addpath.Record(fixTime)
	if err != nil {
		t.Fatalf("addpath RIB record: %v", err)
	}
	return []*Record{head, r1, r2}
}

func goldenFixtures(t *testing.T) map[string][]*Record {
	return map[string][]*Record{
		"bgp4mp_as4.mrt":        goldenBGP4MPAS4(t),
		"bgp4mp_et_addpath.mrt": goldenBGP4MPETAddPath(t),
		"table_dump_v2.mrt":     goldenTableDumpV2(t),
	}
}

func encodeAll(t *testing.T, recs []*Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, nil)
	for i, rec := range recs {
		if _, err := w.WriteRecord(rec); err != nil {
			t.Fatalf("write record %d: %v", i, err)
		}
	}
	return buf.Bytes()
}

// TestGoldenFiles checks, for every committed fixture, that (a) the
// typed constructors reproduce the committed bytes exactly, and (b)
// decoding the file and re-encoding each record is byte-identical —
// the encoder is canonical in both directions. Set MRT_REGEN_GOLDEN=1
// to rewrite the fixtures after an intentional format change.
func TestGoldenFiles(t *testing.T) {
	for name, recs := range goldenFixtures(t) {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("testdata", name)
			encoded := encodeAll(t, recs)
			if os.Getenv("MRT_REGEN_GOLDEN") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, encoded, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("regenerated %s (%d bytes)", path, len(encoded))
			}
			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with MRT_REGEN_GOLDEN=1 to create): %v", err)
			}
			if !bytes.Equal(encoded, golden) {
				t.Fatalf("constructed records encode to %d bytes != %d-byte golden file", len(encoded), len(golden))
			}

			r := NewReader(bytes.NewReader(golden))
			var decoded []*Record
			for {
				rec, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				decoded = append(decoded, rec)
			}
			if len(decoded) != len(recs) {
				t.Fatalf("decoded %d records, want %d", len(decoded), len(recs))
			}
			if !bytes.Equal(encodeAll(t, decoded), golden) {
				t.Fatal("decode → re-encode is not byte-identical to the golden file")
			}
			for i, rec := range decoded {
				if !rec.Time.Equal(recs[i].Time) || rec.Type != recs[i].Type || rec.Subtype != recs[i].Subtype || !bytes.Equal(rec.Body, recs[i].Body) {
					t.Errorf("record %d: decoded %+v != constructed %+v", i, rec, recs[i])
				}
			}
		})
	}
}

// TestBGP4MPRoundTrip checks the typed BGP4MP view survives the wire:
// identity fields, subtype selection, and the embedded UPDATE.
func TestBGP4MPRoundTrip(t *testing.T) {
	recs := goldenBGP4MPETAddPath(t)
	m, err := ParseBGP4MP(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if m.PeerAS != fixPeerAS || m.LocalAS != fixLocalAS || m.PeerIP != fixPeerIP || m.LocalIP != fixLocalIP {
		t.Fatalf("identity fields: %+v", m)
	}
	if !m.AS4 || !m.AddPath {
		t.Fatalf("want AS4+AddPath from subtype %d, got %+v", recs[0].Subtype, m)
	}
	if recs[0].Subtype != SubtypeBGP4MPMessageAS4AddPath {
		t.Fatalf("subtype = %d, want MESSAGE_AS4_ADDPATH", recs[0].Subtype)
	}
	upd, err := m.Update()
	if err != nil {
		t.Fatal(err)
	}
	if len(upd.Reach) != 1 || upd.Reach[0].ID != 1 {
		t.Fatalf("reach = %+v, want one NLRI with path ID 1", upd.Reach)
	}
	if got := upd.Attrs.ASList(); got[0] != fixPeerAS {
		t.Fatalf("AS path %v does not start with 4-octet ASN %d", got, fixPeerAS)
	}
	if us := recs[0].Time.Nanosecond() / 1000; us != 123456 {
		t.Fatalf("extended timestamp: %dµs, want 123456", us)
	}
}

// TestTableDumpRoundTrip checks the typed TABLE_DUMP_V2 views.
func TestTableDumpRoundTrip(t *testing.T) {
	recs := goldenTableDumpV2(t)
	pi, err := ParsePeerIndex(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if pi.ViewName != "route-views" || len(pi.Peers) != 2 {
		t.Fatalf("peer index: %+v", pi)
	}
	if !pi.Peers[1].Addr.Is6() || pi.Peers[1].AS != 3356 {
		t.Fatalf("IPv6 peer did not survive: %+v", pi.Peers[1])
	}

	plain, err := ParseRIB(recs[1])
	if err != nil {
		t.Fatal(err)
	}
	if plain.AddPath || len(plain.Entries) != 2 || plain.Prefix != netip.MustParsePrefix("184.164.224.0/24") {
		t.Fatalf("plain RIB: %+v", plain)
	}
	if got := plain.Entries[0].Attrs.ASList(); !reflect.DeepEqual(got, []uint32{fixPeerAS, 3356}) {
		t.Fatalf("entry 0 path %v", got)
	}

	ap, err := ParseRIB(recs[2])
	if err != nil {
		t.Fatal(err)
	}
	if !ap.AddPath || ap.Entries[0].PathID != 7 || ap.Entries[1].PathID != 8 {
		t.Fatalf("addpath RIB: %+v", ap)
	}
}

// TestRecordValidation exercises the decoder's guards.
func TestRecordValidation(t *testing.T) {
	if _, _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("truncated header accepted")
	}
	// Oversized length field.
	big := make([]byte, headerLen)
	big[8], big[9], big[10], big[11] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := Unmarshal(big); err == nil {
		t.Error("oversized length accepted")
	}
	// ET record with out-of-range microseconds.
	et := &Record{Time: time.Unix(1404000000, 0), Type: TypeBGP4MPET, Body: []byte{1}}
	b, err := et.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b[12], b[13], b[14], b[15] = 0x00, 0x0f, 0x42, 0x40 // 1_000_000 µs
	if _, _, err := Unmarshal(b); err == nil {
		t.Error("microseconds = 1e6 accepted")
	}
	// Pre-epoch timestamps cannot be encoded.
	old := &Record{Time: time.Unix(-1, 0), Type: TypeBGP4MP}
	if _, err := old.Marshal(); err == nil {
		t.Error("negative timestamp accepted")
	}
}

// TestReaderTruncation: a partial record is an error, not EOF, and is
// counted on the instrument set.
func TestReaderTruncation(t *testing.T) {
	full := encodeAll(t, goldenBGP4MPAS4(t))
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	r := NewReader(bytes.NewReader(full[:len(full)-5]))
	r.Instrument(m)
	if _, err := r.Next(); err != nil {
		t.Fatalf("first record: %v", err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated record: got %v, want hard error", err)
	}
	if got := m.DecodeErrors.Value(); got != 1 {
		t.Fatalf("decode errors = %d, want 1", got)
	}
}

// TestArchiveSizeRotation: writing past MaxBytes seals segments and
// fires the rotation hook with the sealed path.
func TestArchiveSizeRotation(t *testing.T) {
	dir := t.TempDir()
	var sealed []string
	a, err := NewArchive(ArchiveConfig{
		Dir: dir, MaxBytes: 256,
		OnRotate: func(path string, records uint64) {
			if records == 0 {
				t.Error("rotation hook fired for empty segment")
			}
			sealed = append(sealed, path)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := goldenBGP4MPAS4(t)
	for i := 0; i < 20; i++ {
		if err := a.WriteRecord(recs[i%len(recs)]); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sealed) < 2 {
		t.Fatalf("sealed %d segments, want several at 256-byte cap", len(sealed))
	}
	// Every sealed segment decodes cleanly and respects the size cap,
	// and together they hold every record written.
	total := 0
	for _, path := range sealed {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > 256 {
			t.Errorf("%s is %d bytes > 256 cap", path, fi.Size())
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		r := NewReader(f)
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			total++
		}
		f.Close()
	}
	if total != 20 {
		t.Fatalf("sealed segments hold %d records, want 20", total)
	}
	st := a.Status()
	if st.Records != 20 || st.Rotations != uint64(len(sealed)) {
		t.Fatalf("status: %+v", st)
	}
}

// TestArchiveAgeRotation: on a virtual clock, a non-empty segment
// rotates when MaxAge elapses; an empty one does not.
func TestArchiveAgeRotation(t *testing.T) {
	clk := clock.NewVirtual(fixTime)
	dir := t.TempDir()
	rotated := 0
	a, err := NewArchive(ArchiveConfig{
		Dir: dir, MaxAge: time.Minute, Clock: clk,
		OnRotate: func(string, uint64) { rotated++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Empty segment: the age timer must re-arm, not seal.
	clk.Advance(2 * time.Minute)
	if rotated != 0 {
		t.Fatalf("empty segment rotated %d times", rotated)
	}
	rec := goldenBGP4MPAS4(t)[0]
	if err := a.WriteRecord(rec); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Minute)
	if rotated != 1 {
		t.Fatalf("rotations = %d, want 1 after MaxAge with data", rotated)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Close removed the empty trailing segment: only the sealed one
	// remains on disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d files left in archive dir, want 1 sealed segment", len(entries))
	}
}

// TestWriteFileCleansUpOnError: a failed snapshot write does not leave
// a partial file behind.
func TestWriteFileCleansUpOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rib.mrt")
	bad := &Record{Time: time.Unix(-1, 0), Type: TypeTableDumpV2}
	if err := WriteFile(path, []*Record{bad}, nil); err == nil {
		t.Fatal("unencodable record accepted")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("partial file left behind: %v", err)
	}
}
