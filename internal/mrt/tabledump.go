// TABLE_DUMP_V2 record bodies (RFC 6396 §4.3): a deduplicated peer
// index followed by per-prefix RIB entries. A snapshot file is one
// PEER_INDEX_TABLE record followed by one RIB record per prefix.

package mrt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"peering/internal/wire"
)

// snapshotAttrOptions is the codec state for RIB-entry attribute
// blocks: RFC 6396 §4.3.4 requires AS_PATH in 4-octet form regardless
// of what the live session negotiated.
var snapshotAttrOptions = wire.Options{AS4: true}

// Peer is one entry of the PEER_INDEX_TABLE; RIB entries reference
// peers by their position in the table.
type Peer struct {
	// BGPID is the peer's BGP identifier.
	BGPID netip.Addr
	// Addr is the peer's session address.
	Addr netip.Addr
	// AS is the peer's AS number.
	AS uint32
}

// PeerIndex is the PEER_INDEX_TABLE record: collector identity plus the
// peer table every subsequent RIB record indexes into.
type PeerIndex struct {
	// CollectorID is the collector's BGP identifier.
	CollectorID netip.Addr
	// ViewName labels the RIB view (often empty in real archives).
	ViewName string
	Peers    []Peer
}

// peerType builds the RFC 6396 §4.3.1 peer-type bit field: bit 0 set
// for an IPv6 peer address, bit 1 set for a 4-byte AS field. The
// encoder always writes 4-byte ASes.
const (
	peerTypeIPv6 = 0x01
	peerTypeAS4  = 0x02
)

// Record encodes the peer index stamped t.
func (p *PeerIndex) Record(t time.Time) (*Record, error) {
	if !p.CollectorID.Is4() {
		return nil, fmt.Errorf("mrt: collector BGP ID %v is not IPv4", p.CollectorID)
	}
	if len(p.ViewName) > 0xffff || len(p.Peers) > 0xffff {
		return nil, fmt.Errorf("mrt: peer index too large (%d-byte view, %d peers)", len(p.ViewName), len(p.Peers))
	}
	id := p.CollectorID.As4()
	b := append([]byte(nil), id[:]...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(p.ViewName)))
	b = append(b, p.ViewName...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(p.Peers)))
	for _, peer := range p.Peers {
		if !peer.BGPID.Is4() {
			return nil, fmt.Errorf("mrt: peer BGP ID %v is not IPv4", peer.BGPID)
		}
		if !peer.Addr.IsValid() {
			return nil, fmt.Errorf("mrt: peer address missing")
		}
		typ := byte(peerTypeAS4)
		if peer.Addr.Is6() {
			typ |= peerTypeIPv6
		}
		b = append(b, typ)
		pid := peer.BGPID.As4()
		b = append(b, pid[:]...)
		if peer.Addr.Is4() {
			a := peer.Addr.As4()
			b = append(b, a[:]...)
		} else {
			a := peer.Addr.As16()
			b = append(b, a[:]...)
		}
		b = binary.BigEndian.AppendUint32(b, peer.AS)
	}
	return &Record{Time: t, Type: TypeTableDumpV2, Subtype: SubtypePeerIndexTable, Body: b}, nil
}

// ParsePeerIndex decodes a PEER_INDEX_TABLE record body.
func ParsePeerIndex(rec *Record) (*PeerIndex, error) {
	if rec.Type != TypeTableDumpV2 || rec.Subtype != SubtypePeerIndexTable {
		return nil, fmt.Errorf("mrt: %v subtype %d is not a PEER_INDEX_TABLE", rec.Type, rec.Subtype)
	}
	b := rec.Body
	if len(b) < 8 {
		return nil, fmt.Errorf("mrt: peer index truncated (%d bytes)", len(b))
	}
	p := &PeerIndex{CollectorID: netip.AddrFrom4([4]byte(b[0:4]))}
	nameLen := int(binary.BigEndian.Uint16(b[4:6]))
	b = b[6:]
	if len(b) < nameLen+2 {
		return nil, fmt.Errorf("mrt: peer index truncated in view name")
	}
	p.ViewName = string(b[:nameLen])
	count := int(binary.BigEndian.Uint16(b[nameLen : nameLen+2]))
	b = b[nameLen+2:]
	for i := 0; i < count; i++ {
		if len(b) < 5 {
			return nil, fmt.Errorf("mrt: peer index truncated at peer %d", i)
		}
		typ := b[0]
		peer := Peer{BGPID: netip.AddrFrom4([4]byte(b[1:5]))}
		b = b[5:]
		if typ&peerTypeIPv6 != 0 {
			if len(b) < 16 {
				return nil, fmt.Errorf("mrt: peer index truncated at peer %d address", i)
			}
			peer.Addr = netip.AddrFrom16([16]byte(b[0:16]))
			b = b[16:]
		} else {
			if len(b) < 4 {
				return nil, fmt.Errorf("mrt: peer index truncated at peer %d address", i)
			}
			peer.Addr = netip.AddrFrom4([4]byte(b[0:4]))
			b = b[4:]
		}
		if typ&peerTypeAS4 != 0 {
			if len(b) < 4 {
				return nil, fmt.Errorf("mrt: peer index truncated at peer %d AS", i)
			}
			peer.AS = binary.BigEndian.Uint32(b[0:4])
			b = b[4:]
		} else {
			if len(b) < 2 {
				return nil, fmt.Errorf("mrt: peer index truncated at peer %d AS", i)
			}
			peer.AS = uint32(binary.BigEndian.Uint16(b[0:2]))
			b = b[2:]
		}
		p.Peers = append(p.Peers, peer)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("mrt: %d trailing bytes after peer index", len(b))
	}
	return p, nil
}

// RIBEntry is one path to the enclosing record's prefix.
type RIBEntry struct {
	// PeerIndex references the advertising peer's position in the
	// snapshot's PEER_INDEX_TABLE.
	PeerIndex uint16
	// Originated is when the route was learned (one-second precision on
	// the wire).
	Originated time.Time
	// PathID is the ADD-PATH identifier; encoded only in the _ADDPATH
	// subtype.
	PathID wire.PathID
	// Attrs is the entry's path-attribute block (always 4-octet AS).
	Attrs *wire.Attrs
}

// RIB is one RIB_IPV4_UNICAST[_ADDPATH] record: every archived path to
// one prefix.
type RIB struct {
	// Sequence numbers records within a dump, starting at 0.
	Sequence uint32
	Prefix   netip.Prefix
	// AddPath selects the RFC 8050 subtype carrying per-entry path IDs.
	AddPath bool
	Entries []RIBEntry
}

// Record encodes the RIB record stamped t.
func (r *RIB) Record(t time.Time) (*Record, error) {
	if !r.Prefix.IsValid() || !r.Prefix.Addr().Is4() {
		return nil, fmt.Errorf("mrt: RIB_IPV4_UNICAST needs an IPv4 prefix, got %v", r.Prefix)
	}
	if len(r.Entries) > 0xffff {
		return nil, fmt.Errorf("mrt: too many RIB entries (%d)", len(r.Entries))
	}
	b := binary.BigEndian.AppendUint32(nil, r.Sequence)
	bits := r.Prefix.Bits()
	b = append(b, byte(bits))
	addr := r.Prefix.Masked().Addr().As4()
	b = append(b, addr[:(bits+7)/8]...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(r.Entries)))
	for _, e := range r.Entries {
		sec := e.Originated.Unix()
		if sec < 0 {
			sec = 0
		}
		b = binary.BigEndian.AppendUint16(b, e.PeerIndex)
		b = binary.BigEndian.AppendUint32(b, uint32(sec))
		if r.AddPath {
			b = binary.BigEndian.AppendUint32(b, uint32(e.PathID))
		}
		attrs, err := wire.MarshalAttrs(e.Attrs, snapshotAttrOptions)
		if err != nil {
			return nil, fmt.Errorf("mrt: encode RIB entry attrs for %v: %w", r.Prefix, err)
		}
		if len(attrs) > 0xffff {
			return nil, fmt.Errorf("mrt: RIB entry attributes too long (%d bytes)", len(attrs))
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(attrs)))
		b = append(b, attrs...)
	}
	sub := SubtypeRIBIPv4Unicast
	if r.AddPath {
		sub = SubtypeRIBIPv4UnicastAddPath
	}
	return &Record{Time: t, Type: TypeTableDumpV2, Subtype: sub, Body: b}, nil
}

// ParseRIB decodes a RIB_IPV4_UNICAST or RIB_IPV4_UNICAST_ADDPATH
// record body.
func ParseRIB(rec *Record) (*RIB, error) {
	if rec.Type != TypeTableDumpV2 {
		return nil, fmt.Errorf("mrt: %v is not a TABLE_DUMP_V2 record", rec.Type)
	}
	r := &RIB{}
	switch rec.Subtype {
	case SubtypeRIBIPv4Unicast:
	case SubtypeRIBIPv4UnicastAddPath:
		r.AddPath = true
	default:
		return nil, fmt.Errorf("mrt: unsupported TABLE_DUMP_V2 subtype %d", rec.Subtype)
	}
	b := rec.Body
	if len(b) < 5 {
		return nil, fmt.Errorf("mrt: RIB record truncated (%d bytes)", len(b))
	}
	r.Sequence = binary.BigEndian.Uint32(b[0:4])
	bits := int(b[4])
	if bits > 32 {
		return nil, fmt.Errorf("mrt: RIB prefix length %d invalid for IPv4", bits)
	}
	nb := (bits + 7) / 8
	b = b[5:]
	if len(b) < nb+2 {
		return nil, fmt.Errorf("mrt: RIB record truncated in prefix")
	}
	var a [4]byte
	copy(a[:], b[:nb])
	r.Prefix = netip.PrefixFrom(netip.AddrFrom4(a), bits).Masked()
	count := int(binary.BigEndian.Uint16(b[nb : nb+2]))
	b = b[nb+2:]
	for i := 0; i < count; i++ {
		fixed := 8
		if r.AddPath {
			fixed += 4
		}
		if len(b) < fixed {
			return nil, fmt.Errorf("mrt: RIB record truncated at entry %d", i)
		}
		e := RIBEntry{
			PeerIndex:  binary.BigEndian.Uint16(b[0:2]),
			Originated: time.Unix(int64(binary.BigEndian.Uint32(b[2:6])), 0).UTC(),
		}
		b = b[6:]
		if r.AddPath {
			e.PathID = wire.PathID(binary.BigEndian.Uint32(b[0:4]))
			b = b[4:]
		}
		attrLen := int(binary.BigEndian.Uint16(b[0:2]))
		b = b[2:]
		if len(b) < attrLen {
			return nil, fmt.Errorf("mrt: RIB record truncated in entry %d attributes", i)
		}
		attrs, err := wire.ParseAttrs(b[:attrLen], snapshotAttrOptions)
		if err != nil {
			return nil, fmt.Errorf("mrt: RIB entry %d attrs: %w", i, err)
		}
		e.Attrs = attrs
		b = b[attrLen:]
		r.Entries = append(r.Entries, e)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("mrt: %d trailing bytes after RIB entries", len(b))
	}
	return r, nil
}
