// Package muxproto defines the control protocol between PEERING servers
// and clients: stream-ID conventions on the shared tunnel transport and
// the JSON provisioning handshake that tells a client which upstream
// peers the server offers and which prefixes the experiment may use.
package muxproto

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
)

// Stream IDs on the client↔server tunnel mux.
const (
	// StreamPackets carries data-plane packets.
	StreamPackets uint32 = 0
	// StreamControl carries the provisioning handshake.
	StreamControl uint32 = 1
	// StreamBGPBase is the first BGP stream: in Quagga mode, stream
	// StreamBGPBase+i carries the session for upstream ID i; in BIRD
	// mode only StreamBGPBase is used.
	StreamBGPBase uint32 = 2
)

// Mode selects how the server multiplexes upstream sessions to clients.
type Mode string

// Multiplexing modes (§3: Quagga today, BIRD/ADD-PATH planned).
const (
	// ModeQuagga runs one BGP session per (client × upstream peer) —
	// the deployed Transit Portal/Quagga design.
	ModeQuagga Mode = "quagga"
	// ModeBIRD runs a single ADD-PATH session per client, with path
	// IDs identifying upstream peers — the paper's planned lightweight
	// multiplexing.
	ModeBIRD Mode = "bird"
)

// UpstreamInfo describes one upstream peer the server offers.
type UpstreamInfo struct {
	// ID is the stable upstream identifier (stream offset in Quagga
	// mode; ADD-PATH path ID in BIRD mode).
	ID uint32 `json:"id"`
	// ASN is the upstream's autonomous system number.
	ASN uint32 `json:"asn"`
	// Name labels the peer ("ams-ix-rs", "ge-blacksburg").
	Name string `json:"name"`
	// PeerAddr is the synthetic address identifying this peer in the
	// client's RIBs.
	PeerAddr netip.Addr `json:"peer_addr"`
	// Transit marks upstream providers (vs. settlement-free peers).
	Transit bool `json:"transit"`
	// Via names the federated mux this peer is reached through (empty
	// for a peer at this server's own exchange). Announcements steered
	// at a Via upstream cross the federation backhaul before reaching
	// the real peer.
	Via string `json:"via,omitempty"`
}

// Provisioning is the server→client handshake message.
type Provisioning struct {
	// Site names the server ("amsterdam01").
	Site string `json:"site"`
	// ASN is the testbed's public AS number the client will operate.
	ASN uint32 `json:"asn"`
	// Mode selects the multiplexing scheme.
	Mode Mode `json:"mode"`
	// Upstreams lists the peers available through this server.
	Upstreams []UpstreamInfo `json:"upstreams"`
	// Allocation is the prefix set this client may announce and source
	// traffic from.
	Allocation []netip.Prefix `json:"allocation"`
	// SpoofAllowed reports whether the experiment has a controlled
	// spoofing grant (§2: "only carefully controlled source address
	// spoofing").
	SpoofAllowed bool `json:"spoof_allowed"`
}

// WriteProvisioning sends p as one JSON line.
func WriteProvisioning(w io.Writer, p *Provisioning) error {
	b, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("muxproto: marshal provisioning: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadProvisioning reads one JSON-line provisioning message.
func ReadProvisioning(r io.Reader) (*Provisioning, error) {
	line, err := bufio.NewReader(r).ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("muxproto: read provisioning: %w", err)
	}
	var p Provisioning
	if err := json.Unmarshal(line, &p); err != nil {
		return nil, fmt.Errorf("muxproto: decode provisioning: %w", err)
	}
	return &p, nil
}
