package muxproto

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
)

func sampleProvisioning() *Provisioning {
	return &Provisioning{
		Site: "amsterdam01",
		ASN:  47065,
		Mode: ModeQuagga,
		Upstreams: []UpstreamInfo{
			{ID: 1, ASN: 6777, Name: "ams-ix-rs", PeerAddr: netip.MustParseAddr("80.249.208.1")},
			{ID: 2, ASN: 3356, Name: "transit", PeerAddr: netip.MustParseAddr("4.69.0.1"), Transit: true},
		},
		Allocation:   []netip.Prefix{netip.MustParsePrefix("184.164.224.0/24")},
		SpoofAllowed: true,
	}
}

func TestProvisioningRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleProvisioning()
	if err := WriteProvisioning(&buf, in); err != nil {
		t.Fatal(err)
	}
	// One line of JSON.
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Fatalf("lines = %d", n)
	}
	out, err := ReadProvisioning(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Site != in.Site || out.ASN != in.ASN || out.Mode != in.Mode || !out.SpoofAllowed {
		t.Fatalf("out = %+v", out)
	}
	if len(out.Upstreams) != 2 || out.Upstreams[1].PeerAddr != netip.MustParseAddr("4.69.0.1") || !out.Upstreams[1].Transit {
		t.Fatalf("upstreams = %+v", out.Upstreams)
	}
	if len(out.Allocation) != 1 || out.Allocation[0] != netip.MustParsePrefix("184.164.224.0/24") {
		t.Fatalf("allocation = %v", out.Allocation)
	}
}

func TestReadProvisioningErrors(t *testing.T) {
	if _, err := ReadProvisioning(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadProvisioning(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadProvisioning(strings.NewReader(`{"asn": 1}`)); err == nil {
		t.Fatal("missing newline accepted")
	}
}

func TestStreamIDConventions(t *testing.T) {
	// The packet channel, control channel, and BGP base must be
	// distinct and ordered — AcceptClient and the client's stream
	// acceptor both depend on this.
	if StreamPackets == StreamControl || StreamControl >= StreamBGPBase || StreamPackets >= StreamBGPBase {
		t.Fatalf("stream IDs overlap: packets=%d control=%d bgp=%d", StreamPackets, StreamControl, StreamBGPBase)
	}
}
