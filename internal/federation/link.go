package federation

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"peering/internal/bgp"
	"peering/internal/clock"
	"peering/internal/faultconn"
	"peering/internal/ixp"
	"peering/internal/server"
	"peering/internal/tunnel"
	"peering/internal/wire"
)

// Link is one point-to-point backhaul between two members. The
// underlying transport is an in-memory pair wrapped in fault injection:
// latency models the members' attachment (ixp.Site.Backhaul), and
// remote-peering endpoints add the periodic L2 flap the paper's
// "virtualized layer 2 connectivity" rides on.
type Link struct {
	mesh *Mesh
	// a is the lexicographically lower member; stream bands on the
	// shared mux are assigned by that order (a dials streamBaseLow+uid,
	// b dials streamBaseHigh+uid).
	a, b *member
	// ca/cb are the endpoints at a and b. Backhaul byte counters come
	// from their Stats.
	ca, cb *faultconn.Conn
	muxA   *tunnel.Mux
	muxB   *tunnel.Mux
	// profile is the combined link model (RTT = mean of the endpoints',
	// capacity = the narrower attachment, flap MTBF = the jumpier one).
	profile ixp.BackhaulProfile
	remote  bool

	mu          sync.Mutex
	partitioned bool
	flapping    bool
	flaps       uint64
	flapTimer   clock.Timer
	healTimer   clock.Timer
	stopped     bool
}

// newLink builds the backhaul between two members and starts the flap
// schedule if either end is a remote-peering attachment.
func (m *Mesh) newLink(a, b *member) *Link {
	if a.name > b.name {
		a, b = b, a
	}
	pa, pb := a.cfg.Site.Backhaul(), b.cfg.Site.Backhaul()
	l := &Link{
		mesh: m,
		a:    a, b: b,
		profile: ixp.BackhaulProfile{
			RTT:          (pa.RTT + pb.RTT) / 2,
			CapacityMbps: min(pa.CapacityMbps, pb.CapacityMbps),
			FlapMTBF:     minNonzero(pa.FlapMTBF, pb.FlapMTBF),
		},
		remote: a.cfg.Site.Kind == ixp.SiteRemote || b.cfg.Site.Kind == ixp.SiteRemote,
	}
	l.ca, l.cb = faultconn.Pipe(m.clk)
	// Split the link RTT across the two one-way write delays.
	l.ca.SetLatency(l.profile.RTT / 2)
	l.cb.SetLatency(l.profile.RTT / 2)
	l.muxA = tunnel.NewMux(l.ca, func(st *tunnel.Stream) { l.accept(l.a, l.b, st) })
	l.muxB = tunnel.NewMux(l.cb, func(st *tunnel.Stream) { l.accept(l.b, l.a, st) })
	if l.remote && l.profile.FlapMTBF > 0 {
		l.scheduleFlap()
	}
	return l
}

func minNonzero(a, b time.Duration) time.Duration {
	if a == 0 {
		return b
	}
	if b == 0 || a < b {
		return a
	}
	return b
}

// muxFor returns the tunnel mux on the given member's side.
func (l *Link) muxFor(mem *member) *tunnel.Mux {
	if mem == l.a {
		return l.muxA
	}
	return l.muxB
}

// dialBase returns the stream band the given member dials from.
func (l *Link) dialBase(mem *member) uint32 {
	if mem == l.a {
		return streamBaseLow
	}
	return streamBaseHigh
}

// accept terminates a stream the peer dialed: a passive iBGP session
// at mem's agent serving mem's local upstream uid to peer.
func (l *Link) accept(mem, peer *member, st *tunnel.Stream) {
	base := l.dialBase(peer)
	id := st.ID()
	if id < base || id >= base+maxFedUpstreams {
		st.Close()
		return
	}
	uid := id - base
	if _, ok := mem.localUp[uid]; !ok {
		st.Close()
		return
	}
	ag := mem.agent
	if ag == nil {
		st.Close()
		return
	}
	sess := bgp.New(st, bgp.Config{
		LocalAS:  l.mesh.asn,
		LocalID:  mem.cfg.RouterID,
		PeerAS:   l.mesh.asn,
		Clock:    l.mesh.clk,
		Describe: fmt.Sprintf("fed-%s-serves-%s-up%d", mem.name, peer.name, uid),
	}, &exportHandler{ag: ag, peer: peer, uid: uid})
	go sess.Run()
}

// partition drops frames in both directions until heal.
func (l *Link) partition() {
	l.mu.Lock()
	l.partitioned = true
	l.mu.Unlock()
	faultconn.PartitionBoth(l.ca, l.cb)
}

// heal restores a partitioned link.
func (l *Link) heal() {
	l.mu.Lock()
	l.partitioned = false
	l.mu.Unlock()
	faultconn.HealBoth(l.ca, l.cb)
}

// scheduleFlap arms the next periodic remote-peering L2 flap. A flap
// stalls the link for FlapDuration — frames are delayed, not lost, the
// way a transport rides out a brief outage on a provider's virtual L2 —
// so established sessions survive flaps and only notice latency.
func (l *Link) scheduleFlap() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.stopped {
		return
	}
	l.flapTimer = l.mesh.clk.AfterFunc(l.profile.FlapMTBF, l.flapOnce)
}

// flapOnce runs one stall/recover cycle and reschedules.
func (l *Link) flapOnce() {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.flapping = true
	l.flaps++
	l.mu.Unlock()
	l.ca.Stall()
	l.cb.Stall()
	l.mesh.metrics.flaps.Inc()
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		l.ca.Unstall()
		l.cb.Unstall()
		return
	}
	l.healTimer = l.mesh.clk.AfterFunc(l.mesh.cfg.FlapDuration, func() {
		l.ca.Unstall()
		l.cb.Unstall()
		l.mu.Lock()
		l.flapping = false
		l.mu.Unlock()
		l.scheduleFlap()
	})
	l.mu.Unlock()
}

// stopFlapping cancels the flap schedule and releases any stall.
func (l *Link) stopFlapping() {
	l.mu.Lock()
	l.stopped = true
	ft, ht := l.flapTimer, l.healTimer
	l.mu.Unlock()
	if ft != nil {
		ft.Stop()
	}
	if ht != nil {
		ht.Stop()
	}
	l.ca.Unstall()
	l.cb.Unstall()
}

func (l *Link) close() {
	l.muxA.Close()
	l.muxB.Close()
	l.ca.Close()
	l.cb.Close()
}

// ---------------------------------------------------------------------
// Mirrored (federated) upstreams

// fedUpstream is one remote peer mirrored at a member: the upstream
// registration at X standing in for Y's real upstream uid.
type fedUpstream struct {
	at  *member // X: the member whose server carries the mirror
	via *member // Y: the member whose exchange really has the peer
	uid uint32  // Y's local upstream ID
	id  uint32  // the mirror's upstream ID at X
	u   *server.Upstream
	sup *bgp.Supervisor
	// dialedNano stamps the most recent backhaul dial; the import hook
	// closes the measurement when end-of-RIB lands (see importUpdate).
	dialedNano atomic.Int64
}

// addFedUpstream registers at X the mirror of Y's upstream ucfg.
func (x *member) addFedUpstream(y *member, ucfg server.UpstreamConfig) (*fedUpstream, error) {
	fu := &fedUpstream{at: x, via: y, uid: ucfg.ID, id: fedIDBase(y.idx) + ucfg.ID}
	u, err := x.cfg.Server.AddUpstream(server.UpstreamConfig{
		ID:        fu.id,
		Name:      ucfg.Name + "@" + y.name,
		ASN:       ucfg.ASN,
		PeerAddr:  ucfg.PeerAddr,
		LocalAddr: x.backhaulAddr,
		Transit:   ucfg.Transit,
		FedVia:    y.name,
		Import:    fu.importUpdate,
	})
	if err != nil {
		return nil, fmt.Errorf("federation: mirror %s at %s: %w", ucfg.Name, x.name, err)
	}
	fu.u = u
	return fu, nil
}

// attach brings the mirror's backhaul session up under a supervisor:
// each (re)dial opens a fresh stream in our band on the shared link.
func (fu *fedUpstream) attach() {
	x, y := fu.at, fu.via
	l := x.links[y.idx]
	mux := l.muxFor(x)
	streamID := l.dialBase(x) + fu.uid
	fu.sup = x.cfg.Server.AttachUpstreamSupervised(fu.u, func() (net.Conn, error) {
		select {
		case <-mux.Done():
			return nil, fmt.Errorf("federation: backhaul %s-%s closed: %v", l.a.name, l.b.name, mux.Err())
		default:
		}
		fu.dialedNano.Store(x.mesh.clk.Now().UnixNano())
		return mux.Open(streamID), nil
	})
}

// importUpdate is the mirror's server-side import hook, run on every
// UPDATE before archiving, interning, or dispatch. It strips OTHER
// metros' tags — restoring the attrs Y's clients see, which is what
// makes cross-mux tables attribute-for-attribute identical — while
// leaving this member's OWN tag in place for the compiled metro rule
// to reject as a loop. End-of-RIB closes the convergence measurement
// opened at dial time.
func (fu *fedUpstream) importUpdate(upd *wire.Update) {
	m := fu.at.mesh
	if upd.IsEndOfRIB() {
		if t := fu.dialedNano.Swap(0); t != 0 {
			d := m.clk.Now().Sub(time.Unix(0, t))
			m.metrics.convergence.With(fu.at.name, fu.via.name).Observe(d.Seconds())
		}
		return
	}
	if upd.Attrs == nil {
		return
	}
	own := fu.at.tag
	for tag := range m.tagMetro {
		if tag != own {
			upd.Attrs.RemoveCommunity(tag)
		}
	}
	if len(upd.Reach) > 0 {
		m.metrics.imported.With(fu.at.name, fu.via.name).Add(uint64(len(upd.Reach)))
	}
}
