package federation

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"testing"
	"time"

	"peering/internal/benchenv"
	"peering/internal/bufconn"
	"peering/internal/client"
	"peering/internal/clock"
	"peering/internal/ixp"
	"peering/internal/router"
	"peering/internal/server"
	"peering/internal/telemetry"
)

// TestFederationBenchmark measures the cost of federating: three muxes
// (amsterdam and phoenix colocated, seattle on remote peering), a real
// upstream at each remote site announcing a table, and a fleet of
// count-only clients at amsterdam that must converge on every remote
// peer's routes over the backhaul. Reported: cross-mux convergence
// time (from the mesh's own histogram — dial to end-of-RIB), relay
// rate into the client fleet, and backhaul bytes per route crossing.
//
// In the plain `go test` gate this runs a small smoke sizing; `make
// bench-federation` sets BENCH_FEDERATION_JSON, which switches to the
// full 16-client sizing and writes the measurement as JSON.
func TestFederationBenchmark(t *testing.T) {
	nClients, nRoutes := 4, 150
	testStart := time.Now()
	out := os.Getenv("BENCH_FEDERATION_JSON")
	if out != "" {
		nClients, nRoutes = 16, 1000
	}

	clk := clock.System
	ams := newTestServer(t, "amsterdam01", 0, clk)
	phx := newTestServer(t, "phoenix01", 1, clk)
	sea := newTestServer(t, "seattle01", 2, clk)

	phxSpec, seaSpec := spec(1, 1239, 1), spec(1, 6939, 2)
	phxUp := attachPeer(t, phx, phxSpec, clk)
	seaUp := attachPeer(t, sea, seaSpec, clk)
	for i := 0; i < nRoutes; i++ {
		p := prefix(fmt.Sprintf("%d.%d.%d.0/24", 60+i/65536, i/256%256, i%256))
		phxUp.Announce(p, router.AnnounceSpec{})
		p = prefix(fmt.Sprintf("%d.%d.%d.0/24", 70+i/65536, i/256%256, i%256))
		seaUp.Announce(p, router.AnnounceSpec{MED: uint32(i % 100), MEDSet: true})
	}
	benchWait(t, "remote sites hold their tables", func() bool {
		return phx.Upstream(1).RoutesIn() == nRoutes && sea.Upstream(1).RoutesIn() == nRoutes
	})

	// The mesh comes up with the tables already in place, so the
	// convergence histogram measures a full-table backhaul sync.
	reg := telemetry.NewRegistry()
	start := time.Now()
	mesh := newTestMesh(t, clk, reg,
		Member{Server: ams, RouterID: addr("184.164.224.1"), Site: physicalSite("amsterdam01")},
		Member{Server: phx, RouterID: addr("184.164.224.2"), Site: physicalSite("phoenix01")},
		Member{Server: sea, RouterID: addr("184.164.224.3"), Site: ixp.Site{Name: "seattle01", Kind: ixp.SiteRemote, Provider: "hibernia"}},
	)

	phxID, seaID := fedIDBase(1)+1, fedIDBase(2)+1
	clients := make([]*client.Client, nClients)
	for i := range clients {
		id := fmt.Sprintf("bench%02d", i)
		tun := addr(fmt.Sprintf("10.250.0.%d", 10+i))
		if err := ams.RegisterClient(server.ClientAccount{ID: id, TunnelAddr: tun,
			Allocation: []netip.Prefix{prefix(fmt.Sprintf("184.164.%d.0/24", 224+i))}}); err != nil {
			t.Fatal(err)
		}
		ca, cb := bufconn.Pipe()
		if err := ams.AcceptClient(id, ca); err != nil {
			t.Fatal(err)
		}
		cl, err := client.Connect(client.Config{Name: id, RouterID: tun, Clock: clk, CountOnly: true}, cb)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		clients[i] = cl
	}
	for i, cl := range clients {
		cl := cl
		deadline := time.Now().Add(120 * time.Second)
		for !(cl.RouteCount(phxID) == nRoutes && cl.RouteCount(seaID) == nRoutes) {
			if !time.Now().Before(deadline) {
				t.Fatalf("timed out waiting for client %d cross-mux convergence: phx=%d/%d sea=%d/%d, queue depths %v",
					i, cl.RouteCount(phxID), nRoutes, cl.RouteCount(seaID), nRoutes, ams.QueueDepths())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	elapsed := time.Since(start)

	// Backhaul cost: total bytes on every link over the number of
	// route deliveries that crossed a backhaul hop (each site's table
	// is mirrored at both other members).
	var backhaulBytes int64
	for _, l := range mesh.Status().Links {
		backhaulBytes += l.BytesFromA + l.BytesFromB
	}
	crossings := 4 * nRoutes
	bytesPerRoute := float64(backhaulBytes) / float64(crossings)

	// End-of-RIB closes the convergence measurement and trails the last
	// route by a frame, so give each mirror's sample a moment to land.
	conv := map[string]float64{}
	for _, via := range []string{"phoenix01", "seattle01"} {
		h := mesh.metrics.convergence.With("amsterdam01", via)
		benchWait(t, "convergence sample via "+via, func() bool { return h.Count() > 0 })
		conv["amsterdam01<-"+via] = h.Sum() / float64(h.Count())
	}
	relayed := nClients * 2 * nRoutes
	routesPerSec := float64(relayed) / elapsed.Seconds()

	t.Logf("3 muxes, %d clients at amsterdam, %d routes/site: fleet converged in %v (%.0f routes/s to clients)",
		nClients, nRoutes, elapsed.Round(time.Millisecond), routesPerSec)
	t.Logf("backhaul: %d bytes for %d route crossings (%.1f B/route); convergence %v", backhaulBytes, crossings, bytesPerRoute, conv)

	if out != "" {
		b, err := json.MarshalIndent(map[string]any{
			"muxes":                     3,
			"clients":                   nClients,
			"routes_per_site":           nRoutes,
			"fleet_convergence_seconds": elapsed.Seconds(),
			"routes_per_second":         routesPerSec,
			"cross_mux_convergence_avg": conv,
			"backhaul_bytes_total":      backhaulBytes,
			"backhaul_bytes_per_route":  bytesPerRoute,
			"backhaul_route_crossings":  crossings,
			"env":                       benchenv.Capture(testStart),
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// benchWait is waitFor with a deadline sized for bench tables.
func benchWait(tb testing.TB, what string, cond func() bool) {
	tb.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	tb.Fatalf("timed out waiting for %s", what)
}
