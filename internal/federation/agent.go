package federation

import (
	"fmt"
	"net/netip"
	"sync"

	"peering/internal/bgp"
	"peering/internal/bufconn"
	"peering/internal/client"
	"peering/internal/muxproto"
	"peering/internal/server"
	"peering/internal/wire"
)

// agent is a member's federation endpoint. It wears two hats:
//
//   - toward its own server it is an ordinary client with a Federated
//     account: it hears every local peer's routes verbatim (the import
//     source) and relays remote members' vetted announcements into the
//     normal announcement pipeline (the export sink);
//   - toward the backhaul it terminates the passive side of every
//     mirrored upstream's iBGP session, replaying and streaming its
//     mux's per-peer tables out and feeding announcements back in.
type agent struct {
	m  *member
	cl *client.Client

	mu sync.Mutex
	// exports holds the established backhaul sessions this agent
	// serves, keyed by (consuming member, local upstream ID).
	exports map[exportKey]*bgp.Session
	// tagged caches metro-tagged clones keyed by the client-interned
	// attrs pointer: a stable table tags each attribute set once.
	tagged map[*wire.Attrs]*wire.Attrs
}

type exportKey struct {
	peer int
	uid  uint32
}

// agentTunnelAddr returns the agent's address on its own server's
// tunnel LAN. Researcher clients conventionally live in 10.250.0.0/16;
// agents take 10.251.0.0/16 so the spaces never collide.
func agentTunnelAddr(idx int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 251, 0, byte(idx + 1)})
}

// newAgent registers the member's federated account, connects the
// agent as a client of its own server, and starts forwarding.
func newAgent(mem *member) (*agent, error) {
	srv := mem.cfg.Server
	err := srv.RegisterClient(server.ClientAccount{
		ID:         AgentAccountID,
		Allocation: mem.mesh.cfg.Allocation,
		TunnelAddr: agentTunnelAddr(mem.idx),
		Federated:  true,
	})
	if err != nil {
		return nil, fmt.Errorf("federation: register agent at %s: %w", mem.name, err)
	}
	ca, cb := bufconn.Pipe()
	if err := srv.AcceptClient(AgentAccountID, ca); err != nil {
		return nil, fmt.Errorf("federation: accept agent at %s: %w", mem.name, err)
	}
	ag := &agent{
		m:       mem,
		exports: make(map[exportKey]*bgp.Session),
		tagged:  make(map[*wire.Attrs]*wire.Attrs),
	}
	cl, err := client.Connect(client.Config{
		Name:     AgentAccountID,
		RouterID: mem.cfg.RouterID,
		Clock:    mem.mesh.clk,
	}, cb)
	if err != nil {
		return nil, fmt.Errorf("federation: connect agent at %s: %w", mem.name, err)
	}
	ag.cl = cl
	cl.OnRoute(ag.onRoute)
	return ag, nil
}

func (ag *agent) close() {
	ag.cl.Close()
}

// onRoute streams a local peer's route change to every member currently
// consuming that peer over the backhaul. Routes learned from mirrored
// upstreams are never re-exported (split horizon): uid is only in
// localUp for this mux's real peers.
func (ag *agent) onRoute(uid uint32, upd *wire.Update) {
	mem := ag.m
	if _, ok := mem.localUp[uid]; !ok {
		return
	}
	if len(upd.Reach) == 0 && len(upd.Withdrawn) == 0 {
		return
	}
	met := mem.mesh.metrics
	ag.mu.Lock()
	defer ag.mu.Unlock()
	for key, sess := range ag.exports {
		if key.uid != uid {
			continue
		}
		peer := mem.mesh.members[key.peer]
		if peer.cfg.Metro == mem.cfg.Metro {
			// Same metro: the route never crosses the backhaul.
			if n := len(upd.Reach); n > 0 && upd.Attrs != nil {
				met.suppressed.With(mem.name, peer.name).Add(uint64(n))
			}
			continue
		}
		out := &wire.Update{Withdrawn: upd.Withdrawn}
		if upd.Attrs != nil && len(upd.Reach) > 0 {
			out.Attrs = ag.taggedLocked(upd.Attrs)
			out.Reach = upd.Reach
		}
		if sess.Send(out) == nil && len(out.Reach) > 0 {
			met.exported.With(mem.name, peer.name).Add(uint64(len(out.Reach)))
		}
	}
}

// taggedLocked returns attrs with this member's metro community
// attached, cloning at most once per interned attribute set.
func (ag *agent) taggedLocked(a *wire.Attrs) *wire.Attrs {
	if t, ok := ag.tagged[a]; ok {
		return t
	}
	t := a.Clone()
	t.AddCommunity(ag.m.tag)
	ag.tagged[a] = t
	return t
}

// exportEstablished replays the full local table of upstream uid to a
// freshly established backhaul session, then sends end-of-RIB so the
// consumer sweeps whatever it retained stale from a previous session.
// The replay holds ag.mu: a concurrent onRoute either lands in the
// snapshot (view updates precede the callback) or queues behind the
// replay, so the consumer never ends on attrs older than the table.
func (ag *agent) exportEstablished(peer *member, uid uint32, sess *bgp.Session) {
	mem := ag.m
	met := mem.mesh.metrics
	sameMetro := peer.cfg.Metro == mem.cfg.Metro
	ag.mu.Lock()
	defer ag.mu.Unlock()
	ag.exports[exportKey{peer.idx, uid}] = sess
	if sameMetro {
		if n := ag.cl.RouteCount(uid); n > 0 {
			met.suppressed.With(mem.name, peer.name).Add(uint64(n))
		}
		sess.Send(&wire.Update{})
		return
	}
	var outs []wire.AttrRoute
	for _, r := range ag.cl.Routes(uid) {
		outs = append(outs, wire.AttrRoute{
			NLRI:  wire.NLRI{Prefix: r.Prefix},
			Attrs: ag.taggedLocked(r.Attrs),
		})
	}
	for _, upd := range wire.PackUpdates(nil, outs, sess.Options()) {
		if sess.Send(upd) != nil {
			return // session died mid-replay; the next establish retries
		}
		met.exported.With(mem.name, peer.name).Add(uint64(len(upd.Reach)))
	}
	sess.Send(&wire.Update{})
}

// exportClosed drops the session from the export set (unless a newer
// session already took the slot).
func (ag *agent) exportClosed(peer *member, uid uint32, sess *bgp.Session) {
	ag.mu.Lock()
	defer ag.mu.Unlock()
	key := exportKey{peer.idx, uid}
	if ag.exports[key] == sess {
		delete(ag.exports, key)
	}
}

// backhaulAnnounce relays a remote member's (already vetted)
// announcement into this mux's normal client pipeline, verbatim. The
// server re-vets — idempotently on an already-vetted path — and
// rewrites NEXT_HOP to the real peering address, so what leaves this
// exchange is attribute-for-attribute what a locally attached client
// would have produced. End-of-RIB passes through in Quagga mode only:
// the client's BIRD session is shared across upstreams, where one
// upstream's end-of-RIB would sweep every upstream's stale adverts.
func (ag *agent) backhaulAnnounce(peer *member, uid uint32, upd *wire.Update) {
	if upd.IsEndOfRIB() {
		if p := ag.cl.Provisioning(); p != nil && p.Mode == muxproto.ModeQuagga {
			ag.cl.Relay(uid, upd)
		}
		return
	}
	if ag.cl.Relay(uid, upd) == nil {
		if n := len(upd.Reach); n > 0 {
			ag.m.mesh.metrics.announced.With(peer.name, ag.m.name).Add(uint64(n))
		}
	}
}

// exportHandler wires one passive backhaul session into the agent.
type exportHandler struct {
	ag   *agent
	peer *member
	uid  uint32
}

func (h *exportHandler) Established(s *bgp.Session) {
	h.ag.exportEstablished(h.peer, h.uid, s)
}

func (h *exportHandler) UpdateReceived(s *bgp.Session, u *wire.Update) {
	h.ag.backhaulAnnounce(h.peer, h.uid, u)
}

func (h *exportHandler) Closed(s *bgp.Session, _ error) {
	h.ag.exportClosed(h.peer, h.uid, s)
}

// sessionCount reports the agent's established client sessions (toward
// its own mux) — a liveness signal for status.
func (ag *agent) sessionCount() int {
	return ag.cl.SessionCount()
}
