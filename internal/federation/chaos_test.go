package federation

// Deterministic fault injection on the virtual clock: a backhaul
// partition must fail traffic over to the surviving muxes and heal
// without route loss, and the periodic L2 flaps of a remote-peering
// attachment must never cost a session. Everything — hold timers,
// redial backoff, flap schedule, link latency — runs on clock.Virtual,
// so every run replays identically.

import (
	"sync/atomic"
	"testing"
	"time"

	"peering/internal/bgp"
	"peering/internal/client"
	"peering/internal/clock"
	"peering/internal/ixp"
	"peering/internal/muxproto"
	"peering/internal/server"
	"peering/internal/telemetry"
	"peering/internal/wire"
)

// chaosTestServer is newTestServer plus a generous restart window, so
// routes from a partitioned backhaul session are retained stale for
// the whole scenario instead of expiring mid-test.
func chaosTestServer(t *testing.T, site string, idx int, clk *clock.Virtual) *server.Server {
	t.Helper()
	srv := server.New(server.Config{
		Site:          site,
		ASN:           testbedASN,
		RouterID:      addr("184.164.224." + string(rune('1'+idx))),
		Mode:          muxproto.ModeQuagga,
		Clock:         clk,
		Dampening:     relaxedDampening(),
		Reconnect:     bgp.Backoff{Initial: time.Second, Max: 8 * time.Second, Factor: 2},
		RestartWindow: 30 * time.Minute,
	})
	t.Cleanup(srv.Close)
	return srv
}

// waitForV polls cond, advancing the virtual clock by step each
// iteration so timers (keepalives, hold, backoff, flaps, link latency)
// make progress. The real-time deadline only bounds runaway tests; the
// scenario itself is clock-deterministic.
func waitForV(t testing.TB, clk *clock.Virtual, what string, step time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		clk.Advance(step)
		time.Sleep(500 * time.Microsecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// mirrorOf finds the mirrored upstream registered at member `at` for a
// peer really attached at member `via`.
func mirrorOf(t *testing.T, m *Mesh, at, via string) *fedUpstream {
	t.Helper()
	mem := m.memberByName(at)
	if mem == nil {
		t.Fatalf("no member %s", at)
	}
	for _, fu := range mem.feds {
		if fu.via.name == via {
			return fu
		}
	}
	t.Fatalf("no mirror of %s at %s", via, at)
	return nil
}

// TestChaosFederationFailover partitions the amsterdam–phoenix backhaul
// under a client attached at amsterdam. The client must keep phoenix's
// routes (retained stale — zero withdrawals cross its session), keep
// announcing through seattle's peer while phoenix is unreachable (the
// failover path), and after the heal reconverge on a table attribute
// for attribute identical to the pre-partition one.
func TestChaosFederationFailover(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	ams := chaosTestServer(t, "amsterdam01", 0, clk)
	phx := chaosTestServer(t, "phoenix01", 1, clk)
	sea := chaosTestServer(t, "seattle01", 2, clk)

	phxSpec, seaSpec := spec(1, 1239, 1), spec(1, 6939, 2)
	phxUp := attachPeer(t, phx, phxSpec, clk)
	seaUp := attachPeer(t, sea, seaSpec, clk)
	nPhx := announceFrom(phxUp, 1)
	announceFrom(seaUp, 2)

	reg := telemetry.NewRegistry()
	mesh := newTestMesh(t, clk, reg,
		Member{Server: ams, RouterID: addr("184.164.224.1"), Site: physicalSite("amsterdam01")},
		Member{Server: phx, RouterID: addr("184.164.224.2"), Site: physicalSite("phoenix01")},
		Member{Server: sea, RouterID: addr("184.164.224.3"), Site: physicalSite("seattle01")},
	)

	cl := connectTestClient(t, ams, clk, "alice", addr("10.250.0.1"), prefix("184.164.224.0/24"))
	phxID := fedIDBase(1) + 1
	seaID := fedIDBase(2) + 1

	// Count withdrawals the client hears for phoenix's mirror: route
	// loss during partition/heal would show up here first.
	var phxWithdrawn atomic.Uint64
	cl.OnRoute(func(uid uint32, upd *wire.Update) {
		if uid == phxID {
			phxWithdrawn.Add(uint64(len(upd.Withdrawn)))
		}
	})

	waitForV(t, clk, "initial cross-mux convergence", 100*time.Millisecond, func() bool {
		return cl.RouteCount(phxID) == nPhx && cl.RouteCount(seaID) > 0
	})
	before := clientTable(t, cl, phxID)

	// Partition amsterdam–phoenix and let the hold timers kill both
	// sides of the backhaul sessions.
	if err := mesh.PartitionLink("amsterdam01", "phoenix01"); err != nil {
		t.Fatal(err)
	}
	fu := mirrorOf(t, mesh, "amsterdam01", "phoenix01")
	waitForV(t, clk, "backhaul session death by hold timer", time.Second, func() bool {
		return !fu.u.Established()
	})

	// Stale retention: the client still holds every phoenix route and
	// heard no withdrawals.
	if got := cl.RouteCount(phxID); got != nPhx {
		t.Fatalf("during partition: client holds %d phoenix routes, want %d (stale retention)", got, nPhx)
	}
	if n := phxWithdrawn.Load(); n != 0 {
		t.Fatalf("during partition: client heard %d withdrawals for phoenix's mirror, want 0", n)
	}

	// Failover: with phoenix unreachable, announcing through seattle's
	// peer still works end to end.
	if err := cl.Announce(prefix("184.164.224.0/24"), client.AnnounceOptions{Upstreams: []uint32{seaID}}); err != nil {
		t.Fatal(err)
	}
	waitForV(t, clk, "announcement fails over to seattle's peer", 200*time.Millisecond, func() bool {
		return len(routerInTable(t, seaUp, seaSpec.localAddr)) == 1
	})

	// Heal: the supervisor redials over the restored link, the serving
	// agent replays its table plus end-of-RIB, and the client ends up
	// on the exact pre-partition table.
	if err := mesh.HealLink("amsterdam01", "phoenix01"); err != nil {
		t.Fatal(err)
	}
	waitForV(t, clk, "backhaul reconvergence after heal", time.Second, func() bool {
		// The stale table already matches; end-of-RIB closing the second
		// convergence measurement is what proves the replay completed.
		return fu.u.Established() && cl.RouteCount(phxID) == nPhx &&
			mesh.metrics.convergence.With("amsterdam01", "phoenix01").Count() >= 2
	})
	diffTables(t, "phoenix table after heal", clientTable(t, cl, phxID), before)
	if n := phxWithdrawn.Load(); n != 0 {
		t.Fatalf("after heal: client heard %d withdrawals for phoenix's mirror, want 0", n)
	}

	met := mesh.metrics
	if got := met.partitions.Value(); got != 1 {
		t.Errorf("partitions_total = %d, want 1", got)
	}
	if got := met.heals.Value(); got != 1 {
		t.Errorf("heals_total = %d, want 1", got)
	}
	if got := met.convergence.With("amsterdam01", "phoenix01").Count(); got < 2 {
		t.Errorf("convergence histogram has %d samples for amsterdam01<-phoenix01, want >= 2 (initial + post-heal)", got)
	}
}

// TestChaosFederationRemoteFlap drives the virtual clock through a
// remote-peering link's flap cycle: the provider's virtual L2 stalls
// the backhaul for FlapDuration, and every session must ride it out —
// flaps delay frames, they do not lose them.
func TestChaosFederationRemoteFlap(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	ams := chaosTestServer(t, "amsterdam01", 0, clk)
	sea := chaosTestServer(t, "seattle01", 1, clk)
	seaSpec := spec(1, 6939, 1)
	seaUp := attachPeer(t, sea, seaSpec, clk)
	nSea := announceFrom(seaUp, 2)

	reg := telemetry.NewRegistry()
	mesh := newTestMesh(t, clk, reg,
		Member{Server: ams, RouterID: addr("184.164.224.1"), Site: physicalSite("amsterdam01")},
		Member{Server: sea, RouterID: addr("184.164.224.2"), Site: ixpRemoteSeattle()},
	)

	cl := connectTestClient(t, ams, clk, "alice", addr("10.250.0.1"), prefix("184.164.224.0/24"))
	seaID := fedIDBase(1) + 1
	waitForV(t, clk, "initial convergence over the remote link", 100*time.Millisecond, func() bool {
		return cl.RouteCount(seaID) == nSea
	})
	fu := mirrorOf(t, mesh, "amsterdam01", "seattle01")
	estBefore := fu.u.Established()
	if !estBefore {
		t.Fatal("mirror session not established before the flap window")
	}

	// The remote profile flaps on the order of hours; march the clock
	// through one full MTBF in keepalive-safe steps.
	waitForV(t, clk, "a remote L2 flap", 45*time.Second, func() bool {
		return mesh.metrics.flaps.Value() >= 1
	})
	// Let the flap heal and the delayed frames drain.
	waitForV(t, clk, "session survives the flap", time.Second, func() bool {
		return fu.u.Established() && cl.RouteCount(seaID) == nSea
	})
	if got := mesh.metrics.partitions.Value(); got != 0 {
		t.Errorf("partitions_total = %d, want 0 (flaps are stalls, not partitions)", got)
	}
	st := mesh.Status()
	if st.Links[0].Flaps < 1 {
		t.Errorf("link flaps = %d, want >= 1", st.Links[0].Flaps)
	}
}

func ixpRemoteSeattle() ixp.Site {
	return ixp.Site{Name: "seattle01", Kind: ixp.SiteRemote, Provider: "hibernia"}
}
