package federation

import (
	"peering/internal/telemetry"
)

// meshMetrics is the peering_federation_* family. Label conventions:
// "site" is the mux holding the state, "via"/"from"/"to" name the
// remote mux on the other end of the backhaul.
type meshMetrics struct {
	// exported counts route NLRIs an agent sent over the backhaul
	// (from = serving mux, to = consuming mux).
	exported *telemetry.CounterVec
	// imported counts route NLRIs a member accepted off the backhaul
	// (site = importing mux, via = serving mux).
	imported *telemetry.CounterVec
	// suppressed counts route NLRIs kept off the backhaul by the
	// same-metro rule.
	suppressed *telemetry.CounterVec
	// announced counts client announcement NLRIs relayed across the
	// backhaul toward a remote exchange (from = the client's mux, to =
	// the mux whose peer hears the announcement).
	announced *telemetry.CounterVec
	// convergence is the dial→end-of-RIB latency of mirrored upstream
	// sessions: how long a member takes to (re)converge on a remote
	// mux's per-peer table.
	convergence *telemetry.HistogramVec
	partitions  *telemetry.Counter
	heals       *telemetry.Counter
	flaps       *telemetry.Counter
}

// convergenceBuckets spans in-memory test links (sub-ms) through
// real-WAN full-table transfers.
var convergenceBuckets = []float64{.001, .005, .025, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120}

func newMeshMetrics(reg *telemetry.Registry, m *Mesh) *meshMetrics {
	mm := &meshMetrics{
		exported: reg.CounterVec("peering_federation_routes_exported_total",
			"Route NLRIs exported over the backhaul, by serving and consuming mux.",
			"from", "to"),
		imported: reg.CounterVec("peering_federation_routes_imported_total",
			"Route NLRIs imported off the backhaul, by importing mux and serving mux.",
			"site", "via"),
		suppressed: reg.CounterVec("peering_federation_suppressed_total",
			"Route NLRIs kept off the backhaul by the same-metro suppression rule.",
			"from", "to"),
		announced: reg.CounterVec("peering_federation_announced_total",
			"Client announcement NLRIs relayed across the backhaul.",
			"from", "to"),
		convergence: reg.HistogramVec("peering_federation_convergence_seconds",
			"Backhaul dial to end-of-RIB latency of mirrored upstream sessions.",
			convergenceBuckets, "site", "via"),
		partitions: reg.Counter("peering_federation_partitions_total",
			"Backhaul link partitions injected."),
		heals: reg.Counter("peering_federation_heals_total",
			"Backhaul link partitions healed."),
		flaps: reg.Counter("peering_federation_link_flaps_total",
			"Periodic remote-peering L2 flaps on backhaul links."),
	}
	reg.GaugeFunc("peering_federation_members",
		"Muxes federated into this mesh.",
		func() float64 { return float64(len(m.members)) })
	reg.GaugeFunc("peering_federation_links",
		"Backhaul links in the mesh (full mesh over members).",
		func() float64 { return float64(len(m.links)) })
	reg.GaugeVecFunc("peering_federation_routes",
		"Routes currently held in mirrored upstream tables, by importing mux and serving mux.",
		[]string{"site", "via"},
		func(emit func(v float64, labelValues ...string)) {
			totals := make(map[[2]string]int)
			for _, mem := range m.members {
				for _, fu := range mem.feds {
					totals[[2]string{mem.name, fu.via.name}] += fu.u.RoutesIn()
				}
			}
			for k, n := range totals {
				emit(float64(n), k[0], k[1])
			}
		})
	reg.GaugeVecFunc("peering_federation_backhaul_bytes_total",
		"Bytes written onto the backhaul per link endpoint (monotonic).",
		[]string{"link", "endpoint"},
		func(emit func(v float64, labelValues ...string)) {
			for _, l := range m.links {
				name := l.a.name + "-" + l.b.name
				emit(float64(l.ca.Stats().BytesWritten), name, l.a.name)
				emit(float64(l.cb.Stats().BytesWritten), name, l.b.name)
			}
		})
	return mm
}
