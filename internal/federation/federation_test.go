package federation

// Equivalence is the contract federation must honor: a client attached
// to ONE mux sees the routes of peers at EVERY mux, attribute for
// attribute what a client attached to a single mux holding all those
// peers would see — and its announcements leave a remote exchange
// exactly as if it had been attached there. These tests pin both
// directions against single-mux control rigs, plus the metro rule:
// same-metro routes provably never cross the backhaul.

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"peering/internal/bgp"
	"peering/internal/bufconn"
	"peering/internal/client"
	"peering/internal/clock"
	"peering/internal/dampen"
	"peering/internal/ixp"
	"peering/internal/muxproto"
	"peering/internal/rib"
	"peering/internal/router"
	"peering/internal/server"
	"peering/internal/telemetry"
	"peering/internal/wire"
)

const testbedASN = 47065

func addr(s string) netip.Addr     { return netip.MustParseAddr(s) }
func prefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// waitFor polls cond in real time; the equivalence rigs run on the
// system clock (messages free-run over in-memory pipes).
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func relaxedDampening() dampen.Config {
	cfg := dampen.DefaultConfig()
	cfg.SuppressThreshold = 6000
	cfg.ReuseThreshold = 3000
	return cfg
}

// newTestServer builds one mux. Each member gets its own exchange LAN
// (80.249.<200+idx>.0/24) so peering addresses never collide across
// rigs that share router configs.
func newTestServer(t *testing.T, site string, idx int, clk clock.Clock) *server.Server {
	t.Helper()
	srv := server.New(server.Config{
		Site:      site,
		ASN:       testbedASN,
		RouterID:  addr(fmt.Sprintf("184.164.224.%d", idx+1)),
		Mode:      muxproto.ModeQuagga,
		Clock:     clk,
		Dampening: relaxedDampening(),
		Reconnect: bgp.Backoff{Initial: time.Second, Max: 8 * time.Second, Factor: 2},
	})
	t.Cleanup(srv.Close)
	return srv
}

// peerSpec describes one real upstream peer to wire to a mux.
type peerSpec struct {
	uid       uint32
	asn       uint32
	peerAddr  netip.Addr // the router's address on the exchange LAN
	localAddr netip.Addr // the mux's address on the exchange LAN
	routerID  netip.Addr
}

func spec(uid uint32, asn uint32, lan int) peerSpec {
	return peerSpec{
		uid: uid, asn: asn,
		peerAddr:  addr(fmt.Sprintf("80.249.%d.%d", 200+lan, 9+uid)),
		localAddr: addr(fmt.Sprintf("80.249.%d.1", 200+lan)),
		routerID:  addr(fmt.Sprintf("4.69.%d.%d", lan, uid)),
	}
}

// attachPeer registers the upstream at srv and wires a real router to
// it over an in-memory pipe.
func attachPeer(t *testing.T, srv *server.Server, sp peerSpec, clk clock.Clock) *router.Router {
	t.Helper()
	up := router.New(router.Config{AS: sp.asn, RouterID: sp.routerID, Clock: clk})
	u, err := srv.AddUpstream(server.UpstreamConfig{
		ID: sp.uid, Name: fmt.Sprintf("up%d-as%d", sp.uid, sp.asn),
		ASN: sp.asn, PeerAddr: sp.peerAddr, LocalAddr: sp.localAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := up.AddPeer(router.PeerConfig{
		Addr: sp.localAddr, LocalAddr: sp.peerAddr, AS: testbedASN,
	})
	ca, cb := bufconn.Pipe()
	srv.AttachUpstream(u, ca)
	up.Attach(p, cb)
	return up
}

// announceFrom originates a deterministic world of 18 prefixes with
// diverse attributes; seed keeps different peers' worlds disjoint.
func announceFrom(up *router.Router, seed int) int {
	specs := []router.AnnounceSpec{
		{},
		{Prepend: 2},
		{MED: 50, MEDSet: true},
		{Communities: []wire.Community{0x2FB90001, 0x2FB90002}},
		{Poison: []uint32{174}},
		{Prepend: 1, MED: 10, MEDSet: true, Communities: []wire.Community{0x2FB9FFFF}},
	}
	n := 0
	for i, s := range specs {
		for j := 0; j < 3; j++ {
			up.Announce(prefix(fmt.Sprintf("%d.%d.%d.0/24", 96+seed, i, j)), s)
			n++
		}
	}
	return n
}

// connectTestClient registers and connects one researcher client.
func connectTestClient(t *testing.T, srv *server.Server, clk clock.Clock, id string, tun netip.Addr, alloc ...netip.Prefix) *client.Client {
	t.Helper()
	if err := srv.RegisterClient(server.ClientAccount{ID: id, Allocation: alloc, TunnelAddr: tun}); err != nil {
		t.Fatal(err)
	}
	ca, cb := bufconn.Pipe()
	if err := srv.AcceptClient(id, ca); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Connect(client.Config{Name: id, RouterID: tun, Clock: clk}, cb)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// clientTable flattens a client's per-upstream view into prefix →
// marshaled attrs, the strictest comparison the wire format allows.
func clientTable(t testing.TB, cl *client.Client, uid uint32) map[netip.Prefix]string {
	t.Helper()
	out := make(map[netip.Prefix]string)
	for _, r := range cl.Routes(uid) {
		b, err := wire.MarshalAttrs(r.Attrs, wire.DefaultOptions)
		if err != nil {
			t.Fatalf("marshal attrs for %v: %v", r.Prefix, err)
		}
		out[r.Prefix] = string(b)
	}
	return out
}

// routerInTable captures what a real upstream router heard from the
// testbed on a given peering.
func routerInTable(t testing.TB, up *router.Router, peerAddr netip.Addr) map[netip.Prefix]string {
	t.Helper()
	p := up.Peer(peerAddr)
	if p == nil {
		t.Fatalf("router has no peer %v", peerAddr)
	}
	out := make(map[netip.Prefix]string)
	p.WalkIn(func(r *rib.Route) bool {
		b, err := wire.MarshalAttrs(r.Attrs, wire.DefaultOptions)
		if err != nil {
			t.Fatalf("marshal attrs for %v: %v", r.Prefix, err)
		}
		out[r.Prefix] = string(b)
		return true
	})
	return out
}

func diffTables(t testing.TB, what string, got, want map[netip.Prefix]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d routes, want %d", what, len(got), len(want))
	}
	for p, w := range want {
		g, ok := got[p]
		if !ok {
			t.Errorf("%s: missing %v", what, p)
		} else if g != w {
			t.Errorf("%s: %v attrs differ\n got  %x\n want %x", what, p, g, w)
		}
	}
	for p := range got {
		if _, ok := want[p]; !ok {
			t.Errorf("%s: unexpected %v", what, p)
		}
	}
}

func physicalSite(name string) ixp.Site { return ixp.Site{Name: name, Kind: ixp.SitePhysical} }

// newTestMesh federates the given servers with distinct metros.
func newTestMesh(t *testing.T, clk clock.Clock, reg *telemetry.Registry, members ...Member) *Mesh {
	t.Helper()
	m, err := New(Config{
		Members:    members,
		Allocation: []netip.Prefix{prefix("184.164.224.0/19")},
		Clock:      clk,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// TestFederationEquivalence is the core acceptance test: a client at
// amsterdam01 converges on the routes of peers at phoenix01 AND
// seattle01 (two other muxes, one of them remote peering), attribute
// for attribute identical to a single-mux control where the same peers
// attach directly.
func TestFederationEquivalence(t *testing.T) {
	ams := newTestServer(t, "amsterdam01", 0, nil)
	phx := newTestServer(t, "phoenix01", 1, nil)
	sea := newTestServer(t, "seattle01", 2, nil)

	amsSpec, phxSpec, seaSpec := spec(1, 3356, 0), spec(1, 1239, 1), spec(1, 6939, 2)
	amsUp := attachPeer(t, ams, amsSpec, nil)
	phxUp := attachPeer(t, phx, phxSpec, nil)
	seaUp := attachPeer(t, sea, seaSpec, nil)
	nAms := announceFrom(amsUp, 0)
	nPhx := announceFrom(phxUp, 1)
	nSea := announceFrom(seaUp, 2)

	newTestMesh(t, nil, nil,
		Member{Server: ams, RouterID: addr("184.164.224.1"), Site: physicalSite("amsterdam01")},
		Member{Server: phx, RouterID: addr("184.164.224.2"), Site: physicalSite("phoenix01")},
		Member{Server: sea, RouterID: addr("184.164.224.3"), Site: ixp.Site{
			Name: "seattle01", Kind: ixp.SiteRemote, Provider: "hibernia",
		}},
	)

	// Control: one mux at which all three peers attach directly. The
	// routers are configured identically to the federated ones, so
	// their exports carry identical attributes.
	ctl := newTestServer(t, "control01", 3, nil)
	ctlAms := attachPeer(t, ctl, amsSpec, nil)
	ctlPhx := attachPeer(t, ctl, peerSpec{
		uid: 2, asn: phxSpec.asn, peerAddr: phxSpec.peerAddr,
		localAddr: phxSpec.localAddr, routerID: phxSpec.routerID,
	}, nil)
	ctlSea := attachPeer(t, ctl, peerSpec{
		uid: 3, asn: seaSpec.asn, peerAddr: seaSpec.peerAddr,
		localAddr: seaSpec.localAddr, routerID: seaSpec.routerID,
	}, nil)
	announceFrom(ctlAms, 0)
	announceFrom(ctlPhx, 1)
	announceFrom(ctlSea, 2)

	cl := connectTestClient(t, ams, nil, "alice", addr("10.250.0.1"), prefix("184.164.224.0/24"))
	ctlCl := connectTestClient(t, ctl, nil, "alice", addr("10.250.0.1"), prefix("184.164.224.0/24"))

	phxID := fedIDBase(1) + 1
	seaID := fedIDBase(2) + 1
	waitFor(t, "federated client convergence", func() bool {
		return cl.RouteCount(1) == nAms && cl.RouteCount(phxID) == nPhx && cl.RouteCount(seaID) == nSea
	})
	waitFor(t, "control client convergence", func() bool {
		return ctlCl.RouteCount(1) == nAms && ctlCl.RouteCount(2) == nPhx && ctlCl.RouteCount(3) == nSea
	})

	diffTables(t, "local peer", clientTable(t, cl, 1), clientTable(t, ctlCl, 1))
	diffTables(t, "phoenix peer over backhaul", clientTable(t, cl, phxID), clientTable(t, ctlCl, 2))
	diffTables(t, "seattle peer over backhaul", clientTable(t, cl, seaID), clientTable(t, ctlCl, 3))
}

// TestFederationMetroSuppression pins the metro-locality rule: two
// muxes in the same metro never exchange routes over the backhaul,
// while a third metro still hears everything — asserted on the client
// view, the mirrored tables, AND the peering_federation_* counters.
func TestFederationMetroSuppression(t *testing.T) {
	ams1 := newTestServer(t, "amsterdam01", 0, nil)
	ams2 := newTestServer(t, "amsterdam02", 1, nil)
	phx := newTestServer(t, "phoenix01", 2, nil)

	up2Spec := spec(1, 3356, 1)
	up2 := attachPeer(t, ams2, up2Spec, nil)
	n := announceFrom(up2, 1)

	reg := telemetry.NewRegistry()
	mesh := newTestMesh(t, nil, reg,
		Member{Server: ams1, Metro: "amsterdam", RouterID: addr("184.164.224.1"), Site: physicalSite("amsterdam01")},
		Member{Server: ams2, Metro: "amsterdam", RouterID: addr("184.164.224.2"), Site: physicalSite("amsterdam02")},
		Member{Server: phx, Metro: "phoenix", RouterID: addr("184.164.224.3"), Site: physicalSite("phoenix01")},
	)

	mirrorID := fedIDBase(1) + 1 // amsterdam02's peer mirrored elsewhere
	phxCl := connectTestClient(t, phx, nil, "bob", addr("10.250.0.1"), prefix("184.164.225.0/24"))
	waitFor(t, "phoenix hears amsterdam02's peer", func() bool {
		return phxCl.RouteCount(mirrorID) == n
	})

	// The cross-metro direction converged; the same-metro direction
	// must have been suppressed at the source, not merely be slow.
	met := mesh.metrics
	if got := met.suppressed.With("amsterdam02", "amsterdam01").Value(); got == 0 {
		t.Error("suppressed{amsterdam02->amsterdam01} = 0, want > 0")
	}
	if got := met.exported.With("amsterdam02", "amsterdam01").Value(); got != 0 {
		t.Errorf("exported{amsterdam02->amsterdam01} = %d, want 0 (same metro)", got)
	}
	if got := met.exported.With("amsterdam02", "phoenix01").Value(); got < uint64(n) {
		t.Errorf("exported{amsterdam02->phoenix01} = %d, want >= %d", got, n)
	}
	ams1M := mesh.memberByName("amsterdam01")
	for _, fu := range ams1M.feds {
		if fu.via.name == "amsterdam02" && fu.u.RoutesIn() != 0 {
			t.Errorf("amsterdam01 mirror of amsterdam02 peer holds %d routes, want 0", fu.u.RoutesIn())
		}
	}
	if _, ok := mesh.MetroCommunity("amsterdam"); !ok {
		t.Error("no metro community assigned for amsterdam")
	}
}

// TestFederationAnnounce pins the export direction: a client attached
// at amsterdam01 announces through phoenix01's peer via the mirrored
// upstream, and the real router at phoenix hears attributes identical
// to a control where the client attaches at the peer's own mux.
func TestFederationAnnounce(t *testing.T) {
	ams := newTestServer(t, "amsterdam01", 0, nil)
	phx := newTestServer(t, "phoenix01", 1, nil)
	phxSpec := spec(1, 1239, 1)
	phxUp := attachPeer(t, phx, phxSpec, nil)

	reg := telemetry.NewRegistry()
	mesh := newTestMesh(t, nil, reg,
		Member{Server: ams, RouterID: addr("184.164.224.1"), Site: physicalSite("amsterdam01")},
		Member{Server: phx, RouterID: addr("184.164.224.2"), Site: physicalSite("phoenix01")},
	)

	ctl := newTestServer(t, "control01", 2, nil)
	ctlUp := attachPeer(t, ctl, phxSpec, nil)

	cl := connectTestClient(t, ams, nil, "alice", addr("10.250.0.1"), prefix("184.164.224.0/24"))
	ctlCl := connectTestClient(t, ctl, nil, "alice", addr("10.250.0.1"), prefix("184.164.224.0/24"))
	if err := cl.WaitEstablished(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := ctlCl.WaitEstablished(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	mirrorID := fedIDBase(1) + 1
	opts := client.AnnounceOptions{
		Prepend:     1,
		Communities: []wire.Community{0x2FB90064},
		OriginASNs:  []uint32{65001},
	}
	a := opts
	a.Upstreams = []uint32{mirrorID}
	if err := cl.Announce(prefix("184.164.224.0/24"), a); err != nil {
		t.Fatal(err)
	}
	c := opts
	c.Upstreams = []uint32{1}
	if err := ctlCl.Announce(prefix("184.164.224.0/24"), c); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "announcement reaches phoenix's router over the backhaul", func() bool {
		return len(routerInTable(t, phxUp, phxSpec.localAddr)) == 1
	})
	waitFor(t, "control announcement reaches the router", func() bool {
		return len(routerInTable(t, ctlUp, phxSpec.localAddr)) == 1
	})
	diffTables(t, "announcement at the peer router",
		routerInTable(t, phxUp, phxSpec.localAddr),
		routerInTable(t, ctlUp, phxSpec.localAddr))

	if got := mesh.metrics.announced.With("amsterdam01", "phoenix01").Value(); got == 0 {
		t.Error("announced{amsterdam01->phoenix01} = 0, want > 0")
	}

	// Withdraw crosses the backhaul the same way.
	if err := cl.Withdraw(prefix("184.164.224.0/24"), []uint32{mirrorID}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "withdrawal reaches phoenix's router", func() bool {
		return len(routerInTable(t, phxUp, phxSpec.localAddr)) == 0
	})
}

// TestFederationStatus sanity-checks the portal snapshot.
func TestFederationStatus(t *testing.T) {
	ams := newTestServer(t, "amsterdam01", 0, nil)
	sea := newTestServer(t, "seattle01", 1, nil)
	attachPeer(t, ams, spec(1, 3356, 0), nil)

	mesh := newTestMesh(t, nil, nil,
		Member{Server: ams, RouterID: addr("184.164.224.1"), Site: physicalSite("amsterdam01")},
		Member{Server: sea, RouterID: addr("184.164.224.2"), Site: ixp.Site{
			Name: "seattle01", Kind: ixp.SiteRemote, Provider: "hibernia",
		}},
	)

	st := mesh.Status()
	if len(st.Members) != 2 || len(st.Links) != 1 {
		t.Fatalf("status: %d members, %d links; want 2, 1", len(st.Members), len(st.Links))
	}
	if st.Links[0].Kind != "remote" {
		t.Errorf("link kind = %q, want remote (seattle01 is a remote site)", st.Links[0].Kind)
	}
	if st.Links[0].RTTMillis <= 0 {
		t.Errorf("link RTT = %v, want > 0", st.Links[0].RTTMillis)
	}
	var amsSt *MemberStatus
	for i := range st.Members {
		if st.Members[i].Name == "amsterdam01" {
			amsSt = &st.Members[i]
		}
	}
	if amsSt == nil {
		t.Fatal("no amsterdam01 in status")
	}
	if amsSt.Attachment != "physical" {
		t.Errorf("amsterdam01 attachment = %q, want physical", amsSt.Attachment)
	}
	if len(amsSt.LocalUpstreams) != 1 {
		t.Errorf("amsterdam01 local upstreams = %d, want 1", len(amsSt.LocalUpstreams))
	}
	want := fmt.Sprintf("%d:%d", testbedASN, 100)
	if amsSt.MetroCommunity != want {
		t.Errorf("amsterdam01 metro community = %q, want %q", amsSt.MetroCommunity, want)
	}
	waitFor(t, "backhaul carries bytes", func() bool {
		s := mesh.Status()
		return s.Links[0].BytesFromA > 0 && s.Links[0].BytesFromB > 0
	})
}
