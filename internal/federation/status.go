package federation

import (
	"fmt"
	"time"

	"peering/internal/wire"
)

// Status is the federation view served at GET /federation and rendered
// by `peeringctl federation` / `peeringctl sites`.
type Status struct {
	Members []MemberStatus `json:"members"`
	Links   []LinkStatus   `json:"links"`
}

// MemberStatus describes one mux's attachment and peer visibility.
type MemberStatus struct {
	Name  string `json:"name"`
	Metro string `json:"metro"`
	// Attachment is the site model: "physical", "remote", or "transit".
	Attachment string `json:"attachment"`
	// Provider names the remote-peering provider for remote sites.
	Provider string `json:"provider,omitempty"`
	// MetroCommunity is the tag this member's exports carry ("47065:101").
	MetroCommunity string `json:"metro_community"`
	// AgentSessions counts the agent's established sessions toward its
	// own mux (one per provisioned upstream in Quagga mode).
	AgentSessions int `json:"agent_sessions"`
	// LocalUpstreams are the member's real peers; MirroredUpstreams are
	// the remote peers reachable here over the backhaul.
	LocalUpstreams    []UpstreamStatus `json:"local_upstreams"`
	MirroredUpstreams []UpstreamStatus `json:"mirrored_upstreams"`
}

// UpstreamStatus is one peer (real or mirrored) at a member.
type UpstreamStatus struct {
	ID          uint32 `json:"id"`
	Name        string `json:"name"`
	ASN         uint32 `json:"asn"`
	Transit     bool   `json:"transit,omitempty"`
	Via         string `json:"via,omitempty"`
	Established bool   `json:"established"`
	Routes      int    `json:"routes"`
}

// LinkStatus describes one backhaul link's model and health.
type LinkStatus struct {
	A string `json:"a"`
	B string `json:"b"`
	// Kind is "remote" when either endpoint rides a remote-peering
	// virtual L2 (the link inherits its latency and flap behavior).
	Kind         string  `json:"kind"`
	RTTMillis    float64 `json:"rtt_ms"`
	CapacityMbps int     `json:"capacity_mbps"`
	Partitioned  bool    `json:"partitioned"`
	Flapping     bool    `json:"flapping"`
	Flaps        uint64  `json:"flaps"`
	// BytesFromA/B count bytes each endpoint has written onto the link.
	BytesFromA int64 `json:"bytes_from_a"`
	BytesFromB int64 `json:"bytes_from_b"`
}

// communityString renders c as the conventional asn:value form.
func communityString(c wire.Community) string {
	return fmt.Sprintf("%d:%d", uint32(c)>>16, uint32(c)&0xffff)
}

// Status snapshots the mesh for the portal.
func (m *Mesh) Status() Status {
	var st Status
	for _, mem := range m.members {
		ms := MemberStatus{
			Name:           mem.name,
			Metro:          mem.cfg.Metro,
			Attachment:     mem.cfg.Site.Kind.String(),
			Provider:       mem.cfg.Site.Provider,
			MetroCommunity: communityString(mem.tag),
		}
		if mem.agent != nil {
			ms.AgentSessions = mem.agent.sessionCount()
		}
		for _, uid := range sortedIDs(mem.localUp) {
			ucfg := mem.localUp[uid]
			u := mem.cfg.Server.Upstream(uid)
			us := UpstreamStatus{
				ID: uid, Name: ucfg.Name, ASN: ucfg.ASN, Transit: ucfg.Transit,
			}
			if u != nil {
				us.Established = u.Established()
				us.Routes = u.RoutesIn()
			}
			ms.LocalUpstreams = append(ms.LocalUpstreams, us)
		}
		for _, fu := range mem.feds {
			cfg := fu.u.Config()
			ms.MirroredUpstreams = append(ms.MirroredUpstreams, UpstreamStatus{
				ID: fu.id, Name: cfg.Name, ASN: cfg.ASN, Transit: cfg.Transit,
				Via:         fu.via.name,
				Established: fu.u.Established(),
				Routes:      fu.u.RoutesIn(),
			})
		}
		st.Members = append(st.Members, ms)
	}
	for _, l := range m.links {
		l.mu.Lock()
		ls := LinkStatus{
			A:            l.a.name,
			B:            l.b.name,
			Kind:         "physical",
			RTTMillis:    float64(l.profile.RTT) / float64(time.Millisecond),
			CapacityMbps: l.profile.CapacityMbps,
			Partitioned:  l.partitioned,
			Flapping:     l.flapping,
			Flaps:        l.flaps,
		}
		l.mu.Unlock()
		if l.remote {
			ls.Kind = "remote"
		}
		ls.BytesFromA = l.ca.Stats().BytesWritten
		ls.BytesFromB = l.cb.Stats().BytesWritten
		st.Links = append(st.Links, ls)
	}
	return st
}
