// Package federation connects multiple PEERING muxes into one testbed
// (§3, "nine servers on three continents"): every server keeps vetting
// its own clients and speaking eBGP to the peers at its exchange, while
// an iBGP-style inter-mux exchange over backhaul tunnels lets a client
// attached to ONE mux announce to and hear from the upstream peers at
// EVERY mux.
//
// Topology: a full mesh of point-to-point backhaul links, one per
// member pair, each carrying a tunnel.Mux. For each real upstream peer
// u at member Y, every other member X registers a mirrored "federated
// upstream" (server.UpstreamConfig.FedVia = Y) whose session runs over
// the X–Y link and terminates at Y's federation agent. The agent is
// simultaneously an ordinary client of its own server (with a
// Federated account), which is what makes both directions exact:
//
//   - import (routes): Y's agent hears every route Y's peers export —
//     verbatim, like any client — tags it with Y's metro community, and
//     forwards it over the backhaul; X's import hook strips the tag
//     before the route is archived or interned, so X's clients see
//     attrs identical to what a client at Y sees.
//   - export (announcements): X vets a client announcement once (the
//     normal pipeline), sends the vetted attrs over the backhaul, and
//     Y's agent relays them verbatim into Y's server, whose own vetting
//     is idempotent on an already-vetted path. The announcement leaves
//     Y's peering exactly as if the client had been attached at Y.
//
// Loops cannot form: an agent only exports routes learned from its own
// mux's real upstreams (split horizon over FedVia), and as defense in
// depth every member's compiled policy carries a metro rule that
// rejects, pre-RIB, any route arriving back with the member's own
// metro tag.
//
// Metro locality: members in the same metro are assumed to share fabric
// locally, so route export between them is suppressed (counted on
// peering_federation_suppressed_total) — same-metro routes never cross
// the backhaul. Client announcements are NOT suppressed: steering an
// announcement at a same-metro mux's peer is still meaningful.
package federation

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"peering/internal/clock"
	"peering/internal/ixp"
	"peering/internal/policy/compiled"
	"peering/internal/server"
	"peering/internal/telemetry"
	"peering/internal/wire"
)

// AgentAccountID is the client account every mesh member registers for
// its own federation agent.
const AgentAccountID = "federation"

// Backhaul stream numbering on a link's tunnel.Mux. The two directions
// dial from disjoint bases so both sides can open sessions for the same
// remote upstream ID without colliding: the lexicographically lower
// member dials streamBaseLow+uid, the higher dials streamBaseHigh+uid.
const (
	streamBaseLow  uint32 = 0x1000
	streamBaseHigh uint32 = 0x2000
	// maxFedUpstreams bounds upstream IDs carried per direction (the
	// width of each stream band).
	maxFedUpstreams uint32 = 0x1000
)

// fedIDBase returns the upstream-ID base member X uses for upstreams
// mirrored from the member at index j: real (local) upstream IDs stay
// small, mirrored ones live in per-member banks of 256.
func fedIDBase(j int) uint32 { return uint32(j+1) << 8 }

// DefaultFlapDuration is how long a remote-peering L2 flap lasts when
// Config.FlapDuration is zero. Flaps stall the link (frames are
// delayed, not lost — the transport under a real virtual L2 retransmits
// across a brief outage), so established sessions ride them out.
const DefaultFlapDuration = 2 * time.Second

// defaultMetroCommunityBase is the low half of the first metro
// community; metro i (in sorted order) tags with ASN:base+i.
const defaultMetroCommunityBase uint16 = 100

// Member is one mux joining the mesh.
type Member struct {
	// Server is the member's mux. Its real upstream peers must be
	// registered (AddUpstream) before New; upstreams added later are
	// not federated.
	Server *server.Server
	// Metro names the member's metro area for same-metro suppression.
	// Empty defaults to the server's site name (every member its own
	// metro — nothing suppressed).
	Metro string
	// RouterID identifies the member's federation agent (its client
	// sessions and the passive backhaul sessions it terminates).
	RouterID netip.Addr
	// Site is the member's attachment model: SiteRemote links inherit
	// remote-peering backhaul semantics — inflated latency and periodic
	// L2 flaps (see ixp.Site.Backhaul).
	Site ixp.Site
	// Rules is the rule set the server's policy was built from, if any.
	// The mesh merges the member's metro rule into it and reinstalls
	// the result via LoadPolicy (LoadPolicy replaces, so handing the
	// mesh a different set than the server runs would drop rules).
	Rules *compiled.RuleSet
}

// Config parameterizes a mesh.
type Config struct {
	// Members are the muxes to federate (at least two, distinct sites).
	Members []Member
	// Allocation is the announce authority granted to every federation
	// agent — the testbed supernet(s) that contain all client
	// allocations. Checked by containment (ClientAccount.Federated),
	// never claimed exclusively.
	Allocation []netip.Prefix
	// Clock drives backhaul latency, flap timers, and convergence
	// stamps (nil = system). Chaos tests inject a virtual clock here to
	// make remote-link behavior deterministic.
	Clock clock.Clock
	// Metrics receives the peering_federation_* family (nil = a private
	// registry). Safe to share with ONE server's registry (family names
	// are disjoint from the server families).
	Metrics *telemetry.Registry
	// FlapDuration is how long a remote link's periodic L2 flap stalls
	// the link (0 = DefaultFlapDuration).
	FlapDuration time.Duration
}

// Mesh is a running federation of muxes.
type Mesh struct {
	cfg     Config
	clk     clock.Clock
	asn     uint32
	members []*member
	links   []*Link
	metrics *meshMetrics

	// metroTag maps metro name → community; tagMetro is the inverse.
	metroTag map[string]wire.Community
	tagMetro map[wire.Community]string

	mu     sync.Mutex
	closed bool
}

// member is one mux's mesh-side state.
type member struct {
	mesh *Mesh
	idx  int
	cfg  Member
	name string
	tag  wire.Community
	// localUp indexes the member's real upstream peers (the ones
	// mirrored at every other member).
	localUp map[uint32]server.UpstreamConfig
	// feds are the mirrored upstreams registered at THIS member.
	feds []*fedUpstream
	// links maps peer member index → the shared link.
	links map[int]*Link
	// backhaulAddr is the placeholder NEXT_HOP on announcements leaving
	// this member toward a federated upstream (the serving mux rewrites
	// it to the real peering address).
	backhaulAddr netip.Addr
	agent        *agent
}

// New wires the members into a full mesh and brings the federation up:
// metro communities assigned and compiled into each member's policy,
// backhaul links built, agents connected as federated clients, and
// every mirrored upstream attached under a supervisor. Sessions
// establish asynchronously; a client provisioned after New returns sees
// the federated upstreams in its provisioning.
func New(cfg Config) (*Mesh, error) {
	if len(cfg.Members) < 2 {
		return nil, fmt.Errorf("federation: need at least 2 members, have %d", len(cfg.Members))
	}
	if len(cfg.Allocation) == 0 {
		return nil, fmt.Errorf("federation: Allocation must name the testbed supernet(s) agents may announce")
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	if cfg.FlapDuration <= 0 {
		cfg.FlapDuration = DefaultFlapDuration
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}

	m := &Mesh{
		cfg:      cfg,
		clk:      clk,
		metroTag: make(map[string]wire.Community),
		tagMetro: make(map[wire.Community]string),
	}

	seen := make(map[string]bool)
	for i, mc := range cfg.Members {
		if mc.Server == nil {
			return nil, fmt.Errorf("federation: member %d has no server", i)
		}
		name := mc.Server.Site()
		if seen[name] {
			return nil, fmt.Errorf("federation: duplicate member site %q", name)
		}
		seen[name] = true
		if !mc.RouterID.IsValid() {
			return nil, fmt.Errorf("federation: member %s needs a RouterID", name)
		}
		if mc.Metro == "" {
			mc.Metro = name
		}
		if m.asn == 0 {
			m.asn = mc.Server.ASN()
		} else if mc.Server.ASN() != m.asn {
			return nil, fmt.Errorf("federation: member %s runs AS %d, mesh runs AS %d (one testbed ASN)",
				name, mc.Server.ASN(), m.asn)
		}
		mem := &member{
			mesh:         m,
			idx:          i,
			cfg:          mc,
			name:         name,
			localUp:      make(map[uint32]server.UpstreamConfig),
			links:        make(map[int]*Link),
			backhaulAddr: netip.AddrFrom4([4]byte{10, 254, 0, byte(i + 1)}),
		}
		for _, u := range mc.Server.Upstreams() {
			ucfg := u.Config()
			if ucfg.FedVia != "" {
				continue
			}
			if ucfg.ID >= maxFedUpstreams {
				return nil, fmt.Errorf("federation: member %s upstream %d exceeds the federable ID space (%d)",
					name, ucfg.ID, maxFedUpstreams)
			}
			mem.localUp[ucfg.ID] = ucfg
		}
		m.members = append(m.members, mem)
	}

	m.assignMetroTags()
	for _, mem := range m.members {
		mem.tag = m.metroTag[mem.cfg.Metro]
		mem.installMetroPolicy()
	}

	// Links before upstream registration: dial closures resolve through
	// member.links.
	for i := 0; i < len(m.members); i++ {
		for j := i + 1; j < len(m.members); j++ {
			l := m.newLink(m.members[i], m.members[j])
			m.links = append(m.links, l)
			m.members[i].links[j] = l
			m.members[j].links[i] = l
		}
	}

	// Mirror every member's real upstreams at every other member. The
	// registration happens before the agents connect so agents (and any
	// later client) are provisioned with the full federated peer list.
	for _, x := range m.members {
		for _, y := range m.members {
			if x == y {
				continue
			}
			for _, uid := range sortedIDs(y.localUp) {
				ucfg := y.localUp[uid]
				fu, err := x.addFedUpstream(y, ucfg)
				if err != nil {
					return nil, err
				}
				x.feds = append(x.feds, fu)
			}
		}
	}

	m.metrics = newMeshMetrics(reg, m)

	// Agents: each member's server gets its federated client. Connect
	// completes the provisioning handshake synchronously.
	for _, mem := range m.members {
		ag, err := newAgent(mem)
		if err != nil {
			m.Close()
			return nil, err
		}
		mem.agent = ag
	}

	// Finally attach the mirrored upstreams: their sessions dial the
	// backhaul and terminate at the (now listening) remote agents.
	for _, mem := range m.members {
		for _, fu := range mem.feds {
			fu.attach()
		}
	}
	return m, nil
}

// assignMetroTags gives every distinct metro a community, in sorted
// order so the assignment is stable across restarts and muxes.
func (m *Mesh) assignMetroTags() {
	var metros []string
	have := make(map[string]bool)
	for _, mem := range m.members {
		if !have[mem.cfg.Metro] {
			have[mem.cfg.Metro] = true
			metros = append(metros, mem.cfg.Metro)
		}
	}
	sort.Strings(metros)
	for i, name := range metros {
		c := wire.MakeCommunity(uint16(m.asn), defaultMetroCommunityBase+uint16(i))
		m.metroTag[name] = c
		m.tagMetro[c] = name
	}
}

// installMetroPolicy merges the member's own metro rule into its rule
// set and reinstalls the compiled policy: a route arriving at this mux
// already carrying the mux's own metro tag is a federation loop (or an
// outside injection of our internal community) and is rejected pre-RIB.
func (mem *member) installMetroPolicy() {
	var rs compiled.RuleSet
	if mem.cfg.Rules != nil {
		rs = *mem.cfg.Rules
	}
	rule := compiled.MetroRule{Name: mem.cfg.Metro, Community: mem.tag}
	rs.Metros = append(append([]compiled.MetroRule(nil), rs.Metros...), rule)
	mem.cfg.Server.LoadPolicy(&rs)
}

// sortedIDs returns the map's keys ascending, so upstream registration
// order (and therefore status listings) is deterministic.
func sortedIDs(m map[uint32]server.UpstreamConfig) []uint32 {
	ids := make([]uint32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Members reports the member sites in mesh order.
func (m *Mesh) Members() []string {
	out := make([]string, len(m.members))
	for i, mem := range m.members {
		out[i] = mem.name
	}
	return out
}

// MetroCommunity returns the community tagging routes that originate at
// exchanges in the given metro (ok false for unknown metros).
func (m *Mesh) MetroCommunity(metro string) (wire.Community, bool) {
	c, ok := m.metroTag[metro]
	return c, ok
}

// memberByName finds a member by site name.
func (m *Mesh) memberByName(name string) *member {
	for _, mem := range m.members {
		if mem.name == name {
			return mem
		}
	}
	return nil
}

// linkBetween finds the link joining two member sites, in either order.
func (m *Mesh) linkBetween(a, b string) (*Link, error) {
	ma, mb := m.memberByName(a), m.memberByName(b)
	if ma == nil || mb == nil || ma == mb {
		return nil, fmt.Errorf("federation: no link between %q and %q", a, b)
	}
	return ma.links[mb.idx], nil
}

// PartitionLink cuts the backhaul between two member sites (both
// directions): frames are silently dropped until HealLink. Sessions
// riding the link die by hold timer and their routes are retained stale
// on both sides, exactly like any transport loss.
func (m *Mesh) PartitionLink(a, b string) error {
	l, err := m.linkBetween(a, b)
	if err != nil {
		return err
	}
	l.partition()
	m.metrics.partitions.Inc()
	return nil
}

// HealLink restores a partitioned backhaul link. Supervised sessions
// redial over it and replay their tables.
func (m *Mesh) HealLink(a, b string) error {
	l, err := m.linkBetween(a, b)
	if err != nil {
		return err
	}
	l.heal()
	m.metrics.heals.Inc()
	return nil
}

// Close stops flap timers, supervisors, agents, and backhaul links.
// The member servers themselves stay up (the caller owns them).
func (m *Mesh) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	for _, l := range m.links {
		l.stopFlapping()
	}
	// Links go down first: closing the transports releases any writer
	// parked in an injected latency delay (on a virtual clock nobody
	// advances past this point), so the supervisors' closing Cease
	// writes fail fast instead of queuing behind a dead link.
	for _, l := range m.links {
		l.close()
	}
	for _, mem := range m.members {
		for _, fu := range mem.feds {
			if fu.sup != nil {
				fu.sup.Stop()
			}
		}
	}
	for _, mem := range m.members {
		if mem.agent != nil {
			mem.agent.close()
		}
	}
}
