package compiled

// FuzzVerdict drives compile∘verdict as a total function: arbitrary
// rule text (parse errors allowed, panics not), plus an arbitrary
// prefix and AS path synthesized from the fuzz input, must always
// produce a verdict. The invariants checked beyond "no panic": a
// filter with no prefix rules and default permit never rejects with
// ClassPrefix, and a verdict on a path without any protected AS never
// rejects with a Peerlock class.

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"strings"
	"testing"

	"peering/internal/wire"
)

func FuzzVerdict(f *testing.F) {
	f.Add([]byte("prefix permit 184.164.224.0/19 le 24\nroa 96.0.0.0/16 maxlen 24 origin 64500\npeerlock 174 allow 3356\npeerlock-lite 3257\n"),
		[]byte{184, 164, 224, 0, 24}, []byte{0, 0, 13, 28, 0, 0, 252, 116})
	f.Add([]byte("default deny\n"), []byte{8, 8, 8, 0, 24}, []byte{})
	f.Add([]byte("# only comments\n"), []byte{255, 255, 255, 255, 64}, []byte{1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, rules, prefixBytes, pathBytes []byte) {
		rs, err := ParseRules(bytes.NewReader(rules))
		if err != nil {
			rs = &RuleSet{}
		}
		flt := Compile(rs)

		// Synthesize a prefix: 4 address bytes + mask byte (mod 33).
		var a4 [4]byte
		copy(a4[:], prefixBytes)
		bits := 0
		if len(prefixBytes) > 4 {
			bits = int(prefixBytes[4]) % 33
		}
		p := netip.PrefixFrom(netip.AddrFrom4(a4), bits)

		// Synthesize a path: every 4 bytes one ASN, alternating segment
		// types so sets are exercised too.
		var segs []wire.Segment
		for i := 0; i+4 <= len(pathBytes) && i < 64; i += 4 {
			asn := binary.BigEndian.Uint32(pathBytes[i : i+4])
			st := wire.SegSequence
			if i%12 == 8 {
				st = wire.SegSet
			}
			if len(segs) > 0 && segs[len(segs)-1].Type == st {
				segs[len(segs)-1].ASNs = append(segs[len(segs)-1].ASNs, asn)
			} else {
				segs = append(segs, wire.Segment{Type: st, ASNs: []uint32{asn}})
			}
		}
		attrs := &wire.Attrs{Origin: wire.OriginIGP, ASPath: segs,
			NextHop: netip.MustParseAddr("10.0.0.1")}

		for _, peer := range []Peer{{}, {AS: attrs.FirstAS(), Transit: true}} {
			v := flt.Verdict(p, attrs, peer)
			if v.Accept && v.Class != ClassNone {
				t.Fatalf("accept verdict carries class %v", v.Class)
			}
			if !v.Accept && v.Class == ClassNone {
				t.Fatal("reject verdict without a class")
			}
			if v.Class == ClassPrefix && len(rs.Prefixes) == 0 && !rs.DefaultDeny {
				t.Fatalf("prefix reject from a permissive empty prefix table (rules %q)", rules)
			}
			if v.Class == ClassPeerlock || v.Class == ClassPeerlockLite {
				found := false
				for _, asn := range attrs.ASList() {
					if _, ok := flt.peerlock[asn]; ok {
						found = true
					}
					if _, ok := flt.noTransit[asn]; ok {
						found = true
					}
				}
				if !found {
					t.Fatalf("%v reject but no protected AS in path %s", v.Class, attrs.PathString())
				}
			}
		}
		// MatchPrefix and Origin must be total on their own, too.
		flt.MatchPrefix(p)
		flt.Origin(p, attrs.OriginAS())
		_ = strings.TrimSpace(flt.String())
	})
}
