// Package compiled lowers the testbed's safety rules — prefix
// ownership, ROA-style origin validation, and Peerlock/Peerlock-lite
// AS-path rules — into one immutable verdict structure cheap enough to
// sit on the server's ingest hot path.
//
// The source form is a RuleSet (authored by hand, parsed from a rule
// file, or built programmatically). Compile folds it into a Filter:
// prefix and origin rules become internal/trie longest-match tables
// walked covering-entry by covering-entry, adjacency rules become flat
// AS-indexed maps, and the per-path portion of a verdict (origin AS,
// Peerlock adjacency, protected-AS presence) is memoized per interned
// *wire.Attrs pointer, which the intern table guarantees is canonical
// and immutable. A Filter never changes after Compile returns, so
// Verdict is safe from every ingest shard concurrently with no locks;
// in steady state (memo warm) it allocates nothing and costs O(path
// length) on the first sight of an attribute set, O(prefix bits) after.
//
// An Engine is an atomic.Pointer around the current Filter: operators
// reload rules by compiling a new Filter and swapping it in, and every
// in-flight update observes exactly one of the two filters — never a
// mix, never neither.
package compiled

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"peering/internal/trie"
	"peering/internal/wire"
)

// ---------------------------------------------------------------------
// Source rules

// PrefixRule is one prefix-ownership entry: prefixes covered by Prefix
// with mask length in [Ge, Le] are permitted or denied. Zero Ge/Le
// default to the prefix's own length (exact match), matching
// policy.PrefixRule. Rules are ordered; the first match wins.
type PrefixRule struct {
	Prefix netip.Prefix
	Ge, Le int
	Permit bool
}

// OriginRule is one ROA-style authorization: Origin may originate
// Prefix and its more-specifics down to MaxLen (zero = Prefix's own
// length, the RFC 6482 default). A route whose prefix is covered by at
// least one OriginRule must satisfy one — origin and length both — or
// it is rejected as invalid; uncovered prefixes are unknown and pass.
type OriginRule struct {
	Prefix netip.Prefix
	MaxLen int
	Origin uint32
}

// PeerlockRule protects one large network's AS from appearing in
// leaked paths: if Protected occurs anywhere in an AS_PATH, every AS
// adjacent to it in that path must be in Allowed (Protected's own
// prepends are always fine). This is the Peerlock scheme from
// "Flexsealing BGP Against Route Leaks": big networks interconnect
// directly, so a small AS between two tier-1s is a leak.
type PeerlockRule struct {
	Protected uint32
	Allowed   []uint32
}

// MetroRule declares one metro-local community: routes tagged with
// Community belong to the metro named Name and must never be accepted
// here — the tag marks a route as local to this metro's own exchange,
// so seeing it arrive over a session means it looped back across the
// federation backhaul (see internal/federation). The federation layer
// suppresses such routes at export; this rule class is the importing
// mux's defense in depth.
type MetroRule struct {
	Name      string
	Community wire.Community
}

// RuleSet is the source form of a compiled filter.
type RuleSet struct {
	// DefaultDeny rejects prefixes no PrefixRule matches. The default
	// (false) permits them, so an empty rule set accepts everything.
	DefaultDeny bool
	Prefixes    []PrefixRule
	Origins     []OriginRule
	Peerlock    []PeerlockRule
	// NoTransit lists ASes under Peerlock-lite: routes carrying one of
	// them are rejected when learned from a non-transit neighbor, who
	// could only have such a path by leaking (a customer or peer never
	// legitimately provides transit to a tier-1).
	NoTransit []uint32
	// Metros lists metro-local communities to reject on sight.
	Metros []MetroRule
}

// ---------------------------------------------------------------------
// Verdicts

// Class names the rule family that decided a verdict.
type Class uint8

// Verdict rule classes.
const (
	ClassNone         Class = iota // no rule fired (default accept)
	ClassPrefix                    // prefix-ownership rule
	ClassOrigin                    // ROA origin validation
	ClassPeerlock                  // Peerlock adjacency rule
	ClassPeerlockLite              // Peerlock-lite no-transit rule
	ClassMetro                     // metro-local community rule
	NumClasses        = 6
)

func (c Class) String() string {
	switch c {
	case ClassPrefix:
		return "prefix"
	case ClassOrigin:
		return "origin"
	case ClassPeerlock:
		return "peerlock"
	case ClassPeerlockLite:
		return "peerlock_lite"
	case ClassMetro:
		return "metro"
	default:
		return "none"
	}
}

// Verdict is the outcome of filtering one route.
type Verdict struct {
	Accept bool
	// Class is the rule family that rejected the route; ClassNone on
	// accept.
	Class Class
}

// OriginState is the RPKI-style tri-state of one (prefix, origin) pair
// against the compiled origin table.
type OriginState uint8

// Origin validation states.
const (
	OriginUnknown OriginState = iota // no covering authorization exists
	OriginValid                      // a covering authorization matches
	OriginInvalid                    // covered, but no authorization matches
)

// Peer is the neighbor context of a verdict: who sent the route and
// whether they are a paid transit provider (tier-1 paths are expected
// from transit, and a leak from anyone else).
type Peer struct {
	AS      uint32
	Transit bool
}

// ---------------------------------------------------------------------
// Compiled representation

// cpRule is one lowered prefix rule stored at its prefix's trie node.
type cpRule struct {
	idx    int32 // position in the source list (first match wins)
	ge, le int16
	permit bool
}

// cOrigin is one lowered authorization stored at its prefix's node.
type cOrigin struct {
	origin uint32
	maxLen int16
}

// pathFacts is everything a verdict needs from an AS_PATH, computed
// once per interned attribute set and memoized.
type pathFacts struct {
	origin      uint32
	peerlockBad bool // some Peerlock adjacency is violated
	noTransitAS bool // the path carries a Peerlock-lite protected AS
}

// Filter is an immutable compiled rule set. The zero value is not
// useful; build one with Compile. A nil *Filter accepts everything.
type Filter struct {
	gen           uint64
	defaultPermit bool
	prefixes      *trie.Trie[[]cpRule]
	nPrefix       int
	origins       *trie.Trie[[]cOrigin]
	nOrigins      int
	peerlock      map[uint32][]uint32 // protected → allowed adjacency (unsorted, short)
	noTransit     map[uint32]struct{}
	metros        map[wire.Community]string // metro-local tag → metro name
	compileTime   time.Duration

	// paths memoizes pathFacts per interned *wire.Attrs. Correct
	// because interned attribute sets are frozen and canonical (equal
	// attrs resolve to one pointer), and bounded because the intern
	// table itself bounds distinct attribute sets. Stored per Filter,
	// so a reload naturally drops stale facts with the old Filter.
	paths sync.Map
}

// Compile lowers rs into an immutable Filter. Rule values are
// normalized rather than rejected: zero Ge/Le/MaxLen default to the
// rule prefix's own length, inverted or out-of-range bounds are
// clamped to the address family's bit length. (The rule-file parser is
// where malformed input is reported; see ParseRules.)
func Compile(rs *RuleSet) *Filter {
	start := time.Now()
	f := &Filter{
		defaultPermit: !rs.DefaultDeny,
		prefixes:      trie.New[[]cpRule](),
		origins:       trie.New[[]cOrigin](),
		peerlock:      make(map[uint32][]uint32, len(rs.Peerlock)),
		noTransit:     make(map[uint32]struct{}, len(rs.NoTransit)),
		metros:        make(map[wire.Community]string, len(rs.Metros)),
	}
	for i, r := range rs.Prefixes {
		if !r.Prefix.IsValid() {
			continue
		}
		p := r.Prefix.Masked()
		ge, le := clampRange(p, r.Ge, r.Le)
		c := cpRule{idx: int32(i), ge: ge, le: le, permit: r.Permit}
		if rules, ok := f.prefixes.Get(p); ok {
			f.prefixes.Insert(p, append(rules, c))
		} else {
			f.prefixes.Insert(p, []cpRule{c})
		}
		f.nPrefix++
	}
	for _, r := range rs.Origins {
		if !r.Prefix.IsValid() {
			continue
		}
		p := r.Prefix.Masked()
		maxLen := r.MaxLen
		if maxLen == 0 || maxLen < p.Bits() {
			maxLen = p.Bits()
		}
		if max := p.Addr().BitLen(); maxLen > max {
			maxLen = max
		}
		c := cOrigin{origin: r.Origin, maxLen: int16(maxLen)}
		if ents, ok := f.origins.Get(p); ok {
			f.origins.Insert(p, append(ents, c))
		} else {
			f.origins.Insert(p, []cOrigin{c})
		}
		f.nOrigins++
	}
	for _, r := range rs.Peerlock {
		f.peerlock[r.Protected] = append(f.peerlock[r.Protected], r.Allowed...)
	}
	for _, asn := range rs.NoTransit {
		f.noTransit[asn] = struct{}{}
	}
	for _, m := range rs.Metros {
		f.metros[m.Community] = m.Name
	}
	f.compileTime = time.Since(start)
	return f
}

// clampRange resolves a rule's [ge, le] against its prefix: zeros
// default to the prefix's own length, bounds are clamped to [bits,
// family bitlen], and an inverted range stays inverted (matches
// nothing), mirroring the interpreted PrefixList.
func clampRange(p netip.Prefix, ge, le int) (int16, int16) {
	if ge == 0 {
		ge = p.Bits()
	}
	if le == 0 {
		le = p.Bits()
	}
	if max := p.Addr().BitLen(); le > max {
		le = max
	}
	// A rule can never match a prefix shorter than itself (the trie
	// walk only visits covering entries), so raise ge to the floor.
	if ge < p.Bits() {
		ge = p.Bits()
	}
	return int16(ge), int16(le)
}

// MatchPrefix evaluates p against the compiled prefix-ownership rules
// alone: first source-order match wins, the default applies when
// nothing matches. This is the compiled equivalent of
// policy.PrefixList.Match.
func (f *Filter) MatchPrefix(p netip.Prefix) bool {
	bits := int16(p.Bits())
	best := int32(-1)
	permit := f.defaultPermit
	f.prefixes.Supernets(p, func(_ netip.Prefix, rules []cpRule) bool {
		for _, r := range rules {
			if bits < r.ge || bits > r.le {
				continue
			}
			if best < 0 || r.idx < best {
				best, permit = r.idx, r.permit
			}
		}
		return true
	})
	return permit
}

// Origin classifies (p, origin) against the compiled authorizations:
// Valid if some covering rule authorizes the origin at p's length,
// Invalid if p is covered but nothing matches, Unknown if no covering
// rule exists. This is the compiled equivalent of
// policy.OriginTable.Allowed, with the unknown case made explicit.
func (f *Filter) Origin(p netip.Prefix, origin uint32) OriginState {
	bits := int16(p.Bits())
	state := OriginUnknown
	f.origins.Supernets(p, func(_ netip.Prefix, ents []cOrigin) bool {
		state = OriginInvalid
		for _, e := range ents {
			if e.origin == origin && bits <= e.maxLen {
				state = OriginValid
				return false
			}
		}
		return true
	})
	return state
}

// facts returns the memoized path facts for attrs, computing them on
// first sight. attrs must be interned (frozen and canonical); the
// pointer is the cache key.
func (f *Filter) facts(attrs *wire.Attrs) pathFacts {
	if v, ok := f.paths.Load(attrs); ok {
		return v.(pathFacts)
	}
	pf := f.computeFacts(attrs)
	f.paths.Store(attrs, pf)
	return pf
}

func (f *Filter) computeFacts(attrs *wire.Attrs) pathFacts {
	var pf pathFacts
	pf.origin = attrs.OriginAS()
	// Walk the flattened path once, checking each ASN's membership in
	// the Peerlock-lite set and, for protected ASes, the Peerlock
	// adjacency of its left and right neighbors. AS_SET members are
	// treated as pairwise adjacent to their neighbors — conservative,
	// since a set erases ordering.
	prev := uint32(0)
	for si, seg := range attrs.ASPath {
		for ai, asn := range seg.ASNs {
			if _, ok := f.noTransit[asn]; ok {
				pf.noTransitAS = true
			}
			if allowed, ok := f.peerlock[asn]; ok {
				next := uint32(0)
				if ai+1 < len(seg.ASNs) {
					next = seg.ASNs[ai+1]
				} else if si+1 < len(attrs.ASPath) && len(attrs.ASPath[si+1].ASNs) > 0 {
					next = attrs.ASPath[si+1].ASNs[0]
				}
				if !adjacencyOK(asn, prev, allowed) || !adjacencyOK(asn, next, allowed) {
					pf.peerlockBad = true
				}
			}
			prev = asn
		}
	}
	return pf
}

// adjacencyOK reports whether neighbor may sit next to protected in a
// path: path edges (0), the protected AS's own prepends, and listed
// partners are fine.
func adjacencyOK(protected, neighbor uint32, allowed []uint32) bool {
	if neighbor == 0 || neighbor == protected {
		return true
	}
	for _, a := range allowed {
		if a == neighbor {
			return true
		}
	}
	return false
}

// Verdict filters one route: the prefix against the ownership rules,
// the path against Peerlock and (for non-transit neighbors)
// Peerlock-lite, and the (prefix, origin) pair against the ROA table.
// All families must pass. attrs must be interned and may be nil
// (withdrawal-style, path checks skipped); a nil Filter accepts
// everything. Safe for concurrent use from every ingest shard;
// allocation-free once the path memo has seen attrs.
func (f *Filter) Verdict(p netip.Prefix, attrs *wire.Attrs, peer Peer) Verdict {
	if f == nil {
		return Verdict{Accept: true}
	}
	if f.nPrefix > 0 || !f.defaultPermit {
		if !f.MatchPrefix(p) {
			return Verdict{Class: ClassPrefix}
		}
	}
	if attrs != nil {
		if len(f.metros) > 0 && f.matchMetro(attrs) {
			return Verdict{Class: ClassMetro}
		}
		if len(f.peerlock) > 0 || len(f.noTransit) > 0 {
			pf := f.facts(attrs)
			if pf.peerlockBad {
				return Verdict{Class: ClassPeerlock}
			}
			if pf.noTransitAS && !peer.Transit {
				return Verdict{Class: ClassPeerlockLite}
			}
		}
		if f.nOrigins > 0 {
			if f.Origin(p, attrs.OriginAS()) == OriginInvalid {
				return Verdict{Class: ClassOrigin}
			}
		}
	}
	return Verdict{Accept: true}
}

// matchMetro reports whether attrs carry any metro-local community.
// Deliberately not memoized in pathFacts: the federation export path
// evaluates freshly cloned (un-interned) attribute sets, and a
// pointer-keyed memo would both be unsound there and grow without
// bound. A linear scan over the (short, sorted) communities list is
// allocation-free.
func (f *Filter) matchMetro(attrs *wire.Attrs) bool {
	for _, c := range attrs.Communities {
		if _, ok := f.metros[c]; ok {
			return true
		}
	}
	return false
}

// MatchMetro names the metro whose local tag attrs carry, if any. Safe
// on un-interned attribute sets (no memoization).
func (f *Filter) MatchMetro(attrs *wire.Attrs) (string, bool) {
	if f == nil || attrs == nil {
		return "", false
	}
	for _, c := range attrs.Communities {
		if name, ok := f.metros[c]; ok {
			return name, true
		}
	}
	return "", false
}

// VerdictPath applies only the AS-path rule families — Peerlock and,
// for non-transit neighbors, Peerlock-lite — ignoring the prefix and
// origin tables. This is the client-direction check: a client's prefix
// ownership is its provisioned allocation (enforced separately by the
// server), but a path that carries a protected AS through a stub
// neighbor is a route leak whatever the prefix says. Same memoization
// and concurrency contract as Verdict.
func (f *Filter) VerdictPath(attrs *wire.Attrs, peer Peer) Verdict {
	if f == nil || attrs == nil || (len(f.peerlock) == 0 && len(f.noTransit) == 0) {
		return Verdict{Accept: true}
	}
	pf := f.facts(attrs)
	if pf.peerlockBad {
		return Verdict{Class: ClassPeerlock}
	}
	if pf.noTransitAS && !peer.Transit {
		return Verdict{Class: ClassPeerlockLite}
	}
	return Verdict{Accept: true}
}

// Generation is the filter's load sequence number (0 until an Engine
// installs it, and for a nil filter).
func (f *Filter) Generation() uint64 {
	if f == nil {
		return 0
	}
	return f.gen
}

// Status summarizes a compiled filter for operators (GET /policy).
type Status struct {
	Enabled        bool    `json:"enabled"`
	Generation     uint64  `json:"generation"`
	DefaultDeny    bool    `json:"default_deny"`
	PrefixRules    int     `json:"prefix_rules"`
	OriginRules    int     `json:"origin_rules"`
	PeerlockRules  int     `json:"peerlock_rules"`
	NoTransitASes  int     `json:"no_transit_ases"`
	MetroRules     int     `json:"metro_rules"`
	CompileSeconds float64 `json:"compile_seconds"`
}

// Status reports the filter's shape. A nil Filter reports Enabled
// false: the mux is running unfiltered.
func (f *Filter) Status() Status {
	if f == nil {
		return Status{}
	}
	return Status{
		Enabled:        true,
		Generation:     f.gen,
		DefaultDeny:    !f.defaultPermit,
		PrefixRules:    f.nPrefix,
		OriginRules:    f.nOrigins,
		PeerlockRules:  len(f.peerlock),
		NoTransitASes:  len(f.noTransit),
		MetroRules:     len(f.metros),
		CompileSeconds: f.compileTime.Seconds(),
	}
}

func (f *Filter) String() string {
	if f == nil {
		return "<no filter>"
	}
	return fmt.Sprintf("filter gen %d: %d prefix, %d origin, %d peerlock, %d no-transit, %d metro (default %s)",
		f.gen, f.nPrefix, f.nOrigins, len(f.peerlock), len(f.noTransit), len(f.metros),
		map[bool]string{true: "permit", false: "deny"}[f.defaultPermit])
}

// ---------------------------------------------------------------------
// Engine

// Engine holds the active Filter behind an atomic pointer. Loads are
// lock-free; a reload compiles off to the side and swaps one pointer,
// so every concurrent verdict runs against exactly one coherent rule
// set. The zero value is ready to use and starts unfiltered.
type Engine struct {
	cur atomic.Pointer[Filter]
	gen atomic.Uint64
}

// Load compiles rs, stamps the next generation, and installs the
// result, returning it. A nil rs uninstalls filtering entirely.
func (e *Engine) Load(rs *RuleSet) *Filter {
	if rs == nil {
		e.cur.Store(nil)
		return nil
	}
	f := Compile(rs)
	f.gen = e.gen.Add(1)
	e.cur.Store(f)
	return f
}

// Current returns the active filter; nil means accept-all. The
// returned pointer stays valid (immutable) across reloads — callers
// deciding several routes atomically should load once and reuse it.
func (e *Engine) Current() *Filter { return e.cur.Load() }
