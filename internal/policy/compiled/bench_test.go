package compiled

// Verdict-path cost accounting. TestVerdictZeroAlloc is the enforced
// budget — the compiled filter may not allocate on the steady-state
// verdict path, because it runs per-NLRI inside the ingest workers
// whose own budget (TestRelayHotPathAllocs) is enforced in make check.
// TestPolicyBenchmark measures verdicts/sec over a full-table-shaped
// rule set and, when BENCH_POLICY_JSON names a path, writes the
// committed artifact.

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"testing"
	"time"

	"peering/internal/benchenv"
	"peering/internal/wire"
)

// benchFilter compiles a rule set shaped like a production deployment:
// a prefix-ownership table, an ROA table covering part of the space,
// and a handful of adjacency rules.
func benchFilter(nPrefix, nROA int) *Filter {
	rs := &RuleSet{
		Peerlock: []PeerlockRule{
			{Protected: 174, Allowed: []uint32{3356, 2914, 1299}},
			{Protected: 3356, Allowed: []uint32{174, 2914, 1299, 3257}},
		},
		NoTransit: []uint32{6453, 6762},
	}
	for i := 0; i < nPrefix; i++ {
		rs.Prefixes = append(rs.Prefixes, PrefixRule{
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(20 + i%60), byte(i >> 8), byte(i), 0}), 24),
			Le:     32, Permit: i%16 != 0,
		})
	}
	for i := 0; i < nROA; i++ {
		rs.Origins = append(rs.Origins, OriginRule{
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(96 + i%8), byte(i >> 8), byte(i), 0}), 24),
			MaxLen: 32, Origin: uint32(64500 + i%1000),
		})
	}
	return Compile(rs)
}

// benchRoutes builds interned attribute sets and prefixes that hit
// every rule family: some covered by ROAs, some by prefix rules, some
// by neither.
func benchRoutes(n int) ([]netip.Prefix, []*wire.Attrs) {
	intern := wire.NewInternTable()
	prefixes := make([]netip.Prefix, n)
	attrs := make([]*wire.Attrs, n)
	for i := range prefixes {
		first := byte(20 + i%90) // spans rule space, ROA space, and uncovered space
		prefixes[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{first, byte(i >> 8), byte(i), 0}), 24)
		attrs[i] = intern.Intern(&wire.Attrs{
			Origin: wire.OriginIGP,
			ASPath: []wire.Segment{{Type: wire.SegSequence,
				ASNs: []uint32{3356, 174, 2914, uint32(64500 + i%1000)}}},
			NextHop: netip.MustParseAddr("10.0.0.1"),
		})
	}
	return prefixes, attrs
}

func TestVerdictZeroAlloc(t *testing.T) {
	f := benchFilter(4096, 1024)
	prefixes, attrs := benchRoutes(512)
	peer := Peer{AS: 3356, Transit: true}
	// Warm the path memo: the first verdict per attribute set stores a
	// facts entry, exactly once per interned pointer per filter.
	for i := range prefixes {
		f.Verdict(prefixes[i], attrs[i], peer)
	}
	if a := testing.AllocsPerRun(100, func() {
		for i := range prefixes {
			f.Verdict(prefixes[i], attrs[i], peer)
		}
	}); a != 0 {
		t.Fatalf("steady-state verdict path allocates %v per run of %d verdicts, want 0", a, len(prefixes))
	}
}

func BenchmarkVerdict(b *testing.B) {
	f := benchFilter(4096, 1024)
	prefixes, attrs := benchRoutes(512)
	peer := Peer{AS: 3356, Transit: true}
	for i := range prefixes {
		f.Verdict(prefixes[i], attrs[i], peer)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(prefixes)
		f.Verdict(prefixes[j], attrs[j], peer)
	}
}

func TestPolicyBenchmark(t *testing.T) {
	const nPrefix, nROA, nRoutes = 16384, 8192, 4096
	testStart := time.Now()
	rounds := 200
	if testing.Short() {
		rounds = 5
	}
	start := time.Now()
	f := benchFilter(nPrefix, nROA)
	compile := time.Since(start)
	prefixes, attrs := benchRoutes(nRoutes)
	peer := Peer{AS: 3356, Transit: true}
	accepted := 0
	for i := range prefixes { // memo warm-up, uncounted
		f.Verdict(prefixes[i], attrs[i], peer)
	}
	start = time.Now()
	for r := 0; r < rounds; r++ {
		for i := range prefixes {
			if f.Verdict(prefixes[i], attrs[i], peer).Accept {
				accepted++
			}
		}
	}
	elapsed := time.Since(start)
	total := rounds * nRoutes
	perSec := float64(total) / elapsed.Seconds()
	t.Logf("compile: %d prefix + %d roa + peerlock in %v", nPrefix, nROA, compile)
	t.Logf("verdicts: %d in %v = %.0f/sec (%.1f%% accepted)",
		total, elapsed, perSec, 100*float64(accepted)/float64(total))

	if path := os.Getenv("BENCH_POLICY_JSON"); path != "" {
		out, err := json.MarshalIndent(map[string]any{
			"scenario": map[string]int{
				"prefix_rules": nPrefix, "origin_rules": nROA,
				"peerlock_rules": 2, "no_transit_ases": 2,
				"routes": nRoutes, "rounds": rounds,
			},
			"op":               "one Verdict (prefix + peerlock + peerlock-lite + origin), memo warm",
			"compile_seconds":  compile.Seconds(),
			"verdicts_per_sec": perSec,
			"ns_per_verdict":   float64(elapsed.Nanoseconds()) / float64(total),
			"allocs_per_verdict": fmt.Sprintf("0 (enforced by TestVerdictZeroAlloc; %d routes, every rule family exercised)",
				nRoutes),
			"env": benchenv.Capture(testStart),
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
	}
}
