package compiled

import (
	"net/netip"
	"strings"
	"testing"

	"peering/internal/wire"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func attrsWithPath(path ...uint32) *wire.Attrs {
	return &wire.Attrs{
		Origin:  wire.OriginIGP,
		ASPath:  []wire.Segment{{Type: wire.SegSequence, ASNs: path}},
		NextHop: netip.MustParseAddr("10.0.0.1"),
	}
}

func TestPrefixRulesFirstMatchWinsAcrossCoverage(t *testing.T) {
	// A deny on the /24 is listed before a permit on the covering /19:
	// source order must win even though the /24 is the longer match.
	f := Compile(&RuleSet{
		DefaultDeny: true,
		Prefixes: []PrefixRule{
			{Prefix: pfx("184.164.224.0/24"), Permit: false},
			{Prefix: pfx("184.164.224.0/19"), Le: 24, Permit: true},
		},
	})
	if f.MatchPrefix(pfx("184.164.224.0/24")) {
		t.Fatal("first-listed deny /24 must win over later permit /19")
	}
	if !f.MatchPrefix(pfx("184.164.225.0/24")) {
		t.Fatal("sibling /24 under the permit /19 must pass")
	}
	if f.MatchPrefix(pfx("184.164.224.0/25")) {
		t.Fatal("/25 beyond the permit's le 24 must fall to default deny")
	}
	if f.MatchPrefix(pfx("8.8.8.0/24")) {
		t.Fatal("uncovered prefix must fall to default deny")
	}
}

func TestPrefixRulesGeLeAndDefaults(t *testing.T) {
	f := Compile(&RuleSet{Prefixes: []PrefixRule{
		{Prefix: pfx("10.0.0.0/8"), Ge: 16, Le: 24, Permit: true},
		{Prefix: pfx("10.0.0.0/8"), Ge: 8, Le: 32, Permit: false},
	}})
	for _, tc := range []struct {
		p    string
		want bool
	}{
		{"10.1.0.0/16", true},  // inside [16,24] → first rule permits
		{"10.1.2.0/24", true},  //
		{"10.0.0.0/12", false}, // below ge 16 → second rule denies
		{"10.1.2.3/32", false}, // above le 24 → second rule denies
		{"11.0.0.0/16", true},  // uncovered → default permit
	} {
		if got := f.MatchPrefix(pfx(tc.p)); got != tc.want {
			t.Errorf("MatchPrefix(%s) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestOriginValidation(t *testing.T) {
	f := Compile(&RuleSet{Origins: []OriginRule{
		{Prefix: pfx("96.0.0.0/16"), MaxLen: 24, Origin: 64500},
		{Prefix: pfx("96.0.0.0/16"), MaxLen: 16, Origin: 64501},
	}})
	for _, tc := range []struct {
		p      string
		origin uint32
		want   OriginState
	}{
		{"96.0.0.0/16", 64500, OriginValid},
		{"96.0.0.0/16", 64501, OriginValid},
		{"96.0.1.0/24", 64500, OriginValid},   // within maxlen 24
		{"96.0.1.0/24", 64501, OriginInvalid}, // 64501 capped at /16
		{"96.0.1.0/25", 64500, OriginInvalid}, // beyond every maxlen
		{"96.0.0.0/16", 64502, OriginInvalid}, // covered, wrong origin
		{"97.0.0.0/16", 64500, OriginUnknown}, // uncovered
	} {
		if got := f.Origin(pfx(tc.p), tc.origin); got != tc.want {
			t.Errorf("Origin(%s, %d) = %v, want %v", tc.p, tc.origin, got, tc.want)
		}
	}
	// Verdict maps invalid → reject, unknown → accept.
	if v := f.Verdict(pfx("96.0.1.0/24"), attrsWithPath(3356, 64501), Peer{AS: 3356}); v.Accept || v.Class != ClassOrigin {
		t.Fatalf("hijacked origin: verdict %+v, want origin reject", v)
	}
	if v := f.Verdict(pfx("97.0.0.0/16"), attrsWithPath(3356, 64999), Peer{AS: 3356}); !v.Accept {
		t.Fatalf("unknown origin state must pass, got %+v", v)
	}
}

func TestPeerlockAdjacency(t *testing.T) {
	f := Compile(&RuleSet{Peerlock: []PeerlockRule{
		{Protected: 174, Allowed: []uint32{3356, 2914}},
	}})
	ok := []*wire.Attrs{
		attrsWithPath(3356, 174, 2914, 64500), // both neighbors allowed
		attrsWithPath(174, 3356, 64500),       // path edge on the left
		attrsWithPath(3356, 174),              // path edge on the right
		attrsWithPath(3356, 174, 174, 2914),   // own prepend
		attrsWithPath(3356, 64500),            // protected AS absent
	}
	for i, a := range ok {
		if v := f.Verdict(pfx("8.8.8.0/24"), a, Peer{AS: 3356}); !v.Accept {
			t.Errorf("legit path %d (%s) rejected: %+v", i, a.PathString(), v)
		}
	}
	bad := []*wire.Attrs{
		attrsWithPath(3356, 64600, 174, 2914, 64500), // 64600 left of 174
		attrsWithPath(3356, 174, 64601, 64500),       // 64601 right of 174
		attrsWithPath(64600, 174, 64601),             // sandwiched (poisoned)
	}
	for i, a := range bad {
		if v := f.Verdict(pfx("8.8.8.0/24"), a, Peer{AS: 3356}); v.Accept || v.Class != ClassPeerlock {
			t.Errorf("leaked path %d (%s): verdict %+v, want peerlock reject", i, a.PathString(), v)
		}
	}
}

func TestPeerlockLiteTransitContext(t *testing.T) {
	f := Compile(&RuleSet{NoTransit: []uint32{3257}})
	a := attrsWithPath(64500, 3257, 64501)
	if v := f.Verdict(pfx("8.8.8.0/24"), a, Peer{AS: 64500, Transit: false}); v.Accept || v.Class != ClassPeerlockLite {
		t.Fatalf("tier-1 in path from non-transit peer: %+v, want peerlock_lite reject", v)
	}
	if v := f.Verdict(pfx("8.8.8.0/24"), a, Peer{AS: 64500, Transit: true}); !v.Accept {
		t.Fatalf("same path from a transit provider must pass, got %+v", v)
	}
	if v := f.Verdict(pfx("8.8.8.0/24"), attrsWithPath(64500, 64501), Peer{AS: 64500}); !v.Accept {
		t.Fatalf("path without protected AS must pass, got %+v", v)
	}
}

func TestNilFilterAndNilAttrs(t *testing.T) {
	var f *Filter
	if v := f.Verdict(pfx("8.8.8.0/24"), nil, Peer{}); !v.Accept {
		t.Fatal("nil filter must accept everything")
	}
	if got := f.Status(); got.Enabled {
		t.Fatal("nil filter must report Enabled false")
	}
	f2 := Compile(&RuleSet{Peerlock: []PeerlockRule{{Protected: 174}}})
	if v := f2.Verdict(pfx("8.8.8.0/24"), nil, Peer{}); !v.Accept {
		t.Fatal("nil attrs must skip path checks")
	}
}

func TestEngineSwap(t *testing.T) {
	var e Engine
	if e.Current() != nil {
		t.Fatal("zero engine must start unfiltered")
	}
	fa := e.Load(&RuleSet{DefaultDeny: true})
	if e.Current() != fa || fa.Generation() != 1 {
		t.Fatalf("first load: current=%v gen=%d", e.Current(), fa.Generation())
	}
	fb := e.Load(&RuleSet{})
	if e.Current() != fb || fb.Generation() != 2 {
		t.Fatalf("second load: current=%v gen=%d", e.Current(), fb.Generation())
	}
	// The displaced filter stays usable for callers that loaded it.
	if fa.MatchPrefix(pfx("8.8.8.0/24")) {
		t.Fatal("old filter must keep its default-deny semantics")
	}
	if e.Load(nil) != nil || e.Current() != nil {
		t.Fatal("Load(nil) must uninstall filtering")
	}
}

func TestParseRules(t *testing.T) {
	const text = `
# testbed safety rules
default deny
prefix deny   184.164.224.0/24         # carve-out listed first: it wins
prefix permit 184.164.224.0/19 le 24   # the /19, /24s included
roa 96.0.0.0/16 maxlen 24 origin 64500
peerlock 174 allow 3356 2914
peerlock-lite 174 3257
`
	rs, err := ParseRules(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !rs.DefaultDeny || len(rs.Prefixes) != 2 || len(rs.Origins) != 1 ||
		len(rs.Peerlock) != 1 || len(rs.NoTransit) != 2 {
		t.Fatalf("parsed shape: %+v", rs)
	}
	if rs.Prefixes[0].Permit || rs.Prefixes[1].Le != 24 || !rs.Prefixes[1].Permit {
		t.Fatalf("prefix rules: %+v", rs.Prefixes)
	}
	if rs.Origins[0].MaxLen != 24 || rs.Origins[0].Origin != 64500 {
		t.Fatalf("origin rule: %+v", rs.Origins[0])
	}
	if rs.Peerlock[0].Protected != 174 || len(rs.Peerlock[0].Allowed) != 2 {
		t.Fatalf("peerlock rule: %+v", rs.Peerlock[0])
	}
	f := Compile(rs)
	if !f.MatchPrefix(pfx("184.164.225.0/24")) || f.MatchPrefix(pfx("184.164.224.0/24")) {
		t.Fatal("compiled parse output disagrees with rule order")
	}

	for _, bad := range []string{
		"prefix permit not-a-cidr",
		"prefix allow 10.0.0.0/8",
		"prefix permit 10.0.0.0/8 ge 24 le 16",
		"prefix permit 10.0.0.0/8 ge 64",
		"roa 96.0.0.0/16 maxlen 24",
		"roa 96.0.0.0/16 maxlen 8 origin 1",
		"peerlock 174 3356",
		"peerlock-lite",
		"frobnicate 1 2 3",
		"default maybe",
	} {
		if _, err := ParseRules(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseRules(%q) succeeded, want error", bad)
		}
	}
}

func TestStatusShape(t *testing.T) {
	var e Engine
	f := e.Load(&RuleSet{
		DefaultDeny: true,
		Prefixes:    []PrefixRule{{Prefix: pfx("10.0.0.0/8"), Permit: true}},
		Origins:     []OriginRule{{Prefix: pfx("96.0.0.0/16"), Origin: 1}},
		Peerlock:    []PeerlockRule{{Protected: 174}},
		NoTransit:   []uint32{3257},
	})
	st := f.Status()
	if !st.Enabled || st.Generation != 1 || !st.DefaultDeny ||
		st.PrefixRules != 1 || st.OriginRules != 1 || st.PeerlockRules != 1 || st.NoTransitASes != 1 {
		t.Fatalf("Status = %+v", st)
	}
}

func TestMetroLocalRule(t *testing.T) {
	ams := wire.MakeCommunity(47065, 101)
	phx := wire.MakeCommunity(47065, 102)
	f := Compile(&RuleSet{Metros: []MetroRule{{Name: "amsterdam", Community: ams}}})

	tagged := attrsWithPath(3356, 174)
	tagged.Communities = []wire.Community{0x2FB90001, ams}
	v := f.Verdict(pfx("96.0.0.0/24"), tagged, Peer{})
	if v.Accept || v.Class != ClassMetro {
		t.Fatalf("own-metro tag: verdict %+v, want ClassMetro reject", v)
	}
	if name, ok := f.MatchMetro(tagged); !ok || name != "amsterdam" {
		t.Fatalf("MatchMetro = %q, %v; want amsterdam, true", name, ok)
	}

	other := attrsWithPath(3356, 174)
	other.Communities = []wire.Community{phx}
	if v := f.Verdict(pfx("96.0.0.0/24"), other, Peer{}); !v.Accept {
		t.Fatalf("foreign metro tag must pass: %+v", v)
	}
	if _, ok := f.MatchMetro(other); ok {
		t.Fatal("MatchMetro matched a community not in the rule set")
	}
	if v := f.Verdict(pfx("96.0.0.0/24"), attrsWithPath(3356), Peer{}); !v.Accept {
		t.Fatalf("untagged route must pass: %+v", v)
	}
	if _, ok := f.MatchMetro(nil); ok {
		t.Fatal("MatchMetro(nil) must not match")
	}
}

func TestParseMetroLocal(t *testing.T) {
	rs, err := ParseRules(strings.NewReader("metro-local amsterdam community 47065:101\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Metros) != 1 || rs.Metros[0].Name != "amsterdam" ||
		rs.Metros[0].Community != wire.MakeCommunity(47065, 101) {
		t.Fatalf("parsed metro rule: %+v", rs.Metros)
	}
	f := Compile(rs)
	if f.Status().MetroRules != 1 {
		t.Fatalf("status metro rules = %d, want 1", f.Status().MetroRules)
	}
	for _, bad := range []string{
		"metro-local amsterdam 47065:101",
		"metro-local amsterdam community 70000:1",
		"metro-local amsterdam community x:y",
	} {
		if _, err := ParseRules(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseRules(%q) accepted malformed directive", bad)
		}
	}
}
