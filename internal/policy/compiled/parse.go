package compiled

// The rule-file format: one rule per line, '#' comments, whitespace-
// separated tokens. This is the operator surface behind `peeringctl
// policy reload`, POST /policy/reload, and peering-server -policy.
//
//	# prefix ownership: ordered, first match wins
//	default deny
//	prefix permit 184.164.224.0/19 le 24
//	prefix deny   0.0.0.0/0 le 32
//
//	# ROA-style origin authorization
//	roa 96.0.0.0/16 maxlen 24 origin 64500
//
//	# Peerlock: AS 174 may only neighbor its listed partners
//	peerlock 174 allow 3356 2914
//
//	# Peerlock-lite: never accept these ASes from non-transit neighbors
//	peerlock-lite 174 3257 1299
//
//	# metro-local: reject routes tagged with this metro's federation
//	# community — they are local to our own exchange and can only have
//	# arrived by looping over the backhaul
//	metro-local amsterdam community 47065:101

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"peering/internal/wire"
)

// ParseRules reads the text rule-file format into a RuleSet. Errors
// carry the 1-based line number.
func ParseRules(r io.Reader) (*RuleSet, error) {
	rs := &RuleSet{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if err := parseLine(rs, fields); err != nil {
			return nil, fmt.Errorf("rules line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rules line %d: %w", line, err)
	}
	return rs, nil
}

func parseLine(rs *RuleSet, f []string) error {
	switch f[0] {
	case "default":
		if len(f) != 2 || (f[1] != "permit" && f[1] != "deny") {
			return fmt.Errorf("want 'default permit' or 'default deny'")
		}
		rs.DefaultDeny = f[1] == "deny"
	case "prefix":
		if len(f) < 3 || (f[1] != "permit" && f[1] != "deny") {
			return fmt.Errorf("want 'prefix permit|deny <cidr> [ge N] [le N]'")
		}
		p, err := netip.ParsePrefix(f[2])
		if err != nil {
			return err
		}
		r := PrefixRule{Prefix: p, Permit: f[1] == "permit"}
		for i := 3; i < len(f); i += 2 {
			if i+1 >= len(f) {
				return fmt.Errorf("dangling %q", f[i])
			}
			n, err := parseBits(f[i+1], p)
			if err != nil {
				return err
			}
			switch f[i] {
			case "ge":
				r.Ge = n
			case "le":
				r.Le = n
			default:
				return fmt.Errorf("unknown prefix option %q", f[i])
			}
		}
		if r.Ge != 0 && r.Le != 0 && r.Ge > r.Le {
			return fmt.Errorf("ge %d > le %d", r.Ge, r.Le)
		}
		rs.Prefixes = append(rs.Prefixes, r)
	case "roa":
		if len(f) < 4 {
			return fmt.Errorf("want 'roa <cidr> [maxlen N] origin <asn>'")
		}
		p, err := netip.ParsePrefix(f[1])
		if err != nil {
			return err
		}
		r := OriginRule{Prefix: p}
		seenOrigin := false
		for i := 2; i < len(f); i += 2 {
			if i+1 >= len(f) {
				return fmt.Errorf("dangling %q", f[i])
			}
			switch f[i] {
			case "maxlen":
				n, err := parseBits(f[i+1], p)
				if err != nil {
					return err
				}
				if n < p.Bits() {
					return fmt.Errorf("maxlen %d shorter than prefix /%d", n, p.Bits())
				}
				r.MaxLen = n
			case "origin":
				asn, err := parseASN(f[i+1])
				if err != nil {
					return err
				}
				r.Origin = asn
				seenOrigin = true
			default:
				return fmt.Errorf("unknown roa option %q", f[i])
			}
		}
		if !seenOrigin {
			return fmt.Errorf("roa needs 'origin <asn>'")
		}
		rs.Origins = append(rs.Origins, r)
	case "peerlock":
		if len(f) < 3 || f[2] != "allow" {
			return fmt.Errorf("want 'peerlock <asn> allow <asn>...'")
		}
		protected, err := parseASN(f[1])
		if err != nil {
			return err
		}
		r := PeerlockRule{Protected: protected}
		for _, tok := range f[3:] {
			asn, err := parseASN(tok)
			if err != nil {
				return err
			}
			r.Allowed = append(r.Allowed, asn)
		}
		rs.Peerlock = append(rs.Peerlock, r)
	case "peerlock-lite":
		if len(f) < 2 {
			return fmt.Errorf("want 'peerlock-lite <asn>...'")
		}
		for _, tok := range f[1:] {
			asn, err := parseASN(tok)
			if err != nil {
				return err
			}
			rs.NoTransit = append(rs.NoTransit, asn)
		}
	case "metro-local":
		if len(f) != 4 || f[2] != "community" {
			return fmt.Errorf("want 'metro-local <name> community <asn>:<value>'")
		}
		c, err := parseCommunity(f[3])
		if err != nil {
			return err
		}
		rs.Metros = append(rs.Metros, MetroRule{Name: f[1], Community: c})
	default:
		return fmt.Errorf("unknown rule %q", f[0])
	}
	return nil
}

func parseBits(s string, p netip.Prefix) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > p.Addr().BitLen() {
		return 0, fmt.Errorf("bad mask length %q", s)
	}
	return n, nil
}

func parseASN(s string) (uint32, error) {
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil || n == 0 {
		return 0, fmt.Errorf("bad ASN %q", s)
	}
	return uint32(n), nil
}

// parseCommunity accepts the conventional asn:value form or a raw
// 32-bit integer.
func parseCommunity(s string) (wire.Community, error) {
	if asnS, valS, ok := strings.Cut(s, ":"); ok {
		asn, err1 := strconv.ParseUint(asnS, 10, 16)
		val, err2 := strconv.ParseUint(valS, 10, 16)
		if err1 != nil || err2 != nil {
			return 0, fmt.Errorf("bad community %q", s)
		}
		return wire.MakeCommunity(uint16(asn), uint16(val)), nil
	}
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad community %q", s)
	}
	return wire.Community(n), nil
}
