// Package policy implements BGP routing policy: prefix lists, AS-path
// and community matching, import/export statement chains with attribute
// actions, and the Gao–Rexford export rules that govern the economics of
// interdomain route propagation.
//
// Policies are what a PEERING server interposes between clients and the
// real Internet (safety filters) and what the synthetic Internet's ASes
// apply at every edge (business relationships). Two layers share this
// package:
//
//   - The interpreted layer here — [Policy] chains of [Cond] predicates
//     and [Action] attribute rewrites — is the flexible form used by the
//     synthetic Internet's per-edge import/export policies, where every
//     AS has its own chain and routes are evaluated one at a time with
//     clone-on-write attribute mutation.
//   - The compiled layer in the nested package policy/compiled lowers
//     prefix-ownership, ROA origin, and Peerlock rules into an immutable
//     verdict structure for the server's ingest hot path, where a filter
//     faces millions of routes and may not allocate. [PrefixList] and
//     [OriginTable] below are thin veneers over that compiler, so the
//     classic router-config API keeps working while sharing one matching
//     engine (and one set of semantics) with the line-rate filters.
//
// Conditions ([MatchPrefixList], [MatchCommunity], [MatchASInPath],
// [MatchOriginAS], [MatchMaxPathLen], [MatchAny], [All]) are route
// predicates; actions ([SetLocalPref], [SetMED], [Prepend],
// [AddCommunity], [RemoveCommunity], [SetNextHop]) rewrite attributes on
// a clone. A [Statement] pairs one condition with actions and an
// accept/reject disposition; a [Policy] is the ordered chain.
package policy

import (
	"fmt"
	"net/netip"

	"peering/internal/policy/compiled"
	"peering/internal/rib"
	"peering/internal/wire"
)

// Relationship classifies the business relationship to a neighbor, from
// the local AS's point of view.
type Relationship int

// Relationship values.
const (
	RelNone     Relationship = iota
	RelCustomer              // neighbor pays us
	RelPeer                  // settlement-free
	RelProvider              // we pay neighbor
)

func (r Relationship) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	default:
		return "none"
	}
}

// ShouldExport implements the Gao–Rexford export rule: a route learned
// from `from` may be exported to `to` only if it was learned from a
// customer (or originated locally, from == RelNone) or is being exported
// to a customer. Everything else would provide free transit. The full
// matrix, learned-from down the side and exported-to across the top:
//
//	from \ to   customer  peer  provider
//	none        yes       yes   yes       (locally originated)
//	customer    yes       yes   yes       (customers pay for reach)
//	peer        yes       no    no        (peer routes only to customers)
//	provider    yes       no    no        (provider routes only to customers)
//
// The two "no" quadrants are exactly the route-leak shapes Peerlock
// rejects at the receiving side (see policy/compiled): a peer or
// provider route re-exported to another peer or provider turns the
// leaking AS into an unpaid transit.
func ShouldExport(from, to Relationship) bool {
	return from == RelCustomer || from == RelNone || to == RelCustomer
}

// LocalPrefFor returns the conventional LOCAL_PREF for a route by the
// relationship it was learned over: customers are most preferred (they
// pay), then peers (free), then providers (we pay).
func LocalPrefFor(rel Relationship) uint32 {
	switch rel {
	case RelCustomer:
		return 300
	case RelPeer:
		return 200
	case RelProvider:
		return 100
	default:
		return rib.DefaultLocalPref
	}
}

// ---------------------------------------------------------------------
// Prefix lists

// PrefixRule is one prefix-list entry: match prefixes covered by Prefix
// with mask length in [Ge, Le]. Zero Ge/Le default to the prefix's own
// length (exact match).
type PrefixRule struct {
	Prefix netip.Prefix
	Ge, Le int
	Permit bool
}

// PrefixList is an ordered prefix filter with a default action for
// non-matching prefixes. Matching runs on a compiled trie (rebuilt
// lazily after Add or a PermitDefault change), so Match costs O(prefix
// bits) regardless of list length instead of the linear scan it used to
// be. Like the rest of this layer it is not safe for concurrent use;
// guard it externally or compile a policy/compiled.Filter instead.
type PrefixList struct {
	rules         []PrefixRule
	PermitDefault bool
	// idx is the compiled form of rules with compiledDefault; it is
	// invalidated by Add and rebuilt on the next Match.
	idx             *compiled.Filter
	compiledLen     int
	compiledDefault bool
}

// NewPrefixList builds a list from rules; the default (no rule matches)
// is deny.
func NewPrefixList(rules ...PrefixRule) *PrefixList {
	return &PrefixList{rules: rules}
}

// Add appends a rule.
func (l *PrefixList) Add(r PrefixRule) { l.rules = append(l.rules, r) }

// compile lowers the current rules through the policy/compiled filter
// compiler. PrefixRule and compiled.PrefixRule share semantics field
// for field, so this is a copy, not a translation.
func (l *PrefixList) compile() *compiled.Filter {
	if l.idx == nil || l.compiledLen != len(l.rules) || l.compiledDefault != l.PermitDefault {
		rs := compiled.RuleSet{DefaultDeny: !l.PermitDefault}
		rs.Prefixes = make([]compiled.PrefixRule, len(l.rules))
		for i, r := range l.rules {
			rs.Prefixes[i] = compiled.PrefixRule{Prefix: r.Prefix, Ge: r.Ge, Le: r.Le, Permit: r.Permit}
		}
		l.idx = compiled.Compile(&rs)
		l.compiledLen, l.compiledDefault = len(l.rules), l.PermitDefault
	}
	return l.idx
}

// Match evaluates p against the list: first rule in insertion order
// that covers p with mask length in the rule's [ge, le] wins; the
// default applies when nothing matches.
func (l *PrefixList) Match(p netip.Prefix) bool {
	return l.compile().MatchPrefix(p)
}

// ---------------------------------------------------------------------
// Origin validation (the testbed's anti-hijack filter)

// OriginTable maps prefixes to their set of authorized origin ASNs —
// the testbed's ROA-like database. A client announcement whose origin
// is not authorized for the exact prefix or a covering prefix is
// rejected. Lookups run on a compiled covering-entry trie (rebuilt
// lazily after Authorize/Revoke), shared with the line-rate origin
// validation in policy/compiled. Not safe for concurrent use.
type OriginTable struct {
	auth map[netip.Prefix]map[uint32]bool
	f    *compiled.Filter // nil when auth has changed since last compile
}

// NewOriginTable returns an empty table.
func NewOriginTable() *OriginTable {
	return &OriginTable{auth: make(map[netip.Prefix]map[uint32]bool)}
}

// Authorize records that asn may originate p and any more-specific of p.
func (o *OriginTable) Authorize(p netip.Prefix, asn uint32) {
	p = p.Masked()
	m := o.auth[p]
	if m == nil {
		m = map[uint32]bool{}
		o.auth[p] = m
	}
	m[asn] = true
	o.f = nil
}

// Revoke removes authorization.
func (o *OriginTable) Revoke(p netip.Prefix, asn uint32) {
	p = p.Masked()
	if m, ok := o.auth[p]; ok {
		delete(m, asn)
		if len(m) == 0 {
			delete(o.auth, p)
		}
		o.f = nil
	}
}

// compile lowers the authorization map into origin rules. Authorize's
// "and any more-specific" contract maps to a MaxLen of the full
// address width (an unbounded ROA).
func (o *OriginTable) compile() *compiled.Filter {
	if o.f == nil {
		var rs compiled.RuleSet
		for p, m := range o.auth {
			for asn := range m {
				rs.Origins = append(rs.Origins, compiled.OriginRule{
					Prefix: p, MaxLen: p.Addr().BitLen(), Origin: asn,
				})
			}
		}
		o.f = compiled.Compile(&rs)
	}
	return o.f
}

// Allowed reports whether asn may originate p: some covering (or exact)
// authorization entry must list it. Unlike an RPKI validator, a prefix
// with no covering entry at all is NOT allowed — the table is a closed
// world, because the testbed knows every prefix it may ever originate.
func (o *OriginTable) Allowed(p netip.Prefix, asn uint32) bool {
	return o.compile().Origin(p, asn) == compiled.OriginValid
}

// ---------------------------------------------------------------------
// Statement policies

// Cond is a route predicate.
type Cond func(*rib.Route) bool

// MatchPrefixList matches routes whose prefix the list permits.
func MatchPrefixList(l *PrefixList) Cond {
	return func(r *rib.Route) bool { return l.Match(r.Prefix) }
}

// MatchCommunity matches routes carrying c.
func MatchCommunity(c wire.Community) Cond {
	return func(r *rib.Route) bool { return r.Attrs.HasCommunity(c) }
}

// MatchASInPath matches routes whose AS_PATH contains asn.
func MatchASInPath(asn uint32) Cond {
	return func(r *rib.Route) bool { return r.Attrs.ContainsAS(asn) }
}

// MatchOriginAS matches routes originated by asn.
func MatchOriginAS(asn uint32) Cond {
	return func(r *rib.Route) bool { return r.Attrs.OriginAS() == asn }
}

// MatchMaxPathLen matches routes whose AS_PATH is at most n hops.
func MatchMaxPathLen(n int) Cond {
	return func(r *rib.Route) bool { return r.Attrs.PathLen() <= n }
}

// MatchAny matches everything.
func MatchAny() Cond { return func(*rib.Route) bool { return true } }

// All combines conditions conjunctively.
func All(conds ...Cond) Cond {
	return func(r *rib.Route) bool {
		for _, c := range conds {
			if !c(r) {
				return false
			}
		}
		return true
	}
}

// Action mutates a route's (already cloned) attributes.
type Action func(*rib.Route)

// SetLocalPref sets LOCAL_PREF.
func SetLocalPref(v uint32) Action {
	return func(r *rib.Route) { r.Attrs.LocalPref, r.Attrs.HasLocalPref = v, true }
}

// SetMED sets MULTI_EXIT_DISC.
func SetMED(v uint32) Action {
	return func(r *rib.Route) { r.Attrs.MED, r.Attrs.HasMED = v, true }
}

// Prepend prepends asn count times.
func Prepend(asn uint32, count int) Action {
	return func(r *rib.Route) { r.Attrs.PrependAS(asn, count) }
}

// AddCommunity attaches c.
func AddCommunity(c wire.Community) Action {
	return func(r *rib.Route) { r.Attrs.AddCommunity(c) }
}

// RemoveCommunity detaches c.
func RemoveCommunity(c wire.Community) Action {
	return func(r *rib.Route) { r.Attrs.RemoveCommunity(c) }
}

// SetNextHop rewrites NEXT_HOP.
func SetNextHop(nh netip.Addr) Action {
	return func(r *rib.Route) { r.Attrs.NextHop = nh }
}

// Statement is one policy clause: if Cond matches, run Actions and
// accept or reject.
type Statement struct {
	Name    string
	Cond    Cond
	Actions []Action
	Accept  bool
}

// Policy is an ordered chain of statements with a default disposition.
type Policy struct {
	Name          string
	Statements    []Statement
	AcceptDefault bool
}

// Accept is the identity policy.
var Accept = &Policy{Name: "accept-all", AcceptDefault: true}

// Reject drops everything.
var Reject = &Policy{Name: "reject-all"}

// Apply evaluates the policy on r. It returns a route with (possibly)
// rewritten attributes and true, or nil and false when rejected. The
// input route is never mutated: the first action clones.
func (p *Policy) Apply(r *rib.Route) (*rib.Route, bool) {
	if p == nil {
		return r, true
	}
	for _, s := range p.Statements {
		if s.Cond != nil && !s.Cond(r) {
			continue
		}
		if !s.Accept {
			return nil, false
		}
		if len(s.Actions) == 0 {
			return r, true
		}
		out := *r
		out.Attrs = r.Attrs.Clone()
		for _, a := range s.Actions {
			a(&out)
		}
		return &out, true
	}
	if p.AcceptDefault {
		return r, true
	}
	return nil, false
}

// Then appends a statement, returning p for chaining.
func (p *Policy) Then(s Statement) *Policy {
	p.Statements = append(p.Statements, s)
	return p
}

func (p *Policy) String() string {
	if p == nil {
		return "<nil policy>"
	}
	return fmt.Sprintf("policy %s (%d statements, default %v)", p.Name, len(p.Statements), p.AcceptDefault)
}

// ---------------------------------------------------------------------
// Peering policies (how ASes respond to peering requests, §4.1)

// PeeringKind is an AS's published willingness to peer.
type PeeringKind int

// Peering policy kinds observed at AMS-IX (§4.1): 48 open, 12 closed,
// 40 case-by-case, 15 unlisted among non-route-server members.
const (
	PeeringOpen PeeringKind = iota
	PeeringSelective
	PeeringCaseByCase
	PeeringClosed
	PeeringUnlisted
)

func (k PeeringKind) String() string {
	switch k {
	case PeeringOpen:
		return "open"
	case PeeringSelective:
		return "selective"
	case PeeringCaseByCase:
		return "case-by-case"
	case PeeringClosed:
		return "closed"
	default:
		return "unlisted"
	}
}
