// Package policy implements BGP routing policy: prefix lists, AS-path
// and community matching, import/export statement chains with attribute
// actions, and the Gao–Rexford export rules that govern the economics of
// interdomain route propagation.
//
// Policies are what a PEERING server interposes between clients and the
// real Internet (safety filters) and what the synthetic Internet's ASes
// apply at every edge (business relationships).
package policy

import (
	"fmt"
	"net/netip"

	"peering/internal/rib"
	"peering/internal/trie"
	"peering/internal/wire"
)

// Relationship classifies the business relationship to a neighbor, from
// the local AS's point of view.
type Relationship int

// Relationship values.
const (
	RelNone     Relationship = iota
	RelCustomer              // neighbor pays us
	RelPeer                  // settlement-free
	RelProvider              // we pay neighbor
)

func (r Relationship) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	default:
		return "none"
	}
}

// ShouldExport implements the Gao–Rexford export rule: a route learned
// from `from` may be exported to `to` only if it was learned from a
// customer (or originated locally, from == RelNone) or is being exported
// to a customer. Everything else would provide free transit.
func ShouldExport(from, to Relationship) bool {
	return from == RelCustomer || from == RelNone || to == RelCustomer
}

// LocalPrefFor returns the conventional LOCAL_PREF for a route by the
// relationship it was learned over: customers are most preferred (they
// pay), then peers (free), then providers (we pay).
func LocalPrefFor(rel Relationship) uint32 {
	switch rel {
	case RelCustomer:
		return 300
	case RelPeer:
		return 200
	case RelProvider:
		return 100
	default:
		return rib.DefaultLocalPref
	}
}

// ---------------------------------------------------------------------
// Prefix lists

// PrefixRule is one prefix-list entry: match prefixes covered by Prefix
// with mask length in [Ge, Le]. Zero Ge/Le default to the prefix's own
// length (exact match).
type PrefixRule struct {
	Prefix netip.Prefix
	Ge, Le int
	Permit bool
}

// PrefixList is an ordered prefix filter with a default action for
// non-matching prefixes.
type PrefixList struct {
	rules         []PrefixRule
	PermitDefault bool
}

// NewPrefixList builds a list from rules; the default (no rule matches)
// is deny.
func NewPrefixList(rules ...PrefixRule) *PrefixList {
	return &PrefixList{rules: rules}
}

// Add appends a rule.
func (l *PrefixList) Add(r PrefixRule) { l.rules = append(l.rules, r) }

// Match evaluates p against the list in order, first match wins.
func (l *PrefixList) Match(p netip.Prefix) bool {
	for _, r := range l.rules {
		ge, le := r.Ge, r.Le
		if ge == 0 {
			ge = r.Prefix.Bits()
		}
		if le == 0 {
			le = r.Prefix.Bits()
		}
		if p.Bits() < ge || p.Bits() > le {
			continue
		}
		if !r.Prefix.Contains(p.Addr()) || r.Prefix.Bits() > p.Bits() {
			continue
		}
		return r.Permit
	}
	return l.PermitDefault
}

// ---------------------------------------------------------------------
// Origin validation (the testbed's anti-hijack filter)

// OriginTable maps prefixes to their set of authorized origin ASNs —
// the testbed's ROA-like database. A client announcement whose origin
// is not authorized for the exact prefix or a covering prefix is
// rejected.
type OriginTable struct {
	t *trie.Trie[map[uint32]bool]
}

// NewOriginTable returns an empty table.
func NewOriginTable() *OriginTable {
	return &OriginTable{t: trie.New[map[uint32]bool]()}
}

// Authorize records that asn may originate p and any more-specific of p.
func (o *OriginTable) Authorize(p netip.Prefix, asn uint32) {
	m, ok := o.t.Get(p)
	if !ok {
		m = map[uint32]bool{}
		o.t.Insert(p, m)
	}
	m[asn] = true
}

// Revoke removes authorization.
func (o *OriginTable) Revoke(p netip.Prefix, asn uint32) {
	if m, ok := o.t.Get(p); ok {
		delete(m, asn)
		if len(m) == 0 {
			o.t.Delete(p)
		}
	}
}

// Allowed reports whether asn may originate p: some covering (or exact)
// authorization entry must list it.
func (o *OriginTable) Allowed(p netip.Prefix, asn uint32) bool {
	_, m, ok := o.t.LookupPrefix(p)
	return ok && m[asn]
}

// ---------------------------------------------------------------------
// Statement policies

// Cond is a route predicate.
type Cond func(*rib.Route) bool

// MatchPrefixList matches routes whose prefix the list permits.
func MatchPrefixList(l *PrefixList) Cond {
	return func(r *rib.Route) bool { return l.Match(r.Prefix) }
}

// MatchCommunity matches routes carrying c.
func MatchCommunity(c wire.Community) Cond {
	return func(r *rib.Route) bool { return r.Attrs.HasCommunity(c) }
}

// MatchASInPath matches routes whose AS_PATH contains asn.
func MatchASInPath(asn uint32) Cond {
	return func(r *rib.Route) bool { return r.Attrs.ContainsAS(asn) }
}

// MatchOriginAS matches routes originated by asn.
func MatchOriginAS(asn uint32) Cond {
	return func(r *rib.Route) bool { return r.Attrs.OriginAS() == asn }
}

// MatchMaxPathLen matches routes whose AS_PATH is at most n hops.
func MatchMaxPathLen(n int) Cond {
	return func(r *rib.Route) bool { return r.Attrs.PathLen() <= n }
}

// MatchAny matches everything.
func MatchAny() Cond { return func(*rib.Route) bool { return true } }

// All combines conditions conjunctively.
func All(conds ...Cond) Cond {
	return func(r *rib.Route) bool {
		for _, c := range conds {
			if !c(r) {
				return false
			}
		}
		return true
	}
}

// Action mutates a route's (already cloned) attributes.
type Action func(*rib.Route)

// SetLocalPref sets LOCAL_PREF.
func SetLocalPref(v uint32) Action {
	return func(r *rib.Route) { r.Attrs.LocalPref, r.Attrs.HasLocalPref = v, true }
}

// SetMED sets MULTI_EXIT_DISC.
func SetMED(v uint32) Action {
	return func(r *rib.Route) { r.Attrs.MED, r.Attrs.HasMED = v, true }
}

// Prepend prepends asn count times.
func Prepend(asn uint32, count int) Action {
	return func(r *rib.Route) { r.Attrs.PrependAS(asn, count) }
}

// AddCommunity attaches c.
func AddCommunity(c wire.Community) Action {
	return func(r *rib.Route) { r.Attrs.AddCommunity(c) }
}

// RemoveCommunity detaches c.
func RemoveCommunity(c wire.Community) Action {
	return func(r *rib.Route) { r.Attrs.RemoveCommunity(c) }
}

// SetNextHop rewrites NEXT_HOP.
func SetNextHop(nh netip.Addr) Action {
	return func(r *rib.Route) { r.Attrs.NextHop = nh }
}

// Statement is one policy clause: if Cond matches, run Actions and
// accept or reject.
type Statement struct {
	Name    string
	Cond    Cond
	Actions []Action
	Accept  bool
}

// Policy is an ordered chain of statements with a default disposition.
type Policy struct {
	Name          string
	Statements    []Statement
	AcceptDefault bool
}

// Accept is the identity policy.
var Accept = &Policy{Name: "accept-all", AcceptDefault: true}

// Reject drops everything.
var Reject = &Policy{Name: "reject-all"}

// Apply evaluates the policy on r. It returns a route with (possibly)
// rewritten attributes and true, or nil and false when rejected. The
// input route is never mutated: the first action clones.
func (p *Policy) Apply(r *rib.Route) (*rib.Route, bool) {
	if p == nil {
		return r, true
	}
	for _, s := range p.Statements {
		if s.Cond != nil && !s.Cond(r) {
			continue
		}
		if !s.Accept {
			return nil, false
		}
		if len(s.Actions) == 0 {
			return r, true
		}
		out := *r
		out.Attrs = r.Attrs.Clone()
		for _, a := range s.Actions {
			a(&out)
		}
		return &out, true
	}
	if p.AcceptDefault {
		return r, true
	}
	return nil, false
}

// Then appends a statement, returning p for chaining.
func (p *Policy) Then(s Statement) *Policy {
	p.Statements = append(p.Statements, s)
	return p
}

func (p *Policy) String() string {
	if p == nil {
		return "<nil policy>"
	}
	return fmt.Sprintf("policy %s (%d statements, default %v)", p.Name, len(p.Statements), p.AcceptDefault)
}

// ---------------------------------------------------------------------
// Peering policies (how ASes respond to peering requests, §4.1)

// PeeringKind is an AS's published willingness to peer.
type PeeringKind int

// Peering policy kinds observed at AMS-IX (§4.1): 48 open, 12 closed,
// 40 case-by-case, 15 unlisted among non-route-server members.
const (
	PeeringOpen PeeringKind = iota
	PeeringSelective
	PeeringCaseByCase
	PeeringClosed
	PeeringUnlisted
)

func (k PeeringKind) String() string {
	switch k {
	case PeeringOpen:
		return "open"
	case PeeringSelective:
		return "selective"
	case PeeringCaseByCase:
		return "case-by-case"
	case PeeringClosed:
		return "closed"
	default:
		return "unlisted"
	}
}
