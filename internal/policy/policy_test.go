package policy

import (
	"net/netip"
	"testing"
	"testing/quick"

	"peering/internal/rib"
	"peering/internal/wire"
)

func prefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func addr(s string) netip.Addr     { return netip.MustParseAddr(s) }

func route(p string, path ...uint32) *rib.Route {
	return &rib.Route{
		Prefix: prefix(p),
		Attrs: &wire.Attrs{
			Origin:  wire.OriginIGP,
			ASPath:  []wire.Segment{{Type: wire.SegSequence, ASNs: path}},
			NextHop: addr("192.0.2.1"),
		},
		Src: rib.PeerKey{Addr: addr("192.0.2.1")},
	}
}

func TestShouldExportGaoRexford(t *testing.T) {
	cases := []struct {
		from, to Relationship
		want     bool
	}{
		// Customer routes go everywhere.
		{RelCustomer, RelCustomer, true},
		{RelCustomer, RelPeer, true},
		{RelCustomer, RelProvider, true},
		// Own routes go everywhere.
		{RelNone, RelPeer, true},
		{RelNone, RelProvider, true},
		// Peer/provider routes only to customers.
		{RelPeer, RelCustomer, true},
		{RelProvider, RelCustomer, true},
		{RelPeer, RelPeer, false},
		{RelPeer, RelProvider, false},
		{RelProvider, RelPeer, false},
		{RelProvider, RelProvider, false},
	}
	for _, c := range cases {
		if got := ShouldExport(c.from, c.to); got != c.want {
			t.Errorf("ShouldExport(%v, %v) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestLocalPrefOrdering(t *testing.T) {
	if !(LocalPrefFor(RelCustomer) > LocalPrefFor(RelPeer) && LocalPrefFor(RelPeer) > LocalPrefFor(RelProvider)) {
		t.Fatal("relationship preference order violated")
	}
}

func TestPrefixListExactAndRanges(t *testing.T) {
	l := NewPrefixList(
		PrefixRule{Prefix: prefix("100.64.0.0/19"), Ge: 19, Le: 24, Permit: true},
		PrefixRule{Prefix: prefix("203.0.113.0/24"), Permit: true}, // exact only
	)
	cases := []struct {
		p    string
		want bool
	}{
		{"100.64.0.0/19", true},
		{"100.64.0.0/24", true},
		{"100.64.31.0/24", true},
		{"100.64.0.0/25", false}, // longer than le
		{"100.64.0.0/18", false}, // shorter than ge (and not covered)
		{"203.0.113.0/24", true},
		{"203.0.113.0/25", false}, // exact-only rule
		{"8.8.8.0/24", false},     // default deny
	}
	for _, c := range cases {
		if got := l.Match(prefix(c.p)); got != c.want {
			t.Errorf("Match(%s) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPrefixListFirstMatchWins(t *testing.T) {
	l := NewPrefixList(
		PrefixRule{Prefix: prefix("10.1.0.0/16"), Ge: 16, Le: 32, Permit: false},
		PrefixRule{Prefix: prefix("10.0.0.0/8"), Ge: 8, Le: 32, Permit: true},
	)
	if l.Match(prefix("10.1.2.0/24")) {
		t.Fatal("earlier deny must win")
	}
	if !l.Match(prefix("10.2.0.0/16")) {
		t.Fatal("later permit must apply")
	}
}

func TestPrefixListPermitDefault(t *testing.T) {
	l := NewPrefixList(PrefixRule{Prefix: prefix("10.0.0.0/8"), Ge: 8, Le: 32, Permit: false})
	l.PermitDefault = true
	if l.Match(prefix("10.0.0.0/16")) {
		t.Fatal("deny rule ignored")
	}
	if !l.Match(prefix("192.168.0.0/16")) {
		t.Fatal("default permit ignored")
	}
}

func TestOriginTable(t *testing.T) {
	o := NewOriginTable()
	o.Authorize(prefix("100.64.0.0/19"), 47065)
	if !o.Allowed(prefix("100.64.0.0/19"), 47065) {
		t.Fatal("exact authorization rejected")
	}
	if !o.Allowed(prefix("100.64.5.0/24"), 47065) {
		t.Fatal("covered more-specific rejected")
	}
	if o.Allowed(prefix("100.64.0.0/19"), 65000) {
		t.Fatal("unauthorized ASN allowed")
	}
	if o.Allowed(prefix("8.8.8.0/24"), 47065) {
		t.Fatal("uncovered prefix allowed")
	}
	// A /18 that covers the /19 is NOT authorized (announcement wider
	// than the allocation).
	if o.Allowed(prefix("100.64.0.0/18"), 47065) {
		t.Fatal("covering aggregate allowed — hijack of adjacent space")
	}
	o.Revoke(prefix("100.64.0.0/19"), 47065)
	if o.Allowed(prefix("100.64.0.0/19"), 47065) {
		t.Fatal("revoked authorization still allowed")
	}
}

// TestOriginTableNestedEntries pins the documented "some covering
// entry" semantics the compiled backend restored: an aggregate's
// authorization extends to more-specifics even when a narrower entry
// for a different origin nests inside it. (The old LookupPrefix-based
// scan consulted only the most specific covering entry and got this
// wrong.)
func TestOriginTableNestedEntries(t *testing.T) {
	o := NewOriginTable()
	o.Authorize(prefix("100.64.0.0/19"), 47065)
	o.Authorize(prefix("100.64.5.0/24"), 64500)
	if !o.Allowed(prefix("100.64.5.0/24"), 64500) {
		t.Fatal("nested entry's own origin rejected")
	}
	if !o.Allowed(prefix("100.64.5.0/24"), 47065) {
		t.Fatal("aggregate authorization must extend under a nested entry")
	}
	if o.Allowed(prefix("100.64.0.0/19"), 64500) {
		t.Fatal("nested /24 authorization must not widen to the /19")
	}
	// Mutation after first lookup must invalidate the compiled form.
	o.Revoke(prefix("100.64.0.0/19"), 47065)
	if o.Allowed(prefix("100.64.5.0/24"), 47065) {
		t.Fatal("revocation not visible after recompile")
	}
	if !o.Allowed(prefix("100.64.5.0/24"), 64500) {
		t.Fatal("revoking one origin must not disturb the other entry")
	}
}

// matchReference is the original linear-scan PrefixList.Match,
// preserved as the semantic oracle for the compiled implementation.
func matchReference(rules []PrefixRule, permitDefault bool, p netip.Prefix) bool {
	for _, r := range rules {
		ge, le := r.Ge, r.Le
		if ge == 0 {
			ge = r.Prefix.Bits()
		}
		if le == 0 {
			le = r.Prefix.Bits()
		}
		if p.Bits() < ge || p.Bits() > le {
			continue
		}
		if !r.Prefix.Contains(p.Addr()) || r.Prefix.Bits() > p.Bits() {
			continue
		}
		return r.Permit
	}
	return permitDefault
}

// TestPrefixListMatchesLinearReference drives the compiled Match
// against the old linear scan over randomized rule lists and probes —
// the regression fence for the satellite "replace linear scans" fix.
func TestPrefixListMatchesLinearReference(t *testing.T) {
	rnd := func(seed *uint64) uint64 { // xorshift, deterministic
		*seed ^= *seed << 13
		*seed ^= *seed >> 7
		*seed ^= *seed << 17
		return *seed
	}
	seed := uint64(20140827)
	for trial := 0; trial < 50; trial++ {
		var rules []PrefixRule
		n := int(rnd(&seed)%20) + 1
		for i := 0; i < n; i++ {
			v := rnd(&seed)
			bits := int(v % 25) // /0../24 rule prefixes
			p := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(v >> 8), byte(v >> 16), byte(v >> 24), byte(v >> 32)}), bits).Masked()
			r := PrefixRule{Prefix: p, Permit: v&1 == 0}
			if v&2 != 0 {
				r.Ge = bits + int(v>>40%8)
			}
			if v&4 != 0 {
				r.Le = min(32, bits+int(v>>43%12))
			}
			rules = append(rules, r)
		}
		l := NewPrefixList(rules...)
		l.PermitDefault = trial%2 == 0
		for probe := 0; probe < 200; probe++ {
			v := rnd(&seed)
			p := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(v >> 8), byte(v >> 16), byte(v >> 24), byte(v >> 32)}), int(v%33)).Masked()
			// Half the probes land inside a rule's space so matches are common.
			if probe%2 == 0 && len(rules) > 0 {
				base := rules[probe%len(rules)].Prefix
				bits := base.Bits() + int(v%uint64(33-base.Bits()))
				p = netip.PrefixFrom(base.Addr(), bits).Masked()
			}
			want := matchReference(rules, l.PermitDefault, p)
			if got := l.Match(p); got != want {
				t.Fatalf("trial %d: Match(%v) = %v, reference says %v\nrules: %+v (default %v)",
					trial, p, got, want, rules, l.PermitDefault)
			}
		}
		// Exercise the Add invalidation path mid-trial.
		extra := PrefixRule{Prefix: prefix("203.0.113.0/24"), Permit: true}
		l.Add(extra)
		rules = append(rules, extra)
		if got, want := l.Match(prefix("203.0.113.0/24")), matchReference(rules, l.PermitDefault, prefix("203.0.113.0/24")); got != want {
			t.Fatalf("trial %d after Add: Match = %v, want %v", trial, got, want)
		}
	}
}

func TestPolicyApplyAcceptRejectDefault(t *testing.T) {
	p := (&Policy{Name: "test"}).
		Then(Statement{Cond: MatchOriginAS(666), Accept: false}).
		Then(Statement{Cond: MatchPrefixList(NewPrefixList(PrefixRule{Prefix: prefix("10.0.0.0/8"), Ge: 8, Le: 24, Permit: true})), Accept: true})

	if _, ok := p.Apply(route("10.0.0.0/16", 100, 666)); ok {
		t.Fatal("route from bad origin accepted")
	}
	if _, ok := p.Apply(route("10.0.0.0/16", 100, 200)); !ok {
		t.Fatal("permitted prefix rejected")
	}
	if _, ok := p.Apply(route("192.168.0.0/16", 100, 200)); ok {
		t.Fatal("default deny not applied")
	}
}

func TestPolicyActionsCloneNotMutate(t *testing.T) {
	p := (&Policy{Name: "act"}).Then(Statement{
		Cond:   MatchAny(),
		Accept: true,
		Actions: []Action{
			SetLocalPref(250),
			Prepend(47065, 2),
			AddCommunity(wire.MakeCommunity(47065, 1)),
			SetMED(10),
		},
	})
	in := route("10.0.0.0/16", 100, 200)
	out, ok := p.Apply(in)
	if !ok {
		t.Fatal("rejected")
	}
	if !out.Attrs.HasLocalPref || out.Attrs.LocalPref != 250 {
		t.Fatalf("local pref = %+v", out.Attrs)
	}
	if out.Attrs.PathString() != "47065 47065 100 200" {
		t.Fatalf("path = %q", out.Attrs.PathString())
	}
	if !out.Attrs.HasCommunity(wire.MakeCommunity(47065, 1)) || !out.Attrs.HasMED || out.Attrs.MED != 10 {
		t.Fatalf("attrs = %+v", out.Attrs)
	}
	// Input untouched.
	if in.Attrs.HasLocalPref || in.Attrs.PathLen() != 2 || len(in.Attrs.Communities) != 0 {
		t.Fatal("policy mutated input route")
	}
}

func TestPolicyNoActionsReturnsSameRoute(t *testing.T) {
	p := (&Policy{}).Then(Statement{Cond: MatchAny(), Accept: true})
	in := route("10.0.0.0/16", 100)
	out, ok := p.Apply(in)
	if !ok || out != in {
		t.Fatal("actionless accept should pass route through unchanged")
	}
}

func TestNilPolicyAccepts(t *testing.T) {
	var p *Policy
	in := route("10.0.0.0/16", 100)
	out, ok := p.Apply(in)
	if !ok || out != in {
		t.Fatal("nil policy must accept unchanged")
	}
}

func TestConditions(t *testing.T) {
	r := route("10.0.0.0/16", 100, 200, 300)
	r.Attrs.AddCommunity(wire.CommNoExport)
	if !MatchCommunity(wire.CommNoExport)(r) || MatchCommunity(wire.CommNoAdvertise)(r) {
		t.Fatal("MatchCommunity wrong")
	}
	if !MatchASInPath(200)(r) || MatchASInPath(999)(r) {
		t.Fatal("MatchASInPath wrong")
	}
	if !MatchOriginAS(300)(r) || MatchOriginAS(100)(r) {
		t.Fatal("MatchOriginAS wrong")
	}
	if !MatchMaxPathLen(3)(r) || MatchMaxPathLen(2)(r) {
		t.Fatal("MatchMaxPathLen wrong")
	}
	if !All(MatchASInPath(200), MatchOriginAS(300))(r) {
		t.Fatal("All conjunction wrong")
	}
	if All(MatchASInPath(200), MatchOriginAS(999))(r) {
		t.Fatal("All should fail when any cond fails")
	}
}

func TestRemoveCommunityAction(t *testing.T) {
	p := (&Policy{}).Then(Statement{Cond: MatchAny(), Accept: true,
		Actions: []Action{RemoveCommunity(wire.CommNoExport)}})
	r := route("10.0.0.0/16", 100)
	r.Attrs.AddCommunity(wire.CommNoExport)
	out, _ := p.Apply(r)
	if out.Attrs.HasCommunity(wire.CommNoExport) {
		t.Fatal("community not removed")
	}
	if !r.Attrs.HasCommunity(wire.CommNoExport) {
		t.Fatal("input mutated")
	}
}

func TestSetNextHopAction(t *testing.T) {
	p := (&Policy{}).Then(Statement{Cond: MatchAny(), Accept: true,
		Actions: []Action{SetNextHop(addr("203.0.113.9"))}})
	out, _ := p.Apply(route("10.0.0.0/16", 100))
	if out.Attrs.NextHop != addr("203.0.113.9") {
		t.Fatalf("next hop = %v", out.Attrs.NextHop)
	}
}

// Property: for any relationship pair, a route is exported through two
// hops only if the valley-free condition holds end to end. This encodes
// "no free transit": once a route travels peer→ or provider→, it can
// only ever descend to customers.
func TestQuickValleyFree(t *testing.T) {
	rels := []Relationship{RelCustomer, RelPeer, RelProvider}
	f := func(a, b uint8) bool {
		from, mid := rels[int(a)%3], rels[int(b)%3]
		// If hop 1 (from → us) was not from a customer, we may only
		// export to customers; check every possible second hop.
		if ShouldExport(from, mid) && from != RelCustomer {
			return mid == RelCustomer
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPeeringKindString(t *testing.T) {
	kinds := map[PeeringKind]string{
		PeeringOpen: "open", PeeringSelective: "selective",
		PeeringCaseByCase: "case-by-case", PeeringClosed: "closed", PeeringUnlisted: "unlisted",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%v.String() = %q", int(k), k.String())
		}
	}
}
