// Package dampen implements RFC 2439 route-flap dampening. PEERING
// servers apply it to client announcements so that a misbehaving
// experiment cannot destabilize routing for the rest of the Internet
// (§3 "Enforcing safety").
//
// Each (prefix, source) pair accumulates a penalty on every flap
// (withdrawal or attribute change). The penalty decays exponentially
// with a configurable half-life. When it crosses the suppress threshold
// the route is suppressed — not propagated — until decay brings it back
// under the reuse threshold.
//
// A damper is observable through an optional Metrics instance
// (Instrument): penalty applications by kind, suppress/reuse threshold
// crossings, and a scrape-time gauge of tracked records.
package dampen

import (
	"math"
	"net/netip"
	"sync"
	"time"

	"peering/internal/clock"
)

// Config holds the dampening parameters. The defaults mirror the
// classic Cisco/RFC 2439 values.
type Config struct {
	// Penalty added per flap.
	FlapPenalty float64
	// WithdrawPenalty added on explicit withdrawals (usually equal to
	// FlapPenalty).
	WithdrawPenalty float64
	// HalfLife of the exponential decay.
	HalfLife time.Duration
	// SuppressThreshold above which the route is suppressed.
	SuppressThreshold float64
	// ReuseThreshold below which a suppressed route is reusable.
	ReuseThreshold float64
	// MaxSuppress bounds how long a route can stay suppressed; the
	// penalty is capped so that it decays below ReuseThreshold within
	// this interval.
	MaxSuppress time.Duration
}

// DefaultConfig is the conventional parameter set: penalty 1000/flap,
// 15-minute half-life, suppress at 2000, reuse at 750, one hour max.
func DefaultConfig() Config {
	return Config{
		FlapPenalty:       1000,
		WithdrawPenalty:   1000,
		HalfLife:          15 * time.Minute,
		SuppressThreshold: 2000,
		ReuseThreshold:    750,
		MaxSuppress:       time.Hour,
	}
}

// maxPenalty returns the ceiling implied by MaxSuppress: the penalty
// value that decays to exactly ReuseThreshold after MaxSuppress.
func (c Config) maxPenalty() float64 {
	return c.ReuseThreshold * math.Exp2(float64(c.MaxSuppress)/float64(c.HalfLife))
}

// Key identifies a dampened route: prefix + the announcing source.
type Key struct {
	Prefix netip.Prefix
	Source netip.Addr
}

// state is the per-key dampening record.
type state struct {
	penalty    float64
	lastUpdate time.Time
	suppressed bool
}

// Damper tracks flap penalties. It is safe for concurrent use.
type Damper struct {
	cfg     Config
	clock   clock.Clock
	metrics *Metrics // set by Instrument; nil disables recording

	mu     sync.Mutex
	states map[Key]*state
}

// New returns a Damper with cfg, using clk for decay timing.
func New(cfg Config, clk clock.Clock) *Damper {
	if clk == nil {
		clk = clock.System
	}
	return &Damper{cfg: cfg, clock: clk, states: make(map[Key]*state)}
}

// decayTo brings s's penalty forward to time now.
func (d *Damper) decayTo(s *state, now time.Time) {
	dt := now.Sub(s.lastUpdate)
	if dt <= 0 {
		return
	}
	s.penalty *= math.Exp2(-float64(dt) / float64(d.cfg.HalfLife))
	s.lastUpdate = now
	if s.suppressed && s.penalty < d.cfg.ReuseThreshold {
		s.suppressed = false
		d.metrics.reuse()
	}
	// Drop negligible state.
	if s.penalty < 1 {
		s.penalty = 0
	}
}

// recordPenalty applies a flap of weight w and metric kind to key k and
// returns whether the route is now suppressed.
func (d *Damper) recordPenalty(k Key, w float64, kind string) bool {
	now := d.clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.states[k]
	if s == nil {
		s = &state{lastUpdate: now}
		d.states[k] = s
	}
	d.decayTo(s, now)
	s.penalty += w
	if maxP := d.cfg.maxPenalty(); s.penalty > maxP {
		s.penalty = maxP
	}
	d.metrics.penalty(kind)
	if s.penalty >= d.cfg.SuppressThreshold && !s.suppressed {
		s.suppressed = true
		d.metrics.suppress()
	}
	return s.suppressed
}

// RecordFlap registers a re-announcement (attribute change) of k,
// returning true if the route is suppressed.
func (d *Damper) RecordFlap(k Key) bool {
	return d.recordPenalty(k, d.cfg.FlapPenalty, "flap")
}

// RecordWithdraw registers a withdrawal of k, returning true if the
// route is suppressed.
func (d *Damper) RecordWithdraw(k Key) bool {
	return d.recordPenalty(k, d.cfg.WithdrawPenalty, "withdraw")
}

// Suppressed reports whether k is currently suppressed, applying decay
// first.
func (d *Damper) Suppressed(k Key) bool {
	now := d.clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.states[k]
	if s == nil {
		return false
	}
	d.decayTo(s, now)
	return s.suppressed
}

// Penalty returns the current decayed penalty for k (0 if untracked).
func (d *Damper) Penalty(k Key) float64 {
	now := d.clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.states[k]
	if s == nil {
		return 0
	}
	d.decayTo(s, now)
	return s.penalty
}

// ReuseIn estimates how long until k's penalty decays below the reuse
// threshold (zero if not suppressed).
func (d *Damper) ReuseIn(k Key) time.Duration {
	now := d.clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.states[k]
	if s == nil {
		return 0
	}
	d.decayTo(s, now)
	if !s.suppressed || s.penalty <= d.cfg.ReuseThreshold {
		return 0
	}
	halfLives := math.Log2(s.penalty / d.cfg.ReuseThreshold)
	return time.Duration(halfLives * float64(d.cfg.HalfLife))
}

// Sweep removes fully decayed records, returning how many remain.
// Long-running servers call this periodically to bound memory.
func (d *Damper) Sweep() int {
	now := d.clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	for k, s := range d.states {
		d.decayTo(s, now)
		if s.penalty == 0 && !s.suppressed {
			delete(d.states, k)
		}
	}
	return len(d.states)
}

// Tracked reports how many (prefix, source) records exist.
func (d *Damper) Tracked() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.states)
}
