package dampen

import "peering/internal/telemetry"

// Metrics is the damper's instrument set. Attach one to a Damper with
// Instrument; a damper without metrics (the zero state) records
// nothing and pays only a nil check per event.
type Metrics struct {
	// Penalties counts penalty applications by kind ("flap" for
	// re-announcements, "withdraw" for explicit withdrawals).
	Penalties *telemetry.CounterVec
	// Suppressions counts routes crossing the suppress threshold;
	// Reuses counts suppressed routes decaying back below the reuse
	// threshold. The difference is how many routes are suppressed now.
	Suppressions *telemetry.Counter
	Reuses       *telemetry.Counter
}

// Instrument registers the dampening metrics on r and attaches them to
// d, including a scrape-time gauge of tracked (prefix, source) records.
// Call at most once per damper, before concurrent use begins.
func (d *Damper) Instrument(r *telemetry.Registry) *Metrics {
	m := &Metrics{
		Penalties: r.CounterVec("peering_dampen_penalties_total",
			"Flap-dampening penalty applications, by kind.", "kind"),
		Suppressions: r.Counter("peering_dampen_suppressions_total",
			"Routes that crossed the suppress threshold."),
		Reuses: r.Counter("peering_dampen_reuses_total",
			"Suppressed routes that decayed below the reuse threshold."),
	}
	r.GaugeFunc("peering_dampen_tracked_keys",
		"Dampening records currently tracked (prefix, source pairs).",
		func() float64 { return float64(d.Tracked()) })
	d.metrics = m
	return m
}

func (m *Metrics) penalty(kind string) {
	if m != nil {
		m.Penalties.With(kind).Inc()
	}
}

func (m *Metrics) suppress() {
	if m != nil {
		m.Suppressions.Inc()
	}
}

func (m *Metrics) reuse() {
	if m != nil {
		m.Reuses.Inc()
	}
}
