package dampen

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"peering/internal/clock"
)

var epoch = time.Date(2014, 10, 27, 0, 0, 0, 0, time.UTC)

func key(p, s string) Key {
	return Key{Prefix: netip.MustParsePrefix(p), Source: netip.MustParseAddr(s)}
}

func newTest() (*Damper, *clock.Virtual) {
	v := clock.NewVirtual(epoch)
	return New(DefaultConfig(), v), v
}

func TestSingleFlapNotSuppressed(t *testing.T) {
	d, _ := newTest()
	k := key("100.64.0.0/24", "10.0.0.1")
	if d.RecordFlap(k) {
		t.Fatal("one flap (penalty 1000 < 2000) suppressed")
	}
	if d.Suppressed(k) {
		t.Fatal("Suppressed after one flap")
	}
	if got := d.Penalty(k); got != 1000 {
		t.Fatalf("penalty = %v, want 1000", got)
	}
}

func TestTwoQuickFlapsSuppress(t *testing.T) {
	d, _ := newTest()
	k := key("100.64.0.0/24", "10.0.0.1")
	d.RecordFlap(k)
	if !d.RecordFlap(k) {
		t.Fatal("two immediate flaps (penalty 2000) should suppress")
	}
	if !d.Suppressed(k) {
		t.Fatal("Suppressed = false after crossing threshold")
	}
}

func TestDecayReusesRoute(t *testing.T) {
	d, v := newTest()
	k := key("100.64.0.0/24", "10.0.0.1")
	d.RecordFlap(k)
	d.RecordFlap(k)
	if !d.Suppressed(k) {
		t.Fatal("not suppressed")
	}
	// Penalty 2000 → reuse at 750 needs log2(2000/750) ≈ 1.415 half
	// lives ≈ 21.2 min. At 20 minutes: still suppressed.
	v.Advance(20 * time.Minute)
	if !d.Suppressed(k) {
		t.Fatal("suppression lifted too early")
	}
	v.Advance(2 * time.Minute)
	if d.Suppressed(k) {
		t.Fatal("suppression not lifted after reuse threshold crossed")
	}
}

func TestReuseInEstimate(t *testing.T) {
	d, v := newTest()
	k := key("100.64.0.0/24", "10.0.0.1")
	d.RecordFlap(k)
	d.RecordFlap(k)
	in := d.ReuseIn(k)
	want := time.Duration(math.Log2(2000.0/750.0) * float64(15*time.Minute))
	if diff := (in - want).Abs(); diff > time.Second {
		t.Fatalf("ReuseIn = %v, want ≈%v", in, want)
	}
	v.Advance(in + time.Second)
	if d.Suppressed(k) {
		t.Fatal("still suppressed after ReuseIn elapsed")
	}
	if d.ReuseIn(k) != 0 {
		t.Fatal("ReuseIn nonzero when not suppressed")
	}
}

func TestHalfLifeDecayExact(t *testing.T) {
	d, v := newTest()
	k := key("100.64.0.0/24", "10.0.0.1")
	d.RecordFlap(k)
	v.Advance(15 * time.Minute)
	if got := d.Penalty(k); math.Abs(got-500) > 0.5 {
		t.Fatalf("penalty after one half-life = %v, want ≈500", got)
	}
	v.Advance(15 * time.Minute)
	if got := d.Penalty(k); math.Abs(got-250) > 0.5 {
		t.Fatalf("penalty after two half-lives = %v, want ≈250", got)
	}
}

func TestMaxSuppressCapsPenalty(t *testing.T) {
	d, v := newTest()
	k := key("100.64.0.0/24", "10.0.0.1")
	// Flap relentlessly.
	for i := 0; i < 100; i++ {
		d.RecordFlap(k)
	}
	cap := DefaultConfig().maxPenalty()
	if got := d.Penalty(k); got > cap+0.001 {
		t.Fatalf("penalty %v exceeds cap %v", got, cap)
	}
	// Even at the cap, suppression must lift within MaxSuppress.
	v.Advance(DefaultConfig().MaxSuppress + time.Second)
	if d.Suppressed(k) {
		t.Fatal("suppression outlived MaxSuppress")
	}
}

func TestKeysIndependent(t *testing.T) {
	d, _ := newTest()
	k1 := key("100.64.0.0/24", "10.0.0.1")
	k2 := key("100.64.1.0/24", "10.0.0.1")
	k3 := key("100.64.0.0/24", "10.0.0.2")
	d.RecordFlap(k1)
	d.RecordFlap(k1)
	if !d.Suppressed(k1) {
		t.Fatal("k1 not suppressed")
	}
	if d.Suppressed(k2) || d.Suppressed(k3) {
		t.Fatal("suppression leaked across keys")
	}
}

func TestWithdrawPenalty(t *testing.T) {
	d, _ := newTest()
	k := key("100.64.0.0/24", "10.0.0.1")
	d.RecordWithdraw(k)
	if !d.RecordWithdraw(k) {
		t.Fatal("two withdrawals should suppress")
	}
}

func TestSweep(t *testing.T) {
	d, v := newTest()
	for i := 0; i < 10; i++ {
		d.RecordFlap(key("100.64.0.0/24", "10.0.0.1"))
	}
	d.RecordFlap(key("100.64.9.0/24", "10.0.0.9"))
	if d.Tracked() != 2 {
		t.Fatalf("Tracked = %d", d.Tracked())
	}
	// After ~11 half-lives even the capped penalty decays below 1.
	v.Advance(6 * time.Hour)
	if n := d.Sweep(); n != 0 {
		t.Fatalf("Sweep left %d records", n)
	}
}

func TestUnknownKeyZero(t *testing.T) {
	d, _ := newTest()
	k := key("1.2.3.0/24", "4.5.6.7")
	if d.Suppressed(k) || d.Penalty(k) != 0 || d.ReuseIn(k) != 0 {
		t.Fatal("untracked key should be zero-state")
	}
}

// Property: penalty never exceeds the MaxSuppress cap and never goes
// negative, regardless of flap/advance interleaving.
func TestQuickPenaltyBounds(t *testing.T) {
	cfg := DefaultConfig()
	maxP := cfg.maxPenalty()
	f := func(ops []uint8) bool {
		v := clock.NewVirtual(epoch)
		d := New(cfg, v)
		k := key("100.64.0.0/24", "10.0.0.1")
		for _, op := range ops {
			switch op % 3 {
			case 0:
				d.RecordFlap(k)
			case 1:
				d.RecordWithdraw(k)
			case 2:
				v.Advance(time.Duration(op) * time.Minute / 4)
			}
			p := d.Penalty(k)
			if p < 0 || p > maxP+0.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a suppressed route always becomes reusable within
// MaxSuppress of its last flap.
func TestQuickSuppressionBounded(t *testing.T) {
	cfg := DefaultConfig()
	f := func(nFlaps uint8) bool {
		v := clock.NewVirtual(epoch)
		d := New(cfg, v)
		k := key("100.64.0.0/24", "10.0.0.1")
		for i := 0; i < int(nFlaps%50)+2; i++ {
			d.RecordFlap(k)
		}
		v.Advance(cfg.MaxSuppress + time.Second)
		return !d.Suppressed(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRecordFlap(b *testing.B) {
	d := New(DefaultConfig(), clock.NewVirtual(epoch))
	ks := make([]Key, 256)
	for i := range ks {
		ks[i] = Key{
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{100, 64, byte(i), 0}), 24),
			Source: netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.RecordFlap(ks[i%len(ks)])
	}
}
