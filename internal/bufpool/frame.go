package bufpool

import "sync/atomic"

// Frame is a reference-counted pooled buffer for bytes shared by many
// consumers — the encode-once fan-out path hands one encoded UPDATE
// batch to every in-sync client's session writer. The creator starts
// with one reference; each additional holder calls Retain before the
// bytes escape to it and Release when done. When the count reaches
// zero the backing buffer returns to its size class.
//
// The pool reference is weak in the usual bufpool sense: a Frame that
// is never fully released (a session torn down with frames still
// queued) is simply collected by the GC — a missed recycle, never a
// leak or a use-after-free.
type Frame struct {
	b    []byte
	refs atomic.Int32
}

// NewFrame wraps b (typically obtained from Get) in a frame holding
// one reference. b must not be used directly by the caller afterwards.
func NewFrame(b []byte) *Frame {
	f := &Frame{b: b}
	f.refs.Store(1)
	return f
}

// Retain adds a reference. Call before handing the frame to another
// goroutine or queue.
func (f *Frame) Retain() { f.refs.Add(1) }

// Release drops one reference, returning the buffer to its pool when
// the last holder lets go. The caller must not touch Bytes afterwards.
func (f *Frame) Release() {
	if f.refs.Add(-1) == 0 {
		b := f.b
		f.b = nil
		Put(b)
	}
}

// Bytes returns the framed bytes. Valid only while the caller holds a
// reference; holders must treat the contents as immutable.
func (f *Frame) Bytes() []byte { return f.b }

// Len reports the framed byte count.
func (f *Frame) Len() int { return len(f.b) }
