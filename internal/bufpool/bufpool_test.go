package bufpool

import (
	"sync"
	"testing"
)

func TestGetLenAndClass(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 4096, 65536} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) len = %d", n, len(b))
		}
		if c := classFor(n); c >= 0 && cap(b) != classes[c] {
			t.Fatalf("Get(%d) cap = %d, want class %d", n, cap(b), classes[c])
		}
		Put(b)
	}
}

func TestOversizeFallsBack(t *testing.T) {
	n := classes[len(classes)-1] + 1
	b := Get(n)
	if len(b) != n {
		t.Fatalf("oversize Get len = %d, want %d", len(b), n)
	}
	Put(b) // must not panic; dropped silently
}

func TestReuse(t *testing.T) {
	// Not guaranteed by sync.Pool, but on a single goroutine with no GC
	// in between, a Put buffer should come back.
	b := Get(100)
	b[0] = 0xAA
	Put(b)
	c := Get(100)
	defer Put(c)
	if cap(c) != cap(b) {
		t.Logf("pool did not reuse (cap %d vs %d); allowed but unexpected", cap(c), cap(b))
	}
}

func TestConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				n := (i*37)%5000 + 1
				b := Get(n)
				for j := range b {
					b[j] = seed
				}
				for j := range b {
					if b[j] != seed {
						t.Error("buffer shared while owned")
						return
					}
				}
				Put(b)
			}
		}(byte(g))
	}
	wg.Wait()
}
