// Package bufpool provides size-classed, sync.Pool-backed byte buffers
// for the wire-format hot paths: message decode bodies, encode buffers,
// and tunnel frames. A BGP mux moves one short-lived []byte per message
// in each direction; without pooling that is an allocation (and GC work)
// per message at every layer.
//
// Ownership contract: a buffer obtained from Get is owned by the caller
// until Put returns it. Put hands ownership back to the pool — after
// Put, the buffer's contents may be overwritten by any goroutine at any
// time, so nothing reachable from long-lived state (RIB routes, intern
// tables, archived records) may alias a pooled buffer. Decoders uphold
// this by copying every byte they retain; see wire.ReadMessage.
package bufpool

import "sync"

// classes are the pooled capacity tiers. BGP messages cap at 4096
// bytes; tunnel frames and MRT records run larger. Requests above the
// top class fall back to plain make and are not recycled.
var classes = [...]int{256, 1024, 4096, 16384, 65536}

var pools [len(classes)]sync.Pool

// classFor returns the index of the smallest class holding n bytes, or
// -1 if n exceeds every class.
func classFor(n int) int {
	for i, c := range classes {
		if n <= c {
			return i
		}
	}
	return -1
}

// Get returns a buffer with len n. Its contents are undefined — callers
// must overwrite before reading. Capacity may exceed n; append within
// capacity never reallocates.
//
// Buffers are stored in the pools as array pointers (*[256]byte etc.)
// rather than *[]byte: an array pointer rides in the interface word
// directly, so neither Get nor Put allocates a slice-header box. With
// one Get/Put pair per message at every layer, the header boxes were a
// measurable share of hot-path allocation before this.
func Get(n int) []byte {
	i := classFor(n)
	if i < 0 {
		return make([]byte, n)
	}
	if v := pools[i].Get(); v != nil {
		switch p := v.(type) {
		case *[256]byte:
			return p[:n:256]
		case *[1024]byte:
			return p[:n:1024]
		case *[4096]byte:
			return p[:n:4096]
		case *[16384]byte:
			return p[:n:16384]
		case *[65536]byte:
			return p[:n:65536]
		}
	}
	return make([]byte, n, classes[i])
}

// Put returns b to its size class. Buffers whose capacity matches no
// class (grown by append, or produced outside Get) are dropped for the
// garbage collector. Callers must not use b after Put.
func Put(b []byte) {
	switch cap(b) {
	case 256:
		pools[0].Put((*[256]byte)(b[:256]))
	case 1024:
		pools[1].Put((*[1024]byte)(b[:1024]))
	case 4096:
		pools[2].Put((*[4096]byte)(b[:4096]))
	case 16384:
		pools[3].Put((*[16384]byte)(b[:16384]))
	case 65536:
		pools[4].Put((*[65536]byte)(b[:65536]))
	}
}
