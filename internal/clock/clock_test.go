package clock

import (
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2014, 10, 27, 0, 0, 0, 0, time.UTC) // HotNets-XIII day one

func TestVirtualNowAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	if !v.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", v.Now(), epoch)
	}
	v.Advance(90 * time.Second)
	if got := v.Now(); !got.Equal(epoch.Add(90 * time.Second)) {
		t.Fatalf("Now after advance = %v", got)
	}
}

func TestVirtualAfterFuncOrder(t *testing.T) {
	v := NewVirtual(epoch)
	var order []int
	v.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	v.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	v.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	v.Advance(5 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("firing order = %v, want [1 2 3]", order)
	}
}

func TestVirtualTimerSeesDeadlineTime(t *testing.T) {
	v := NewVirtual(epoch)
	var seen time.Time
	v.AfterFunc(10*time.Second, func() { seen = v.Now() })
	v.Advance(time.Hour)
	if !seen.Equal(epoch.Add(10 * time.Second)) {
		t.Fatalf("callback saw %v, want deadline %v", seen, epoch.Add(10*time.Second))
	}
}

func TestVirtualStop(t *testing.T) {
	v := NewVirtual(epoch)
	fired := false
	tm := v.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop of pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	v.Advance(time.Minute)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestVirtualReset(t *testing.T) {
	v := NewVirtual(epoch)
	var count atomic.Int32
	tm := v.AfterFunc(time.Second, func() { count.Add(1) })
	// Push the deadline out; the original deadline must not fire.
	tm.Reset(10 * time.Second)
	v.Advance(5 * time.Second)
	if count.Load() != 0 {
		t.Fatal("timer fired at superseded deadline")
	}
	v.Advance(6 * time.Second)
	if count.Load() != 1 {
		t.Fatalf("count = %d, want 1", count.Load())
	}
	// Reset after firing re-arms.
	tm.Reset(time.Second)
	v.Advance(2 * time.Second)
	if count.Load() != 2 {
		t.Fatalf("count = %d, want 2 after re-arm", count.Load())
	}
}

func TestVirtualCascade(t *testing.T) {
	v := NewVirtual(epoch)
	var times []time.Duration
	v.AfterFunc(time.Second, func() {
		times = append(times, v.Now().Sub(epoch))
		v.AfterFunc(time.Second, func() {
			times = append(times, v.Now().Sub(epoch))
		})
	})
	v.Advance(10 * time.Second)
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("cascade times = %v", times)
	}
}

func TestVirtualAfterChannel(t *testing.T) {
	v := NewVirtual(epoch)
	ch := v.After(time.Minute)
	select {
	case <-ch:
		t.Fatal("After channel fired before advance")
	default:
	}
	v.Advance(2 * time.Minute)
	select {
	case ts := <-ch:
		if !ts.Equal(epoch.Add(2*time.Minute)) && !ts.Equal(epoch.Add(time.Minute)) {
			t.Fatalf("After delivered %v", ts)
		}
	default:
		t.Fatal("After channel did not fire")
	}
}

func TestVirtualPendingTimers(t *testing.T) {
	v := NewVirtual(epoch)
	a := v.AfterFunc(time.Second, func() {})
	v.AfterFunc(2*time.Second, func() {})
	if n := v.PendingTimers(); n != 2 {
		t.Fatalf("PendingTimers = %d, want 2", n)
	}
	a.Stop()
	if n := v.PendingTimers(); n != 1 {
		t.Fatalf("PendingTimers after stop = %d, want 1", n)
	}
	v.Advance(time.Hour)
	if n := v.PendingTimers(); n != 0 {
		t.Fatalf("PendingTimers after advance = %d, want 0", n)
	}
}

func TestRealClockBasics(t *testing.T) {
	c := System
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(t0) {
		t.Fatal("real clock did not advance")
	}
	var fired atomic.Bool
	tm := c.AfterFunc(time.Millisecond, func() { fired.Store(true) })
	defer tm.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for !fired.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !fired.Load() {
		t.Fatal("real AfterFunc never fired")
	}
}

func TestVirtualNextDeadline(t *testing.T) {
	start := time.Unix(1404000000, 0)
	v := NewVirtual(start)
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("NextDeadline reported a deadline with no timers armed")
	}
	a := v.AfterFunc(3*time.Second, func() {})
	b := v.AfterFunc(time.Second, func() {})
	if when, ok := v.NextDeadline(); !ok || !when.Equal(start.Add(time.Second)) {
		t.Fatalf("NextDeadline = %v, %v; want %v", when, ok, start.Add(time.Second))
	}
	// Stopping the earlier timer exposes the later one.
	b.Stop()
	if when, ok := v.NextDeadline(); !ok || !when.Equal(start.Add(3*time.Second)) {
		t.Fatalf("NextDeadline after stop = %v, %v; want %v", when, ok, start.Add(3*time.Second))
	}
	// Reset supersedes the original heap entry.
	a.Reset(10 * time.Second)
	if when, ok := v.NextDeadline(); !ok || !when.Equal(start.Add(10*time.Second)) {
		t.Fatalf("NextDeadline after reset = %v, %v; want %v", when, ok, start.Add(10*time.Second))
	}
	v.Advance(10 * time.Second)
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("NextDeadline reported a deadline after all timers fired")
	}
}
