// Package clock abstracts time so that protocol machinery (hold timers,
// route-flap dampening decay, announcement schedules) can run against
// real wall-clock time in deployments and against a deterministic
// virtual clock in tests and benchmarks.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock provides current time and timer creation. Implementations must
// be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that delivers the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules fn to run after d. The returned Timer can stop
	// the callback before it fires.
	AfterFunc(d time.Duration, fn func()) Timer
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Timer is a stoppable pending callback.
type Timer interface {
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
	// Reset re-arms the timer to fire after d, reporting whether it was
	// still pending.
	Reset(d time.Duration) bool
}

// ---------------------------------------------------------------------
// Real clock

// Real is the wall-clock implementation backed by the time package.
type Real struct{}

// System is the shared real clock.
var System Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{time.AfterFunc(d, fn)}
}

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool                 { return r.t.Stop() }
func (r realTimer) Reset(d time.Duration) bool { return r.t.Reset(d) }

// ---------------------------------------------------------------------
// Virtual clock

// Virtual is a deterministic clock that only moves when Advance is
// called. Timers scheduled on it fire synchronously, in timestamp order,
// during Advance.
type Virtual struct {
	mu   sync.Mutex
	now  time.Time
	heap entryHeap
	seq  int64
}

// NewVirtual returns a virtual clock positioned at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.AfterFunc(d, func() {
		// Buffered: never blocks Advance.
		ch <- v.Now()
	})
	return ch
}

// AfterFunc implements Clock.
func (v *Virtual) AfterFunc(d time.Duration, fn func()) Timer {
	t := &virtualTimer{clock: v, fn: fn}
	v.mu.Lock()
	v.arm(t, d)
	v.mu.Unlock()
	return t
}

// arm schedules timer t to fire after d. Caller holds v.mu.
func (v *Virtual) arm(t *virtualTimer, d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.gen++
	t.pending = true
	v.seq++
	heap.Push(&v.heap, &entry{when: v.now.Add(d), seq: v.seq, timer: t, gen: t.gen})
}

// Sleep implements Clock. On a virtual clock Sleep blocks until another
// goroutine advances past the deadline.
func (v *Virtual) Sleep(d time.Duration) { <-v.After(d) }

// Advance moves the clock forward by d, firing every timer whose
// deadline falls in the window, in order. Callbacks run on the calling
// goroutine with the clock set to their deadline, so cascaded timers
// (a callback arming another timer inside the window) also fire.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	for {
		if len(v.heap) == 0 || v.heap[0].when.After(target) {
			break
		}
		e := heap.Pop(&v.heap).(*entry)
		if e.gen != e.timer.gen || !e.timer.pending {
			continue // stopped or superseded by Reset
		}
		e.timer.pending = false
		v.now = e.when
		fn := e.timer.fn
		v.mu.Unlock()
		fn()
		v.mu.Lock()
	}
	v.now = target
	v.mu.Unlock()
}

// NextDeadline reports the earliest deadline among armed timers, so a
// test driver can advance exactly to the next scheduled event (e.g. to
// step a timed MRT replay) without guessing the step size. ok is false
// when no timer is pending.
func (v *Virtual) NextDeadline() (when time.Time, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, e := range v.heap {
		if e.gen != e.timer.gen || !e.timer.pending {
			continue // stopped or superseded by Reset
		}
		if !ok || e.when.Before(when) {
			when, ok = e.when, true
		}
	}
	return when, ok
}

// PendingTimers reports how many timers are armed (for tests).
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, e := range v.heap {
		if e.gen == e.timer.gen && e.timer.pending {
			n++
		}
	}
	return n
}

// virtualTimer is the handle returned by AfterFunc. Its gen counter
// invalidates stale heap entries after Stop/Reset.
type virtualTimer struct {
	clock   *Virtual
	fn      func()
	gen     int64
	pending bool
}

func (t *virtualTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	was := t.pending
	t.pending = false
	t.gen++ // invalidate any heap entry
	return was
}

func (t *virtualTimer) Reset(d time.Duration) bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	was := t.pending
	t.clock.arm(t, d)
	return was
}

// entry is a scheduled firing in the virtual clock's heap.
type entry struct {
	when  time.Time
	seq   int64
	timer *virtualTimer
	gen   int64
}

// entryHeap orders entries by deadline, then arm order.
type entryHeap []*entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].when.Equal(h[j].when) {
		return h[i].seq < h[j].seq
	}
	return h[i].when.Before(h[j].when)
}
func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)   { *h = append(*h, x.(*entry)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
