// Package faultconn wraps any net.Conn with scriptable fault injection
// for chaos testing: one-way latency, partitions that silently blackhole
// traffic, byte-count-triggered drops, and hard resets. Faults are
// applied per Write/Read call, never mid-call, so message framing on the
// wrapped transport stays aligned — a partition eats whole frames, not
// half a header.
package faultconn

import (
	"errors"
	"net"
	"sync"
	"time"

	"peering/internal/bufconn"
	"peering/internal/clock"
)

// ErrReset is returned from Read and Write after Reset.
var ErrReset = errors.New("faultconn: connection reset by fault injection")

// Stats counts traffic through one wrapped endpoint.
type Stats struct {
	// BytesRead and BytesWritten count bytes actually passed through.
	BytesRead    int64
	BytesWritten int64
	// WritesDropped counts whole Write calls blackholed by a partition
	// or drop trigger.
	WritesDropped int64
	// BytesDropped counts the payload bytes of those writes.
	BytesDropped int64
	// WritesCorrupted counts Write calls whose payload had a byte
	// flipped by CorruptNext.
	WritesCorrupted int64
}

// Conn wraps an inner net.Conn with fault injection. All fault switches
// may be flipped concurrently with I/O.
type Conn struct {
	inner net.Conn
	clk   clock.Clock
	// done is closed on Close/Reset so writers parked in an injected
	// latency delay wake immediately instead of waiting out the clock —
	// on a virtual clock nobody may ever advance again after shutdown.
	done      chan struct{}
	closeOnce sync.Once

	mu          sync.Mutex
	partitioned bool
	dropAfter   int64         // pass this many more written bytes, then drop; -1 = off
	corruptNext int64         // flip one byte in this many more writes
	stalled     chan struct{} // non-nil while writes must block; closed to release
	latency     time.Duration
	reset       bool
	stats       Stats
}

var _ net.Conn = (*Conn)(nil)

// Wrap returns conn with fault injection layered on top. clk paces
// injected latency; nil means the system clock.
func Wrap(conn net.Conn, clk clock.Clock) *Conn {
	if clk == nil {
		clk = clock.System
	}
	return &Conn{inner: conn, clk: clk, done: make(chan struct{}), dropAfter: -1}
}

// Pipe returns a connected in-memory pair with fault injection on both
// endpoints. Faults are per-endpoint: partitioning one end silences only
// that end's writes; use PartitionBoth for a symmetric cut.
func Pipe(clk clock.Clock) (*Conn, *Conn) {
	a, b := bufconn.Pipe()
	return Wrap(a, clk), Wrap(b, clk)
}

// PartitionBoth cuts both directions of a wrapped pair.
func PartitionBoth(a, b *Conn) {
	a.Partition()
	b.Partition()
}

// HealBoth restores both directions of a wrapped pair.
func HealBoth(a, b *Conn) {
	a.Heal()
	b.Heal()
}

// Partition silently discards all subsequent writes from this endpoint.
// Reads are unaffected (and thus block once in-flight data drains),
// mimicking a network cut rather than a connection close.
func (c *Conn) Partition() {
	c.mu.Lock()
	c.partitioned = true
	c.mu.Unlock()
}

// Heal ends a partition; subsequent writes flow again. Writes discarded
// during the partition stay lost.
func (c *Conn) Heal() {
	c.mu.Lock()
	c.partitioned = false
	c.mu.Unlock()
}

// DropAfter lets n more written bytes through, then blackholes every
// later Write call in full (the call that crosses the threshold still
// passes whole, keeping frames intact). A negative n disables the
// trigger.
func (c *Conn) DropAfter(n int64) {
	c.mu.Lock()
	c.dropAfter = n
	c.mu.Unlock()
}

// CorruptNext flips one byte in the middle of each of the next n Write
// payloads — framing survives (lengths are untouched), the content
// inside does not, which is exactly the shape of damage RFC 7606
// handling must contain. Zero disables; the trigger rearms per call.
func (c *Conn) CorruptNext(n int64) {
	c.mu.Lock()
	c.corruptNext = n
	c.mu.Unlock()
}

// Stall blocks every subsequent Write until Unstall (or Reset). Unlike
// a partition, nothing is lost — the writer goroutine just stops making
// progress, like a zero-window peer or a frozen process.
func (c *Conn) Stall() {
	c.mu.Lock()
	if c.stalled == nil {
		c.stalled = make(chan struct{})
	}
	c.mu.Unlock()
}

// Unstall releases writers blocked by Stall; their writes proceed.
func (c *Conn) Unstall() {
	c.mu.Lock()
	if c.stalled != nil {
		close(c.stalled)
		c.stalled = nil
	}
	c.mu.Unlock()
}

// SetLatency delays each subsequent Write by d on the wrapping clock.
func (c *Conn) SetLatency(d time.Duration) {
	c.mu.Lock()
	c.latency = d
	c.mu.Unlock()
}

// Reset simulates a connection reset: the inner conn is closed and all
// further I/O on this endpoint fails with ErrReset.
func (c *Conn) Reset() {
	c.mu.Lock()
	c.reset = true
	if c.stalled != nil {
		close(c.stalled) // release stalled writers into the reset error
		c.stalled = nil
	}
	c.mu.Unlock()
	c.closeOnce.Do(func() { close(c.done) })
	c.inner.Close()
}

// Stats snapshots the endpoint's counters.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.inner.Read(p)
	c.mu.Lock()
	c.stats.BytesRead += int64(n)
	reset := c.reset
	c.mu.Unlock()
	if reset {
		return n, ErrReset
	}
	return n, err
}

// Write implements net.Conn. Depending on the scripted faults the call
// may be delayed, silently discarded (reporting success, like a lost
// packet), or failed.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	for c.stalled != nil {
		ch := c.stalled
		c.mu.Unlock()
		<-ch // parked until Unstall or Reset
		c.mu.Lock()
	}
	if c.reset {
		c.mu.Unlock()
		return 0, ErrReset
	}
	drop := c.partitioned
	if !drop && c.dropAfter >= 0 {
		if c.dropAfter == 0 {
			drop = true
		} else {
			// The crossing write passes whole so frame boundaries hold.
			c.dropAfter -= int64(len(p))
			if c.dropAfter < 0 {
				c.dropAfter = 0
			}
		}
	}
	if drop {
		c.stats.WritesDropped++
		c.stats.BytesDropped += int64(len(p))
		c.mu.Unlock()
		return len(p), nil
	}
	if c.corruptNext > 0 && len(p) > 0 {
		c.corruptNext--
		c.stats.WritesCorrupted++
		// Copy before flipping: the caller's buffer is not ours to damage.
		q := append([]byte(nil), p...)
		q[len(q)/2] ^= 0xff
		p = q
	}
	latency := c.latency
	c.mu.Unlock()
	if latency > 0 {
		select {
		case <-c.clk.After(latency):
		case <-c.done:
			return 0, net.ErrClosed
		}
	}
	n, err := c.inner.Write(p)
	c.mu.Lock()
	c.stats.BytesWritten += int64(n)
	c.mu.Unlock()
	return n, err
}

// Close implements net.Conn. Writers parked in an injected latency
// delay are released with an error.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	return c.inner.Close()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
