package faultconn

import (
	"errors"
	"testing"
	"time"

	"peering/internal/clock"
)

func readN(t *testing.T, c *Conn, n int) []byte {
	t.Helper()
	buf := make([]byte, n)
	got := 0
	done := make(chan error, 1)
	go func() {
		for got < n {
			m, err := c.Read(buf[got:])
			got += m
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("read: %v (got %d/%d bytes)", err, got, n)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("read stalled at %d/%d bytes", got, n)
	}
	return buf
}

func TestPassthrough(t *testing.T) {
	a, b := Pipe(nil)
	if _, err := a.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := readN(t, b, 5); string(got) != "hello" {
		t.Fatalf("read %q", got)
	}
	if _, err := b.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	readN(t, a, 2)
	if st := a.Stats(); st.BytesWritten != 5 || st.BytesRead != 2 || st.WritesDropped != 0 {
		t.Fatalf("a stats = %+v", st)
	}
	if st := b.Stats(); st.BytesWritten != 2 || st.BytesRead != 5 {
		t.Fatalf("b stats = %+v", st)
	}
}

func TestPartitionDropsWholeWritesAndHeals(t *testing.T) {
	a, b := Pipe(nil)
	a.Partition()
	// Writes during the partition report success — a lost packet, not a
	// broken socket.
	if n, err := a.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("write during partition = %d, %v", n, err)
	}
	if st := a.Stats(); st.WritesDropped != 1 || st.BytesDropped != 4 || st.BytesWritten != 0 {
		t.Fatalf("stats = %+v", st)
	}
	a.Heal()
	if _, err := a.Write([]byte("alive")); err != nil {
		t.Fatal(err)
	}
	// Only the post-heal write arrives; the partitioned one stays lost.
	if got := readN(t, b, 5); string(got) != "alive" {
		t.Fatalf("read %q", got)
	}
}

func TestPartitionBothIsSymmetric(t *testing.T) {
	a, b := Pipe(nil)
	PartitionBoth(a, b)
	a.Write([]byte("x"))
	b.Write([]byte("y"))
	if a.Stats().WritesDropped != 1 || b.Stats().WritesDropped != 1 {
		t.Fatalf("drops = %+v / %+v", a.Stats(), b.Stats())
	}
	HealBoth(a, b)
	a.Write([]byte("1"))
	b.Write([]byte("2"))
	if got := readN(t, b, 1); string(got) != "1" {
		t.Fatalf("b read %q", got)
	}
	if got := readN(t, a, 1); string(got) != "2" {
		t.Fatalf("a read %q", got)
	}
}

func TestDropAfterKeepsCrossingWriteWhole(t *testing.T) {
	a, b := Pipe(nil)
	a.DropAfter(5)
	a.Write([]byte("abc"))  // 3 of 5 spent
	a.Write([]byte("defg")) // crosses the threshold: passes whole
	a.Write([]byte("hij"))  // blackholed
	if got := readN(t, b, 7); string(got) != "abcdefg" {
		t.Fatalf("read %q", got)
	}
	if st := a.Stats(); st.WritesDropped != 1 || st.BytesDropped != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Negative disables the trigger again.
	a.DropAfter(-1)
	a.Write([]byte("back"))
	if got := readN(t, b, 4); string(got) != "back" {
		t.Fatalf("read %q", got)
	}
}

func TestReset(t *testing.T) {
	a, b := Pipe(nil)
	a.Write([]byte("pre"))
	readN(t, b, 3)
	a.Reset()
	if _, err := a.Write([]byte("post")); !errors.Is(err, ErrReset) {
		t.Fatalf("write after reset: %v", err)
	}
	buf := make([]byte, 1)
	if _, err := a.Read(buf); !errors.Is(err, ErrReset) {
		t.Fatalf("read after reset: %v", err)
	}
	// The peer sees the conn die too (its inner pipe is closed).
	if _, err := b.Read(buf); err == nil {
		t.Fatal("peer read succeeded after reset")
	}
}

func TestLatencyRunsOnInjectedClock(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	a, b := Pipe(clk)
	a.SetLatency(100 * time.Millisecond)
	wrote := make(chan struct{})
	go func() {
		a.Write([]byte("slow"))
		close(wrote)
	}()
	// The write parks on the virtual clock: it cannot complete until
	// time moves, so the test never sleeps wall-clock time.
	deadline := time.Now().Add(5 * time.Second)
	for clk.PendingTimers() == 0 {
		if !time.Now().Before(deadline) {
			t.Fatal("write never armed its latency timer")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-wrote:
		t.Fatal("write completed before latency elapsed")
	default:
	}
	clk.Advance(100 * time.Millisecond)
	select {
	case <-wrote:
	case <-time.After(5 * time.Second):
		t.Fatal("write did not complete after Advance")
	}
	if got := readN(t, b, 4); string(got) != "slow" {
		t.Fatalf("read %q", got)
	}
}

func TestWrapArbitraryConn(t *testing.T) {
	inner, peer := Pipe(nil) // reuse the pipe as an arbitrary net.Conn
	c := Wrap(inner, nil)
	c.Write([]byte("zz"))
	if got := readN(t, peer, 2); string(got) != "zz" {
		t.Fatalf("read %q", got)
	}
	if c.LocalAddr() == nil || c.RemoteAddr() == nil {
		t.Fatal("addrs not delegated")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptNextFlipsOneByteKeepingFraming(t *testing.T) {
	a, b := Pipe(nil)
	a.CorruptNext(1)
	msg := []byte("0123456789")
	if _, err := a.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := readN(t, b, len(msg))
	diffs := 0
	for i := range msg {
		if got[i] != msg[i] {
			diffs++
			if i != len(msg)/2 {
				t.Fatalf("byte %d corrupted, want only the middle (%d)", i, len(msg)/2)
			}
		}
	}
	if diffs != 1 {
		t.Fatalf("%d bytes corrupted, want exactly 1", diffs)
	}
	if st := a.Stats(); st.WritesCorrupted != 1 {
		t.Fatalf("WritesCorrupted = %d, want 1", st.WritesCorrupted)
	}
	// The caller's buffer must be untouched.
	if string(msg) != "0123456789" {
		t.Fatalf("caller buffer damaged: %q", msg)
	}
	// The trigger is spent: the next write passes clean.
	if _, err := a.Write(msg); err != nil {
		t.Fatal(err)
	}
	if got := readN(t, b, len(msg)); string(got) != string(msg) {
		t.Fatalf("post-trigger write corrupted: %q", got)
	}
}

func TestStallBlocksWritesUntilUnstall(t *testing.T) {
	a, b := Pipe(nil)
	a.Stall()
	wrote := make(chan error, 1)
	go func() {
		_, err := a.Write([]byte("delayed"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("write completed during stall (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	a.Unstall()
	select {
	case err := <-wrote:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write still blocked after Unstall")
	}
	if got := readN(t, b, 7); string(got) != "delayed" {
		t.Fatalf("read %q after unstall", got)
	}
}

func TestResetReleasesStalledWriters(t *testing.T) {
	a, _ := Pipe(nil)
	a.Stall()
	wrote := make(chan error, 1)
	go func() {
		_, err := a.Write([]byte("doomed"))
		wrote <- err
	}()
	time.Sleep(20 * time.Millisecond)
	a.Reset()
	select {
	case err := <-wrote:
		if !errors.Is(err, ErrReset) {
			t.Fatalf("stalled write returned %v, want ErrReset", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled write not released by Reset")
	}
}
