// Package topozoo parses Internet Topology Zoo GraphML files and embeds
// the Hurricane Electric PoP-level backbone used by the paper's §4.2
// intradomain emulation ("We emulated the PoP-level global backbone of
// Hurricane Electric (HE), using data from Topology Zoo … a Quagga
// routing engine for each of the 24 PoPs").
//
// The parser handles the GraphML subset Topology Zoo uses: node/edge
// elements with data keys for labels. The embedded HE topology is a
// 24-PoP map derived from the Topology Zoo HurricaneElectric dataset.
package topozoo

import (
	"encoding/xml"
	"fmt"
)

// Node is one topology vertex (a PoP).
type Node struct {
	ID    string
	Label string
}

// Edge is one undirected link between PoPs.
type Edge struct {
	Source, Target string
}

// Topology is a parsed Topology Zoo graph.
type Topology struct {
	Name  string
	Nodes []Node
	Edges []Edge
}

// NodeByID returns the node with the given ID.
func (t *Topology) NodeByID(id string) *Node {
	for i := range t.Nodes {
		if t.Nodes[i].ID == id {
			return &t.Nodes[i]
		}
	}
	return nil
}

// NodeByLabel returns the node labeled label.
func (t *Topology) NodeByLabel(label string) *Node {
	for i := range t.Nodes {
		if t.Nodes[i].Label == label {
			return &t.Nodes[i]
		}
	}
	return nil
}

// Neighbors returns the IDs adjacent to node id.
func (t *Topology) Neighbors(id string) []string {
	var out []string
	for _, e := range t.Edges {
		if e.Source == id {
			out = append(out, e.Target)
		}
		if e.Target == id {
			out = append(out, e.Source)
		}
	}
	return out
}

// Connected reports whether the topology is a single connected
// component (required for an emulated backbone to converge).
func (t *Topology) Connected() bool {
	if len(t.Nodes) == 0 {
		return true
	}
	visited := map[string]bool{}
	stack := []string{t.Nodes[0].ID}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[id] {
			continue
		}
		visited[id] = true
		stack = append(stack, t.Neighbors(id)...)
	}
	return len(visited) == len(t.Nodes)
}

// ---------------------------------------------------------------------
// GraphML parsing

type xmlGraphML struct {
	XMLName xml.Name `xml:"graphml"`
	Keys    []xmlKey `xml:"key"`
	Graph   xmlGraph `xml:"graph"`
}

type xmlKey struct {
	ID   string `xml:"id,attr"`
	For  string `xml:"for,attr"`
	Name string `xml:"attr.name,attr"`
}

type xmlGraph struct {
	Nodes []xmlNode `xml:"node"`
	Edges []xmlEdge `xml:"edge"`
	Datas []xmlData `xml:"data"`
}

type xmlNode struct {
	ID    string    `xml:"id,attr"`
	Datas []xmlData `xml:"data"`
}

type xmlEdge struct {
	Source string `xml:"source,attr"`
	Target string `xml:"target,attr"`
}

type xmlData struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// ParseGraphML decodes a Topology Zoo GraphML document.
func ParseGraphML(data []byte) (*Topology, error) {
	var doc xmlGraphML
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("topozoo: parse: %w", err)
	}
	// Identify the label and network-name attribute keys.
	labelKey, nameKey := "", ""
	for _, k := range doc.Keys {
		if k.Name == "label" && k.For == "node" {
			labelKey = k.ID
		}
		if k.Name == "Network" && k.For == "graph" {
			nameKey = k.ID
		}
	}
	t := &Topology{}
	for _, d := range doc.Graph.Datas {
		if d.Key == nameKey {
			t.Name = d.Value
		}
	}
	seen := map[string]bool{}
	for _, n := range doc.Graph.Nodes {
		if seen[n.ID] {
			return nil, fmt.Errorf("topozoo: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
		node := Node{ID: n.ID, Label: n.ID}
		for _, d := range n.Datas {
			if d.Key == labelKey {
				node.Label = d.Value
			}
		}
		t.Nodes = append(t.Nodes, node)
	}
	for _, e := range doc.Graph.Edges {
		if !seen[e.Source] || !seen[e.Target] {
			return nil, fmt.Errorf("topozoo: edge %s—%s references unknown node", e.Source, e.Target)
		}
		t.Edges = append(t.Edges, Edge{Source: e.Source, Target: e.Target})
	}
	return t, nil
}

// HurricaneElectric returns the embedded 24-PoP HE backbone.
func HurricaneElectric() *Topology {
	t, err := ParseGraphML([]byte(hurricaneElectricGraphML))
	if err != nil {
		panic("topozoo: embedded HE topology invalid: " + err.Error())
	}
	return t
}

// hurricaneElectricGraphML is the PoP-level Hurricane Electric backbone
// (Topology Zoo-derived, 24 PoPs across North America, Europe, and
// Asia, including the Amsterdam PoP that peers at AMS-IX).
const hurricaneElectricGraphML = `<?xml version="1.0" encoding="utf-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="Network" attr.type="string" for="graph" id="d0" />
  <key attr.name="label" attr.type="string" for="node" id="d1" />
  <graph edgedefault="undirected">
    <data key="d0">Hurricane Electric</data>
    <node id="n0"><data key="d1">Seattle</data></node>
    <node id="n1"><data key="d1">San Jose</data></node>
    <node id="n2"><data key="d1">Fremont</data></node>
    <node id="n3"><data key="d1">Los Angeles</data></node>
    <node id="n4"><data key="d1">Las Vegas</data></node>
    <node id="n5"><data key="d1">Phoenix</data></node>
    <node id="n6"><data key="d1">Denver</data></node>
    <node id="n7"><data key="d1">Dallas</data></node>
    <node id="n8"><data key="d1">Kansas City</data></node>
    <node id="n9"><data key="d1">Chicago</data></node>
    <node id="n10"><data key="d1">Toronto</data></node>
    <node id="n11"><data key="d1">New York</data></node>
    <node id="n12"><data key="d1">Ashburn</data></node>
    <node id="n13"><data key="d1">Atlanta</data></node>
    <node id="n14"><data key="d1">Miami</data></node>
    <node id="n15"><data key="d1">London</data></node>
    <node id="n16"><data key="d1">Amsterdam</data></node>
    <node id="n17"><data key="d1">Paris</data></node>
    <node id="n18"><data key="d1">Frankfurt</data></node>
    <node id="n19"><data key="d1">Zurich</data></node>
    <node id="n20"><data key="d1">Stockholm</data></node>
    <node id="n21"><data key="d1">Hong Kong</data></node>
    <node id="n22"><data key="d1">Tokyo</data></node>
    <node id="n23"><data key="d1">Singapore</data></node>
    <edge source="n0" target="n1" />
    <edge source="n0" target="n6" />
    <edge source="n0" target="n9" />
    <edge source="n1" target="n2" />
    <edge source="n1" target="n3" />
    <edge source="n1" target="n6" />
    <edge source="n1" target="n22" />
    <edge source="n2" target="n3" />
    <edge source="n3" target="n4" />
    <edge source="n3" target="n5" />
    <edge source="n3" target="n21" />
    <edge source="n4" target="n5" />
    <edge source="n5" target="n7" />
    <edge source="n6" target="n8" />
    <edge source="n7" target="n8" />
    <edge source="n7" target="n13" />
    <edge source="n8" target="n9" />
    <edge source="n9" target="n10" />
    <edge source="n9" target="n11" />
    <edge source="n10" target="n11" />
    <edge source="n11" target="n12" />
    <edge source="n11" target="n15" />
    <edge source="n12" target="n13" />
    <edge source="n12" target="n15" />
    <edge source="n13" target="n14" />
    <edge source="n15" target="n16" />
    <edge source="n15" target="n17" />
    <edge source="n16" target="n18" />
    <edge source="n16" target="n20" />
    <edge source="n17" target="n19" />
    <edge source="n18" target="n19" />
    <edge source="n18" target="n20" />
    <edge source="n21" target="n22" />
    <edge source="n21" target="n23" />
    <edge source="n22" target="n23" />
  </graph>
</graphml>`
