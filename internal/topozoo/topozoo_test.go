package topozoo

import (
	"strings"
	"testing"
)

func TestHurricaneElectricShape(t *testing.T) {
	he := HurricaneElectric()
	if he.Name != "Hurricane Electric" {
		t.Fatalf("name = %q", he.Name)
	}
	if len(he.Nodes) != 24 {
		t.Fatalf("PoPs = %d, want 24 (§4.2)", len(he.Nodes))
	}
	if !he.Connected() {
		t.Fatal("HE backbone not connected")
	}
	// The Amsterdam PoP (the one that peers at AMS-IX) exists.
	ams := he.NodeByLabel("Amsterdam")
	if ams == nil {
		t.Fatal("no Amsterdam PoP")
	}
	if n := he.Neighbors(ams.ID); len(n) < 2 {
		t.Fatalf("Amsterdam degree = %d, want redundant connectivity", len(n))
	}
}

func TestNodeLookups(t *testing.T) {
	he := HurricaneElectric()
	n := he.NodeByID("n0")
	if n == nil || n.Label != "Seattle" {
		t.Fatalf("n0 = %+v", n)
	}
	if he.NodeByID("nope") != nil || he.NodeByLabel("Gotham") != nil {
		t.Fatal("lookup of absent node succeeded")
	}
}

func TestParseGraphMLMinimal(t *testing.T) {
	doc := `<?xml version="1.0"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="label" attr.type="string" for="node" id="k"/>
  <graph edgedefault="undirected">
    <node id="a"><data key="k">Alpha</data></node>
    <node id="b"><data key="k">Beta</data></node>
    <edge source="a" target="b"/>
  </graph>
</graphml>`
	topo, err := ParseGraphML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 2 || len(topo.Edges) != 1 {
		t.Fatalf("topo = %+v", topo)
	}
	if topo.NodeByID("a").Label != "Alpha" {
		t.Fatalf("label = %q", topo.NodeByID("a").Label)
	}
}

func TestParseGraphMLNoLabelsFallsBackToID(t *testing.T) {
	doc := `<graphml><graph>
		<node id="x"/><node id="y"/>
		<edge source="x" target="y"/>
	</graph></graphml>`
	topo, err := ParseGraphML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if topo.Nodes[0].Label != "x" {
		t.Fatalf("fallback label = %q", topo.Nodes[0].Label)
	}
}

func TestParseGraphMLErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":        "this is not xml <",
		"duplicate node": `<graphml><graph><node id="a"/><node id="a"/></graph></graphml>`,
		"dangling edge":  `<graphml><graph><node id="a"/><edge source="a" target="zz"/></graph></graphml>`,
	}
	for name, doc := range cases {
		if _, err := ParseGraphML([]byte(doc)); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}

func TestConnectedDetectsPartition(t *testing.T) {
	doc := `<graphml><graph>
		<node id="a"/><node id="b"/><node id="c"/>
		<edge source="a" target="b"/>
	</graph></graphml>`
	topo, _ := ParseGraphML([]byte(doc))
	if topo.Connected() {
		t.Fatal("partitioned graph reported connected")
	}
}

func TestHELooksLikeBackbone(t *testing.T) {
	he := HurricaneElectric()
	// Sanity: continental clusters exist.
	for _, city := range []string{"San Jose", "New York", "London", "Frankfurt", "Tokyo", "Hong Kong"} {
		if he.NodeByLabel(city) == nil {
			t.Errorf("missing expected PoP %s", city)
		}
	}
	// No self loops, no duplicate edges.
	seen := map[string]bool{}
	for _, e := range he.Edges {
		if e.Source == e.Target {
			t.Fatalf("self loop at %s", e.Source)
		}
		k1, k2 := e.Source+"|"+e.Target, e.Target+"|"+e.Source
		if seen[k1] || seen[k2] {
			t.Fatalf("duplicate edge %s—%s", e.Source, e.Target)
		}
		seen[k1] = true
	}
	// Average degree of a backbone is modest but redundant.
	deg := 2.0 * float64(len(he.Edges)) / float64(len(he.Nodes))
	if deg < 2.0 || deg > 6.0 {
		t.Fatalf("average degree = %.1f", deg)
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	he := HurricaneElectric()
	for _, n := range he.Nodes {
		for _, m := range he.Neighbors(n.ID) {
			found := false
			for _, back := range he.Neighbors(m) {
				if back == n.ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetric adjacency %s→%s", n.ID, m)
			}
		}
	}
}

func TestEmbeddedDocIsValidXMLProlog(t *testing.T) {
	if !strings.HasPrefix(hurricaneElectricGraphML, `<?xml`) {
		t.Fatal("embedded GraphML lacks XML prolog")
	}
}
