// Package benchenv stamps benchmark reports with the runtime they ran
// under. Every BENCH_*.json in this repo embeds Env, so a number can
// always be read against the parallelism that produced it — a
// routes-per-second figure from a GOMAXPROCS=1 run and one from a
// 32-core run are different facts, and the report must say which it
// holds.
package benchenv

import (
	"runtime"
	"time"
)

// Env is the runtime provenance block embedded in benchmark reports.
type Env struct {
	// GOMAXPROCS is the scheduler's processor limit during the run;
	// NumCPU the machine's logical core count.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// WallClockSecs is the whole run's wall-clock duration — setup,
	// measurement, and teardown — as distinct from any per-phase timing
	// the report itself carries.
	WallClockSecs float64 `json:"wall_clock_seconds"`
}

// Capture snapshots the runtime with the wall clock measured from
// start (the beginning of the run being reported).
func Capture(start time.Time) Env {
	return Env{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		WallClockSecs: time.Since(start).Seconds(),
	}
}
