package mininext

import (
	"net/netip"
	"testing"
	"time"

	"peering/internal/dataplane"
	"peering/internal/router"
	"peering/internal/topozoo"
)

func addr(s string) netip.Addr     { return netip.MustParseAddr(s) }
func prefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestAddContainerAndDuplicate(t *testing.T) {
	n := NewNetwork("test")
	c, err := n.AddContainer("r1", 65001, addr("10.10.0.1"))
	if err != nil || c == nil {
		t.Fatal(err)
	}
	if _, err := n.AddContainer("r1", 65002, addr("10.10.1.1")); err == nil {
		t.Fatal("duplicate container allowed")
	}
	if n.Container("r1") != c || n.Container("nope") != nil {
		t.Fatal("Container lookup wrong")
	}
}

func TestLinkPropagatesRoutesAndFIB(t *testing.T) {
	n := NewNetwork("pair")
	a, _ := n.AddContainer("a", 65001, addr("10.10.0.1"))
	b, _ := n.AddContainer("b", 65002, addr("10.10.1.1"))
	if _, err := n.Link(a, b); err != nil {
		t.Fatal(err)
	}
	p := prefix("100.65.0.0/24")
	a.DP.AddLocal(addr("100.65.0.1"))
	a.BGP.Announce(p, router.AnnounceSpec{})
	waitFor(t, func() bool { return b.BGP.LocRIB().Best(p) != nil })
	// FIB download: b's dataplane can now route toward the prefix.
	waitFor(t, func() bool { return b.DP.LookupRoute(addr("100.65.0.1")) != nil })
	fe := b.DP.LookupRoute(addr("100.65.0.1"))
	if fe.Prefix != p {
		t.Fatalf("FIB entry = %+v", fe)
	}
}

func TestEndToEndPingAcrossThreePoPs(t *testing.T) {
	// a — b — c chain with distinct private ASNs: a's prefix reachable
	// from c through b, and ICMP echo flows end to end.
	n := NewNetwork("chain")
	a, _ := n.AddContainer("a", 65001, addr("10.10.0.1"))
	b, _ := n.AddContainer("b", 65002, addr("10.10.1.1"))
	c, _ := n.AddContainer("c", 65003, addr("10.10.2.1"))
	n.Link(a, b)
	n.Link(b, c)
	pa := prefix("100.65.0.0/24")
	pc := prefix("100.65.2.0/24")
	a.DP.AddLocal(addr("100.65.0.1"))
	c.DP.AddLocal(addr("100.65.2.1"))
	a.BGP.Announce(pa, router.AnnounceSpec{})
	c.BGP.Announce(pc, router.AnnounceSpec{})
	waitFor(t, func() bool {
		return c.BGP.LocRIB().Best(pa) != nil && a.BGP.LocRIB().Best(pc) != nil &&
			c.DP.LookupRoute(addr("100.65.0.1")) != nil && a.DP.LookupRoute(addr("100.65.2.1")) != nil &&
			b.DP.LookupRoute(addr("100.65.0.1")) != nil && b.DP.LookupRoute(addr("100.65.2.1")) != nil
	})
	// Path length through b: the AS path at c is "65002 65001".
	rt := c.BGP.LocRIB().Best(pa)
	if got := rt.Attrs.PathString(); got != "65002 65001" {
		t.Fatalf("path = %q", got)
	}
	// Ping from c's dataplane to a's host address.
	pkt := dataplane.NewPacket(addr("100.65.2.1"), addr("100.65.0.1"), dataplane.ProtoICMP)
	pkt.ICMP = dataplane.ICMPEchoRequest
	c.DP.Originate(pkt)
	if a.DP.Stats().DeliveredLocal == 0 {
		t.Fatal("echo request never arrived at a")
	}
}

func TestWithdrawRemovesFIBEntries(t *testing.T) {
	n := NewNetwork("wd")
	a, _ := n.AddContainer("a", 65001, addr("10.10.0.1"))
	b, _ := n.AddContainer("b", 65002, addr("10.10.1.1"))
	n.Link(a, b)
	p := prefix("100.65.0.0/24")
	a.BGP.Announce(p, router.AnnounceSpec{})
	waitFor(t, func() bool { return b.DP.LookupRoute(addr("100.65.0.1")) != nil })
	a.BGP.Withdraw(p)
	waitFor(t, func() bool { return b.DP.LookupRoute(addr("100.65.0.1")) == nil })
}

func TestBuildHurricaneElectric(t *testing.T) {
	he := topozoo.HurricaneElectric()
	res, err := BuildFromTopology(he, 65000, prefix("100.65.0.0/16"))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Network.Stats()
	if st.Containers != 24 {
		t.Fatalf("containers = %d", st.Containers)
	}
	if st.Links != len(he.Edges) {
		t.Fatalf("links = %d, want %d", st.Links, len(he.Edges))
	}
	waitFor(t, func() bool { return res.Converged() })

	// Every PoP holds all 24 PoP prefixes.
	ams := res.ByLabel["Amsterdam"]
	if ams == nil {
		t.Fatal("no Amsterdam container")
	}
	if got := ams.BGP.LocRIB().Prefixes(); got != 24 {
		t.Fatalf("Amsterdam prefixes = %d, want 24", got)
	}
	// Route from Amsterdam to Tokyo's prefix traverses multiple PoPs
	// (path length > 1).
	tokyoPfx := res.PrefixOf["Tokyo"]
	rt := ams.BGP.LocRIB().Best(tokyoPfx)
	if rt == nil || rt.Attrs.PathLen() < 2 {
		t.Fatalf("Amsterdam→Tokyo route = %v", rt)
	}
}

func TestHEFailoverReroutes(t *testing.T) {
	he := topozoo.HurricaneElectric()
	res, err := BuildFromTopology(he, 65000, prefix("100.65.0.0/16"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return res.Converged() })
	ams := res.ByLabel["Amsterdam"]
	lonPfx := res.PrefixOf["London"]
	rt := ams.BGP.LocRIB().Best(lonPfx)
	if rt == nil {
		t.Fatal("no initial route")
	}
	// Kill the direct London session from Amsterdam (the BGP peer whose
	// describe is London).
	var killed bool
	for _, p := range ams.BGP.Peers() {
		if p.Config().Describe == "London" && p.Established() {
			p.Session().Close()
			killed = true
		}
	}
	if !killed {
		t.Skip("Amsterdam—London not directly linked in this topology")
	}
	// Amsterdam must re-learn London's prefix via another PoP.
	waitFor(t, func() bool {
		rt := ams.BGP.LocRIB().Best(lonPfx)
		return rt != nil && rt.Attrs.PathLen() >= 2
	})
}

func TestStatsCounts(t *testing.T) {
	n := NewNetwork("s")
	a, _ := n.AddContainer("a", 65001, addr("10.10.0.1"))
	b, _ := n.AddContainer("b", 65002, addr("10.10.1.1"))
	n.Link(a, b)
	a.BGP.Announce(prefix("100.65.0.0/24"), router.AnnounceSpec{})
	waitFor(t, func() bool { return n.Stats().Routes >= 2 })
	st := n.Stats()
	if st.Containers != 2 || st.Links != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
