// Package mininext is the testbed's intradomain emulation layer — the
// role MinineXt (the paper's Mininet extension, §3/§4.2) plays: light
// weight "containers" that each run a routing engine and a data plane,
// links between them, topology bring-up from Topology Zoo graphs, and
// the plumbing that connects an emulated network's border router to
// PEERING's interdomain servers.
//
// Each emulated PoP runs our router (the Quagga analog) under its own
// private ASN with eBGP sessions along topology edges, so routes
// propagate hop by hop exactly as the paper's HE emulation did; the
// private ASNs are stripped at the PEERING border (§3, "Each emulated
// domain uses a private ASN 'behind' PEERING").
package mininext

import (
	"fmt"
	"net/netip"
	"sync"

	"peering/internal/bufconn"
	"peering/internal/dataplane"
	"peering/internal/policy"
	"peering/internal/rib"
	"peering/internal/router"
	"peering/internal/topozoo"
)

// Container is one emulated node: a BGP speaker plus a dataplane
// router, like a Mininet host running Quagga.
type Container struct {
	Name string
	// ASN is the container's (usually private) AS number.
	ASN uint32
	// BGP is the routing engine.
	BGP *router.Router
	// DP is the forwarding plane.
	DP *dataplane.Router
	// Loopback is the router ID / loopback address.
	Loopback netip.Addr

	mu       sync.Mutex
	nhIfaces map[netip.Addr]*dataplane.Iface
	subnets  []subnetIface
}

// subnetIface resolves any next hop inside a prefix (an IXP LAN) to an
// interface.
type subnetIface struct {
	prefix netip.Prefix
	iface  *dataplane.Iface
}

// registerNextHop records that next-hop addr is reached via iface.
func (c *Container) registerNextHop(addr netip.Addr, iface *dataplane.Iface) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nhIfaces[addr] = iface
}

// RegisterSubnet records that any next hop inside prefix is reached via
// iface — how a container attached to a shared LAN (an IXP fabric)
// resolves the next hops of routes learned across it.
func (c *Container) RegisterSubnet(prefix netip.Prefix, iface *dataplane.Iface) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subnets = append(c.subnets, subnetIface{prefix, iface})
}

// ifaceForNextHop resolves a BGP next hop to an egress interface.
func (c *Container) ifaceForNextHop(addr netip.Addr) *dataplane.Iface {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i := c.nhIfaces[addr]; i != nil {
		return i
	}
	for _, s := range c.subnets {
		if s.prefix.Contains(addr) {
			return s.iface
		}
	}
	return nil
}

// syncFIB downloads a best-route change into the data plane.
func (c *Container) syncFIB(ch rib.Change) {
	if ch.New == nil {
		c.DP.DelRoute(ch.Prefix)
		return
	}
	iface := c.ifaceForNextHop(ch.New.Attrs.NextHop)
	if iface == nil {
		// Next hop not directly connected (e.g. a locally originated
		// route): nothing to install.
		return
	}
	c.DP.SetRoute(ch.Prefix, ch.New.Attrs.NextHop, iface)
}

// Network is an emulated topology.
type Network struct {
	Name string

	mu         sync.Mutex
	containers map[string]*Container
	linkCount  int
	links      []*dataplane.Link
}

// NewNetwork creates an empty emulation.
func NewNetwork(name string) *Network {
	return &Network{Name: name, containers: make(map[string]*Container)}
}

// AddContainer creates a container with the given name, ASN, and
// loopback address.
func (n *Network) AddContainer(name string, asn uint32, loopback netip.Addr) (*Container, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.containers[name]; dup {
		return nil, fmt.Errorf("mininext: container %q exists", name)
	}
	c := &Container{
		Name:     name,
		ASN:      asn,
		Loopback: loopback,
		BGP:      router.New(router.Config{AS: asn, RouterID: loopback}),
		DP:       dataplane.NewRouter(name),
		nhIfaces: make(map[netip.Addr]*dataplane.Iface),
	}
	c.DP.AddLocal(loopback)
	c.BGP.OnBestChange(c.syncFIB)
	n.containers[name] = c
	return c, nil
}

// Container returns the named container (nil if absent).
func (n *Network) Container(name string) *Container {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.containers[name]
}

// Containers returns all containers.
func (n *Network) Containers() []*Container {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Container, 0, len(n.containers))
	for _, c := range n.containers {
		out = append(out, c)
	}
	return out
}

// Links returns all created links.
func (n *Network) Links() []*dataplane.Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*dataplane.Link, len(n.links))
	copy(out, n.links)
	return out
}

// Link connects containers a and b: a dataplane link with a fresh /30
// style address pair plus an eBGP (or iBGP if same ASN) session across
// it. Returns the link for failure injection.
func (n *Network) Link(a, b *Container) (*dataplane.Link, error) {
	return n.LinkRel(a, b, policy.RelNone, policy.RelNone)
}

// LinkRel is Link with explicit business relationships: relAB is how a
// sees b (e.g. RelProvider if b provides transit to a), relBA the
// reverse. Gao–Rexford export filtering then applies on both routers —
// how the live mini-Internet enforces valley-free routing.
func (n *Network) LinkRel(a, b *Container, relAB, relBA policy.Relationship) (*dataplane.Link, error) {
	n.mu.Lock()
	idx := n.linkCount
	n.linkCount++
	n.mu.Unlock()
	if idx >= 65536 {
		return nil, fmt.Errorf("mininext: link budget exhausted")
	}
	// Link subnet 10.200.x.y/31-style pair.
	aAddr := netip.AddrFrom4([4]byte{10, 200, byte(idx >> 8), byte(idx%128) * 2})
	bAddr := netip.AddrFrom4([4]byte{10, 200, byte(idx >> 8), byte(idx%128)*2 + 1})
	link, ia, ib := dataplane.Connect(a.DP, aAddr, "to-"+b.Name, b.DP, bAddr, "to-"+a.Name)
	a.DP.AddIface(ia)
	b.DP.AddIface(ib)
	a.registerNextHop(bAddr, ia)
	b.registerNextHop(aAddr, ib)

	internal := a.ASN == b.ASN
	pa := a.BGP.AddPeer(router.PeerConfig{
		Addr: bAddr, LocalAddr: aAddr, AS: b.ASN, Internal: internal,
		Relationship: relAB, Describe: b.Name,
	})
	pb := b.BGP.AddPeer(router.PeerConfig{
		Addr: aAddr, LocalAddr: bAddr, AS: a.ASN, Internal: internal,
		Relationship: relBA, Describe: a.Name,
	})
	ca, cb := bufconn.Pipe()
	a.BGP.Attach(pa, ca)
	b.BGP.Attach(pb, cb)

	n.mu.Lock()
	n.links = append(n.links, link)
	n.mu.Unlock()
	return link, nil
}

// Stats summarizes the emulation.
type Stats struct {
	Containers int
	Links      int
	// Routes is the total Loc-RIB candidate count across containers.
	Routes int
	// Prefixes is the total distinct-prefix count across containers.
	Prefixes int
}

// Stats returns current emulation counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := Stats{Containers: len(n.containers), Links: len(n.links)}
	for _, c := range n.containers {
		s.Routes += c.BGP.LocRIB().Routes()
		s.Prefixes += c.BGP.LocRIB().Prefixes()
	}
	return s
}

// BuildResult is the outcome of a topology bring-up.
type BuildResult struct {
	Network *Network
	// ByLabel maps PoP label (e.g. "Amsterdam") to its container.
	ByLabel map[string]*Container
	// PrefixOf maps PoP label to the prefix it originates.
	PrefixOf map[string]netip.Prefix
}

// BuildFromTopology instantiates topo as an emulated AS: one container
// per PoP with private ASN baseASN+i, eBGP sessions along every edge,
// and one originated /24 per PoP carved from prefixBase — exactly the
// §4.2 Hurricane Electric setup.
func BuildFromTopology(topo *topozoo.Topology, baseASN uint32, prefixBase netip.Prefix) (*BuildResult, error) {
	if prefixBase.Bits() > 16 {
		return nil, fmt.Errorf("mininext: prefix base %v too small to carve per-PoP /24s", prefixBase)
	}
	n := NewNetwork(topo.Name)
	res := &BuildResult{
		Network:  n,
		ByLabel:  make(map[string]*Container),
		PrefixOf: make(map[string]netip.Prefix),
	}
	base := prefixBase.Masked().Addr().As4()
	byID := map[string]*Container{}
	for i, node := range topo.Nodes {
		lo := netip.AddrFrom4([4]byte{10, 10, byte(i), 1})
		c, err := n.AddContainer(node.Label, baseASN+uint32(i), lo)
		if err != nil {
			return nil, err
		}
		byID[node.ID] = c
		res.ByLabel[node.Label] = c
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{base[0], base[1], byte(i), 0}), 24)
		res.PrefixOf[node.Label] = p
	}
	for _, e := range topo.Edges {
		if _, err := n.Link(byID[e.Source], byID[e.Target]); err != nil {
			return nil, err
		}
	}
	// Originate after links exist so first announcements propagate to
	// established sessions (the router also full-table-syncs on
	// session-up, so order is not critical — but this matches how the
	// paper configured Quagga: interfaces first, then network
	// statements).
	for i, node := range topo.Nodes {
		c := byID[node.ID]
		p := res.PrefixOf[topo.Nodes[i].Label]
		c.DP.AddLocal(p.Addr().Next()) // a host address inside the PoP prefix
		c.BGP.Announce(p, router.AnnounceSpec{})
	}
	return res, nil
}

// Converged reports whether every container knows a route to every
// PoP prefix (used by tests to await propagation).
func (r *BuildResult) Converged() bool {
	for _, c := range r.ByLabel {
		for _, p := range r.PrefixOf {
			if c.BGP.LocRIB().Best(p) == nil {
				return false
			}
		}
	}
	return true
}
