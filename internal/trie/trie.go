// Package trie implements a binary radix (Patricia-style) trie keyed by
// IP prefixes. It is the index structure behind every RIB, FIB, and
// prefix filter in the testbed: it supports exact-match insert/delete,
// longest-prefix match for forwarding, and subtree walks for
// "covered-by" queries used by export filters.
//
// The trie is not safe for concurrent use; callers (RIBs, FIBs) guard it
// with their own locks so that a lookup and the decision that follows it
// stay atomic.
package trie

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"net/netip"
)

// node is a trie vertex. Internal vertices may carry no value; a vertex
// with hasValue set corresponds to an inserted prefix.
type node[V any] struct {
	prefix   netip.Prefix
	children [2]*node[V]
	value    V
	hasValue bool
}

// Trie maps IP prefixes to values of type V. IPv4 and IPv6 prefixes live
// in separate roots so mixed-family inserts never collide.
type Trie[V any] struct {
	root4 *node[V]
	root6 *node[V]
	size  int
}

// New returns an empty trie.
func New[V any]() *Trie[V] {
	return &Trie[V]{
		root4: &node[V]{prefix: netip.PrefixFrom(netip.IPv4Unspecified(), 0)},
		root6: &node[V]{prefix: netip.PrefixFrom(netip.IPv6Unspecified(), 0)},
	}
}

// Len reports the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

func (t *Trie[V]) rootFor(p netip.Prefix) *node[V] {
	if p.Addr().Is4() {
		return t.root4
	}
	return t.root6
}

// bitAt returns bit i (0-indexed from the most significant bit) of addr.
// As4/As16 return arrays by value, so walking a million-entry table does
// not allocate a byte slice per node visited.
func bitAt(addr netip.Addr, i int) int {
	if addr.Is4() {
		b := addr.As4()
		return int(b[i>>3]>>(7-uint(i&7))) & 1
	}
	b := addr.As16()
	return int(b[i>>3]>>(7-uint(i&7))) & 1
}

// canon normalizes a prefix to its masked, canonical form. Un-normalized
// prefixes (host bits set) would otherwise make equal routes look
// distinct.
func canon(p netip.Prefix) netip.Prefix { return p.Masked() }

// commonPrefixLen returns the length of the longest common prefix of a
// and b, capped at max. Word-wide XOR plus a leading-zero count replaces
// the old byte loop (and its AsSlice allocations) on the insert path.
func commonPrefixLen(a, b netip.Addr, maxLen int) int {
	var n int
	if a.Is4() && b.Is4() {
		ab, bb := a.As4(), b.As4()
		x := binary.BigEndian.Uint32(ab[:]) ^ binary.BigEndian.Uint32(bb[:])
		n = bits.LeadingZeros32(x)
	} else {
		ab, bb := a.As16(), b.As16()
		if x := binary.BigEndian.Uint64(ab[:8]) ^ binary.BigEndian.Uint64(bb[:8]); x != 0 {
			n = bits.LeadingZeros64(x)
		} else {
			n = 64 + bits.LeadingZeros64(binary.BigEndian.Uint64(ab[8:])^binary.BigEndian.Uint64(bb[8:]))
		}
	}
	if n > maxLen {
		n = maxLen
	}
	return n
}

// Insert adds or replaces the value for prefix p. It reports whether the
// prefix was newly inserted (false means an existing value was replaced).
func (t *Trie[V]) Insert(p netip.Prefix, v V) bool {
	if !p.IsValid() {
		panic(fmt.Sprintf("trie: invalid prefix %v", p))
	}
	p = canon(p)
	n := t.rootFor(p)
	for {
		if n.prefix == p {
			added := !n.hasValue
			n.value, n.hasValue = v, true
			if added {
				t.size++
			}
			return added
		}
		// p is strictly longer than n.prefix and contained in it.
		bit := bitAt(p.Addr(), n.prefix.Bits())
		child := n.children[bit]
		if child == nil {
			nn := &node[V]{prefix: p, value: v, hasValue: true}
			n.children[bit] = nn
			t.size++
			return true
		}
		if child.prefix.Contains(p.Addr()) && child.prefix.Bits() <= p.Bits() {
			n = child
			continue
		}
		// Split: find the common prefix of child.prefix and p.
		cl := commonPrefixLen(child.prefix.Addr(), p.Addr(), min(child.prefix.Bits(), p.Bits()))
		joint := canon(netip.PrefixFrom(p.Addr(), cl))
		mid := &node[V]{prefix: joint}
		n.children[bit] = mid
		mid.children[bitAt(child.prefix.Addr(), cl)] = child
		if joint == p {
			mid.value, mid.hasValue = v, true
			t.size++
			return true
		}
		nn := &node[V]{prefix: p, value: v, hasValue: true}
		mid.children[bitAt(p.Addr(), cl)] = nn
		t.size++
		return true
	}
}

// Get returns the value stored at exactly prefix p.
func (t *Trie[V]) Get(p netip.Prefix) (V, bool) {
	var zero V
	if !p.IsValid() {
		return zero, false
	}
	p = canon(p)
	n := t.rootFor(p)
	for n != nil {
		if n.prefix == p {
			if n.hasValue {
				return n.value, true
			}
			return zero, false
		}
		if !n.prefix.Contains(p.Addr()) || n.prefix.Bits() > p.Bits() {
			return zero, false
		}
		n = n.children[bitAt(p.Addr(), n.prefix.Bits())]
	}
	return zero, false
}

// Delete removes prefix p, reporting whether it was present. Interior
// structure is left in place (path compression is not re-run); lookups
// remain correct and memory is reclaimed when subtrees empty out on
// subsequent inserts.
func (t *Trie[V]) Delete(p netip.Prefix) bool {
	if !p.IsValid() {
		return false
	}
	p = canon(p)
	n := t.rootFor(p)
	var parent *node[V]
	var parentBit int
	for n != nil {
		if n.prefix == p {
			if !n.hasValue {
				return false
			}
			var zero V
			n.value, n.hasValue = zero, false
			t.size--
			// Prune a now-valueless leaf.
			if parent != nil && n.children[0] == nil && n.children[1] == nil {
				parent.children[parentBit] = nil
			}
			return true
		}
		if !n.prefix.Contains(p.Addr()) || n.prefix.Bits() > p.Bits() {
			return false
		}
		parent = n
		parentBit = bitAt(p.Addr(), n.prefix.Bits())
		n = n.children[parentBit]
	}
	return false
}

// Lookup performs a longest-prefix match for addr, returning the most
// specific stored prefix containing it.
func (t *Trie[V]) Lookup(addr netip.Addr) (netip.Prefix, V, bool) {
	var (
		bestP  netip.Prefix
		bestV  V
		found  bool
		target = netip.PrefixFrom(addr, addr.BitLen())
	)
	n := t.rootFor(target)
	for n != nil {
		if !n.prefix.Contains(addr) {
			break
		}
		if n.hasValue {
			bestP, bestV, found = n.prefix, n.value, true
		}
		if n.prefix.Bits() == addr.BitLen() {
			break
		}
		n = n.children[bitAt(addr, n.prefix.Bits())]
	}
	return bestP, bestV, found
}

// LookupPrefix returns the most specific stored prefix that covers all
// of p (i.e. p's longest-prefix match as a whole block).
func (t *Trie[V]) LookupPrefix(p netip.Prefix) (netip.Prefix, V, bool) {
	p = canon(p)
	var (
		bestP netip.Prefix
		bestV V
		found bool
	)
	n := t.rootFor(p)
	for n != nil {
		if !n.prefix.Contains(p.Addr()) || n.prefix.Bits() > p.Bits() {
			break
		}
		if n.hasValue {
			bestP, bestV, found = n.prefix, n.value, true
		}
		if n.prefix.Bits() == p.Bits() {
			break
		}
		n = n.children[bitAt(p.Addr(), n.prefix.Bits())]
	}
	return bestP, bestV, found
}

// Supernets visits every stored prefix that covers all of p — p's
// exact entry included, if stored — from the least specific (shortest
// mask) to the most specific. The callback returns false to stop
// early. This is the dual of CoveredBy and the primitive behind
// compiled prefix filters and origin (ROA) validation, where a match
// may live at any covering aggregate, not just the longest one that
// LookupPrefix reports.
func (t *Trie[V]) Supernets(p netip.Prefix, fn func(netip.Prefix, V) bool) {
	if !p.IsValid() {
		return
	}
	p = canon(p)
	n := t.rootFor(p)
	for n != nil {
		if !n.prefix.Contains(p.Addr()) || n.prefix.Bits() > p.Bits() {
			return
		}
		if n.hasValue && !fn(n.prefix, n.value) {
			return
		}
		if n.prefix.Bits() == p.Bits() {
			return
		}
		n = n.children[bitAt(p.Addr(), n.prefix.Bits())]
	}
}

// Walk visits every stored prefix in lexicographic (trie) order. The
// callback returns false to stop early. Walk visits IPv4 before IPv6.
func (t *Trie[V]) Walk(fn func(netip.Prefix, V) bool) {
	if !walk(t.root4, fn) {
		return
	}
	walk(t.root6, fn)
}

func walk[V any](n *node[V], fn func(netip.Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.hasValue {
		if !fn(n.prefix, n.value) {
			return false
		}
	}
	return walk(n.children[0], fn) && walk(n.children[1], fn)
}

// CoveredBy visits every stored prefix contained within p (including p
// itself if stored).
func (t *Trie[V]) CoveredBy(p netip.Prefix, fn func(netip.Prefix, V) bool) {
	p = canon(p)
	n := t.rootFor(p)
	for n != nil {
		if n.prefix.Bits() >= p.Bits() {
			if p.Contains(n.prefix.Addr()) {
				walk(n, fn)
			}
			return
		}
		if !n.prefix.Contains(p.Addr()) {
			return
		}
		n = n.children[bitAt(p.Addr(), n.prefix.Bits())]
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
