package trie

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestInsertGet(t *testing.T) {
	tr := New[int]()
	cases := []string{
		"10.0.0.0/8", "10.0.0.0/16", "10.1.0.0/16", "10.0.1.0/24",
		"192.168.0.0/16", "0.0.0.0/0", "10.0.0.1/32",
	}
	for i, s := range cases {
		if !tr.Insert(mustPrefix(s), i) {
			t.Fatalf("Insert(%s) reported replace, want add", s)
		}
	}
	if tr.Len() != len(cases) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(cases))
	}
	for i, s := range cases {
		v, ok := tr.Get(mustPrefix(s))
		if !ok || v != i {
			t.Fatalf("Get(%s) = %d,%v, want %d,true", s, v, ok, i)
		}
	}
	if _, ok := tr.Get(mustPrefix("10.2.0.0/16")); ok {
		t.Fatal("Get of absent prefix succeeded")
	}
}

func TestInsertReplace(t *testing.T) {
	tr := New[string]()
	p := mustPrefix("203.0.113.0/24")
	if !tr.Insert(p, "a") {
		t.Fatal("first insert should add")
	}
	if tr.Insert(p, "b") {
		t.Fatal("second insert should replace")
	}
	if v, _ := tr.Get(p); v != "b" {
		t.Fatalf("value = %q, want b", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestInsertUnmaskedPrefixCanonicalized(t *testing.T) {
	tr := New[int]()
	// 10.0.0.55/24 and 10.0.0.0/24 are the same block.
	tr.Insert(netip.MustParsePrefix("10.0.0.55/24"), 7)
	if v, ok := tr.Get(mustPrefix("10.0.0.0/24")); !ok || v != 7 {
		t.Fatalf("Get canonical = %d,%v want 7,true", v, ok)
	}
}

func TestLookupLongestMatch(t *testing.T) {
	tr := New[string]()
	tr.Insert(mustPrefix("0.0.0.0/0"), "default")
	tr.Insert(mustPrefix("10.0.0.0/8"), "eight")
	tr.Insert(mustPrefix("10.1.0.0/16"), "sixteen")
	tr.Insert(mustPrefix("10.1.2.0/24"), "twentyfour")

	cases := []struct {
		addr string
		want string
	}{
		{"10.1.2.3", "twentyfour"},
		{"10.1.3.4", "sixteen"},
		{"10.2.0.1", "eight"},
		{"172.16.0.1", "default"},
	}
	for _, c := range cases {
		_, v, ok := tr.Lookup(netip.MustParseAddr(c.addr))
		if !ok || v != c.want {
			t.Errorf("Lookup(%s) = %q,%v want %q", c.addr, v, ok, c.want)
		}
	}
}

func TestLookupNoDefault(t *testing.T) {
	tr := New[string]()
	tr.Insert(mustPrefix("10.0.0.0/8"), "x")
	if _, _, ok := tr.Lookup(netip.MustParseAddr("11.0.0.1")); ok {
		t.Fatal("Lookup outside any prefix should miss")
	}
}

func TestDelete(t *testing.T) {
	tr := New[int]()
	ps := []string{"10.0.0.0/8", "10.0.0.0/16", "10.0.1.0/24", "10.128.0.0/9"}
	for i, s := range ps {
		tr.Insert(mustPrefix(s), i)
	}
	if !tr.Delete(mustPrefix("10.0.0.0/16")) {
		t.Fatal("Delete of present prefix failed")
	}
	if tr.Delete(mustPrefix("10.0.0.0/16")) {
		t.Fatal("Delete of absent prefix succeeded")
	}
	if _, ok := tr.Get(mustPrefix("10.0.0.0/16")); ok {
		t.Fatal("deleted prefix still present")
	}
	// Neighbors survive.
	for _, s := range []string{"10.0.0.0/8", "10.0.1.0/24", "10.128.0.0/9"} {
		if _, ok := tr.Get(mustPrefix(s)); !ok {
			t.Fatalf("prefix %s lost after unrelated delete", s)
		}
	}
	// LPM for an address under the deleted /16 now hits the /8.
	p, _, ok := tr.Lookup(netip.MustParseAddr("10.0.2.1"))
	if !ok || p != mustPrefix("10.0.0.0/8") {
		t.Fatalf("Lookup after delete = %v,%v want 10.0.0.0/8", p, ok)
	}
}

func TestWalkOrderAndCompleteness(t *testing.T) {
	tr := New[int]()
	ins := []string{"10.0.0.0/8", "10.0.0.0/16", "192.0.2.0/24", "10.255.0.0/16"}
	for i, s := range ins {
		tr.Insert(mustPrefix(s), i)
	}
	got := map[string]bool{}
	tr.Walk(func(p netip.Prefix, _ int) bool {
		got[p.String()] = true
		return true
	})
	if len(got) != len(ins) {
		t.Fatalf("Walk visited %d prefixes, want %d: %v", len(got), len(ins), got)
	}
	// Early stop.
	count := 0
	tr.Walk(func(netip.Prefix, int) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early-stop walk visited %d, want 2", count)
	}
}

func TestCoveredBy(t *testing.T) {
	tr := New[int]()
	for i, s := range []string{
		"100.64.0.0/19", "100.64.0.0/24", "100.64.5.0/24", "100.64.32.0/24", "8.8.8.0/24",
	} {
		tr.Insert(mustPrefix(s), i)
	}
	var got []string
	tr.CoveredBy(mustPrefix("100.64.0.0/19"), func(p netip.Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := map[string]bool{"100.64.0.0/19": true, "100.64.0.0/24": true, "100.64.5.0/24": true}
	if len(got) != len(want) {
		t.Fatalf("CoveredBy = %v, want keys %v", got, want)
	}
	for _, s := range got {
		if !want[s] {
			t.Fatalf("CoveredBy returned %s outside the covering block", s)
		}
	}
}

func TestSupernets(t *testing.T) {
	tr := New[int]()
	for i, s := range []string{
		"0.0.0.0/0", "100.64.0.0/10", "100.64.0.0/19", "100.64.0.0/24", "100.64.5.0/24", "8.8.8.0/24",
	} {
		tr.Insert(mustPrefix(s), i)
	}
	var got []string
	tr.Supernets(mustPrefix("100.64.0.0/24"), func(p netip.Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	// Shortest-to-longest, exact entry included, siblings excluded.
	want := []string{"0.0.0.0/0", "100.64.0.0/10", "100.64.0.0/19", "100.64.0.0/24"}
	if len(got) != len(want) {
		t.Fatalf("Supernets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Supernets[%d] = %s, want %s (order must be shortest first)", i, got[i], want[i])
		}
	}
	// A prefix only partially covered by a stored entry matches the
	// covering aggregates but not the narrower entry.
	got = got[:0]
	tr.Supernets(mustPrefix("100.64.0.0/12"), func(p netip.Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	if len(got) != 2 || got[0] != "0.0.0.0/0" || got[1] != "100.64.0.0/10" {
		t.Fatalf("Supernets(/12) = %v, want [0.0.0.0/0 100.64.0.0/10]", got)
	}
	// Early stop.
	n := 0
	tr.Supernets(mustPrefix("100.64.0.0/24"), func(netip.Prefix, int) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early-stop visited %d entries, want 1", n)
	}
	// The walk must not allocate: compiled filters run it per verdict.
	target := mustPrefix("100.64.5.0/24")
	if a := testing.AllocsPerRun(200, func() {
		tr.Supernets(target, func(netip.Prefix, int) bool { return true })
	}); a != 0 {
		t.Fatalf("Supernets allocates %v per run, want 0", a)
	}
}

func TestIPv6Separation(t *testing.T) {
	tr := New[string]()
	tr.Insert(mustPrefix("2001:db8::/32"), "v6")
	tr.Insert(mustPrefix("32.0.0.0/8"), "v4") // same leading bits as 2001: would be nonsense to mix
	if _, v, ok := tr.Lookup(netip.MustParseAddr("2001:db8::1")); !ok || v != "v6" {
		t.Fatalf("v6 lookup = %q,%v", v, ok)
	}
	if _, v, ok := tr.Lookup(netip.MustParseAddr("32.1.2.3")); !ok || v != "v4" {
		t.Fatalf("v4 lookup = %q,%v", v, ok)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d want 2", tr.Len())
	}
}

func TestLookupPrefix(t *testing.T) {
	tr := New[string]()
	tr.Insert(mustPrefix("10.0.0.0/8"), "eight")
	tr.Insert(mustPrefix("10.1.0.0/16"), "sixteen")
	p, v, ok := tr.LookupPrefix(mustPrefix("10.1.2.0/24"))
	if !ok || v != "sixteen" || p != mustPrefix("10.1.0.0/16") {
		t.Fatalf("LookupPrefix = %v,%q,%v", p, v, ok)
	}
	// A /12 spanning beyond the /16 matches only the /8.
	p, v, ok = tr.LookupPrefix(mustPrefix("10.0.0.0/12"))
	if !ok || v != "eight" {
		t.Fatalf("LookupPrefix /12 = %v,%q,%v", p, v, ok)
	}
}

// randomPrefix builds a valid random IPv4 prefix from quick-check data.
func randomPrefix(r *rand.Rand) netip.Prefix {
	var b [4]byte
	r.Read(b[:])
	bits := r.Intn(33)
	return netip.PrefixFrom(netip.AddrFrom4(b), bits).Masked()
}

// Property: after inserting a set of prefixes, every inserted prefix is
// retrievable and LPM of an address inside any inserted prefix returns a
// prefix at least as specific as the best brute-force match.
func TestQuickInsertLookupAgainstBruteForce(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%64) + 1
		tr := New[int]()
		set := map[netip.Prefix]int{}
		for i := 0; i < n; i++ {
			p := randomPrefix(r)
			set[p] = i
			tr.Insert(p, i)
		}
		if tr.Len() != len(set) {
			return false
		}
		for p, v := range set {
			got, ok := tr.Get(p)
			if !ok || got != v {
				return false
			}
		}
		// 32 random addresses: compare LPM to brute force.
		for i := 0; i < 32; i++ {
			var b [4]byte
			r.Read(b[:])
			addr := netip.AddrFrom4(b)
			var best netip.Prefix
			bestBits := -1
			for p := range set {
				if p.Contains(addr) && p.Bits() > bestBits {
					best, bestBits = p, p.Bits()
				}
			}
			gp, _, ok := tr.Lookup(addr)
			if (bestBits >= 0) != ok {
				return false
			}
			if ok && gp != best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: delete removes exactly the deleted prefix and nothing else.
func TestQuickDeletePreservesOthers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New[int]()
		set := map[netip.Prefix]int{}
		for i := 0; i < 48; i++ {
			p := randomPrefix(r)
			set[p] = i
			tr.Insert(p, i)
		}
		// Delete a random half.
		deleted := map[netip.Prefix]bool{}
		for p := range set {
			if r.Intn(2) == 0 {
				if !tr.Delete(p) {
					return false
				}
				deleted[p] = true
			}
		}
		for p, v := range set {
			got, ok := tr.Get(p)
			if deleted[p] {
				if ok {
					return false
				}
			} else if !ok || got != v {
				return false
			}
		}
		return tr.Len() == len(set)-len(deleted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeScaleInsertLookup(t *testing.T) {
	tr := New[int]()
	n := 50000
	for i := 0; i < n; i++ {
		a := netip.AddrFrom4([4]byte{byte(1 + i%200), byte(i / 200 % 256), byte(i / 51200 % 256), 0})
		tr.Insert(netip.PrefixFrom(a, 24), i)
	}
	if tr.Len() == 0 || tr.Len() > n {
		t.Fatalf("Len = %d", tr.Len())
	}
	hits := 0
	tr.Walk(func(netip.Prefix, int) bool { hits++; return true })
	if hits != tr.Len() {
		t.Fatalf("walk count %d != len %d", hits, tr.Len())
	}
}

func BenchmarkTrieInsert(b *testing.B) {
	prefixes := make([]netip.Prefix, 100000)
	for i := range prefixes {
		a := netip.AddrFrom4([4]byte{byte(1 + i%200), byte(i / 200 % 256), byte(i / 51200 % 256), 0})
		prefixes[i] = netip.PrefixFrom(a, 24)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New[int]()
		for j, p := range prefixes {
			tr.Insert(p, j)
		}
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	tr := New[int]()
	for i := 0; i < 100000; i++ {
		a := netip.AddrFrom4([4]byte{byte(1 + i%200), byte(i / 200 % 256), byte(i / 51200 % 256), 0})
		tr.Insert(netip.PrefixFrom(a, 24), i)
	}
	addrs := make([]netip.Addr, 1024)
	r := rand.New(rand.NewSource(42))
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{byte(1 + r.Intn(200)), byte(r.Intn(256)), byte(r.Intn(10)), byte(r.Intn(256))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}

func ExampleTrie_Lookup() {
	tr := New[string]()
	tr.Insert(netip.MustParsePrefix("10.0.0.0/8"), "coarse")
	tr.Insert(netip.MustParsePrefix("10.1.0.0/16"), "fine")
	_, v, _ := tr.Lookup(netip.MustParseAddr("10.1.2.3"))
	fmt.Println(v)
	// Output: fine
}

// TestLookupAndGetAllocFree pins the hot-path allocation behavior the
// million-route tables depend on: bit addressing via As4/As16 instead
// of AsSlice means reads allocate nothing per node visited.
func TestLookupAndGetAllocFree(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 1024; i++ {
		tr.Insert(netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24), i)
	}
	a4 := netip.MustParseAddr("10.2.200.1")
	p4 := mustPrefix("10.2.200.0/24")
	tr6 := New[int]()
	tr6.Insert(mustPrefix("2001:db8::/32"), 1)
	a6 := netip.MustParseAddr("2001:db8::1")

	if n := testing.AllocsPerRun(200, func() {
		tr.Lookup(a4)
		tr.Get(p4)
		tr6.Lookup(a6)
	}); n != 0 {
		t.Fatalf("lookup path allocates %v per run, want 0", n)
	}
}
