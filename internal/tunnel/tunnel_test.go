package tunnel

import (
	"bytes"
	"io"
	"net/netip"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"peering/internal/bufconn"
	"peering/internal/dataplane"
)

func muxPair(onNewA, onNewB func(*Stream)) (*Mux, *Mux) {
	ca, cb := bufconn.Pipe()
	return NewMux(ca, onNewA), NewMux(cb, onNewB)
}

func TestStreamRoundTrip(t *testing.T) {
	accepted := make(chan *Stream, 1)
	ma, mb := muxPair(nil, func(s *Stream) { accepted <- s })
	defer ma.Close()
	defer mb.Close()

	sa := ma.Open(7)
	if _, err := sa.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	var sb *Stream
	select {
	case sb = <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("acceptor never fired")
	}
	if sb.ID() != 7 {
		t.Fatalf("accepted stream id = %d", sb.ID())
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(sb, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("got %q", buf)
	}
	// Reply path.
	sb.Write([]byte("world"))
	if _, err := io.ReadFull(sa, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("got %q", buf)
	}
}

func TestStreamsAreIsolated(t *testing.T) {
	var mu sync.Mutex
	acc := map[uint32]*Stream{}
	ready := make(chan uint32, 8)
	ma, mb := muxPair(nil, func(s *Stream) {
		mu.Lock()
		acc[s.ID()] = s
		mu.Unlock()
		ready <- s.ID()
	})
	defer ma.Close()
	defer mb.Close()

	s1, s2 := ma.Open(1), ma.Open(2)
	s1.Write([]byte("one"))
	s2.Write([]byte("two"))
	<-ready
	<-ready
	mu.Lock()
	r1, r2 := acc[1], acc[2]
	mu.Unlock()
	b1, b2 := make([]byte, 3), make([]byte, 3)
	io.ReadFull(r1, b1)
	io.ReadFull(r2, b2)
	if string(b1) != "one" || string(b2) != "two" {
		t.Fatalf("cross-talk: %q / %q", b1, b2)
	}
}

func TestOpenIsIdempotent(t *testing.T) {
	ma, mb := muxPair(nil, nil)
	defer ma.Close()
	defer mb.Close()
	if ma.Open(5) != ma.Open(5) {
		t.Fatal("Open(5) returned distinct streams")
	}
}

func TestMuxCloseFailsStreams(t *testing.T) {
	ma, mb := muxPair(nil, nil)
	defer mb.Close()
	s := ma.Open(1)
	ma.Close()
	if _, err := s.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on closed mux succeeded")
	}
	select {
	case <-ma.Done():
	case <-time.After(time.Second):
		t.Fatal("Done not closed")
	}
}

func TestPeerDisconnectPropagates(t *testing.T) {
	ma, mb := muxPair(nil, nil)
	s := ma.Open(1)
	mb.Close() // remote side dies
	errCh := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(s, make([]byte, 1))
		errCh <- err
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("no error after peer disconnect")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader hung after peer disconnect")
	}
}

func TestStreamCloseEOF(t *testing.T) {
	accepted := make(chan *Stream, 1)
	ma, mb := muxPair(nil, func(s *Stream) { accepted <- s })
	defer ma.Close()
	defer mb.Close()
	sa := ma.Open(3)
	sa.Write([]byte("x"))
	sb := <-accepted
	io.ReadFull(sb, make([]byte, 1))
	sa.Close()
	if _, err := sa.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read after close = %v, want EOF", err)
	}
	if _, err := sa.Write([]byte("y")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestUnsolicitedStreamDroppedWithoutAcceptor(t *testing.T) {
	ma, mb := muxPair(nil, nil) // b has no acceptor
	defer ma.Close()
	defer mb.Close()
	s := ma.Open(9)
	if _, err := s.Write([]byte("ignored")); err != nil {
		t.Fatal(err)
	}
	// Later frames for the same unknown id are also dropped; the mux
	// stays healthy.
	if _, err := s.Write([]byte("still ignored")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-mb.Done():
		t.Fatal("mux died on unsolicited stream")
	case <-time.After(50 * time.Millisecond):
	}
}

func samplePacket() *dataplane.Packet {
	p := dataplane.NewPacket(netip.MustParseAddr("100.64.0.1"), netip.MustParseAddr("8.8.8.8"), dataplane.ProtoUDP)
	p.SrcPort, p.DstPort = 5353, 53
	p.Seq = 42
	p.Payload = []byte("dns query")
	return p
}

func TestPacketCodecRoundTrip(t *testing.T) {
	p := samplePacket()
	p.ICMP = dataplane.ICMPEchoRequest
	p.Orig = 77
	b, err := EncodePacket(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePacket(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != p.ID || got.Src != p.Src || got.Dst != p.Dst || got.TTL != p.TTL ||
		got.Proto != p.Proto || got.ICMP != p.ICMP || got.SrcPort != p.SrcPort ||
		got.DstPort != p.DstPort || got.Seq != p.Seq || got.Orig != p.Orig ||
		!bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", p, got)
	}
}

func TestPacketCodecRejectsMalformed(t *testing.T) {
	if _, err := DecodePacket([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame accepted")
	}
	p := samplePacket()
	b, _ := EncodePacket(p)
	if _, err := DecodePacket(b[:len(b)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := DecodePacket(append(b, 0)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

// Property: the packet codec round-trips arbitrary field values.
func TestQuickPacketCodec(t *testing.T) {
	f := func(id uint64, srcB, dstB [4]byte, ttl, proto, icmp uint8, sp, dp uint16, seq uint32, payload []byte) bool {
		p := &dataplane.Packet{
			ID: id, Src: netip.AddrFrom4(srcB), Dst: netip.AddrFrom4(dstB),
			TTL: ttl, Proto: dataplane.Proto(proto), ICMP: dataplane.ICMPType(icmp),
			SrcPort: sp, DstPort: dp, Seq: int(seq), Payload: payload,
		}
		b, err := EncodePacket(p)
		if err != nil {
			return false
		}
		got, err := DecodePacket(b)
		if err != nil {
			return false
		}
		return got.ID == p.ID && got.Src == p.Src && got.Dst == p.Dst &&
			got.TTL == p.TTL && got.Proto == p.Proto && got.Seq == p.Seq &&
			bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketTunnelEndToEnd(t *testing.T) {
	recvA := make(chan *dataplane.Packet, 8)
	recvB := make(chan *dataplane.Packet, 8)
	var ptB *PacketTunnel
	ready := make(chan struct{})
	ma, mb := muxPair(nil, nil)
	defer ma.Close()
	defer mb.Close()
	// B adopts the packet channel lazily via acceptor… but the packet
	// channel is conventionally pre-opened on both sides:
	ptA := NewPacketTunnel(ma, func(p *dataplane.Packet) { recvA <- p })
	ptB = NewPacketTunnel(mb, func(p *dataplane.Packet) { recvB <- p })
	close(ready)

	if err := ptA.Send(samplePacket()); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-recvB:
		if string(p.Payload) != "dns query" {
			t.Fatalf("payload = %q", p.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet not delivered A→B")
	}
	// Reverse direction.
	back := samplePacket()
	back.Payload = []byte("response")
	if err := ptB.Send(back); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-recvA:
		if string(p.Payload) != "response" {
			t.Fatalf("payload = %q", p.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet not delivered B→A")
	}
}

func TestTraceNotSerialized(t *testing.T) {
	p := samplePacket()
	p.Trace = []netip.Addr{netip.MustParseAddr("10.0.0.1")}
	b, _ := EncodePacket(p)
	got, _ := DecodePacket(b)
	if len(got.Trace) != 0 {
		t.Fatal("Trace crossed the tunnel — emulation metadata leaked")
	}
}

func TestManyStreamsConcurrent(t *testing.T) {
	const n = 64
	var mu sync.Mutex
	acc := map[uint32]*Stream{}
	ready := make(chan struct{}, n)
	ma, mb := muxPair(nil, func(s *Stream) {
		mu.Lock()
		acc[s.ID()] = s
		mu.Unlock()
		ready <- struct{}{}
	})
	defer ma.Close()
	defer mb.Close()
	var wg sync.WaitGroup
	for i := uint32(1); i <= n; i++ {
		wg.Add(1)
		go func(id uint32) {
			defer wg.Done()
			s := ma.Open(id)
			s.Write([]byte{byte(id)})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		select {
		case <-ready:
		case <-time.After(5 * time.Second):
			t.Fatal("not all streams accepted")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for id, s := range acc {
		b := make([]byte, 1)
		if _, err := io.ReadFull(s, b); err != nil || b[0] != byte(id) {
			t.Fatalf("stream %d: %v %v", id, b, err)
		}
	}
}
