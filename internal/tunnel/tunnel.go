// Package tunnel implements the client↔server transport: a stream
// multiplexer that carries many logical channels over one connection
// (the role OpenVPN tunnels + per-peer TCP sessions play in the paper)
// and a packet framing codec for exchanging data-plane traffic.
//
// A PEERING client holds exactly one transport to each server; over it
// run one BGP session per upstream peer (Quagga mode), or a single
// multiplexed session (BIRD/ADD-PATH mode), plus the data-plane packet
// channel. Channel 0 is reserved for packets; channels ≥1 are opened by
// the client, one per upstream peer session.
package tunnel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"peering/internal/bufpool"
)

// PacketChannel is the stream ID reserved for data-plane packets.
const PacketChannel uint32 = 0

// maxFrame bounds a single mux frame (header excluded).
const maxFrame = 1 << 20

// Mux multiplexes logical streams over one net.Conn. Both endpoints
// construct a Mux over their half; streams are identified by a shared
// ID convention (the opener assigns, the acceptor learns via OnStream).
type Mux struct {
	conn    net.Conn
	onNew   func(*Stream)
	writeMu sync.Mutex

	mu      sync.Mutex
	streams map[uint32]*Stream
	closed  bool
	err     error
	done    chan struct{}
}

// NewMux wraps conn. onNew fires (on the reader goroutine) whenever a
// frame arrives for a stream this side has not opened; it may be nil to
// reject unsolicited streams. Run starts automatically.
func NewMux(conn net.Conn, onNew func(*Stream)) *Mux {
	m := &Mux{
		conn:    conn,
		onNew:   onNew,
		streams: make(map[uint32]*Stream),
		done:    make(chan struct{}),
	}
	go m.readLoop()
	return m
}

// Open creates (or returns) the stream with the given ID.
func (m *Mux) Open(id uint32) *Stream {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.streams[id]; ok {
		return s
	}
	s := newStream(m, id)
	m.streams[id] = s
	return s
}

// CloseStream removes a stream and signals EOF to its reader.
func (m *Mux) CloseStream(id uint32) {
	m.mu.Lock()
	s := m.streams[id]
	delete(m.streams, id)
	m.mu.Unlock()
	if s != nil {
		s.shutdown(io.EOF)
	}
}

// Close tears down the mux and every stream.
func (m *Mux) Close() error {
	m.fail(errors.New("tunnel: mux closed"))
	return nil
}

// Done is closed when the mux has terminated.
func (m *Mux) Done() <-chan struct{} { return m.done }

// Err returns the terminal error.
func (m *Mux) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

func (m *Mux) fail(err error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.err = err
	streams := make([]*Stream, 0, len(m.streams))
	for _, s := range m.streams {
		streams = append(streams, s)
	}
	m.streams = map[uint32]*Stream{}
	close(m.done)
	m.mu.Unlock()
	m.conn.Close()
	for _, s := range streams {
		s.shutdown(err)
	}
}

// readLoop demultiplexes inbound frames.
func (m *Mux) readLoop() {
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(m.conn, hdr[:]); err != nil {
			m.fail(err)
			return
		}
		id := binary.BigEndian.Uint32(hdr[0:4])
		n := binary.BigEndian.Uint32(hdr[4:8])
		if n > maxFrame {
			m.fail(fmt.Errorf("tunnel: frame of %d bytes exceeds limit", n))
			return
		}
		// The payload buffer is pooled and ownership passes to
		// deliver, which queues it on the stream's chunk deque; it
		// returns to the pool once the stream's reader consumes it —
		// no copy and no per-frame garbage on the demux path.
		buf := bufpool.Get(int(n))
		if _, err := io.ReadFull(m.conn, buf); err != nil {
			bufpool.Put(buf)
			m.fail(err)
			return
		}
		m.mu.Lock()
		s, ok := m.streams[id]
		var isNew bool
		if !ok && !m.closed {
			if m.onNew == nil {
				m.mu.Unlock()
				bufpool.Put(buf)
				continue // unsolicited stream, no acceptor: drop
			}
			s = newStream(m, id)
			m.streams[id] = s
			isNew = true
		}
		m.mu.Unlock()
		if s == nil {
			bufpool.Put(buf)
			continue
		}
		if isNew {
			m.onNew(s)
		}
		s.deliver(buf)
	}
}

// writeFrame sends one frame for stream id.
func (m *Mux) writeFrame(id uint32, p []byte) error {
	if len(p) > maxFrame {
		return fmt.Errorf("tunnel: write of %d bytes exceeds frame limit", len(p))
	}
	// Header and payload go out in a single Write so fault-injecting
	// transports that drop whole calls (faultconn partitions) can never
	// split a frame and desynchronize the peer's framing. The frame
	// buffer is pooled; the underlying conn completes the write before
	// returning, so recycling after Write is safe.
	buf := bufpool.Get(8 + len(p))
	binary.BigEndian.PutUint32(buf[0:4], id)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(p)))
	copy(buf[8:], p)
	m.writeMu.Lock()
	_, err := m.conn.Write(buf)
	m.writeMu.Unlock()
	bufpool.Put(buf)
	return err
}

// Stream is one logical channel; it implements net.Conn so BGP sessions
// run over it unchanged.
//
// Unread bytes live in a deque of pooled frame chunks: deliver appends
// the frame buffer itself (ownership transfers from the mux read loop)
// and Read consumes chunks front to back, returning each exhausted
// chunk to bufpool. A flat append-grown buffer looks simpler but is
// quadratic when the reader lags — a client draining a full-table sync
// builds a multi-megabyte backlog, and every array growth recopies all
// of it. The deque never copies a delivered byte again: one copy in
// (the mux read), one copy out (Read), regardless of backlog depth.
type Stream struct {
	mux *Mux
	id  uint32

	mu     sync.Mutex
	cond   *sync.Cond
	chunks [][]byte // pooled; chunks[head][off:] is the next unread byte
	head   int
	off    int
	avail  int // total unread bytes across chunks
	closed bool
	err    error
}

var _ net.Conn = (*Stream)(nil)

func newStream(m *Mux, id uint32) *Stream {
	s := &Stream{mux: m, id: id}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// ID returns the stream's channel ID.
func (s *Stream) ID() uint32 { return s.id }

// deliver queues frame payload p for Read. Ownership of p (a bufpool
// buffer) transfers to the stream: it is returned to the pool once the
// reader consumes it, or immediately if the stream is closed or the
// frame is empty.
func (s *Stream) deliver(p []byte) {
	if len(p) == 0 {
		bufpool.Put(p)
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		bufpool.Put(p)
		return
	}
	s.chunks = append(s.chunks, p)
	s.avail += len(p)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// shutdown marks the stream closed. Chunks already delivered stay
// readable — a peer's parting messages (a BGP Cease ahead of the
// transport close) must reach the reader before it sees EOF. Chunks
// still queued when the last reader goes away are reclaimed by the GC
// rather than the pool: a missed recycle, never a leak.
func (s *Stream) shutdown(err error) {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.err = err
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// Read implements net.Conn. A single call copies from the front chunk
// only, so it may return fewer bytes than are buffered; callers
// already loop (io.ReadFull in the BGP message reader).
func (s *Stream) Read(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.avail == 0 {
		if s.closed {
			if s.err == nil || errors.Is(s.err, io.EOF) {
				return 0, io.EOF
			}
			return 0, s.err
		}
		s.cond.Wait()
	}
	c := s.chunks[s.head]
	n := copy(p, c[s.off:])
	s.off += n
	s.avail -= n
	if s.off == len(c) {
		bufpool.Put(c)
		s.chunks[s.head] = nil
		s.head++
		s.off = 0
		if s.head == len(s.chunks) {
			s.chunks, s.head = s.chunks[:0], 0
		} else if s.head >= 32 && s.head*2 >= len(s.chunks) {
			// Compact the deque's pointer slice (not the bytes) once
			// at least half of it is consumed slots.
			s.chunks = s.chunks[:copy(s.chunks, s.chunks[s.head:])]
			s.head = 0
		}
	}
	return n, nil
}

// Buffered reports how many bytes are queued for Read. Batch-aware
// readers (the BGP session reader) use it to drain already-arrived
// messages in one delivery instead of one handler call per message.
func (s *Stream) Buffered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.avail
}

// Write implements net.Conn.
func (s *Stream) Write(p []byte) (int, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return 0, io.ErrClosedPipe
	}
	if err := s.mux.writeFrame(s.id, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Close implements net.Conn: it detaches this stream from the mux.
func (s *Stream) Close() error {
	s.mux.mu.Lock()
	delete(s.mux.streams, s.id)
	s.mux.mu.Unlock()
	s.shutdown(io.EOF)
	return nil
}

// LocalAddr implements net.Conn.
func (s *Stream) LocalAddr() net.Addr { return streamAddr{s.id, "local"} }

// RemoteAddr implements net.Conn.
func (s *Stream) RemoteAddr() net.Addr { return streamAddr{s.id, "remote"} }

// SetDeadline implements net.Conn (not supported; no-op).
func (s *Stream) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn (not supported; no-op).
func (s *Stream) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn (not supported; no-op).
func (s *Stream) SetWriteDeadline(time.Time) error { return nil }

type streamAddr struct {
	id   uint32
	side string
}

func (a streamAddr) Network() string { return "tunnel" }
func (a streamAddr) String() string  { return fmt.Sprintf("stream-%d-%s", a.id, a.side) }
