package tunnel

import (
	"bytes"
	"testing"

	"peering/internal/dataplane"
)

// FuzzTunnelFrame checks decode∘encode identity on the packet framing:
// any byte string DecodePacket accepts must re-encode to exactly the
// bytes that were decoded. The format carries no redundancy (no
// checksums, no padding, one canonical field order), so a fixed point
// here means the codec neither drops nor invents information — the
// same invariant the MRT and wire-format fuzzers enforce.
func FuzzTunnelFrame(f *testing.F) {
	// Seeds from the unit-test vectors: the canonical UDP sample, an
	// ICMP variant, an empty payload, and the malformed shapes the
	// codec must keep rejecting.
	seed := func(p *dataplane.Packet) {
		b, err := EncodePacket(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(samplePacket())
	icmp := samplePacket()
	icmp.ICMP = dataplane.ICMPEchoRequest
	icmp.Orig = 77
	seed(icmp)
	empty := samplePacket()
	empty.Payload = nil
	seed(empty)
	f.Add([]byte{1, 2, 3})
	b, _ := EncodePacket(samplePacket())
	f.Add(b[:len(b)-1])
	f.Add(append(bytes.Clone(b), 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := DecodePacket(data)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		out, err := EncodePacket(pkt)
		if err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode∘encode not identity:\n in  %x\n out %x", data, out)
		}
	})
}
