package tunnel

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"

	"peering/internal/dataplane"
)

// Packet wire format (all big-endian):
//
//	u64 id | 4B src | 4B dst | u8 ttl | u8 proto | u8 icmp |
//	u16 sport | u16 dport | u32 seq | u64 orig | u32 plen | payload
//
// Trace is deliberately not serialized: it is emulation-side metadata
// and must not cross the "wire" (a real tunnel would not carry it).
const packetHeaderLen = 8 + 4 + 4 + 1 + 1 + 1 + 2 + 2 + 4 + 8 + 4

// EncodePacket serializes pkt for transmission through a tunnel.
func EncodePacket(pkt *dataplane.Packet) ([]byte, error) {
	if !pkt.Src.Is4() || !pkt.Dst.Is4() {
		return nil, fmt.Errorf("tunnel: packet %v→%v is not IPv4", pkt.Src, pkt.Dst)
	}
	b := make([]byte, packetHeaderLen, packetHeaderLen+len(pkt.Payload))
	off := 0
	binary.BigEndian.PutUint64(b[off:], pkt.ID)
	off += 8
	src, dst := pkt.Src.As4(), pkt.Dst.As4()
	copy(b[off:], src[:])
	off += 4
	copy(b[off:], dst[:])
	off += 4
	b[off] = pkt.TTL
	off++
	b[off] = byte(pkt.Proto)
	off++
	b[off] = byte(pkt.ICMP)
	off++
	binary.BigEndian.PutUint16(b[off:], pkt.SrcPort)
	off += 2
	binary.BigEndian.PutUint16(b[off:], pkt.DstPort)
	off += 2
	binary.BigEndian.PutUint32(b[off:], uint32(pkt.Seq))
	off += 4
	binary.BigEndian.PutUint64(b[off:], pkt.Orig)
	off += 8
	binary.BigEndian.PutUint32(b[off:], uint32(len(pkt.Payload)))
	return append(b, pkt.Payload...), nil
}

// DecodePacket parses a packet produced by EncodePacket.
func DecodePacket(b []byte) (*dataplane.Packet, error) {
	if len(b) < packetHeaderLen {
		return nil, fmt.Errorf("tunnel: packet frame too short (%d bytes)", len(b))
	}
	pkt := &dataplane.Packet{}
	off := 0
	pkt.ID = binary.BigEndian.Uint64(b[off:])
	off += 8
	pkt.Src = netip.AddrFrom4([4]byte(b[off : off+4]))
	off += 4
	pkt.Dst = netip.AddrFrom4([4]byte(b[off : off+4]))
	off += 4
	pkt.TTL = b[off]
	off++
	pkt.Proto = dataplane.Proto(b[off])
	off++
	pkt.ICMP = dataplane.ICMPType(b[off])
	off++
	pkt.SrcPort = binary.BigEndian.Uint16(b[off:])
	off += 2
	pkt.DstPort = binary.BigEndian.Uint16(b[off:])
	off += 2
	pkt.Seq = int(binary.BigEndian.Uint32(b[off:]))
	off += 4
	pkt.Orig = binary.BigEndian.Uint64(b[off:])
	off += 8
	plen := int(binary.BigEndian.Uint32(b[off:]))
	off += 4
	if len(b) != off+plen {
		return nil, fmt.Errorf("tunnel: payload length mismatch (%d declared, %d present)", plen, len(b)-off)
	}
	pkt.Payload = append([]byte(nil), b[off:]...)
	return pkt, nil
}

// PacketTunnel sends and receives data-plane packets over one mux
// stream, bridging the emulated data plane across the "wire".
type PacketTunnel struct {
	stream *Stream
}

// NewPacketTunnel opens (or adopts) the packet channel on m and starts
// delivering inbound packets to onPacket.
func NewPacketTunnel(m *Mux, onPacket func(*dataplane.Packet)) *PacketTunnel {
	pt := &PacketTunnel{stream: m.Open(PacketChannel)}
	go pt.readLoop(onPacket)
	return pt
}

// AdoptStream runs a packet tunnel over an already-accepted stream.
func AdoptStream(s *Stream, onPacket func(*dataplane.Packet)) *PacketTunnel {
	pt := &PacketTunnel{stream: s}
	go pt.readLoop(onPacket)
	return pt
}

// Send encodes and transmits pkt.
func (pt *PacketTunnel) Send(pkt *dataplane.Packet) error {
	b, err := EncodePacket(pkt)
	if err != nil {
		return err
	}
	// Length-prefix inside the stream: streams are byte pipes.
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(b)))
	if _, err := pt.stream.Write(l[:]); err != nil {
		return err
	}
	_, err = pt.stream.Write(b)
	return err
}

func (pt *PacketTunnel) readLoop(onPacket func(*dataplane.Packet)) {
	for {
		var l [4]byte
		if _, err := io.ReadFull(pt.stream, l[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(l[:])
		if n > maxFrame {
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(pt.stream, buf); err != nil {
			return
		}
		pkt, err := DecodePacket(buf)
		if err != nil {
			continue // corrupt frame: drop, keep the tunnel up
		}
		onPacket(pkt)
	}
}

// Close shuts the packet channel.
func (pt *PacketTunnel) Close() error { return pt.stream.Close() }
