package server

// This file defines the server's instrument set on the unified
// telemetry registry. Event counters are bumped inline at the point
// the event happens (lock-free, no shared stats mutex); "current size"
// readings — connected clients, queue depths, RIB sizes, advert counts
// — are scrape-time funcs that sample live structures, so label sets
// follow client/peer churn without ever leaking a stale series.
//
// Server.Stats() is rebuilt on top of the same registry: the public
// Stats struct survives as the JSON shape of GET /stats, but every
// field is now read from a telemetry instrument.

import (
	"peering/internal/bgp"
	"peering/internal/policy/compiled"
	"peering/internal/telemetry"
	"peering/internal/wire"
)

// convergenceBuckets span the three regimes an announcement can cross
// before reaching an upstream: sub-millisecond for the synchronous
// relay path, seconds for redial backoff while an upstream session
// recovers, and minutes when the announcement waits out a restart
// window. Measured against the server's injected clock, so virtual-
// clock tests land deterministic observations.
var convergenceBuckets = []float64{0.001, 0.01, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// packingBuckets cover NLRIs-per-UPDATE from unbatched (1) up past the
// practical MaxMsgLen packing ceiling; powers of two match the
// doubling behavior of batch growth.
var packingBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// batchBuckets cover NLRIs-per-ingest-batch: reader-side batching caps
// a run at maxReadBatch UPDATEs but each UPDATE can carry many NLRIs,
// and bulk-sync chunks run to thousands, so the range extends past the
// packing ceiling.
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

// serverMetrics holds every instrument the server layer owns, plus the
// shared BGP session metrics it hands to each session config.
type serverMetrics struct {
	reg *telemetry.Registry
	bgp *bgp.Metrics

	// Relay and safety-intervention counters (§3 interposition).
	routesFromUpstreams  *telemetry.Counter
	announcementsRelayed *telemetry.Counter
	hijacksBlocked       *telemetry.Counter
	originBlocked        *telemetry.Counter
	flapsSuppressed      *telemetry.Counter
	spoofsBlocked        *telemetry.Counter
	staleRetained        *telemetry.Counter
	staleFlushed         *telemetry.Counter
	packetsToClients     *telemetry.Counter
	packetsFromClients   *telemetry.Counter

	// Fan-out pipeline counters (see fanout.go).
	fanoutRelayed      *telemetry.Counter
	fanoutUpdates      *telemetry.Counter
	fanoutCoalesced    *telemetry.Counter
	fanoutBackpressure *telemetry.Counter
	fanoutHighWater    *telemetry.Gauge
	fanoutPacked       *telemetry.Histogram

	// Batched-ingest and shared-frame instruments (frame.go, ingest.go).
	// ingestBatchSize records folded entries per shard batch; the frame
	// counters split fan-out flushes between the encode-once shared path
	// and the per-session private fallback.
	ingestBatchSize    *telemetry.Histogram
	fanoutFrameShared  *telemetry.Counter
	fanoutFramePrivate *telemetry.Counter

	// Compiled-policy verdict counters (policy/compiled, wired in
	// ingest.go and vetAnnouncement). The CounterVec is the registered
	// family; policyAccepted and policyRejected are its label children,
	// resolved once here so the per-NLRI hot path never touches the
	// vec's label map.
	policyVerdicts       *telemetry.CounterVec
	policyAccepted       *telemetry.Counter
	policyRejected       [compiled.NumClasses]*telemetry.Counter
	policyCompileSeconds *telemetry.Gauge

	// Quota and shedding counters (quota.go): every containment action
	// taken against a client that outgrew its limits.
	quotaWarnings  *telemetry.Counter
	quotaRejected  *telemetry.Counter
	quotaTeardowns *telemetry.Counter
	quotaShed      *telemetry.Counter
	quotaResyncs   *telemetry.Counter

	// convergence measures client-announce → upstream-send latency.
	convergence *telemetry.Histogram
}

// newServerMetrics registers the server's metric families on r. The
// scrape-time funcs close over s, so one registry must not be shared
// by two Servers (registration would panic on the duplicate names
// anyway).
func newServerMetrics(r *telemetry.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{
		reg: r,
		bgp: bgp.NewMetrics(r),

		routesFromUpstreams: r.Counter("peering_server_routes_from_upstreams_total",
			"UPDATE NLRIs received from upstream peers."),
		announcementsRelayed: r.Counter("peering_server_announcements_relayed_total",
			"Client NLRIs accepted by the safety pipeline and sent upstream."),
		hijacksBlocked: r.Counter("peering_server_hijacks_blocked_total",
			"Client announcements outside the client's allocation."),
		originBlocked: r.Counter("peering_server_origin_blocked_total",
			"Client announcements with a disallowed origin AS."),
		flapsSuppressed: r.Counter("peering_server_flaps_suppressed_total",
			"Client announcements dropped by route-flap dampening."),
		spoofsBlocked: r.Counter("peering_server_spoofs_blocked_total",
			"Client packets dropped by the source-address filter."),
		staleRetained: r.Counter("peering_server_stale_routes_retained_total",
			"Routes marked stale instead of withdrawn on session loss."),
		staleFlushed: r.Counter("peering_server_stale_routes_flushed_total",
			"Stale routes withdrawn at end-of-RIB or restart-window close."),
		packetsToClients: r.Counter("peering_server_packets_to_clients_total",
			"Data-plane packets forwarded into client tunnels."),
		packetsFromClients: r.Counter("peering_server_packets_from_clients_total",
			"Data-plane packets accepted from client tunnels."),

		fanoutRelayed: r.Counter("peering_fanout_routes_relayed_total",
			"NLRIs fanned out to clients."),
		fanoutUpdates: r.Counter("peering_fanout_updates_total",
			"UPDATE messages sent to clients by the fan-out pipeline."),
		fanoutCoalesced: r.Counter("peering_fanout_coalesced_total",
			"Queued fan-out operations overwritten before being sent."),
		fanoutBackpressure: r.Counter("peering_fanout_backpressure_total",
			"Enqueues that found a client's queue above the high-water mark."),
		fanoutHighWater: r.Gauge("peering_fanout_queue_high_water",
			"Deepest any client's pending fan-out queue has been."),
		fanoutPacked: r.Histogram("peering_fanout_update_nlris",
			"NLRIs packed into each UPDATE sent to a client.", packingBuckets),

		ingestBatchSize: r.Histogram("peering_ingest_batch_size",
			"Folded NLRI entries per batched shard-ingest operation.", batchBuckets),
		fanoutFrameShared: r.Counter("peering_fanout_frames_shared_total",
			"Broadcast frames flushed to a client from the shared encode-once bytes."),
		fanoutFramePrivate: r.Counter("peering_fanout_frames_private_total",
			"Broadcast frames that fell back to a per-session private encode (diverged codec options or encode failure)."),

		policyVerdicts: r.CounterVec("peering_policy_verdicts_total",
			"Compiled safety-filter verdicts by rule class and outcome (upstream ingest and client vetting).",
			"rule", "outcome"),
		policyCompileSeconds: r.Gauge("peering_policy_compile_seconds",
			"Duration of the most recent rule-set compilation."),

		quotaWarnings: r.Counter("peering_quota_prefix_warnings_total",
			"Clients crossing the max-prefix warn line (once per excursion)."),
		quotaRejected: r.Counter("peering_quota_prefixes_rejected_total",
			"Client announcements rejected at the max-prefix limit."),
		quotaTeardowns: r.Counter("peering_quota_teardowns_total",
			"Clients torn down (Cease/max-prefixes-reached) for quota abuse."),
		quotaShed: r.Counter("peering_quota_fanout_shed_total",
			"Fan-out announcements shed at a lagging client's queue cap."),
		quotaResyncs: r.Counter("peering_quota_resyncs_total",
			"Full-table resyncs performed after fan-out shedding."),

		convergence: r.Histogram("peering_convergence_announce_latency_seconds",
			"Latency from client announcement received to the route's first successful send to an upstream peer, including any redial backoff or restart window the announcement waited out.",
			convergenceBuckets),
	}

	// Resolve the verdict children up front: rejects keyed by the rule
	// class that fired, accepts under rule="none" (an accepted route
	// passed every family, no single rule decided it).
	m.policyAccepted = m.policyVerdicts.With("none", "accept")
	for c := compiled.Class(0); c < compiled.NumClasses; c++ {
		m.policyRejected[c] = m.policyVerdicts.With(c.String(), "reject")
	}

	r.GaugeFunc("peering_policy_generation",
		"Load sequence number of the active compiled rule set (0 = unfiltered).",
		func() float64 { return float64(s.policy.Current().Generation()) })
	r.GaugeVecFunc("peering_policy_rules",
		"Active compiled rules per rule class.", []string{"class"},
		func(emit func(v float64, labelValues ...string)) {
			st := s.policy.Current().Status()
			if !st.Enabled {
				return
			}
			emit(float64(st.PrefixRules), "prefix")
			emit(float64(st.OriginRules), "origin")
			emit(float64(st.PeerlockRules), "peerlock")
			emit(float64(st.NoTransitASes), "peerlock_lite")
			emit(float64(st.MetroRules), "metro")
		})
	r.GaugeFunc("peering_fanout_shared_frame_ratio",
		"Fraction of broadcast-frame flushes served from the shared encoding (1.0 = every client reused the same bytes; 0 when no frames have been flushed).",
		func() float64 {
			shared := m.fanoutFrameShared.Value()
			total := shared + m.fanoutFramePrivate.Value()
			if total == 0 {
				return 0
			}
			return float64(shared) / float64(total)
		})
	r.GaugeFunc("peering_server_clients",
		"Clients currently connected.",
		func() float64 { return float64(s.ClientCount()) })
	r.GaugeFunc("peering_ingest_pending",
		"Upstream update operations queued in the sharded ingest pool.",
		func() float64 { return float64(s.ingest.pending.Load()) })
	r.GaugeFunc("peering_ingest_shards",
		"Prefix-hash shards per Adj-RIB-In (and ingest workers).",
		func() float64 { return float64(s.shards) })
	r.GaugeVecFunc("peering_fanout_queue_depth",
		"Pending fan-out operations per connected client.", []string{"client"},
		func(emit func(v float64, labelValues ...string)) {
			for id, d := range s.QueueDepths() {
				emit(float64(d), id)
			}
		})
	r.GaugeVecFunc("peering_rib_routes",
		"Adj-RIB-In size per upstream peer.", []string{"peer"},
		func(emit func(v float64, labelValues ...string)) {
			for _, u := range s.Upstreams() {
				emit(float64(u.RoutesIn()), u.cfg.Name)
			}
		})
	r.GaugeVecFunc("peering_rib_adverts",
		"Prefixes currently advertised to upstreams per owning client.", []string{"client"},
		func(emit func(v float64, labelValues ...string)) {
			byOwner := make(map[string]int)
			for _, u := range s.Upstreams() {
				u.mu.RLock()
				for _, ad := range u.advertised {
					byOwner[ad.owner]++
				}
				u.mu.RUnlock()
			}
			for owner, n := range byOwner {
				emit(float64(n), owner)
			}
		})
	return m
}

// countVerdict records one compiled-policy verdict on the right label
// child.
func (m *serverMetrics) countVerdict(v compiled.Verdict) {
	if v.Accept {
		m.policyAccepted.Inc()
		return
	}
	m.policyRejected[v.Class].Inc()
}

// policyRejectedTotal sums rejects across rule classes (Stats).
func (m *serverMetrics) policyRejectedTotal() uint64 {
	var n uint64
	for _, c := range m.policyRejected {
		n += c.Value()
	}
	return n
}

// observeConvergence closes the convergence measurement for adverts in
// sent that are still pending their first successful transmission to
// upstream u: the elapsed time since the client's announcement was
// received is recorded on the latency histogram. Called after a
// successful session Send, from both the direct relay path and the
// Established replay of deferred announcements.
func (s *Server) observeConvergence(u *Upstream, sent []wire.NLRI) {
	now := s.clk.Now()
	u.mu.Lock()
	for _, n := range sent {
		if ad := u.advertised[n.Prefix]; ad != nil && ad.pending {
			ad.pending = false
			s.metrics.convergence.Observe(now.Sub(ad.announced).Seconds())
		}
	}
	u.mu.Unlock()
}

// Telemetry returns the server's metric registry — the backing store
// of both GET /stats and GET /metrics.
func (s *Server) Telemetry() *telemetry.Registry { return s.metrics.reg }

// Stats returns a snapshot of counters, read from the telemetry
// registry. The struct is the stable JSON shape of GET /stats; the
// fields are aggregates of the same instruments GET /metrics exposes.
func (s *Server) Stats() Stats {
	m := s.metrics
	return Stats{
		RoutesFromUpstreams:    m.routesFromUpstreams.Value(),
		RoutesRelayedToClients: m.fanoutRelayed.Value(),
		UpdatesToClients:       m.fanoutUpdates.Value(),
		FanoutCoalesced:        m.fanoutCoalesced.Value(),
		FanoutBackpressure:     m.fanoutBackpressure.Value(),
		FanoutQueueHighWater:   uint64(m.fanoutHighWater.Value()),
		AnnouncementsRelayed:   m.announcementsRelayed.Value(),
		HijacksBlocked:         m.hijacksBlocked.Value(),
		OriginBlocked:          m.originBlocked.Value(),
		FlapsSuppressed:        m.flapsSuppressed.Value(),
		SpoofsBlocked:          m.spoofsBlocked.Value(),
		PolicyAccepted:         m.policyAccepted.Value(),
		PolicyRejected:         m.policyRejectedTotal(),
		ReconnectAttempts:      m.bgp.Reconnects.Value(),
		SessionRecoveries:      m.bgp.Recoveries.Value(),
		StaleRoutesRetained:    m.staleRetained.Value(),
		StaleRoutesFlushed:     m.staleFlushed.Value(),
		PacketsToClients:       m.packetsToClients.Value(),
		PacketsFromClients:     m.packetsFromClients.Value(),
		QuotaWarnings:          m.quotaWarnings.Value(),
		QuotaRejected:          m.quotaRejected.Value(),
		QuotaTeardowns:         m.quotaTeardowns.Value(),
		FanoutShed:             m.quotaShed.Value(),
		FanoutResyncs:          m.quotaResyncs.Value(),
	}
}

// ConvergenceSamples reports how many convergence latencies have been
// observed and their sum in seconds (test and debugging hook; the full
// distribution is on /metrics).
func (s *Server) ConvergenceSamples() (count uint64, sumSeconds float64) {
	return s.metrics.convergence.Count(), s.metrics.convergence.Sum()
}
