// Package server implements the PEERING server (mux) — the paper's
// core contribution (§3). A server holds real BGP sessions with
// upstream peers (IXP route servers, bilateral peers, transit
// providers) and gives hosted experiments full interdomain control
// without running the BGP decision process itself:
//
//   - every route from every upstream peer is relayed to every client
//     (not just one best path), over one session per (client × peer) in
//     Quagga mode or a single ADD-PATH session in BIRD mode;
//   - client announcements are steered per upstream peer, so a client
//     can pick and choose peers to emulate a topology;
//   - safety is enforced by interposition: prefix-ownership and
//     origin filters (no hijacks or leaks), route-flap dampening,
//     private-ASN stripping, and source-address (spoof) filtering on
//     the data plane;
//   - upstream sessions stay established across client churn, so the
//     rest of the Internet sees a stable AS.
//
// Every counter the server keeps — relay volumes, safety
// interventions, fan-out pressure, graceful-restart retention, and an
// end-to-end convergence-latency histogram — lives on one telemetry
// registry (Config.Metrics, or a private one reachable via
// Telemetry). GET /stats and GET /metrics are two encodings of those
// same instruments; see metrics.go and DESIGN.md §10.
package server

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"peering/internal/bgp"
	"peering/internal/clock"
	"peering/internal/dampen"
	"peering/internal/dataplane"
	"peering/internal/mrt"
	"peering/internal/muxproto"
	"peering/internal/policy/compiled"
	"peering/internal/rib"
	"peering/internal/router"
	"peering/internal/telemetry"
	"peering/internal/trie"
	"peering/internal/tunnel"
	"peering/internal/wire"
)

// Config parameterizes a PEERING server.
type Config struct {
	// Site names this server ("amsterdam01", "phoenix01").
	Site string
	// ASN is the testbed's public AS number (PEERING operates one ASN
	// and presents it to all peers).
	ASN uint32
	// RouterID is the server's BGP identifier.
	RouterID netip.Addr
	// Mode selects Quagga (per-peer sessions) or BIRD (ADD-PATH)
	// multiplexing toward clients.
	Mode muxproto.Mode
	// Dampening configures route-flap dampening of client
	// announcements; zero value uses dampen.DefaultConfig.
	Dampening dampen.Config
	// Clock drives timers (nil = system).
	Clock clock.Clock
	// RestartWindow bounds how long routes from a lost session are
	// retained as stale before being flushed (RFC 4724-style graceful
	// restart). Zero means DefaultRestartWindow.
	RestartWindow time.Duration
	// Reconnect shapes supervised session redial backoff; zero value
	// uses the bgp.Backoff defaults.
	Reconnect bgp.Backoff
	// FanoutHighWater is the per-client pending fan-out queue depth
	// above which enqueues count as backpressure. The queue itself is
	// bounded by coalescing (at most one pending operation per
	// (upstream, prefix)); this threshold only tunes when a client is
	// reported as slow. Zero means DefaultFanoutHighWater.
	FanoutHighWater int
	// Quota bounds per-client resource usage (max-prefix limits,
	// fan-out queue caps); see QuotaConfig. The zero value applies no
	// prefix limit and the default queue cap.
	Quota QuotaConfig
	// Shards is the prefix-hash shard count used for every per-upstream
	// Adj-RIB-In, the ingest worker pool, and each client's fan-out
	// queue (rounded up to a power of two; 0 = rib.DefaultShards). One
	// worker owns each shard, so this is also the ingest parallelism
	// for a full-table flood.
	Shards int
	// Metrics is the telemetry registry the server registers its metric
	// families on (nil = a private registry, reachable via Telemetry).
	// Because family names are fixed, two Servers must not share one
	// registry.
	Metrics *telemetry.Registry
	// Policy is an optional initial safety rule set (prefix ownership,
	// ROA origins, Peerlock), compiled and installed before any session
	// comes up. Nil starts the server unfiltered; LoadPolicy installs
	// or replaces rules at runtime.
	Policy *compiled.RuleSet
}

// DefaultRestartWindow is used when Config.RestartWindow is zero.
const DefaultRestartWindow = 2 * time.Minute

// Stats counts server activity, including safety interventions.
type Stats struct {
	// RoutesFromUpstreams counts UPDATE NLRIs received from peers.
	RoutesFromUpstreams uint64
	// RoutesRelayedToClients counts NLRIs fanned out to clients.
	RoutesRelayedToClients uint64
	// UpdatesToClients counts UPDATE messages sent to clients by the
	// fan-out pipeline. Batch packing puts many NLRIs in one message, so
	// RoutesRelayedToClients / UpdatesToClients is the packing ratio.
	UpdatesToClients uint64
	// FanoutCoalesced counts queued fan-out operations overwritten by a
	// newer operation on the same (upstream, prefix) before being sent.
	FanoutCoalesced uint64
	// FanoutBackpressure counts enqueues that found a client's pending
	// queue above Config.FanoutHighWater (a slow client; upstream
	// readers keep going regardless).
	FanoutBackpressure uint64
	// FanoutQueueHighWater is the deepest any client's pending queue has
	// been.
	FanoutQueueHighWater uint64
	// AnnouncementsRelayed counts client NLRIs accepted and sent to
	// upstream peers.
	AnnouncementsRelayed uint64
	// HijacksBlocked counts client announcements outside their
	// allocation.
	HijacksBlocked uint64
	// OriginBlocked counts announcements with a disallowed origin.
	OriginBlocked uint64
	// FlapsSuppressed counts announcements dropped by dampening.
	FlapsSuppressed uint64
	// SpoofsBlocked counts client packets with forbidden sources.
	SpoofsBlocked uint64
	// PolicyAccepted / PolicyRejected count compiled safety-filter
	// verdicts (both directions; rejects are summed across rule
	// classes — the per-class split is on /metrics).
	PolicyAccepted uint64
	PolicyRejected uint64
	// ReconnectAttempts counts supervised session redials.
	ReconnectAttempts uint64
	// SessionRecoveries counts sessions re-established after a failure.
	SessionRecoveries uint64
	// StaleRoutesRetained counts routes marked stale (instead of
	// withdrawn) when a session was lost.
	StaleRoutesRetained uint64
	// StaleRoutesFlushed counts stale routes withdrawn because they were
	// not re-announced by end-of-RIB or the restart window closed.
	StaleRoutesFlushed uint64
	// PacketsToClients / PacketsFromClients count tunnel traffic.
	PacketsToClients   uint64
	PacketsFromClients uint64
	// QuotaWarnings / QuotaRejected / QuotaTeardowns count the three
	// max-prefix containment tiers; FanoutShed and FanoutResyncs count
	// queue-cap shedding on lagging clients and the full-table resyncs
	// that recover them.
	QuotaWarnings  uint64
	QuotaRejected  uint64
	QuotaTeardowns uint64
	FanoutShed     uint64
	FanoutResyncs  uint64
}

// UpstreamConfig describes one upstream peer of the server.
type UpstreamConfig struct {
	// ID is the stable identifier (≥1) used in stream numbering and
	// ADD-PATH path IDs.
	ID uint32
	// Name labels the peer.
	Name string
	// ASN is the peer's AS number (0 = learn from OPEN).
	ASN uint32
	// PeerAddr identifies the peer in client RIBs (its real address,
	// e.g. an IXP LAN address).
	PeerAddr netip.Addr
	// LocalAddr is the server's address facing this peer (NEXT_HOP for
	// announcements).
	LocalAddr netip.Addr
	// Transit marks paid upstream providers.
	Transit bool
	// FedVia names the federated mux this upstream is reached through
	// (empty for a directly attached peer). A federated upstream mirrors
	// a peer at another site: ASN/PeerAddr/Transit describe the real
	// remote peer, but the session itself runs iBGP over the backhaul to
	// the remote mux's federation agent, so the expected peer AS is the
	// testbed's own (see upstreamSessionConfig).
	FedVia string
	// Import, when set, is called on every non-refresh UPDATE from this
	// upstream before it is archived, interned, or dispatched — the
	// federation layer's chance to strip backhaul-only communities and
	// count import metrics. The update may be mutated in place.
	Import func(*wire.Update)
}

// advert is one prefix the server currently announces to an upstream on
// behalf of a client. Stale adverts are being retained across a client
// session loss (graceful restart) and are flushed if the client does not
// re-announce them before end-of-RIB or the restart window closes.
type advert struct {
	owner string
	attrs *wire.Attrs
	stale bool
	// announced is the clock reading when the client's announcement was
	// received; pending is true until the advert's first successful send
	// to the upstream closes the convergence-latency measurement (see
	// observeConvergence). An announcement accepted while the upstream
	// is down stays pending until the Established replay delivers it.
	announced time.Time
	pending   bool
}

// Upstream is one live upstream peering.
type Upstream struct {
	cfg UpstreamConfig
	srv *Server

	// adjIn is internally synchronized (sharded); it is deliberately
	// outside u.mu so ingest workers on different shards never contend
	// here. u.mu still orders session identity, advert bookkeeping, and
	// the stale timer.
	adjIn *rib.ShardedAdj

	mu   sync.RWMutex
	sess *bgp.Session
	sup  *bgp.Supervisor
	// advertised maps prefix → the advert bookkeeping for withdraw,
	// disconnect, and graceful-restart handling.
	advertised map[netip.Prefix]*advert
	// advCount tracks, per owning client, how many entries of
	// advertised it holds — the incremental max-prefix quota reading.
	// Maintained by addAdvertLocked/delAdvertLocked alongside every
	// mutation of advertised.
	advCount map[string]int
	// quotaWarned marks clients currently above the warn line, so the
	// warning tier fires once per excursion.
	quotaWarned map[string]bool
	// staleTimer backstops the graceful-restart window for adjIn.
	staleTimer clock.Timer
}

// addAdvertLocked stores an advert keeping the per-client count
// consistent. Callers hold u.mu.
func (u *Upstream) addAdvertLocked(p netip.Prefix, ad *advert) {
	if u.advertised[p] == nil {
		u.advCount[ad.owner]++
	}
	u.advertised[p] = ad
}

// delAdvertLocked removes prefix p's advert, keeping the per-client
// count and warn-tier tracking consistent. Callers hold u.mu.
func (u *Upstream) delAdvertLocked(p netip.Prefix) {
	ad := u.advertised[p]
	if ad == nil {
		return
	}
	delete(u.advertised, p)
	n := u.advCount[ad.owner] - 1
	if n <= 0 {
		delete(u.advCount, ad.owner)
	} else {
		u.advCount[ad.owner] = n
	}
	if u.quotaWarned[ad.owner] {
		limit := u.srv.cfg.Quota.MaxPrefixes
		if acct, ok := u.srv.accountOf(ad.owner); ok && acct.MaxPrefixes > 0 {
			limit = acct.MaxPrefixes
		}
		if limit <= 0 || n < u.srv.warnLine(limit) {
			delete(u.quotaWarned, ad.owner)
		}
	}
}

// Config returns the upstream's configuration.
func (u *Upstream) Config() UpstreamConfig { return u.cfg }

// Established reports whether the upstream session is up. Read-only:
// stats pollers calling this never block the update write path.
func (u *Upstream) Established() bool {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return u.sess != nil && u.sess.State() == bgp.StateEstablished
}

// RoutesIn reports how many routes this peer currently exports to us.
// Lock-free: the sharded table keeps an atomic count.
func (u *Upstream) RoutesIn() int { return u.adjIn.Len() }

// ClientAccount is a vetted experiment's identity and authorization.
type ClientAccount struct {
	// ID is the experiment identifier.
	ID string
	// Allocation is the prefix set the client may announce and source
	// traffic from (a /24 per client out of the testbed /19, §3).
	Allocation []netip.Prefix
	// SpoofAllowed grants controlled source-address spoofing.
	SpoofAllowed bool
	// TunnelAddr is the client's address on the server's tunnel LAN
	// (used as the dampening source key).
	TunnelAddr netip.Addr
	// MaxPrefixes overrides Config.Quota.MaxPrefixes for this client
	// (0 = use the server-wide default).
	MaxPrefixes int
	// Federated marks a federation agent's account (internal/federation):
	// it announces on behalf of clients vetted at other muxes, so its
	// Allocation (the testbed supernet) is checked by containment instead
	// of being claimed exclusively in the allocation trie — several
	// agents and this mux's own clients all share that space.
	Federated bool
}

// clientConn is one connected client.
type clientConn struct {
	account ClientAccount
	mux     *tunnel.Mux
	pkt     *tunnel.PacketTunnel
	// out is the client's coalescing outbound queue, drained by a
	// dedicated worker (see fanout.go).
	out *outQueue

	mu sync.Mutex
	// sups supervises the BGP sessions toward this client, keyed by
	// upstream ID (BIRD: key 0). Supervisors redial their stream when a
	// session dies while the tunnel itself survives.
	sups map[uint32]*bgp.Supervisor
	// tunIface is the server-side dataplane interface toward this
	// client's tunnel.
	tunIface *dataplane.Iface
	// quotaStrikes counts announcements rejected over the max-prefix
	// limit; crossing Quota.TeardownAfter ends the client's service.
	quotaStrikes int
	// tornDown marks a client already torn down for a quota breach.
	tornDown bool
}

// session returns the live session for an upstream ID, if any (it may
// still be handshaking).
func (c *clientConn) session(id uint32) *bgp.Session {
	c.mu.Lock()
	defer c.mu.Unlock()
	sup := c.sups[id]
	if sup == nil {
		return nil
	}
	return sup.Session()
}

// stopSupervisors administratively ends all of the client's sessions.
func (c *clientConn) stopSupervisors() {
	c.mu.Lock()
	sups := make([]*bgp.Supervisor, 0, len(c.sups))
	for _, sup := range c.sups {
		sups = append(sups, sup)
	}
	c.mu.Unlock()
	for _, sup := range sups {
		sup.Stop()
	}
}

// drainSupervisors cancels redialing but leaves live sessions to end on
// their own. Used when the tunnel transport is already dead: each
// session's reader still drains its buffer, so a Cease the client sent
// just before the transport died is processed (immediate withdrawal)
// instead of being raced out by an administrative teardown (which would
// wrongly retain the routes stale).
func (c *clientConn) drainSupervisors() {
	c.mu.Lock()
	sups := make([]*bgp.Supervisor, 0, len(c.sups))
	for _, sup := range c.sups {
		sups = append(sups, sup)
	}
	c.mu.Unlock()
	for _, sup := range sups {
		sup.Drain()
	}
}

// Server is a PEERING server instance.
//
// Lock hierarchy (DESIGN.md §12): the registry locks below are leaves —
// code holding an Upstream.mu or clientConn.mu may take them, never the
// reverse, and no code path holds two registry locks at once. All three
// registries are read-mostly: the hot path (relay, vetting, stats) only
// ever read-locks them, so concurrent upstream readers stop serializing
// on client admission and bookkeeping.
type Server struct {
	cfg     Config
	damper  *dampen.Damper
	clk     clock.Clock
	dp      *dataplane.Router
	metrics *serverMetrics
	// intern canonicalizes every attribute set the server stores or
	// relays, so N clients × M routes share O(distinct attr sets) memory.
	intern *wire.InternTable
	// shards is the resolved Config.Shards; ingest is the per-shard
	// worker pool that owns all Adj-RIB-In mutation (see ingest.go).
	shards int
	ingest *ingestPool
	// policy holds the compiled safety filter (prefix ownership, ROA
	// origin validation, Peerlock) behind an atomic pointer. Ingest
	// workers and the client vetting path load it lock-free; LoadPolicy
	// swaps it. Nil current filter = unfiltered.
	policy compiled.Engine

	upMu      sync.RWMutex
	upstreams map[uint32]*Upstream

	clMu    sync.RWMutex
	clients map[string]*clientConn
	// clientSnap is a copy-on-write snapshot of clients, rebuilt under
	// clMu on every membership change and read lock-free by the ingest
	// workers (once per relayed update — a fresh slice there would be
	// the hot path's dominant allocation).
	clientSnap atomic.Pointer[[]*clientConn]

	acctMu   sync.RWMutex
	accounts map[string]ClientAccount
	alloc    *trie.Trie[string] // prefix → client ID

	// timerMu guards restartTimers, which backstop per-client
	// graceful-restart windows: if the client has not re-announced its
	// stale routes by then, they flush.
	timerMu       sync.Mutex
	restartTimers map[string]clock.Timer

	// archMu guards the optional MRT archive and its snapshot sequence
	// (see warmstart.go).
	archMu      sync.Mutex
	arch        *mrt.Archive
	archSnapSeq int
}

// New creates a server.
func New(cfg Config) *Server {
	if cfg.Mode == "" {
		cfg.Mode = muxproto.ModeQuagga
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Dampening.HalfLife == 0 {
		cfg.Dampening = dampen.DefaultConfig()
	}
	if cfg.RestartWindow <= 0 {
		cfg.RestartWindow = DefaultRestartWindow
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		cfg:           cfg,
		damper:        dampen.New(cfg.Dampening, cfg.Clock),
		clk:           cfg.Clock,
		dp:            dataplane.NewRouter(cfg.Site),
		intern:        wire.NewInternTable(),
		shards:        rib.ShardCount(cfg.Shards),
		upstreams:     make(map[uint32]*Upstream),
		clients:       make(map[string]*clientConn),
		accounts:      make(map[string]ClientAccount),
		alloc:         trie.New[string](),
		restartTimers: make(map[string]clock.Timer),
	}
	s.clientSnap.Store(&[]*clientConn{})
	s.ingest = newIngestPool(s, s.shards)
	s.metrics = newServerMetrics(reg, s)
	s.damper.Instrument(reg)
	if cfg.Policy != nil {
		s.LoadPolicy(cfg.Policy)
	}
	return s
}

// LoadPolicy compiles rs and atomically installs it as the server's
// safety filter: upstream routes are vetted pre-RIB in the ingest
// workers, client announcements in vetAnnouncement. Every in-flight
// update sees either the old filter or the new one, never a mixture —
// the ingest worker loads the filter pointer once per operation. A nil
// rs uninstalls filtering. Reloads apply to traffic from this moment
// on: routes already accepted into an Adj-RIB-In under the old rules
// stay until their peer updates them (bounce the session or replay the
// archive to re-vet a full table).
func (s *Server) LoadPolicy(rs *compiled.RuleSet) *compiled.Filter {
	f := s.policy.Load(rs)
	if f != nil {
		s.metrics.policyCompileSeconds.Set(f.Status().CompileSeconds)
	}
	return f
}

// PolicyStatus reports the active filter's shape (Enabled false when
// the server runs unfiltered) — the body of GET /policy.
func (s *Server) PolicyStatus() compiled.Status {
	return s.policy.Current().Status()
}

// ASN returns the testbed AS number.
func (s *Server) ASN() uint32 { return s.cfg.ASN }

// Site returns the server's site name.
func (s *Server) Site() string { return s.cfg.Site }

// DP returns the server's dataplane router (for wiring into fabrics).
func (s *Server) DP() *dataplane.Router { return s.dp }

// ---------------------------------------------------------------------
// Upstream side

// AddUpstream registers an upstream peer. Attach starts its session.
func (s *Server) AddUpstream(cfg UpstreamConfig) (*Upstream, error) {
	if cfg.ID == 0 {
		return nil, errors.New("server: upstream ID must be ≥1 (0 is reserved)")
	}
	s.upMu.Lock()
	if _, dup := s.upstreams[cfg.ID]; dup {
		s.upMu.Unlock()
		return nil, fmt.Errorf("server: upstream ID %d already registered", cfg.ID)
	}
	u := &Upstream{
		cfg: cfg, srv: s, adjIn: rib.NewShardedAdj(s.shards),
		advertised:  make(map[netip.Prefix]*advert),
		advCount:    make(map[string]int),
		quotaWarned: make(map[string]bool),
	}
	u.adjIn.SetInterner(s.intern)
	s.upstreams[cfg.ID] = u
	s.upMu.Unlock()
	// A client whose session came up before this upstream existed gets
	// no further Established replay for it, so replay the (still empty)
	// table now: the walk opens the client's live-traffic sync gates for
	// this upstream, ordered against future ingest by the shard locks.
	// Clients registering concurrently replay on their own Established,
	// which reads the upstream registry after this store.
	for _, c := range s.clientList() {
		s.enqueueReplay(c, u, false)
	}
	return u, nil
}

// Upstream returns the upstream with the given ID.
func (s *Server) Upstream(id uint32) *Upstream {
	s.upMu.RLock()
	defer s.upMu.RUnlock()
	return s.upstreams[id]
}

// Upstreams lists all registered upstream peers.
func (s *Server) Upstreams() []*Upstream {
	s.upMu.RLock()
	defer s.upMu.RUnlock()
	out := make([]*Upstream, 0, len(s.upstreams))
	for _, u := range s.upstreams {
		out = append(out, u)
	}
	return out
}

// upstreamSessionConfig is the session config shared by supervised and
// unsupervised upstream attachment.
func (s *Server) upstreamSessionConfig(u *Upstream) bgp.Config {
	peerAS := u.cfg.ASN
	if u.cfg.FedVia != "" {
		// Federated upstream: cfg.ASN describes the real peer at the far
		// exchange, but the wire session is iBGP with the remote mux's
		// federation agent.
		peerAS = s.cfg.ASN
	}
	return bgp.Config{
		LocalAS:  s.cfg.ASN,
		LocalID:  s.cfg.RouterID,
		PeerAS:   peerAS,
		Clock:    s.clk,
		Metrics:  s.metrics.bgp,
		Describe: fmt.Sprintf("%s-up-%s", s.cfg.Site, u.cfg.Name),
	}
}

// AttachUpstream runs the BGP session with upstream u over conn. The
// session is not supervised: if it dies it stays down (but its routes
// are still retained stale for the restart window). Prefer
// AttachUpstreamSupervised for transports that can be redialed.
func (s *Server) AttachUpstream(u *Upstream, conn net.Conn) *bgp.Session {
	sess := bgp.New(conn, s.upstreamSessionConfig(u), &upstreamHandler{u: u})
	u.mu.Lock()
	u.sess = sess
	u.mu.Unlock()
	go sess.Run()
	return sess
}

// AttachUpstreamSupervised brings up the BGP session with upstream u
// through a supervisor that redials with backoff on failure. On
// re-establishment the server re-announces the routes it was announcing
// on behalf of clients and sends end-of-RIB; routes learned from the
// peer are retained stale in the meantime.
func (s *Server) AttachUpstreamSupervised(u *Upstream, dial func() (net.Conn, error)) *bgp.Supervisor {
	sup := bgp.NewSupervisor(bgp.SupervisorConfig{
		Session: s.upstreamSessionConfig(u),
		Dial:    dial,
		Backoff: s.cfg.Reconnect,
	}, &upstreamHandler{u: u})
	u.mu.Lock()
	u.sup = sup
	u.mu.Unlock()
	sup.Start()
	return sup
}

type upstreamHandler struct{ u *Upstream }

func (h *upstreamHandler) Established(sess *bgp.Session) {
	u := h.u
	var outs []wire.AttrRoute
	u.mu.Lock()
	u.sess = sess
	// Re-announce everything we were advertising on this peering before
	// the restart (including stale adverts: they have not been withdrawn
	// from the world, so the recovered peer must keep hearing them).
	for p, ad := range u.advertised {
		outs = append(outs, wire.AttrRoute{NLRI: wire.NLRI{Prefix: p}, Attrs: ad.attrs})
	}
	u.mu.Unlock()
	for _, upd := range wire.PackUpdates(nil, outs, sess.Options()) {
		if sess.Send(upd) != nil {
			return // session died mid-replay; the next Established retries
		}
		// Announcements accepted while the peering was down converge here.
		u.srv.observeConvergence(u, upd.Reach)
	}
	// End-of-RIB: tells a graceful-restart peer our replay is complete.
	sess.Send(&wire.Update{})
}

func (h *upstreamHandler) UpdateReceived(sess *bgp.Session, upd *wire.Update) {
	h.u.srv.handleUpstreamUpdate(h.u, sess, upd)
}

// UpdateBatchReceived implements bgp.BatchHandler: on transports that
// report buffered bytes, the session reader hands over every UPDATE
// already in flight as one slice, and the whole run enters the sharded
// ingest as one batch per shard instead of one op per message.
func (h *upstreamHandler) UpdateBatchReceived(sess *bgp.Session, upds []*wire.Update) {
	h.u.srv.handleUpstreamBatch(h.u, sess, upds)
}

func (h *upstreamHandler) Closed(_ *bgp.Session, err error) {
	h.u.srv.handleUpstreamDown(h.u, err)
}

// handleUpstreamUpdate relays a peer's routes to every client. The
// server deliberately does NOT run best-path selection: each client
// sees each peer's routes verbatim (§3).
func (s *Server) handleUpstreamUpdate(u *Upstream, sess *bgp.Session, upd *wire.Update) {
	if upd.Refresh {
		return // refresh requests from upstreams are not honored yet
	}
	// The federation import hook runs before anything else sees the
	// update (archive included, so warm restarts rebuild the same
	// post-import table): it strips backhaul-only communities and counts
	// cross-mux import metrics.
	if u.cfg.Import != nil {
		u.cfg.Import(upd)
	}
	// Archive before interpreting: End-of-RIB markers belong in the
	// trace too (warm restart replays them as harmless no-ops).
	s.archiveUpstream(u, sess, upd)
	if upd.IsEndOfRIB() {
		// The peer finished replaying its table after a restart: every
		// route still stale was not re-announced and must go.
		s.flushUpstreamStale(u)
		return
	}
	// Canonicalize the attribute set once: a stable table re-announced by
	// a churny peer resolves to the pointer already shared by the RIB and
	// every client queue, so nothing below clones.
	upd.Attrs = s.intern.Intern(upd.Attrs)
	if upd.Attrs != nil && len(upd.Reach) > 0 {
		s.metrics.routesFromUpstreams.Add(uint64(len(upd.Reach)))
	}
	// Hand the update to the shard workers: they book-keep the
	// Adj-RIB-In (so late-joining clients get a full replay) and fan
	// out through the per-client queues. The reader never blocks on a
	// slow client or on another peer's flood, and upd.Attrs (shared,
	// immutable) rides into every queue without cloning.
	s.ingest.dispatch(u, sess.PeerAS(), sess.PeerID(), upd)
}

// handleUpstreamBatch is the batched twin of handleUpstreamUpdate:
// per-message bookkeeping (import hook, archive, interning, metrics)
// stays per UPDATE, but the runs between End-of-RIB markers dispatch
// into the shard workers as one batch — one channel send and one
// table-lock pass per touched shard for the whole run.
func (s *Server) handleUpstreamBatch(u *Upstream, sess *bgp.Session, upds []*wire.Update) {
	run := make([]*wire.Update, 0, len(upds))
	flush := func() {
		if len(run) > 0 {
			s.ingest.dispatchBatch(u, sess.PeerAS(), sess.PeerID(), run)
			run = run[:0]
		}
	}
	for _, upd := range upds {
		if upd.Refresh {
			continue // refresh requests from upstreams are not honored yet
		}
		if u.cfg.Import != nil {
			u.cfg.Import(upd)
		}
		s.archiveUpstream(u, sess, upd)
		if upd.IsEndOfRIB() {
			// The stale sweep must observe every update before the
			// marker: dispatch the run first (flushUpstreamStale fences
			// the pipeline itself).
			flush()
			s.flushUpstreamStale(u)
			continue
		}
		upd.Attrs = s.intern.Intern(upd.Attrs)
		if upd.Attrs != nil && len(upd.Reach) > 0 {
			s.metrics.routesFromUpstreams.Add(uint64(len(upd.Reach)))
		}
		run = append(run, upd)
	}
	flush()
}

// sessionKey maps an upstream to the client-session routing key and
// per-route ADD-PATH ID for the server's mode: Quagga clients hold one
// session per upstream (key = upstream ID), BIRD clients one ADD-PATH
// session (key 0) with the upstream ID carried as the path ID.
func (s *Server) sessionKey(u *Upstream) (skey uint32, pathID wire.PathID) {
	if s.cfg.Mode == muxproto.ModeBIRD {
		return 0, wire.PathID(u.cfg.ID)
	}
	return u.cfg.ID, 0
}

// handleUpstreamDown reacts to the loss of an upstream session. A
// transport failure marks the peer's routes stale for the restart
// window (RFC 4724: keep forwarding while the session recovers); a
// deliberate teardown (our Close or the peer's Cease) withdraws them
// from clients immediately.
func (s *Server) handleUpstreamDown(u *Upstream, err error) {
	// The session is dead, so no new updates are arriving, but its last
	// ones may still sit in the ingest pipeline; fence them through so
	// the stale-mark (or teardown walk) below sees the complete table.
	s.ingest.barrier()
	if err != nil && !bgp.IsPeerCease(err) {
		n := u.adjIn.MarkAllStale()
		u.mu.Lock()
		u.sess = nil
		if u.staleTimer != nil {
			u.staleTimer.Stop()
		}
		u.staleTimer = s.clk.AfterFunc(s.cfg.RestartWindow, func() {
			s.flushUpstreamStale(u)
		})
		u.mu.Unlock()
		if n > 0 {
			s.metrics.staleRetained.Add(uint64(n))
		}
		return
	}

	var prefixes []netip.Prefix
	u.adjIn.Walk(func(r *rib.Route) bool {
		prefixes = append(prefixes, r.Prefix)
		return true
	})
	u.adjIn.Clear()
	u.mu.Lock()
	u.sess = nil
	// A restart-window backstop armed by an earlier unclean loss must
	// not outlive the peering it was guarding: the Adj-RIB-In is empty
	// now, and a late firing would wrongly disarm a future window.
	if u.staleTimer != nil {
		u.staleTimer.Stop()
		u.staleTimer = nil
	}
	u.mu.Unlock()
	if len(prefixes) == 0 {
		return
	}
	for _, c := range s.clientList() {
		for _, p := range prefixes {
			c.out.put(u.cfg.ID, p, nil)
		}
	}
}

// flushUpstreamStale withdraws from clients every adjIn route still
// stale: graceful restart is over (end-of-RIB arrived or the window
// closed) and the peer did not re-announce them.
func (s *Server) flushUpstreamStale(u *Upstream) {
	// A refresh the peer sent just before End-of-RIB may still be in
	// the ingest pipeline; fence it through before sweeping, or the
	// re-announced route would be flushed as stale.
	s.ingest.barrier()
	swept := u.adjIn.SweepStale()
	u.mu.Lock()
	if u.staleTimer != nil {
		u.staleTimer.Stop()
		u.staleTimer = nil
	}
	u.mu.Unlock()
	if len(swept) == 0 {
		return
	}
	s.metrics.staleFlushed.Add(uint64(len(swept)))
	for _, c := range s.clientList() {
		for _, r := range swept {
			c.out.put(u.cfg.ID, r.Prefix, nil)
		}
	}
}

// clientList returns the copy-on-write snapshot of connected clients.
// The returned slice is shared and must not be mutated.
func (s *Server) clientList() []*clientConn { return *s.clientSnap.Load() }

// refreshClientSnapLocked rebuilds the copy-on-write client snapshot.
// Callers hold clMu.
func (s *Server) refreshClientSnapLocked() {
	clients := make([]*clientConn, 0, len(s.clients))
	for _, c := range s.clients {
		clients = append(clients, c)
	}
	s.clientSnap.Store(&clients)
}

// ---------------------------------------------------------------------
// Client side

// RegisterClient records a vetted experiment account. Must precede
// AcceptClient for that ID.
func (s *Server) RegisterClient(acct ClientAccount) error {
	s.acctMu.Lock()
	defer s.acctMu.Unlock()
	if _, dup := s.accounts[acct.ID]; dup {
		return fmt.Errorf("server: client %q already registered", acct.ID)
	}
	if !acct.Federated {
		for _, p := range acct.Allocation {
			if owner, ok := s.alloc.Get(p); ok {
				return fmt.Errorf("server: prefix %v already allocated to %q", p, owner)
			}
		}
		for _, p := range acct.Allocation {
			s.alloc.Insert(p, acct.ID)
		}
	}
	s.accounts[acct.ID] = acct
	return nil
}

// allocatedTo reports whether prefix p falls inside client id's
// allocation (p must be covered by an allocated block owned by id).
// Federated agents are not in the allocation trie (their blocks overlap
// this mux's own clients'), so they are checked by containment: the
// originating mux already vetted the prefix against the real owner.
func (s *Server) allocatedTo(id string, p netip.Prefix) bool {
	s.acctMu.RLock()
	defer s.acctMu.RUnlock()
	if _, owner, ok := s.alloc.LookupPrefix(p); ok && owner == id {
		return true
	}
	acct, ok := s.accounts[id]
	if !ok || !acct.Federated {
		return false
	}
	for _, alloc := range acct.Allocation {
		if alloc.Contains(p.Addr()) && alloc.Bits() <= p.Bits() {
			return true
		}
	}
	return false
}

// accountOf returns the registered account for client id.
func (s *Server) accountOf(id string) (ClientAccount, bool) {
	s.acctMu.RLock()
	defer s.acctMu.RUnlock()
	acct, ok := s.accounts[id]
	return acct, ok
}

// ownerOfAddr returns the client owning the allocation containing addr.
func (s *Server) ownerOfAddr(addr netip.Addr) (string, bool) {
	s.acctMu.RLock()
	defer s.acctMu.RUnlock()
	_, owner, ok := s.alloc.Lookup(addr)
	return owner, ok
}

// AcceptClient binds transport conn to the registered account id: it
// sends provisioning, starts per-upstream (or ADD-PATH) BGP sessions,
// and wires the packet tunnel into the server's data plane. A client
// that is already connected is superseded: its old transport is torn
// down and its announced routes are retained stale so the fresh
// connection can reclaim them without churning the upstreams.
func (s *Server) AcceptClient(id string, conn net.Conn) error {
	s.acctMu.RLock()
	acct, ok := s.accounts[id]
	s.acctMu.RUnlock()
	if !ok {
		return fmt.Errorf("server: unknown client %q (experiments must be vetted first)", id)
	}
	s.clMu.Lock()
	old := s.clients[id]
	delete(s.clients, id)
	s.refreshClientSnapLocked()
	s.clMu.Unlock()
	upstreams := s.Upstreams()
	if old != nil {
		old.stopSupervisors()
		old.mux.Close()
		s.markClientStale(id, nil)
	}

	c := &clientConn{account: acct, sups: make(map[uint32]*bgp.Supervisor)}
	c.out = newOutQueue(s.cfg.FanoutHighWater, s.cfg.Quota.maxQueueOps(), s.shards)
	c.mux = tunnel.NewMux(conn, nil)

	s.clMu.Lock()
	s.clients[id] = c
	s.refreshClientSnapLocked()
	s.clMu.Unlock()

	// The fan-out worker drains c.out for the life of the transport.
	go s.runFanout(c)

	// The handshake (provisioning, client ack, session bring-up) runs
	// asynchronously: the client may not even be connected yet, and a
	// server must never block its accept path on one client.
	go s.clientHandshake(c, upstreams)

	// Reap state when the transport dies.
	go func() {
		<-c.mux.Done()
		s.detachClient(c)
	}()
	return nil
}

// clientHandshake provisions a newly accepted client and brings up its
// data and control channels.
func (s *Server) clientHandshake(c *clientConn, upstreams []*Upstream) {
	id := c.account.ID
	acct := c.account
	ctrl := c.mux.Open(muxproto.StreamControl)
	prov := &muxproto.Provisioning{
		Site:         s.cfg.Site,
		ASN:          s.cfg.ASN,
		Mode:         s.cfg.Mode,
		Allocation:   acct.Allocation,
		SpoofAllowed: acct.SpoofAllowed,
	}
	for _, u := range upstreams {
		prov.Upstreams = append(prov.Upstreams, muxproto.UpstreamInfo{
			ID: u.cfg.ID, ASN: u.cfg.ASN, Name: u.cfg.Name,
			PeerAddr: u.cfg.PeerAddr, Transit: u.cfg.Transit, Via: u.cfg.FedVia,
		})
	}
	if err := muxproto.WriteProvisioning(ctrl, prov); err != nil {
		c.mux.Close()
		return
	}
	// Await the client's ack so its stream acceptor is ready before
	// BGP OPENs start arriving.
	ackBuf := make([]byte, 3)
	if _, err := ctrl.Read(ackBuf); err != nil {
		c.mux.Close()
		return
	}

	// Data-plane wiring: a link between the server router and a node
	// that forwards into the tunnel.
	te := &tunnelEndpoint{srv: s, c: c}
	_, svIface, tunIface := dataplane.Connect(s.dp, netip.Addr{}, "tun-"+id, te, acct.TunnelAddr, "srv")
	s.dp.AddIface(svIface)
	c.tunIface = tunIface
	for _, p := range acct.Allocation {
		s.dp.SetRoute(p, acct.TunnelAddr, svIface)
	}
	c.pkt = tunnel.NewPacketTunnel(c.mux, func(pkt *dataplane.Packet) {
		s.handleClientPacket(c, pkt)
	})

	// BGP sessions, each under a supervisor: a session that dies while
	// the tunnel survives (e.g. hold-timer expiry during congestion) is
	// redialed on a fresh stream with backoff.
	startSup := func(key, streamID uint32, scfg bgp.Config, h bgp.Handler) {
		sup := bgp.NewSupervisor(bgp.SupervisorConfig{
			Session: scfg,
			Dial: func() (net.Conn, error) {
				select {
				case <-c.mux.Done():
					return nil, fmt.Errorf("server: client %s transport closed", id)
				default:
					return c.mux.Open(streamID), nil
				}
			},
			Backoff: s.cfg.Reconnect,
		}, h)
		c.mu.Lock()
		c.sups[key] = sup
		c.mu.Unlock()
		sup.Start()
	}
	if s.cfg.Mode == muxproto.ModeBIRD {
		startSup(0, muxproto.StreamBGPBase, bgp.Config{
			LocalAS: s.cfg.ASN, LocalID: s.cfg.RouterID, Clock: s.clk,
			AddPath:  true,
			Metrics:  s.metrics.bgp,
			Describe: fmt.Sprintf("%s-cl-%s", s.cfg.Site, id),
		}, &clientSessHandler{srv: s, c: c, birdMode: true})
	} else {
		for _, u := range upstreams {
			startSup(u.cfg.ID, muxproto.StreamBGPBase+u.cfg.ID, bgp.Config{
				LocalAS: s.cfg.ASN, LocalID: s.cfg.RouterID, Clock: s.clk,
				Metrics:  s.metrics.bgp,
				Describe: fmt.Sprintf("%s-cl-%s-up-%s", s.cfg.Site, id, u.cfg.Name),
			}, &clientSessHandler{srv: s, c: c, upstream: u})
		}
	}
}

// ClientCount reports connected clients.
func (s *Server) ClientCount() int {
	s.clMu.RLock()
	defer s.clMu.RUnlock()
	return len(s.clients)
}

// QueueDepths reports each connected client's pending fan-out queue
// depth (operations plus end-of-RIB markers not yet flushed) — the live
// backpressure view behind GET /stats. Stats pollers hold only the
// read lock, so they never stall client admission or the relay path.
func (s *Server) QueueDepths() map[string]int {
	out := make(map[string]int)
	for _, c := range s.clientList() {
		out[c.account.ID] = c.out.depth()
	}
	return out
}

// detachClient reaps a client whose transport died without a BGP-level
// goodbye. Upstream sessions stay up (§3: stability across experiment
// churn), and — new with graceful restart — the client's announcements
// are retained stale for the restart window so a quick reconnect does
// not churn the upstreams. A client that closed cleanly (Cease) has
// already been withdrawn by the session handler, so this finds nothing
// left to retain.
func (s *Server) detachClient(c *clientConn) {
	id := c.account.ID
	s.clMu.Lock()
	if s.clients[id] != c {
		s.clMu.Unlock()
		return // superseded by a newer connection, or already detached
	}
	delete(s.clients, id)
	s.refreshClientSnapLocked()
	s.clMu.Unlock()
	c.drainSupervisors()
	s.markClientStale(id, nil)
}

// markClientStale flags every advert owned by client id as stale and
// arms the restart-window backstop. only limits the marking to one
// upstream (Quagga-mode session loss); nil means all upstreams.
func (s *Server) markClientStale(id string, only *Upstream) {
	ups := []*Upstream{only}
	if only == nil {
		ups = s.Upstreams()
	}
	n := 0
	for _, u := range ups {
		u.mu.Lock()
		for _, ad := range u.advertised {
			if ad.owner == id && !ad.stale {
				ad.stale = true
				n++
			}
		}
		u.mu.Unlock()
	}
	if n == 0 {
		return
	}
	s.metrics.staleRetained.Add(uint64(n))
	s.timerMu.Lock()
	if _, armed := s.restartTimers[id]; !armed {
		s.restartTimers[id] = s.clk.AfterFunc(s.cfg.RestartWindow, func() {
			s.flushClientStale(id, nil)
		})
	}
	s.timerMu.Unlock()
}

// flushClientStale withdraws from upstreams every advert of client id
// still stale: the client's restart is over (it sent end-of-RIB, or the
// window closed) and these routes were not re-announced. only limits
// the flush to one upstream; nil means all.
func (s *Server) flushClientStale(id string, only *Upstream) {
	ups := []*Upstream{only}
	if only == nil {
		ups = s.Upstreams()
	}
	total := 0
	for _, u := range ups {
		var wd []wire.NLRI
		u.mu.Lock()
		for p, ad := range u.advertised {
			if ad.owner == id && ad.stale {
				wd = append(wd, wire.NLRI{Prefix: p})
			}
		}
		for _, n := range wd {
			u.delAdvertLocked(n.Prefix)
		}
		sess := u.sess
		u.mu.Unlock()
		total += len(wd)
		if len(wd) > 0 && sess != nil {
			for _, upd := range wire.PackUpdates(wd, nil, sess.Options()) {
				sess.Send(upd)
			}
		}
	}
	if total > 0 {
		s.metrics.staleFlushed.Add(uint64(total))
	}
	// Disarm the backstop once nothing stale remains for this client.
	if s.clientStaleCount(id) == 0 {
		s.timerMu.Lock()
		if t := s.restartTimers[id]; t != nil {
			t.Stop()
			delete(s.restartTimers, id)
		}
		s.timerMu.Unlock()
	}
}

// clientStaleCount counts stale adverts owned by client id.
func (s *Server) clientStaleCount(id string) int {
	n := 0
	for _, u := range s.Upstreams() {
		u.mu.RLock()
		for _, ad := range u.advertised {
			if ad.owner == id && ad.stale {
				n++
			}
		}
		u.mu.RUnlock()
	}
	return n
}

// withdrawClient withdraws all of client id's adverts (stale or not)
// from the given upstreams immediately — the client said goodbye with a
// Cease, so there is no restart to wait for.
func (s *Server) withdrawClient(id string, only *Upstream) {
	ups := []*Upstream{only}
	if only == nil {
		ups = s.Upstreams()
	}
	for _, u := range ups {
		var wd []wire.NLRI
		u.mu.Lock()
		for p, ad := range u.advertised {
			if ad.owner == id {
				wd = append(wd, wire.NLRI{Prefix: p})
			}
		}
		for _, n := range wd {
			u.delAdvertLocked(n.Prefix)
		}
		sess := u.sess
		u.mu.Unlock()
		if len(wd) > 0 && sess != nil {
			for _, upd := range wire.PackUpdates(wd, nil, sess.Options()) {
				sess.Send(upd)
			}
		}
	}
}

// clientSessHandler handles BGP events on a client-facing session.
type clientSessHandler struct {
	srv      *Server
	c        *clientConn
	upstream *Upstream // Quagga mode
	birdMode bool
}

func (h *clientSessHandler) Established(_ *bgp.Session) {
	// Replay the upstream table(s) so the client has the full view, then
	// an end-of-RIB marker so a reconnecting client can flush stale
	// entries from its per-peer views. The replay goes through the
	// client's fan-out queue, not directly down the session: live
	// withdrawals racing the replay coalesce onto the queued
	// announcements instead of being reordered behind them.
	if h.birdMode {
		for _, u := range h.srv.Upstreams() {
			h.srv.enqueueReplay(h.c, u, false)
		}
		h.c.out.putEoR(0)
	} else {
		h.srv.enqueueReplay(h.c, h.upstream, true)
	}
}

func (h *clientSessHandler) UpdateReceived(sess *bgp.Session, upd *wire.Update) {
	if h.birdMode {
		h.srv.handleClientUpdateBIRD(h.c, upd)
		return
	}
	h.srv.handleClientUpdate(h.c, h.upstream, upd)
}

// Closed distinguishes a clean goodbye from a transport blip. A Cease
// from the client withdraws its routes immediately; anything else
// retains them stale for the restart window while the supervisor
// redials the session's stream.
func (h *clientSessHandler) Closed(_ *bgp.Session, err error) {
	if err == nil {
		return // our own administrative teardown; owners handle cleanup
	}
	id := h.c.account.ID
	only := h.upstream // nil in BIRD mode: one session covers all upstreams
	if bgp.IsPeerCease(err) {
		h.srv.withdrawClient(id, only)
		return
	}
	h.srv.markClientStale(id, only)
}

// handleClientUpdate runs the safety pipeline on a client's
// announcement toward one upstream and relays what passes.
func (s *Server) handleClientUpdate(c *clientConn, u *Upstream, upd *wire.Update) {
	// recv stamps the convergence measurement: announce-to-upstream-send
	// latency starts the moment the client's UPDATE is in hand.
	recv := s.clk.Now()
	if upd.Refresh {
		// The client asked for a refresh: replay the upstream's table
		// through the fan-out queue (no end-of-RIB — a refresh is not a
		// restart, so nothing should be swept).
		s.enqueueReplay(c, u, false)
		return
	}
	if upd.IsEndOfRIB() {
		// The client finished re-announcing after a restart: stale
		// adverts it did not reclaim are flushed.
		s.flushClientStale(c.account.ID, u)
		return
	}
	u.mu.RLock()
	sess := u.sess
	u.mu.RUnlock()
	// est decides whether operations reach the wire now. When the
	// upstream is down, announcements are only recorded in u.advertised
	// — the Established handler replays that map, so nothing is lost —
	// and no dampening penalty accrues for churn the world never sees.
	est := sess != nil && sess.Established()

	var outWd []wire.NLRI
	for _, n := range upd.Withdrawn {
		if !s.allocatedTo(c.account.ID, n.Prefix) {
			s.metrics.hijacksBlocked.Inc()
			continue
		}
		// Only withdrawals of prefixes this client actually has
		// advertised are relayed (and penalized): a spurious withdrawal
		// must neither reach the upstream nor charge the client.
		u.mu.Lock()
		ad := u.advertised[n.Prefix]
		owned := ad != nil && ad.owner == c.account.ID
		if owned {
			u.delAdvertLocked(n.Prefix)
		}
		u.mu.Unlock()
		if !owned {
			continue
		}
		if est {
			s.damper.RecordWithdraw(dampen.Key{Prefix: n.Prefix, Source: c.account.TunnelAddr})
			outWd = append(outWd, wire.NLRI{Prefix: n.Prefix})
		}
	}
	var outRoutes []wire.AttrRoute
	if upd.Attrs != nil {
		for _, n := range upd.Reach {
			ok, attrs := s.vetAnnouncement(c, u, n.Prefix, upd.Attrs)
			if !ok {
				continue
			}
			// Graceful re-announcement: the prefix is already advertised
			// (retained stale across the client's restart) with identical
			// attributes. Reclaim it silently — no upstream churn, and no
			// dampening penalty for a flap the world never saw. Both sides
			// are interned, so identity is a pointer compare (Equal is the
			// semantic check the interner already applied).
			u.mu.Lock()
			if ad := u.advertised[n.Prefix]; ad != nil && ad.owner == c.account.ID &&
				ad.stale && ad.attrs == attrs {
				ad.stale = false
				u.mu.Unlock()
				continue
			}
			u.mu.Unlock()
			// Max-prefix quota (warn → dampen-new → teardown): only a
			// net-new prefix consumes headroom; over the limit the
			// announcement is dropped, and repeated abuse ends the
			// client with Cease/max-prefixes-reached. The teardown runs
			// off this goroutine: it closes the very session whose
			// reader invoked us.
			if !s.checkPrefixQuota(c, u, n) {
				if s.quotaStrike(c) {
					go s.tearDownClient(c, wire.SubMaxPrefixesReached)
				}
				continue
			}
			// Route-flap dampening (§3 safety) applies to every
			// announcement that would actually reach the upstream.
			if est {
				if s.damper.RecordFlap(dampen.Key{Prefix: n.Prefix, Source: c.account.TunnelAddr}) {
					s.metrics.flapsSuppressed.Inc()
					continue
				}
			}
			u.mu.Lock()
			u.addAdvertLocked(n.Prefix, &advert{owner: c.account.ID, attrs: attrs, announced: recv, pending: true})
			u.mu.Unlock()
			if est {
				outRoutes = append(outRoutes, wire.AttrRoute{NLRI: wire.NLRI{Prefix: n.Prefix}, Attrs: attrs})
			}
		}
	}
	if !est || (len(outWd) == 0 && len(outRoutes) == 0) {
		return
	}
	for _, out := range wire.PackUpdates(outWd, outRoutes, sess.Options()) {
		if err := sess.Send(out); err != nil {
			break // session died mid-batch; Established replays u.advertised
		}
		s.observeConvergence(u, out.Reach)
		if n := len(out.Reach); n > 0 {
			s.metrics.announcementsRelayed.Add(uint64(n))
		}
	}
}

// handleClientUpdateBIRD demultiplexes path IDs to upstreams.
func (s *Server) handleClientUpdateBIRD(c *clientConn, upd *wire.Update) {
	if upd.Refresh {
		for _, u := range s.Upstreams() {
			s.enqueueReplay(c, u, false)
		}
		return
	}
	if upd.IsEndOfRIB() {
		// One ADD-PATH session covers every upstream.
		s.flushClientStale(c.account.ID, nil)
		return
	}
	byUpstream := map[uint32]*wire.Update{}
	get := func(id wire.PathID) *wire.Update {
		o := byUpstream[uint32(id)]
		if o == nil {
			o = &wire.Update{Attrs: upd.Attrs}
			byUpstream[uint32(id)] = o
		}
		return o
	}
	for _, n := range upd.Withdrawn {
		o := get(n.ID)
		o.Withdrawn = append(o.Withdrawn, wire.NLRI{Prefix: n.Prefix})
	}
	for _, n := range upd.Reach {
		o := get(n.ID)
		o.Reach = append(o.Reach, wire.NLRI{Prefix: n.Prefix})
	}
	for id, o := range byUpstream {
		u := s.Upstream(id)
		if u == nil {
			continue
		}
		s.handleClientUpdate(c, u, o)
	}
}

// vetAnnouncement applies the §3 safety filters to one client NLRI and
// returns the transformed attributes to relay.
func (s *Server) vetAnnouncement(c *clientConn, u *Upstream, p netip.Prefix, attrs *wire.Attrs) (bool, *wire.Attrs) {
	// 0. Compiled AS-path policy (Peerlock / Peerlock-lite): a client is
	// never a transit neighbor, so a path carrying a protected AS is a
	// provider-route leak whatever the prefix says. This runs before
	// the allocation check so a classic leak — provider prefix AND
	// provider path — is counted as the leak it is, not as a hijack.
	// (Prefix ownership for clients is the allocation check below; the
	// operator rule file's prefix/ROA tables guard the upstream side.)
	if f := s.policy.Current(); f != nil {
		v := f.VerdictPath(attrs, compiled.Peer{AS: attrs.FirstAS()})
		s.metrics.countVerdict(v)
		if !v.Accept {
			return false, nil
		}
	}
	// 1. Prefix ownership: no hijacks, no leaks of non-testbed space.
	if !s.allocatedTo(c.account.ID, p) {
		s.metrics.hijacksBlocked.Inc()
		return false, nil
	}
	// 2. Origin check: the path must originate from the testbed ASN or
	// a private ASN of an emulated domain (stripped below).
	if origin := attrs.OriginAS(); origin != 0 && origin != s.cfg.ASN && !router.IsPrivateASN(origin) {
		s.metrics.originBlocked.Inc()
		return false, nil
	}
	// 3. Attribute hygiene: strip private ASNs (emulated domains stay
	// invisible), force the testbed ASN at the path head, clear
	// LOCAL_PREF, set NEXT_HOP to our address on the peering.
	out := attrs.Clone()
	stripPrivate(out, s.cfg.ASN)
	if out.FirstAS() != s.cfg.ASN {
		out.PrependAS(s.cfg.ASN, 1)
	}
	out.HasLocalPref = false
	out.NextHop = u.cfg.LocalAddr
	// Interning the vetted result makes a client's graceful
	// re-announcement resolve to the very pointer stored in u.advertised,
	// and dedups the N-routes-one-policy case.
	return true, s.intern.Intern(out)
}

// stripPrivate removes private ASNs from the path (keeps ownAS).
func stripPrivate(a *wire.Attrs, ownAS uint32) {
	var segs []wire.Segment
	for _, seg := range a.ASPath {
		kept := seg.ASNs[:0:0]
		for _, asn := range seg.ASNs {
			if asn != ownAS && router.IsPrivateASN(asn) {
				continue
			}
			kept = append(kept, asn)
		}
		if len(kept) > 0 {
			segs = append(segs, wire.Segment{Type: seg.Type, ASNs: kept})
		}
	}
	a.ASPath = segs
}

// ---------------------------------------------------------------------
// Data plane

// tunnelEndpoint adapts a client's packet tunnel to a dataplane node:
// packets routed at the server toward the client's allocation exit here
// and enter the tunnel.
type tunnelEndpoint struct {
	srv *Server
	c   *clientConn
}

// Name implements dataplane.Node.
func (t *tunnelEndpoint) Name() string { return "tunnel-" + t.c.account.ID }

// Receive implements dataplane.Node: server → client direction.
func (t *tunnelEndpoint) Receive(pkt *dataplane.Packet, _ *dataplane.Iface) {
	if t.c.pkt == nil {
		return
	}
	if err := t.c.pkt.Send(pkt); err == nil {
		t.srv.metrics.packetsToClients.Inc()
	}
}

// handleClientPacket is the client → Internet direction: spoof-filter,
// then forward through the server's FIB.
func (s *Server) handleClientPacket(c *clientConn, pkt *dataplane.Packet) {
	if !c.account.SpoofAllowed {
		if owner, ok := s.ownerOfAddr(pkt.Src); !ok || owner != c.account.ID {
			s.metrics.spoofsBlocked.Inc()
			return
		}
	}
	s.metrics.packetsFromClients.Inc()
	s.dp.Receive(pkt, c.tunIface.Link().Peer(c.tunIface))
}

// Close tears down all sessions, supervisors, restart timers, and
// client transports.
func (s *Server) Close() {
	clients := s.clientList()
	ups := s.Upstreams()
	s.timerMu.Lock()
	timers := s.restartTimers
	s.restartTimers = make(map[string]clock.Timer)
	s.timerMu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	for _, c := range clients {
		c.stopSupervisors()
		c.mux.Close()
	}
	for _, u := range ups {
		u.mu.Lock()
		sup := u.sup
		sess := u.sess
		if u.staleTimer != nil {
			u.staleTimer.Stop()
			u.staleTimer = nil
		}
		u.mu.Unlock()
		if sup != nil {
			sup.Stop()
		} else if sess != nil {
			sess.Close()
		}
	}
	// Last: the ingest workers drain what the dying sessions already
	// delivered, then exit. Any straggler barrier (a Closed handler
	// racing us) unblocks immediately against the stopped pool.
	s.ingest.close()
}
