package server

import (
	"strings"
	"testing"
	"time"

	"peering/internal/client"
	"peering/internal/muxproto"
	"peering/internal/router"
)

// scrape encodes the server's registry the way GET /metrics would.
func scrape(t *testing.T, s *Server) string {
	t.Helper()
	var b strings.Builder
	if _, err := s.Telemetry().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestMetricsEndToEnd drives routes both directions through a live rig
// and asserts the scrape covers every subsystem: session state and
// message counters, relay and fan-out counters, scrape-time RIB and
// client gauges, dampening state, and the convergence histogram.
func TestMetricsEndToEnd(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl := r.connectClient(t, "exp1", clientAlloc(), false)

	// Upstream → client: two routes fan out.
	r.up1.Announce(prefix("11.0.0.0/16"), router.AnnounceSpec{})
	r.up1.Announce(prefix("11.1.0.0/16"), router.AnnounceSpec{})
	waitFor(t, "client sees upstream routes", func() bool {
		return cl.RouteCount(1) == 2
	})

	// Client → upstream: one accepted announcement, one blocked hijack.
	if err := cl.Announce(prefix("184.164.224.0/24"), client.AnnounceOptions{Upstreams: []uint32{1}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Announce(prefix("8.8.8.0/24"), client.AnnounceOptions{Upstreams: []uint32{1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "announcement at upstream", func() bool {
		return r.up1.LocRIB().Best(prefix("184.164.224.0/24")) != nil
	})
	waitFor(t, "hijack counted", func() bool {
		return r.srv.Stats().HijacksBlocked == 1
	})

	got := scrape(t, r.srv)
	for _, want := range []string{
		// Session layer: established sessions exist and UPDATEs crossed.
		`peering_bgp_sessions{state="established"}`,
		`peering_bgp_messages_in_total{type="update"}`,
		`peering_bgp_messages_out_total{type="update"}`,
		// Relay + safety pipeline.
		"peering_server_routes_from_upstreams_total 2",
		"peering_server_announcements_relayed_total 1",
		"peering_server_hijacks_blocked_total 1",
		// Fan-out pipeline counters and packing histogram.
		"peering_fanout_routes_relayed_total",
		"peering_fanout_updates_total",
		`peering_fanout_update_nlris_bucket{le="+Inf"}`,
		`peering_fanout_queue_depth{client="exp1"}`,
		// Scrape-time gauges follow live structures.
		"peering_server_clients 1",
		`peering_rib_routes{peer="4.69.0.1"} 2`,
		`peering_rib_adverts{client="exp1"} 1`,
		// Dampening charged the accepted announcement.
		`peering_dampen_penalties_total{kind="flap"} 1`,
		"peering_dampen_tracked_keys 1",
		// Convergence histogram observed the relayed announcement.
		"peering_convergence_announce_latency_seconds_count 1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full scrape:\n%s", got)
	}

	// /stats and /metrics read the same instruments: the snapshot must
	// agree with what was just scraped.
	st := r.srv.Stats()
	if st.RoutesFromUpstreams != 2 || st.AnnouncementsRelayed != 1 {
		t.Fatalf("Stats() = %+v diverges from the registry", st)
	}
}

// TestConvergenceLatencyVirtualClock pins the convergence histogram's
// semantics against the injected clock. The direct path (upstream up)
// observes zero virtual latency; an announcement deferred behind a dead
// upstream observes the redial backoff it actually waited out.
func TestConvergenceLatencyVirtualClock(t *testing.T) {
	r := newSoloSupervisedRig(t)
	clientPfx := prefix("184.164.224.0/24")
	marker := prefix("184.164.224.0/25")

	// Direct path: no virtual time passes between receive and send.
	if err := r.cl.Announce(clientPfx, client.AnnounceOptions{Upstreams: []uint32{1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "direct announcement at upstream", func() bool {
		return r.up.LocRIB().Best(clientPfx) != nil
	})
	count, sum := r.srv.ConvergenceSamples()
	if count != 1 || sum != 0 {
		t.Fatalf("direct path: count=%d sum=%v, want 1 observation of 0s", count, sum)
	}

	// Deferred path: the upstream dies, the announcement is recorded but
	// cannot be sent, and the measurement stays open across the backoff.
	r.killTransport()
	waitFor(t, "upstream death noticed", func() bool {
		return r.sup.Stats().ConsecutiveFailures == 1
	})
	if err := r.cl.Announce(marker, client.AnnounceOptions{Upstreams: []uint32{1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "announcement recorded for replay", func() bool {
		return advertisedHas(r.u, marker, "exp1")
	})
	if count, _ := r.srv.ConvergenceSamples(); count != 1 {
		t.Fatalf("deferred announcement observed before reaching the wire (count=%d)", count)
	}

	// Advance past the 1s redial backoff: the supervisor reconnects and
	// the Established replay closes the measurement at the virtual time
	// that actually elapsed.
	r.clk.Advance(1100 * time.Millisecond)
	waitFor(t, "deferred announcement at upstream", func() bool {
		return r.u.Established() && r.up.LocRIB().Best(marker) != nil
	})
	waitFor(t, "deferred observation recorded", func() bool {
		count, _ := r.srv.ConvergenceSamples()
		return count == 2
	})
	// The replay runs between the redial firing at +1.0s and the end of
	// the advance at +1.1s; the replayed prefix (clientPfx, already
	// observed) must not be observed again.
	_, sum = r.srv.ConvergenceSamples()
	if sum < 0.999 || sum > 1.101 {
		t.Fatalf("deferred latency sum = %vs, want ~1.0–1.1s of virtual time", sum)
	}
	// The sample lands in the seconds-scale buckets on the scrape.
	got := scrape(t, r.srv)
	if !strings.Contains(got, `peering_convergence_announce_latency_seconds_bucket{le="0.5"} 1`) {
		t.Fatalf("sub-second bucket should hold only the direct sample:\n%s", got)
	}
	if !strings.Contains(got, `peering_convergence_announce_latency_seconds_bucket{le="2.5"} 2`) {
		t.Fatalf("2.5s bucket should hold both samples:\n%s", got)
	}
}
