package server

// This file is the fan-out pipeline: every route relayed from an
// upstream to a client passes through that client's outbound queue
// instead of being sent synchronously on the upstream's reader
// goroutine. The queue coalesces per (upstream, prefix) — a later
// announcement overwrites a pending one, a withdrawal cancels a pending
// announcement — so its depth is bounded by the live state space, and a
// dedicated per-client worker drains it, packing NLRIs that share
// attributes into as few UPDATEs as MaxMsgLen allows. Upstream readers
// therefore never block on a slow client; a client that cannot keep up
// shows as queue depth and backpressure counters, not as head-of-line
// blocking for its peers.

import (
	"net/netip"
	"sync"
	"sync/atomic"

	"peering/internal/bgp"
	"peering/internal/muxproto"
	"peering/internal/rib"
	"peering/internal/wire"
)

// DefaultFanoutHighWater is used when Config.FanoutHighWater is zero.
const DefaultFanoutHighWater = 32768

// outKey identifies one queued fan-out operation: the server relays
// each upstream's routes verbatim, so (upstream, prefix) names exactly
// one slot of client-visible state.
type outKey struct {
	upstream uint32
	prefix   netip.Prefix
}

// outOp is one pending operation; nil attrs means withdraw. The attrs
// pointer is shared with the Adj-RIB-In and other clients' queues and
// must never be mutated (see wire.PackUpdates). When frame is non-nil
// the entry is a shared broadcast frame covering many logical ops
// (key/attrs unused); frames hold their position in the shard's
// enqueue order but never coalesce.
type outOp struct {
	key   outKey
	attrs *wire.Attrs
	frame *broadcastFrame
}

// outCounters are the per-queue deltas merged into Server.Stats on each
// flush.
type outCounters struct {
	coalesced    uint64
	backpressure uint64
	shed         uint64
	highWater    int
}

// outQueueShard is one lock's worth of a client's queue: the pending
// index and op list for the prefixes hashing here. Sharded on the same
// rib.PrefixShard as the Adj-RIB-In, so ingest worker i only ever takes
// queue shard i and two workers never contend on a client's queue.
type outQueueShard struct {
	mu        sync.Mutex
	pending   map[outKey]int // key → index into ops
	ops       []outOp        // first-enqueue order; coalesced in place
	coalesced uint64
	// synced[upstream] opens this shard for the upstream's live traffic.
	// It starts closed and is set by beginSync from the replay walk, so
	// a client attaching mid-ingest never receives a route both from a
	// live broadcast frame and from its own replay snapshot: until the
	// walk has covered this shard, live enqueues are dropped — every
	// route they carry is already installed, so the walk delivers it
	// exactly once. (The per-op path's coalescing used to absorb most
	// such duplicates; shared frames never coalesce, so the dedup moved
	// here, to enqueue time.)
	synced map[uint32]bool
}

// outQueue is one client's coalescing outbound queue.
type outQueue struct {
	shards []outQueueShard
	mask   uint32
	notify chan struct{}

	// eors are End-of-RIB markers, flushed after ops. take snapshots
	// them before draining the op shards, so every op enqueued before a
	// marker is flushed no later than the marker (replayed tables land
	// before the sweep they trigger).
	eorMu sync.Mutex
	eors  []uint32

	// Cross-shard depth and pressure accounting, all lock-free so put
	// on one shard never touches another shard's lock.
	depthOps     atomic.Int64
	depthEoRs    atomic.Int64
	highWater    atomic.Int64
	backpressure atomic.Uint64
	shed         atomic.Uint64
	overflow     atomic.Bool

	softLimit int
	// hardLimit caps pending ops across all shards; 0 disables. Above
	// it, announcements are shed (withdrawals still queue — they are
	// what bounds correctness) and overflow marks the queue for a full
	// resync.
	hardLimit int
}

func newOutQueue(highWater, hardLimit, shards int) *outQueue {
	if highWater <= 0 {
		highWater = DefaultFanoutHighWater
	}
	shards = rib.ShardCount(shards)
	q := &outQueue{
		shards:    make([]outQueueShard, shards),
		mask:      uint32(shards - 1),
		notify:    make(chan struct{}, 1),
		softLimit: highWater,
		hardLimit: hardLimit,
	}
	for i := range q.shards {
		q.shards[i].pending = make(map[outKey]int)
		q.shards[i].synced = make(map[uint32]bool, 1)
	}
	return q
}

// beginSync opens queue shard i for an upstream's live traffic. The
// replay walk calls it while holding the RIB shard's read lock, right
// before enqueueing that shard's snapshot: ingest workers enqueue under
// the same shard's write lock, so every install is strictly before or
// strictly after the walk — before means the walk delivers the route
// and the (gated-off) live enqueue is dropped, after means the live
// enqueue sees the gate open and delivers it. Either way, exactly once.
func (q *outQueue) beginSync(i int, upstream uint32) {
	sh := &q.shards[i&int(q.mask)]
	sh.mu.Lock()
	sh.synced[upstream] = true
	sh.mu.Unlock()
}

// bumpHighWater folds the current depth into the high-water mark.
func (q *outQueue) bumpHighWater(d int64) {
	for {
		hw := q.highWater.Load()
		if d <= hw || q.highWater.CompareAndSwap(hw, d) {
			return
		}
	}
}

// put queues one operation, coalescing onto a pending one for the same
// (upstream, prefix): only the latest state ever reaches the client.
// Until the shard's replay walk opens the gate (beginSync), operations
// are dropped: the walk will deliver the route's current state itself.
func (q *outQueue) put(upstream uint32, p netip.Prefix, attrs *wire.Attrs) {
	k := outKey{upstream: upstream, prefix: p}
	sh := &q.shards[rib.PrefixShard(p)&q.mask]
	sh.mu.Lock()
	if !sh.synced[upstream] {
		sh.mu.Unlock()
		return
	}
	if i, ok := sh.pending[k]; ok {
		sh.ops[i].attrs = attrs
		sh.coalesced++
		sh.mu.Unlock()
	} else if attrs != nil && q.hardLimit > 0 && q.depthOps.Load() >= int64(q.hardLimit) {
		// Queue memory cap (this laggard only — every client has its
		// own queue): shed the announcement and flag the queue. The
		// worker recovers by resyncing the full table directly down the
		// session, bypassing the very cap that shed it. Withdrawals are
		// never shed, so the shed-then-resync cycle cannot leave the
		// client holding a route the world withdrew.
		sh.mu.Unlock()
		q.shed.Add(1)
		q.overflow.Store(true)
	} else {
		sh.pending[k] = len(sh.ops)
		sh.ops = append(sh.ops, outOp{key: k, attrs: attrs})
		sh.mu.Unlock()
		d := q.depthOps.Add(1)
		q.bumpHighWater(d + q.depthEoRs.Load())
		if d > int64(q.softLimit) {
			q.backpressure.Add(1)
		}
	}
	q.wake()
}

// putFrame queues a shared broadcast frame on queue shard i (frames
// are shard-local: every prefix inside hashes to the same RIB/queue
// shard). The caller has already retained the frame for this queue;
// the flush path (or the shed path here) releases it. The pending
// index is cleared so a later put for any prefix the frame carries
// appends after it instead of coalescing onto a pre-frame entry and
// being flushed out of order.
func (q *outQueue) putFrame(i int, f *broadcastFrame) {
	n := f.logicalOps()
	shed := q.hardLimit > 0 && q.depthOps.Load() >= int64(q.hardLimit) && f.nlris > 0
	sh := &q.shards[i&int(q.mask)]
	sh.mu.Lock()
	if !sh.synced[f.upstream] {
		// Gate closed: this client's replay walk has not covered the
		// shard yet and will deliver every route the frame carries.
		sh.mu.Unlock()
		f.release()
		return
	}
	if !shed {
		sh.ops = append(sh.ops, outOp{frame: f})
		clear(sh.pending)
		sh.mu.Unlock()
		d := q.depthOps.Add(int64(n))
		q.bumpHighWater(d + q.depthEoRs.Load())
		if d > int64(q.softLimit) {
			q.backpressure.Add(1)
		}
		q.wake()
		return
	}
	sh.mu.Unlock()
	// Laggard at its cap: a frame cannot be partially shed, so drop
	// its announcements, keep its withdrawals as plain ops (they are
	// what bounds correctness and are never shed), and flag the
	// queue for a full resync.
	for _, w := range f.wd {
		q.put(f.upstream, w.Prefix, nil)
	}
	q.shed.Add(uint64(f.nlris))
	q.overflow.Store(true)
	f.release()
	q.wake()
}

// putEoR queues an End-of-RIB marker. upstream is the session-routing
// key (the upstream ID in Quagga mode, 0 in BIRD mode).
func (q *outQueue) putEoR(upstream uint32) {
	q.eorMu.Lock()
	q.eors = append(q.eors, upstream)
	q.eorMu.Unlock()
	q.bumpHighWater(q.depthOps.Load() + q.depthEoRs.Add(1))
	q.wake()
}

func (q *outQueue) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// take drains everything pending, shard by shard (enqueue order within
// a shard), along with the counter deltas accumulated since the last
// take. The caller passes back the slices from its previous take (done
// with them) so a steady drain loop recycles op buffers instead of
// growing fresh ones; the index maps are cleared in place for the same
// reason. End-of-RIB markers are snapshotted before the op shards: an
// op enqueued before a marker is always flushed with (or before) it,
// and an op slipping in behind the marker is merely an update the
// client applies after its sweep — harmless.
func (q *outQueue) take(opsReuse []outOp, eorsReuse []uint32) (ops []outOp, eors []uint32, ctr outCounters, overflow bool) {
	q.eorMu.Lock()
	eors, q.eors = q.eors, eorsReuse[:0]
	q.eorMu.Unlock()
	q.depthEoRs.Add(int64(-len(eors)))

	ops = opsReuse[:0]
	for i := range q.shards {
		sh := &q.shards[i]
		sh.mu.Lock()
		ops = append(ops, sh.ops...)
		sh.ops = sh.ops[:0]
		clear(sh.pending)
		ctr.coalesced += sh.coalesced
		sh.coalesced = 0
		sh.mu.Unlock()
	}
	// Depth counts logical routes: a frame entry stands for every op it
	// carries, matching what putFrame added.
	taken := 0
	for i := range ops {
		if f := ops[i].frame; f != nil {
			taken += f.logicalOps()
		} else {
			taken++
		}
	}
	q.depthOps.Add(int64(-taken))
	ctr.backpressure = q.backpressure.Swap(0)
	ctr.shed = q.shed.Swap(0)
	ctr.highWater = int(q.highWater.Swap(0))
	overflow = q.overflow.Swap(false)
	return ops, eors, ctr, overflow
}

// depth reports pending operations plus End-of-RIB markers.
func (q *outQueue) depth() int {
	return int(q.depthOps.Load() + q.depthEoRs.Load())
}

// ---------------------------------------------------------------------
// Server-side enqueue and the per-client worker

// enqueueUpdate queues an upstream's update for one client.
func (s *Server) enqueueUpdate(c *clientConn, upstream uint32, upd *wire.Update) {
	for _, n := range upd.Withdrawn {
		c.out.put(upstream, n.Prefix, nil)
	}
	if upd.Attrs == nil {
		return
	}
	for _, n := range upd.Reach {
		c.out.put(upstream, n.Prefix, upd.Attrs)
	}
}

// snapFrameNLRIs caps one bulk-sync frame's logical size so its
// encoding stays inside a pooled size class (~6000 routes ≈ 54KB of
// NLRI) and far under any transport frame limit.
const snapFrameNLRIs = 6000

// enqueueReplay queues upstream u's current Adj-RIB-In for client c,
// followed by an End-of-RIB marker when eor is set. Replays flow
// through the same queue as live fan-out, so a replay can never deliver
// an announcement behind a concurrent withdrawal of the same prefix:
// everything is enqueued while holding each shard's (read) lock, so any
// ingest that supersedes a walked route also enqueues after it.
//
// Each shard's walk first opens the client's live-traffic gate for that
// shard (beginSync) under the same read lock: live enqueues before the
// gate opens are dropped (their routes are in the table, so this walk
// carries them), live enqueues after it pass. Every route therefore
// reaches the client exactly once even when it attaches mid-ingest.
//
// Bulk sync: a shard holding a real table is streamed as shared
// snapshot frames — attr-grouped chunks encoded once at first flush —
// instead of one queue op per route, so a full-table join costs
// O(frames), not O(routes), in queue traffic. Small shards keep the
// per-op path and its coalescing.
func (s *Server) enqueueReplay(c *clientConn, u *Upstream, eor bool) {
	skey, pathID := s.sessionKey(u)
	for i := 0; i < u.adjIn.Shards(); i++ {
		u.adjIn.ReadShard(i, func(_ uint64, t *rib.AdjRIB) {
			c.out.beginSync(i, u.cfg.ID)
			if t.Len() < frameThreshold {
				t.Walk(func(r *rib.Route) bool {
					c.out.put(u.cfg.ID, r.Prefix, r.Attrs)
					return true
				})
				return
			}
			// One pass groups by interned attrs; chunk the groups into
			// frames. The NLRI slices are freshly built by WalkGrouped,
			// so the frames own them outright.
			var groups []wire.AttrGroup
			count := 0
			emit := func() {
				if len(groups) == 0 {
					return
				}
				f := newSnapshotFrame(skey, u.cfg.ID, groups)
				f.retain(1)
				c.out.putFrame(i, f)
				groups, count = nil, 0
			}
			t.WalkGrouped(func(attrs *wire.Attrs, nlris []wire.NLRI) {
				if pathID != 0 {
					for k := range nlris {
						nlris[k].ID = pathID
					}
				}
				for len(nlris) > 0 {
					room := snapFrameNLRIs - count
					take := len(nlris)
					if take > room {
						take = room
					}
					groups = append(groups, wire.AttrGroup{Attrs: attrs, NLRIs: nlris[:take]})
					count += take
					nlris = nlris[take:]
					if count >= snapFrameNLRIs {
						emit()
					}
				}
			})
			emit()
		})
	}
	if eor {
		c.out.putEoR(skey)
	}
}

// runFanout is the per-client worker: it drains the client's queue and
// flushes batches until the client's transport dies.
func (s *Server) runFanout(c *clientConn) {
	var ops []outOp
	var eors []uint32
	fs := &flushState{batches: make(map[uint32]*fanoutBatch)}
	for {
		select {
		case <-c.out.notify:
		case <-c.mux.Done():
			return
		}
		var ctr outCounters
		var overflow bool
		ops, eors, ctr, overflow = c.out.take(ops, eors)
		s.flushFanout(c, fs, ops, eors, ctr)
		if overflow {
			// Announcements were shed while this client lagged: rebuild
			// its view synchronously from the Adj-RIB-In (quota.go).
			s.resyncClient(c)
		}
	}
}

// fanoutBatch accumulates one session's worth of a drain. The struct,
// its index map, the groups header array, and the order slice in
// flushState are reused across drains (drains can be small and
// frequent, so their fixed cost must not be per-drain allocations).
// The wd slice and each group's NLRI run are NOT reused: PackGrouped
// aliases them into the updates the session writer consumes
// asynchronously, after the drain returns.
type fanoutBatch struct {
	sess   *bgp.Session
	wd     []wire.NLRI
	groups []wire.AttrGroup
	gidx   map[*wire.Attrs]int
	drain  uint64 // last drain sequence this batch was touched in
}

// flushState is one fan-out worker's reusable drain scratch.
type flushState struct {
	batches map[uint32]*fanoutBatch
	order   []uint32
	drain   uint64
}

// flushFanout sends one drained batch down the client's session(s).
// Operations whose session is down are dropped: the Established replay
// of the Adj-RIB-In (plus End-of-RIB) reconstructs the client's view
// when the session comes back, so nothing is lost — only deferred.
// Plain ops accumulate into per-session attr-grouped batches exactly
// as before; a shared frame first flushes whatever those batches hold
// (entries queued before the frame must reach the wire before it),
// then ships the frame's pre-encoded bytes — or a private re-pack when
// this session's options diverge from the shared encoding.
func (s *Server) flushFanout(c *clientConn, fs *flushState, ops []outOp, eors []uint32, ctr outCounters) {
	bird := s.cfg.Mode == muxproto.ModeBIRD
	// Announcements are gathered directly into per-attrs NLRI runs so
	// PackGrouped can alias them into the produced updates with no
	// further copying.
	fs.drain++
	m := s.metrics
	batches := fs.batches
	order := fs.order[:0]
	get := func(skey uint32) *fanoutBatch {
		b := batches[skey]
		if b == nil {
			b = &fanoutBatch{gidx: make(map[*wire.Attrs]int, 1)}
			batches[skey] = b
		}
		if b.drain != fs.drain {
			b.drain = fs.drain
			b.sess = nil
			if sess := c.session(skey); sess != nil && sess.Established() {
				b.sess = sess
			}
			b.wd = nil // aliased into the previous drain's updates
			b.groups = b.groups[:0]
			clear(b.gidx)
			order = append(order, skey)
		}
		return b
	}
	var sent, relayed uint64
	flushBatches := func() {
		for _, skey := range order {
			b := batches[skey]
			if b.sess == nil || (len(b.wd) == 0 && len(b.groups) == 0) {
				continue
			}
			for _, upd := range wire.PackGrouped(b.wd, b.groups, b.sess.Options()) {
				if err := b.sess.Send(upd); err != nil {
					break // session died mid-flush; Established replay recovers
				}
				sent++
				relayed += uint64(len(upd.Reach))
				m.fanoutPacked.Observe(float64(len(upd.Reach) + len(upd.Withdrawn)))
			}
		}
		// Start a sub-drain so later ops accumulate fresh batches (the
		// flushed wd/group runs are aliased into in-flight updates).
		fs.drain++
		order = order[:0]
	}
	for i, op := range ops {
		if op.frame != nil {
			flushBatches()
			fSent, fRelayed := s.flushFrame(c, op.frame)
			sent += fSent
			relayed += fRelayed
			continue
		}
		skey := op.key.upstream
		pathID := wire.PathID(0)
		if bird {
			skey = 0
			pathID = wire.PathID(op.key.upstream)
		}
		b := get(skey)
		if b.sess == nil {
			continue
		}
		n := wire.NLRI{Prefix: op.key.prefix, ID: pathID}
		if op.attrs == nil {
			b.wd = append(b.wd, n)
			continue
		}
		gi, ok := b.gidx[op.attrs]
		if !ok {
			gi = len(b.groups)
			b.gidx[op.attrs] = gi
			b.groups = append(b.groups, wire.AttrGroup{Attrs: op.attrs})
			if gi == 0 {
				// Interned relay traffic is overwhelmingly one attribute
				// set per drain: give the first run room for every
				// remaining op so the hot path allocates exactly once.
				b.groups[0].NLRIs = make([]wire.NLRI, 0, len(ops)-i)
			}
		}
		b.groups[gi].NLRIs = append(b.groups[gi].NLRIs, n)
	}
	flushBatches()
	fs.order = order
	for _, skey := range eors {
		if sess := c.session(skey); sess != nil && sess.Established() {
			if sess.Send(&wire.Update{}) == nil {
				sent++
			}
		}
	}
	m.fanoutUpdates.Add(sent)
	m.fanoutRelayed.Add(relayed)
	m.fanoutCoalesced.Add(ctr.coalesced)
	m.fanoutBackpressure.Add(ctr.backpressure)
	if ctr.shed > 0 {
		m.quotaShed.Add(ctr.shed)
	}
	m.fanoutHighWater.Max(float64(ctr.highWater))
}

// flushFrame ships one shared frame down the client's session: the
// encode-once bytes when this session's options match the shared
// encoding (the overwhelming case — clients of one mux negotiate the
// same capabilities), a private pack of the frame's logical content
// otherwise. The queue's reference is released either way.
func (s *Server) flushFrame(c *clientConn, f *broadcastFrame) (sent, relayed uint64) {
	defer f.release()
	sess := c.session(f.skey)
	if sess == nil || !sess.Established() {
		return 0, 0 // Established replay rebuilds the view
	}
	m := s.metrics
	opts := sess.Options()
	if enc, counts, ok := f.encoded(opts); ok {
		if sess.SendEncoded(enc, len(counts)) != nil {
			return 0, 0
		}
		for _, n := range counts {
			m.fanoutPacked.Observe(float64(n))
		}
		m.fanoutFrameShared.Inc()
		return uint64(len(counts)), uint64(f.nlris)
	}
	m.fanoutFramePrivate.Inc()
	for _, upd := range wire.PackGrouped(f.wd, f.groups, opts) {
		if sess.Send(upd) != nil {
			break
		}
		sent++
		relayed += uint64(len(upd.Reach))
		m.fanoutPacked.Observe(float64(len(upd.Reach) + len(upd.Withdrawn)))
	}
	return sent, relayed
}
