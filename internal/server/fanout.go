package server

// This file is the fan-out pipeline: every route relayed from an
// upstream to a client passes through that client's outbound queue
// instead of being sent synchronously on the upstream's reader
// goroutine. The queue coalesces per (upstream, prefix) — a later
// announcement overwrites a pending one, a withdrawal cancels a pending
// announcement — so its depth is bounded by the live state space, and a
// dedicated per-client worker drains it, packing NLRIs that share
// attributes into as few UPDATEs as MaxMsgLen allows. Upstream readers
// therefore never block on a slow client; a client that cannot keep up
// shows as queue depth and backpressure counters, not as head-of-line
// blocking for its peers.

import (
	"net/netip"
	"sync"

	"peering/internal/bgp"
	"peering/internal/muxproto"
	"peering/internal/rib"
	"peering/internal/wire"
)

// DefaultFanoutHighWater is used when Config.FanoutHighWater is zero.
const DefaultFanoutHighWater = 32768

// outKey identifies one queued fan-out operation: the server relays
// each upstream's routes verbatim, so (upstream, prefix) names exactly
// one slot of client-visible state.
type outKey struct {
	upstream uint32
	prefix   netip.Prefix
}

// outOp is one pending operation; nil attrs means withdraw. The attrs
// pointer is shared with the Adj-RIB-In and other clients' queues and
// must never be mutated (see wire.PackUpdates).
type outOp struct {
	key   outKey
	attrs *wire.Attrs
}

// outCounters are the per-queue deltas merged into Server.Stats on each
// flush.
type outCounters struct {
	coalesced    uint64
	backpressure uint64
	shed         uint64
	highWater    int
}

// outQueue is one client's coalescing outbound queue.
type outQueue struct {
	mu      sync.Mutex
	pending map[outKey]int // key → index into ops
	ops     []outOp        // first-enqueue order; coalesced in place
	// eors are End-of-RIB markers, keyed like ops and flushed after
	// them, so a replayed table always lands before the marker that
	// tells the client to sweep stale entries.
	eors   []uint32
	notify chan struct{}

	softLimit int
	// hardLimit caps len(ops); 0 disables. Above it, announcements are
	// shed (withdrawals still queue — they are what bounds correctness)
	// and overflow marks the queue for a full resync.
	hardLimit int
	overflow  bool
	ctr       outCounters
}

func newOutQueue(highWater, hardLimit int) *outQueue {
	if highWater <= 0 {
		highWater = DefaultFanoutHighWater
	}
	return &outQueue{
		pending:   make(map[outKey]int),
		notify:    make(chan struct{}, 1),
		softLimit: highWater,
		hardLimit: hardLimit,
	}
}

// put queues one operation, coalescing onto a pending one for the same
// (upstream, prefix): only the latest state ever reaches the client.
func (q *outQueue) put(upstream uint32, p netip.Prefix, attrs *wire.Attrs) {
	k := outKey{upstream: upstream, prefix: p}
	q.mu.Lock()
	if i, ok := q.pending[k]; ok {
		q.ops[i].attrs = attrs
		q.ctr.coalesced++
	} else if attrs != nil && q.hardLimit > 0 && len(q.ops) >= q.hardLimit {
		// Queue memory cap (this laggard only — every client has its
		// own queue): shed the announcement and flag the queue. The
		// worker recovers by resyncing the full table directly down the
		// session, bypassing the very cap that shed it. Withdrawals are
		// never shed, so the shed-then-resync cycle cannot leave the
		// client holding a route the world withdrew.
		q.ctr.shed++
		q.overflow = true
	} else {
		q.pending[k] = len(q.ops)
		q.ops = append(q.ops, outOp{key: k, attrs: attrs})
		if d := len(q.ops) + len(q.eors); d > q.ctr.highWater {
			q.ctr.highWater = d
		}
		if len(q.ops) > q.softLimit {
			q.ctr.backpressure++
		}
	}
	q.mu.Unlock()
	q.wake()
}

// putEoR queues an End-of-RIB marker. upstream is the session-routing
// key (the upstream ID in Quagga mode, 0 in BIRD mode).
func (q *outQueue) putEoR(upstream uint32) {
	q.mu.Lock()
	q.eors = append(q.eors, upstream)
	if d := len(q.ops) + len(q.eors); d > q.ctr.highWater {
		q.ctr.highWater = d
	}
	q.mu.Unlock()
	q.wake()
}

func (q *outQueue) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// take drains everything pending, in enqueue order, along with the
// counter deltas accumulated since the last take. The caller passes
// back the slices from its previous take (done with them) so a steady
// drain loop recycles two op buffers instead of growing fresh ones;
// the index map is cleared in place for the same reason.
func (q *outQueue) take(opsReuse []outOp, eorsReuse []uint32) (ops []outOp, eors []uint32, ctr outCounters, overflow bool) {
	q.mu.Lock()
	ops, q.ops = q.ops, opsReuse[:0]
	eors, q.eors = q.eors, eorsReuse[:0]
	clear(q.pending)
	ctr, q.ctr = q.ctr, outCounters{}
	overflow, q.overflow = q.overflow, false
	q.mu.Unlock()
	return ops, eors, ctr, overflow
}

// depth reports pending operations plus End-of-RIB markers.
func (q *outQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.ops) + len(q.eors)
}

// ---------------------------------------------------------------------
// Server-side enqueue and the per-client worker

// enqueueUpdate queues an upstream's update for one client.
func (s *Server) enqueueUpdate(c *clientConn, upstream uint32, upd *wire.Update) {
	for _, n := range upd.Withdrawn {
		c.out.put(upstream, n.Prefix, nil)
	}
	if upd.Attrs == nil {
		return
	}
	for _, n := range upd.Reach {
		c.out.put(upstream, n.Prefix, upd.Attrs)
	}
}

// enqueueReplay queues upstream u's current Adj-RIB-In for client c,
// followed by an End-of-RIB marker when eor is set. Replays flow
// through the same queue as live fan-out, so a replay can never deliver
// an announcement behind a concurrent withdrawal of the same prefix.
func (s *Server) enqueueReplay(c *clientConn, u *Upstream, eor bool) {
	u.mu.RLock()
	u.adjIn.Walk(func(r *rib.Route) bool {
		c.out.put(u.cfg.ID, r.Prefix, r.Attrs)
		return true
	})
	u.mu.RUnlock()
	if eor {
		key := u.cfg.ID
		if s.cfg.Mode == muxproto.ModeBIRD {
			key = 0
		}
		c.out.putEoR(key)
	}
}

// runFanout is the per-client worker: it drains the client's queue and
// flushes batches until the client's transport dies.
func (s *Server) runFanout(c *clientConn) {
	var ops []outOp
	var eors []uint32
	for {
		select {
		case <-c.out.notify:
		case <-c.mux.Done():
			return
		}
		var ctr outCounters
		var overflow bool
		ops, eors, ctr, overflow = c.out.take(ops, eors)
		s.flushFanout(c, ops, eors, ctr)
		if overflow {
			// Announcements were shed while this client lagged: rebuild
			// its view synchronously from the Adj-RIB-In (quota.go).
			s.resyncClient(c)
		}
	}
}

// flushFanout sends one drained batch down the client's session(s).
// Operations whose session is down are dropped: the Established replay
// of the Adj-RIB-In (plus End-of-RIB) reconstructs the client's view
// when the session comes back, so nothing is lost — only deferred.
func (s *Server) flushFanout(c *clientConn, ops []outOp, eors []uint32, ctr outCounters) {
	bird := s.cfg.Mode == muxproto.ModeBIRD
	// Announcements are gathered directly into per-attrs NLRI runs so
	// PackGrouped can alias them into the produced updates with no
	// further copying. Everything built here must stay fresh per drain:
	// the session writer consumes the updates (and thus these slices)
	// asynchronously, after this call returns.
	type batch struct {
		sess   *bgp.Session
		wd     []wire.NLRI
		groups []wire.AttrGroup
		gidx   map[*wire.Attrs]int
	}
	batches := make(map[uint32]*batch)
	var order []uint32
	get := func(skey uint32) *batch {
		b := batches[skey]
		if b == nil {
			b = &batch{}
			if sess := c.session(skey); sess != nil && sess.Established() {
				b.sess = sess
			}
			batches[skey] = b
			order = append(order, skey)
		}
		return b
	}
	for i, op := range ops {
		skey := op.key.upstream
		pathID := wire.PathID(0)
		if bird {
			skey = 0
			pathID = wire.PathID(op.key.upstream)
		}
		b := get(skey)
		if b.sess == nil {
			continue
		}
		n := wire.NLRI{Prefix: op.key.prefix, ID: pathID}
		if op.attrs == nil {
			b.wd = append(b.wd, n)
			continue
		}
		if b.gidx == nil {
			b.gidx = make(map[*wire.Attrs]int, 1)
		}
		gi, ok := b.gidx[op.attrs]
		if !ok {
			gi = len(b.groups)
			b.gidx[op.attrs] = gi
			b.groups = append(b.groups, wire.AttrGroup{Attrs: op.attrs})
			if gi == 0 {
				// Interned relay traffic is overwhelmingly one attribute
				// set per drain: give the first run room for every
				// remaining op so the hot path allocates exactly once.
				b.groups[0].NLRIs = make([]wire.NLRI, 0, len(ops)-i)
			}
		}
		b.groups[gi].NLRIs = append(b.groups[gi].NLRIs, n)
	}
	m := s.metrics
	var sent, relayed uint64
	for _, skey := range order {
		b := batches[skey]
		if b.sess == nil || (len(b.wd) == 0 && len(b.groups) == 0) {
			continue
		}
		for _, upd := range wire.PackGrouped(b.wd, b.groups, b.sess.Options()) {
			if err := b.sess.Send(upd); err != nil {
				break // session died mid-flush; Established replay recovers
			}
			sent++
			relayed += uint64(len(upd.Reach))
			m.fanoutPacked.Observe(float64(len(upd.Reach) + len(upd.Withdrawn)))
		}
	}
	for _, skey := range eors {
		if sess := c.session(skey); sess != nil && sess.Established() {
			if sess.Send(&wire.Update{}) == nil {
				sent++
			}
		}
	}
	m.fanoutUpdates.Add(sent)
	m.fanoutRelayed.Add(relayed)
	m.fanoutCoalesced.Add(ctr.coalesced)
	m.fanoutBackpressure.Add(ctr.backpressure)
	if ctr.shed > 0 {
		m.quotaShed.Add(ctr.shed)
	}
	m.fanoutHighWater.Max(float64(ctr.highWater))
}
