package server

// broadcastFrame is the encode-once fan-out unit: one ingest batch (or
// one bulk-sync chunk) packed as logical withdrawals plus attr-grouped
// announcements, referenced by every in-sync client's queue and
// encoded into wire bytes exactly once, lazily, by the first client
// worker that flushes it. Clients whose sessions negotiated different
// codec options than the shared encoding fall back to a private pack
// of the same logical content.
//
// Lifetime: the builder sets refs to the number of queues that will
// hold the frame before enqueueing; each queue's flush (or shed, or
// failed-session skip) calls release exactly once. The encoded bytes
// live in a bufpool.Frame with one base reference owned by this
// struct; each SendEncoded hands the session writer its own retained
// reference, so the buffer recycles only after the last writer and the
// last queue are done with it. The logical NLRI slices are plain
// GC-managed memory — private packs alias them into updates consumed
// asynchronously, so they must never come from a pool.
import (
	"sync"
	"sync/atomic"

	"peering/internal/bufpool"
	"peering/internal/wire"
)

// frameThreshold is the minimum logical batch size (NLRIs) worth
// building a shared frame for. Below it the per-op path keeps its
// coalescing behavior and its measured allocation profile; at or above
// it the frame's one-time build cost amortizes across clients.
const frameThreshold = 32

// batchEntry is one prefix's final state within an ingest batch: nil
// attrs means withdrawn. Batches fold to final state before building a
// frame, so a frame never carries both an announcement and a
// withdrawal for the same prefix (PackGrouped emits withdrawals first,
// which would otherwise reorder announce-then-withdraw sequences).
type batchEntry struct {
	nlri  wire.NLRI
	attrs *wire.Attrs
}

type broadcastFrame struct {
	// skey routes the frame to a client session (upstream ID in Quagga
	// mode, 0 in BIRD mode); upstream is the originating upstream's ID,
	// the coalescing key used if the frame's withdrawals are re-queued
	// as plain ops on a shed.
	skey     uint32
	upstream uint32

	wd     []wire.NLRI      // withdrawn, PathID-stamped
	groups []wire.AttrGroup // announcements by shared attrs, PathID-stamped
	nlris  int              // announced NLRI count across groups

	refs atomic.Int32

	// Lazy shared encoding, built under mu by the first flusher and
	// keyed to the wire.Options it encoded under.
	mu      sync.Mutex
	encOpts wire.Options
	enc     *bufpool.Frame
	counts  []int // NLRIs (reach+withdrawn) per encoded UPDATE
	encDone bool
	encErr  bool
}

// newBroadcastFrame builds a frame from a batch's folded final state.
// The entry NLRIs are re-stamped with pathID (BIRD mode's per-upstream
// ADD-PATH ID; zero in Quagga mode). entries is not retained.
func newBroadcastFrame(skey, upstream uint32, pathID wire.PathID, entries []batchEntry) *broadcastFrame {
	f := &broadcastFrame{skey: skey, upstream: upstream}
	gidx := make(map[*wire.Attrs]int, 1)
	for _, e := range entries {
		n := e.nlri
		n.ID = pathID
		if e.attrs == nil {
			f.wd = append(f.wd, n)
			continue
		}
		gi, ok := gidx[e.attrs]
		if !ok {
			gi = len(f.groups)
			gidx[e.attrs] = gi
			f.groups = append(f.groups, wire.AttrGroup{Attrs: e.attrs})
		}
		f.groups[gi].NLRIs = append(f.groups[gi].NLRIs, n)
		f.nlris++
	}
	return f
}

// newSnapshotFrame wraps already-grouped announcements (a bulk-sync
// chunk gathered under a RIB shard's read lock) in a frame. The group
// NLRI slices are retained and must be owned by the frame from here on.
func newSnapshotFrame(skey, upstream uint32, groups []wire.AttrGroup) *broadcastFrame {
	f := &broadcastFrame{skey: skey, upstream: upstream, groups: groups}
	for _, g := range groups {
		f.nlris += len(g.NLRIs)
	}
	return f
}

// logicalOps is the frame's contribution to queue depth: one op per
// logical route it carries.
func (f *broadcastFrame) logicalOps() int { return f.nlris + len(f.wd) }

// retain adds n queue references before the frame is enqueued.
func (f *broadcastFrame) retain(n int) { f.refs.Add(int32(n)) }

// release drops one queue reference; the last one releases the base
// reference on the shared encoding so its buffer can recycle (session
// writers still mid-send hold their own references).
func (f *broadcastFrame) release() {
	if f.refs.Add(-1) != 0 {
		return
	}
	f.mu.Lock()
	enc := f.enc
	f.enc = nil
	f.mu.Unlock()
	if enc != nil {
		enc.Release()
	}
}

// encoded returns the shared encoding for opts, building it on first
// call, with one reference retained for the caller's session. ok is
// false when the frame was already encoded under different options (or
// failed to encode): the caller packs privately from the logical
// content instead.
func (f *broadcastFrame) encoded(opts wire.Options) (enc *bufpool.Frame, counts []int, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.encDone {
		f.encDone = true
		f.encOpts = opts
		f.encode(opts)
	}
	if f.encErr || f.enc == nil || f.encOpts != opts {
		return nil, nil, false
	}
	f.enc.Retain()
	return f.enc, f.counts, true
}

// encode packs the logical content and appends every resulting UPDATE
// into one pooled buffer. Called with mu held, once.
func (f *broadcastFrame) encode(opts wire.Options) {
	upds := wire.PackGrouped(f.wd, f.groups, opts)
	if len(upds) == 0 {
		f.encErr = true
		return
	}
	// Size estimate: NLRI bytes dominate; leave headroom for one attr
	// block per group. A miss just grows the buffer past its class (it
	// is then GC'd instead of recycled — never truncated).
	est := (f.logicalOps())*10 + len(f.groups)*192 + len(upds)*wire.HeaderLen
	b := bufpool.Get(est)[:0]
	counts := make([]int, 0, len(upds))
	for _, upd := range upds {
		var err error
		b, err = wire.AppendMessage(b, upd, opts)
		if err != nil {
			bufpool.Put(b)
			f.encErr = true
			return
		}
		counts = append(counts, len(upd.Reach)+len(upd.Withdrawn))
	}
	f.enc = bufpool.NewFrame(b)
	f.counts = counts
}
