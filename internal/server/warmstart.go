package server

// Server-side MRT archival and warm restart. With an archive attached,
// every UPDATE an upstream sends is appended as a BGP4MP_ET record and
// each segment seal dumps a TABLE_DUMP_V2 snapshot of all Adj-RIB-Ins.
// After a crash, WarmRestore reads the newest snapshot plus the update
// tail back into the Adj-RIB-Ins before the real sessions return, so
// reconnecting clients converge from disk immediately. Everything
// restored is marked stale under RFC 4724 semantics: the recovered
// peer's replay refreshes what still exists, and End-of-RIB (or the
// restart window) sweeps the routes the world dropped while the server
// was dead — no full re-announce, only the diff.

import (
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"time"

	"peering/internal/bgp"
	"peering/internal/mrt"
	"peering/internal/rib"
	"peering/internal/wire"
)

// AttachArchive routes every upstream UPDATE into arch and hooks its
// rotations to dump Adj-RIB-In snapshots. Attach before upstream
// sessions come up to capture a complete trace; WarmRestore reads the
// same directory back after a crash.
func (s *Server) AttachArchive(arch *mrt.Archive) {
	s.archMu.Lock()
	s.arch = arch
	s.archMu.Unlock()
	arch.SetOnRotate(func(string, uint64) { s.dumpArchiveSnapshot() })
}

// archive returns the attached archive, if any.
func (s *Server) archive() *mrt.Archive {
	s.archMu.Lock()
	defer s.archMu.Unlock()
	return s.arch
}

// archiveUpstream appends one upstream UPDATE to the attached archive
// (a no-op without one). The message is re-encoded on the session's
// negotiated options, so the archived bytes match the wire.
func (s *Server) archiveUpstream(u *Upstream, sess *bgp.Session, upd *wire.Update) {
	arch := s.archive()
	if arch == nil {
		return
	}
	opts := sess.Options()
	msg, err := wire.Marshal(upd, opts)
	if err != nil {
		return
	}
	m := &mrt.BGP4MP{
		PeerAS:  sess.PeerAS(),
		LocalAS: s.cfg.ASN,
		PeerIP:  u.cfg.PeerAddr,
		LocalIP: archiveLocalIP(u),
		Message: msg,
		AS4:     opts.AS4,
		AddPath: opts.AddPath,
	}
	rec, err := m.Record(s.clk.Now(), true)
	if err != nil {
		return
	}
	arch.WriteRecord(rec)
}

// archiveLocalIP picks the server-side address for a BGP4MP record,
// which requires both endpoints in the same family.
func archiveLocalIP(u *Upstream) netip.Addr {
	if u.cfg.LocalAddr.IsValid() && u.cfg.LocalAddr.Is4() == u.cfg.PeerAddr.Is4() {
		return u.cfg.LocalAddr
	}
	if u.cfg.PeerAddr.Is6() {
		return netip.IPv6Loopback()
	}
	return netip.AddrFrom4([4]byte{127, 0, 0, 1})
}

// dumpArchiveSnapshot writes every upstream's Adj-RIB-In beside the
// archive's segments as rib-<time>-<seq>.mrt; it runs on each segment
// seal, so the newest snapshot plus the later segments always
// reconstruct the present.
func (s *Server) dumpArchiveSnapshot() {
	arch := s.archive()
	if arch == nil {
		return
	}
	// Updates archived into the sealed segment may still be in the
	// ingest pipeline; fence them into the tables so the snapshot
	// covers everything the segments it supersedes contained.
	s.ingest.barrier()

	// Peer table: one entry per upstream with a usable address.
	pi := &mrt.PeerIndex{CollectorID: snapshotID(s.cfg.RouterID), ViewName: s.cfg.Site}
	var ups []*Upstream
	index := map[*Upstream]uint16{}
	for _, u := range s.Upstreams() {
		if !u.cfg.PeerAddr.IsValid() {
			continue
		}
		index[u] = uint16(len(ups))
		ups = append(ups, u)
		pi.Peers = append(pi.Peers, mrt.Peer{
			BGPID: snapshotID(u.peerID()), Addr: u.cfg.PeerAddr, AS: u.peerAS(),
		})
	}
	now := s.clk.Now()
	head, err := pi.Record(now)
	if err != nil {
		return
	}
	records := []*mrt.Record{head}

	seq := uint32(0)
	for _, u := range ups {
		idx := index[u]
		var routes []rib.Route
		u.adjIn.Walk(func(r *rib.Route) bool {
			routes = append(routes, *r)
			return true
		})
		for i := range routes {
			rt := &routes[i]
			r := &mrt.RIB{
				Sequence: seq, Prefix: rt.Prefix, AddPath: rt.Src.PathID != 0,
				Entries: []mrt.RIBEntry{{
					PeerIndex: idx, Originated: rt.Learned, PathID: rt.Src.PathID, Attrs: rt.Attrs,
				}},
			}
			rec, err := r.Record(now)
			if err != nil {
				continue
			}
			records = append(records, rec)
			seq++
		}
	}

	s.archMu.Lock()
	s.archSnapSeq++
	name := fmt.Sprintf("rib-%s-%04d.mrt", now.UTC().Format("20060102T150405Z"), s.archSnapSeq)
	s.archMu.Unlock()
	mrt.WriteFile(filepath.Join(arch.Dir(), name), records, arch.Metrics())
}

// snapshotID coerces an address into the IPv4 identifier the
// TABLE_DUMP_V2 peer table requires.
func snapshotID(a netip.Addr) netip.Addr {
	if a.Is4() {
		return a
	}
	return netip.AddrFrom4([4]byte{0, 0, 0, 1})
}

// peerID returns the upstream's live BGP identifier, if any.
func (u *Upstream) peerID() netip.Addr {
	u.mu.RLock()
	defer u.mu.RUnlock()
	if u.sess != nil {
		return u.sess.PeerID()
	}
	return netip.Addr{}
}

// peerAS returns the best-known AS of the upstream.
func (u *Upstream) peerAS() uint32 {
	u.mu.RLock()
	defer u.mu.RUnlock()
	if u.sess != nil {
		if as := u.sess.PeerAS(); as != 0 {
			return as
		}
	}
	return u.cfg.ASN
}

// WarmRestoreStats summarizes one WarmRestore run.
type WarmRestoreStats struct {
	// Snapshot is the rib-*.mrt file the restore seeded from ("" when
	// the directory held none).
	Snapshot string
	// SnapshotRoutes counts routes loaded from the snapshot;
	// TailSegments and TailUpdates count the updates-*.mrt segments and
	// the UPDATEs replayed on top of it.
	SnapshotRoutes int
	TailSegments   int
	TailUpdates    int
	// Skipped counts records passed over: other record types, peers
	// matching no registered upstream, and malformed records (also
	// counted on peering_mrt_decode_errors_total).
	Skipped int
	// Restored is the total Adj-RIB-In population after the restore —
	// every one of these routes is marked stale awaiting the live
	// peer's replay.
	Restored int
}

// WarmRestore rebuilds the Adj-RIB-Ins from the MRT archive directory:
// the lexically newest rib-*.mrt snapshot seeds the tables, the
// updates-*.mrt segments stamped at or after it replay the tail, and
// everything restored is marked stale with the restart window armed
// (RFC 4724). Call after AddUpstream but before attaching live
// upstream sessions: snapshot entries are matched to upstreams by peer
// address. A truncated tail — the expected shape after kill -9 — ends
// that segment's replay without error.
func (s *Server) WarmRestore(dir string) (WarmRestoreStats, error) {
	var st WarmRestoreStats
	entries, err := os.ReadDir(dir)
	if err != nil {
		return st, fmt.Errorf("server: warm restore: %w", err)
	}
	var snaps, segs []string
	for _, e := range entries { // ReadDir sorts by name; stamps sort with it
		name := e.Name()
		if !strings.HasSuffix(name, ".mrt") {
			continue
		}
		switch {
		case strings.HasPrefix(name, "rib-"):
			snaps = append(snaps, name)
		case strings.HasPrefix(name, "updates-"):
			segs = append(segs, name)
		}
	}
	if len(snaps) > 0 {
		st.Snapshot = snaps[len(snaps)-1]
	}

	byAddr := map[netip.Addr]*Upstream{}
	for _, u := range s.Upstreams() {
		if u.cfg.PeerAddr.IsValid() {
			byAddr[u.cfg.PeerAddr] = u
		}
	}

	if st.Snapshot != "" {
		if err := s.restoreSnapshot(filepath.Join(dir, st.Snapshot), byAddr, &st); err != nil {
			return st, err
		}
	}
	snapStamp := segmentStamp(st.Snapshot)
	for _, name := range segs {
		if snapStamp != "" && segmentStamp(name) < snapStamp {
			continue // fully represented by the snapshot
		}
		st.TailSegments++
		s.replayTailSegment(filepath.Join(dir, name), byAddr, &st)
	}

	// RFC 4724: everything restored is a guess about the present. Mark
	// it stale and arm the restart window; the live peer's replay
	// refreshes survivors and End-of-RIB sweeps the rest.
	for _, u := range s.Upstreams() {
		n := u.adjIn.MarkAllStale()
		st.Restored += u.adjIn.Len()
		if n > 0 {
			u.mu.Lock()
			if u.staleTimer != nil {
				u.staleTimer.Stop()
			}
			u.staleTimer = s.clk.AfterFunc(s.cfg.RestartWindow, func() {
				s.flushUpstreamStale(u)
			})
			u.mu.Unlock()
			s.metrics.staleRetained.Add(uint64(n))
		}
	}
	return st, nil
}

// restoreSnapshot loads one TABLE_DUMP_V2 snapshot into the Adj-RIB-Ins
// of the upstreams its peer table matches. A truncated snapshot (crash
// mid-dump) keeps what was readable.
func (s *Server) restoreSnapshot(path string, byAddr map[netip.Addr]*Upstream, st *WarmRestoreStats) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("server: warm restore: %w", err)
	}
	defer f.Close()
	r := mrt.NewReader(f)
	if arch := s.archive(); arch != nil {
		r.Instrument(arch.Metrics())
	}
	head, err := r.Next()
	if err != nil {
		return fmt.Errorf("server: warm restore: snapshot %s: %w", path, err)
	}
	pi, err := mrt.ParsePeerIndex(head)
	if err != nil {
		return fmt.Errorf("server: warm restore: snapshot %s: %w", path, err)
	}
	byIdx := make([]*Upstream, len(pi.Peers))
	peerAS := make([]uint32, len(pi.Peers))
	peerBGPID := make([]netip.Addr, len(pi.Peers))
	for i, p := range pi.Peers {
		byIdx[i] = byAddr[p.Addr]
		peerAS[i] = p.AS
		peerBGPID[i] = p.BGPID
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, mrt.ErrBadRecord) {
			st.Skipped++
			continue
		}
		if err != nil {
			break // truncated dump: keep what loaded
		}
		rr, err := mrt.ParseRIB(rec)
		if err != nil {
			st.Skipped++
			continue
		}
		for _, e := range rr.Entries {
			if int(e.PeerIndex) >= len(byIdx) || byIdx[e.PeerIndex] == nil {
				st.Skipped++
				continue
			}
			u := byIdx[e.PeerIndex]
			u.adjIn.Set(&rib.Route{
				Prefix:  rr.Prefix,
				Attrs:   e.Attrs,
				Src:     rib.PeerKey{Addr: u.cfg.PeerAddr, PathID: e.PathID},
				PeerAS:  peerAS[e.PeerIndex],
				PeerID:  peerBGPID[e.PeerIndex],
				EBGP:    true,
				Learned: e.Originated,
			})
			st.SnapshotRoutes++
		}
	}
	return nil
}

// replayTailSegment applies one updates-*.mrt segment to the
// Adj-RIB-Ins, newest state winning. Decoded updates arrive in batched
// runs (mrt.ReplayBatched) and each run is applied with one write-lock
// pass per touched shard, so restoring a million-route tail is a few
// thousand lock round-trips instead of one per route. Malformed
// records are skipped (the MRT length field keeps the stream aligned);
// truncation — the live segment the crashed process never sealed —
// ends the replay with everything before it already applied.
func (s *Server) replayTailSegment(path string, byAddr map[netip.Addr]*Upstream, st *WarmRestoreStats) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	r := mrt.NewReader(f)
	var met *mrt.Metrics
	if arch := s.archive(); arch != nil {
		met = arch.Metrics()
	}
	rst, _ := mrt.ReplayBatched(r, mrt.ReplayConfig{Metrics: met, Intern: s.intern}, 0,
		func(ms []*mrt.BGP4MP, upds []*wire.Update) error {
			s.applyTailBatch(byAddr, ms, upds, st)
			return nil
		})
	st.Skipped += rst.Skipped
}

// tailOp is one route mutation from an archived tail update: set when
// attrs is non-nil, remove otherwise.
type tailOp struct {
	nlri    wire.NLRI
	attrs   *wire.Attrs
	peerAS  uint32
	learned time.Time
}

// applyTailBatch replays one batched run of archived updates into the
// Adj-RIB-Ins. Ops are bucketed per (upstream, shard) in arrival order
// — a prefix always hashes to the same shard, so per-prefix ordering
// (and therefore newest-state-wins) survives the regrouping — and each
// bucket applies under a single shard write lock.
func (s *Server) applyTailBatch(byAddr map[netip.Addr]*Upstream, ms []*mrt.BGP4MP, upds []*wire.Update, st *WarmRestoreStats) {
	type bucket struct {
		u   *Upstream
		ops map[int][]tailOp
	}
	buckets := make(map[*Upstream]*bucket)
	for i, upd := range upds {
		m := ms[i]
		u := byAddr[m.PeerIP]
		if u == nil {
			st.Skipped++
			continue
		}
		b := buckets[u]
		if b == nil {
			b = &bucket{u: u, ops: make(map[int][]tailOp)}
			buckets[u] = b
		}
		for _, n := range upd.Withdrawn {
			si := u.adjIn.ShardOf(n.Prefix)
			b.ops[si] = append(b.ops[si], tailOp{nlri: n})
		}
		if upd.Attrs != nil {
			for _, n := range upd.Reach {
				si := u.adjIn.ShardOf(n.Prefix)
				b.ops[si] = append(b.ops[si], tailOp{
					nlri: n, attrs: upd.Attrs, peerAS: m.PeerAS, learned: m.Time,
				})
			}
		}
		st.TailUpdates++
	}
	for _, b := range buckets {
		u := b.u
		for si, ops := range b.ops {
			u.adjIn.Update(si, func(t *rib.AdjRIB) {
				for _, op := range ops {
					if op.attrs == nil {
						t.Remove(op.nlri.Prefix, op.nlri.ID)
						continue
					}
					t.Set(&rib.Route{
						Prefix:  op.nlri.Prefix,
						Attrs:   op.attrs,
						Src:     rib.PeerKey{Addr: u.cfg.PeerAddr, PathID: op.nlri.ID},
						PeerAS:  op.peerAS,
						EBGP:    true,
						Learned: op.learned,
					})
				}
			})
		}
	}
}

// segmentStamp extracts the UTC timestamp token of an archive file name
// (updates-<stamp>-<seq>.mrt or rib-<stamp>-<seq>.mrt), or "".
func segmentStamp(name string) string {
	parts := strings.SplitN(name, "-", 3)
	if len(parts) < 3 {
		return ""
	}
	return parts[1]
}
