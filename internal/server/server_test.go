package server

import (
	"net/netip"
	"testing"
	"time"

	"peering/internal/bufconn"
	"peering/internal/client"
	"peering/internal/dataplane"
	"peering/internal/muxproto"
	"peering/internal/router"
)

func addr(s string) netip.Addr     { return netip.MustParseAddr(s) }
func prefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

const testbedASN = 47065

func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// rig is a complete test harness: a server with two upstream peers
// (router.Router instances acting as the "real Internet").
type rig struct {
	srv *Server
	// up1, up2 are the real peers' routers.
	up1, up2 *router.Router
}

func newRig(t *testing.T, mode muxproto.Mode) *rig {
	t.Helper()
	srv := New(Config{
		Site:     "amsterdam01",
		ASN:      testbedASN,
		RouterID: addr("184.164.224.1"),
		Mode:     mode,
	})
	r := &rig{srv: srv}
	r.up1 = router.New(router.Config{AS: 3356, RouterID: addr("4.69.0.1")})
	r.up2 = router.New(router.Config{AS: 2914, RouterID: addr("129.250.0.1")})

	for i, up := range []*router.Router{r.up1, r.up2} {
		id := uint32(i + 1)
		peerAddr := addr(map[int]string{0: "80.249.208.10", 1: "80.249.208.20"}[i])
		localAddr := addr("80.249.208.1")
		u, err := srv.AddUpstream(UpstreamConfig{
			ID: id, Name: up.RouterID().String(), ASN: up.AS(),
			PeerAddr: peerAddr, LocalAddr: localAddr,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := up.AddPeer(router.PeerConfig{
			Addr: localAddr, LocalAddr: peerAddr, AS: testbedASN,
			Describe: "peering-testbed",
		})
		ca, cb := bufconn.Pipe()
		srv.AttachUpstream(u, ca)
		up.Attach(p, cb)
		waitFor(t, "upstream session", func() bool { return u.Established() })
	}
	t.Cleanup(srv.Close)
	return r
}

func (r *rig) connectClient(t *testing.T, id string, alloc []netip.Prefix, spoof bool) *client.Client {
	t.Helper()
	tunAddr := addr("10.250.0." + map[string]string{"exp1": "1", "exp2": "2", "exp3": "3"}[id])
	if err := r.srv.RegisterClient(ClientAccount{
		ID: id, Allocation: alloc, SpoofAllowed: spoof, TunnelAddr: tunAddr,
	}); err != nil {
		t.Fatal(err)
	}
	ca, cb := bufconn.Pipe()
	if err := r.srv.AcceptClient(id, ca); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Connect(client.Config{Name: id, RouterID: tunAddr}, cb)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitEstablished(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func clientAlloc() []netip.Prefix { return []netip.Prefix{prefix("184.164.224.0/24")} }

func TestProvisioningHandshake(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl := r.connectClient(t, "exp1", clientAlloc(), false)
	prov := cl.Provisioning()
	if prov.ASN != testbedASN || prov.Site != "amsterdam01" || prov.Mode != muxproto.ModeQuagga {
		t.Fatalf("provisioning = %+v", prov)
	}
	if len(prov.Upstreams) != 2 {
		t.Fatalf("upstreams = %v", prov.Upstreams)
	}
	if len(cl.Allocation()) != 1 || cl.Allocation()[0] != prefix("184.164.224.0/24") {
		t.Fatalf("allocation = %v", cl.Allocation())
	}
}

func TestClientSeesEachPeersRoutesSeparately(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl := r.connectClient(t, "exp1", clientAlloc(), false)

	// Each upstream announces a distinct prefix — and both announce a
	// shared one, so the client must see BOTH routes (no best-path
	// selection at the server).
	r.up1.Announce(prefix("11.0.0.0/16"), router.AnnounceSpec{})
	r.up2.Announce(prefix("12.0.0.0/16"), router.AnnounceSpec{})
	r.up1.Announce(prefix("13.0.0.0/16"), router.AnnounceSpec{})
	r.up2.Announce(prefix("13.0.0.0/16"), router.AnnounceSpec{Prepend: 3})

	waitFor(t, "routes at client", func() bool {
		return cl.RouteCount(1) == 2 && cl.RouteCount(2) == 2
	})
	both := cl.RoutesFor(prefix("13.0.0.0/16"))
	if len(both) != 2 {
		t.Fatalf("views of shared prefix = %d, want 2", len(both))
	}
	if both[1].Attrs.PathLen() != 1 || both[2].Attrs.PathLen() != 4 {
		t.Fatalf("paths: up1=%q up2=%q", both[1].Attrs.PathString(), both[2].Attrs.PathString())
	}
	// Client-side selection picks the short path.
	best := cl.BestRoute(prefix("13.0.0.0/16"))
	if best.Attrs.FirstAS() != 3356 {
		t.Fatalf("best via %d", best.Attrs.FirstAS())
	}
}

func TestLateClientGetsFullReplay(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	r.up1.Announce(prefix("11.0.0.0/16"), router.AnnounceSpec{})
	r.up1.Announce(prefix("11.1.0.0/16"), router.AnnounceSpec{})
	// Wait for the server to hold them.
	waitFor(t, "server adj-in", func() bool { return r.srv.Upstream(1).RoutesIn() == 2 })
	cl := r.connectClient(t, "exp1", clientAlloc(), false)
	waitFor(t, "replayed routes", func() bool { return cl.RouteCount(1) == 2 })
}

func TestAnnouncementReachesUpstreamSanitized(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl := r.connectClient(t, "exp1", clientAlloc(), false)
	p := prefix("184.164.224.0/24")
	// Announce with an emulated domain chain (private ASNs) and a
	// poisoned public ASN.
	if err := cl.Announce(p, client.AnnounceOptions{
		OriginASNs: []uint32{65001, 65002},
		Prepend:    1,
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "route at upstream", func() bool { return r.up1.LocRIB().Best(p) != nil })
	rt := r.up1.LocRIB().Best(p)
	// Private ASNs stripped; testbed ASN present (twice: prepend 1).
	if got := rt.Attrs.PathString(); got != "47065 47065" {
		t.Fatalf("path at upstream = %q, want \"47065 47065\"", got)
	}
	// NEXT_HOP is the server's address on the peering.
	if rt.Attrs.NextHop != addr("80.249.208.1") {
		t.Fatalf("next hop = %v", rt.Attrs.NextHop)
	}
	if r.srv.Stats().AnnouncementsRelayed == 0 {
		t.Fatal("stats not counted")
	}
}

func TestHijackBlocked(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl := r.connectClient(t, "exp1", clientAlloc(), false)
	// 8.8.8.0/24 is not in the allocation: must never reach upstreams.
	cl.Announce(prefix("8.8.8.0/24"), client.AnnounceOptions{})
	// A legitimate announcement after it proves ordering.
	cl.Announce(prefix("184.164.224.0/24"), client.AnnounceOptions{})
	waitFor(t, "legit route", func() bool { return r.up1.LocRIB().Best(prefix("184.164.224.0/24")) != nil })
	if r.up1.LocRIB().Best(prefix("8.8.8.0/24")) != nil {
		t.Fatal("hijacked prefix reached the Internet")
	}
	if r.srv.Stats().HijacksBlocked == 0 {
		t.Fatal("hijack not counted")
	}
	// Announcing a superset of the allocation is also a hijack.
	cl.Announce(prefix("184.164.224.0/23"), client.AnnounceOptions{})
	time.Sleep(50 * time.Millisecond)
	if r.up1.LocRIB().Best(prefix("184.164.224.0/23")) != nil {
		t.Fatal("covering aggregate escaped")
	}
}

func TestMoreSpecificWithinAllocationAllowed(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl := r.connectClient(t, "exp1", clientAlloc(), false)
	p := prefix("184.164.224.128/25")
	cl.Announce(p, client.AnnounceOptions{})
	waitFor(t, "more-specific", func() bool { return r.up1.LocRIB().Best(p) != nil })
}

func TestPublicOriginBlocked(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl := r.connectClient(t, "exp1", clientAlloc(), false)
	// Pretending 3356 originated our prefix would fabricate routing
	// data: blocked by the origin filter.
	cl.Announce(prefix("184.164.224.0/24"), client.AnnounceOptions{OriginASNs: []uint32{3356}})
	time.Sleep(50 * time.Millisecond)
	if r.up1.LocRIB().Best(prefix("184.164.224.0/24")) != nil {
		t.Fatal("forged-origin announcement escaped")
	}
	if r.srv.Stats().OriginBlocked == 0 {
		t.Fatal("origin block not counted")
	}
}

func TestSelectiveAnnouncementPerUpstream(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl := r.connectClient(t, "exp1", clientAlloc(), false)
	p := prefix("184.164.224.0/24")
	cl.Announce(p, client.AnnounceOptions{Upstreams: []uint32{2}})
	waitFor(t, "route at up2", func() bool { return r.up2.LocRIB().Best(p) != nil })
	time.Sleep(50 * time.Millisecond)
	if r.up1.LocRIB().Best(p) != nil {
		t.Fatal("announcement leaked to unselected upstream")
	}
}

func TestWithdrawReachesUpstream(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl := r.connectClient(t, "exp1", clientAlloc(), false)
	p := prefix("184.164.224.0/24")
	cl.Announce(p, client.AnnounceOptions{})
	waitFor(t, "announced", func() bool { return r.up1.LocRIB().Best(p) != nil })
	cl.Withdraw(p, nil)
	waitFor(t, "withdrawn", func() bool { return r.up1.LocRIB().Best(p) == nil })
}

func TestDampeningSuppressesFlaps(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl := r.connectClient(t, "exp1", clientAlloc(), false)
	p := prefix("184.164.224.0/24")
	// Rapid flapping: announce repeatedly. The default config
	// suppresses at penalty 2000 = 2 flaps back to back.
	for i := 0; i < 5; i++ {
		cl.Announce(p, client.AnnounceOptions{})
	}
	waitFor(t, "suppression", func() bool { return r.srv.Stats().FlapsSuppressed > 0 })
}

func TestClientDisconnectWithdrawsButSessionsSurvive(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl := r.connectClient(t, "exp1", clientAlloc(), false)
	p := prefix("184.164.224.0/24")
	cl.Announce(p, client.AnnounceOptions{})
	waitFor(t, "announced", func() bool { return r.up1.LocRIB().Best(p) != nil })

	cl.Close()
	waitFor(t, "withdrawn after disconnect", func() bool { return r.up1.LocRIB().Best(p) == nil })
	// §3: the upstream sessions must remain established — the Internet
	// sees a stable AS across experiment churn.
	if !r.srv.Upstream(1).Established() || !r.srv.Upstream(2).Established() {
		t.Fatal("upstream session dropped on client churn")
	}
	waitFor(t, "client reaped", func() bool { return r.srv.ClientCount() == 0 })
}

func TestTwoClientsIsolated(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl1 := r.connectClient(t, "exp1", []netip.Prefix{prefix("184.164.224.0/24")}, false)
	cl2 := r.connectClient(t, "exp2", []netip.Prefix{prefix("184.164.225.0/24")}, false)

	// exp2 cannot announce exp1's prefix.
	cl2.Announce(prefix("184.164.224.0/24"), client.AnnounceOptions{})
	// Both announce their own.
	cl1.Announce(prefix("184.164.224.0/24"), client.AnnounceOptions{})
	cl2.Announce(prefix("184.164.225.0/24"), client.AnnounceOptions{})
	waitFor(t, "both prefixes", func() bool {
		return r.up1.LocRIB().Best(prefix("184.164.224.0/24")) != nil &&
			r.up1.LocRIB().Best(prefix("184.164.225.0/24")) != nil
	})
	if r.srv.Stats().HijacksBlocked == 0 {
		t.Fatal("cross-client announcement not blocked")
	}
	// Disconnecting exp1 withdraws only exp1's prefix.
	cl1.Close()
	waitFor(t, "exp1 withdrawn", func() bool {
		return r.up1.LocRIB().Best(prefix("184.164.224.0/24")) == nil
	})
	if r.up1.LocRIB().Best(prefix("184.164.225.0/24")) == nil {
		t.Fatal("exp2's prefix withdrawn with exp1's disconnect")
	}
}

func TestOverlappingAllocationRejected(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	if err := r.srv.RegisterClient(ClientAccount{ID: "a", Allocation: clientAlloc(), TunnelAddr: addr("10.250.0.9")}); err != nil {
		t.Fatal(err)
	}
	err := r.srv.RegisterClient(ClientAccount{ID: "b", Allocation: clientAlloc(), TunnelAddr: addr("10.250.0.10")})
	if err == nil {
		t.Fatal("overlapping allocation accepted")
	}
}

func TestUnknownClientRejected(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	ca, _ := bufconn.Pipe()
	if err := r.srv.AcceptClient("ghost", ca); err == nil {
		t.Fatal("unvetted client accepted")
	}
}

// ---------------------------------------------------------------------
// Data plane

func TestTrafficClientToInternetAndBack(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl := r.connectClient(t, "exp1", clientAlloc(), false)

	// An Internet host hanging off the server's dataplane.
	dst := dataplane.NewHost("webserver", addr("93.184.216.34"))
	_, svIf, hostIf := dataplane.Connect(r.srv.DP(), addr("93.184.216.1"), "inet", dst, addr("93.184.216.34"), "eth0")
	r.srv.DP().AddIface(svIf)
	dst.SetIface(hostIf)
	r.srv.DP().SetRoute(prefix("93.184.216.0/24"), netip.Addr{}, svIf)

	var got []*dataplane.Packet
	recvd := make(chan *dataplane.Packet, 8)
	cl.OnPacket(func(p *dataplane.Packet) { recvd <- p })

	// Client → Internet.
	pkt := dataplane.NewPacket(addr("184.164.224.10"), addr("93.184.216.34"), dataplane.ProtoUDP)
	pkt.Payload = []byte("GET /")
	if err := cl.SendPacket(pkt); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "packet at host", func() bool { return len(dst.Inbox()) == 1 })

	// Internet → client: host replies to the experiment address.
	reply := dataplane.NewPacket(addr("93.184.216.34"), addr("184.164.224.10"), dataplane.ProtoUDP)
	reply.Payload = []byte("200 OK")
	dst.Send(reply)
	select {
	case p := <-recvd:
		got = append(got, p)
		if string(p.Payload) != "200 OK" {
			t.Fatalf("payload = %q", p.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reply never reached client")
	}
	_ = got
	st := r.srv.Stats()
	if st.PacketsFromClients != 1 || st.PacketsToClients != 1 {
		t.Fatalf("packet stats = %+v", st)
	}
}

func TestSpoofedTrafficBlocked(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl := r.connectClient(t, "exp1", clientAlloc(), false)
	dst := dataplane.NewHost("h", addr("93.184.216.34"))
	_, svIf, hostIf := dataplane.Connect(r.srv.DP(), addr("93.184.216.1"), "inet", dst, addr("93.184.216.34"), "eth0")
	r.srv.DP().AddIface(svIf)
	dst.SetIface(hostIf)
	r.srv.DP().SetRoute(prefix("93.184.216.0/24"), netip.Addr{}, svIf)

	spoof := dataplane.NewPacket(addr("8.8.8.8"), addr("93.184.216.34"), dataplane.ProtoUDP)
	cl.SendPacket(spoof)
	waitFor(t, "spoof counted", func() bool { return r.srv.Stats().SpoofsBlocked == 1 })
	if len(dst.Inbox()) != 0 {
		t.Fatal("spoofed packet delivered")
	}
}

func TestControlledSpoofingGrant(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl := r.connectClient(t, "exp1", clientAlloc(), true) // spoof grant
	dst := dataplane.NewHost("h", addr("93.184.216.34"))
	_, svIf, hostIf := dataplane.Connect(r.srv.DP(), addr("93.184.216.1"), "inet", dst, addr("93.184.216.34"), "eth0")
	r.srv.DP().AddIface(svIf)
	dst.SetIface(hostIf)
	r.srv.DP().SetRoute(prefix("93.184.216.0/24"), netip.Addr{}, svIf)

	spoof := dataplane.NewPacket(addr("8.8.8.8"), addr("93.184.216.34"), dataplane.ProtoUDP)
	cl.SendPacket(spoof)
	waitFor(t, "spoofed delivery", func() bool { return len(dst.Inbox()) == 1 })
	if r.srv.Stats().SpoofsBlocked != 0 {
		t.Fatal("granted spoof counted as blocked")
	}
}

// ---------------------------------------------------------------------
// BIRD mode

func TestBIRDModeSingleSessionMultiplexes(t *testing.T) {
	r := newRig(t, muxproto.ModeBIRD)
	cl := r.connectClient(t, "exp1", clientAlloc(), false)
	if cl.Provisioning().Mode != muxproto.ModeBIRD {
		t.Fatal("mode not BIRD")
	}
	// One session only.
	waitFor(t, "session", func() bool { return cl.SessionCount() == 1 })

	// Upstream routes demultiplex into per-peer views by path ID.
	r.up1.Announce(prefix("11.0.0.0/16"), router.AnnounceSpec{})
	r.up2.Announce(prefix("12.0.0.0/16"), router.AnnounceSpec{})
	waitFor(t, "views", func() bool { return cl.RouteCount(1) == 1 && cl.RouteCount(2) == 1 })

	// Steered announcement via path ID reaches only upstream 2.
	p := prefix("184.164.224.0/24")
	cl.Announce(p, client.AnnounceOptions{Upstreams: []uint32{2}})
	waitFor(t, "at up2", func() bool { return r.up2.LocRIB().Best(p) != nil })
	time.Sleep(50 * time.Millisecond)
	if r.up1.LocRIB().Best(p) != nil {
		t.Fatal("BIRD-mode steering leaked")
	}
	// Withdraw via path ID.
	cl.Withdraw(p, []uint32{2})
	waitFor(t, "withdrawn", func() bool { return r.up2.LocRIB().Best(p) == nil })
}

func TestModeSessionCountAblation(t *testing.T) {
	// The §3 motivation for BIRD mode: Quagga mode needs one session
	// per upstream; BIRD needs one total.
	rq := newRig(t, muxproto.ModeQuagga)
	cq := rq.connectClient(t, "exp1", clientAlloc(), false)
	waitFor(t, "quagga sessions", func() bool { return cq.SessionCount() == 2 })

	rb := newRig(t, muxproto.ModeBIRD)
	cb := rb.connectClient(t, "exp1", clientAlloc(), false)
	waitFor(t, "bird session", func() bool { return cb.SessionCount() == 1 })
}
