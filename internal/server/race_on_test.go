//go:build race

package server

// raceEnabled reports whether the race detector is compiled in; its
// runtime instrumentation allocates on its own, so allocation budgets
// are only enforced in non-race runs.
const raceEnabled = true
