package server

// Hot-path benchmarks: allocation cost of the full announce→relay
// pipeline. The scenario is the acceptance rig — 1 upstream × 8 clients
// × 1000 routes — driven through real BGP sessions over bufconn, so the
// measurement covers message decode, Adj-RIB-In bookkeeping, attribute
// interning, fan-out queueing, batch packing, encode, and the clients'
// own decode+store path. One "op" is one route delivered to one client.
//
// TestRelayHotPathAllocs is the `make bench` entry point: it measures a
// fixed number of relay rounds with runtime.MemStats and, when
// BENCH_HOTPATH_JSON names a path, writes the result next to the
// committed pre-PR baseline so the allocation win stays auditable.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"peering/internal/benchenv"
	"peering/internal/router"
)

// relayRound re-announces nRoutes prefixes with a round-specific MED
// (forcing a full re-export from the upstream router) and waits until
// every client has been sent its copy of every route.
func relayRound(tb testing.TB, fb *fanoutBench, round, nRoutes, nClients int) {
	tb.Helper()
	target := fb.srv.Stats().RoutesRelayedToClients + uint64(nRoutes*nClients)
	for i := 0; i < nRoutes; i++ {
		fb.up.Announce(benchPrefix(i), router.AnnounceSpec{MED: uint32(round), MEDSet: true})
	}
	benchWait(tb, fmt.Sprintf("relay round %d", round), func() bool {
		return fb.srv.Stats().RoutesRelayedToClients >= target
	})
}

// BenchmarkRelayHotPath reports ns/op, B/op, and allocs/op for one route
// relayed to one client across the full pipeline.
func BenchmarkRelayHotPath(b *testing.B) {
	const nClients, nRoutes = 8, 1000
	fb := newFanoutBench(b, nClients)
	defer fb.close()
	relayRound(b, fb, 0, nRoutes, nClients) // warm tables and queues

	b.ReportAllocs()
	b.ResetTimer()
	round := 0
	for done := 0; done < b.N; done += nRoutes * nClients {
		round++
		relayRound(b, fb, round, nRoutes, nClients)
	}
	b.StopTimer()
}

// hotpathMeasurement is one measured configuration of the relay path.
type hotpathMeasurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// prePRBaseline is the measurement recorded on the tree as it stood
// before the zero-allocation work (per-message body allocation, deep
// attribute clones per stored route, marshal-key batch grouping, one
// Server mutex), captured by this same test. Committed so the JSON
// artifact always carries the comparison point.
var prePRBaseline = hotpathMeasurement{
	NsPerOp:     2500,
	BytesPerOp:  1372.8,
	AllocsPerOp: 12.9,
}

// TestRelayHotPathAllocs measures the relay path and (under `make
// bench`) records BENCH_hotpath.json with the committed baseline
// alongside the current numbers.
func TestRelayHotPathAllocs(t *testing.T) {
	const nClients, nRoutes, rounds = 8, 1000, 3
	testStart := time.Now()
	fb := newFanoutBench(t, nClients)
	defer fb.close()
	relayRound(t, fb, 0, nRoutes, nClients) // warm-up round, unmeasured

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for r := 1; r <= rounds; r++ {
		relayRound(t, fb, r, nRoutes, nClients)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	ops := float64(rounds * nRoutes * nClients)
	cur := hotpathMeasurement{
		NsPerOp:     float64(elapsed.Nanoseconds()) / ops,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / ops,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / ops,
	}
	t.Logf("relay hot path: %.0f ns/op, %.1f B/op, %.2f allocs/op (%d routes × %d clients × %d rounds)",
		cur.NsPerOp, cur.BytesPerOp, cur.AllocsPerOp, nRoutes, nClients, rounds)

	// Allocation budget: the zero-allocation work halved (at least)
	// both bytes and allocations per relayed route; regressing past
	// that floor fails `make check`. Skipped under -race, whose
	// instrumentation allocates on its own.
	if !raceEnabled {
		if max := prePRBaseline.BytesPerOp / 2; cur.BytesPerOp > max {
			t.Errorf("relay path B/op regressed: %.1f > budget %.1f (half the pre-PR baseline %.1f)",
				cur.BytesPerOp, max, prePRBaseline.BytesPerOp)
		}
		if max := prePRBaseline.AllocsPerOp / 2; cur.AllocsPerOp > max {
			t.Errorf("relay path allocs/op regressed: %.2f > budget %.2f (half the pre-PR baseline %.2f)",
				cur.AllocsPerOp, max, prePRBaseline.AllocsPerOp)
		}
	}

	if path := os.Getenv("BENCH_HOTPATH_JSON"); path != "" {
		out, err := json.MarshalIndent(map[string]any{
			"scenario": map[string]int{
				"upstreams": 1, "clients": nClients, "routes": nRoutes, "rounds": rounds,
			},
			"op":              "one route relayed to one client, full pipeline",
			"pre_pr_baseline": prePRBaseline,
			"current":         cur,
			"reduction": map[string]float64{
				"bytes_per_op":  1 - cur.BytesPerOp/prePRBaseline.BytesPerOp,
				"allocs_per_op": 1 - cur.AllocsPerOp/prePRBaseline.AllocsPerOp,
			},
			"env": benchenv.Capture(testStart),
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
