package server

// The orchestrated chaos suite: a 1-upstream × 8-client mux driven
// through malformed floods, prefix-limit breaches, slow-client stalls,
// and kill/warm-restart cycles, all on the virtual clock so every run
// is deterministic. The common assertion across scenarios is blast
// radius: whatever one client or one transport does, healthy clients'
// tables must stay attribute-for-attribute identical to a fault-free
// control rig, and the upstream peering must never reset.

import (
	"encoding/binary"
	"fmt"
	"maps"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"peering/internal/bgp"
	"peering/internal/bufconn"
	"peering/internal/client"
	"peering/internal/clock"
	"peering/internal/faultconn"
	"peering/internal/mrt"
	"peering/internal/muxproto"
	"peering/internal/rib"
	"peering/internal/router"
	"peering/internal/tunnel"
	"peering/internal/wire"
)

// chaosServer builds a server on a virtual clock with the given quota.
func chaosServer(t *testing.T, clk *clock.Virtual, quota QuotaConfig) *Server {
	t.Helper()
	srv := New(Config{
		Site:      "chaos03",
		ASN:       testbedASN,
		RouterID:  addr("184.164.224.1"),
		Mode:      muxproto.ModeQuagga,
		Clock:     clk,
		Dampening: relaxedDampening(),
		Reconnect: bgp.Backoff{Initial: time.Second, Max: 8 * time.Second, Factor: 2},
		Quota:     quota,
	})
	t.Cleanup(srv.Close)
	return srv
}

// chaosUpstreamConfig is the single upstream every chaos rig peers with.
func chaosUpstreamConfig() UpstreamConfig {
	return UpstreamConfig{
		ID: 1, Name: "up1", ASN: 3356,
		PeerAddr: addr("80.249.208.10"), LocalAddr: addr("80.249.208.1"),
	}
}

// attachChaosUpstream wires one upstream router to srv over conn (a
// plain pipe when nil) and waits for the session.
func attachChaosUpstream(t *testing.T, srv *Server, clk *clock.Virtual) (*router.Router, *Upstream) {
	t.Helper()
	up := router.New(router.Config{AS: 3356, RouterID: addr("4.69.0.1"), Clock: clk})
	u, err := srv.AddUpstream(chaosUpstreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := up.AddPeer(router.PeerConfig{
		Addr: addr("80.249.208.1"), LocalAddr: addr("80.249.208.10"), AS: testbedASN,
	})
	ca, cb := bufconn.Pipe()
	srv.AttachUpstream(u, ca)
	up.Attach(p, cb)
	waitFor(t, "upstream session", func() bool { return u.Established() })
	return up, u
}

// connectChaosClient registers and connects one well-behaved client.
func connectChaosClient(t *testing.T, srv *Server, clk *clock.Virtual, id string, tun netip.Addr, alloc ...netip.Prefix) *client.Client {
	t.Helper()
	if err := srv.RegisterClient(ClientAccount{ID: id, Allocation: alloc, TunnelAddr: tun}); err != nil {
		t.Fatal(err)
	}
	ca, cb := bufconn.Pipe()
	if err := srv.AcceptClient(id, ca); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Connect(client.Config{Name: id, RouterID: tun, Clock: clk}, cb)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitEstablished(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// tableOf flattens one per-upstream client view into prefix → marshaled
// attribute block — the strictest attribute-for-attribute comparison
// the wire format allows.
func tableOf(t testing.TB, routes []*rib.Route) map[netip.Prefix]string {
	t.Helper()
	out := make(map[netip.Prefix]string, len(routes))
	for _, r := range routes {
		b, err := wire.MarshalAttrs(r.Attrs, wire.DefaultOptions)
		if err != nil {
			t.Fatalf("marshal attrs for %v: %v", r.Prefix, err)
		}
		out[r.Prefix] = string(b)
	}
	return out
}

// adjInOf captures an upstream's Adj-RIB-In the same way.
func adjInOf(t testing.TB, u *Upstream) map[netip.Prefix]string {
	t.Helper()
	var routes []*rib.Route
	u.mu.RLock()
	u.adjIn.Walk(func(r *rib.Route) bool {
		routes = append(routes, r)
		return true
	})
	u.mu.RUnlock()
	return tableOf(t, routes)
}

// announceWorld originates a table with diverse attributes — prepends,
// MEDs, communities, poisoned paths — so attribute-for-attribute
// comparisons have teeth. Returns the number of prefixes.
func announceWorld(up *router.Router) int {
	specs := []router.AnnounceSpec{
		{},
		{Prepend: 2},
		{MED: 50, MEDSet: true},
		{Communities: []wire.Community{0x2FB90001, 0x2FB90002}},
		{Poison: []uint32{174}},
		{Prepend: 1, MED: 10, MEDSet: true, Communities: []wire.Community{0x2FB9FFFF}},
	}
	n := 0
	for i, spec := range specs {
		for j := 0; j < 3; j++ {
			up.Announce(prefix(fmt.Sprintf("96.%d.%d.0/24", i, j)), spec)
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------
// Raw-wire machinery for the evil client

// rawBGPUpdate frames body as one BGP UPDATE — no codec, no validation:
// exactly what an attacker's socket can produce.
func rawBGPUpdate(body []byte) []byte {
	msg := make([]byte, wire.HeaderLen+len(body))
	for i := 0; i < wire.MarkerLen; i++ {
		msg[i] = 0xff
	}
	binary.BigEndian.PutUint16(msg[wire.MarkerLen:], uint16(len(msg)))
	msg[wire.HeaderLen-1] = byte(wire.MsgUpdate)
	copy(msg[wire.HeaderLen:], body)
	return msg
}

// v4NLRI encodes one IPv4 prefix in RFC 4271 compact form.
func v4NLRI(p netip.Prefix) []byte {
	a := p.Addr().As4()
	nb := (p.Bits() + 7) / 8
	return append([]byte{byte(p.Bits())}, a[:nb]...)
}

// malformedOriginUpdate carries an ORIGIN of impossible length: an RFC
// 7606 treat-as-withdraw error — it must cost the sender its routes,
// not the mux a session.
func malformedOriginUpdate(p netip.Prefix) []byte {
	body := []byte{0, 0, 0, 5, 0x40, 1, 2, 0, 0}
	return rawBGPUpdate(append(body, v4NLRI(p)...))
}

// aggregatorDiscardUpdate is well-formed except for a truncated
// AGGREGATOR: the attribute-discard tier — the route must survive
// without the attribute.
func aggregatorDiscardUpdate(p netip.Prefix) []byte {
	attrs := []byte{
		0x40, 1, 1, 0, // ORIGIN igp
		0x40, 2, 6, 2, 1, 0x00, 0x00, 0xB7, 0xD9, // AS_PATH [47065], 4-octet
		0x40, 3, 4, 10, 250, 0, 66, // NEXT_HOP 10.250.0.66
		0xC0, 7, 3, 0, 0, 0, // AGGREGATOR, impossible length 3
	}
	body := []byte{0, 0, 0, byte(len(attrs))}
	body = append(body, attrs...)
	return rawBGPUpdate(append(body, v4NLRI(p)...))
}

// poisonNLRIUpdate has a 96-bit IPv4 prefix in the NLRI field: RFC 7606
// keeps NLRI errors at session-reset severity (§5.3) because nothing
// after the bad length can be trusted.
func poisonNLRIUpdate() []byte {
	return rawBGPUpdate([]byte{0, 0, 0, 0, 96, 1, 2, 3})
}

// evilPeer is a raw mux client: it completes the tunnel handshake and
// the BGP OPEN exchange by hand, then injects attacker-controlled bytes
// the real client library could never produce.
type evilPeer struct {
	mux     *tunnel.Mux
	streams chan *tunnel.Stream
}

func startEvilPeer(conn net.Conn) *evilPeer {
	e := &evilPeer{streams: make(chan *tunnel.Stream, 4)}
	e.mux = tunnel.NewMux(conn, func(st *tunnel.Stream) {
		switch {
		case st.ID() == muxproto.StreamControl:
			go func() {
				if _, err := muxproto.ReadProvisioning(st); err != nil {
					return
				}
				st.Write([]byte("ok\n"))
			}()
		case st.ID() >= muxproto.StreamBGPBase:
			e.streams <- st
		}
	})
	return e
}

// openSession completes the OPEN/KEEPALIVE exchange on the next BGP
// stream the server dials, advertising hold time 0 so the virtual
// clock never owes the session a keepalive.
func (e *evilPeer) openSession(t *testing.T) *tunnel.Stream {
	t.Helper()
	var st *tunnel.Stream
	select {
	case st = <-e.streams:
	case <-time.After(10 * time.Second):
		t.Fatal("server never opened a BGP stream toward the evil client")
	}
	msg, err := wire.ReadMessage(st, wire.DefaultOptions)
	if err != nil {
		t.Fatalf("evil: read server OPEN: %v", err)
	}
	if _, ok := msg.(*wire.Open); !ok {
		t.Fatalf("evil: expected OPEN, got %v", msg.Type())
	}
	for _, m := range []wire.Message{
		&wire.Open{AS: 64999, HoldTime: 0, BGPID: addr("10.250.0.66")},
		&wire.Keepalive{},
	} {
		b, err := wire.Marshal(m, wire.DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Write(b); err != nil {
			t.Fatalf("evil: handshake write: %v", err)
		}
	}
	if msg, err = wire.ReadMessage(st, wire.DefaultOptions); err != nil {
		t.Fatalf("evil: read server KEEPALIVE: %v", err)
	} else if _, ok := msg.(*wire.Keepalive); !ok {
		t.Fatalf("evil: expected KEEPALIVE, got %v", msg.Type())
	}
	return st
}

// ---------------------------------------------------------------------
// Scenario 1: malformed flood

// TestChaosMalformedFloodContained is the containment conformance test:
// one of eight clients floods the mux with UPDATEs whose attributes are
// malformed at the treat-as-withdraw tier, plus one at the
// attribute-discard tier, plus a final NLRI-poisoned message at the
// session-reset tier. Required outcome per tier: the flood costs the
// evil client nothing but its own routes, the discarded attribute costs
// the route nothing at all, the poisoned NLRI costs exactly one session
// — and through all of it the upstream peering never resets and the
// seven healthy clients' tables stay attribute-for-attribute identical
// to a fault-free control rig fed the same world.
func TestChaosMalformedFloodContained(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))

	// Fault-free control rig: same world, one client, no evil.
	ctl := chaosServer(t, clk, QuotaConfig{})
	ctlUp, _ := attachChaosUpstream(t, ctl, clk)
	ctlCl := connectChaosClient(t, ctl, clk, "ctl", addr("10.250.1.1"), prefix("184.164.224.0/24"))

	// Chaos rig: 7 healthy clients + 1 evil = the 8-client mux.
	srv := chaosServer(t, clk, QuotaConfig{})
	up, u := attachChaosUpstream(t, srv, clk)
	var healthy []*client.Client
	for i := 0; i < 7; i++ {
		cl := connectChaosClient(t, srv, clk, fmt.Sprintf("exp%d", i),
			addr(fmt.Sprintf("10.250.0.%d", i+1)),
			prefix(fmt.Sprintf("184.164.%d.0/24", 224+i)))
		healthy = append(healthy, cl)
	}
	evilAlloc := prefix("184.164.231.0/24")
	if err := srv.RegisterClient(ClientAccount{
		ID: "evil", Allocation: []netip.Prefix{evilAlloc}, TunnelAddr: addr("10.250.0.66"),
	}); err != nil {
		t.Fatal(err)
	}
	ca, cb := bufconn.Pipe()
	if err := srv.AcceptClient("evil", ca); err != nil {
		t.Fatal(err)
	}
	evil := startEvilPeer(cb)
	st := evil.openSession(t)

	nWorld := announceWorld(ctlUp)
	announceWorld(up)
	waitFor(t, "control convergence", func() bool { return ctlCl.RouteCount(1) == nWorld })
	waitFor(t, "chaos convergence", func() bool {
		for _, cl := range healthy {
			if cl.RouteCount(1) != nWorld {
				return false
			}
		}
		return true
	})

	// --- Fault: 50 treat-as-withdraw UPDATEs and one attribute-discard
	// UPDATE, raw on the evil client's session. ---
	const flood = 50
	for i := 0; i < flood; i++ {
		if _, err := st.Write(malformedOriginUpdate(evilAlloc)); err != nil {
			t.Fatalf("evil: flood write %d: %v", i, err)
		}
	}
	if _, err := st.Write(aggregatorDiscardUpdate(evilAlloc)); err != nil {
		t.Fatal(err)
	}

	errCount := func(action string) uint64 { return srv.metrics.bgp.Errors.With(action).Value() }
	waitFor(t, "RFC 7606 containment actions", func() bool {
		return errCount("treat_as_withdraw") >= flood && errCount("attribute_discard") >= 1
	})
	// The discard-tier UPDATE was an otherwise-valid announcement: minus
	// its AGGREGATOR it must clear the vet pipeline and reach the world.
	waitFor(t, "discard-tier route at upstream", func() bool {
		return up.LocRIB().Best(evilAlloc) != nil
	})
	if got := errCount("session_reset"); got != 0 {
		t.Fatalf("flood at the treat-as-withdraw tier reset %d sessions", got)
	}
	if !u.Established() {
		t.Fatal("upstream session lost during malformed flood")
	}

	ctlTable := tableOf(t, ctlCl.Routes(1))
	if len(ctlTable) != nWorld {
		t.Fatalf("control table = %d prefixes, want %d", len(ctlTable), nWorld)
	}
	for i, cl := range healthy {
		if got := tableOf(t, cl.Routes(1)); !maps.Equal(got, ctlTable) {
			t.Fatalf("healthy client %d diverged from fault-free control during flood:\n got %d prefixes, want %d", i, len(got), len(ctlTable))
		}
	}

	// --- Escalation: NLRI damage stays fatal (§5.3). The reset must hit
	// exactly the evil session and nothing else. ---
	if _, err := st.Write(poisonNLRIUpdate()); err != nil {
		t.Fatal(err)
	}
	var notif *wire.Notification
	for i := 0; i < 1000; i++ {
		msg, err := wire.ReadMessage(st, wire.DefaultOptions)
		if err != nil {
			t.Fatalf("evil: awaiting NOTIFICATION: %v", err)
		}
		if n, ok := msg.(*wire.Notification); ok {
			notif = n
			break
		}
	}
	if notif == nil {
		t.Fatal("no NOTIFICATION for NLRI-poisoned UPDATE")
	}
	if notif.Code != wire.CodeUpdateMessageError || notif.Subcode != wire.SubInvalidNetworkField {
		t.Fatalf("NOTIFICATION = %d/%d, want %d/%d (invalid network field)",
			notif.Code, notif.Subcode, wire.CodeUpdateMessageError, wire.SubInvalidNetworkField)
	}
	waitFor(t, "session-reset accounting", func() bool { return errCount("session_reset") == 1 })
	if !u.Established() {
		t.Fatal("upstream session lost to a client's NLRI poison")
	}
	if n := srv.ClientCount(); n != 8 {
		t.Fatalf("client count = %d after evil session reset, want 8 (transport survives)", n)
	}
	for i, cl := range healthy {
		if got := tableOf(t, cl.Routes(1)); !maps.Equal(got, ctlTable) {
			t.Fatalf("healthy client %d diverged after evil session reset", i)
		}
	}
}

// ---------------------------------------------------------------------
// Scenario 2: prefix-limit breach

// TestChaosPrefixQuotaTiers walks one greedy client through the
// max-prefix tiers — warn at 80%%, dampen-new at the limit, teardown
// after three strikes — while a well-behaved client on the same mux
// keeps its announcement and its session.
func TestChaosPrefixQuotaTiers(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	srv := chaosServer(t, clk, QuotaConfig{MaxPrefixes: 4, TeardownAfter: 3})
	up, u := attachChaosUpstream(t, srv, clk)

	greedy := connectChaosClient(t, srv, clk, "greedy", addr("10.250.0.1"), prefix("184.164.224.0/21"))
	goodPfx := prefix("184.164.232.0/24")
	good := connectChaosClient(t, srv, clk, "good", addr("10.250.0.2"), goodPfx)
	if err := good.Announce(goodPfx, client.AnnounceOptions{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "good client's route", func() bool { return up.LocRIB().Best(goodPfx) != nil })

	greedyPfx := func(i int) netip.Prefix { return prefix(fmt.Sprintf("184.164.%d.0/24", 224+i)) }
	// Four prefixes fit the limit; the fourth crosses the 80% warn line.
	for i := 0; i < 4; i++ {
		if err := greedy.Announce(greedyPfx(i), client.AnnounceOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "adverts within quota", func() bool {
		for i := 0; i < 4; i++ {
			if up.LocRIB().Best(greedyPfx(i)) == nil {
				return false
			}
		}
		return srv.Stats().QuotaWarnings == 1
	})

	// Three announcements over the limit: dampen-new rejects each, the
	// third strike fires the teardown tier.
	for i := 4; i < 7; i++ {
		if err := greedy.Announce(greedyPfx(i), client.AnnounceOptions{}); err != nil {
			break // session may already be ceasing: that IS the teardown
		}
	}
	waitFor(t, "teardown tier", func() bool {
		st := srv.Stats()
		return st.QuotaRejected >= 3 && st.QuotaTeardowns == 1
	})
	// The torn-down client's routes leave the world and its transport
	// closes; the rejected overflow prefixes never made it out.
	waitFor(t, "greedy client evicted", func() bool {
		for i := 0; i < 4; i++ {
			if up.LocRIB().Best(greedyPfx(i)) != nil {
				return false
			}
		}
		return srv.ClientCount() == 1
	})
	for i := 4; i < 7; i++ {
		if up.LocRIB().Best(greedyPfx(i)) != nil {
			t.Fatalf("over-quota prefix %v escaped to the upstream", greedyPfx(i))
		}
	}
	// Blast radius: the upstream peering and the good client are whole.
	if !u.Established() {
		t.Fatal("upstream session lost to a quota teardown")
	}
	if up.LocRIB().Best(goodPfx) == nil {
		t.Fatal("well-behaved client's route withdrawn by another client's teardown")
	}
	if good.SessionCount() != 1 {
		t.Fatalf("good client sessions = %d, want 1", good.SessionCount())
	}
}

// ---------------------------------------------------------------------
// Scenario 3: slow-client stall

// TestChaosSlowClientShedAndResync stalls one client's transport while
// the upstream announces a table far beyond the client's fan-out queue
// cap. The overflow must be shed (bounding the memory the laggard can
// strand) without slowing the healthy clients, and the post-stall
// resync must rebuild the laggard's view to attribute-for-attribute
// parity.
func TestChaosSlowClientShedAndResync(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	srv := chaosServer(t, clk, QuotaConfig{MaxQueueOps: 64})
	up, u := attachChaosUpstream(t, srv, clk)

	// The slow client rides a stallable transport.
	if err := srv.RegisterClient(ClientAccount{
		ID: "slow", Allocation: []netip.Prefix{prefix("184.164.224.0/24")}, TunnelAddr: addr("10.250.0.1"),
	}); err != nil {
		t.Fatal(err)
	}
	fcSrv, fcCli := faultconn.Pipe(clk)
	if err := srv.AcceptClient("slow", fcSrv); err != nil {
		t.Fatal(err)
	}
	slow, err := client.Connect(client.Config{Name: "slow", RouterID: addr("10.250.0.1"), Clock: clk}, fcCli)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { slow.Close() })
	if err := slow.WaitEstablished(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	h1 := connectChaosClient(t, srv, clk, "h1", addr("10.250.0.2"), prefix("184.164.225.0/24"))
	h2 := connectChaosClient(t, srv, clk, "h2", addr("10.250.0.3"), prefix("184.164.226.0/24"))

	// Distinct MEDs make every announcement its own attribute group, so
	// each costs the stalled session one UPDATE — the pressure that
	// fills the send queue and then the fan-out queue.
	worldPfx := func(i int) netip.Prefix { return prefix(fmt.Sprintf("96.%d.%d.0/24", i/250, i%250)) }
	const preStall, total = 120, 820
	for i := 0; i < preStall; i++ {
		up.Announce(worldPfx(i), router.AnnounceSpec{MED: uint32(i), MEDSet: true})
	}
	waitFor(t, "pre-stall convergence", func() bool {
		return slow.RouteCount(1) == preStall && h1.RouteCount(1) == preStall && h2.RouteCount(1) == preStall
	})
	base := srv.Stats()

	// --- Fault: the slow client's transport stops making progress
	// (zero-window peer), then the world announces 700 more routes. ---
	fcSrv.Stall()
	for i := preStall; i < total; i++ {
		up.Announce(worldPfx(i), router.AnnounceSpec{MED: uint32(i), MEDSet: true})
	}
	waitFor(t, "healthy convergence and shed", func() bool {
		return h1.RouteCount(1) == total && h2.RouteCount(1) == total &&
			srv.Stats().FanoutShed > base.FanoutShed
	})
	if slow.RouteCount(1) == total {
		t.Fatal("stalled client converged while shedding — stall fault ineffective")
	}
	if !u.Established() {
		t.Fatal("upstream session lost while a client stalled")
	}

	// --- Heal: writes flow again; the resync rebuilds the laggard. ---
	fcSrv.Unstall()
	waitFor(t, "resync convergence", func() bool {
		return slow.RouteCount(1) == total && srv.Stats().FanoutResyncs > base.FanoutResyncs
	})
	want := tableOf(t, h1.Routes(1))
	if got := tableOf(t, slow.Routes(1)); !maps.Equal(got, want) {
		t.Fatalf("resynced client diverged from healthy peer: %d vs %d prefixes", len(got), len(want))
	}
	if n := srv.ClientCount(); n != 3 {
		t.Fatalf("client count = %d, want 3", n)
	}
}

// ---------------------------------------------------------------------
// Scenario 4: kill -9 and warm restart

// TestChaosKillAndWarmRestart kills a server mid-segment — no flush, no
// goodbye — and verifies the acceptance criterion: a new process warm-
// restores the Adj-RIB-In from the newest archive snapshot plus the
// update tail, a reconnecting client converges from that warm table
// before the upstream session returns, and when the (restarted, one
// route poorer) upstream replays its table, only the diff moves: the
// surviving routes are never withdrawn and the dropped route is swept
// at End-of-RIB.
func TestChaosKillAndWarmRestart(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	dir := t.TempDir()

	srvA := chaosServer(t, clk, QuotaConfig{})
	arch, err := mrt.NewArchive(mrt.ArchiveConfig{Dir: dir, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	srvA.AttachArchive(arch)

	upA := router.New(router.Config{AS: 3356, RouterID: addr("4.69.0.1"), Clock: clk})
	uA, err := srvA.AddUpstream(chaosUpstreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	pA := upA.AddPeer(router.PeerConfig{
		Addr: addr("80.249.208.1"), LocalAddr: addr("80.249.208.10"), AS: testbedASN,
	})
	caA, cbA := bufconn.Pipe()
	srvA.AttachUpstream(uA, caA)
	upA.Attach(pA, cbA)
	waitFor(t, "upstream session", func() bool { return uA.Established() })

	rts := []netip.Prefix{
		prefix("96.0.0.0/24"), prefix("96.0.1.0/24"), prefix("96.0.2.0/24"), prefix("96.0.3.0/24"),
	}
	specs := []router.AnnounceSpec{
		{},
		{Prepend: 2},
		{MED: 50, MEDSet: true},
		{Communities: []wire.Community{0x2FB90001}},
	}
	for i, p := range rts {
		upA.Announce(p, specs[i])
	}
	waitFor(t, "archive baseline", func() bool { return uA.RoutesIn() == len(rts) })
	// Seal the segment: the rotation hook dumps a TABLE_DUMP_V2 snapshot
	// of the four-route table.
	if _, err := arch.Rotate(); err != nil {
		t.Fatal(err)
	}
	// The world keeps moving into the live segment: one new route, one
	// withdrawal. This tail is what distinguishes warm restart from
	// restore-from-snapshot.
	tailPfx := prefix("96.0.4.0/24")
	upA.Announce(tailPfx, router.AnnounceSpec{MED: 99, MEDSet: true})
	upA.Withdraw(rts[3])
	waitFor(t, "tail applied", func() bool {
		table := adjInOf(t, uA)
		_, hasTail := table[tailPfx]
		_, hasDead := table[rts[3]]
		return len(table) == 4 && hasTail && !hasDead
	})
	want := adjInOf(t, uA)

	// --- Kill -9: transports sever mid-segment; nothing is sealed,
	// nothing says goodbye. The unsealed live segment on disk is all a
	// successor gets. ---
	caA.Close()
	cbA.Close()

	srvB := chaosServer(t, clk, QuotaConfig{})
	uB, err := srvB.AddUpstream(chaosUpstreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := srvB.WarmRestore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshot == "" || st.SnapshotRoutes != 4 {
		t.Fatalf("warm restore snapshot = %q (%d routes), want 4 routes", st.Snapshot, st.SnapshotRoutes)
	}
	// Both segments share the frozen clock's stamp, so both replay: the
	// sealed one (EoR + 4 announcements) idempotently, the live one
	// (announce + withdraw) bringing the diff. 7 applied updates total.
	if st.TailSegments != 2 || st.TailUpdates != 7 || st.Skipped != 0 {
		t.Fatalf("warm restore tail = %d segments / %d updates / %d skipped, want 2/7/0",
			st.TailSegments, st.TailUpdates, st.Skipped)
	}
	if st.Restored != 4 {
		t.Fatalf("restored %d routes, want 4", st.Restored)
	}
	if got := adjInOf(t, uB); !maps.Equal(got, want) {
		t.Fatalf("warm-restored Adj-RIB-In diverged from pre-kill table: %d vs %d prefixes", len(got), len(want))
	}
	if got := srvB.Stats().StaleRoutesRetained; got != 4 {
		t.Fatalf("stale retained = %d, want 4 (every restored route awaits the live replay)", got)
	}

	// A client connects to the successor BEFORE the upstream session
	// returns: it must converge from the warm table alone.
	cl := connectChaosClient(t, srvB, clk, "exp1", addr("10.250.0.1"), prefix("184.164.224.0/24"))
	waitFor(t, "client convergence from disk", func() bool { return cl.RouteCount(1) == 4 })
	if got := tableOf(t, cl.Routes(1)); !maps.Equal(got, want) {
		t.Fatal("client's warm-start view diverged from the pre-kill table")
	}
	var mu sync.Mutex
	withdrawals := make(map[netip.Prefix]int)
	cl.OnRoute(func(_ uint32, upd *wire.Update) {
		mu.Lock()
		for _, n := range upd.Withdrawn {
			withdrawals[n.Prefix]++
		}
		mu.Unlock()
	})

	// --- The upstream comes back, restarted and one route poorer: it no
	// longer originates the tail prefix. Its replay + End-of-RIB must
	// move only that diff. ---
	upB := router.New(router.Config{AS: 3356, RouterID: addr("4.69.0.1"), Clock: clk})
	for i := 0; i < 3; i++ {
		upB.Announce(rts[i], specs[i])
	}
	pB := upB.AddPeer(router.PeerConfig{
		Addr: addr("80.249.208.1"), LocalAddr: addr("80.249.208.10"), AS: testbedASN,
	})
	caB, cbB := bufconn.Pipe()
	srvB.AttachUpstream(uB, caB)
	upB.Attach(pB, cbB)
	waitFor(t, "upstream recovery", func() bool { return uB.Established() })

	waitFor(t, "end-of-RIB sweep of the dropped route", func() bool {
		return cl.RouteCount(1) == 3 && srvB.Stats().StaleRoutesFlushed == 1
	})
	delete(want, tailPfx)
	if got := tableOf(t, cl.Routes(1)); !maps.Equal(got, want) {
		t.Fatal("client table after recovery diverged from the surviving routes")
	}
	// The acceptance criterion's heart: surviving routes were refreshed
	// in place — the client never saw them withdrawn.
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 3; i++ {
		if n := withdrawals[rts[i]]; n != 0 {
			t.Fatalf("surviving route %v withdrawn %d times during warm restart", rts[i], n)
		}
	}
	if withdrawals[tailPfx] == 0 {
		t.Fatal("route dropped by the restarted upstream was never swept")
	}
}

// ---------------------------------------------------------------------
// Scenario 5: shared-frame broadcast vs a stalled laggard

// TestChaosFrameShedAndResync drives the batched ingest path — the one
// that broadcasts shared encode-once frames to every client — against
// a mux whose slowest client stalls at a tiny queue cap. Healthy
// clients must converge from the shared frames; the laggard's frames
// must shed mid-broadcast without losing withdrawals; and once the
// transport heals, the auto-resync must rebuild the laggard to
// attribute-for-attribute parity with a healthy peer.
func TestChaosFrameShedAndResync(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	srv := New(Config{
		Site: "chaos05", ASN: testbedASN, RouterID: addr("184.164.224.1"),
		Mode: muxproto.ModeQuagga, Clock: clk, Shards: 8,
		Dampening: relaxedDampening(),
		Reconnect: bgp.Backoff{Initial: time.Second, Max: 8 * time.Second, Factor: 2},
		Quota:     QuotaConfig{MaxQueueOps: 64},
	})
	t.Cleanup(srv.Close)
	_, u := attachChaosUpstream(t, srv, clk)

	// The laggard rides a stallable transport; two healthy clients ride
	// plain pipes.
	if err := srv.RegisterClient(ClientAccount{
		ID: "slow", Allocation: []netip.Prefix{prefix("184.164.224.0/24")}, TunnelAddr: addr("10.250.0.1"),
	}); err != nil {
		t.Fatal(err)
	}
	fcSrv, fcCli := faultconn.Pipe(clk)
	if err := srv.AcceptClient("slow", fcSrv); err != nil {
		t.Fatal(err)
	}
	slow, err := client.Connect(client.Config{Name: "slow", RouterID: addr("10.250.0.1"), Clock: clk}, fcCli)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { slow.Close() })
	if err := slow.WaitEstablished(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	h1 := connectChaosClient(t, srv, clk, "h1", addr("10.250.0.2"), prefix("184.164.225.0/24"))
	h2 := connectChaosClient(t, srv, clk, "h2", addr("10.250.0.3"), prefix("184.164.226.0/24"))

	// The world arrives in batched runs — the shape the session reader's
	// batched delivery hands the ingest pool, and the one that forms
	// broadcast frames (8 shards × ≥32 entries per dispatch below).
	worldPfx := func(i int) netip.Prefix { return prefix(fmt.Sprintf("96.%d.%d.0/24", i/256, i%256)) }
	dispatchWorld := func(lo, hi int, wd []netip.Prefix) {
		var upds []*wire.Update
		if len(wd) > 0 {
			w := &wire.Update{}
			for _, p := range wd {
				w.Withdrawn = append(w.Withdrawn, wire.NLRI{Prefix: p})
			}
			upds = append(upds, w)
		}
		for i := lo; i < hi; i += 128 {
			attrs := fanoutAttrs(3356)
			attrs.MED, attrs.HasMED = uint32(i/128), true
			upd := &wire.Update{Attrs: attrs}
			for j := i; j < hi && j < i+128; j++ {
				upd.Reach = append(upd.Reach, wire.NLRI{Prefix: worldPfx(j)})
			}
			upds = append(upds, upd)
		}
		srv.ingest.dispatchBatch(u, 3356, addr("4.69.0.1"), upds)
	}
	// Shed counts live in each queue until its flusher merges them; a
	// stalled flusher never merges, so sum both places.
	shedTotal := func() uint64 {
		n := srv.Stats().FanoutShed
		for _, c := range srv.clientList() {
			n += c.out.shed.Load()
		}
		return n
	}

	dispatchWorld(0, 2048, nil)
	waitFor(t, "pre-stall convergence", func() bool {
		return slow.RouteCount(1) == 2048 && h1.RouteCount(1) == 2048 && h2.RouteCount(1) == 2048
	})
	if srv.metrics.fanoutFrameShared.Value() == 0 {
		t.Fatal("no shared-frame flushes: the batched path never formed a broadcast frame")
	}
	base := srv.Stats()

	// --- Fault: the laggard's transport stops making progress, then the
	// world keeps broadcasting until the laggard's queue cap sheds a
	// frame mid-broadcast. ---
	fcSrv.Stall()
	next := 2048
	for i := 0; i < 56 && shedTotal() == base.FanoutShed; i++ {
		dispatchWorld(next, next+1024, nil)
		next += 1024
		srv.ingest.barrier() // every frame for this round is enqueued (or shed)
	}
	if shedTotal() == base.FanoutShed {
		t.Fatal("laggard never shed a frame at its queue cap")
	}
	// With the laggard pinned over its cap, one more round carries
	// withdrawals of live prefixes: the frames shed their announcements
	// but the withdrawals must survive as plain ops.
	wd := make([]netip.Prefix, 256)
	for i := range wd {
		wd[i] = worldPfx(i)
	}
	dispatchWorld(next, next+1024, wd)
	next += 1024
	total := next - len(wd)
	waitFor(t, "healthy convergence through the stall", func() bool {
		return h1.RouteCount(1) == total && h2.RouteCount(1) == total
	})
	if slow.RouteCount(1) == total {
		t.Fatal("stalled client converged while shedding — stall fault ineffective")
	}
	if !u.Established() {
		t.Fatal("upstream session lost while a client stalled")
	}

	// --- Heal: writes flow again; the overflow flag drives a full
	// resync that rebuilds the laggard. ---
	fcSrv.Unstall()
	waitFor(t, "resync convergence", func() bool {
		return slow.RouteCount(1) == total && srv.Stats().FanoutResyncs > base.FanoutResyncs
	})
	want := tableOf(t, h1.Routes(1))
	got := tableOf(t, slow.Routes(1))
	if !maps.Equal(got, want) {
		t.Fatalf("resynced client diverged from healthy peer: %d vs %d prefixes", len(got), len(want))
	}
	for i := range wd {
		if _, ok := got[wd[i]]; ok {
			t.Fatalf("withdrawn prefix %v survived the shed on the laggard", wd[i])
		}
	}
}
