package server

// Compiled safety-filter integration: the policy engine interposed on
// both directions of the mux. Upstream ingest rejections must die
// before the Adj-RIB-In (never reaching a client queue), client
// announcements with leaked paths must die before the vet pipeline
// relays them, reloads mid-churn must give every route exactly one
// verdict, and the chaos scenario replays a full MRT trace with
// injected hijacks and leaks against a fault-free control.

import (
	"bytes"
	"fmt"
	"maps"
	"net/netip"
	"testing"
	"time"

	"peering/internal/client"
	"peering/internal/clock"
	"peering/internal/mrt"
	"peering/internal/policy/compiled"
	"peering/internal/router"
	"peering/internal/wire"
)

// testPolicy is the canonical rule set the integration tests load: the
// testbed's own space is denied from upstreams, one /16 carries ROAs,
// AS 174 is Peerlock-protected, and 3356/6453 never appear via
// non-transit neighbors (Peerlock-lite).
func testPolicy() *compiled.RuleSet {
	return &compiled.RuleSet{
		Prefixes: []compiled.PrefixRule{
			{Prefix: prefix("184.164.224.0/19"), Le: 32},
		},
		Origins: []compiled.OriginRule{
			{Prefix: prefix("99.99.0.0/16"), MaxLen: 24, Origin: 65001},
		},
		Peerlock:  []compiled.PeerlockRule{{Protected: 174, Allowed: []uint32{3356, 2914}}},
		NoTransit: []uint32{6453},
	}
}

// rejectCount reads one rule class's reject counter.
func rejectCount(srv *Server, c compiled.Class) uint64 {
	return srv.metrics.policyRejected[c].Value()
}

// TestPolicyFiltersUpstreamIngest loads the filter, has the (non-
// transit) upstream announce one route per rule family plus two clean
// ones, and verifies rejections die pre-RIB: the Adj-RIB-In and the
// client's table hold exactly the accepted routes, and every rejection
// lands on its class counter.
func TestPolicyFiltersUpstreamIngest(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	srv := chaosServer(t, clk, QuotaConfig{})
	srv.LoadPolicy(testPolicy())
	up, u := attachChaosUpstream(t, srv, clk)
	cl := connectChaosClient(t, srv, clk, "exp1", addr("10.250.0.1"), prefix("184.164.224.0/24"))

	good1, good2 := prefix("96.0.0.0/24"), prefix("99.99.2.0/24")
	up.Announce(good1, router.AnnounceSpec{})                           // accept
	up.Announce(good2, router.AnnounceSpec{OriginASNs: []uint32{65001}}) // ROA-valid: origin 65001
	up.Announce(prefix("184.164.225.0/24"), router.AnnounceSpec{})      // prefix: testbed space from an upstream
	up.Announce(prefix("99.99.1.0/24"), router.AnnounceSpec{})          // origin: covered by ROA, origin 3356
	up.Announce(prefix("96.0.1.0/24"), router.AnnounceSpec{Poison: []uint32{174, 64999}})
	// peerlock: 174 adjacent to 64999 ^
	up.Announce(prefix("96.0.2.0/24"), router.AnnounceSpec{Poison: []uint32{6453}})
	// peerlock-lite: 6453 via the non-transit upstream ^

	waitFor(t, "accepted routes and rejection accounting", func() bool {
		st := srv.Stats()
		return cl.RouteCount(1) == 2 && st.PolicyAccepted == 2 && st.PolicyRejected == 4
	})
	table := adjInOf(t, u)
	if len(table) != 2 {
		t.Fatalf("Adj-RIB-In holds %d routes, want 2 (rejections must die pre-RIB)", len(table))
	}
	for _, p := range []netip.Prefix{good1, good2} {
		if _, ok := table[p]; !ok {
			t.Fatalf("accepted route %v missing from Adj-RIB-In", p)
		}
	}
	if got := tableOf(t, cl.Routes(1)); !maps.Equal(got, table) {
		t.Fatalf("client table diverged from Adj-RIB-In: %d vs %d prefixes", len(got), len(table))
	}
	for class, want := range map[compiled.Class]uint64{
		compiled.ClassPrefix:       1,
		compiled.ClassOrigin:       1,
		compiled.ClassPeerlock:     1,
		compiled.ClassPeerlockLite: 1,
	} {
		if got := rejectCount(srv, class); got != want {
			t.Errorf("%s rejections = %d, want %d", class, got, want)
		}
	}
}

// TestPolicyClientLeakBlocked: the client direction. A client that
// announces its own allocation with a path carrying a no-transit AS —
// the classic "leaked my provider's route to my other provider" shape —
// is rejected by the path verdict before the vet pipeline relays it,
// and counted as the leak it is; the same prefix with a clean path
// still flows.
func TestPolicyClientLeakBlocked(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	srv := chaosServer(t, clk, QuotaConfig{})
	srv.LoadPolicy(testPolicy())
	up, _ := attachChaosUpstream(t, srv, clk)
	alloc := prefix("184.164.224.0/24")
	cl := connectChaosClient(t, srv, clk, "exp1", addr("10.250.0.1"), alloc)

	// Leak: the path claims the route passed through no-transit AS 6453.
	if err := cl.Announce(alloc, client.AnnounceOptions{Poison: []uint32{6453}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "leak counted", func() bool {
		return rejectCount(srv, compiled.ClassPeerlockLite) == 1
	})
	if up.LocRIB().Best(alloc) != nil {
		t.Fatal("leaked announcement escaped to the upstream")
	}

	// Clean re-announcement of the same prefix: accepted and relayed.
	if err := cl.Announce(alloc, client.AnnounceOptions{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "clean announcement relayed", func() bool {
		return up.LocRIB().Best(alloc) != nil
	})
	if got := srv.Stats().PolicyRejected; got != 1 {
		t.Fatalf("policy rejections = %d after clean announce, want 1", got)
	}
}

// TestPolicyReloadUnderChurn swaps filters A↔B while the upstream
// announces a stream of routes, then asserts the reload atomicity
// invariant: every announced NLRI got exactly one verdict from one
// coherent filter (accepted + rejected == announced, and the
// Adj-RIB-In holds exactly the accepted routes), and a final deny-all
// filter governs everything announced after it.
func TestPolicyReloadUnderChurn(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	srv := chaosServer(t, clk, QuotaConfig{})
	filterA := &compiled.RuleSet{Prefixes: []compiled.PrefixRule{{Prefix: prefix("97.0.0.0/8"), Le: 32}}}
	filterB := &compiled.RuleSet{Prefixes: []compiled.PrefixRule{{Prefix: prefix("98.0.0.0/8"), Le: 32}}}
	srv.LoadPolicy(filterA)
	up, u := attachChaosUpstream(t, srv, clk)

	// 300 routes across 96/8 (accepted by both filters), 97/8 (denied by
	// A) and 98/8 (denied by B), announced while the main goroutine
	// reloads A↔B as fast as the engine swaps.
	const n = 300
	churnPfx := func(i int) netip.Prefix {
		return prefix(fmt.Sprintf("%d.%d.%d.0/24", 96+i%3, i/250, i%250))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			up.Announce(churnPfx(i), router.AnnounceSpec{MED: uint32(i), MEDSet: true})
		}
	}()
	reloads := 0
	for announcing := true; announcing; reloads++ {
		select {
		case <-done:
			announcing = false
		default:
		}
		if reloads%2 == 0 {
			srv.LoadPolicy(filterB)
		} else {
			srv.LoadPolicy(filterA)
		}
	}
	t.Logf("swapped filters %d times during the churn", reloads)

	waitFor(t, "every route verdicted exactly once", func() bool {
		st := srv.Stats()
		return st.PolicyAccepted+st.PolicyRejected == n
	})
	st := srv.Stats()
	if table := adjInOf(t, u); uint64(len(table)) != st.PolicyAccepted {
		t.Fatalf("Adj-RIB-In holds %d routes but %d were accepted: a verdict was dropped or double-applied",
			len(table), st.PolicyAccepted)
	}
	// Every 96/8 route passes either filter; its presence is reload-
	// independent. 97/8 and 98/8 split between the filters, so only the
	// sum is deterministic — which is exactly the invariant.
	table := adjInOf(t, u)
	for i := 0; i < n; i += 3 {
		if _, ok := table[churnPfx(i)]; !ok {
			t.Fatalf("route %v is accepted by both filters but missing", churnPfx(i))
		}
	}

	// A final deny-all filter governs everything after it.
	srv.LoadPolicy(&compiled.RuleSet{DefaultDeny: true})
	for i := 0; i < 50; i++ {
		up.Announce(prefix(fmt.Sprintf("100.0.%d.0/24", i)), router.AnnounceSpec{})
	}
	waitFor(t, "deny-all filter blocks the tail", func() bool {
		return srv.Stats().PolicyRejected == st.PolicyRejected+50
	})
	if got := srv.Stats().PolicyAccepted; got != st.PolicyAccepted {
		t.Fatalf("accepts moved under deny-all: %d -> %d", st.PolicyAccepted, got)
	}
}

// ---------------------------------------------------------------------
// Chaos scenario: hijack and leak injection under full-trace replay

// attackTrace builds two MRT traces from the same legitimate schedule:
// the control trace, and the chaos trace with hijacks, leaks, and
// poisoned paths interleaved between the legitimate records. Returns
// (legit, attacked, legitimate announced NLRIs, rejects per class).
func attackTrace(t *testing.T) (legit, attacked []byte, legitRoutes int, injected map[compiled.Class]int) {
	t.Helper()
	var ctl, atk bytes.Buffer
	wCtl, wAtk := mrt.NewWriter(&ctl, nil), mrt.NewWriter(&atk, nil)
	ts := time.Unix(1_700_000_000, 0).UTC()
	injected = make(map[compiled.Class]int)

	write := func(w *mrt.Writer, upd *wire.Update) {
		t.Helper()
		m := &mrt.BGP4MP{
			PeerAS: 3356, LocalAS: testbedASN,
			PeerIP: addr("80.249.208.10"), LocalIP: addr("80.249.208.1"),
			Message: func() []byte {
				b, err := wire.Marshal(upd, wire.Options{AS4: true})
				if err != nil {
					t.Fatal(err)
				}
				return b
			}(),
			AS4: true,
		}
		rec, err := m.Record(ts, true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
		ts = ts.Add(time.Second)
	}
	both := func(upd *wire.Update) { write(wCtl, upd); write(wAtk, upd) }
	attack := func(class compiled.Class, upd *wire.Update) {
		write(wAtk, upd)
		injected[class]++
	}
	announce := func(p netip.Prefix, med uint32, path ...uint32) *wire.Update {
		return &wire.Update{
			Attrs: &wire.Attrs{
				Origin:  wire.OriginIGP,
				ASPath:  []wire.Segment{{Type: wire.SegSequence, ASNs: path}},
				NextHop: addr("80.249.208.10"),
				MED:     med, HasMED: med != 0,
			},
			Reach: []wire.NLRI{{Prefix: p}},
		}
	}

	// Legitimate schedule: 30 routes on clean paths, some churn (a MED
	// change and a withdraw/re-announce), and two ROA-valid routes.
	for i := 0; i < 30; i++ {
		both(announce(prefix(fmt.Sprintf("96.0.%d.0/24", i)), 0, 3356, 174, 2914, uint32(64500+i)))
		legitRoutes++
	}
	both(announce(prefix("99.99.10.0/24"), 0, 3356, 65001))
	both(announce(prefix("99.99.11.0/24"), 0, 3356, 2914, 65001))
	legitRoutes += 2

	// Injections, spread through more legitimate churn below:
	// origin hijacks — ROA-covered space from the wrong origin, and a
	// too-long more-specific from the right one.
	attack(compiled.ClassOrigin, announce(prefix("99.99.50.0/24"), 0, 3356, 64666))
	attack(compiled.ClassOrigin, announce(prefix("99.99.51.0/24"), 0, 3356, 2914, 64666))
	attack(compiled.ClassOrigin, announce(prefix("99.99.52.0/25"), 0, 3356, 65001)) // maxlen 24 < 25
	// prefix violations — testbed space announced by an upstream.
	attack(compiled.ClassPrefix, announce(prefix("184.164.230.0/24"), 0, 3356, 64777))
	attack(compiled.ClassPrefix, announce(prefix("184.164.224.0/19"), 0, 3356, 64777))
	// Peerlock leaks — protected AS 174 adjacent to strangers, including
	// a poisoned sandwich that keeps a legitimate-looking tail.
	attack(compiled.ClassPeerlock, announce(prefix("96.50.0.0/24"), 0, 3356, 64888, 174))
	attack(compiled.ClassPeerlock, announce(prefix("96.50.1.0/24"), 0, 3356, 174, 64999, 174, 2914, 64500))
	// Peerlock-lite leaks — no-transit AS 6453 via the non-transit peer.
	attack(compiled.ClassPeerlockLite, announce(prefix("96.60.0.0/24"), 0, 3356, 6453, 64500))
	attack(compiled.ClassPeerlockLite, announce(prefix("96.60.1.0/24"), 0, 3356, 2914, 6453))

	// Legitimate churn after the attacks: a MED change (same prefix,
	// fresh attributes) and a withdraw — withdrawals always pass.
	both(announce(prefix("96.0.0.0/24"), 77, 3356, 174, 2914, 64500))
	legitRoutes++
	both(&wire.Update{Withdrawn: []wire.NLRI{{Prefix: prefix("96.0.1.0/24")}}})

	return ctl.Bytes(), atk.Bytes(), legitRoutes, injected
}

// TestChaosHijackLeakFiltered is the acceptance scenario: a full MRT
// replay with injected origin hijacks, Peerlock-violating leaks, path
// poisoning, and prefix thefts. Every injected route must be blocked
// and counted by rule class, while the legitimate churn converges
// attribute-for-attribute with a fault-free control rig replaying the
// attack-free trace.
func TestChaosHijackLeakFiltered(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	legit, attacked, legitRoutes, injected := attackTrace(t)

	// Control: no attacks on the wire, no filter loaded.
	ctl := chaosServer(t, clk, QuotaConfig{})
	ctlUp, err := ctl.AddUpstream(chaosUpstreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctlCl := connectChaosClient(t, ctl, clk, "ctl", addr("10.250.1.1"), prefix("184.164.224.0/24"))
	ctlStats, ctlSess, err := ctl.ReplayUpstream(ctlUp, mrt.NewReader(bytes.NewReader(legit)), mrt.ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctlSess.Close()

	// Chaos: the attacked trace through the compiled filter.
	srv := chaosServer(t, clk, QuotaConfig{})
	srv.LoadPolicy(testPolicy())
	u, err := srv.AddUpstream(chaosUpstreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	cl := connectChaosClient(t, srv, clk, "exp1", addr("10.250.0.1"), prefix("184.164.225.0/24"))
	atkStats, atkSess, err := srv.ReplayUpstream(u, mrt.NewReader(bytes.NewReader(attacked)), mrt.ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer atkSess.Close()

	totalInjected := 0
	for _, n := range injected {
		totalInjected += n
	}
	if atkStats.Routes != ctlStats.Routes+totalInjected {
		t.Fatalf("attack trace carried %d routes, control %d + %d injected", atkStats.Routes, ctlStats.Routes, totalInjected)
	}

	// 100%% of the injections blocked, each on its own class counter,
	// and every legitimate route accepted.
	waitFor(t, "every injected route blocked and counted", func() bool {
		st := srv.Stats()
		return st.PolicyRejected == uint64(totalInjected) && st.PolicyAccepted == uint64(legitRoutes)
	})
	for class, want := range injected {
		if got := rejectCount(srv, class); got != uint64(want) {
			t.Errorf("%s rejections = %d, want %d", class, got, want)
		}
	}

	// The legitimate churn converged attribute-for-attribute with the
	// fault-free control — on the client table and the Adj-RIB-In both.
	waitFor(t, "control and chaos client convergence", func() bool {
		n := len(tableOf(t, ctlCl.Routes(1)))
		return n > 0 && len(tableOf(t, cl.Routes(1))) == n
	})
	want := tableOf(t, ctlCl.Routes(1))
	if got := tableOf(t, cl.Routes(1)); !maps.Equal(got, want) {
		t.Fatalf("filtered client diverged from fault-free control: %d vs %d prefixes", len(got), len(want))
	}
	if got := adjInOf(t, u); !maps.Equal(got, adjInOf(t, ctlUp)) {
		t.Fatal("filtered Adj-RIB-In diverged from fault-free control")
	}
	// And nothing the attacker sent is anywhere in the filtered world.
	table := adjInOf(t, u)
	for _, p := range []netip.Prefix{
		prefix("99.99.50.0/24"), prefix("99.99.51.0/24"), prefix("99.99.52.0/25"),
		prefix("184.164.230.0/24"), prefix("184.164.224.0/19"),
		prefix("96.50.0.0/24"), prefix("96.50.1.0/24"),
		prefix("96.60.0.0/24"), prefix("96.60.1.0/24"),
	} {
		if _, ok := table[p]; ok {
			t.Errorf("injected route %v reached the Adj-RIB-In", p)
		}
	}
}
