package server

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"testing"
	"time"

	"peering/internal/benchenv"
	"peering/internal/bufconn"
	"peering/internal/client"
	"peering/internal/muxproto"
	"peering/internal/policy/compiled"
	"peering/internal/router"
)

// Fan-out benchmarks: how many UPDATE messages the batching pipeline
// spends relaying one upstream's table to N clients, and how long a
// late joiner waits for a full replay.

// benchPrefix maps an integer to a distinct /32 under 10.0.0.0/8
// (host routes: no masked bits to collide on the wire).
func benchPrefix(i int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}), 32)
}

// fanoutBench is a 1-upstream × N-client rig on the system clock.
type fanoutBench struct {
	srv     *Server
	up      *router.Router
	clients []*client.Client
}

func newFanoutBench(tb testing.TB, nClients int) *fanoutBench {
	tb.Helper()
	fb := &fanoutBench{}
	fb.srv = New(Config{
		Site:     "bench01",
		ASN:      testbedASN,
		RouterID: addr("184.164.224.1"),
		Mode:     muxproto.ModeQuagga,
	})
	// The relay measurements run with the compiled safety filter live
	// and every rule family populated — prefix table, ROA table,
	// Peerlock, Peerlock-lite — so the hot-path budget covers the
	// filtering cost a production mux pays. The rules are shaped so the
	// benchmark's 10.0.0.0/8 world passes: what is measured is the
	// verdict, not a rejection short-circuit.
	fb.srv.LoadPolicy(&compiled.RuleSet{
		Prefixes:  []compiled.PrefixRule{{Prefix: netip.MustParsePrefix("184.164.224.0/19"), Le: 32}},
		Origins:   []compiled.OriginRule{{Prefix: netip.MustParsePrefix("99.99.0.0/16"), MaxLen: 24, Origin: 65001}},
		Peerlock:  []compiled.PeerlockRule{{Protected: 174, Allowed: []uint32{3356, 2914}}},
		NoTransit: []uint32{6453},
	})
	fb.up = router.New(router.Config{AS: 3356, RouterID: addr("4.69.0.1")})
	u, err := fb.srv.AddUpstream(UpstreamConfig{
		ID: 1, Name: "up1", ASN: 3356,
		PeerAddr: addr("80.249.208.10"), LocalAddr: addr("80.249.208.1"),
	})
	if err != nil {
		tb.Fatal(err)
	}
	p := fb.up.AddPeer(router.PeerConfig{
		Addr: addr("80.249.208.1"), LocalAddr: addr("80.249.208.10"), AS: testbedASN,
	})
	ca, cb := bufconn.Pipe()
	fb.srv.AttachUpstream(u, ca)
	fb.up.Attach(p, cb)
	benchWait(tb, "upstream session", func() bool { return u.Established() })

	for i := 0; i < nClients; i++ {
		id := fmt.Sprintf("exp%d", i+1)
		if err := fb.srv.RegisterClient(ClientAccount{
			ID:         id,
			Allocation: []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{184, 164, byte(224 + i), 0}), 24)},
			TunnelAddr: addr(fmt.Sprintf("10.250.0.%d", i+1)),
		}); err != nil {
			tb.Fatal(err)
		}
		ca, cb := bufconn.Pipe()
		if err := fb.srv.AcceptClient(id, ca); err != nil {
			tb.Fatal(err)
		}
		cl, err := client.Connect(client.Config{Name: id, RouterID: addr(fmt.Sprintf("10.250.0.%d", i+1))}, cb)
		if err != nil {
			tb.Fatal(err)
		}
		if err := cl.WaitEstablished(10 * time.Second); err != nil {
			tb.Fatal(err)
		}
		fb.clients = append(fb.clients, cl)
	}
	return fb
}

func (fb *fanoutBench) close() {
	for _, cl := range fb.clients {
		cl.Close()
	}
	fb.srv.Close()
}

// benchWait is waitFor with a longer deadline: benchmark tables are an
// order of magnitude larger than the functional tests'.
func benchWait(tb testing.TB, what string, cond func() bool) {
	tb.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	tb.Fatalf("timed out waiting for %s", what)
}

// TestFanoutMessageReduction is the batching acceptance check: relaying
// a 1000-route table from one upstream to 8 clients must take at least
// 5× fewer Session.Send calls than one-message-per-route would. When
// BENCH_FANOUT_JSON names a path (as `make bench` arranges), the
// measurement is written there as JSON.
func TestFanoutMessageReduction(t *testing.T) {
	const nClients, nRoutes = 8, 1000
	testStart := time.Now()
	fb := newFanoutBench(t, nClients)
	defer fb.close()

	for i := 0; i < nRoutes; i++ {
		fb.up.Announce(benchPrefix(i), router.AnnounceSpec{})
	}
	benchWait(t, "routes at server", func() bool {
		return fb.srv.Upstream(1).RoutesIn() == nRoutes
	})
	for i, cl := range fb.clients {
		cl := cl
		benchWait(t, fmt.Sprintf("client %d convergence", i+1), func() bool {
			return cl.RouteCount(1) == nRoutes
		})
	}
	// Stats are bumped after the flush that delivered the routes; wait
	// for the relay counter to account for every client's full table.
	benchWait(t, "relay accounting", func() bool {
		return fb.srv.Stats().RoutesRelayedToClients == uint64(nClients*nRoutes)
	})

	st := fb.srv.Stats()
	baseline := uint64(nClients * nRoutes) // one UPDATE per route per client
	if st.UpdatesToClients*5 > baseline {
		t.Fatalf("batching sent %d UPDATEs for %d NLRIs; want at least 5x reduction over %d",
			st.UpdatesToClients, st.RoutesRelayedToClients, baseline)
	}
	// Cross-check the stat against the sessions' own send counters:
	// every UPDATE toward a client goes through the fan-out pipeline.
	var sent uint64
	for _, c := range fb.srv.clientList() {
		if sess := c.session(1); sess != nil {
			sent += sess.SentUpdates()
		}
	}
	if sent != st.UpdatesToClients {
		t.Fatalf("session send counters total %d, stats say %d", sent, st.UpdatesToClients)
	}

	t.Logf("relayed %d NLRIs to %d clients in %d UPDATEs (%.1fx reduction)",
		st.RoutesRelayedToClients, nClients, st.UpdatesToClients,
		float64(baseline)/float64(st.UpdatesToClients))

	if path := os.Getenv("BENCH_FANOUT_JSON"); path != "" {
		out, err := json.MarshalIndent(map[string]any{
			"clients":          nClients,
			"routes":           nRoutes,
			"nlris_relayed":    st.RoutesRelayedToClients,
			"updates_sent":     st.UpdatesToClients,
			"baseline_updates": baseline,
			"reduction":        float64(baseline) / float64(st.UpdatesToClients),
			"coalesced":        st.FanoutCoalesced,
			"backpressure":     st.FanoutBackpressure,
			"queue_high_water": st.FanoutQueueHighWater,
			"env":              benchenv.Capture(testStart),
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// BenchmarkFanoutThroughput measures end-to-end relay throughput:
// routes announced by the upstream until every one of 4 clients holds
// the full table. The routes-relayed/s metric counts NLRIs delivered
// across all clients.
func BenchmarkFanoutThroughput(b *testing.B) {
	const nClients = 4
	fb := newFanoutBench(b, nClients)
	defer fb.close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.up.Announce(benchPrefix(i), router.AnnounceSpec{})
	}
	for _, cl := range fb.clients {
		cl := cl
		benchWait(b, "client convergence", func() bool { return cl.RouteCount(1) == b.N })
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*nClients)/b.Elapsed().Seconds(), "routes-relayed/s")
}

// BenchmarkReplayLatency measures how long a late-joining client waits
// for the full replay of a 1000-route table (connect through converged
// view, per iteration).
func BenchmarkReplayLatency(b *testing.B) {
	const nRoutes = 1000
	fb := newFanoutBench(b, 0)
	defer fb.close()
	for i := 0; i < nRoutes; i++ {
		fb.up.Announce(benchPrefix(i), router.AnnounceSpec{})
	}
	benchWait(b, "routes at server", func() bool {
		return fb.srv.Upstream(1).RoutesIn() == nRoutes
	})
	if err := fb.srv.RegisterClient(ClientAccount{
		ID: "replay", Allocation: clientAlloc(), TunnelAddr: addr("10.250.0.99"),
	}); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ca, cb := bufconn.Pipe()
		if err := fb.srv.AcceptClient("replay", ca); err != nil {
			b.Fatal(err)
		}
		cl, err := client.Connect(client.Config{Name: "replay", RouterID: addr("10.250.0.99")}, cb)
		if err != nil {
			b.Fatal(err)
		}
		benchWait(b, "replay convergence", func() bool { return cl.RouteCount(1) == nRoutes })
		cl.Close()
	}
}
