// Replay integration: feed an archived MRT trace into the server as if
// its original upstream were announcing live. The replayer speaks real
// BGP over an in-memory pipe, so the trace exercises the same session,
// adj-RIB, policy, and fan-out paths a live upstream would.

package server

import (
	"peering/internal/bgp"
	"peering/internal/bufconn"
	"peering/internal/mrt"
)

// ReplayUpstream plays the trace read from r into the server through
// upstream u. The replayer's identity (AS, router ID, ADD-PATH offer)
// is derived from the trace's first record, so u should be configured
// with the ASN of the peer that originally sent the trace. The returned
// session is the replayer's side, left established so the server's
// tables can be inspected; close it to tear the upstream session down.
func (s *Server) ReplayUpstream(u *Upstream, r *mrt.Reader, cfg mrt.ReplayConfig) (mrt.ReplayStats, *bgp.Session, error) {
	serverEnd, replayEnd := bufconn.Pipe()
	s.AttachUpstream(u, serverEnd)
	if cfg.Intern == nil {
		// Replayed updates land in the server's tables; canonicalize them
		// in the server's own intern table before they cross the session.
		cfg.Intern = s.intern
	}
	return mrt.ReplaySession(replayEnd, r, mrt.SessionReplayConfig{
		PeerAS:  s.cfg.ASN,
		Metrics: s.metrics.bgp,
		Replay:  cfg,
	})
}
