package server

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"peering/internal/bgp"
	"peering/internal/bufconn"
	"peering/internal/client"
	"peering/internal/clock"
	"peering/internal/dampen"
	"peering/internal/muxproto"
	"peering/internal/router"
	"peering/internal/wire"
)

// Tests for the fan-out pipeline (fanout.go) and for the
// announcement-loss bugs in the client→upstream path: announcements
// made while an upstream is down must be deferred (not penalized and
// not lost), spurious withdrawals must not be relayed or charged, and a
// clean upstream teardown must disarm the restart-window backstop.

func fanoutAttrs(asn uint32) *wire.Attrs {
	return &wire.Attrs{
		Origin:  wire.OriginIGP,
		ASPath:  []wire.Segment{{Type: wire.SegSequence, ASNs: []uint32{asn}}},
		NextHop: addr("80.249.208.10"),
	}
}

func TestOutQueueCoalescing(t *testing.T) {
	// One shard: these assertions are about coalescing and exact drain
	// order, which only a single shard pins down across prefixes.
	q := newOutQueue(0, 0, 1)
	q.beginSync(0, 1)
	q.beginSync(0, 2)
	a1 := fanoutAttrs(100)
	a2 := fanoutAttrs(200)
	pA, pB := prefix("11.0.0.0/16"), prefix("12.0.0.0/16")

	// announce → withdraw → announce collapses to one op carrying the
	// final attributes.
	q.put(1, pA, a1)
	q.put(1, pA, nil)
	q.put(1, pA, a2)
	ops, eors, ctr, _ := q.take(nil, nil)
	if len(ops) != 1 || len(eors) != 0 {
		t.Fatalf("got %d ops, %d eors; want 1, 0", len(ops), len(eors))
	}
	if ops[0].attrs != a2 {
		t.Fatalf("coalesced op carries %p, want the final attrs %p", ops[0].attrs, a2)
	}
	if ctr.coalesced != 2 {
		t.Fatalf("coalesced counter = %d, want 2", ctr.coalesced)
	}

	// announce → withdraw collapses to a withdraw, in the slot of the
	// first enqueue: per-prefix order is preserved, not re-sorted.
	q.put(1, pA, a1)
	q.put(1, pB, a1)
	q.put(1, pA, nil)
	ops, _, ctr, _ = q.take(nil, nil)
	if len(ops) != 2 {
		t.Fatalf("got %d ops, want 2", len(ops))
	}
	if ops[0].key.prefix != pA || ops[0].attrs != nil {
		t.Fatalf("op[0] = %+v, want withdraw of %v", ops[0], pA)
	}
	if ops[1].key.prefix != pB || ops[1].attrs != a1 {
		t.Fatalf("op[1] = %+v, want announce of %v", ops[1], pB)
	}
	if ctr.coalesced != 1 {
		t.Fatalf("coalesced counter = %d, want 1", ctr.coalesced)
	}

	// The same prefix via different upstreams is distinct state: no
	// coalescing across upstream IDs.
	q.put(1, pA, a1)
	q.put(2, pA, a1)
	ops, _, ctr, _ = q.take(nil, nil)
	if len(ops) != 2 || ctr.coalesced != 0 {
		t.Fatalf("cross-upstream ops = %d (coalesced %d), want 2 (0)", len(ops), ctr.coalesced)
	}

	// End-of-RIB markers drain alongside ops, and take empties the queue.
	q.put(1, pA, a1)
	q.putEoR(1)
	ops, eors, _, _ = q.take(nil, nil)
	if len(ops) != 1 || len(eors) != 1 || eors[0] != 1 {
		t.Fatalf("ops=%d eors=%v, want 1 op and EoR for upstream 1", len(ops), eors)
	}
	if ops, eors, _, _ := q.take(nil, nil); len(ops) != 0 || len(eors) != 0 || q.depth() != 0 {
		t.Fatalf("queue not empty after take: %d ops, %d eors, depth %d", len(ops), len(eors), q.depth())
	}
}

// TestOutQueueFrameShedKeepsWithdrawals pins down how a shared
// broadcast frame interacts with the laggard cap: a frame arriving at
// a queue already over its hard limit cannot be partially shed, so its
// announcements drop (counted, overflow flagged for the resync) while
// its withdrawals are re-queued as plain ops — shedding must never
// leave a client holding a route the world withdrew. Also pins the
// ordering rule: a put after a frame appends after it instead of
// coalescing onto a pre-frame slot.
func TestOutQueueFrameShedKeepsWithdrawals(t *testing.T) {
	q := newOutQueue(0, 8, 1)
	q.beginSync(0, 1)
	a := fanoutAttrs(100)
	entries := func(lo, hi int, attrs *wire.Attrs) []batchEntry {
		var es []batchEntry
		for i := lo; i < hi; i++ {
			es = append(es, batchEntry{
				nlri:  wire.NLRI{Prefix: prefix(fmt.Sprintf("96.0.%d.0/24", i))},
				attrs: attrs,
			})
		}
		return es
	}

	// A frame bigger than the cap enqueues whole when the queue is
	// empty: frames are all-or-nothing.
	f1 := newBroadcastFrame(1, 1, 0, entries(0, 10, a))
	f1.retain(1)
	q.putFrame(0, f1)
	if d := q.depth(); d != 10 {
		t.Fatalf("depth after frame = %d, want 10 logical ops", d)
	}

	// The queue is now over its cap of 8: the next frame's announcements
	// shed, its withdrawals survive as plain ops, and the frame's queue
	// reference is released without ever being flushed.
	es := entries(10, 14, a)
	es = append(es, entries(20, 22, nil)...)
	f2 := newBroadcastFrame(1, 1, 0, es)
	f2.retain(1)
	q.putFrame(0, f2)
	if n := f2.refs.Load(); n != 0 {
		t.Fatalf("shed frame holds %d refs, want 0", n)
	}
	if d := q.depth(); d != 12 {
		t.Fatalf("depth after shed = %d, want 10 + 2 withdrawals", d)
	}

	ops, _, ctr, overflow := q.take(nil, nil)
	if !overflow {
		t.Fatal("shed did not flag the queue for resync")
	}
	if ctr.shed != 4 {
		t.Fatalf("shed counter = %d, want the 4 dropped announcements", ctr.shed)
	}
	if len(ops) != 3 || ops[0].frame != f1 {
		t.Fatalf("take returned %d ops (first frame %p), want [f1, wd, wd]", len(ops), ops[0].frame)
	}
	for _, op := range ops[1:] {
		if op.frame != nil || op.attrs != nil {
			t.Fatalf("surviving op %+v, want a plain withdrawal", op)
		}
	}
	f1.release() // the flush path would do this
	if n := f1.refs.Load(); n != 0 {
		t.Fatalf("flushed frame holds %d refs, want 0", n)
	}

	// Ordering across a frame: a pending pre-frame op must not absorb a
	// post-frame put for the same prefix, or the client would see the
	// frame's (older) state last.
	p := prefix("96.0.50.0/24")
	q.put(1, p, a)
	f3 := newBroadcastFrame(1, 1, 0, entries(50, 51, a))
	f3.retain(1)
	q.putFrame(0, f3)
	q.put(1, p, nil)
	ops, _, _, _ = q.take(nil, nil)
	if len(ops) != 3 {
		t.Fatalf("got %d ops, want pre-put, frame, post-put", len(ops))
	}
	if ops[0].attrs != a || ops[1].frame != f3 || ops[2].attrs != nil {
		t.Fatalf("drain order %+v breaks put/frame/put sequencing", ops)
	}
	f3.release()
}

// TestOutQueueSyncGate pins the replay handoff rule: a fresh queue
// drops live traffic (ops and frames, announcements and withdrawals
// alike) until beginSync marks the shard walked for that upstream —
// the walk itself delivers every route such a drop carried. The gate
// is per upstream, so one upstream's replay does not open another's.
func TestOutQueueSyncGate(t *testing.T) {
	q := newOutQueue(0, 0, 1)
	a := fanoutAttrs(100)
	pA := prefix("11.0.0.0/16")

	q.put(1, pA, a)
	q.put(1, pA, nil)
	f := newBroadcastFrame(1, 1, 0, []batchEntry{{nlri: wire.NLRI{Prefix: pA}, attrs: a}})
	f.retain(1)
	q.putFrame(0, f)
	if n := f.refs.Load(); n != 0 {
		t.Fatalf("gated frame holds %d refs, want 0 (dropped and released)", n)
	}
	if ops, _, _, _ := q.take(nil, nil); len(ops) != 0 || q.depth() != 0 {
		t.Fatalf("gated queue drained %d ops (depth %d), want none", len(ops), q.depth())
	}

	q.beginSync(0, 1)
	q.put(1, pA, a)
	q.put(2, pA, a) // upstream 2 has not synced: still dropped
	ops, _, _, _ := q.take(nil, nil)
	if len(ops) != 1 || ops[0].key.upstream != 1 {
		t.Fatalf("post-sync drain = %+v, want exactly upstream 1's op", ops)
	}
}

func TestOutQueueBackpressureCounters(t *testing.T) {
	q := newOutQueue(2, 0, 1)
	q.beginSync(0, 1)
	a := fanoutAttrs(100)
	for i := 0; i < 4; i++ {
		q.put(1, prefix("11.0.0.0/16"), a) // coalesces: never backpressure
	}
	q.put(1, prefix("11.1.0.0/16"), a)
	q.put(1, prefix("11.2.0.0/16"), a)
	q.put(1, prefix("11.3.0.0/16"), a) // 4th distinct key: over the soft limit
	_, _, ctr, _ := q.take(nil, nil)
	if ctr.backpressure != 2 {
		t.Fatalf("backpressure = %d, want 2 (keys 3 and 4 over limit 2)", ctr.backpressure)
	}
	if ctr.highWater != 4 {
		t.Fatalf("highWater = %d, want 4", ctr.highWater)
	}
	if ctr.coalesced != 3 {
		t.Fatalf("coalesced = %d, want 3", ctr.coalesced)
	}
}

// soloSupervisedRig is the single-upstream, virtual-clock,
// supervised-transport rig shared by the announcement-loss regression
// tests. Dampening is the strict default: the bugs under test charged
// penalties the world should never have seen, and the default
// thresholds are exactly what made them bite.
type soloSupervisedRig struct {
	clk *clock.Virtual
	srv *Server
	up  *router.Router
	u   *Upstream
	sup *bgp.Supervisor
	cl  *client.Client

	mu        sync.Mutex
	serverEnd net.Conn
}

func (r *soloSupervisedRig) killTransport() {
	r.mu.Lock()
	conn := r.serverEnd
	r.mu.Unlock()
	conn.Close()
}

func newSoloSupervisedRig(t *testing.T) *soloSupervisedRig {
	t.Helper()
	r := &soloSupervisedRig{clk: clock.NewVirtual(time.Unix(1_700_000_000, 0))}
	r.srv = New(Config{
		Site:      "solo01",
		ASN:       testbedASN,
		RouterID:  addr("184.164.224.1"),
		Mode:      muxproto.ModeQuagga,
		Clock:     r.clk,
		Reconnect: bgp.Backoff{Initial: time.Second, Max: 8 * time.Second, Factor: 2},
	})
	t.Cleanup(r.srv.Close)

	r.up = router.New(router.Config{AS: 3356, RouterID: addr("4.69.0.1"), Clock: r.clk})
	u, err := r.srv.AddUpstream(UpstreamConfig{
		ID: 1, Name: "up1", ASN: 3356,
		PeerAddr: addr("80.249.208.10"), LocalAddr: addr("80.249.208.1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.u = u
	p := r.up.AddPeer(router.PeerConfig{
		Addr: addr("80.249.208.1"), LocalAddr: addr("80.249.208.10"), AS: testbedASN,
	})
	dial := func() (net.Conn, error) {
		ca, cb := bufconn.Pipe()
		r.mu.Lock()
		r.serverEnd = ca
		r.mu.Unlock()
		r.up.Attach(p, cb)
		return ca, nil
	}
	r.sup = r.srv.AttachUpstreamSupervised(u, dial)
	waitFor(t, "upstream session", func() bool { return u.Established() })

	if err := r.srv.RegisterClient(ClientAccount{
		ID: "exp1", Allocation: clientAlloc(), TunnelAddr: addr("10.250.0.1"),
	}); err != nil {
		t.Fatal(err)
	}
	ca, cb := bufconn.Pipe()
	if err := r.srv.AcceptClient("exp1", ca); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Connect(client.Config{Name: "exp1", RouterID: addr("10.250.0.1"), Clock: r.clk}, cb)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.WaitEstablished(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	r.cl = cl
	return r
}

// advertisedHas reports whether the upstream's advert book-keeping holds
// p for owner.
func advertisedHas(u *Upstream, p netip.Prefix, owner string) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	ad := u.advertised[p]
	return ad != nil && ad.owner == owner
}

// TestAnnounceWhileUpstreamDownDeferredNotPenalized is the regression
// test for announcement loss bug #1: announcements arriving while the
// upstream session is down used to be charged to the damper (three
// announcements crossed the default suppress threshold, silently
// discarding the route) even though nothing could reach the wire. They
// must instead be recorded for replay, penalty-free, and delivered when
// the supervisor brings the session back.
func TestAnnounceWhileUpstreamDownDeferredNotPenalized(t *testing.T) {
	r := newSoloSupervisedRig(t)
	clientPfx := prefix("184.164.224.0/24")
	marker := prefix("184.164.224.0/25")
	key := dampen.Key{Prefix: clientPfx, Source: addr("10.250.0.1")}

	r.killTransport()
	waitFor(t, "upstream death noticed", func() bool {
		return r.sup.Stats().ConsecutiveFailures == 1
	})

	// Re-announce the same prefix three times while the upstream is
	// down. Client-session handling is serialized, so the marker
	// announcement proves all three were processed.
	for i := 0; i < 3; i++ {
		if err := r.cl.Announce(clientPfx, client.AnnounceOptions{Upstreams: []uint32{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.cl.Announce(marker, client.AnnounceOptions{Upstreams: []uint32{1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "announcements recorded for replay", func() bool {
		return advertisedHas(r.u, clientPfx, "exp1") && advertisedHas(r.u, marker, "exp1")
	})

	if pen := r.srv.damper.Penalty(key); pen != 0 {
		t.Fatalf("announcing while the upstream is down charged penalty %v", pen)
	}
	st := r.srv.Stats()
	if st.FlapsSuppressed != 0 {
		t.Fatalf("FlapsSuppressed = %d while nothing reached the wire", st.FlapsSuppressed)
	}
	if st.AnnouncementsRelayed != 0 {
		t.Fatalf("AnnouncementsRelayed = %d with the upstream down", st.AnnouncementsRelayed)
	}

	// Redial timer was armed at death + 1s backoff. Recovery must replay
	// the deferred announcements.
	r.clk.Advance(1100 * time.Millisecond)
	waitFor(t, "deferred announcements reach the upstream", func() bool {
		return r.u.Established() &&
			r.up.LocRIB().Best(clientPfx) != nil &&
			r.up.LocRIB().Best(marker) != nil
	})
	if pen := r.srv.damper.Penalty(key); pen != 0 {
		t.Fatalf("replay on recovery charged penalty %v", pen)
	}
	if st := r.srv.Stats(); st.FlapsSuppressed != 0 {
		t.Fatalf("FlapsSuppressed = %d after recovery", st.FlapsSuppressed)
	}
}

// upstreamSess reads the server-side session toward an upstream.
func upstreamSess(s *Server, id uint32) *bgp.Session {
	u := s.Upstream(id)
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.sess
}

// TestSpuriousWithdrawNotRelayedOrPenalized is the regression test for
// announcement loss bug #2: withdrawing a prefix the client never
// announced used to be relayed upstream AND charged to the damper —
// two spurious withdrawals later, the client's first real announcement
// was suppressed. A withdrawal of a prefix not in the advert map must
// be a no-op on both counts.
func TestSpuriousWithdrawNotRelayedOrPenalized(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl := r.connectClient(t, "exp1", clientAlloc(), false)
	clientPfx := prefix("184.164.224.0/24")
	marker := prefix("184.164.224.0/25")
	key := dampen.Key{Prefix: clientPfx, Source: addr("10.250.0.1")}

	sess := upstreamSess(r.srv, 1)
	base := sess.SentUpdates()

	// Two withdrawals of a prefix that was never announced. With the
	// default damper config these alone used to bank a penalty of 2000 —
	// exactly the suppress threshold.
	for i := 0; i < 2; i++ {
		if err := cl.Withdraw(clientPfx, []uint32{1}); err != nil {
			t.Fatal(err)
		}
	}
	// Marker announcement on the same session: once it lands at the
	// upstream, both withdrawals have been processed.
	if err := cl.Announce(marker, client.AnnounceOptions{Upstreams: []uint32{1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "marker at upstream", func() bool {
		return r.up1.LocRIB().Best(marker) != nil
	})

	if got := sess.SentUpdates(); got != base+1 {
		t.Fatalf("upstream saw %d UPDATEs, want 1 (the marker): spurious withdrawals were relayed", got-base)
	}
	if pen := r.srv.damper.Penalty(key); pen != 0 {
		t.Fatalf("spurious withdrawals charged penalty %v", pen)
	}

	// The first real announcement must not be suppressed.
	if err := cl.Announce(clientPfx, client.AnnounceOptions{Upstreams: []uint32{1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "real announcement at upstream", func() bool {
		return r.up1.LocRIB().Best(clientPfx) != nil
	})
	if st := r.srv.Stats(); st.FlapsSuppressed != 0 {
		t.Fatalf("FlapsSuppressed = %d; the real announcement was charged for spurious withdrawals", st.FlapsSuppressed)
	}
}

// TestCleanTeardownStopsStaleTimer is the regression test for bug #3:
// the clean-teardown branch of handleUpstreamDown cleared the
// Adj-RIB-In but left the restart-window backstop armed. The leaked
// timer would fire into a future restart window and disarm it. The
// virtual clock counts armed timers, so the leak is directly
// observable.
func TestCleanTeardownStopsStaleTimer(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	srv := New(Config{
		Site:     "solo02",
		ASN:      testbedASN,
		RouterID: addr("184.164.224.1"),
		Mode:     muxproto.ModeQuagga,
		Clock:    clk,
	})
	t.Cleanup(srv.Close)
	u, err := srv.AddUpstream(UpstreamConfig{
		ID: 1, Name: "up1", ASN: 3356,
		PeerAddr: addr("80.249.208.10"), LocalAddr: addr("80.249.208.1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	peerCfg := bgp.Config{
		LocalAS: 3356, LocalID: addr("4.69.0.1"), PeerAS: testbedASN, Clock: clk,
	}

	// Raw peer that announces two prefixes but never sends End-of-RIB
	// (End-of-RIB would flush the stale state and disarm the timer
	// through the legitimate path, masking the leak).
	annUpd := &wire.Update{
		Reach: []wire.NLRI{{Prefix: prefix("11.0.0.0/16")}, {Prefix: prefix("11.1.0.0/16")}},
		Attrs: fanoutAttrs(3356),
	}
	ca, cb := bufconn.Pipe()
	sess1 := srv.AttachUpstream(u, ca)
	peer1 := bgp.New(cb, peerCfg, bgp.HandlerFuncs{
		OnEstablished: func(s *bgp.Session) { s.Send(annUpd) },
	})
	go peer1.Run()
	waitFor(t, "routes in adj-rib-in", func() bool { return u.RoutesIn() == 2 })

	// Abrupt transport death: unclean loss arms the restart-window
	// backstop.
	ca.Close()
	waitFor(t, "stale retention", func() bool {
		return srv.Stats().StaleRoutesRetained == 2
	})
	waitFor(t, "both sessions down", func() bool {
		select {
		case <-sess1.Done():
		default:
			return false
		}
		select {
		case <-peer1.Done():
			return true
		default:
			return false
		}
	})
	// Dead sessions stop their hold/keepalive timers, so exactly the
	// backstop remains armed.
	waitFor(t, "only the restart-window backstop armed", func() bool {
		return clk.PendingTimers() == 1
	})

	// The peer comes back but re-announces nothing and sends no
	// End-of-RIB, then says a clean goodbye (Cease). The clean-teardown
	// path clears the Adj-RIB-In — and must also disarm the backstop.
	ca2, cb2 := bufconn.Pipe()
	sess2 := srv.AttachUpstream(u, ca2)
	peer2 := bgp.New(cb2, peerCfg, bgp.HandlerFuncs{})
	go peer2.Run()
	waitFor(t, "session re-established", func() bool { return u.Established() })

	peer2.Close()
	waitFor(t, "clean teardown complete", func() bool {
		select {
		case <-sess2.Done():
			return true
		default:
			return false
		}
	})
	waitFor(t, "restart-window backstop disarmed", func() bool {
		return clk.PendingTimers() == 0
	})

	// And the window closing later must be a no-op, not a flush of a
	// table that no longer exists.
	clk.Advance(DefaultRestartWindow + time.Minute)
	if st := srv.Stats(); st.StaleRoutesFlushed != 0 {
		t.Fatalf("StaleRoutesFlushed = %d after clean teardown", st.StaleRoutesFlushed)
	}
}

// TestFanoutConvergesThroughFlaps is the end-to-end
// coalescing-correctness test: a burst of announce/withdraw/announce
// churn for one prefix may coalesce arbitrarily in the client queues,
// but every client must converge to the final state, whichever it is.
func TestFanoutConvergesThroughFlaps(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	cl := r.connectClient(t, "exp1", clientAlloc(), false)
	p := prefix("11.0.0.0/16")

	// End announced.
	for i := 0; i < 25; i++ {
		r.up1.Announce(p, router.AnnounceSpec{Prepend: i % 3})
		if i%2 == 1 {
			r.up1.Withdraw(p)
		}
	}
	r.up1.Announce(p, router.AnnounceSpec{Prepend: 2})
	waitFor(t, "client converges to announced", func() bool {
		rt := cl.RoutesFor(p)[1]
		return rt != nil && rt.Attrs.PathLen() == 3
	})

	// End withdrawn.
	for i := 0; i < 25; i++ {
		r.up1.Withdraw(p)
		r.up1.Announce(p, router.AnnounceSpec{})
	}
	r.up1.Withdraw(p)
	waitFor(t, "client converges to withdrawn", func() bool {
		return cl.RoutesFor(p)[1] == nil
	})
}

// TestConcurrentReplayAndChurn races late-joining clients' replays
// against live upstream churn. Under -race this also exercises the
// attribute-aliasing contract (bug #4): one *wire.Attrs rides the
// Adj-RIB-In and every client's queue concurrently, and the packer
// must treat it as immutable.
func TestConcurrentReplayAndChurn(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	stable := make([]netip.Prefix, 50)
	churn := make([]netip.Prefix, 50)
	for i := range stable {
		stable[i] = prefix(fmt.Sprintf("11.0.%d.0/24", i))
		churn[i] = prefix(fmt.Sprintf("12.0.%d.0/24", i))
	}
	for _, p := range stable {
		r.up1.Announce(p, router.AnnounceSpec{})
	}
	waitFor(t, "stable routes in adj-rib-in", func() bool {
		return r.srv.Upstream(1).RoutesIn() == len(stable)
	})
	cl1 := r.connectClient(t, "exp1", clientAlloc(), false)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for round := 0; round < 3; round++ {
			for _, p := range churn {
				r.up1.Announce(p, router.AnnounceSpec{Prepend: round})
			}
			for _, p := range churn {
				r.up1.Withdraw(p)
			}
		}
		for _, p := range churn {
			r.up1.Announce(p, router.AnnounceSpec{})
		}
	}()

	// Two more clients replay the table while the churn runs.
	cl2 := r.connectClient(t, "exp2", []netip.Prefix{prefix("184.164.225.0/24")}, false)
	cl3 := r.connectClient(t, "exp3", []netip.Prefix{prefix("184.164.226.0/24")}, false)
	<-done

	want := len(stable) + len(churn)
	waitFor(t, "all clients converge", func() bool {
		return cl1.RouteCount(1) == want && cl2.RouteCount(1) == want && cl3.RouteCount(1) == want
	})
}
