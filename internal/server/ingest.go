package server

// Sharded ingest pipeline. Upstream readers no longer mutate the
// Adj-RIB-In and walk the client list inline: each UPDATE is split by
// prefix-hash shard and handed to the worker owning that shard, so a
// full-table flood from one peer spreads across workers instead of
// serializing on one table lock, and two peers updating different
// prefixes never contend at all. One worker per shard gives every
// (upstream, prefix) a single writer, which is what keeps relay
// ordering intact without a global lock:
//
//   - a worker installs and enqueues under one hold of the shard's
//     write lock, so version k is enqueued to every client before k+1
//     is installed and no client queue ever sees stale-after-fresh;
//   - a replay walk holds the shard's read lock while it enqueues, so
//     relative to any one install-and-enqueue it is strictly before
//     (the walk carries the route; the live enqueue was dropped by the
//     client's closed sync gate, see outQueue.beginSync) or strictly
//     after (the gate is open and the live enqueue delivers it) —
//     exactly one of the two reaches the client;
//   - the worker snapshots the client list before taking the shard
//     lock: a client that registers later replays under that same
//     lock, so its walk covers the routes its absence from the
//     snapshot skipped.
//
// barrier() flushes the pipeline: operations that must observe every
// in-flight update (stale sweeps, teardown withdrawals, archive
// snapshots) fence all workers first.

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"peering/internal/policy/compiled"
	"peering/internal/rib"
	"peering/internal/wire"
)

// ingestChanDepth is the per-shard channel buffer. Deep enough that a
// bursty reader rarely blocks, shallow enough that a fence drains in
// microseconds.
const ingestChanDepth = 256

// ingestSeg is one run of same-kind operations inside a batched op:
// nil attrs marks withdrawals, anything else announcements under one
// interned attribute set. Segments preserve source-update order within
// the batch; the worker folds them to final state per prefix before
// the table pass and the fan-out frame.
type ingestSeg struct {
	attrs *wire.Attrs
	nlris []wire.NLRI
}

// ingestOp is one shard's slice of an upstream UPDATE — or, when segs
// is non-empty, of a whole batch of UPDATEs. The NLRI slices alias the
// decoded messages (fresh per decode) or a partition buffer owned by
// this op; attrs is interned and immutable.
type ingestOp struct {
	u     *Upstream
	attrs *wire.Attrs // nil: withdrawals only
	wd    []wire.NLRI
	reach []wire.NLRI
	// segs, when non-empty, marks a batch op (wd/reach/attrs unused).
	segs []ingestSeg
	// peerAS/peerID snapshot the session identity at receive time, so
	// the stored routes are stamped even if the session dies before the
	// worker runs.
	peerAS  uint32
	peerID  netip.Addr
	learned time.Time
	// fence, when non-nil, marks a barrier op: the worker signals and
	// processes nothing.
	fence *sync.WaitGroup
}

// ingestPool runs one worker per shard. The shard of a prefix here is
// the same rib.PrefixShard the tables use, so a worker only ever takes
// its own shard's locks.
type ingestPool struct {
	srv   *Server
	chans []chan *ingestOp
	mask  uint32
	stop  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
	// gate serializes shutdown against in-flight sends: senders hold
	// the read side, close flips stopped under the write side, so once
	// close holds the lock no new op can enter a channel and the
	// workers' final drain is complete.
	gate    sync.RWMutex
	stopped bool
	// pending counts queued operations across all shards (scrape-time
	// visibility into pipeline lag).
	pending atomic.Int64

	ops sync.Pool // *ingestOp
}

func newIngestPool(s *Server, shards int) *ingestPool {
	p := &ingestPool{
		srv:   s,
		chans: make([]chan *ingestOp, shards),
		mask:  uint32(shards - 1),
		stop:  make(chan struct{}),
	}
	p.ops.New = func() any { return new(ingestOp) }
	for i := range p.chans {
		p.chans[i] = make(chan *ingestOp, ingestChanDepth)
		p.wg.Add(1)
		go p.run(i)
	}
	return p
}

func (p *ingestPool) close() {
	p.once.Do(func() {
		p.gate.Lock() // waits out every in-flight send
		p.stopped = true
		p.gate.Unlock()
		close(p.stop)
	})
	p.wg.Wait()
}

func (p *ingestPool) run(i int) {
	defer p.wg.Done()
	ch := p.chans[i]
	for {
		select {
		case op := <-ch:
			p.pending.Add(-1)
			if op.fence != nil {
				op.fence.Done()
				continue
			}
			if len(op.segs) > 0 {
				p.processBatch(op, i)
			} else {
				p.process(op, i)
			}
		case <-p.stop:
			// No sender can enter after close set stopped, so one final
			// drain empties the channel (fences included).
			for {
				select {
				case op := <-ch:
					p.pending.Add(-1)
					if op.fence != nil {
						op.fence.Done()
					}
				default:
					return
				}
			}
		}
	}
}

// send queues op on shard i. After shutdown the op is dropped (fences
// are released so no barrier hangs).
func (p *ingestPool) send(i int, op *ingestOp) bool {
	p.gate.RLock()
	if p.stopped {
		p.gate.RUnlock()
		if op.fence != nil {
			op.fence.Done()
		}
		return false
	}
	p.pending.Add(1)
	p.chans[i] <- op
	p.gate.RUnlock()
	return true
}

// barrier blocks until every operation dispatched before it has been
// fully processed. Callers must not be ingest workers.
func (p *ingestPool) barrier() {
	var wg sync.WaitGroup
	wg.Add(len(p.chans))
	for i := range p.chans {
		p.send(i, &ingestOp{fence: &wg})
	}
	wg.Wait()
}

// process applies one op: the compiled safety filter first (pre-RIB,
// so a rejected route never touches the Adj-RIB-In or any client
// queue), then table bookkeeping, then fan-out, with the client
// snapshot taken in between (see the ordering notes in the package
// comment above). The filter pointer is loaded exactly once per op:
// a policy reload racing this worker lands entirely before or entirely
// after the op's NLRIs — every route gets exactly one verdict from one
// coherent rule set. Withdrawals always pass; retracting state is
// always safe.
func (p *ingestPool) process(op *ingestOp, si int) {
	u := op.u
	reach := op.reach
	if op.attrs != nil {
		if f := p.srv.policy.Current(); f != nil {
			reach = p.filterReach(f, op)
		}
	} else {
		reach = nil
	}
	clients := p.srv.clientList()
	// Install and enqueue under one hold of the shard's write lock (the
	// ordering contract in the package comment): a replay walk is then
	// strictly before or strictly after this whole op, never between
	// the install and the fan-out.
	u.adjIn.Update(si, func(t *rib.AdjRIB) {
		for _, n := range op.wd {
			t.Remove(n.Prefix, 0)
		}
		for _, n := range reach {
			t.Set(&rib.Route{
				Prefix:  n.Prefix,
				Attrs:   op.attrs,
				Src:     rib.PeerKey{Addr: u.cfg.PeerAddr},
				PeerAS:  op.peerAS,
				PeerID:  op.peerID,
				EBGP:    true,
				Learned: op.learned,
			})
		}
		for _, c := range clients {
			for _, n := range op.wd {
				c.out.put(u.cfg.ID, n.Prefix, nil)
			}
			for _, n := range reach {
				c.out.put(u.cfg.ID, n.Prefix, op.attrs)
			}
		}
	})
	*op = ingestOp{}
	p.ops.Put(op)
}

// filterReach runs the compiled verdict over op's announced NLRIs and
// compacts the survivors in place (the slice is owned by this op — it
// aliases either the fresh decode or a partition buffer, both single-
// consumer). Accepted counts batch into one counter add; rejects bump
// their rule-class counter individually, since they are the rare case.
func (p *ingestPool) filterReach(f *compiled.Filter, op *ingestOp) []wire.NLRI {
	peer := compiled.Peer{AS: op.peerAS, Transit: op.u.cfg.Transit}
	kept := op.reach[:0]
	for _, n := range op.reach {
		v := f.Verdict(n.Prefix, op.attrs, peer)
		if v.Accept {
			kept = append(kept, n)
			continue
		}
		p.srv.metrics.policyRejected[v.Class].Inc()
	}
	if len(kept) > 0 {
		p.srv.metrics.policyAccepted.Add(uint64(len(kept)))
	}
	return kept
}

// processBatch applies one batched op to shard si: policy verdicts per
// announce segment (amortized over the interned attribute set the
// whole segment shares), a fold to final state per prefix, one
// shard-writer table pass under a single lock round-trip, then fan-out
// — a shared broadcast frame when the batch is big enough to amortize
// across clients, the coalescing per-op path otherwise.
func (p *ingestPool) processBatch(op *ingestOp, si int) {
	u := op.u
	if f := p.srv.policy.Current(); f != nil {
		for k := range op.segs {
			sg := &op.segs[k]
			if sg.attrs == nil {
				continue
			}
			sg.nlris = p.filterSeg(f, op, sg)
		}
	}

	// Fold to final state: the last segment touching a prefix wins, so
	// the table pass and the frame agree and a frame never carries a
	// stale announcement ahead of its own withdrawal.
	var total int
	for _, sg := range op.segs {
		total += len(sg.nlris)
	}
	entries := make([]batchEntry, 0, total)
	idx := make(map[netip.Prefix]int, total)
	for _, sg := range op.segs {
		for _, n := range sg.nlris {
			if j, ok := idx[n.Prefix]; ok {
				entries[j].attrs = sg.attrs
			} else {
				idx[n.Prefix] = len(entries)
				entries = append(entries, batchEntry{nlri: n, attrs: sg.attrs})
			}
		}
	}
	if len(entries) > 0 {
		p.srv.metrics.ingestBatchSize.Observe(float64(len(entries)))
		clients := p.srv.clientList()
		// The frame is built outside the lock (it only groups entries;
		// encoding is deferred to the first flush), but enqueued inside
		// it — see process for the ordering contract.
		var f *broadcastFrame
		if len(clients) >= 2 && len(entries) >= frameThreshold {
			skey, pathID := p.srv.sessionKey(u)
			f = newBroadcastFrame(skey, u.cfg.ID, pathID, entries)
			f.retain(len(clients))
		}
		u.adjIn.Update(si, func(t *rib.AdjRIB) {
			for _, e := range entries {
				if e.attrs == nil {
					t.Remove(e.nlri.Prefix, 0)
					continue
				}
				t.Set(&rib.Route{
					Prefix:  e.nlri.Prefix,
					Attrs:   e.attrs,
					Src:     rib.PeerKey{Addr: u.cfg.PeerAddr},
					PeerAS:  op.peerAS,
					PeerID:  op.peerID,
					EBGP:    true,
					Learned: op.learned,
				})
			}
			if f != nil {
				for _, c := range clients {
					c.out.putFrame(si, f)
				}
			} else {
				for _, c := range clients {
					for _, e := range entries {
						c.out.put(u.cfg.ID, e.nlri.Prefix, e.attrs)
					}
				}
			}
		})
	}
	*op = ingestOp{}
	p.ops.Put(op)
}

// filterSeg runs the compiled verdict over one announce segment,
// compacting survivors in place (the slice is owned by this op).
func (p *ingestPool) filterSeg(f *compiled.Filter, op *ingestOp, sg *ingestSeg) []wire.NLRI {
	peer := compiled.Peer{AS: op.peerAS, Transit: op.u.cfg.Transit}
	kept := sg.nlris[:0]
	for _, n := range sg.nlris {
		v := f.Verdict(n.Prefix, sg.attrs, peer)
		if v.Accept {
			kept = append(kept, n)
			continue
		}
		p.srv.metrics.policyRejected[v.Class].Inc()
	}
	if len(kept) > 0 {
		p.srv.metrics.policyAccepted.Add(uint64(len(kept)))
	}
	return kept
}

// dispatchBatch splits a slice of UPDATEs (one batched session read)
// by shard: one channel send and one worker pass per touched shard
// covers the whole batch, preserving source order within each shard
// via ordered segments. A single-update batch takes the per-UPDATE
// path unchanged.
func (p *ingestPool) dispatchBatch(u *Upstream, peerAS uint32, peerID netip.Addr, upds []*wire.Update) {
	if len(upds) == 0 {
		return
	}
	if len(upds) == 1 {
		p.dispatch(u, peerAS, peerID, upds[0])
		return
	}
	now := p.srv.clk.Now()
	ops := make([]*ingestOp, len(p.chans))
	addSeg := func(si int, attrs *wire.Attrs, n wire.NLRI) {
		op := ops[si]
		if op == nil {
			op = p.ops.Get().(*ingestOp)
			op.u = u
			op.peerAS, op.peerID, op.learned = peerAS, peerID, now
			ops[si] = op
		}
		if len(op.segs) == 0 || op.segs[len(op.segs)-1].attrs != attrs {
			op.segs = append(op.segs, ingestSeg{attrs: attrs})
		}
		sg := &op.segs[len(op.segs)-1]
		sg.nlris = append(sg.nlris, n)
	}
	for _, upd := range upds {
		attrs := upd.Attrs
		for _, n := range upd.Withdrawn {
			addSeg(int(rib.PrefixShard(n.Prefix)&p.mask), nil, n)
		}
		if attrs == nil {
			continue // announcements without attributes carry no state
		}
		for _, n := range upd.Reach {
			addSeg(int(rib.PrefixShard(n.Prefix)&p.mask), attrs, n)
		}
	}
	for si, op := range ops {
		if op != nil {
			p.send(si, op)
		}
	}
}

// dispatch splits an upstream UPDATE by shard and hands each slice to
// the owning worker. The dominant case — one NLRI, or several that
// hash alike — ships the decoded slices through untouched; mixed
// updates partition into per-shard ops.
func (p *ingestPool) dispatch(u *Upstream, peerAS uint32, peerID netip.Addr, upd *wire.Update) {
	attrs := upd.Attrs
	reach := upd.Reach
	if attrs == nil {
		reach = nil // announcements without attributes carry no state
	}
	shard := -1
	single := true
	for _, n := range upd.Withdrawn {
		si := int(rib.PrefixShard(n.Prefix) & p.mask)
		if shard < 0 {
			shard = si
		} else if si != shard {
			single = false
			break
		}
	}
	if single {
		for _, n := range reach {
			si := int(rib.PrefixShard(n.Prefix) & p.mask)
			if shard < 0 {
				shard = si
			} else if si != shard {
				single = false
				break
			}
		}
	}
	if shard < 0 {
		return // empty update
	}
	if single {
		op := p.ops.Get().(*ingestOp)
		op.u, op.attrs, op.wd, op.reach = u, attrs, upd.Withdrawn, reach
		op.peerAS, op.peerID, op.learned = peerAS, peerID, p.srv.clk.Now()
		p.send(shard, op)
		return
	}
	// Mixed shards: bucket by worker. ops is indexed by shard; only the
	// touched entries allocate.
	ops := make([]*ingestOp, len(p.chans))
	now := p.srv.clk.Now()
	get := func(si int) *ingestOp {
		op := ops[si]
		if op == nil {
			op = p.ops.Get().(*ingestOp)
			op.u, op.attrs = u, attrs
			op.peerAS, op.peerID, op.learned = peerAS, peerID, now
			ops[si] = op
		}
		return op
	}
	for _, n := range upd.Withdrawn {
		si := int(rib.PrefixShard(n.Prefix) & p.mask)
		op := get(si)
		op.wd = append(op.wd, n)
	}
	for _, n := range reach {
		si := int(rib.PrefixShard(n.Prefix) & p.mask)
		op := get(si)
		op.reach = append(op.reach, n)
	}
	for si, op := range ops {
		if op != nil {
			p.send(si, op)
		}
	}
}
