package server

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"peering/internal/bgp"
	"peering/internal/bufconn"
	"peering/internal/client"
	"peering/internal/clock"
	"peering/internal/dampen"
	"peering/internal/faultconn"
	"peering/internal/muxproto"
	"peering/internal/rib"
	"peering/internal/router"
)

// Chaos tests: scripted faults on the transports, virtual-clock timing,
// and assertions that the graceful-restart machinery keeps the world
// stable while sessions die and come back.

// advanceChunked moves the virtual clock forward in small steps with a
// real-time yield between them. Timer callbacks (keepalive sends, hold
// expiry) run synchronously inside Advance, but message RECEIPT is
// processed by reader goroutines: a single large jump would hold-expire
// healthy sessions whose keepalives were sent but never consumed. Steps
// well under the keepalive interval (hold/3 = 30s) plus a yield let
// healthy sessions refresh while partitioned ones still time out.
func advanceChunked(clk *clock.Virtual, total time.Duration) {
	const step = 5 * time.Second
	for total > 0 {
		d := step
		if total < step {
			d = total
		}
		clk.Advance(d)
		total -= d
		time.Sleep(2 * time.Millisecond)
	}
}

// relaxedDampening mirrors the production testbed tuning: a client
// announcing one prefix via two upstreams records two flaps on the same
// (prefix, source) key, which the textbook threshold of 2000 would
// immediately suppress.
func relaxedDampening() dampen.Config {
	cfg := dampen.DefaultConfig()
	cfg.SuppressThreshold = 6000
	cfg.ReuseThreshold = 3000
	return cfg
}

// clientSupFailures reads a client-session supervisor's consecutive
// failure count. Non-zero means the session died AND its redial timer is
// armed (both happen under one lock), so it is safe to Advance past the
// backoff delay.
func clientSupFailures(s *Server, id string, key uint32) int {
	s.clMu.RLock()
	c := s.clients[id]
	s.clMu.RUnlock()
	if c == nil {
		return 0
	}
	c.mu.Lock()
	sup := c.sups[key]
	c.mu.Unlock()
	if sup == nil {
		return 0
	}
	return sup.Stats().ConsecutiveFailures
}

// TestChaosTunnelPartitionAndHeal is the headline resilience scenario:
// the client's tunnel is silently partitioned (writes vanish, nothing
// errors) until every BGP session on it hold-expires, then healed so the
// supervisors' redials land. Required outcome: the client's per-peer
// views reconverge to exactly their pre-fault routes, the upstreams
// never see a withdrawal of the client's prefix — not even after the
// restart window closes — and dampening does not count the recovery as
// a flap. Every delay runs on the virtual clock.
func TestChaosTunnelPartitionAndHeal(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	srv := New(Config{
		Site:      "chaos01",
		ASN:       testbedASN,
		RouterID:  addr("184.164.224.1"),
		Mode:      muxproto.ModeQuagga,
		Clock:     clk,
		Dampening: relaxedDampening(),
		Reconnect: bgp.Backoff{Initial: time.Second, Max: 8 * time.Second, Factor: 2},
	})
	t.Cleanup(srv.Close)

	clientPfx := prefix("184.164.224.0/24")
	up1 := router.New(router.Config{AS: 3356, RouterID: addr("4.69.0.1"), Clock: clk})
	up2 := router.New(router.Config{AS: 2914, RouterID: addr("129.250.0.1"), Clock: clk})
	// Count withdrawals of the client prefix as seen by the real peers.
	// Registered before any session attaches, as OnBestChange requires.
	var wd1, wd2 atomic.Int64
	up1.OnBestChange(func(ch rib.Change) {
		if ch.Prefix == clientPfx && ch.New == nil {
			wd1.Add(1)
		}
	})
	up2.OnBestChange(func(ch rib.Change) {
		if ch.Prefix == clientPfx && ch.New == nil {
			wd2.Add(1)
		}
	})
	for i, up := range []*router.Router{up1, up2} {
		id := uint32(i + 1)
		peerAddr := addr(map[int]string{0: "80.249.208.10", 1: "80.249.208.20"}[i])
		localAddr := addr("80.249.208.1")
		u, err := srv.AddUpstream(UpstreamConfig{
			ID: id, Name: up.RouterID().String(), ASN: up.AS(),
			PeerAddr: peerAddr, LocalAddr: localAddr,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := up.AddPeer(router.PeerConfig{
			Addr: localAddr, LocalAddr: peerAddr, AS: testbedASN,
		})
		ca, cb := bufconn.Pipe()
		srv.AttachUpstream(u, ca)
		up.Attach(p, cb)
		waitFor(t, "upstream session", func() bool { return u.Established() })
	}
	up1.Announce(prefix("11.0.0.0/16"), router.AnnounceSpec{})
	up2.Announce(prefix("12.0.0.0/16"), router.AnnounceSpec{})

	// Client connects over a fault-injectable tunnel transport.
	if err := srv.RegisterClient(ClientAccount{
		ID: "exp1", Allocation: clientAlloc(), TunnelAddr: addr("10.250.0.1"),
	}); err != nil {
		t.Fatal(err)
	}
	fcSrv, fcCli := faultconn.Pipe(clk)
	if err := srv.AcceptClient("exp1", fcSrv); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Connect(client.Config{Name: "exp1", RouterID: addr("10.250.0.1"), Clock: clk}, fcCli)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	waitFor(t, "client sessions", func() bool { return cl.SessionCount() == 2 })

	if err := cl.Announce(clientPfx, client.AnnounceOptions{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pre-fault convergence", func() bool {
		return up1.LocRIB().Best(clientPfx) != nil && up2.LocRIB().Best(clientPfx) != nil &&
			cl.RouteCount(1) == 1 && cl.RouteCount(2) == 1
	})
	base := srv.Stats()

	// --- Fault: silent bidirectional partition until hold expiry. ---
	// Sessions established at virtual t0, so hold deadlines sit at
	// t0+90s. Stop at +90.2s: past expiry, but short of the earliest
	// redial (death + 1s backoff), so no dial happens while partitioned.
	faultconn.PartitionBoth(fcSrv, fcCli)
	advanceChunked(clk, bgp.DefaultHoldTime+200*time.Millisecond)

	waitFor(t, "hold expiry and stale retention", func() bool {
		return srv.Stats().StaleRoutesRetained == base.StaleRoutesRetained+2 &&
			cl.SessionCount() == 0 &&
			clientSupFailures(srv, "exp1", 1) == 1 &&
			clientSupFailures(srv, "exp1", 2) == 1
	})
	// Mid-window: the world must not have noticed.
	if up1.LocRIB().Best(clientPfx) == nil || up2.LocRIB().Best(clientPfx) == nil {
		t.Fatal("client prefix withdrawn from an upstream during the restart window")
	}
	if n1, n2 := wd1.Load(), wd2.Load(); n1 != 0 || n2 != 0 {
		t.Fatalf("withdrawals propagated upstream during restart window: up1=%d up2=%d", n1, n2)
	}
	if cl.RouteCount(1) != 1 || cl.RouteCount(2) != 1 {
		t.Fatalf("client views lost routes during window: %d/%d", cl.RouteCount(1), cl.RouteCount(2))
	}

	// --- Heal, then let the redial timers (death + 1s) fire. ---
	faultconn.HealBoth(fcSrv, fcCli)
	clk.Advance(1500 * time.Millisecond)

	waitFor(t, "reconvergence after heal", func() bool {
		st := srv.Stats()
		return cl.SessionCount() == 2 &&
			st.SessionRecoveries == base.SessionRecoveries+2 &&
			cl.RouteCount(1) == 1 && cl.RouteCount(2) == 1
	})

	// --- Close the restart window: nothing stale remains, so the
	// backstop flush must find zero routes to withdraw. ---
	advanceChunked(clk, DefaultRestartWindow+10*time.Second)

	st := srv.Stats()
	if st.StaleRoutesFlushed != base.StaleRoutesFlushed {
		t.Fatalf("flushed %d stale routes; want 0 (everything was re-announced)",
			st.StaleRoutesFlushed-base.StaleRoutesFlushed)
	}
	if st.FlapsSuppressed != base.FlapsSuppressed {
		t.Fatalf("FlapsSuppressed rose %d -> %d across a graceful restart",
			base.FlapsSuppressed, st.FlapsSuppressed)
	}
	if st.ReconnectAttempts < base.ReconnectAttempts+2 {
		t.Fatalf("ReconnectAttempts = %d, want >= %d", st.ReconnectAttempts, base.ReconnectAttempts+2)
	}
	if up1.LocRIB().Best(clientPfx) == nil || up2.LocRIB().Best(clientPfx) == nil {
		t.Fatal("client prefix lost after restart window closed")
	}
	if n1, n2 := wd1.Load(), wd2.Load(); n1 != 0 || n2 != 0 {
		t.Fatalf("withdrawals reached upstreams: up1=%d up2=%d", n1, n2)
	}
	if cl.RouteCount(1) != 1 || cl.RouteCount(2) != 1 || cl.SessionCount() != 2 {
		t.Fatalf("client views did not reconverge: routes %d/%d, sessions %d",
			cl.RouteCount(1), cl.RouteCount(2), cl.SessionCount())
	}
}

// TestUpstreamRestartEndOfRIBFlush exercises the other direction: the
// peering with a real upstream drops mid-flight (EOF, no Cease). Its
// routes must be retained stale — no withdrawal storm toward clients —
// and when the supervisor's redial brings the session back, the peer's
// end-of-RIB must flush exactly the routes it did NOT re-announce.
func TestUpstreamRestartEndOfRIBFlush(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	srv := New(Config{
		Site:      "chaos02",
		ASN:       testbedASN,
		RouterID:  addr("184.164.224.1"),
		Mode:      muxproto.ModeQuagga,
		Clock:     clk,
		Dampening: relaxedDampening(),
		Reconnect: bgp.Backoff{Initial: time.Second, Max: 8 * time.Second, Factor: 2},
	})
	t.Cleanup(srv.Close)

	up := router.New(router.Config{AS: 3356, RouterID: addr("4.69.0.1"), Clock: clk})
	u, err := srv.AddUpstream(UpstreamConfig{
		ID: 1, Name: "up1", ASN: 3356,
		PeerAddr: addr("80.249.208.10"), LocalAddr: addr("80.249.208.1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	p := up.AddPeer(router.PeerConfig{
		Addr: addr("80.249.208.1"), LocalAddr: addr("80.249.208.10"), AS: testbedASN,
	})
	// Redialable transport: each dial hands the router a fresh pipe.
	var mu sync.Mutex
	var serverEnd net.Conn
	dial := func() (net.Conn, error) {
		ca, cb := bufconn.Pipe()
		mu.Lock()
		serverEnd = ca
		mu.Unlock()
		up.Attach(p, cb)
		return ca, nil
	}
	sup := srv.AttachUpstreamSupervised(u, dial)
	waitFor(t, "upstream session", func() bool { return u.Established() })

	up.Announce(prefix("11.0.0.0/16"), router.AnnounceSpec{})
	up.Announce(prefix("11.1.0.0/16"), router.AnnounceSpec{})

	clientPfx := prefix("184.164.224.0/24")
	if err := srv.RegisterClient(ClientAccount{
		ID: "exp1", Allocation: clientAlloc(), TunnelAddr: addr("10.250.0.1"),
	}); err != nil {
		t.Fatal(err)
	}
	ca, cb := bufconn.Pipe()
	if err := srv.AcceptClient("exp1", ca); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Connect(client.Config{Name: "exp1", RouterID: addr("10.250.0.1"), Clock: clk}, cb)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	waitFor(t, "client routes", func() bool { return cl.RouteCount(1) == 2 })
	if err := cl.Announce(clientPfx, client.AnnounceOptions{}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "client prefix at upstream", func() bool { return up.LocRIB().Best(clientPfx) != nil })
	base := srv.Stats()

	// --- Fault: the transport dies abruptly. Both sides read EOF; no
	// NOTIFICATION is exchanged, so this is a blip, not a goodbye. ---
	mu.Lock()
	conn := serverEnd
	mu.Unlock()
	conn.Close()

	waitFor(t, "stale retention after upstream loss", func() bool {
		return srv.Stats().StaleRoutesRetained == base.StaleRoutesRetained+2 &&
			sup.Stats().ConsecutiveFailures == 1
	})
	// The client must still see both routes: stale, but not withdrawn.
	if cl.RouteCount(1) != 2 {
		t.Fatalf("client view shrank to %d routes during restart window", cl.RouteCount(1))
	}

	// While the peering is down, the peer stops originating one prefix.
	// Graceful restart exists exactly for this: the stale entry must be
	// flushed at end-of-RIB because the restarted peer won't replay it.
	up.Withdraw(prefix("11.1.0.0/16"))

	// Redial timer was armed at death (virtual now) + 1s backoff.
	clk.Advance(1100 * time.Millisecond)

	waitFor(t, "recovery and end-of-RIB flush", func() bool {
		st := srv.Stats()
		return u.Established() &&
			st.SessionRecoveries == base.SessionRecoveries+1 &&
			st.StaleRoutesFlushed == base.StaleRoutesFlushed+1 &&
			cl.RouteCount(1) == 1
	})
	if cl.RoutesFor(prefix("11.0.0.0/16"))[1] == nil {
		t.Fatal("re-announced prefix 11.0.0.0/16 missing from client view")
	}
	if cl.RoutesFor(prefix("11.1.0.0/16"))[1] != nil {
		t.Fatal("prefix 11.1.0.0/16 survived end-of-RIB despite not being re-announced")
	}
	// The server replayed the client's announcement to the recovered
	// peer (its router cleared everything on session loss).
	waitFor(t, "client prefix replayed to upstream", func() bool {
		return up.LocRIB().Best(clientPfx) != nil
	})
	if st := srv.Stats(); st.ReconnectAttempts < base.ReconnectAttempts+1 {
		t.Fatalf("ReconnectAttempts = %d, want >= %d", st.ReconnectAttempts, base.ReconnectAttempts+1)
	}
}

// TestClientTransportReconnectRetainsRoutes covers the whole-tunnel
// death on the system clock: the mux dies (laptop client loses
// connectivity), the server retains the client's announcements stale,
// and a fresh AcceptClient + Reconnect reclaims them without the
// upstreams ever seeing a withdrawal or the damper charging a flap.
func TestClientTransportReconnectRetainsRoutes(t *testing.T) {
	r := newRig(t, muxproto.ModeQuagga)
	clientPfx := prefix("184.164.224.0/24")
	if err := r.srv.RegisterClient(ClientAccount{
		ID: "exp1", Allocation: clientAlloc(), TunnelAddr: addr("10.250.0.1"),
	}); err != nil {
		t.Fatal(err)
	}
	ca, cb := bufconn.Pipe()
	if err := r.srv.AcceptClient("exp1", ca); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Connect(client.Config{Name: "exp1", RouterID: addr("10.250.0.1")}, cb)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	waitFor(t, "client sessions", func() bool { return cl.SessionCount() == 2 })

	r.up1.Announce(prefix("11.0.0.0/16"), router.AnnounceSpec{})
	waitFor(t, "upstream route at client", func() bool { return cl.RouteCount(1) == 1 })
	// Default dampening is in effect: announce via up1 only so the
	// single flap stays under the suppress threshold.
	if err := cl.Announce(clientPfx, client.AnnounceOptions{Upstreams: []uint32{1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "client prefix at upstream", func() bool { return r.up1.LocRIB().Best(clientPfx) != nil })
	base := r.srv.Stats()

	// Kill the whole tunnel. detachClient retains the announcement
	// stale instead of withdrawing it.
	ca.Close()
	waitFor(t, "stale retention after tunnel death", func() bool {
		return r.srv.Stats().StaleRoutesRetained == base.StaleRoutesRetained+1 &&
			r.srv.ClientCount() == 0
	})
	if r.up1.LocRIB().Best(clientPfx) == nil {
		t.Fatal("client prefix withdrawn when tunnel died")
	}

	// Reconnect on a fresh transport; the client replays its intent.
	ca2, cb2 := bufconn.Pipe()
	if err := r.srv.AcceptClient("exp1", ca2); err != nil {
		t.Fatal(err)
	}
	if err := cl.Reconnect(cb2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reconnect convergence", func() bool {
		return cl.SessionCount() == 2 && cl.RouteCount(1) == 1
	})
	waitFor(t, "announcement reclaimed", func() bool {
		return r.up1.LocRIB().Best(clientPfx) != nil
	})
	st := r.srv.Stats()
	if st.StaleRoutesFlushed != base.StaleRoutesFlushed {
		t.Fatalf("stale routes flushed on clean reconnect: %d", st.StaleRoutesFlushed-base.StaleRoutesFlushed)
	}
	if st.FlapsSuppressed != base.FlapsSuppressed {
		t.Fatalf("reconnect charged as flap: FlapsSuppressed %d -> %d", base.FlapsSuppressed, st.FlapsSuppressed)
	}
}
